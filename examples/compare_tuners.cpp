// Compare every autotuner in the library on one benchmark — the
// five-minute version of the paper's Fig. 5.6 for a single program.
//
//   $ ./compare_tuners [benchmark] [budget] [machine]

#include <cstdio>
#include <cstdlib>

#include "baselines/tuners.hpp"
#include "bench_suite/suite.hpp"
#include "citroen/tuner.hpp"
#include "sim/machine.hpp"

using namespace citroen;

int main(int argc, char** argv) {
  const std::string benchmark = argc > 1 ? argv[1] : "spec_x264";
  const int budget = argc > 2 ? std::atoi(argv[2]) : 60;
  const std::string machine = argc > 3 ? argv[3] : "arm";

  std::printf("%-12s best-so-far speedup over -O3 (budget %d)\n\n",
              benchmark.c_str(), budget);

  // CITROEN.
  {
    sim::ProgramEvaluator ev(bench_suite::make_program(benchmark),
                             sim::machine_by_name(machine));
    core::CitroenConfig cfg;
    cfg.budget = budget;
    cfg.seed = 1;
    core::CitroenTuner tuner(ev, cfg);
    const auto r = tuner.run();
    std::printf("  %-12s %.3fx  (measurements split:", "citroen",
                r.best_speedup);
    for (const auto& [m, n] : r.measurements_per_module)
      std::printf(" %s=%d", m.c_str(), n);
    std::printf(")\n");
  }

  // The baselines.
  using Runner = baselines::TuneTrace (*)(sim::Evaluator&,
                                          const baselines::PhaseTunerConfig&);
  const std::pair<const char*, Runner> tuners[] = {
      {"boca", baselines::run_rf_bo_tuner},
      {"opentuner", baselines::run_ensemble_tuner},
      {"ga", baselines::run_ga_tuner},
      {"des", baselines::run_des_tuner},
      {"random", baselines::run_random_search},
  };
  for (const auto& [name, fn] : tuners) {
    sim::ProgramEvaluator ev(bench_suite::make_program(benchmark),
                             sim::machine_by_name(machine));
    baselines::PhaseTunerConfig cfg;
    cfg.budget = budget;
    cfg.seed = 1;
    const auto t = fn(ev, cfg);
    std::printf("  %-12s %.3fx\n", name, t.best_speedup);
  }
  return 0;
}
