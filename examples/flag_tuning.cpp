// Continuous-BO usage: tune binary compiler flags with AIBO (Ch. 4's
// Fig. 4.4 scenario) through the generic black-box interface.
//
//   $ ./flag_tuning [benchmark] [budget]

#include <cstdio>
#include <cstdlib>

#include "aibo/aibo.hpp"
#include "synth/flag_task.hpp"

using namespace citroen;

int main(int argc, char** argv) {
  const std::string benchmark = argc > 1 ? argv[1] : "telecom_gsm";
  const int budget = argc > 2 ? std::atoi(argv[2]) : 80;

  const auto task = synth::make_flag_task(benchmark, "x86");
  std::printf("tuning %zu binary flags on %s (budget %d)\n",
              synth::flag_task_dim(), benchmark.c_str(), budget);

  aibo::AiboConfig config;
  config.init_samples = budget / 4;
  config.k = 100;
  config.gp.fit_steps = 8;
  aibo::Aibo bo(task.box, config, /*seed=*/7);
  const auto result = bo.run(task.f, budget);

  std::printf("best runtime relative to -O3: %.4f (lower is better)\n",
              result.best());
  std::printf("winning flag set (enabled positions of the canonical "
              "sequence):\n ");
  // Recover the best x.
  std::size_t best_i = 0;
  for (std::size_t i = 1; i < result.ys.size(); ++i) {
    if (result.ys[i] < result.ys[best_i]) best_i = i;
  }
  const auto& canonical = synth::flag_task_sequence();
  for (std::size_t i = 0; i < canonical.size(); ++i) {
    if (result.xs[best_i][i] >= 0.5) std::printf(" %s", canonical[i].c_str());
  }
  std::printf("\n");
  std::printf("initialiser AF-win counts:");
  for (std::size_t m = 0; m < result.member_names.size(); ++m)
    std::printf(" %s=%d", result.member_names[m].c_str(), result.af_wins[m]);
  std::printf("\n");
  return 0;
}
