// Compiler-library usage: build a function with the IRBuilder, compile it
// with custom pass sequences, and inspect the IR, the statistics, and the
// modelled runtime — the paper's Fig. 5.1 walked end to end.

#include <cstdio>

#include "ir/builder.hpp"
#include "ir/interpreter.hpp"
#include "ir/printer.hpp"
#include "passes/pass.hpp"

using namespace citroen;
using namespace citroen::ir;

namespace {

/// result = sum_{j<8} w[j] * d[j] over i16 data (Fig. 5.1a).
Module make_dot_module() {
  Module m;
  m.name = "demo";
  m.globals.push_back(GlobalVar{"w", std::vector<std::uint8_t>(16, 1)});
  m.globals.push_back(GlobalVar{"d", std::vector<std::uint8_t>(16, 2)});
  create_function(m, "main", kI64, {}, false);
  IRBuilder b(m.functions[0]);
  b.set_insert(0);
  const ValueId acc = b.stack_alloc(kI64);
  b.store(b.const_i64(0), acc);
  const ValueId w = b.global_addr(0);
  const ValueId d = b.global_addr(1);
  for (int j = 0; j < 8; ++j) {
    const ValueId wj = b.load(kI16, b.gep(w, b.const_i64(j), kI16));
    const ValueId dj = b.load(kI16, b.gep(d, b.const_i64(j), kI16));
    const ValueId mj = b.binop(Opcode::Mul, b.cast(Opcode::SExt, wj, kI32),
                               b.cast(Opcode::SExt, dj, kI32));
    const ValueId ej = b.cast(Opcode::SExt, mj, kI64);
    b.store(b.binop(Opcode::Add, b.load(kI64, acc), ej), acc);
  }
  b.ret(b.load(kI64, acc));
  return m;
}

void compile_and_report(const std::vector<std::string>& seq) {
  Program p;
  p.modules.push_back(make_dot_module());
  const auto base = interpret(p);

  auto stats = passes::run_sequence(p.modules[0], seq, /*verify_each=*/true);
  const auto opt = interpret(p);

  std::printf("sequence:");
  for (const auto& s : seq) std::printf(" %s", s.c_str());
  std::printf("\n  output %lld -> %lld (%s), cycles %.0f -> %.0f (%.2fx)\n",
              static_cast<long long>(base.ret),
              static_cast<long long>(opt.ret),
              base.ret == opt.ret ? "match" : "MISMATCH", base.cycles,
              opt.cycles, base.cycles / opt.cycles);
  std::printf("  slp.NumVectorInstrs=%lld  instcombine.NumWidenedMul=%lld\n",
              static_cast<long long>(stats.get("slp.NumVectorInstrs")),
              static_cast<long long>(
                  stats.get("instcombine.NumWidenedMul")));
}

}  // namespace

int main() {
  {
    Program p;
    p.modules.push_back(make_dot_module());
    std::printf("---- unoptimised IR ----\n%s\n",
                print_module(p.modules[0]).c_str());
  }
  compile_and_report({"mem2reg", "slp-vectorizer", "dce"});
  compile_and_report({"mem2reg", "instcombine", "slp-vectorizer", "dce"});

  // Show the vectorised IR.
  Program p;
  p.modules.push_back(make_dot_module());
  passes::run_sequence(p.modules[0], {"mem2reg", "slp-vectorizer", "dce"});
  std::printf("\n---- after mem2reg, slp-vectorizer, dce ----\n%s",
              print_module(p.modules[0]).c_str());
  return 0;
}
