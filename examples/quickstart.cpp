// Quickstart: autotune the phase ordering of one benchmark with CITROEN.
//
//   $ ./quickstart [benchmark] [budget]
//
// Builds the program, profiles its hot modules, runs the tuner with a
// small measurement budget, and prints the winning per-module pass
// sequences with their speedup over -O3.

#include <cstdio>
#include <cstdlib>

#include "bench_suite/suite.hpp"
#include "citroen/tuner.hpp"
#include "sim/evaluator.hpp"
#include "sim/machine.hpp"

using namespace citroen;

int main(int argc, char** argv) {
  const std::string benchmark = argc > 1 ? argv[1] : "telecom_gsm";
  const int budget = argc > 2 ? std::atoi(argv[2]) : 60;

  // 1. Build the program and the compile-and-measure service.
  sim::ProgramEvaluator evaluator(bench_suite::make_program(benchmark),
                                  sim::arm_a57_model());
  std::printf("program: %s\n", benchmark.c_str());
  std::printf("  -O0: %.0f cycles, -O3: %.0f cycles (%.2fx)\n",
              evaluator.o0_cycles(), evaluator.o3_cycles(),
              evaluator.o0_cycles() / evaluator.o3_cycles());
  std::printf("  hot modules:");
  for (const auto& [m, frac] : evaluator.hot_modules()) {
    if (frac > 0.02) std::printf(" %s(%.0f%%)", m.c_str(), 100 * frac);
  }
  std::printf("\n\n");

  // 2. Run CITROEN.
  core::CitroenConfig config;
  config.budget = budget;
  config.seed = 42;
  core::CitroenTuner tuner(evaluator, config);
  const auto result = tuner.run();

  // 3. Report.
  std::printf("tuning done: %d measurements, %d compiles, %d cache hits, "
              "%d invalid builds\n",
              result.measurements, result.compiles, result.cache_hits,
              result.invalid);
  std::printf("best speedup over -O3: %.3fx\n\n", result.best_speedup);
  for (const auto& [module, seq] : result.best_assignment) {
    std::printf("%s:", module.c_str());
    for (const auto& p : seq) std::printf(" %s", p.c_str());
    std::printf("\n");
  }
  if (result.best_assignment.empty())
    std::printf("(no sequence beat -O3 within the budget; the -O3 default "
                "stands)\n");
  return 0;
}
