// Rank-one incremental GP updates: the O(n^2) Cholesky extension used by
// refactor-only fits must reproduce the full O(n^3) refit posterior to
// tight tolerance, and the fallback paths must engage exactly when the
// fast path is unsafe.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "gp/gp.hpp"
#include "support/matrix.hpp"
#include "support/rng.hpp"

using namespace citroen;

namespace {

std::vector<Vec> random_points(std::size_t n, std::size_t dim, Rng& rng) {
  std::vector<Vec> x;
  for (std::size_t i = 0; i < n; ++i) {
    Vec p(dim);
    for (auto& v : p) v = rng.uniform();
    x.push_back(std::move(p));
  }
  return x;
}

Vec smooth_targets(const std::vector<Vec>& x, Rng& rng) {
  Vec y;
  for (const auto& p : x) {
    double s = 0.0;
    for (std::size_t d = 0; d < p.size(); ++d)
      s += std::sin(3.0 * p[d] + static_cast<double>(d));
    y.push_back(s + 0.01 * rng.normal());
  }
  return y;
}

}  // namespace

// ---- Cholesky::extend -----------------------------------------------------

TEST(CholeskyExtend, MatchesFullFactorisation) {
  Rng rng(11);
  for (const std::size_t n : {1u, 3u, 8u, 20u}) {
    // Random SPD matrix A = B B^T + n I of size (n+1).
    Matrix b(n + 1, n + 1);
    for (std::size_t i = 0; i <= n; ++i)
      for (std::size_t j = 0; j <= n; ++j) b(i, j) = rng.normal();
    Matrix a(n + 1, n + 1);
    for (std::size_t i = 0; i <= n; ++i)
      for (std::size_t j = 0; j <= n; ++j) {
        double s = 0.0;
        for (std::size_t k = 0; k <= n; ++k) s += b(i, k) * b(j, k);
        a(i, j) = s + (i == j ? static_cast<double>(n) + 1.0 : 0.0);
      }

    // Factor the leading n x n block, then extend by the last row/col.
    Matrix lead(n, n);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) lead(i, j) = a(i, j);
    Cholesky inc = cholesky(lead);
    ASSERT_TRUE(inc.ok);
    Vec k_new(n);
    for (std::size_t i = 0; i < n; ++i) k_new[i] = a(i, n);
    ASSERT_TRUE(inc.extend(k_new, a(n, n)));

    const Cholesky full = cholesky(a, inc.jitter, inc.jitter);
    ASSERT_TRUE(full.ok);
    ASSERT_EQ(inc.L.rows(), n + 1);
    for (std::size_t i = 0; i <= n; ++i)
      for (std::size_t j = 0; j <= i; ++j)
        EXPECT_NEAR(inc.L(i, j), full.L(i, j), 1e-10)
            << "n=" << n << " (" << i << "," << j << ")";
    EXPECT_NEAR(inc.log_det(), full.log_det(), 1e-10);
  }
}

TEST(CholeskyExtend, RefusesNonPositiveDefiniteExtension) {
  Matrix a(2, 2);
  a(0, 0) = 2.0;
  a(1, 1) = 2.0;
  a(0, 1) = a(1, 0) = 0.5;
  Cholesky c = cholesky(a);
  ASSERT_TRUE(c.ok);
  const Matrix before = c.L;
  // A new point identical to an existing one with a too-small diagonal
  // makes the bordered matrix singular.
  EXPECT_FALSE(c.extend({2.0, 0.5}, 2.0 - 1e-13));
  // The factor must be untouched after a refused extension.
  ASSERT_EQ(c.L.rows(), before.rows());
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 2; ++j) EXPECT_EQ(c.L(i, j), before(i, j));
  EXPECT_FALSE(c.extend({1.0}, 5.0));  // wrong size
}

// ---- incremental GP fits --------------------------------------------------

TEST(GpIncremental, PosteriorMatchesFullRefit) {
  Rng rng(29);
  for (const std::size_t dim : {2u, 5u}) {
    auto x = random_points(24, dim, rng);
    const Vec y = smooth_targets(x, rng);

    gp::GpConfig cfg;
    cfg.fit_steps = 10;
    gp::GaussianProcess fast(dim, cfg);
    gp::GpConfig slow_cfg = cfg;
    slow_cfg.incremental = false;
    gp::GaussianProcess slow(dim, slow_cfg);

    // Hyper fit on the first chunk, then refactor-only growth: the fast
    // GP extends its factor point by point, the slow GP refactorises.
    const std::size_t base = 12;
    fast.fit({x.begin(), x.begin() + base}, {y.begin(), y.begin() + base});
    slow.fit({x.begin(), x.begin() + base}, {y.begin(), y.begin() + base});
    fast.set_fit_hypers(false);
    slow.set_fit_hypers(false);
    for (std::size_t n = base + 1; n <= x.size(); ++n) {
      fast.fit({x.begin(), x.begin() + static_cast<std::ptrdiff_t>(n)},
               {y.begin(), y.begin() + static_cast<std::ptrdiff_t>(n)});
      slow.fit({x.begin(), x.begin() + static_cast<std::ptrdiff_t>(n)},
               {y.begin(), y.begin() + static_cast<std::ptrdiff_t>(n)});
    }
    EXPECT_GT(fast.num_incremental_fits(), 0);
    EXPECT_EQ(fast.num_full_fits(), 1);
    EXPECT_EQ(slow.num_incremental_fits(), 0);

    const auto probes = random_points(32, dim, rng);
    for (const auto& p : probes) {
      const auto pf = fast.predict(p);
      const auto ps = slow.predict(p);
      EXPECT_NEAR(pf.mean, ps.mean, 1e-10);
      EXPECT_NEAR(pf.var, ps.var, 1e-10);
    }
    EXPECT_NEAR(fast.log_marginal_likelihood(),
                slow.log_marginal_likelihood(), 1e-8);
  }
}

TEST(GpIncremental, MultiPointAppendTakesOneIncrementalFit) {
  Rng rng(5);
  auto x = random_points(20, 3, rng);
  const Vec y = smooth_targets(x, rng);
  gp::GaussianProcess gp(3, {.fit_steps = 5});
  gp.fit({x.begin(), x.begin() + 10}, {y.begin(), y.begin() + 10});
  gp.set_fit_hypers(false);
  gp.fit(x, y);  // append 10 points at once
  EXPECT_EQ(gp.num_incremental_fits(), 1);
  EXPECT_EQ(gp.num_full_fits(), 1);
  EXPECT_EQ(gp.num_points(), 20u);
}

TEST(GpIncremental, HyperRoundsAlwaysRefitFully) {
  Rng rng(7);
  auto x = random_points(12, 2, rng);
  const Vec y = smooth_targets(x, rng);
  gp::GaussianProcess gp(2, {.fit_steps = 5});
  gp.fit({x.begin(), x.begin() + 8}, {y.begin(), y.begin() + 8});
  gp.fit(x, y);  // fit_hypers still true -> full path
  EXPECT_EQ(gp.num_incremental_fits(), 0);
  EXPECT_EQ(gp.num_full_fits(), 2);
}

TEST(GpIncremental, NonPrefixDataFallsBackToFullRefit) {
  Rng rng(13);
  auto x = random_points(10, 2, rng);
  const Vec y = smooth_targets(x, rng);
  gp::GaussianProcess gp(2, {.fit_steps = 5});
  gp.fit({x.begin(), x.begin() + 6}, {y.begin(), y.begin() + 6});
  gp.set_fit_hypers(false);

  // Perturb an already-fitted point: the new data no longer extends the
  // old, so the incremental path must refuse and the full refit run.
  auto x2 = x;
  x2[2][0] += 0.25;
  gp.fit(x2, y);
  EXPECT_EQ(gp.num_incremental_fits(), 0);
  EXPECT_EQ(gp.num_full_fits(), 2);

  // Same data again (no growth) is also a full refactorisation.
  gp.fit(x2, y);
  EXPECT_EQ(gp.num_incremental_fits(), 0);
  EXPECT_EQ(gp.num_full_fits(), 3);
}

TEST(GpIncremental, DisabledConfigNeverTakesFastPath) {
  Rng rng(17);
  auto x = random_points(12, 2, rng);
  const Vec y = smooth_targets(x, rng);
  gp::GpConfig cfg;
  cfg.fit_steps = 5;
  cfg.incremental = false;
  gp::GaussianProcess gp(2, cfg);
  gp.fit({x.begin(), x.begin() + 6}, {y.begin(), y.begin() + 6});
  gp.set_fit_hypers(false);
  gp.fit(x, y);
  EXPECT_EQ(gp.num_incremental_fits(), 0);
  EXPECT_EQ(gp.num_full_fits(), 2);
}
