// End-to-end smoke tests: every benchmark program must verify, run, and
// survive the full -O3 pipeline with identical output and a speedup.

#include <gtest/gtest.h>

#include "bench_suite/suite.hpp"
#include "ir/interpreter.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "passes/pass.hpp"
#include "sim/evaluator.hpp"
#include "sim/machine.hpp"

using namespace citroen;

class SmokePerProgram : public ::testing::TestWithParam<std::string> {};

TEST_P(SmokePerProgram, BaseProgramVerifiesAndRuns) {
  const auto p = bench_suite::make_program(GetParam());
  for (const auto& m : p.modules) {
    const auto errs = ir::verify_module(m);
    EXPECT_TRUE(errs.empty()) << m.name << ": " << errs.front();
  }
  const auto r = ir::interpret(p);
  ASSERT_TRUE(r.ok) << r.trap;
  EXPECT_GT(r.instructions, 1000u);
}

TEST_P(SmokePerProgram, O3PreservesOutputAndSpeedsUp) {
  auto p = bench_suite::make_program(GetParam());
  const auto base = ir::interpret(p);
  ASSERT_TRUE(base.ok) << base.trap;

  for (auto& m : p.modules) {
    ASSERT_NO_THROW(passes::run_sequence(m, passes::o3_sequence(), true))
        << "in module " << m.name;
  }
  const auto opt = ir::interpret(p);
  ASSERT_TRUE(opt.ok) << opt.trap;
  EXPECT_EQ(opt.ret, base.ret) << "O3 miscompiled " << GetParam();
  EXPECT_LT(opt.cycles, base.cycles) << "O3 did not speed up " << GetParam();
}

TEST_P(SmokePerProgram, EvaluatorConstructs) {
  sim::ProgramEvaluator ev(bench_suite::make_program(GetParam()),
                           sim::arm_a57_model());
  EXPECT_GT(ev.o0_cycles(), ev.o3_cycles());
  const auto hot = ev.hot_modules();
  ASSERT_FALSE(hot.empty());
  double total = 0.0;
  for (const auto& [name, frac] : hot) total += frac;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllPrograms, SmokePerProgram,
                         ::testing::ValuesIn([] {
                           std::vector<std::string> names;
                           for (const auto& b :
                                bench_suite::benchmark_list())
                             names.push_back(b.name);
                           return names;
                         }()),
                         [](const auto& info) { return info.param; });
