// Tests for the out-of-process evaluation sandbox (src/sandbox/): IPC
// frame properties under truncation/corruption, the job/result codecs,
// byte-identity of sandboxed vs. plain evaluation, and one containment
// test per crash class (SIGSEGV, OOM, spin, external SIGKILL) plus the
// circuit-breaker degradation path.

#include <gtest/gtest.h>

#include <stdlib.h>
#include <unistd.h>

#include <algorithm>
#include <string>
#include <vector>

#include "bench_suite/suite.hpp"
#include "persist/codec.hpp"
#include "sandbox/ipc.hpp"
#include "sandbox/protocol.hpp"
#include "sandbox/supervisor.hpp"
#include "sim/evaluator.hpp"
#include "sim/faults.hpp"
#include "sim/machine.hpp"
#include "sim/robust_evaluator.hpp"
#include "support/rng.hpp"

using namespace citroen;

namespace {

std::string decode_one(const std::string& bytes, sandbox::DecodeStatus* st) {
  sandbox::FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  std::string payload, err;
  *st = dec.next(&payload, &err);
  return payload;
}

sim::SequenceAssignment make_assignment(int i) {
  const std::vector<std::string> base = {"mem2reg", "instcombine",
                                         "simplifycfg", "gvn", "dce"};
  const auto& space = passes::PassRegistry::instance().pass_names();
  auto seq = base;
  seq[static_cast<std::size_t>(i) % seq.size()] =
      space[(static_cast<std::size_t>(i) * 7 + 3) % space.size()];
  sim::SequenceAssignment a;
  a["sha"] = seq;
  return a;
}

std::string outcome_bytes(const sim::EvalOutcome& o) {
  persist::Writer w;
  sim::put(w, o);
  return w.take();
}

bool is_worker_failure(sim::FailureKind k) {
  return k == sim::FailureKind::WorkerCrash ||
         k == sim::FailureKind::WorkerTimeout ||
         k == sim::FailureKind::WorkerOOM;
}

}  // namespace

// ---- frame transport ------------------------------------------------------

TEST(SandboxIpc, FrameRoundTripsAtVariousSizes) {
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{1}, std::size_t{160}, std::size_t{70000}}) {
    std::string payload(n, '\x5a');
    for (std::size_t i = 0; i < n; ++i)
      payload[i] = static_cast<char>(i * 31 + 7);
    sandbox::DecodeStatus st;
    const std::string got = decode_one(sandbox::encode_frame(payload), &st);
    EXPECT_EQ(st, sandbox::DecodeStatus::Ok);
    EXPECT_EQ(got, payload);
  }
}

TEST(SandboxIpc, ChunkedFeedReassembles) {
  const std::string payload(1000, '\x42');
  const std::string frame = sandbox::encode_frame(payload);
  sandbox::FrameDecoder dec;
  std::string out, err;
  for (std::size_t i = 0; i < frame.size(); ++i) {
    // Every prefix must be NeedMore; only the full frame decodes.
    EXPECT_EQ(dec.next(&out, &err), sandbox::DecodeStatus::NeedMore);
    dec.feed(frame.data() + i, 1);
  }
  EXPECT_EQ(dec.next(&out, &err), sandbox::DecodeStatus::Ok);
  EXPECT_EQ(out, payload);
}

TEST(SandboxIpc, EveryTruncationIsNeedMoreNeverOk) {
  const std::string frame = sandbox::encode_frame(std::string(64, '\x17'));
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    sandbox::DecodeStatus st;
    decode_one(frame.substr(0, cut), &st);
    EXPECT_EQ(st, sandbox::DecodeStatus::NeedMore) << "cut at " << cut;
  }
}

TEST(SandboxIpc, EveryBitFlipIsDetected) {
  const std::string payload = "the quick brown fox jumps over compilers";
  const std::string frame = sandbox::encode_frame(payload);
  for (std::size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string bad = frame;
      bad[byte] = static_cast<char>(bad[byte] ^ (1 << bit));
      sandbox::DecodeStatus st;
      decode_one(bad, &st);
      // A flip in the length field may leave the decoder waiting for a
      // longer frame (NeedMore); everything else must be caught by the
      // length plausibility check or the CRC. Never a clean decode.
      EXPECT_NE(st, sandbox::DecodeStatus::Ok)
          << "flip byte " << byte << " bit " << bit;
    }
  }
}

TEST(SandboxIpc, RandomMutationsNeverYieldAForgedPayload) {
  Rng rng(2024);
  const std::string payload(256, '\x33');
  const std::string frame = sandbox::encode_frame(payload);
  for (int trial = 0; trial < 500; ++trial) {
    std::string bad = frame;
    const int flips = 1 + static_cast<int>(rng.uniform_index(8));
    for (int f = 0; f < flips; ++f) {
      const std::size_t pos = rng.uniform_index(bad.size());
      bad[pos] = static_cast<char>(bad[pos] ^
                                   (1 << rng.uniform_index(8)));
    }
    sandbox::DecodeStatus st;
    const std::string got = decode_one(bad, &st);
    if (st == sandbox::DecodeStatus::Ok) {
      EXPECT_EQ(got, payload);
    }
  }
}

TEST(SandboxIpc, CorruptionPoisonsTheDecoderPermanently) {
  const std::string frame = sandbox::encode_frame(std::string(32, 'x'));
  std::string bad = frame;
  bad[sandbox::kFrameHeaderBytes] ^= 0x01;  // payload flip -> CRC mismatch
  sandbox::FrameDecoder dec;
  dec.feed(bad.data(), bad.size());
  std::string out, err;
  EXPECT_EQ(dec.next(&out, &err), sandbox::DecodeStatus::Corrupt);
  // Even a pristine follow-up frame must not be trusted on this stream.
  dec.feed(frame.data(), frame.size());
  EXPECT_EQ(dec.next(&out, &err), sandbox::DecodeStatus::Corrupt);
}

TEST(SandboxIpc, ImplausibleLengthIsCorrupt) {
  std::string header;
  const std::uint32_t len = sandbox::kMaxFramePayload + 1;
  for (int i = 0; i < 4; ++i)
    header.push_back(static_cast<char>((len >> (8 * i)) & 0xff));
  header.append(4, '\0');  // CRC never inspected
  sandbox::DecodeStatus st;
  decode_one(header, &st);
  EXPECT_EQ(st, sandbox::DecodeStatus::Corrupt);
}

TEST(SandboxIpc, SocketRealisticShortReadChunkings) {
  // A stream socket delivers frames in arbitrary chunks. Reassembly must
  // work for every chunking, including pathological 1-byte reads and
  // chunk sizes that straddle the header/payload boundary.
  std::vector<std::string> frames;
  std::string stream;
  for (int i = 0; i < 5; ++i) {
    std::string payload(static_cast<std::size_t>(37 * i + 3), '\0');
    for (std::size_t k = 0; k < payload.size(); ++k)
      payload[k] = static_cast<char>(k * 13 + i);
    frames.push_back(payload);
    stream += sandbox::encode_frame(payload);
  }
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{3},
                                  std::size_t{7}, std::size_t{11},
                                  std::size_t{64}}) {
    sandbox::FrameDecoder dec;
    std::vector<std::string> got;
    std::string out, err;
    for (std::size_t off = 0; off < stream.size(); off += chunk) {
      dec.feed(stream.data() + off, std::min(chunk, stream.size() - off));
      while (dec.next(&out, &err) == sandbox::DecodeStatus::Ok)
        got.push_back(out);
    }
    ASSERT_EQ(got.size(), frames.size()) << "chunk " << chunk;
    for (std::size_t i = 0; i < frames.size(); ++i)
      EXPECT_EQ(got[i], frames[i]) << "chunk " << chunk << " frame " << i;
  }
}

TEST(SandboxIpc, TwoSessionsInterleaveWithoutCrossTalk) {
  // The daemon runs one FrameDecoder per client connection; bytes from
  // two sessions interleaved at arbitrary cut points must never bleed
  // into each other's decoder.
  const std::string a1 = sandbox::encode_frame("session-a first");
  const std::string a2 = sandbox::encode_frame(std::string(513, 'A'));
  const std::string b1 = sandbox::encode_frame(std::string(129, 'B'));
  const std::string b2 = sandbox::encode_frame("session-b second");
  const std::string sa = a1 + a2, sb = b1 + b2;

  sandbox::FrameDecoder da, db;
  std::string out, err;
  std::vector<std::string> got_a, got_b;
  std::size_t pa = 0, pb = 0;
  int turn = 0;
  // Alternate tiny slices between the sessions (5 bytes to A, 3 to B).
  while (pa < sa.size() || pb < sb.size()) {
    if (turn++ % 2 == 0 && pa < sa.size()) {
      const std::size_t n = std::min<std::size_t>(5, sa.size() - pa);
      da.feed(sa.data() + pa, n);
      pa += n;
    } else if (pb < sb.size()) {
      const std::size_t n = std::min<std::size_t>(3, sb.size() - pb);
      db.feed(sb.data() + pb, n);
      pb += n;
    }
    while (da.next(&out, &err) == sandbox::DecodeStatus::Ok)
      got_a.push_back(out);
    while (db.next(&out, &err) == sandbox::DecodeStatus::Ok)
      got_b.push_back(out);
  }
  ASSERT_EQ(got_a.size(), 2u);
  ASSERT_EQ(got_b.size(), 2u);
  EXPECT_EQ(got_a[0], "session-a first");
  EXPECT_EQ(got_a[1], std::string(513, 'A'));
  EXPECT_EQ(got_b[0], std::string(129, 'B'));
  EXPECT_EQ(got_b[1], "session-b second");
}

TEST(SandboxIpc, OversizedFrameErrorNamesLengthAndCap) {
  std::string header;
  const std::uint32_t len = sandbox::kMaxFramePayload + 123;
  for (int i = 0; i < 4; ++i)
    header.push_back(static_cast<char>((len >> (8 * i)) & 0xff));
  header.append(4, '\0');
  sandbox::FrameDecoder dec;
  dec.feed(header.data(), header.size());
  std::string out, err;
  EXPECT_EQ(dec.next(&out, &err), sandbox::DecodeStatus::Corrupt);
  // The message must report both the observed length and the active cap,
  // so an operator can tell a torn header from a legitimately huge frame.
  EXPECT_NE(err.find(std::to_string(len)), std::string::npos) << err;
  EXPECT_NE(err.find(std::to_string(sandbox::kMaxFramePayload)),
            std::string::npos)
      << err;
  EXPECT_NE(err.find("CITROEN_IPC_MAX_FRAME"), std::string::npos) << err;
}

TEST(SandboxIpc, MaxFrameEnvOverrideRaisesAndLowersTheCap) {
  ASSERT_EQ(sandbox::max_frame_payload(), sandbox::kMaxFramePayload);

  // Lower the cap to the clamp floor: a frame length just above it is
  // now corrupt even though it would pass the compiled-in default.
  ::setenv("CITROEN_IPC_MAX_FRAME", "65536", 1);
  EXPECT_EQ(sandbox::max_frame_payload(), 65536u);
  std::string header;
  const std::uint32_t len = 65536 + 1;
  for (int i = 0; i < 4; ++i)
    header.push_back(static_cast<char>((len >> (8 * i)) & 0xff));
  header.append(4, '\0');
  sandbox::FrameDecoder dec;
  dec.feed(header.data(), header.size());
  std::string out, err;
  EXPECT_EQ(dec.next(&out, &err), sandbox::DecodeStatus::Corrupt);
  EXPECT_NE(err.find("65536"), std::string::npos) << err;

  // Raise it: the same length is a plausible frame again (NeedMore since
  // only the header was fed).
  ::setenv("CITROEN_IPC_MAX_FRAME", "1048576", 1);
  EXPECT_EQ(sandbox::max_frame_payload(), 1048576u);
  sandbox::FrameDecoder dec2;
  dec2.feed(header.data(), header.size());
  EXPECT_EQ(dec2.next(&out, &err), sandbox::DecodeStatus::NeedMore);

  // Unparsable and out-of-range values fall back to the default.
  ::setenv("CITROEN_IPC_MAX_FRAME", "not-a-number", 1);
  EXPECT_EQ(sandbox::max_frame_payload(), sandbox::kMaxFramePayload);
  ::setenv("CITROEN_IPC_MAX_FRAME", "1024", 1);  // below the 64 KB floor
  EXPECT_EQ(sandbox::max_frame_payload(), sandbox::kMaxFramePayload);
  ::unsetenv("CITROEN_IPC_MAX_FRAME");
  EXPECT_EQ(sandbox::max_frame_payload(), sandbox::kMaxFramePayload);
}

TEST(Sandbox, RespawnBackoffJitterIsSeededAndBounded) {
  std::uint64_t s1 = 42, s2 = 42, s3 = 99;
  std::vector<double> a, b, c;
  for (int i = 0; i < 64; ++i) {
    a.push_back(sandbox::jittered_backoff(0.05, 0.5, &s1));
    b.push_back(sandbox::jittered_backoff(0.05, 0.5, &s2));
    c.push_back(sandbox::jittered_backoff(0.05, 0.5, &s3));
  }
  EXPECT_EQ(a, b) << "same seed must give the same schedule";
  EXPECT_NE(a, c) << "different seeds must decorrelate";
  for (const double v : a) {
    EXPECT_GE(v, 0.05 * 0.5 - 1e-12);  // [1 - jitter, 1 + jitter] bounds
    EXPECT_LE(v, 0.05 * 1.5 + 1e-12);
  }
  std::uint64_t s = 7;
  EXPECT_EQ(sandbox::jittered_backoff(0.2, 0.0, &s), 0.2);
  const double clamped = sandbox::jittered_backoff(1.0, 5.0, &s);
  EXPECT_GE(clamped, 0.0);  // jitter clamps to 1: factor within [0, 2]
  EXPECT_LE(clamped, 2.0);
}

TEST(SandboxIpc, ReaderReportsEofOnTornWrite) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::string frame = sandbox::encode_frame(std::string(128, 'y'));
  // Half a frame, then the writer "dies".
  ASSERT_EQ(::write(fds[1], frame.data(), frame.size() / 2),
            static_cast<ssize_t>(frame.size() / 2));
  ::close(fds[1]);
  sandbox::FrameReader reader(fds[0]);
  std::string payload, err;
  EXPECT_EQ(reader.read(&payload, /*timeout_seconds=*/5.0, &err),
            sandbox::IoStatus::Eof);
  ::close(fds[0]);
}

// ---- job/result codecs ----------------------------------------------------

TEST(SandboxProtocol, JobRoundTripsWithAndWithoutPlan) {
  sandbox::SandboxJob job;
  job.id = 0x1122334455667788ull;
  job.kind = sandbox::JobKind::Compile;
  job.assignment = make_assignment(3);
  for (const bool with_plan : {false, true}) {
    job.has_plan = with_plan;
    if (with_plan) {
      job.plan.seed = 99;
      job.plan.segv_rate = 0.25;
      job.plan.noise_sigma = 0.125;
    }
    sandbox::SandboxJob back;
    std::string err;
    ASSERT_TRUE(sandbox::decode_job(sandbox::encode_job(job), &back, &err))
        << err;
    EXPECT_EQ(back.id, job.id);
    EXPECT_EQ(back.kind, job.kind);
    EXPECT_EQ(back.has_plan, job.has_plan);
    if (with_plan) {
      EXPECT_EQ(back.plan.seed, job.plan.seed);
      EXPECT_EQ(back.plan.segv_rate, job.plan.segv_rate);
      EXPECT_EQ(back.plan.noise_sigma, job.plan.noise_sigma);
    }
    EXPECT_EQ(back.assignment, job.assignment);
  }
}

TEST(SandboxProtocol, ResultRoundTripsBitExactDoubles) {
  sandbox::SandboxResult res;
  res.id = 7;
  res.status = sandbox::ResultStatus::Ok;
  res.pure.built = true;
  res.pure.binary_hash = 0xdeadbeefcafef00dull;
  ir::ExecResult run;
  run.ok = true;
  run.ret = -12345;
  run.cycles = 0.1 + 0.2;  // not representable; must survive bit-exactly
  run.instructions = 987654321;
  res.pure.runs = {run, run};
  sandbox::SandboxResult back;
  std::string err;
  ASSERT_TRUE(sandbox::decode_result(sandbox::encode_result(res), &back,
                                     &err))
      << err;
  EXPECT_EQ(back.pure.binary_hash, res.pure.binary_hash);
  ASSERT_EQ(back.pure.runs.size(), 2u);
  EXPECT_EQ(back.pure.runs[0].ret, run.ret);
  EXPECT_EQ(back.pure.runs[0].cycles, run.cycles);
  EXPECT_EQ(back.pure.runs[0].instructions, run.instructions);
  EXPECT_TRUE(back.obs_events.empty());
  EXPECT_TRUE(back.obs_counters.empty());
}

TEST(SandboxProtocol, ResultRoundTripsObsDeltas) {
  sandbox::SandboxResult res;
  res.id = 9;
  res.pure.built = true;
  sandbox::ObsEventWire ev;
  ev.phase = 'B';
  ev.name = "build";
  ev.cat = "eval";
  ev.ts_ns = 123456789;
  res.obs_events.push_back(ev);
  ev.phase = 'I';
  ev.name = "prefix_snapshot_hit";
  ev.cat = "cache";
  ev.arg_name = "depth";
  ev.arg = 12;
  ev.str_arg = "detail \"quoted\"";
  res.obs_events.push_back(ev);
  res.obs_counters.emplace_back("citroen_builds_total", 3);
  res.obs_counters.emplace_back("citroen_measurements_total", 1);

  sandbox::SandboxResult back;
  std::string err;
  ASSERT_TRUE(sandbox::decode_result(sandbox::encode_result(res), &back,
                                     &err))
      << err;
  ASSERT_EQ(back.obs_events.size(), 2u);
  EXPECT_EQ(back.obs_events[0].phase, 'B');
  EXPECT_EQ(back.obs_events[0].name, "build");
  EXPECT_EQ(back.obs_events[0].cat, "eval");
  EXPECT_EQ(back.obs_events[0].ts_ns, 123456789u);
  EXPECT_EQ(back.obs_events[1].arg_name, "depth");
  EXPECT_EQ(back.obs_events[1].arg, 12u);
  EXPECT_EQ(back.obs_events[1].str_arg, "detail \"quoted\"");
  ASSERT_EQ(back.obs_counters.size(), 2u);
  EXPECT_EQ(back.obs_counters[0].first, "citroen_builds_total");
  EXPECT_EQ(back.obs_counters[0].second, 3u);
  EXPECT_EQ(back.obs_counters[1].second, 1u);
  // A truncated obs tail (the pre-obs frame layout) must be rejected, so
  // supervisor and worker can never skew silently across this field.
  const std::string bytes = sandbox::encode_result(res);
  EXPECT_FALSE(
      sandbox::decode_result(bytes.substr(0, bytes.size() - 4), &back, &err));
}

TEST(SandboxProtocol, MalformedPayloadsAreRejectedNotTrusted) {
  sandbox::SandboxJob job;
  std::string err;
  EXPECT_FALSE(sandbox::decode_job("", &job, &err));
  EXPECT_FALSE(sandbox::decode_job("\x07garbage", &job, &err));
  // Trailing bytes after a valid job are a framing bug somewhere: reject.
  sandbox::SandboxJob good;
  good.assignment = make_assignment(0);
  std::string bytes = sandbox::encode_job(good);
  bytes.push_back('\0');
  EXPECT_FALSE(sandbox::decode_job(bytes, &job, &err));
  sandbox::SandboxResult res;
  EXPECT_FALSE(sandbox::decode_result("\xff\xff", &res, &err));
}

TEST(SandboxProtocol, ProgressWordPacksAndUnpacks) {
  const std::uint64_t word = sandbox::pack_progress(
      0x1234567890ull, sandbox::WorkerStage::Build, 513);
  const auto p = sandbox::unpack_progress(word);
  EXPECT_EQ(p.job_id_lo, 0x34567890u);
  EXPECT_EQ(p.stage, sandbox::WorkerStage::Build);
  EXPECT_EQ(p.pass_id, 513);
}

// ---- end-to-end: byte identity --------------------------------------------

TEST(Sandbox, MatchesPlainEvaluationBitForBit) {
  sim::ProgramEvaluator plain(bench_suite::make_program("security_sha"),
                              sim::arm_a57_model());
  sim::ProgramEvaluator base(bench_suite::make_program("security_sha"),
                             sim::arm_a57_model());
  sandbox::SandboxConfig cfg;
  cfg.workers = 2;
  sandbox::SandboxedEvaluator sandboxed(base, cfg);

  std::vector<sim::SequenceAssignment> batch;
  for (int i = 0; i < 8; ++i) batch.push_back(make_assignment(i));

  // Batch through the sandbox (prefetch + replay), serial on the plain
  // evaluator: every outcome and the accounting must agree byte-for-byte.
  const auto sandboxed_out = sandboxed.evaluate_batch(batch);
  ASSERT_EQ(sandboxed_out.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto expect = plain.evaluate(batch[i]);
    EXPECT_EQ(outcome_bytes(sandboxed_out[i]), outcome_bytes(expect))
        << "candidate " << i;
  }
  EXPECT_EQ(sandboxed.num_compiles(), plain.num_compiles());
  EXPECT_EQ(sandboxed.num_measurements(), plain.num_measurements());
  EXPECT_EQ(sandboxed.num_cache_hits(), plain.num_cache_hits());
  EXPECT_FALSE(sandboxed.degraded());
}

TEST(Sandbox, CompileVettingMatchesPlain) {
  sim::ProgramEvaluator plain(bench_suite::make_program("security_sha"),
                              sim::arm_a57_model());
  sim::ProgramEvaluator base(bench_suite::make_program("security_sha"),
                             sim::arm_a57_model());
  sandbox::SandboxConfig cfg;
  cfg.workers = 1;
  sandbox::SandboxedEvaluator sandboxed(base, cfg);
  const auto a = make_assignment(1);
  const auto co_sandbox = sandboxed.compile(a);
  const auto co_plain = plain.compile(a);
  EXPECT_EQ(co_sandbox.valid, co_plain.valid);
  EXPECT_EQ(co_sandbox.binary_hash, co_plain.binary_hash);
  EXPECT_EQ(co_sandbox.code_size, co_plain.code_size);
  EXPECT_EQ(co_sandbox.stats.counters(), co_plain.stats.counters());
}

// ---- end-to-end: containment ----------------------------------------------

namespace {

/// One sandbox stack with a single real-fault class forced on: evaluate
/// candidate 0 (which must be contained), then verify clean service on
/// candidate 1.
struct ContainmentRig {
  sim::ProgramEvaluator base{bench_suite::make_program("security_sha"),
                             sim::arm_a57_model()};
  sim::FaultInjector faulty;
  sim::FaultInjector clean{sim::FaultPlan{}};
  sandbox::SandboxedEvaluator sb;

  static sim::FaultPlan plan(double segv, double oom, double spin) {
    sim::FaultPlan p;
    p.seed = 5;
    p.segv_rate = segv;
    p.oom_rate = oom;
    p.spin_rate = spin;
    return p;
  }
  static sandbox::SandboxConfig config(double wall_timeout) {
    sandbox::SandboxConfig cfg;
    cfg.workers = 1;
    cfg.breaker_threshold = 1000;
    cfg.job_wall_timeout_seconds = wall_timeout;
    return cfg;
  }

  ContainmentRig(double segv, double oom, double spin, double wall_timeout)
      : faulty(plan(segv, oom, spin)), sb(base, config(wall_timeout)) {
    sb.set_fault_injector(&faulty);
  }

  sim::EvalOutcome crash_outcome() { return sb.evaluate(make_assignment(0)); }
  bool still_serving() {
    sb.set_fault_injector(&clean);
    return sb.evaluate(make_assignment(1)).valid;
  }
};

}  // namespace

TEST(Sandbox, ContainsSegvAndNamesThePass) {
  ContainmentRig rig(1.0, 0, 0, 30.0);
  const auto out = rig.crash_outcome();
  EXPECT_FALSE(out.valid);
  EXPECT_EQ(out.failure, sim::FailureKind::WorkerCrash);
  // The crash signature carries the signal and the pass active at death.
  EXPECT_NE(out.why_invalid.find("signal"), std::string::npos)
      << out.why_invalid;
  EXPECT_NE(out.why_invalid.find("pass '"), std::string::npos)
      << out.why_invalid;
  EXPECT_TRUE(rig.still_serving());
  EXPECT_FALSE(rig.sb.degraded());
}

TEST(Sandbox, ContainsOom) {
  ContainmentRig rig(0, 1.0, 0, 30.0);
  const auto out = rig.crash_outcome();
  EXPECT_FALSE(out.valid);
  // Plain builds contain the OOM in-worker (bad_alloc -> WorkerOOM); ASan
  // builds abort on allocator exhaustion instead (-> WorkerCrash).
  EXPECT_TRUE(out.failure == sim::FailureKind::WorkerOOM ||
              out.failure == sim::FailureKind::WorkerCrash)
      << sim::failure_kind_name(out.failure);
  EXPECT_TRUE(rig.still_serving());
}

TEST(Sandbox, ContainsSpinAsTimeout) {
  ContainmentRig rig(0, 0, 1.0, 1.0);
  const auto out = rig.crash_outcome();
  EXPECT_FALSE(out.valid);
  EXPECT_EQ(out.failure, sim::FailureKind::WorkerTimeout);
  EXPECT_NE(out.why_invalid.find("deadline"), std::string::npos)
      << out.why_invalid;
  EXPECT_TRUE(rig.still_serving());
}

TEST(Sandbox, ContainsExternalSigkillMidJob) {
  sim::ProgramEvaluator base(bench_suite::make_program("security_sha"),
                             sim::arm_a57_model());
  sandbox::SandboxConfig cfg;
  cfg.workers = 1;
  cfg.kill_job_id = 0;  // murder the worker right after the first dispatch
  sandbox::SandboxedEvaluator sb(base, cfg);
  const auto out = sb.evaluate(make_assignment(0));
  EXPECT_FALSE(out.valid);
  EXPECT_EQ(out.failure, sim::FailureKind::WorkerCrash);
  EXPECT_TRUE(out.why_invalid.find("SIGKILL") != std::string::npos ||
              out.why_invalid.find("signal 9") != std::string::npos ||
              out.why_invalid.find("Killed") != std::string::npos)
      << out.why_invalid;
  EXPECT_GE(sb.sandbox_stats().respawns, 1u);
  // Same candidate again: the fatal verdict is memoized, no new dispatch.
  const auto again = sb.evaluate(make_assignment(0));
  EXPECT_EQ(again.failure, sim::FailureKind::WorkerCrash);
  // Different candidate: back to normal service on the respawned worker.
  EXPECT_TRUE(sb.evaluate(make_assignment(1)).valid);
}

TEST(Sandbox, BreakerDegradesToInProcessWhichIsImmuneToRealFaults) {
  sim::ProgramEvaluator base(bench_suite::make_program("security_sha"),
                             sim::arm_a57_model());
  sandbox::SandboxConfig cfg;
  cfg.workers = 1;
  cfg.breaker_threshold = 2;
  cfg.respawn_backoff_seconds = 0.001;
  sandbox::SandboxedEvaluator sb(base, cfg);
  sim::FaultPlan plan;
  plan.seed = 6;
  plan.segv_rate = 1.0;
  const sim::FaultInjector injector(plan);
  sb.set_fault_injector(&injector);

  const auto first = sb.evaluate(make_assignment(0));
  EXPECT_EQ(first.failure, sim::FailureKind::WorkerCrash);
  const auto second = sb.evaluate(make_assignment(1));
  EXPECT_EQ(second.failure, sim::FailureKind::WorkerCrash);
  EXPECT_TRUE(sb.degraded());
  EXPECT_EQ(sb.sandbox_stats().breaker_trips, 1u);
  // Post-trip: in-process evaluation never fires real-fault modes (the
  // degradation ladder's bottom rung keeps producing correct results).
  const auto third = sb.evaluate(make_assignment(2));
  EXPECT_TRUE(third.valid) << third.why_invalid;
  // But verdicts already earned stay authoritative.
  EXPECT_EQ(sb.evaluate(make_assignment(0)).failure,
            sim::FailureKind::WorkerCrash);
}

TEST(Sandbox, RobustLayerQuarantinesWorkerFailures) {
  sim::ProgramEvaluator base(bench_suite::make_program("security_sha"),
                             sim::arm_a57_model());
  sandbox::SandboxConfig cfg;
  cfg.workers = 1;
  cfg.breaker_threshold = 1000;
  sandbox::SandboxedEvaluator sb(base, cfg);
  sim::FaultPlan plan;
  plan.seed = 8;
  plan.segv_rate = 1.0;
  const sim::FaultInjector injector(plan);
  sim::RobustEvaluator robust(sb, sim::RobustConfig{}, &injector);

  const auto a = make_assignment(0);
  const auto out = robust.evaluate(a);
  EXPECT_FALSE(out.valid);
  EXPECT_TRUE(is_worker_failure(out.failure));
  EXPECT_TRUE(robust.is_quarantined(a));
  const auto& rs = robust.robust_stats();
  EXPECT_EQ(rs.failures.count("worker-crash"), 1u);
}
