// Unit and property tests for the MiniIR layer: builder, verifier,
// analyses, and the interpreter's semantics.

#include <gtest/gtest.h>

#include <cstring>

#include "ir/analysis.hpp"
#include "ir/builder.hpp"
#include "ir/interpreter.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"

using namespace citroen;
using namespace citroen::ir;

namespace {

/// main() { return <body>(); } with one module-level i32 data array.
struct TestProgram {
  Program p;
  Module& module() { return p.modules[0]; }
  Function& fn() { return p.modules[0].functions[0]; }
};

TestProgram make_single(const std::string& name = "f") {
  TestProgram tp;
  Module m;
  m.name = "m";
  create_function(m, name, kI64, {}, false);
  tp.p.modules.push_back(std::move(m));
  tp.p.entry = name;
  return tp;
}

}  // namespace

TEST(Type, WidthsAndSizes) {
  EXPECT_EQ(kI16.bit_width(), 16);
  EXPECT_EQ(kI16.elem_bytes(), 2);
  EXPECT_EQ(kI64.total_bytes(), 8);
  EXPECT_EQ(kI32.vector4().total_bytes(), 16);
  EXPECT_TRUE(kI32.vector4().is_vector());
  EXPECT_EQ(kF64.vector4().element(), kF64);
  EXPECT_EQ(kI1.str(), "i1");
  EXPECT_EQ(kF64.vector4().str(), "<4 x f64>");
}

TEST(Builder, StraightLineArithmetic) {
  auto tp = make_single();
  IRBuilder b(tp.fn());
  b.set_insert(0);
  const ValueId x = b.const_i64(20);
  const ValueId y = b.const_i64(22);
  b.ret(b.binop(Opcode::Add, x, y));
  ASSERT_TRUE(verify_module(tp.module()).empty());
  const auto r = interpret(tp.p);
  ASSERT_TRUE(r.ok) << r.trap;
  EXPECT_EQ(r.ret, 42);
}

TEST(Builder, CountedLoopSumsCorrectly) {
  auto tp = make_single();
  IRBuilder b(tp.fn());
  b.set_insert(0);
  const ValueId acc = b.stack_alloc(kI64);
  b.store(b.const_i64(0), acc);
  auto loop = b.begin_loop(b.const_i64(0), b.const_i64(10));
  b.store(b.binop(Opcode::Add, b.load(kI64, acc), loop.iv), acc);
  b.end_loop(loop);
  b.ret(b.load(kI64, acc));
  ASSERT_TRUE(verify_module(tp.module()).empty());
  const auto r = interpret(tp.p);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.ret, 45);  // 0+1+...+9
}

TEST(Builder, NestedLoopsAndStep) {
  auto tp = make_single();
  IRBuilder b(tp.fn());
  b.set_insert(0);
  const ValueId acc = b.stack_alloc(kI64);
  b.store(b.const_i64(0), acc);
  auto outer = b.begin_loop(b.const_i64(0), b.const_i64(4), 1, "o");
  auto inner = b.begin_loop(b.const_i64(0), b.const_i64(6), 2, "in");
  b.store(b.binop(Opcode::Add, b.load(kI64, acc), b.const_i64(1)), acc);
  b.end_loop(inner);
  b.end_loop(outer);
  b.ret(b.load(kI64, acc));
  const auto r = interpret(tp.p);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.ret, 4 * 3);  // inner runs ceil(6/2)=3 times
}

// ---- interpreter semantics: arithmetic wrap per width ----------------------

struct WrapCase {
  const char* name;
  Type type;
  Opcode op;
  std::int64_t a, b, expected;
};

class WrapSemantics : public ::testing::TestWithParam<WrapCase> {};

TEST_P(WrapSemantics, MatchesTwosComplement) {
  const auto& c = GetParam();
  auto tp = make_single();
  IRBuilder b(tp.fn());
  b.set_insert(0);
  const ValueId x = b.const_int(c.type, c.a);
  const ValueId y = b.const_int(c.type, c.b);
  const ValueId r = b.binop(c.op, x, y);
  b.ret(b.cast(Opcode::SExt, r, kI64));
  const auto out = interpret(tp.p);
  ASSERT_TRUE(out.ok) << out.trap;
  EXPECT_EQ(out.ret, c.expected) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, WrapSemantics,
    ::testing::Values(
        WrapCase{"i16_add_wrap", kI16, Opcode::Add, 32767, 1, -32768},
        WrapCase{"i16_mul_wrap", kI16, Opcode::Mul, 300, 300, 300 * 300 -
                                                                65536 * 1},
        WrapCase{"i32_add_wrap", kI32, Opcode::Add, 2147483647, 1,
                 -2147483648LL},
        WrapCase{"i32_sub", kI32, Opcode::Sub, -5, 7, -12},
        WrapCase{"i16_shl", kI16, Opcode::Shl, 0x4001, 1, -32766},
        WrapCase{"i32_lshr_signbit", kI32, Opcode::LShr, -2147483648LL, 31,
                 1},
        WrapCase{"i32_ashr", kI32, Opcode::AShr, -16, 2, -4},
        WrapCase{"i64_xor", kI64, Opcode::Xor, 0xff, 0x0f, 0xf0},
        WrapCase{"i16_sdiv", kI16, Opcode::SDiv, -7, 2, -3},
        WrapCase{"i16_srem", kI16, Opcode::SRem, -7, 2, -1}),
    [](const auto& info) { return info.param.name; });

TEST(Interpreter, DivisionByZeroTraps) {
  auto tp = make_single();
  IRBuilder b(tp.fn());
  b.set_insert(0);
  b.ret(b.binop(Opcode::SDiv, b.const_i64(1), b.const_i64(0)));
  const auto r = interpret(tp.p);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.trap.find("division"), std::string::npos);
}

TEST(Interpreter, OutOfBoundsLoadTraps) {
  auto tp = make_single();
  IRBuilder b(tp.fn());
  b.set_insert(0);
  b.ret(b.load(kI64, b.const_i64(0)));  // null-ish address
  const auto r = interpret(tp.p);
  EXPECT_FALSE(r.ok);
}

TEST(Interpreter, FuelLimitStopsInfiniteLoop) {
  auto tp = make_single();
  IRBuilder b(tp.fn());
  b.set_insert(0);
  const BlockId spin = b.new_block("spin");
  b.br(spin);
  b.set_insert(spin);
  b.br(spin);
  ExecLimits lim;
  lim.max_instructions = 10000;
  const auto r = interpret(tp.p, {}, lim);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.trap.find("budget"), std::string::npos);
}

TEST(Interpreter, MemoryRoundTripPerType) {
  auto tp = make_single();
  tp.module().globals.push_back(
      GlobalVar{"buf", std::vector<std::uint8_t>(64, 0)});
  IRBuilder b(tp.fn());
  b.set_insert(0);
  const ValueId base = b.global_addr(0);
  // Store i16 -123 and f64 2.5, read both back.
  b.store(b.const_i16(-123), base);
  const ValueId f_ptr = b.gep(base, b.const_i64(2), kF64);
  b.store(b.const_f64(2.5), f_ptr);
  const ValueId iv = b.cast(Opcode::SExt, b.load(kI16, base), kI64);
  const ValueId fv = b.cast(Opcode::FPToSI,
                            b.binop(Opcode::FMul, b.load(kF64, f_ptr),
                                    b.const_f64(4.0)),
                            kI64);
  b.ret(b.binop(Opcode::Add, iv, fv));
  const auto r = interpret(tp.p);
  ASSERT_TRUE(r.ok) << r.trap;
  EXPECT_EQ(r.ret, -123 + 10);
}

TEST(Interpreter, PhiParallelCopySemantics) {
  // Swap phis: (a, b) <- (b, a) each iteration; after an odd number of
  // iterations the values are exchanged. Catches sequential-assignment
  // bugs in phi resolution.
  auto tp = make_single();
  Function& f = tp.fn();
  IRBuilder b(f);
  b.set_insert(0);
  const ValueId c1 = b.const_i64(1);
  const ValueId c2 = b.const_i64(2);
  const ValueId c0 = b.const_i64(0);
  const ValueId c3 = b.const_i64(3);
  const BlockId header = b.new_block("header");
  const BlockId body = b.new_block("body");
  const BlockId exit = b.new_block("exit");
  b.br(header);
  b.set_insert(header);
  const ValueId iv = b.phi(kI64, {{c0, 0}});
  const ValueId pa = b.phi(kI64, {{c1, 0}});
  const ValueId pb = b.phi(kI64, {{c2, 0}});
  const ValueId cond = b.icmp(CmpPred::SLT, iv, c3);
  b.cond_br(cond, body, exit);
  b.set_insert(body);
  const ValueId next = b.binop(Opcode::Add, iv, c1);
  b.br(header);
  // Wire the back edges: iv<-next, a<-b, b<-a (the swap).
  f.instr(iv).ops.push_back(next);
  f.instr(iv).phi_blocks.push_back(body);
  f.instr(pa).ops.push_back(pb);
  f.instr(pa).phi_blocks.push_back(body);
  f.instr(pb).ops.push_back(pa);
  f.instr(pb).phi_blocks.push_back(body);
  b.set_insert(exit);
  const ValueId ten = b.const_i64(10);
  b.ret(b.binop(Opcode::Add, b.binop(Opcode::Mul, pa, ten), pb));
  ASSERT_TRUE(verify_module(tp.module()).empty())
      << verify_module(tp.module()).front();
  const auto r = interpret(tp.p);
  ASSERT_TRUE(r.ok) << r.trap;
  EXPECT_EQ(r.ret, 21);  // 3 swaps: (1,2)->(2,1)->(1,2)->(2,1)
}

TEST(Interpreter, CrossModuleCallsResolve) {
  Program p;
  Module callee_m;
  callee_m.name = "lib";
  create_function(callee_m, "forty", kI64, {}, false);
  {
    IRBuilder b(callee_m.functions[0]);
    b.set_insert(0);
    b.ret(b.const_i64(40));
  }
  Module main_m;
  main_m.name = "app";
  create_function(main_m, "main", kI64, {}, false);
  {
    IRBuilder b(main_m.functions[0]);
    b.set_insert(0);
    const ValueId r = b.call(kI64, "forty", {});
    b.ret(b.binop(Opcode::Add, r, b.const_i64(2)));
  }
  p.modules = {std::move(callee_m), std::move(main_m)};
  const auto r = interpret(p);
  ASSERT_TRUE(r.ok) << r.trap;
  EXPECT_EQ(r.ret, 42);
  EXPECT_GT(r.module_cycles.at("lib"), 0.0);
}

TEST(Interpreter, VectorOpsLaneWise) {
  auto tp = make_single();
  tp.module().globals.push_back(GlobalVar{"v", [] {
                                  std::vector<std::uint8_t> b(16);
                                  const std::int32_t vals[4] = {1, 2, 3, 4};
                                  std::memcpy(b.data(), vals, 16);
                                  return b;
                                }()});
  IRBuilder b(tp.fn());
  b.set_insert(0);
  const ValueId base = b.global_addr(0);
  Instr vl;
  vl.op = Opcode::Load;
  vl.type = kI32.vector4();
  vl.ops = {base};
  const ValueId vec = tp.fn().add_instr(std::move(vl));
  tp.fn().block(0).insts.push_back(vec);
  const ValueId two = b.const_i32(2);
  const ValueId splat = b.vsplat(two);
  const ValueId prod = b.binop(Opcode::Mul, vec, splat);
  const ValueId red = b.vreduce_add(prod);
  b.ret(b.cast(Opcode::SExt, red, kI64));
  const auto r = interpret(tp.p);
  ASSERT_TRUE(r.ok) << r.trap;
  EXPECT_EQ(r.ret, 2 * (1 + 2 + 3 + 4));
}

TEST(Verifier, CatchesUseBeforeDef) {
  auto tp = make_single();
  Function& f = tp.fn();
  IRBuilder b(f);
  b.set_insert(0);
  const ValueId x = b.const_i64(1);
  const ValueId y = b.binop(Opcode::Add, x, x);
  b.ret(y);
  // Swap the add before its operand's definition.
  auto& insts = f.block(0).insts;
  std::swap(insts[0], insts[1]);
  EXPECT_FALSE(verify_function(f).empty());
}

TEST(Verifier, CatchesMissingTerminator) {
  auto tp = make_single();
  IRBuilder b(tp.fn());
  b.set_insert(0);
  b.const_i64(1);  // no ret
  EXPECT_FALSE(verify_function(tp.fn()).empty());
}

TEST(Verifier, CatchesCrossBlockDominanceViolation) {
  auto tp = make_single();
  Function& f = tp.fn();
  IRBuilder b(f);
  b.set_insert(0);
  const ValueId c = b.const_i64(1);
  const ValueId cond = b.icmp(CmpPred::EQ, c, c);
  const BlockId t = b.new_block("t");
  const BlockId e = b.new_block("e");
  const BlockId j = b.new_block("j");
  b.cond_br(cond, t, e);
  b.set_insert(t);
  const ValueId only_t = b.binop(Opcode::Add, c, c);
  b.br(j);
  b.set_insert(e);
  b.br(j);
  b.set_insert(j);
  b.ret(only_t);  // defined only on the t-path
  EXPECT_FALSE(verify_function(f).empty());
}

TEST(Analysis, DominatorsOnDiamond) {
  auto tp = make_single();
  Function& f = tp.fn();
  IRBuilder b(f);
  b.set_insert(0);
  const ValueId c = b.const_i64(1);
  const ValueId cond = b.icmp(CmpPred::EQ, c, c);
  const BlockId t = b.new_block("t");
  const BlockId e = b.new_block("e");
  const BlockId j = b.new_block("j");
  b.cond_br(cond, t, e);
  b.set_insert(t);
  b.br(j);
  b.set_insert(e);
  b.br(j);
  b.set_insert(j);
  b.ret(c);
  const DomTree dt = compute_dominators(f);
  EXPECT_TRUE(dt.dominates(0, t));
  EXPECT_TRUE(dt.dominates(0, j));
  EXPECT_FALSE(dt.dominates(t, j));
  EXPECT_FALSE(dt.dominates(t, e));
  EXPECT_EQ(dt.idom[static_cast<std::size_t>(j)], 0);
}

TEST(Analysis, FindsNestedLoops) {
  auto tp = make_single();
  IRBuilder b(tp.fn());
  b.set_insert(0);
  auto outer = b.begin_loop(b.const_i64(0), b.const_i64(3), 1, "o");
  auto inner = b.begin_loop(b.const_i64(0), b.const_i64(3), 1, "in");
  b.end_loop(inner);
  b.end_loop(outer);
  b.ret(b.const_i64(0));
  const DomTree dt = compute_dominators(tp.fn());
  const auto loops = find_loops(tp.fn(), dt);
  ASSERT_EQ(loops.size(), 2u);
  EXPECT_EQ(loops[0].depth, 1);
  EXPECT_EQ(loops[1].depth, 2);
  EXPECT_TRUE(loops[0].contains(loops[1].header));
}

TEST(Analysis, RegisterPressureGrowsWithLiveValues) {
  auto narrow = make_single("n");
  {
    IRBuilder b(narrow.fn());
    b.set_insert(0);
    ValueId acc = b.const_i64(1);
    for (int i = 0; i < 10; ++i)
      acc = b.binop(Opcode::Add, acc, acc);  // chain: short live ranges
    b.ret(acc);
  }
  auto wide = make_single("w");
  {
    IRBuilder b(wide.fn());
    b.set_insert(0);
    std::vector<ValueId> vals;
    for (int i = 0; i < 24; ++i) vals.push_back(b.const_i64(i + 1));
    std::vector<ValueId> muls;
    for (int i = 0; i < 24; ++i)
      muls.push_back(b.binop(Opcode::Mul, vals[static_cast<std::size_t>(i)],
                             vals[static_cast<std::size_t>((i + 1) % 24)]));
    ValueId acc = muls[0];
    for (std::size_t i = 1; i < muls.size(); ++i)
      acc = b.binop(Opcode::Add, acc, muls[i]);
    b.ret(acc);
  }
  // All values in one block: pressure estimate uses live-out sets, which
  // are empty for straight-line single-block code; this documents the
  // approximation (block-boundary pressure only).
  EXPECT_GE(estimate_register_pressure(wide.fn()), 0);
  EXPECT_GE(estimate_register_pressure(narrow.fn()), 0);
}

TEST(Printer, RoundsTripStructure) {
  auto tp = make_single();
  IRBuilder b(tp.fn());
  b.set_insert(0);
  b.ret(b.binop(Opcode::Add, b.const_i64(1), b.const_i64(2)));
  const std::string s = print_function(tp.fn());
  EXPECT_NE(s.find("func @f"), std::string::npos);
  EXPECT_NE(s.find("add"), std::string::npos);
  EXPECT_NE(s.find("ret"), std::string::npos);
}
