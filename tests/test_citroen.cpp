// Integration tests for the CITROEN tuner and the baseline tuners.

#include <gtest/gtest.h>

#include "baselines/tuners.hpp"
#include "bench_suite/suite.hpp"
#include "citroen/tuner.hpp"
#include "sim/machine.hpp"

using namespace citroen;

namespace {

sim::ProgramEvaluator make_eval(const std::string& name) {
  return sim::ProgramEvaluator(bench_suite::make_program(name),
                               sim::arm_a57_model());
}

core::CitroenConfig small_config(int budget, std::uint64_t seed = 1) {
  core::CitroenConfig cfg;
  cfg.budget = budget;
  cfg.initial_random = budget / 5 + 2;
  cfg.candidates_per_iter = 9;
  cfg.gp.fit_steps = 6;
  cfg.seed = seed;
  return cfg;
}

}  // namespace

TEST(Citroen, BeatsO3OnTelecomGsm) {
  auto eval = make_eval("telecom_gsm");
  core::CitroenTuner tuner(eval, small_config(40));
  const auto r = tuner.run();
  EXPECT_EQ(r.measurements, 40);
  // The Fig. 5.1 motif guarantees headroom above -O3 (whose fixed order
  // runs instcombine before the SLP vectoriser).
  EXPECT_GT(r.best_speedup, 1.0);
  EXPECT_FALSE(r.best_assignment.empty());
  EXPECT_FALSE(r.stat_relevance.empty());
  EXPECT_GT(r.compiles, 40);
}

TEST(Citroen, TunesSelectedHotModules) {
  auto eval = make_eval("telecom_gsm");
  core::CitroenTuner tuner(eval, small_config(10));
  // long_term dominates the gsm runtime; it must be among tuned modules.
  const auto& mods = tuner.tuned_modules();
  EXPECT_TRUE(std::find(mods.begin(), mods.end(), "long_term") !=
              mods.end());
  EXPECT_TRUE(std::find(mods.begin(), mods.end(), "driver") == mods.end());
}

TEST(Citroen, AblationsRun) {
  for (const bool coverage : {true, false}) {
    for (const bool heuristic : {true, false}) {
      auto eval = make_eval("security_sha");
      auto cfg = small_config(15);
      cfg.coverage_af = coverage;
      cfg.heuristic_generator = heuristic;
      core::CitroenTuner tuner(eval, cfg);
      const auto r = tuner.run();
      EXPECT_EQ(r.measurements, 15);
      EXPECT_GT(r.best_speedup, 0.0);
    }
  }
}

TEST(Citroen, AlternativeFeatureSpacesRun) {
  using F = core::CitroenConfig::Features;
  for (const F f : {F::Stats, F::Autophase, F::RawSequence}) {
    auto eval = make_eval("office_stringsearch");
    auto cfg = small_config(12);
    cfg.features = f;
    core::CitroenTuner tuner(eval, cfg);
    const auto r = tuner.run();
    EXPECT_EQ(r.measurements, 12) << static_cast<int>(f);
  }
}

TEST(Citroen, SpeedupCurveIsMonotone) {
  auto eval = make_eval("spec_x264");
  core::CitroenTuner tuner(eval, small_config(20));
  const auto r = tuner.run();
  for (std::size_t i = 1; i < r.speedup_curve.size(); ++i)
    EXPECT_GE(r.speedup_curve[i], r.speedup_curve[i - 1]);
}

TEST(Baselines, AllTunersProduceFullCurves) {
  baselines::PhaseTunerConfig cfg;
  cfg.budget = 12;
  cfg.seed = 3;
  using Runner = baselines::TuneTrace (*)(sim::Evaluator&,
                                          const baselines::PhaseTunerConfig&);
  const std::pair<const char*, Runner> tuners[] = {
      {"random", baselines::run_random_search},
      {"ga", baselines::run_ga_tuner},
      {"des", baselines::run_des_tuner},
      {"opentuner", baselines::run_ensemble_tuner},
      {"boca", baselines::run_rf_bo_tuner},
  };
  for (const auto& [name, fn] : tuners) {
    auto eval = make_eval("bzip2");
    const auto t = fn(eval, cfg);
    EXPECT_EQ(t.speedup_curve.size(), 12u) << name;
    EXPECT_GT(t.best_speedup, 0.0) << name;
    EXPECT_EQ(t.tuner, name);
  }
}

TEST(Baselines, HotModuleSelectionSkipsDriver) {
  auto eval = make_eval("consumer_jpeg");
  const auto mods = baselines::select_hot_modules(eval, 0.9, 3);
  EXPECT_FALSE(mods.empty());
  for (const auto& m : mods) EXPECT_NE(m, "driver");
}

TEST(Citroen, AdaptiveAllocationFavoursHeadroomModule) {
  // telecom_gsm's headroom is concentrated in long_term (the SLP motif).
  // The adaptive bandit should send more measurements its way (or to the
  // joint arm) than to the low-headroom modules.
  auto eval = make_eval("telecom_gsm");
  auto cfg = small_config(45, 7);
  core::CitroenTuner tuner(eval, cfg);
  const auto r = tuner.run();
  int long_term = 0, others = 0;
  for (const auto& [mod, n] : r.measurements_per_module) {
    if (mod == "long_term" || mod == "<joint>") {
      long_term += n;
    } else {
      others += n;
    }
  }
  EXPECT_GT(long_term, others / 2)
      << "adaptive allocation starved the headroom module";
}

TEST(Citroen, LegacyPassSpaceRestrictsSequences) {
  auto eval = make_eval("telecom_gsm");
  auto cfg = small_config(12);
  cfg.pass_space = passes::legacy_pass_names();
  core::CitroenTuner tuner(eval, cfg);
  const auto r = tuner.run();
  for (const auto& [mod, seq] : r.best_assignment) {
    for (const auto& p : seq) {
      EXPECT_NE(p, "slp-vectorizer");
      EXPECT_NE(p, "function-attrs");
    }
  }
}

TEST(Citroen, InvalidBudgetZeroIsHarmless) {
  auto eval = make_eval("security_sha");
  auto cfg = small_config(0);
  core::CitroenTuner tuner(eval, cfg);
  const auto r = tuner.run();
  EXPECT_EQ(r.measurements, 0);
  EXPECT_TRUE(r.speedup_curve.empty());
}
