// Unit tests for the distributed evaluation tier (src/dist/): the wire
// codec, endpoint parsing, evaluator fingerprinting, and a DistEvaluator
// driving one real forked peer — plus the graceful-degradation path when
// no peer is reachable. The adversarial scenarios (mid-job SIGKILL,
// hangs, garbage frames) live in bench/ext_dist_containment.cpp.

#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include "bench_suite/suite.hpp"
#include "dist/peer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "dist/pool.hpp"
#include "dist/wire.hpp"
#include "sandbox/ipc.hpp"
#include "sim/evaluator.hpp"
#include "sim/machine.hpp"

using namespace citroen;

namespace {

/// A forked Unix-socket peer, killed and reaped on scope exit.
struct ScopedPeer {
  std::string path;
  pid_t pid = -1;

  explicit ScopedPeer(dist::PeerOptions options = {}) {
    static int counter = 0;
    path = "/tmp/citroen_test_dist_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter++) + ".sock";
    std::string error;
    pid = dist::spawn_peer(path, options, &error);
    EXPECT_GT(pid, 0) << error;
  }
  ~ScopedPeer() {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      int status = 0;
      ::waitpid(pid, &status, 0);
    }
    ::unlink(path.c_str());
  }
};

void expect_same_outcome(const sim::EvalOutcome& a, const sim::EvalOutcome& b,
                         const char* what) {
  EXPECT_EQ(a.valid, b.valid) << what;
  EXPECT_EQ(a.failure, b.failure) << what;
  EXPECT_EQ(a.cycles, b.cycles) << what;
  EXPECT_EQ(a.speedup, b.speedup) << what;
  EXPECT_EQ(a.binary_hash, b.binary_hash) << what;
  EXPECT_EQ(a.code_size, b.code_size) << what;
}

sim::SequenceAssignment candidate(int i) {
  std::vector<std::string> seq = {"mem2reg", "instcombine", "simplifycfg",
                                  "gvn", "dce"};
  if (i % 2) seq.push_back("early-cse");
  if (i % 3) seq.push_back("sroa");
  sim::SequenceAssignment a;
  a["sha"] = seq;
  return a;
}

}  // namespace

// ---- wire codec ------------------------------------------------------------

TEST(DistWire, TagUntagRoundTrips) {
  const std::string payload = dist::tag_message(dist::PeerMsg::Job, "body!");
  dist::PeerMsg tag{};
  std::string_view body;
  ASSERT_TRUE(dist::untag_message(payload, &tag, &body));
  EXPECT_EQ(tag, dist::PeerMsg::Job);
  EXPECT_EQ(body, "body!");
}

TEST(DistWire, UntagRejectsEmptyAndOutOfRangeTags) {
  dist::PeerMsg tag{};
  std::string_view body;
  EXPECT_FALSE(dist::untag_message("", &tag, &body));
  EXPECT_FALSE(dist::untag_message(std::string(1, '\0'), &tag, &body));
  EXPECT_FALSE(dist::untag_message(std::string(1, '\x7f') + "rest", &tag,
                                   &body));
}

TEST(DistWire, HelloRoundTrips) {
  dist::ProgramSpec spec;
  spec.program = "security_sha";
  spec.machine = "x86";
  spec.workload_seed = 7;
  spec.extra_workload_seeds = {11, 13};
  spec.max_instructions = 1234567;
  spec.max_memory_bytes = 1 << 20;
  spec.max_call_depth = 99;

  dist::ProgramSpec back;
  std::string error;
  ASSERT_TRUE(dist::decode_hello(dist::encode_hello(spec), &back, &error))
      << error;
  EXPECT_EQ(back.program, spec.program);
  EXPECT_EQ(back.machine, spec.machine);
  EXPECT_EQ(back.workload_seed, spec.workload_seed);
  EXPECT_EQ(back.extra_workload_seeds, spec.extra_workload_seeds);
  EXPECT_EQ(back.max_instructions, spec.max_instructions);
  EXPECT_EQ(back.max_memory_bytes, spec.max_memory_bytes);
  EXPECT_EQ(back.max_call_depth, spec.max_call_depth);
}

TEST(DistWire, HelloDecodeRejectsTruncation) {
  dist::ProgramSpec spec;
  spec.program = "security_sha";
  const std::string bytes = dist::encode_hello(spec);
  dist::ProgramSpec back;
  std::string error;
  EXPECT_FALSE(
      dist::decode_hello(std::string_view(bytes).substr(0, bytes.size() / 2),
                         &back, &error));
}

TEST(DistWire, HelloOkHelloErrNonceRoundTrip) {
  std::uint64_t pid = 0, fp = 0;
  ASSERT_TRUE(dist::decode_hello_ok(
      dist::encode_hello_ok(4321, 0xdeadbeefcafef00dull), &pid, &fp));
  EXPECT_EQ(pid, 4321u);
  EXPECT_EQ(fp, 0xdeadbeefcafef00dull);

  std::string reason;
  ASSERT_TRUE(dist::decode_hello_err(dist::encode_hello_err("bad version"),
                                     &reason));
  EXPECT_EQ(reason, "bad version");

  std::uint64_t nonce = 0;
  ASSERT_TRUE(dist::decode_nonce(dist::encode_nonce(777), &nonce));
  EXPECT_EQ(nonce, 777u);
}

TEST(DistWire, FingerprintSeparatesProgramsButNotInstances) {
  sim::ProgramEvaluator a(bench_suite::make_program("security_sha"),
                          sim::machine_by_name("arm"));
  sim::ProgramEvaluator b(bench_suite::make_program("security_sha"),
                          sim::machine_by_name("arm"));
  sim::ProgramEvaluator c(bench_suite::make_program("office_stringsearch"),
                          sim::machine_by_name("arm"));
  EXPECT_EQ(dist::evaluator_fingerprint(a), dist::evaluator_fingerprint(b));
  EXPECT_NE(dist::evaluator_fingerprint(a), dist::evaluator_fingerprint(c));
}

// ---- endpoint parsing & spec building --------------------------------------

TEST(DistPool, ParsePeerListSplitsTrimsAndDropsEmpties) {
  const auto got = dist::parse_peer_list(
      " unix:/tmp/a.sock ,, 127.0.0.1:9000,\ttcp:10.0.0.1:80 ,");
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], "unix:/tmp/a.sock");
  EXPECT_EQ(got[1], "127.0.0.1:9000");
  EXPECT_EQ(got[2], "tcp:10.0.0.1:80");
  EXPECT_TRUE(dist::parse_peer_list("").empty());
  EXPECT_TRUE(dist::parse_peer_list(" , ,").empty());
}

TEST(DistPool, MakeProgramSpecMirrorsEvaluator) {
  sim::ProgramEvaluator eval(bench_suite::make_program("security_sha"),
                             sim::machine_by_name("arm"));
  const auto spec = dist::make_program_spec(eval, "arm");
  EXPECT_EQ(spec.program, "security_sha");
  EXPECT_EQ(spec.machine, "arm");
  EXPECT_EQ(spec.workload_seed, 42u);
  EXPECT_EQ(spec.max_instructions, eval.exec_limits().max_instructions);
  EXPECT_EQ(spec.max_memory_bytes, eval.exec_limits().max_memory_bytes);
  EXPECT_EQ(spec.max_call_depth, eval.exec_limits().max_call_depth);
}

// ---- DistEvaluator end to end ----------------------------------------------

TEST(DistEvaluator, RemoteEvaluationMatchesLocalByteForByte) {
  ScopedPeer peer;
  ASSERT_GT(peer.pid, 0);

  sim::ProgramEvaluator plain(bench_suite::make_program("security_sha"),
                              sim::machine_by_name("arm"));
  sim::ProgramEvaluator bottom(bench_suite::make_program("security_sha"),
                               sim::machine_by_name("arm"));
  dist::DistConfig cfg;
  cfg.peers = {peer.path};
  cfg.spec = dist::make_program_spec(bottom, "arm");
  dist::DistEvaluator pool(bottom, bottom, cfg);

  for (int i = 0; i < 3; ++i) {
    const auto want = plain.evaluate(candidate(i));
    const auto got = pool.evaluate(candidate(i));
    expect_same_outcome(got, want, "remote vs local");
  }
  EXPECT_GE(pool.dist_stats().jobs_ok, 1u);
  EXPECT_EQ(pool.dist_stats().local_fallback, 0u);
  EXPECT_FALSE(pool.degraded());
}

TEST(DistEvaluator, BrownoutFallsBackToLocalStack) {
  const std::string bogus = "/tmp/citroen_test_dist_nobody_" +
                            std::to_string(::getpid()) + ".sock";
  sim::ProgramEvaluator plain(bench_suite::make_program("security_sha"),
                              sim::machine_by_name("arm"));
  sim::ProgramEvaluator bottom(bench_suite::make_program("security_sha"),
                               sim::machine_by_name("arm"));
  dist::DistConfig cfg;
  cfg.peers = {bogus};
  cfg.spec = dist::make_program_spec(bottom, "arm");
  cfg.connect_timeout_seconds = 0.1;
  cfg.reconnect_backoff_seconds = 0.001;
  cfg.breaker_threshold = 1;
  dist::DistEvaluator pool(bottom, bottom, cfg);

  const auto want = plain.evaluate(candidate(0));
  const auto got = pool.evaluate(candidate(0));
  expect_same_outcome(got, want, "brownout fallback");
  EXPECT_TRUE(pool.degraded());
  EXPECT_EQ(pool.dist_stats().jobs_ok, 0u);
  EXPECT_GE(pool.dist_stats().local_fallback, 1u);
}

TEST(DistEvaluator, BreakerStateIsVisibleInMetricsExport) {
  // Satellite of the transfer-corpus PR: per-peer circuit-breaker state
  // and reconnect/backoff totals must be visible in the Prometheus
  // export, so a fleet operator can see WHICH peer is flapping.
  obs::metrics_force_enable(true);
  const std::string bogus = "/tmp/citroen_test_dist_nobody_m_" +
                            std::to_string(::getpid()) + ".sock";
  sim::ProgramEvaluator bottom(bench_suite::make_program("security_sha"),
                               sim::machine_by_name("arm"));
  dist::DistConfig cfg;
  cfg.peers = {bogus};
  cfg.spec = dist::make_program_spec(bottom, "arm");
  cfg.connect_timeout_seconds = 0.1;
  cfg.reconnect_backoff_seconds = 0.001;
  cfg.breaker_threshold = 2;  // one backoff round, then the ban
  dist::DistEvaluator pool(bottom, bottom, cfg);
  pool.evaluate(candidate(0));
  obs::metrics_force_enable(false);

  EXPECT_TRUE(pool.degraded());
  EXPECT_GE(pool.dist_stats().reconnect_attempts, 2u);
  EXPECT_GE(pool.dist_stats().backoffs, 1u);
  EXPECT_EQ(pool.dist_stats().bans, 1u);

  auto& reg = obs::Registry::instance();
  const std::string prom = reg.prometheus_text();
  // Per-peer state is one labeled family per quantity (peer="<index>"),
  // not a metric name per peer.
  for (const char* metric :
       {"citroen_dist_peer_banned{peer=\"0\"}",
        "citroen_dist_peer_connected{peer=\"0\"}",
        "citroen_dist_peer_consecutive_failures{peer=\"0\"}",
        "citroen_dist_peers_banned", "citroen_dist_degraded",
        "citroen_dist_reconnect_attempts_total",
        "citroen_dist_backoffs_total", "citroen_dist_bans_total"}) {
    EXPECT_NE(prom.find(metric), std::string::npos)
        << "missing from Prometheus export: " << metric;
  }
  EXPECT_NE(prom.find("citroen_dist_peer_banned{peer=\"0\"} 1"),
            std::string::npos)
      << prom.substr(0, 400);

  // The same health rows the daemon's Inspect snapshot serves.
  const auto health = pool.peer_health();
  ASSERT_EQ(health.size(), 1u);
  EXPECT_EQ(health[0].endpoint, bogus);
  EXPECT_FALSE(health[0].connected);
  EXPECT_TRUE(health[0].banned);
  EXPECT_GE(health[0].consecutive_failures, 2);
}

// ---- clock-offset handshake ------------------------------------------------

namespace {

std::uint64_t mono_ns() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

/// A scripted peer with an adjustable clock: for each entry in `skews`
/// it accepts one connection, answers the Hello with a HelloOk stamped
/// at (real now + skew), swallows the job frame, and hangs up — so the
/// pool measures the offset, then classifies the peer lost and the job
/// falls back to the local stack.
void serve_skewed(int listen_fd, std::uint64_t fingerprint,
                  std::vector<std::int64_t> skews) {
  for (const std::int64_t skew : skews) {
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) return;
    sandbox::FrameReader reader(conn);
    std::string payload;
    if (reader.read(&payload, 10.0) == sandbox::IoStatus::Ok) {
      dist::PeerMsg tag{};
      std::string_view body;
      if (dist::untag_message(payload, &tag, &body) &&
          tag == dist::PeerMsg::Hello) {
        const std::uint64_t stamped = obs::apply_clock_offset(mono_ns(), skew);
        sandbox::write_frame(
            conn,
            dist::tag_message(dist::PeerMsg::HelloOk,
                              dist::encode_hello_ok(1, fingerprint, stamped)));
        reader.read(&payload, 10.0);  // the job frame; never answered
      }
    }
    ::close(conn);
  }
  ::close(listen_fd);
}

std::string skew_socket_path(int i) {
  return "/tmp/citroen_test_dist_skew_" + std::to_string(::getpid()) + "_" +
         std::to_string(i) + ".sock";
}

/// Evaluate one candidate against a skewed scripted peer and return the
/// handshake-measured offset.
std::int64_t measure_offset_against(std::int64_t skew_ns, int path_index) {
  const std::string path = skew_socket_path(path_index);
  std::string error;
  const int listen_fd = dist::listen_unix(path, &error);
  EXPECT_GE(listen_fd, 0) << error;

  sim::ProgramEvaluator bottom(bench_suite::make_program("security_sha"),
                               sim::machine_by_name("arm"));
  std::thread peer(serve_skewed, listen_fd, dist::evaluator_fingerprint(bottom),
                   std::vector<std::int64_t>{skew_ns});

  dist::DistConfig cfg;
  cfg.peers = {path};
  cfg.spec = dist::make_program_spec(bottom, "arm");
  cfg.connect_timeout_seconds = 5.0;
  cfg.job_wall_timeout_seconds = 1.0;
  cfg.max_attempts_per_job = 1;  // one handshake, then local fallback
  dist::DistEvaluator pool(bottom, bottom, cfg);
  pool.evaluate(candidate(0));

  peer.join();
  ::unlink(path.c_str());
  return pool.peer_clock_offset_ns(0);
}

}  // namespace

TEST(DistClock, HandshakeMeasuresSkewedOffset) {
  // A peer whose monotonic clock reads 3s ahead must measure as roughly
  // +3s (error bounded by half the loopback RTT, generously 250ms here).
  const std::int64_t skew = 3'000'000'000;
  const std::int64_t got = measure_offset_against(skew, 0);
  EXPECT_NEAR(static_cast<double>(got), static_cast<double>(skew), 250e6);
}

TEST(DistClock, HandshakeMeasuresNegativeOffset) {
  const std::int64_t skew = -3'000'000'000;
  const std::int64_t got = measure_offset_against(skew, 1);
  EXPECT_NEAR(static_cast<double>(got), static_cast<double>(skew), 250e6);
}

TEST(DistClock, OffsetRemeasuredOnReconnect) {
  // The peer restarts with a different clock (step, reboot, new box
  // behind the same endpoint): the next handshake must replace the old
  // offset, not keep serving the stale one.
  const std::string path = skew_socket_path(2);
  std::string error;
  const int listen_fd = dist::listen_unix(path, &error);
  ASSERT_GE(listen_fd, 0) << error;

  sim::ProgramEvaluator bottom(bench_suite::make_program("security_sha"),
                               sim::machine_by_name("arm"));
  std::thread peer(
      serve_skewed, listen_fd, dist::evaluator_fingerprint(bottom),
      std::vector<std::int64_t>{2'000'000'000, -2'000'000'000});

  dist::DistConfig cfg;
  cfg.peers = {path};
  cfg.spec = dist::make_program_spec(bottom, "arm");
  cfg.connect_timeout_seconds = 5.0;
  cfg.job_wall_timeout_seconds = 1.0;
  cfg.max_attempts_per_job = 1;
  cfg.breaker_threshold = 10;  // two lost jobs must not ban the peer
  cfg.reconnect_backoff_seconds = 0.001;
  cfg.reconnect_backoff_max_seconds = 0.002;
  dist::DistEvaluator pool(bottom, bottom, cfg);

  pool.evaluate(candidate(0));
  EXPECT_NEAR(static_cast<double>(pool.peer_clock_offset_ns(0)), 2e9, 250e6);

  ::usleep(50 * 1000);  // clear the reconnect backoff gate
  pool.evaluate(candidate(1));
  EXPECT_NEAR(static_cast<double>(pool.peer_clock_offset_ns(0)), -2e9, 250e6);
  EXPECT_GE(pool.dist_stats().connects, 2u);

  peer.join();
  ::unlink(path.c_str());
}

TEST(DistClock, RealPeerOffsetIsNearZero) {
  // Same machine, same CLOCK_MONOTONIC: the measured offset against a
  // real forked peer is bounded by the handshake RTT.
  ScopedPeer peer;
  sim::ProgramEvaluator bottom(bench_suite::make_program("security_sha"),
                               sim::machine_by_name("arm"));
  dist::DistConfig cfg;
  cfg.peers = {peer.path};
  cfg.spec = dist::make_program_spec(bottom, "arm");
  dist::DistEvaluator pool(bottom, bottom, cfg);
  pool.evaluate(candidate(0));
  ASSERT_FALSE(pool.degraded());
  EXPECT_LT(std::llabs(pool.peer_clock_offset_ns(0)), 1'000'000'000ll);
}

TEST(DistEvaluator, EmptyPeerListIsInert) {
  ::unsetenv("CITROEN_PEERS");
  sim::ProgramEvaluator plain(bench_suite::make_program("security_sha"),
                              sim::machine_by_name("arm"));
  sim::ProgramEvaluator bottom(bench_suite::make_program("security_sha"),
                               sim::machine_by_name("arm"));
  dist::DistEvaluator pool(bottom, bottom, {});
  EXPECT_EQ(pool.peer_count(), 0);
  expect_same_outcome(pool.evaluate(candidate(1)), plain.evaluate(candidate(1)),
                      "inert pool");
  EXPECT_EQ(pool.dist_stats().jobs_dispatched, 0u);
}
