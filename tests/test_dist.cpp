// Unit tests for the distributed evaluation tier (src/dist/): the wire
// codec, endpoint parsing, evaluator fingerprinting, and a DistEvaluator
// driving one real forked peer — plus the graceful-degradation path when
// no peer is reachable. The adversarial scenarios (mid-job SIGKILL,
// hangs, garbage frames) live in bench/ext_dist_containment.cpp.

#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "bench_suite/suite.hpp"
#include "dist/peer.hpp"
#include "obs/metrics.hpp"
#include "dist/pool.hpp"
#include "dist/wire.hpp"
#include "sim/evaluator.hpp"
#include "sim/machine.hpp"

using namespace citroen;

namespace {

/// A forked Unix-socket peer, killed and reaped on scope exit.
struct ScopedPeer {
  std::string path;
  pid_t pid = -1;

  explicit ScopedPeer(dist::PeerOptions options = {}) {
    static int counter = 0;
    path = "/tmp/citroen_test_dist_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter++) + ".sock";
    std::string error;
    pid = dist::spawn_peer(path, options, &error);
    EXPECT_GT(pid, 0) << error;
  }
  ~ScopedPeer() {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      int status = 0;
      ::waitpid(pid, &status, 0);
    }
    ::unlink(path.c_str());
  }
};

void expect_same_outcome(const sim::EvalOutcome& a, const sim::EvalOutcome& b,
                         const char* what) {
  EXPECT_EQ(a.valid, b.valid) << what;
  EXPECT_EQ(a.failure, b.failure) << what;
  EXPECT_EQ(a.cycles, b.cycles) << what;
  EXPECT_EQ(a.speedup, b.speedup) << what;
  EXPECT_EQ(a.binary_hash, b.binary_hash) << what;
  EXPECT_EQ(a.code_size, b.code_size) << what;
}

sim::SequenceAssignment candidate(int i) {
  std::vector<std::string> seq = {"mem2reg", "instcombine", "simplifycfg",
                                  "gvn", "dce"};
  if (i % 2) seq.push_back("early-cse");
  if (i % 3) seq.push_back("sroa");
  sim::SequenceAssignment a;
  a["sha"] = seq;
  return a;
}

}  // namespace

// ---- wire codec ------------------------------------------------------------

TEST(DistWire, TagUntagRoundTrips) {
  const std::string payload = dist::tag_message(dist::PeerMsg::Job, "body!");
  dist::PeerMsg tag{};
  std::string_view body;
  ASSERT_TRUE(dist::untag_message(payload, &tag, &body));
  EXPECT_EQ(tag, dist::PeerMsg::Job);
  EXPECT_EQ(body, "body!");
}

TEST(DistWire, UntagRejectsEmptyAndOutOfRangeTags) {
  dist::PeerMsg tag{};
  std::string_view body;
  EXPECT_FALSE(dist::untag_message("", &tag, &body));
  EXPECT_FALSE(dist::untag_message(std::string(1, '\0'), &tag, &body));
  EXPECT_FALSE(dist::untag_message(std::string(1, '\x7f') + "rest", &tag,
                                   &body));
}

TEST(DistWire, HelloRoundTrips) {
  dist::ProgramSpec spec;
  spec.program = "security_sha";
  spec.machine = "x86";
  spec.workload_seed = 7;
  spec.extra_workload_seeds = {11, 13};
  spec.max_instructions = 1234567;
  spec.max_memory_bytes = 1 << 20;
  spec.max_call_depth = 99;

  dist::ProgramSpec back;
  std::string error;
  ASSERT_TRUE(dist::decode_hello(dist::encode_hello(spec), &back, &error))
      << error;
  EXPECT_EQ(back.program, spec.program);
  EXPECT_EQ(back.machine, spec.machine);
  EXPECT_EQ(back.workload_seed, spec.workload_seed);
  EXPECT_EQ(back.extra_workload_seeds, spec.extra_workload_seeds);
  EXPECT_EQ(back.max_instructions, spec.max_instructions);
  EXPECT_EQ(back.max_memory_bytes, spec.max_memory_bytes);
  EXPECT_EQ(back.max_call_depth, spec.max_call_depth);
}

TEST(DistWire, HelloDecodeRejectsTruncation) {
  dist::ProgramSpec spec;
  spec.program = "security_sha";
  const std::string bytes = dist::encode_hello(spec);
  dist::ProgramSpec back;
  std::string error;
  EXPECT_FALSE(
      dist::decode_hello(std::string_view(bytes).substr(0, bytes.size() / 2),
                         &back, &error));
}

TEST(DistWire, HelloOkHelloErrNonceRoundTrip) {
  std::uint64_t pid = 0, fp = 0;
  ASSERT_TRUE(dist::decode_hello_ok(
      dist::encode_hello_ok(4321, 0xdeadbeefcafef00dull), &pid, &fp));
  EXPECT_EQ(pid, 4321u);
  EXPECT_EQ(fp, 0xdeadbeefcafef00dull);

  std::string reason;
  ASSERT_TRUE(dist::decode_hello_err(dist::encode_hello_err("bad version"),
                                     &reason));
  EXPECT_EQ(reason, "bad version");

  std::uint64_t nonce = 0;
  ASSERT_TRUE(dist::decode_nonce(dist::encode_nonce(777), &nonce));
  EXPECT_EQ(nonce, 777u);
}

TEST(DistWire, FingerprintSeparatesProgramsButNotInstances) {
  sim::ProgramEvaluator a(bench_suite::make_program("security_sha"),
                          sim::machine_by_name("arm"));
  sim::ProgramEvaluator b(bench_suite::make_program("security_sha"),
                          sim::machine_by_name("arm"));
  sim::ProgramEvaluator c(bench_suite::make_program("office_stringsearch"),
                          sim::machine_by_name("arm"));
  EXPECT_EQ(dist::evaluator_fingerprint(a), dist::evaluator_fingerprint(b));
  EXPECT_NE(dist::evaluator_fingerprint(a), dist::evaluator_fingerprint(c));
}

// ---- endpoint parsing & spec building --------------------------------------

TEST(DistPool, ParsePeerListSplitsTrimsAndDropsEmpties) {
  const auto got = dist::parse_peer_list(
      " unix:/tmp/a.sock ,, 127.0.0.1:9000,\ttcp:10.0.0.1:80 ,");
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], "unix:/tmp/a.sock");
  EXPECT_EQ(got[1], "127.0.0.1:9000");
  EXPECT_EQ(got[2], "tcp:10.0.0.1:80");
  EXPECT_TRUE(dist::parse_peer_list("").empty());
  EXPECT_TRUE(dist::parse_peer_list(" , ,").empty());
}

TEST(DistPool, MakeProgramSpecMirrorsEvaluator) {
  sim::ProgramEvaluator eval(bench_suite::make_program("security_sha"),
                             sim::machine_by_name("arm"));
  const auto spec = dist::make_program_spec(eval, "arm");
  EXPECT_EQ(spec.program, "security_sha");
  EXPECT_EQ(spec.machine, "arm");
  EXPECT_EQ(spec.workload_seed, 42u);
  EXPECT_EQ(spec.max_instructions, eval.exec_limits().max_instructions);
  EXPECT_EQ(spec.max_memory_bytes, eval.exec_limits().max_memory_bytes);
  EXPECT_EQ(spec.max_call_depth, eval.exec_limits().max_call_depth);
}

// ---- DistEvaluator end to end ----------------------------------------------

TEST(DistEvaluator, RemoteEvaluationMatchesLocalByteForByte) {
  ScopedPeer peer;
  ASSERT_GT(peer.pid, 0);

  sim::ProgramEvaluator plain(bench_suite::make_program("security_sha"),
                              sim::machine_by_name("arm"));
  sim::ProgramEvaluator bottom(bench_suite::make_program("security_sha"),
                               sim::machine_by_name("arm"));
  dist::DistConfig cfg;
  cfg.peers = {peer.path};
  cfg.spec = dist::make_program_spec(bottom, "arm");
  dist::DistEvaluator pool(bottom, bottom, cfg);

  for (int i = 0; i < 3; ++i) {
    const auto want = plain.evaluate(candidate(i));
    const auto got = pool.evaluate(candidate(i));
    expect_same_outcome(got, want, "remote vs local");
  }
  EXPECT_GE(pool.dist_stats().jobs_ok, 1u);
  EXPECT_EQ(pool.dist_stats().local_fallback, 0u);
  EXPECT_FALSE(pool.degraded());
}

TEST(DistEvaluator, BrownoutFallsBackToLocalStack) {
  const std::string bogus = "/tmp/citroen_test_dist_nobody_" +
                            std::to_string(::getpid()) + ".sock";
  sim::ProgramEvaluator plain(bench_suite::make_program("security_sha"),
                              sim::machine_by_name("arm"));
  sim::ProgramEvaluator bottom(bench_suite::make_program("security_sha"),
                               sim::machine_by_name("arm"));
  dist::DistConfig cfg;
  cfg.peers = {bogus};
  cfg.spec = dist::make_program_spec(bottom, "arm");
  cfg.connect_timeout_seconds = 0.1;
  cfg.reconnect_backoff_seconds = 0.001;
  cfg.breaker_threshold = 1;
  dist::DistEvaluator pool(bottom, bottom, cfg);

  const auto want = plain.evaluate(candidate(0));
  const auto got = pool.evaluate(candidate(0));
  expect_same_outcome(got, want, "brownout fallback");
  EXPECT_TRUE(pool.degraded());
  EXPECT_EQ(pool.dist_stats().jobs_ok, 0u);
  EXPECT_GE(pool.dist_stats().local_fallback, 1u);
}

TEST(DistEvaluator, BreakerStateIsVisibleInMetricsExport) {
  // Satellite of the transfer-corpus PR: per-peer circuit-breaker state
  // and reconnect/backoff totals must be visible in the Prometheus
  // export, so a fleet operator can see WHICH peer is flapping.
  obs::metrics_force_enable(true);
  const std::string bogus = "/tmp/citroen_test_dist_nobody_m_" +
                            std::to_string(::getpid()) + ".sock";
  sim::ProgramEvaluator bottom(bench_suite::make_program("security_sha"),
                               sim::machine_by_name("arm"));
  dist::DistConfig cfg;
  cfg.peers = {bogus};
  cfg.spec = dist::make_program_spec(bottom, "arm");
  cfg.connect_timeout_seconds = 0.1;
  cfg.reconnect_backoff_seconds = 0.001;
  cfg.breaker_threshold = 2;  // one backoff round, then the ban
  dist::DistEvaluator pool(bottom, bottom, cfg);
  pool.evaluate(candidate(0));
  obs::metrics_force_enable(false);

  EXPECT_TRUE(pool.degraded());
  EXPECT_GE(pool.dist_stats().reconnect_attempts, 2u);
  EXPECT_GE(pool.dist_stats().backoffs, 1u);
  EXPECT_EQ(pool.dist_stats().bans, 1u);

  auto& reg = obs::Registry::instance();
  const std::string prom = reg.prometheus_text();
  for (const char* metric :
       {"citroen_dist_peer0_banned", "citroen_dist_peer0_connected",
        "citroen_dist_peer0_consecutive_failures",
        "citroen_dist_peers_banned", "citroen_dist_degraded",
        "citroen_dist_reconnect_attempts_total",
        "citroen_dist_backoffs_total", "citroen_dist_bans_total"}) {
    EXPECT_NE(prom.find(metric), std::string::npos)
        << "missing from Prometheus export: " << metric;
  }
  EXPECT_NE(prom.find("citroen_dist_peer0_banned 1"), std::string::npos)
      << prom.substr(0, 400);
}

TEST(DistEvaluator, EmptyPeerListIsInert) {
  ::unsetenv("CITROEN_PEERS");
  sim::ProgramEvaluator plain(bench_suite::make_program("security_sha"),
                              sim::machine_by_name("arm"));
  sim::ProgramEvaluator bottom(bench_suite::make_program("security_sha"),
                               sim::machine_by_name("arm"));
  dist::DistEvaluator pool(bottom, bottom, {});
  EXPECT_EQ(pool.peer_count(), 0);
  expect_same_outcome(pool.evaluate(candidate(1)), plain.evaluate(candidate(1)),
                      "inert pool");
  EXPECT_EQ(pool.dist_stats().jobs_dispatched, 0u);
}
