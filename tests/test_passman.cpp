// Pass-manager tests: invalidation correctness (a pass that lies about
// `invalidates()` is caught by the differential check), analysis-reuse
// accounting, cache on/off byte-identity for every registered pass and
// for tuned sequences under injected faults, and unit coverage for the
// new loop passes (loop-fusion, indvar-simplify, loop-peel) including
// their loop-simplify ordering dependency.
//
// The whole suite is named `PassMan` so the TSan CI job's gtest filter
// can select it wholesale.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <tuple>
#include <vector>

#include "bench_suite/suite.hpp"
#include "ir/analysis.hpp"
#include "ir/builder.hpp"
#include "ir/interpreter.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "passes/pass.hpp"
#include "passes/passman.hpp"
#include "sim/evaluator.hpp"
#include "sim/faults.hpp"
#include "sim/machine.hpp"
#include "support/rng.hpp"

using namespace citroen;
using namespace citroen::ir;

namespace {

struct Tp {
  Program p;
  Module& module() { return p.modules[0]; }
  Function& fn(std::size_t i = 0) { return p.modules[0].functions[i]; }
};

Tp single(const std::string& name = "main") {
  Tp tp;
  Module m;
  m.name = "m";
  create_function(m, name, kI64, {}, false);
  tp.p.modules.push_back(std::move(m));
  tp.p.entry = name;
  return tp;
}

/// Run `seq`, assert verifier-clean and output-preserving; return stats.
passes::StatsRegistry check(Tp& tp, const std::vector<std::string>& seq) {
  const auto before = interpret(tp.p);
  EXPECT_TRUE(before.ok) << before.trap;
  passes::StatsRegistry stats;
  EXPECT_NO_THROW(stats = passes::run_sequence(tp.module(), seq, true));
  const auto after = interpret(tp.p);
  EXPECT_TRUE(after.ok) << after.trap;
  EXPECT_EQ(before.ret, after.ret) << "pass sequence changed the output";
  return stats;
}

/// Hoist the first instruction of block 1 into the entry block — a
/// verifier-clean mutation that moves a definition between blocks, so it
/// invalidates def-blocks. `declared` is what the pass admits to.
class BlockHoistPass final : public passes::Pass {
 public:
  BlockHoistPass(std::string name, passes::AnalysisSet declared)
      : name_(std::move(name)), declared_(declared) {}

  std::string name() const override { return name_; }
  std::vector<std::string> stat_names() const override { return {}; }
  passes::AnalysisSet invalidates() const override { return declared_; }

  bool run(Module& m, passes::StatsRegistry&,
           passes::AnalysisManager& am) override {
    Function& f = m.functions[0];
    (void)am.def_blocks(f);  // populate the cache before mutating
    const ValueId moved = f.block(1).insts.front();
    f.block(1).insts.erase(f.block(1).insts.begin());
    f.block(0).insts.insert(f.block(0).insts.begin(), moved);
    return true;
  }

 private:
  std::string name_;
  passes::AnalysisSet declared_;
};

/// entry: br b2; b2: ret 7 — block 1 leads with a movable constant.
Tp hoistable_module() {
  auto tp = single();
  IRBuilder b(tp.fn());
  b.set_insert(0);
  const BlockId b2 = b.new_block("b2");
  b.br(b2);
  b.set_insert(b2);
  b.ret(b.const_i64(7));
  return tp;
}

}  // namespace

// ---- stat-key interning ----------------------------------------------------

TEST(PassMan, StatKeyInternRoundTrip) {
  const auto k1 = passes::intern_stat_key("licm", "NumHoisted");
  const auto k2 = passes::intern_stat_key("licm.NumHoisted");
  EXPECT_EQ(k1, k2);
  EXPECT_EQ(passes::stat_key_name(k1), "licm.NumHoisted");

  passes::StatsRegistry r;
  r.add(k1, 2);                    // string-free hot path
  r.add("licm", "NumHoisted", 1);  // legacy convenience path
  EXPECT_EQ(r.get("licm.NumHoisted"), 3);
  EXPECT_EQ(r.counters().count("licm.NumHoisted"), 1u);
}

// ---- registry --------------------------------------------------------------

TEST(PassMan, NewLoopPassesRegisteredWithStatKeys) {
  const auto& reg = passes::PassRegistry::instance();
  for (const char* n : {"loop-fusion", "indvar-simplify", "loop-peel"})
    EXPECT_GE(reg.id_of(n), 0) << n;

  const auto& keys = reg.all_stat_keys();
  auto has = [&](const std::string& k) {
    return std::find(keys.begin(), keys.end(), k) != keys.end();
  };
  EXPECT_TRUE(has("loop-fusion.NumFused"));
  EXPECT_TRUE(has("indvar-simplify.NumIVSimplified"));
  EXPECT_TRUE(has("loop-peel.NumPeeled"));

  // Appended at the end of the registry: earlier PassIds feed prefix-cache
  // keys and the tuner's categorical encoding, so they must not shift.
  const int n = static_cast<int>(reg.num_passes());
  EXPECT_EQ(reg.id_of("loop-fusion"), n - 3);
  EXPECT_EQ(reg.id_of("indvar-simplify"), n - 2);
  EXPECT_EQ(reg.id_of("loop-peel"), n - 1);

  // The legacy ("older compiler") pass set excludes the new family.
  for (const auto& name : passes::legacy_pass_names()) {
    EXPECT_NE(name, "loop-fusion");
    EXPECT_NE(name, "indvar-simplify");
    EXPECT_NE(name, "loop-peel");
  }
}

// ---- analysis cache accounting ---------------------------------------------

TEST(PassMan, AnalysisReuseAndInvalidationGranularity) {
  auto tp = hoistable_module();
  Function& f = tp.fn();

  passes::AnalysisManager am(/*enabled=*/true);
  am.dominators(f);
  am.dominators(f);
  EXPECT_EQ(am.stats().computed, 1u);
  EXPECT_EQ(am.stats().reused, 1u);

  // Loop info derives from dominators: invalidating dominators drops it.
  am.loops(f);
  const auto computed_before = am.stats().computed;
  am.invalidate(f, passes::kAnalysisDominators);
  am.loops(f);
  EXPECT_GT(am.stats().computed, computed_before);

  // Untouched analyses survive an unrelated invalidation.
  am.use_counts(f);
  const auto reused_before = am.stats().reused;
  am.invalidate(f, passes::kAnalysisDominators);
  am.use_counts(f);
  EXPECT_EQ(am.stats().reused, reused_before + 1);
}

TEST(PassMan, DisabledCacheNeverReuses) {
  auto tp = hoistable_module();
  Function& f = tp.fn();
  passes::AnalysisManager am(/*enabled=*/false);
  am.dominators(f);
  am.dominators(f);
  am.use_counts(f);
  am.use_counts(f);
  EXPECT_EQ(am.stats().reused, 0u);
  EXPECT_EQ(am.stats().computed, 4u);
}

TEST(PassMan, O3PipelineReusesMajorityOfAnalyses) {
  auto p = bench_suite::make_program("telecom_gsm");
  const auto& ids = passes::o3_sequence_ids();
  std::uint64_t computed = 0, reused = 0;
  for (auto& m : p.modules) {
    passes::PassManagerOptions opts;
    opts.cache_enabled = true;
    passes::PassManager pm(opts);
    pm.run(m, ids.data(), ids.size());
    computed += pm.cache_stats().computed;
    reused += pm.cache_stats().reused;
  }
  EXPECT_GT(reused, 0u);
  // The acceptance bar: at least half of all analysis queries on the -O3
  // pipeline are served from cache.
  EXPECT_GE(reused, computed)
      << "reuse rate " << (100.0 * reused / (computed + reused)) << "%";
}

// ---- lying-pass differential check -----------------------------------------

TEST(PassMan, LyingPassCaughtByDifferentialCheck) {
  auto tp = hoistable_module();
  passes::PassManagerOptions opts;
  opts.cache_enabled = true;
  passes::PassManager pm(opts);
  passes::StatsRegistry stats;

  BlockHoistPass liar("liar", passes::kNoAnalyses);
  EXPECT_TRUE(pm.run_pass(liar, tp.module(), stats));
  const std::string report = pm.analyses().differential_check(tp.module());
  EXPECT_FALSE(report.empty());
  EXPECT_NE(report.find("def-blocks"), std::string::npos) << report;
}

TEST(PassMan, HonestPassPassesDifferentialCheck) {
  auto tp = hoistable_module();
  passes::PassManagerOptions opts;
  opts.cache_enabled = true;
  passes::PassManager pm(opts);
  passes::StatsRegistry stats;

  BlockHoistPass honest("honest", passes::kAllAnalyses);
  EXPECT_TRUE(pm.run_pass(honest, tp.module(), stats));
  EXPECT_EQ(pm.analyses().differential_check(tp.module()), "");
}

// ---- cache on/off byte-identity --------------------------------------------

TEST(PassMan, CacheOnOffByteIdentityEveryPass) {
  const auto& reg = passes::PassRegistry::instance();
  for (const auto& pass : reg.pass_names()) {
    auto p_on = bench_suite::make_program("telecom_gsm");
    auto p_off = bench_suite::make_program("telecom_gsm");
    // Run each pass twice after canonicalisation so the second run hits
    // whatever the first run left cached.
    const auto ids = passes::intern_sequence(
        {"mem2reg", "loop-simplify", pass, pass});
    for (std::size_t mi = 0; mi < p_on.modules.size(); ++mi) {
      passes::PassManagerOptions on, off;
      on.cache_enabled = true;
      off.cache_enabled = false;
      passes::PassManager pm_on(on), pm_off(off);
      const auto s_on = pm_on.run(p_on.modules[mi], ids.data(), ids.size());
      const auto s_off = pm_off.run(p_off.modules[mi], ids.data(), ids.size());
      ASSERT_EQ(print_module(p_on.modules[mi]), print_module(p_off.modules[mi]))
          << pass << " diverged on module " << p_on.modules[mi].name;
      EXPECT_EQ(s_on.counters(), s_off.counters()) << pass;
      EXPECT_EQ(pm_off.cache_stats().reused, 0u);
    }
  }
}

TEST(PassMan, CacheOnOffByteIdentityTunedSequencesWithFaults) {
  sim::FaultPlan plan;
  plan.seed = 7;
  plan.transient_crash_rate = 0.1;
  plan.deterministic_crash_rate = 0.1;
  plan.hang_rate = 0.05;
  plan.noise_sigma = 0.05;

  using Probe = std::tuple<bool, std::string, double, std::uint64_t>;
  const auto run_all = [&](bool cache_on) {
    ::setenv("CITROEN_ANALYSIS_CACHE", cache_on ? "1" : "0", 1);
    sim::ProgramEvaluator ev(bench_suite::make_program("security_sha"),
                             sim::arm_a57_model());
    const sim::FaultInjector inj(plan);
    ev.set_fault_injector(&inj);
    const auto& space = passes::PassRegistry::instance().pass_names();
    Rng rng(11);
    std::vector<Probe> out;
    for (int t = 0; t < 12; ++t) {
      std::vector<std::string> seq;
      for (int i = 0; i < 14; ++i)
        seq.push_back(space[rng.uniform_index(space.size())]);
      const auto o = ev.evaluate(sim::SequenceAssignment{{"sha", seq}});
      out.emplace_back(o.valid, o.why_invalid, o.cycles, o.binary_hash);
    }
    ::unsetenv("CITROEN_ANALYSIS_CACHE");
    return out;
  };

  const auto with_cache = run_all(true);
  const auto without_cache = run_all(false);
  EXPECT_EQ(with_cache, without_cache);
}

// ---- new loop passes -------------------------------------------------------

TEST(PassMan, LoopFusionFusesAdjacentDisjointLoops) {
  auto tp = single();
  Function& f = tp.fn();
  tp.module().globals.push_back(
      GlobalVar{"a", std::vector<std::uint8_t>(64, 0)});
  tp.module().globals.push_back(
      GlobalVar{"b", std::vector<std::uint8_t>(64, 0)});

  // Two adjacent counted loops over [0, 8) writing to disjoint globals,
  // joined by a glue block that is loop A's exit and loop B's preheader.
  IRBuilder b(f);
  b.set_insert(0);
  const ValueId c0 = b.const_i64(0);
  const ValueId c1 = b.const_i64(1);
  const ValueId c2 = b.const_i64(2);
  const ValueId c8 = b.const_i64(8);
  const ValueId ga = b.global_addr(0);
  const ValueId gb = b.global_addr(1);
  const BlockId h1 = b.new_block("h1");
  const BlockId b1 = b.new_block("b1");
  const BlockId glue = b.new_block("glue");
  const BlockId h2 = b.new_block("h2");
  const BlockId b2 = b.new_block("b2");
  const BlockId exitb = b.new_block("exit");
  b.br(h1);

  b.set_insert(h1);
  const ValueId i = b.phi(kI64, {{c0, 0}});
  const ValueId cmp1 = b.icmp(CmpPred::SLT, i, c8);
  b.cond_br(cmp1, b1, glue);
  b.set_insert(b1);
  b.store(b.binop(Opcode::Mul, i, c2), b.gep(ga, i, kI64));
  const ValueId i_n = b.binop(Opcode::Add, i, c1);
  b.br(h1);
  f.instr(i).ops.push_back(i_n);
  f.instr(i).phi_blocks.push_back(b1);

  b.set_insert(glue);
  b.br(h2);

  b.set_insert(h2);
  const ValueId j = b.phi(kI64, {{c0, glue}});
  const ValueId cmp2 = b.icmp(CmpPred::SLT, j, c8);
  b.cond_br(cmp2, b2, exitb);
  b.set_insert(b2);
  b.store(b.binop(Opcode::Add, j, c8), b.gep(gb, j, kI64));
  const ValueId j_n = b.binop(Opcode::Add, j, c1);
  b.br(h2);
  f.instr(j).ops.push_back(j_n);
  f.instr(j).phi_blocks.push_back(b2);

  b.set_insert(exitb);
  const ValueId ra = b.load(kI64, b.gep(ga, b.const_i64(3), kI64));
  const ValueId rb = b.load(kI64, b.gep(gb, b.const_i64(5), kI64));
  b.ret(b.binop(Opcode::Add, ra, rb));
  ASSERT_TRUE(verify_module(tp.module()).empty())
      << verify_module(tp.module()).front();

  const auto stats = check(tp, {"loop-fusion"});
  EXPECT_EQ(stats.get("loop-fusion.NumFused"), 1);
  EXPECT_EQ(find_loops(f, compute_dominators(f)).size(), 1u)
      << "both loops should share one header";
}

TEST(PassMan, LoopFusionRefusesAliasedMemory) {
  auto tp = single();
  Function& f = tp.fn();
  tp.module().globals.push_back(
      GlobalVar{"a", std::vector<std::uint8_t>(64, 0)});

  // Same shape as above, but both loops write the SAME global: iteration
  // interleaving would reorder the stores, so fusion must refuse.
  IRBuilder b(f);
  b.set_insert(0);
  const ValueId c0 = b.const_i64(0);
  const ValueId c1 = b.const_i64(1);
  const ValueId c8 = b.const_i64(8);
  const ValueId ga = b.global_addr(0);
  const BlockId h1 = b.new_block("h1");
  const BlockId b1 = b.new_block("b1");
  const BlockId glue = b.new_block("glue");
  const BlockId h2 = b.new_block("h2");
  const BlockId b2 = b.new_block("b2");
  const BlockId exitb = b.new_block("exit");
  b.br(h1);

  b.set_insert(h1);
  const ValueId i = b.phi(kI64, {{c0, 0}});
  b.cond_br(b.icmp(CmpPred::SLT, i, c8), b1, glue);
  b.set_insert(b1);
  b.store(i, b.gep(ga, i, kI64));
  const ValueId i_n = b.binop(Opcode::Add, i, c1);
  b.br(h1);
  f.instr(i).ops.push_back(i_n);
  f.instr(i).phi_blocks.push_back(b1);

  b.set_insert(glue);
  b.br(h2);

  b.set_insert(h2);
  const ValueId j = b.phi(kI64, {{c0, glue}});
  b.cond_br(b.icmp(CmpPred::SLT, j, c8), b2, exitb);
  b.set_insert(b2);
  b.store(b.binop(Opcode::Add, b.load(kI64, b.gep(ga, j, kI64)), c1),
          b.gep(ga, j, kI64));
  const ValueId j_n = b.binop(Opcode::Add, j, c1);
  b.br(h2);
  f.instr(j).ops.push_back(j_n);
  f.instr(j).phi_blocks.push_back(b2);

  b.set_insert(exitb);
  b.ret(b.load(kI64, b.gep(ga, b.const_i64(4), kI64)));
  ASSERT_TRUE(verify_module(tp.module()).empty())
      << verify_module(tp.module()).front();

  const auto stats = check(tp, {"loop-fusion"});
  EXPECT_EQ(stats.get("loop-fusion.NumFused"), 0);
}

TEST(PassMan, IndVarSimplifyRewritesSecondaryIV) {
  auto tp = single();
  Function& f = tp.fn();
  tp.module().globals.push_back(
      GlobalVar{"a", std::vector<std::uint8_t>(128, 0)});

  // for (i = 0; i < 16; ++i) { a[i] = j; j += 3; }  with j starting at 5:
  // j is a secondary affine IV, rewritable as 5 + i*3.
  IRBuilder b(f);
  b.set_insert(0);
  const ValueId c0 = b.const_i64(0);
  const ValueId c1 = b.const_i64(1);
  const ValueId c3 = b.const_i64(3);
  const ValueId c5 = b.const_i64(5);
  const ValueId c16 = b.const_i64(16);
  const ValueId ga = b.global_addr(0);
  const BlockId header = b.new_block("header");
  const BlockId body = b.new_block("body");
  const BlockId exitb = b.new_block("exit");
  b.br(header);

  b.set_insert(header);
  const ValueId i = b.phi(kI64, {{c0, 0}});
  const ValueId j = b.phi(kI64, {{c5, 0}});
  b.cond_br(b.icmp(CmpPred::SLT, i, c16), body, exitb);
  b.set_insert(body);
  b.store(j, b.gep(ga, i, kI64));
  const ValueId j_n = b.binop(Opcode::Add, j, c3);
  const ValueId i_n = b.binop(Opcode::Add, i, c1);
  b.br(header);
  f.instr(i).ops.push_back(i_n);
  f.instr(i).phi_blocks.push_back(body);
  f.instr(j).ops.push_back(j_n);
  f.instr(j).phi_blocks.push_back(body);

  b.set_insert(exitb);
  b.ret(b.load(kI64, b.gep(ga, b.const_i64(7), kI64)));
  ASSERT_TRUE(verify_module(tp.module()).empty())
      << verify_module(tp.module()).front();

  const auto stats = check(tp, {"indvar-simplify", "dce"});
  EXPECT_EQ(stats.get("indvar-simplify.NumIVSimplified"), 1);
  // Only the primary induction phi should remain in the header.
  int phis = 0;
  for (const ValueId id : f.block(header).insts)
    if (f.instr(id).op == Opcode::Phi) ++phis;
  EXPECT_EQ(phis, 1);
}

TEST(PassMan, LoopPeelEnablesPartialUnroll) {
  // Trip count 65: too long for full unroll (> full_limit 64) and odd, so
  // partial unroll can't fire either. Peeling one iteration leaves 64,
  // which partial unroll takes at factor 4.
  const auto build = [](Tp& tp) {
    tp.module().globals.push_back(
        GlobalVar{"k", std::vector<std::uint8_t>(8, 3)});
    IRBuilder b(tp.fn());
    b.set_insert(0);
    const ValueId acc = b.stack_alloc(kI64);
    b.store(b.const_i64(0), acc);
    const ValueId k = b.load(kI64, b.global_addr(0));
    auto loop = b.begin_loop(b.const_i64(0), b.const_i64(65));
    {
      // Enough body work that 64 iterations exceed the full-unroll size
      // budget, keeping partial unroll the only option after the peel.
      ValueId v = b.binop(Opcode::Mul, loop.iv, k);
      for (int step = 0; step < 8; ++step)
        v = b.binop(Opcode::Add, b.binop(Opcode::Mul, v, k), loop.iv);
      b.store(b.binop(Opcode::Add, b.load(kI64, acc), v), acc);
    }
    b.end_loop(loop);
    b.ret(b.load(kI64, acc));
  };

  Tp no_peel = single();
  build(no_peel);
  const auto before = check(no_peel, {"mem2reg", "loop-unroll"});
  EXPECT_EQ(before.get("loop-unroll.NumUnrolled"), 0);
  EXPECT_EQ(before.get("loop-unroll.NumFullyUnrolled"), 0);

  Tp peeled = single();
  build(peeled);
  const auto after = check(peeled, {"mem2reg", "loop-peel", "loop-unroll"});
  EXPECT_EQ(after.get("loop-peel.NumPeeled"), 1);
  EXPECT_EQ(after.get("loop-unroll.NumUnrolled"), 1);
}

TEST(PassMan, LoopPeelSkipsEvenTripCounts) {
  // An even trip count is already partial-unrollable; peeling would only
  // break that, so the pass must leave it alone.
  auto tp = single();
  IRBuilder b(tp.fn());
  b.set_insert(0);
  const ValueId acc = b.stack_alloc(kI64);
  b.store(b.const_i64(0), acc);
  auto loop = b.begin_loop(b.const_i64(0), b.const_i64(16));
  b.store(b.binop(Opcode::Add, b.load(kI64, acc), loop.iv), acc);
  b.end_loop(loop);
  b.ret(b.load(kI64, acc));
  const auto stats = check(tp, {"mem2reg", "loop-peel"});
  EXPECT_EQ(stats.get("loop-peel.NumPeeled"), 0);
}

TEST(PassMan, LoopSimplifyOrderingDependency) {
  // A loop whose single outside predecessor has two successors has no
  // dedicated preheader, so the counted-loop matcher refuses it: loop-peel
  // alone does nothing, loop-simplify first unlocks it. This is the
  // ordering dependency the tuner has to discover.
  const auto build = [](Tp& tp) {
    Function& f = tp.fn();
    tp.module().globals.push_back(
        GlobalVar{"a", std::vector<std::uint8_t>(64, 0)});
    IRBuilder b(f);
    b.set_insert(0);
    const ValueId c0 = b.const_i64(0);
    const ValueId c1 = b.const_i64(1);
    const ValueId c7 = b.const_i64(7);
    const ValueId ga = b.global_addr(0);
    const ValueId cond = b.icmp(CmpPred::SGT, b.const_i64(2), c1);
    const BlockId header = b.new_block("header");
    const BlockId body = b.new_block("body");
    const BlockId alt = b.new_block("alt");
    const BlockId exitb = b.new_block("exit");
    b.cond_br(cond, header, alt);

    b.set_insert(header);
    const ValueId i = b.phi(kI64, {{c0, 0}});
    b.cond_br(b.icmp(CmpPred::SLT, i, c7), body, exitb);
    b.set_insert(body);
    b.store(i, b.gep(ga, i, kI64));
    const ValueId i_n = b.binop(Opcode::Add, i, c1);
    b.br(header);
    f.instr(i).ops.push_back(i_n);
    f.instr(i).phi_blocks.push_back(body);

    b.set_insert(alt);
    b.ret(c0);
    b.set_insert(exitb);
    b.ret(b.load(kI64, b.gep(ga, b.const_i64(3), kI64)));
    ASSERT_TRUE(verify_module(tp.module()).empty())
        << verify_module(tp.module()).front();
  };

  Tp bare = single();
  build(bare);
  const auto without = check(bare, {"loop-peel"});
  EXPECT_EQ(without.get("loop-peel.NumPeeled"), 0);

  Tp simplified = single();
  build(simplified);
  const auto with = check(simplified, {"loop-simplify", "loop-peel"});
  EXPECT_GE(with.get("loop-simplify.NumPreheaders"), 1);
  EXPECT_EQ(with.get("loop-peel.NumPeeled"), 1);
}
