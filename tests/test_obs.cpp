// Unit tests for the observability layer (src/obs/): trace ring
// overflow accounting, concurrent emission (exercised under TSan in CI),
// histogram bucket edges and shard merging, export format validity, and
// the span-nesting validator the ext_observability gate relies on.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/thread_pool.hpp"

using namespace citroen;

namespace {

/// Every trace test starts from an empty sink/rings and leaves tracing
/// disabled, since the trace layer is process-global.
class Obs : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::trace_force_enable(false);
    obs::drain_trace();
  }
  void TearDown() override {
    obs::trace_force_enable(false);
    obs::drain_trace();
    obs::set_sink_capacity(std::size_t{1} << 20);
  }
};

}  // namespace

TEST_F(Obs, DisabledEmitIsBranchOnly) {
  ASSERT_FALSE(obs::trace_enabled());
  for (int i = 0; i < 100; ++i) {
    OBS_INSTANT("never", "test");
    OBS_SPAN("never_span", "test");
  }
  EXPECT_TRUE(obs::drain_trace().empty());
}

TEST_F(Obs, EmitDrainRoundTrip) {
  obs::trace_force_enable(true);
  {
    OBS_SPAN("outer", "test");
    OBS_INSTANT_ARG("tick", "test", "n", 41);
  }
  const auto events = obs::drain_trace();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].phase, 'B');
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_EQ(events[1].phase, 'I');
  EXPECT_STREQ(events[1].arg_name, "n");
  EXPECT_EQ(events[1].arg, 41u);
  EXPECT_EQ(events[2].phase, 'E');
  EXPECT_GE(events[2].ts_ns, events[0].ts_ns);
  // Drained means gone.
  EXPECT_TRUE(obs::drain_trace().empty());
}

TEST_F(Obs, RingOverflowSpillsAndCountsDrops) {
  // Ring capacity is 4096; a tiny sink forces the spill path to drop.
  obs::set_sink_capacity(64);
  obs::trace_force_enable(true);
  const std::uint64_t dropped_before = obs::trace_dropped();
  constexpr int kEmits = 10000;
  for (int i = 0; i < kEmits; ++i)
    obs::emit('I', "flood", "test", 0, "i", static_cast<std::uint64_t>(i));
  obs::trace_force_enable(false);
  const auto events = obs::drain_trace();
  const std::uint64_t dropped =
      obs::trace_dropped() - dropped_before;
  // Nothing tears or double-counts: every emit is either drained or
  // counted as dropped, and the drop counter moved (sink cap << emits).
  EXPECT_GT(dropped, 0u);
  EXPECT_EQ(events.size() + dropped, static_cast<std::uint64_t>(kEmits));
  for (const auto& ev : events) EXPECT_STREQ(ev.name, "flood");
}

TEST_F(Obs, ConcurrentEmitFromPoolThreads) {
  obs::trace_force_enable(true);
  // Pool workers emit spans concurrently with the pool's own
  // instrumentation; under TSan (CI filter Obs.*) this checks the
  // wait-free ring publication for races.
  ThreadPool::global().parallel_for(64, [](std::size_t i) {
    OBS_SPAN("job_outer", "test");
    for (int k = 0; k < 200; ++k) {
      OBS_SPAN("job_inner", "test");
      OBS_INSTANT_ARG("job_tick", "test", "i", i);
    }
  });
  obs::trace_force_enable(false);
  const auto events = obs::drain_trace();
  EXPECT_FALSE(events.empty());
  std::string err;
  EXPECT_TRUE(obs::validate_span_nesting(events, &err)) << err;
}

TEST_F(Obs, InternDeduplicatesAndOutlivesInput) {
  std::string a = "dynamic-name-1";
  const char* p1 = obs::intern(a);
  a = "clobbered";
  const char* p2 = obs::intern("dynamic-name-1");
  EXPECT_EQ(p1, p2);
  EXPECT_STREQ(p1, "dynamic-name-1");
}

TEST_F(Obs, NestingValidatorAcceptsProperAndRejectsCrossed) {
  auto ev = [](char ph, const char* name, std::uint64_t ts,
               std::uint32_t tid, std::uint64_t id = 0) {
    obs::TraceEvent e;
    e.phase = ph;
    e.name = name;
    e.cat = "test";
    e.ts_ns = ts;
    e.pid = 1;
    e.tid = tid;
    e.id = id;
    return e;
  };
  std::string err;
  // Proper: nested same-thread spans + interleaved async pair.
  EXPECT_TRUE(obs::validate_span_nesting(
      {ev('B', "a", 1, 1), ev('b', "j", 2, 1, 7), ev('B', "b", 3, 1),
       ev('E', "b", 4, 1), ev('e', "j", 5, 1, 7), ev('E', "a", 6, 1)},
      &err))
      << err;
  // Crossed sync spans on one thread: close does not match the top.
  EXPECT_FALSE(obs::validate_span_nesting(
      {ev('B', "a", 1, 1), ev('B', "b", 2, 1), ev('E', "a", 3, 1),
       ev('E', "b", 4, 1)},
      &err));
  // Unmatched async begin.
  EXPECT_FALSE(obs::validate_span_nesting({ev('b', "j", 1, 1, 9)}, &err));
  // Same names on different threads are independent stacks.
  EXPECT_TRUE(obs::validate_span_nesting(
      {ev('B', "a", 1, 1), ev('B', "a", 2, 2), ev('E', "a", 3, 2),
       ev('E', "a", 4, 1)},
      &err))
      << err;
}

TEST_F(Obs, TraceJsonIsWellFormedAndEscaped) {
  obs::trace_force_enable(true);
  obs::emit('I', obs::intern("weird \"name\"\n"), "test", 0, nullptr, 0,
            obs::intern("tab\there"));
  {
    OBS_SPAN("plain", "test");
  }
  obs::trace_force_enable(false);
  const std::string json = obs::trace_json(obs::drain_trace());
  std::string err;
  EXPECT_TRUE(obs::json_well_formed(json, &err)) << err << "\n" << json;
  EXPECT_NE(json.find("weird \\\"name\\\"\\n"), std::string::npos);
  EXPECT_NE(json.find("tab\\there"), std::string::npos);
}

TEST_F(Obs, JsonValidatorRejectsGarbage) {
  std::string err;
  EXPECT_TRUE(obs::json_well_formed("{\"a\":[1,2,{\"b\":null}]}", &err));
  EXPECT_FALSE(obs::json_well_formed("", &err));
  EXPECT_FALSE(obs::json_well_formed("{\"a\":}", &err));
  EXPECT_FALSE(obs::json_well_formed("{} trailing", &err));
  EXPECT_FALSE(obs::json_well_formed("{\"a\":1", &err));
  EXPECT_FALSE(obs::json_well_formed("\"unterminated", &err));
}

// ---- histograms -----------------------------------------------------------

TEST(ObsHistogram, BucketEdgesAtBelowAndAbove) {
  using H = obs::Histogram;
  EXPECT_EQ(H::bucket_of(0), 0);
  EXPECT_EQ(H::bucket_of(1), 1);
  // For every power of two: the edge value starts a new bucket, edge-1
  // stays below, edge+1 stays inside.
  for (int k = 1; k < 63; ++k) {
    const std::uint64_t edge = std::uint64_t{1} << k;
    EXPECT_EQ(H::bucket_of(edge), k + 1) << "edge 2^" << k;
    EXPECT_EQ(H::bucket_of(edge - 1), k) << "below 2^" << k;
    EXPECT_EQ(H::bucket_of(edge + 1), k + 1) << "above 2^" << k;
  }
  EXPECT_EQ(H::bucket_of(~std::uint64_t{0}), 64);
  // Exclusive upper edges bracket their bucket.
  EXPECT_EQ(H::bucket_upper_edge(0), 1u);
  EXPECT_EQ(H::bucket_upper_edge(1), 2u);
  EXPECT_EQ(H::bucket_upper_edge(10), 1024u);
  EXPECT_EQ(H::bucket_upper_edge(64), ~std::uint64_t{0});
}

TEST(ObsHistogram, RecordSnapshotRoundTrip) {
  obs::Histogram h;
  h.record(0);
  h.record(1);
  h.record(7);    // bucket 3: [4, 8)
  h.record(8);    // bucket 4: [8, 16)
  h.record(100);  // bucket 7: [64, 128)
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.sum, 116u);
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[3], 1u);
  EXPECT_EQ(snap.buckets[4], 1u);
  EXPECT_EQ(snap.buckets[7], 1u);
}

TEST(ObsHistogram, ShardsMergeAcrossThreads) {
  obs::Histogram h;
  constexpr std::size_t kThreads = 8;
  constexpr int kPerThread = 1000;
  ThreadPool::global().parallel_for(kThreads, [&](std::size_t) {
    for (int i = 0; i < kPerThread; ++i)
      h.record(static_cast<std::uint64_t>(3));
  });
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  EXPECT_EQ(snap.sum, 3u * kThreads * kPerThread);
  EXPECT_EQ(snap.buckets[2], kThreads * kPerThread);  // 3 -> [2, 4)
}

// ---- registry / exports ---------------------------------------------------

TEST(ObsMetrics, ExportsAreValidAndStable) {
  auto& reg = obs::Registry::instance();
  reg.counter("citroen_test_export_total").add(3);
  reg.gauge("citroen_test_export_ratio").set(0.5);
  reg.histogram("citroen_test_export_histo").record(9);

  std::string err;
  const std::string json = reg.json_summary();
  EXPECT_TRUE(obs::json_well_formed(json, &err)) << err << "\n" << json;
  EXPECT_NE(json.find("\"citroen_test_export_total\":"), std::string::npos);

  const std::string prom = reg.prometheus_text();
  EXPECT_NE(prom.find("# TYPE citroen_test_export_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE citroen_test_export_histo histogram"),
            std::string::npos);
  EXPECT_NE(prom.find("citroen_test_export_histo_bucket{le=\"16\"} 1"),
            std::string::npos);

  // Same-name lookups return the same instrument.
  EXPECT_EQ(&reg.counter("citroen_test_export_total"),
            &reg.counter("citroen_test_export_total"));
}

TEST(ObsMetrics, CountersSnapshotSortedByName) {
  auto& reg = obs::Registry::instance();
  reg.counter("citroen_test_zz_total").add(1);
  reg.counter("citroen_test_aa_total").add(1);
  const auto snap = reg.counters_snapshot();
  ASSERT_GE(snap.size(), 2u);
  for (std::size_t i = 1; i < snap.size(); ++i)
    EXPECT_LT(snap[i - 1].first, snap[i].first);
}

// ---- labeled metrics -------------------------------------------------------

TEST(ObsMetrics, LabeledCountersAreOneFamilyManyChildren) {
  auto& reg = obs::Registry::instance();
  reg.counter("citroen_test_lbl_total", "tenant", "acme").add(2);
  reg.counter("citroen_test_lbl_total", "tenant", "beta").add(5);
  // Same child on re-lookup, independent values across label values.
  EXPECT_EQ(&reg.counter("citroen_test_lbl_total", "tenant", "acme"),
            &reg.counter("citroen_test_lbl_total", "tenant", "acme"));
  EXPECT_EQ(reg.counter("citroen_test_lbl_total", "tenant", "acme").value(),
            2u);
  EXPECT_EQ(reg.counter("citroen_test_lbl_total", "tenant", "beta").value(),
            5u);

  const std::string prom = reg.prometheus_text();
  // One # TYPE line for the family, one sample per child.
  EXPECT_NE(prom.find("# TYPE citroen_test_lbl_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("citroen_test_lbl_total{tenant=\"acme\"} 2"),
            std::string::npos);
  EXPECT_NE(prom.find("citroen_test_lbl_total{tenant=\"beta\"} 5"),
            std::string::npos);
  EXPECT_EQ(prom.find("# TYPE citroen_test_lbl_total counter",
                      prom.find("# TYPE citroen_test_lbl_total counter") + 1),
            std::string::npos)
      << "family TYPE line duplicated";

  std::string err;
  const std::string json = reg.json_summary();
  EXPECT_TRUE(obs::json_well_formed(json, &err)) << err;
  EXPECT_NE(json.find("citroen_test_lbl_total{tenant=\\\"acme\\\"}"),
            std::string::npos)
      << json;
}

TEST(ObsMetrics, WireNameRoundTripsThroughCounterFromWire) {
  auto& reg = obs::Registry::instance();
  const std::string wire =
      obs::Registry::wire_name("citroen_test_wire_total", "peer", "3");
  EXPECT_EQ(wire, "citroen_test_wire_total{peer=\"3\"}");
  // A shipped delta re-splits into the same labeled child.
  reg.counter_from_wire(wire).add(7);
  EXPECT_EQ(reg.counter("citroen_test_wire_total", "peer", "3").value(), 7u);
  // A plain name stays a plain counter.
  reg.counter_from_wire("citroen_test_wire_plain_total").add(1);
  EXPECT_EQ(reg.counter("citroen_test_wire_plain_total").value(), 1u);
  // Malformed label syntax degrades to a plain counter, never a throw.
  reg.counter_from_wire("citroen_test_wire_bad{").add(1);
}

TEST(ObsMetrics, SnapshotIsCoherentAndCarriesTraceDrops) {
  auto& reg = obs::Registry::instance();
  reg.counter("citroen_test_snap_total").add(1);
  reg.counter("citroen_test_snap_lbl_total", "k", "v").add(4);
  const obs::MetricsSnapshot snap = reg.snapshot();

  // Both renderers consume the SAME snapshot, so a scrape's .prom and
  // .json views agree even while other threads keep counting.
  const std::string prom = obs::Registry::prometheus_text(snap);
  const std::string json = obs::Registry::json_summary(snap);
  EXPECT_NE(prom.find("citroen_test_snap_total 1"), std::string::npos);
  EXPECT_NE(json.find("\"citroen_test_snap_total\":1"), std::string::npos);
  EXPECT_NE(prom.find("citroen_test_snap_lbl_total{k=\"v\"} 4"),
            std::string::npos);

  // Every snapshot surfaces ring-overflow drops, even at zero.
  bool found = false;
  for (const auto& [name, v] : snap.counters) {
    if (name == "citroen_trace_dropped_total") {
      found = true;
      EXPECT_EQ(v, obs::trace_dropped());
    }
  }
  EXPECT_TRUE(found) << "citroen_trace_dropped_total missing from snapshot";
  EXPECT_NE(prom.find("citroen_trace_dropped_total"), std::string::npos);
}

// ---- flow events & clock re-basing -----------------------------------------

TEST_F(Obs, FlowEventsValidateOrderIndependently) {
  auto ev = [](char ph, const char* name, std::uint64_t ts, std::uint32_t tid,
               std::uint64_t id) {
    obs::TraceEvent e;
    e.phase = ph;
    e.name = name;
    e.cat = "test";
    e.ts_ns = ts;
    e.pid = 1;
    e.tid = tid;
    e.id = id;
    return e;
  };
  std::string err;
  // Finish before start in stream order (a merged multi-process trace
  // has no global order): still valid, the check is by id, two-pass.
  EXPECT_TRUE(obs::validate_span_nesting(
      {ev('f', "dist_job", 1, 2, 42), ev('s', "dist_job", 5, 1, 42)}, &err))
      << err;
  // A start with no finish is fine (the peer died before its span).
  EXPECT_TRUE(obs::validate_span_nesting({ev('s', "dist_job", 1, 1, 7)},
                                         &err))
      << err;
  // A finish whose id never started is corruption.
  EXPECT_FALSE(
      obs::validate_span_nesting({ev('f', "dist_job", 1, 1, 9)}, &err));
  // Unknown phases still rejected.
  EXPECT_FALSE(obs::validate_span_nesting({ev('x', "weird", 1, 1, 0)}, &err));
}

TEST_F(Obs, FlowEventsRenderAsChromeTraceFlow) {
  obs::trace_force_enable(true);
  obs::emit('s', "dist_job", "dist", 42);
  obs::emit('f', "dist_job", "dist", 42);
  obs::trace_force_enable(false);
  const std::string json = obs::trace_json(obs::drain_trace());
  std::string err;
  EXPECT_TRUE(obs::json_well_formed(json, &err)) << err << "\n" << json;
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  // Chrome/Perfetto binds a flow finish to the enclosing slice's end
  // only with bp:e; without it the arrow silently drops.
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":\"0x2a\""), std::string::npos);
}

TEST(ObsClock, ApplyClockOffsetSaturatesAndStaysMonotone) {
  using obs::apply_clock_offset;
  const std::uint64_t kMax = ~std::uint64_t{0};
  // Exact in the unsaturated interior.
  EXPECT_EQ(apply_clock_offset(100, 40), 140u);
  EXPECT_EQ(apply_clock_offset(100, -40), 60u);
  // Saturation at both rails instead of wraparound.
  EXPECT_EQ(apply_clock_offset(10, -40), 0u);
  EXPECT_EQ(apply_clock_offset(kMax - 5, 100), kMax);
  EXPECT_EQ(apply_clock_offset(5, INT64_MIN), 0u);
  EXPECT_EQ(apply_clock_offset(kMax, INT64_MAX), kMax);

  // Property: for any offset, re-basing preserves order — a remote span
  // can never end before it begins after re-basing.
  std::uint64_t rng = 0x9e3779b97f4a7c15ull;
  auto next = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t a = next();
    const std::uint64_t b = next();
    const std::uint64_t begin = std::min(a, b), end = std::max(a, b);
    const auto offset = static_cast<std::int64_t>(next());
    EXPECT_LE(apply_clock_offset(begin, offset),
              apply_clock_offset(end, offset))
        << "begin=" << begin << " end=" << end << " offset=" << offset;
  }
}

// ---- flight recorder -------------------------------------------------------

TEST(ObsFlight, RingKeepsNewestAndDumps) {
  obs::flight_reset_after_fork();
  const std::size_t cap = obs::flight_capacity();
  for (std::size_t i = 0; i < cap + 10; ++i)
    obs::flight_record("flight_test", i, i * 2, "detail");
  const auto snap = obs::flight_snapshot();
  ASSERT_EQ(snap.size(), cap);
  // Oldest entries were overwritten; order is oldest -> newest.
  EXPECT_EQ(snap.front().a, 10u);
  EXPECT_EQ(snap.back().a, cap + 9);
  for (std::size_t i = 1; i < snap.size(); ++i)
    EXPECT_EQ(snap[i].seq, snap[i - 1].seq + 1);
  EXPECT_GE(obs::flight_recorded_total(), cap + 10);
  EXPECT_STREQ(snap.back().kind, "flight_test");
  EXPECT_STREQ(snap.back().detail, "detail");
  obs::flight_reset_after_fork();
  EXPECT_TRUE(obs::flight_snapshot().empty());
}
