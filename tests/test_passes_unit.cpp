// Per-pass unit tests: each pass is exercised on IR crafted to contain
// its target pattern; the test checks (a) semantics are preserved (same
// output on interpretation), (b) the expected statistics counter fired,
// and usually (c) a structural effect (fewer instructions, cheaper run).

#include <gtest/gtest.h>

#include "bench_suite/suite.hpp"
#include "ir/builder.hpp"
#include "ir/interpreter.hpp"
#include "ir/verifier.hpp"
#include "passes/pass.hpp"

using namespace citroen;
using namespace citroen::ir;

namespace {

struct Tp {
  Program p;
  Module& module() { return p.modules[0]; }
  Function& fn(std::size_t i = 0) { return p.modules[0].functions[i]; }
};

Tp single(const std::string& name = "main") {
  Tp tp;
  Module m;
  m.name = "m";
  create_function(m, name, kI64, {}, false);
  tp.p.modules.push_back(std::move(m));
  tp.p.entry = name;
  return tp;
}

/// Run `seq`, assert verifier-clean and output-preserving; return stats.
passes::StatsRegistry check(Tp& tp, const std::vector<std::string>& seq,
                            double* cycles_before = nullptr,
                            double* cycles_after = nullptr) {
  const auto before = interpret(tp.p);
  EXPECT_TRUE(before.ok) << before.trap;
  passes::StatsRegistry stats;
  EXPECT_NO_THROW(stats = passes::run_sequence(tp.module(), seq, true));
  const auto after = interpret(tp.p);
  EXPECT_TRUE(after.ok) << after.trap;
  EXPECT_EQ(before.ret, after.ret) << "pass sequence changed the output";
  if (cycles_before) *cycles_before = before.cycles;
  if (cycles_after) *cycles_after = after.cycles;
  return stats;
}

}  // namespace

TEST(PassMem2Reg, PromotesScalarSlots) {
  auto tp = single();
  IRBuilder b(tp.fn());
  b.set_insert(0);
  const ValueId slot = b.stack_alloc(kI64);
  b.store(b.const_i64(5), slot);
  const ValueId v = b.load(kI64, slot);
  b.store(b.binop(Opcode::Add, v, v), slot);
  b.ret(b.load(kI64, slot));
  const auto stats = check(tp, {"mem2reg"});
  EXPECT_EQ(stats.get("mem2reg.NumPromoted"), 1);
  // No loads/stores should remain.
  for (const auto& bb : tp.fn().blocks) {
    for (ValueId id : bb.insts) {
      const auto op = tp.fn().instr(id).op;
      EXPECT_NE(op, Opcode::Load);
      EXPECT_NE(op, Opcode::Store);
      EXPECT_NE(op, Opcode::Alloca);
    }
  }
}

TEST(PassMem2Reg, InsertsPhiAtMerge) {
  auto tp = single();
  Function& f = tp.fn();
  IRBuilder b(f);
  b.set_insert(0);
  const ValueId slot = b.stack_alloc(kI64);
  const ValueId cond = b.icmp(CmpPred::SGT, b.const_i64(3), b.const_i64(2));
  const BlockId t = b.new_block("t");
  const BlockId e = b.new_block("e");
  const BlockId j = b.new_block("j");
  b.cond_br(cond, t, e);
  b.set_insert(t);
  b.store(b.const_i64(10), slot);
  b.br(j);
  b.set_insert(e);
  b.store(b.const_i64(20), slot);
  b.br(j);
  b.set_insert(j);
  b.ret(b.load(kI64, slot));
  const auto stats = check(tp, {"mem2reg"});
  EXPECT_EQ(stats.get("mem2reg.NumPHIInsert"), 1);
}

TEST(PassMem2Reg, SkipsEscapingAlloca) {
  auto tp = single();
  IRBuilder b(tp.fn());
  b.set_insert(0);
  const ValueId slot = b.stack_alloc(kI64, 4);
  const ValueId p1 = b.gep(slot, b.const_i64(1), kI64);  // escapes via gep
  b.store(b.const_i64(7), p1);
  b.ret(b.load(kI64, p1));
  const auto stats = check(tp, {"mem2reg"});
  EXPECT_EQ(stats.get("mem2reg.NumPromoted"), 0);
}

TEST(PassSroa, SplitsAndPromotesAggregates) {
  auto tp = single();
  IRBuilder b(tp.fn());
  b.set_insert(0);
  const ValueId agg = b.stack_alloc(kI64, 3);
  for (int i = 0; i < 3; ++i)
    b.store(b.const_i64(i * 10), b.gep(agg, b.const_i64(i), kI64));
  ValueId acc = b.load(kI64, b.gep(agg, b.const_i64(0), kI64));
  for (int i = 1; i < 3; ++i)
    acc = b.binop(Opcode::Add, acc,
                  b.load(kI64, b.gep(agg, b.const_i64(i), kI64)));
  b.ret(acc);
  const auto stats = check(tp, {"sroa"});
  EXPECT_EQ(stats.get("sroa.NumReplaced"), 1);
  EXPECT_GE(stats.get("sroa.NumPromoted"), 3);
}

TEST(PassInstCombine, FoldsConstantsAndIdentities) {
  auto tp = single();
  IRBuilder b(tp.fn());
  b.set_insert(0);
  const ValueId x = b.binop(Opcode::Add, b.const_i64(20), b.const_i64(22));
  const ValueId y = b.binop(Opcode::Add, x, b.const_i64(0));   // x + 0
  const ValueId z = b.binop(Opcode::Mul, y, b.const_i64(1));   // y * 1
  b.ret(z);
  const auto stats = check(tp, {"instcombine", "dce"});
  EXPECT_GT(stats.get("instcombine.NumConstFold") +
                stats.get("instcombine.NumSimplified"),
            0);
}

TEST(PassInstCombine, MulPowerOfTwoBecomesShift) {
  auto tp = single();
  Function& f = tp.fn();
  IRBuilder b(f);
  b.set_insert(0);
  // Operand is an argument-like opaque value: load from a global.
  tp.module().globals.push_back(
      GlobalVar{"g", std::vector<std::uint8_t>(8, 3)});
  const ValueId v = b.load(kI64, b.global_addr(0));
  b.ret(b.binop(Opcode::Mul, v, b.const_i64(8)));
  check(tp, {"instcombine"});
  bool has_shl = false;
  for (const auto& bb : f.blocks) {
    for (ValueId id : bb.insts) {
      if (f.instr(id).op == Opcode::Shl) has_shl = true;
    }
  }
  EXPECT_TRUE(has_shl);
}

TEST(PassDce, RemovesUnusedPureChain) {
  auto tp = single();
  IRBuilder b(tp.fn());
  b.set_insert(0);
  const ValueId used = b.const_i64(7);
  const ValueId dead1 = b.binop(Opcode::Mul, used, used);
  b.binop(Opcode::Add, dead1, used);  // dead chain
  b.ret(used);
  const auto stats = check(tp, {"dce"});
  EXPECT_GE(stats.get("dce.NumDeleted"), 2);
}

TEST(PassAdce, RemovesDeadPhiCycle) {
  auto tp = single();
  IRBuilder b(tp.fn());
  b.set_insert(0);
  // A loop whose accumulated value is never used after the loop.
  const ValueId dead_acc = b.stack_alloc(kI64);
  b.store(b.const_i64(0), dead_acc);
  auto loop = b.begin_loop(b.const_i64(0), b.const_i64(4));
  b.store(b.binop(Opcode::Add, b.load(kI64, dead_acc), loop.iv), dead_acc);
  b.end_loop(loop);
  b.ret(b.const_i64(9));
  const auto stats = check(tp, {"mem2reg", "adce"});
  EXPECT_GT(stats.get("adce.NumRemoved"), 0);
}

TEST(PassSimplifyCfg, FoldsConstantBranch) {
  auto tp = single();
  IRBuilder b(tp.fn());
  b.set_insert(0);
  const ValueId cond = b.icmp(CmpPred::SGT, b.const_i64(5), b.const_i64(3));
  const BlockId t = b.new_block("t");
  const BlockId e = b.new_block("e");
  b.cond_br(cond, t, e);
  b.set_insert(t);
  b.ret(b.const_i64(1));
  b.set_insert(e);
  b.ret(b.const_i64(2));
  const auto stats = check(tp, {"instcombine", "simplifycfg"});
  EXPECT_GE(stats.get("simplifycfg.NumFoldedBranch"), 1);
}

TEST(PassSimplifyCfg, MergesBlockChains) {
  auto tp = single();
  IRBuilder b(tp.fn());
  b.set_insert(0);
  const BlockId b1 = b.new_block("b1");
  const BlockId b2 = b.new_block("b2");
  b.br(b1);
  b.set_insert(b1);
  const ValueId v = b.const_i64(4);
  b.br(b2);
  b.set_insert(b2);
  b.ret(v);
  const auto stats = check(tp, {"simplifycfg"});
  EXPECT_GE(stats.get("simplifycfg.NumBlocksMerged"), 1);
}

TEST(PassGvn, EliminatesRedundantExpressions) {
  auto tp = single();
  tp.module().globals.push_back(
      GlobalVar{"g", std::vector<std::uint8_t>(8, 5)});
  IRBuilder b(tp.fn());
  b.set_insert(0);
  const ValueId v = b.load(kI64, b.global_addr(0));
  const ValueId a = b.binop(Opcode::Mul, v, v);
  const ValueId bb = b.binop(Opcode::Mul, v, v);  // redundant
  b.ret(b.binop(Opcode::Add, a, bb));
  const auto stats = check(tp, {"gvn"});
  EXPECT_GE(stats.get("gvn.NumGVNInstr"), 1);
}

TEST(PassEarlyCse, EliminatesRedundantLoadsInBlock) {
  auto tp = single();
  tp.module().globals.push_back(
      GlobalVar{"g", std::vector<std::uint8_t>(8, 5)});
  IRBuilder b(tp.fn());
  b.set_insert(0);
  const ValueId addr = b.global_addr(0);
  const ValueId l1 = b.load(kI64, addr);
  const ValueId l2 = b.load(kI64, addr);  // no store in between
  b.ret(b.binop(Opcode::Add, l1, l2));
  const auto stats = check(tp, {"early-cse"});
  EXPECT_GE(stats.get("early-cse.NumCSELoad"), 1);
}

TEST(PassEarlyCse, StoreInvalidatesLoadReuse) {
  auto tp = single();
  tp.module().globals.push_back(
      GlobalVar{"g", std::vector<std::uint8_t>(8, 5)});
  IRBuilder b(tp.fn());
  b.set_insert(0);
  const ValueId addr = b.global_addr(0);
  const ValueId l1 = b.load(kI64, addr);
  b.store(b.binop(Opcode::Add, l1, b.const_i64(1)), addr);
  const ValueId l2 = b.load(kI64, addr);  // must NOT be CSE'd with l1
  b.ret(b.binop(Opcode::Add, l1, l2));
  const auto stats = check(tp, {"early-cse"});
  EXPECT_EQ(stats.get("early-cse.NumCSELoad"), 0);
}

TEST(PassReassociate, FoldsScatteredConstants) {
  auto tp = single();
  tp.module().globals.push_back(
      GlobalVar{"g", std::vector<std::uint8_t>(8, 5)});
  IRBuilder b(tp.fn());
  b.set_insert(0);
  const ValueId v = b.load(kI64, b.global_addr(0));
  // ((v + 1) + v) + 2 : constants meet after reassociation.
  ValueId e = b.binop(Opcode::Add, v, b.const_i64(1));
  e = b.binop(Opcode::Add, e, v);
  e = b.binop(Opcode::Add, e, b.const_i64(2));
  b.ret(e);
  const auto stats = check(tp, {"reassociate"});
  EXPECT_GE(stats.get("reassociate.NumReassoc"), 1);
}

TEST(PassSccp, PropagatesThroughBranches) {
  auto tp = single();
  IRBuilder b(tp.fn());
  b.set_insert(0);
  const ValueId c = b.binop(Opcode::Add, b.const_i64(1), b.const_i64(1));
  const ValueId cond = b.icmp(CmpPred::EQ, c, b.const_i64(2));
  const BlockId t = b.new_block("t");
  const BlockId e = b.new_block("e");
  b.cond_br(cond, t, e);
  b.set_insert(t);
  b.ret(b.const_i64(11));
  b.set_insert(e);
  b.ret(b.const_i64(22));
  const auto stats = check(tp, {"sccp"});
  EXPECT_GT(stats.get("sccp.NumInstRemoved"), 0);
  EXPECT_GE(stats.get("sccp.NumDeadBlocks"), 1);
}

TEST(PassConstMerge, DeduplicatesConstants) {
  auto tp = single();
  tp.module().globals.push_back(
      GlobalVar{"g", std::vector<std::uint8_t>(8, 5)});
  IRBuilder b(tp.fn());
  b.set_insert(0);
  const ValueId v = b.load(kI64, b.global_addr(0));
  const ValueId a = b.binop(Opcode::Add, v, b.const_i64(7));
  const ValueId c = b.binop(Opcode::Mul, a, b.const_i64(7));  // 7 again
  b.ret(c);
  const auto stats = check(tp, {"constmerge"});
  EXPECT_GE(stats.get("constmerge.NumMerged"), 1);
}

TEST(PassDivRemPairs, RewritesRemainder) {
  auto tp = single();
  tp.module().globals.push_back(
      GlobalVar{"g", std::vector<std::uint8_t>(8, 57)});
  IRBuilder b(tp.fn());
  b.set_insert(0);
  const ValueId v = b.load(kI64, b.global_addr(0));
  const ValueId q = b.const_i64(7);
  const ValueId d = b.binop(Opcode::SDiv, v, q);
  const ValueId r = b.binop(Opcode::SRem, v, q);
  b.ret(b.binop(Opcode::Add, d, r));
  double before = 0.0, after = 0.0;
  const auto stats = check(tp, {"div-rem-pairs"}, &before, &after);
  EXPECT_EQ(stats.get("div-rem-pairs.NumDecomposed"), 1);
  EXPECT_LT(after, before);  // srem (expensive) replaced by mul+sub
}

TEST(PassLoopSimplify, CreatesPreheader) {
  auto tp = single();
  Function& f = tp.fn();
  IRBuilder b(f);
  b.set_insert(0);
  // Hand-built loop whose header has two outside predecessors.
  const ValueId cond0 =
      b.icmp(CmpPred::SGT, b.const_i64(2), b.const_i64(1));
  const BlockId pre1 = b.new_block("pre1");
  const BlockId pre2 = b.new_block("pre2");
  const BlockId header = b.new_block("header");
  const BlockId exitb = b.new_block("exit");
  b.cond_br(cond0, pre1, pre2);
  b.set_insert(pre1);
  const ValueId c0 = b.const_i64(0);
  b.br(header);
  b.set_insert(pre2);
  const ValueId c5 = b.const_i64(5);
  b.br(header);
  b.set_insert(header);
  const ValueId iv = b.phi(kI64, {{c0, pre1}, {c5, pre2}});
  const ValueId c1 = b.const_i64(1);
  const ValueId next = b.binop(Opcode::Add, iv, c1);
  const ValueId cont = b.icmp(CmpPred::SLT, next, b.const_i64(10));
  b.cond_br(cont, header, exitb);
  f.instr(iv).ops.push_back(next);
  f.instr(iv).phi_blocks.push_back(header);
  b.set_insert(exitb);
  b.ret(next);
  ASSERT_TRUE(verify_module(tp.module()).empty())
      << verify_module(tp.module()).front();
  const auto stats = check(tp, {"loop-simplify"});
  EXPECT_GE(stats.get("loop-simplify.NumPreheaders"), 1);
}

TEST(PassLicm, HoistsInvariantComputation) {
  auto tp = single();
  tp.module().globals.push_back(
      GlobalVar{"g", std::vector<std::uint8_t>(8, 3)});
  IRBuilder b(tp.fn());
  b.set_insert(0);
  const ValueId acc = b.stack_alloc(kI64);
  b.store(b.const_i64(0), acc);
  const ValueId k = b.load(kI64, b.global_addr(0));
  auto loop = b.begin_loop(b.const_i64(0), b.const_i64(16));
  {
    const ValueId inv = b.binop(Opcode::Mul, k, k);  // invariant
    b.store(b.binop(Opcode::Add, b.load(kI64, acc), inv), acc);
  }
  b.end_loop(loop);
  b.ret(b.load(kI64, acc));
  double before = 0.0, after = 0.0;
  const auto stats =
      check(tp, {"mem2reg", "licm"}, &before, &after);
  EXPECT_GE(stats.get("licm.NumHoisted"), 1);
  EXPECT_LT(after, before);
}

TEST(PassLicm, DoesNotHoistLoadPastStores) {
  auto tp = single();
  tp.module().globals.push_back(
      GlobalVar{"g", std::vector<std::uint8_t>(16, 1)});
  IRBuilder b(tp.fn());
  b.set_insert(0);
  const ValueId acc = b.stack_alloc(kI64);
  b.store(b.const_i64(0), acc);
  const ValueId addr = b.global_addr(0);
  auto loop = b.begin_loop(b.const_i64(0), b.const_i64(8));
  {
    const ValueId v = b.load(kI64, addr);  // address invariant...
    b.store(b.binop(Opcode::Add, v, b.const_i64(1)), addr);  // ...but stored
    b.store(b.binop(Opcode::Add, b.load(kI64, acc), v), acc);
  }
  b.end_loop(loop);
  b.ret(b.load(kI64, acc));
  const auto stats = check(tp, {"mem2reg", "licm"});
  EXPECT_EQ(stats.get("licm.NumHoistedLoad"), 0);
}

TEST(PassLoopUnroll, FullyUnrollsSmallConstantLoop) {
  auto tp = single();
  IRBuilder b(tp.fn());
  b.set_insert(0);
  const ValueId acc = b.stack_alloc(kI64);
  b.store(b.const_i64(0), acc);
  auto loop = b.begin_loop(b.const_i64(0), b.const_i64(6));
  b.store(b.binop(Opcode::Add, b.load(kI64, acc), loop.iv), acc);
  b.end_loop(loop);
  b.ret(b.load(kI64, acc));
  const auto stats =
      check(tp, {"mem2reg", "loop-simplify", "loop-unroll", "sccp", "dce"});
  EXPECT_EQ(stats.get("loop-unroll.NumFullyUnrolled"), 1);
}

TEST(PassLoopUnroll, PartiallyUnrollsLargeLoop) {
  auto tp = single();
  tp.module().globals.push_back(
      GlobalVar{"x", std::vector<std::uint8_t>(256 * 4, 2)});
  IRBuilder b(tp.fn());
  b.set_insert(0);
  const ValueId acc = b.stack_alloc(kI64);
  b.store(b.const_i64(0), acc);
  const ValueId base = b.global_addr(0);
  auto loop = b.begin_loop(b.const_i64(0), b.const_i64(256));
  {
    const ValueId v = b.load(kI32, b.gep(base, loop.iv, kI32));
    const ValueId e = b.cast(Opcode::SExt, v, kI64);
    b.store(b.binop(Opcode::Add, b.load(kI64, acc), e), acc);
  }
  b.end_loop(loop);
  b.ret(b.load(kI64, acc));
  double before = 0.0, after = 0.0;
  const auto stats = check(tp, {"mem2reg", "loop-simplify", "loop-unroll"},
                           &before, &after);
  EXPECT_GE(stats.get("loop-unroll.NumUnrolled"), 1);
  EXPECT_LT(after, before);  // fewer branches
}

TEST(PassLoopIdiom, RecognisesMemset) {
  auto tp = single();
  tp.module().globals.push_back(
      GlobalVar{"buf", std::vector<std::uint8_t>(128 * 4, 9)});
  IRBuilder b(tp.fn());
  b.set_insert(0);
  const ValueId base = b.global_addr(0);
  auto loop = b.begin_loop(b.const_i64(0), b.const_i64(128), 1, "z");
  b.store(b.const_i32(0), b.gep(base, loop.iv, kI32));
  b.end_loop(loop);
  // Read something back so the zeroing is observable.
  const ValueId v = b.load(kI32, b.gep(base, b.const_i64(100), kI32));
  b.ret(b.cast(Opcode::SExt, v, kI64));
  double before = 0.0, after = 0.0;
  const auto stats = check(tp, {"mem2reg", "loop-simplify", "loop-idiom"},
                           &before, &after);
  EXPECT_EQ(stats.get("loop-idiom.NumMemSet"), 1);
  EXPECT_LT(after, before);
}

TEST(PassLoopIdiom, RecognisesMemcpy) {
  auto tp = single();
  tp.module().globals.push_back(
      GlobalVar{"src", std::vector<std::uint8_t>(64 * 4, 3)});
  tp.module().globals.push_back(
      GlobalVar{"dst", std::vector<std::uint8_t>(64 * 4, 0)});
  IRBuilder b(tp.fn());
  b.set_insert(0);
  const ValueId src = b.global_addr(0);
  const ValueId dst = b.global_addr(1);
  auto loop = b.begin_loop(b.const_i64(0), b.const_i64(64), 1, "cp");
  {
    const ValueId v = b.load(kI32, b.gep(src, loop.iv, kI32));
    b.store(v, b.gep(dst, loop.iv, kI32));
  }
  b.end_loop(loop);
  const ValueId v = b.load(kI32, b.gep(dst, b.const_i64(63), kI32));
  b.ret(b.cast(Opcode::SExt, v, kI64));
  const auto stats =
      check(tp, {"mem2reg", "loop-simplify", "loop-idiom"});
  EXPECT_EQ(stats.get("loop-idiom.NumMemCpy"), 1);
}

TEST(PassLoopDeletion, DropsDeadLoop) {
  auto tp = single();
  IRBuilder b(tp.fn());
  b.set_insert(0);
  const ValueId junk = b.stack_alloc(kI64);
  b.store(b.const_i64(0), junk);
  auto loop = b.begin_loop(b.const_i64(0), b.const_i64(50));
  b.store(b.binop(Opcode::Mul, loop.iv, loop.iv), junk);
  b.end_loop(loop);
  b.ret(b.const_i64(77));  // loop result unused
  double before = 0.0, after = 0.0;
  const auto stats = check(
      tp, {"mem2reg", "adce", "loop-simplify", "loop-deletion"}, &before,
      &after);
  EXPECT_GE(stats.get("loop-deletion.NumDeleted"), 1);
  EXPECT_LT(after, before);
}

TEST(PassLoopRotate, RotatesAndEnablesLoadHoist) {
  auto tp = single();
  tp.module().globals.push_back(
      GlobalVar{"g", std::vector<std::uint8_t>(8, 3)});
  IRBuilder b(tp.fn());
  b.set_insert(0);
  const ValueId acc = b.stack_alloc(kI64);
  b.store(b.const_i64(0), acc);
  const ValueId addr = b.global_addr(0);
  auto loop = b.begin_loop(b.const_i64(0), b.const_i64(16));
  {
    const ValueId v = b.load(kI64, addr);  // invariant load, no stores
    b.store(b.binop(Opcode::Add, b.load(kI64, acc), v), acc);
  }
  b.end_loop(loop);
  b.ret(b.load(kI64, acc));
  const auto stats = check(
      tp, {"mem2reg", "loop-simplify", "loop-rotate", "licm"});
  EXPECT_GE(stats.get("loop-rotate.NumRotated"), 1);
  EXPECT_GE(stats.get("licm.NumHoistedLoad"), 1);
}

TEST(PassIndvars, CanonicalisesSleCompare) {
  auto tp = single();
  Function& f = tp.fn();
  IRBuilder b(f);
  b.set_insert(0);
  // while (i <= 9) — builder emits SLT loops, so build SLE by hand.
  const ValueId slot = b.stack_alloc(kI64);
  b.store(b.const_i64(0), slot);
  const BlockId header = b.new_block("h");
  const BlockId body = b.new_block("b");
  const BlockId exitb = b.new_block("e");
  b.br(header);
  b.set_insert(header);
  const ValueId iv = b.load(kI64, slot);
  const ValueId cond = b.icmp(CmpPred::SLE, iv, b.const_i64(9));
  b.cond_br(cond, body, exitb);
  b.set_insert(body);
  const ValueId iv2 = b.load(kI64, slot);
  b.store(b.binop(Opcode::Add, iv2, b.const_i64(1)), slot);
  b.br(header);
  b.set_insert(exitb);
  b.ret(b.load(kI64, slot));
  const auto stats = check(tp, {"indvars"});
  EXPECT_EQ(stats.get("indvars.NumLFTR"), 1);
}

TEST(PassInline, InlinesSmallInternalCallee) {
  auto tp = single();
  create_function(tp.module(), "helper", kI64, {kI64}, true);
  {
    IRBuilder b(tp.fn(1));
    b.set_insert(0);
    b.ret(b.binop(Opcode::Mul, b.arg(0), b.const_i64(3)));
  }
  {
    IRBuilder b(tp.fn(0));
    b.set_insert(0);
    const ValueId r1 = b.call(kI64, "helper", {b.const_i64(5)});
    const ValueId r2 = b.call(kI64, "helper", {b.const_i64(7)});
    b.ret(b.binop(Opcode::Add, r1, r2));
  }
  double before = 0.0, after = 0.0;
  const auto stats = check(tp, {"inline", "globalopt"}, &before, &after);
  EXPECT_EQ(stats.get("inline.NumInlined"), 2);
  EXPECT_EQ(stats.get("globalopt.NumFnDeleted"), 1);
  EXPECT_LT(after, before);  // call overhead removed
}

TEST(PassInline, CallInsideLoopKeepsAllocasInEntry) {
  auto tp = single();
  create_function(tp.module(), "scratch", kI64, {kI64}, true);
  {
    IRBuilder b(tp.fn(1));
    b.set_insert(0);
    const ValueId tmp = b.stack_alloc(kI64);
    b.store(b.binop(Opcode::Add, b.arg(0), b.const_i64(1)), tmp);
    b.ret(b.load(kI64, tmp));
  }
  {
    IRBuilder b(tp.fn(0));
    b.set_insert(0);
    const ValueId acc = b.stack_alloc(kI64);
    b.store(b.const_i64(0), acc);
    auto loop = b.begin_loop(b.const_i64(0), b.const_i64(200));
    {
      const ValueId r = b.call(kI64, "scratch", {loop.iv});
      b.store(b.binop(Opcode::Add, b.load(kI64, acc), r), acc);
    }
    b.end_loop(loop);
    b.ret(b.load(kI64, acc));
  }
  // 200 iterations x a callee alloca: if inlined allocas were not hoisted
  // to the entry block, the frame would grow each iteration.
  check(tp, {"inline"});
}

TEST(PassFunctionAttrs, MarksReadNoneAndEnablesLicm) {
  auto tp = single();
  create_function(tp.module(), "pure3", kI64, {kI64}, true);
  {
    IRBuilder b(tp.fn(1));
    b.set_insert(0);
    b.ret(b.binop(Opcode::Mul, b.arg(0), b.arg(0)));
  }
  {
    IRBuilder b(tp.fn(0));
    b.set_insert(0);
    const ValueId acc = b.stack_alloc(kI64);
    b.store(b.const_i64(0), acc);
    auto loop = b.begin_loop(b.const_i64(0), b.const_i64(12));
    {
      const ValueId k = b.call(kI64, "pure3", {b.const_i64(6)});  // invariant
      b.store(b.binop(Opcode::Add, b.load(kI64, acc), k), acc);
    }
    b.end_loop(loop);
    b.ret(b.load(kI64, acc));
  }
  const auto stats = check(
      tp, {"function-attrs", "mem2reg", "loop-simplify", "licm"});
  EXPECT_GE(stats.get("function-attrs.NumReadNone"), 1);
  EXPECT_GE(stats.get("licm.NumHoistedCall"), 1);
}

TEST(PassFunctionAttrs, LicmWithoutAttrsCannotHoistCall) {
  auto tp = single();
  create_function(tp.module(), "pure3", kI64, {kI64}, true);
  {
    IRBuilder b(tp.fn(1));
    b.set_insert(0);
    b.ret(b.binop(Opcode::Mul, b.arg(0), b.arg(0)));
  }
  {
    IRBuilder b(tp.fn(0));
    b.set_insert(0);
    const ValueId acc = b.stack_alloc(kI64);
    b.store(b.const_i64(0), acc);
    auto loop = b.begin_loop(b.const_i64(0), b.const_i64(12));
    {
      const ValueId k = b.call(kI64, "pure3", {b.const_i64(6)});
      b.store(b.binop(Opcode::Add, b.load(kI64, acc), k), acc);
    }
    b.end_loop(loop);
    b.ret(b.load(kI64, acc));
  }
  // Ordering matters: without function-attrs first, licm must not touch
  // the call — the pass-interaction the paper's Sec. 3.4 highlights.
  const auto stats = check(tp, {"mem2reg", "loop-simplify", "licm"});
  EXPECT_EQ(stats.get("licm.NumHoistedCall"), 0);
}

TEST(PassTailCallElim, ConvertsRecursionToLoop) {
  auto tp = single();
  create_function(tp.module(), "count", kI64, {kI64, kI64}, true);
  {
    IRBuilder b(tp.fn(1));
    b.set_insert(0);
    const BlockId done = b.new_block("done");
    const BlockId rec = b.new_block("rec");
    const ValueId c = b.icmp(CmpPred::SGE, b.arg(0), b.const_i64(500));
    b.cond_br(c, done, rec);
    b.set_insert(done);
    b.ret(b.arg(1));
    b.set_insert(rec);
    const ValueId i2 = b.binop(Opcode::Add, b.arg(0), b.const_i64(1));
    const ValueId a2 = b.binop(Opcode::Add, b.arg(1), b.arg(0));
    const ValueId r = b.call(kI64, "count", {i2, a2});
    b.ret(r);
  }
  {
    IRBuilder b(tp.fn(0));
    b.set_insert(0);
    b.ret(b.call(kI64, "count", {b.const_i64(0), b.const_i64(0)}));
  }
  // Depth 500 exceeds the default call-depth limit, so the *unoptimised*
  // program must use a raised limit; after tailcallelim it runs fine
  // under the default limits.
  ExecLimits deep;
  deep.max_call_depth = 1000;
  const auto before = interpret(tp.p, {}, deep);
  ASSERT_TRUE(before.ok) << before.trap;
  auto stats = passes::run_sequence(tp.module(), {"tailcallelim"}, true);
  EXPECT_GE(stats.get("tailcallelim.NumEliminated"), 1);
  const auto after = interpret(tp.p);  // default depth limit: no recursion
  ASSERT_TRUE(after.ok) << after.trap;
  EXPECT_EQ(after.ret, before.ret);
}

TEST(PassIpsccp, PropagatesUniformConstantArgs) {
  auto tp = single();
  create_function(tp.module(), "scaled", kI64, {kI64, kI64}, true);
  {
    IRBuilder b(tp.fn(1));
    b.set_insert(0);
    b.ret(b.binop(Opcode::Mul, b.arg(0), b.arg(1)));
  }
  {
    IRBuilder b(tp.fn(0));
    b.set_insert(0);
    const ValueId r1 = b.call(kI64, "scaled", {b.const_i64(4), b.const_i64(3)});
    const ValueId r2 = b.call(kI64, "scaled", {b.const_i64(9), b.const_i64(3)});
    b.ret(b.binop(Opcode::Add, r1, r2));
  }
  const auto stats = check(tp, {"ipsccp"});
  // Arg 1 is always 3; arg 0 differs across call sites.
  EXPECT_EQ(stats.get("ipsccp.NumArgsConsted"), 1);
}

TEST(PassDeadArgElim, NeutralisesUnusedArgs) {
  auto tp = single();
  create_function(tp.module(), "ignores", kI64, {kI64, kI64}, true);
  {
    IRBuilder b(tp.fn(1));
    b.set_insert(0);
    b.ret(b.arg(0));  // arg 1 unused
  }
  {
    IRBuilder b(tp.fn(0));
    b.set_insert(0);
    tp.module().globals.push_back(
        GlobalVar{"g", std::vector<std::uint8_t>(8, 2)});
    const ValueId v = b.load(kI64, b.global_addr(0));
    const ValueId expensive = b.binop(Opcode::SDiv, v, b.const_i64(3));
    const ValueId r = b.call(kI64, "ignores", {b.const_i64(5), expensive});
    b.ret(r);
  }
  const auto stats = check(tp, {"deadargelim", "dce"});
  EXPECT_EQ(stats.get("deadargelim.NumArgumentsEliminated"), 1);
  EXPECT_GE(stats.get("dce.NumDeleted"), 1);  // the sdiv chain died
}

TEST(PassJumpThreading, ThreadsPhiOfConstants) {
  auto tp = single();
  Function& f = tp.fn();
  IRBuilder b(f);
  b.set_insert(0);
  tp.module().globals.push_back(
      GlobalVar{"g", std::vector<std::uint8_t>(8, 1)});
  const ValueId v = b.load(kI64, b.global_addr(0));
  const ValueId c = b.icmp(CmpPred::SGT, v, b.const_i64(0));
  const BlockId a = b.new_block("a");
  const BlockId bb2 = b.new_block("b");
  const BlockId merge = b.new_block("merge");
  const BlockId yes = b.new_block("yes");
  const BlockId no = b.new_block("no");
  b.cond_br(c, a, bb2);
  b.set_insert(a);
  const ValueId t = b.const_i64(1);
  b.br(merge);
  b.set_insert(bb2);
  const ValueId fzero = b.const_i64(0);
  b.br(merge);
  b.set_insert(merge);
  const ValueId phi = b.phi(kI1, {{t, a}, {fzero, bb2}});
  b.cond_br(phi, yes, no);
  b.set_insert(yes);
  b.ret(b.const_i64(100));
  b.set_insert(no);
  b.ret(b.const_i64(200));
  const auto stats = check(tp, {"jump-threading", "simplifycfg"});
  EXPECT_GE(stats.get("jump-threading.NumThreads"), 1);
}

TEST(PassSlp, VectorisesUnrolledDotProduct) {
  // Covered extensively by test_motif.cpp; here: the fp element-wise map
  // must NOT be SLP'd into a reduction (fp chains are rejected).
  auto tp = single();
  tp.module().globals.push_back(
      GlobalVar{"a", std::vector<std::uint8_t>(8 * 8, 1)});
  IRBuilder b(tp.fn());
  b.set_insert(0);
  const ValueId base = b.global_addr(0);
  ValueId acc = b.const_f64(0.0);
  for (int j = 0; j < 4; ++j) {
    const ValueId v = b.load(kF64, b.gep(base, b.const_i64(j), kF64));
    acc = b.binop(Opcode::FAdd, acc, v);
  }
  b.ret(b.cast(Opcode::FPToSI, acc, kI64));
  const auto stats = check(tp, {"slp-vectorizer"});
  EXPECT_EQ(stats.get("slp.NumVectorized"), 0)
      << "fp reduction must not be reassociated";
}

TEST(PassLoopVectorize, VectorisesIntReduction) {
  auto tp = single();
  tp.module().globals.push_back(
      GlobalVar{"x", std::vector<std::uint8_t>(64 * 4, 1)});
  IRBuilder b(tp.fn());
  b.set_insert(0);
  const ValueId acc = b.stack_alloc(kI32);
  b.store(b.const_i32(0), acc);
  const ValueId base = b.global_addr(0);
  auto loop = b.begin_loop(b.const_i64(0), b.const_i64(64));
  {
    const ValueId v = b.load(kI32, b.gep(base, loop.iv, kI32));
    b.store(b.binop(Opcode::Add, b.load(kI32, acc), v), acc);
  }
  b.end_loop(loop);
  b.ret(b.cast(Opcode::SExt, b.load(kI32, acc), kI64));
  double before = 0.0, after = 0.0;
  const auto stats = check(
      tp, {"mem2reg", "loop-simplify", "loop-vectorize"}, &before, &after);
  EXPECT_EQ(stats.get("loop-vectorize.LoopsVectorized"), 1);
  EXPECT_LT(after, before);
}

TEST(PassLoopVectorize, RejectsAliasedStores) {
  auto tp = single();
  tp.module().globals.push_back(
      GlobalVar{"x", std::vector<std::uint8_t>(64 * 4, 1)});
  IRBuilder b(tp.fn());
  b.set_insert(0);
  const ValueId base = b.global_addr(0);
  auto loop = b.begin_loop(b.const_i64(0), b.const_i64(64));
  {
    // x[i] = x[i] * 2 is fine, but load+store through the SAME base must
    // be rejected by the conservative alias check.
    const ValueId v = b.load(kI32, b.gep(base, loop.iv, kI32));
    b.store(b.binop(Opcode::Mul, v, b.const_i32(2)),
            b.gep(base, loop.iv, kI32));
  }
  b.end_loop(loop);
  const ValueId r = b.load(kI32, b.gep(base, b.const_i64(5), kI32));
  b.ret(b.cast(Opcode::SExt, r, kI64));
  const auto stats = check(
      tp, {"mem2reg", "loop-simplify", "loop-vectorize"});
  EXPECT_EQ(stats.get("loop-vectorize.LoopsVectorized"), 0);
}

TEST(PassSink, MovesComputationIntoUsingBranch) {
  auto tp = single();
  tp.module().globals.push_back(
      GlobalVar{"g", std::vector<std::uint8_t>(8, 200)});
  IRBuilder b(tp.fn());
  b.set_insert(0);
  const ValueId v = b.load(kI64, b.global_addr(0));
  const ValueId expensive = b.binop(Opcode::Mul, v, v);  // used in one arm
  const ValueId c = b.icmp(CmpPred::SGT, v, b.const_i64(100));
  const BlockId hot = b.new_block("hot");
  const BlockId cold = b.new_block("cold");
  b.cond_br(c, hot, cold);
  b.set_insert(hot);
  b.ret(expensive);
  b.set_insert(cold);
  b.ret(v);
  const auto stats = check(tp, {"sink"});
  EXPECT_GE(stats.get("sink.NumSunk"), 1);
}

TEST(PassRegistry, EveryPassRunsOnEveryBenchmarkModule) {
  // Single-pass robustness: each registered pass alone must keep every
  // benchmark program verifier-clean and semantics-preserving.
  const auto& reg = passes::PassRegistry::instance();
  for (const auto& pass : reg.pass_names()) {
    auto p = bench_suite::make_program("telecom_gsm");
    const auto before = interpret(p);
    for (auto& m : p.modules)
      ASSERT_NO_THROW(passes::run_sequence(m, {pass}, true))
          << pass << " on " << m.name;
    const auto after = interpret(p);
    ASSERT_TRUE(after.ok) << pass << ": " << after.trap;
    EXPECT_EQ(after.ret, before.ret) << pass << " miscompiled";
  }
}

TEST(PassDse, RemovesOverwrittenStore) {
  auto tp = single();
  tp.module().globals.push_back(
      GlobalVar{"g", std::vector<std::uint8_t>(8, 0)});
  IRBuilder b(tp.fn());
  b.set_insert(0);
  const ValueId addr = b.global_addr(0);
  b.store(b.const_i64(111), addr);  // dead: overwritten below, never read
  b.store(b.const_i64(222), addr);
  b.ret(b.load(kI64, addr));
  const auto stats = check(tp, {"dse"});
  EXPECT_EQ(stats.get("dse.NumStoresDeleted"), 1);
}

TEST(PassDse, KeepsStoreReadInBetween) {
  auto tp = single();
  tp.module().globals.push_back(
      GlobalVar{"g", std::vector<std::uint8_t>(8, 0)});
  IRBuilder b(tp.fn());
  b.set_insert(0);
  const ValueId addr = b.global_addr(0);
  b.store(b.const_i64(111), addr);
  const ValueId v = b.load(kI64, addr);  // reads the first store
  b.store(b.const_i64(222), addr);
  b.ret(b.binop(Opcode::Add, v, b.load(kI64, addr)));
  const auto stats = check(tp, {"dse"});
  EXPECT_EQ(stats.get("dse.NumStoresDeleted"), 0);
}

TEST(PassDse, NarrowLaterStoreDoesNotKillWideStore) {
  auto tp = single();
  tp.module().globals.push_back(
      GlobalVar{"g", std::vector<std::uint8_t>(8, 0)});
  IRBuilder b(tp.fn());
  b.set_insert(0);
  const ValueId addr = b.global_addr(0);
  b.store(b.const_i64(0x1111222233334444LL), addr);  // 8 bytes
  b.store(b.const_i16(9), addr);                     // 2 bytes only
  b.ret(b.load(kI64, addr));  // upper bytes come from the wide store
  const auto stats = check(tp, {"dse"});
  EXPECT_EQ(stats.get("dse.NumStoresDeleted"), 0);
}

TEST(PassMemCpyOpt, ForwardsStoreToLoad) {
  auto tp = single();
  tp.module().globals.push_back(
      GlobalVar{"g", std::vector<std::uint8_t>(8, 0)});
  IRBuilder b(tp.fn());
  b.set_insert(0);
  const ValueId addr = b.global_addr(0);
  const ValueId v = b.const_i64(37);
  b.store(v, addr);
  const ValueId l = b.load(kI64, addr);  // forwarded to v
  b.ret(b.binop(Opcode::Add, l, b.const_i64(5)));
  double before = 0.0, after = 0.0;
  const auto stats = check(tp, {"memcpyopt", "dce"}, &before, &after);
  EXPECT_EQ(stats.get("memcpyopt.NumLoadsForwarded"), 1);
  EXPECT_LT(after, before);  // the load disappeared
}

TEST(PassMemCpyOpt, InterveningStoreBlocksForwarding) {
  auto tp = single();
  tp.module().globals.push_back(
      GlobalVar{"g", std::vector<std::uint8_t>(16, 0)});
  IRBuilder b(tp.fn());
  b.set_insert(0);
  const ValueId a1 = b.global_addr(0);
  const ValueId a2 = b.gep(a1, b.const_i64(0), kI64);  // equal address,
  b.store(b.const_i64(1), a1);                         // different SSA id
  b.store(b.const_i64(2), a2);  // clobbers a1's bytes through another name
  const ValueId l = b.load(kI64, a1);  // must NOT forward the first store
  b.ret(l);
  const auto r0 = interpret(tp.p);
  ASSERT_TRUE(r0.ok);
  EXPECT_EQ(r0.ret, 2);
  const auto stats = check(tp, {"memcpyopt"});
  EXPECT_EQ(stats.get("memcpyopt.NumLoadsForwarded"), 0);
}

TEST(PassLoopUnswitch, IfConvertsInvariantBranchInLoop) {
  auto tp = single();
  tp.module().globals.push_back(
      GlobalVar{"g", std::vector<std::uint8_t>(8, 1)});
  tp.module().globals.push_back(
      GlobalVar{"x", std::vector<std::uint8_t>(32 * 4, 2)});
  IRBuilder b(tp.fn());
  b.set_insert(0);
  const ValueId flag = b.load(kI64, b.global_addr(0));
  const ValueId inv = b.icmp(CmpPred::SGT, flag, b.const_i64(0));
  const ValueId base = b.global_addr(1);
  const ValueId acc = b.stack_alloc(kI64);
  b.store(b.const_i64(0), acc);
  auto loop = b.begin_loop(b.const_i64(0), b.const_i64(32));
  {
    const ValueId v = b.load(kI32, b.gep(base, loop.iv, kI32));
    const ValueId e = b.cast(Opcode::SExt, v, kI64);
    const BlockId armA = b.new_block("armA");
    const BlockId armB = b.new_block("armB");
    const BlockId join = b.new_block("join");
    b.cond_br(inv, armA, armB);
    b.set_insert(armA);
    const ValueId wa = b.binop(Opcode::Mul, e, b.const_i64(3));
    b.br(join);
    b.set_insert(armB);
    const ValueId wb = b.binop(Opcode::Add, e, b.const_i64(100));
    b.br(join);
    b.set_insert(join);
    const ValueId merged = b.phi(kI64, {{wa, armA}, {wb, armB}});
    b.store(b.binop(Opcode::Add, b.load(kI64, acc), merged), acc);
  }
  b.end_loop(loop);
  b.ret(b.load(kI64, acc));
  double before = 0.0, after = 0.0;
  const auto stats = check(tp, {"mem2reg", "loop-unswitch", "dce"},
                           &before, &after);
  EXPECT_EQ(stats.get("loop-unswitch.NumUnswitched"), 1);
  EXPECT_LT(after, before);  // the per-iteration branch is gone
}
