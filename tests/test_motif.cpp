// The paper's central phenomenon (Fig. 5.1 / Table 5.1): the sequence
// `mem2reg, slp-vectorizer` vectorises the GSM dot product, while
// `mem2reg, instcombine, slp-vectorizer` does not — and the compilation
// statistic slp.NumVectorInstrs reveals the difference without running
// the binary.

#include <gtest/gtest.h>

#include "bench_suite/suite.hpp"
#include "ir/interpreter.hpp"
#include "passes/pass.hpp"
#include "sim/evaluator.hpp"
#include "sim/machine.hpp"

using namespace citroen;

namespace {

passes::StatsRegistry compile_long_term(
    const std::vector<std::string>& seq, ir::Program& p) {
  auto* m = p.find_module("long_term");
  EXPECT_NE(m, nullptr);
  return passes::run_sequence(*m, seq, /*verify_each=*/true);
}

}  // namespace

TEST(Fig51Motif, Mem2RegThenSlpVectorises) {
  auto p = bench_suite::make_program("telecom_gsm");
  const auto stats = compile_long_term({"mem2reg", "slp-vectorizer"}, p);
  EXPECT_GT(stats.get("slp.NumVectorInstrs"), 0)
      << "SLP should fire after mem2reg";
  EXPECT_GT(stats.get("mem2reg.NumPromoted"), 0);
}

TEST(Fig51Motif, InstCombineBetweenBlocksVectorisation) {
  auto p = bench_suite::make_program("telecom_gsm");
  const auto stats =
      compile_long_term({"mem2reg", "instcombine", "slp-vectorizer"}, p);
  EXPECT_EQ(stats.get("slp.NumVectorInstrs"), 0)
      << "instcombine's widened i64 multiplies must defeat SLP";
  EXPECT_GT(stats.get("instcombine.NumWidenedMul"), 0);
}

TEST(Fig51Motif, SlpWithoutMem2RegDoesNothing) {
  auto p = bench_suite::make_program("telecom_gsm");
  const auto stats = compile_long_term({"slp-vectorizer"}, p);
  EXPECT_EQ(stats.get("slp.NumVectorInstrs"), 0)
      << "stack-slot accumulator stores must block SLP";
}

TEST(Fig51Motif, InstCombineAfterSlpIsHarmless) {
  auto p = bench_suite::make_program("telecom_gsm");
  const auto stats =
      compile_long_term({"mem2reg", "slp-vectorizer", "instcombine"}, p);
  EXPECT_GT(stats.get("slp.NumVectorInstrs"), 0);
}

TEST(Fig51Motif, Table51SpeedupOrdering) {
  // The good ordering must beat -O3-relative performance of the bad one,
  // mirroring Table 5.1's 1.13x vs 0.86x split.
  sim::ProgramEvaluator ev(bench_suite::make_program("telecom_gsm"),
                           sim::arm_a57_model());
  const std::vector<std::string> good = {"mem2reg", "slp-vectorizer",
                                         "instcombine"};
  const std::vector<std::string> bad = {"mem2reg", "instcombine",
                                        "slp-vectorizer"};
  auto good_out = ev.evaluate({{"long_term", good}});
  auto bad_out = ev.evaluate({{"long_term", bad}});
  ASSERT_TRUE(good_out.valid) << good_out.why_invalid;
  ASSERT_TRUE(bad_out.valid) << bad_out.why_invalid;
  EXPECT_GT(good_out.speedup, bad_out.speedup);
}

TEST(Fig51Motif, DifferentialTestingCatchesNothingOnValidSequences) {
  sim::ProgramEvaluator ev(bench_suite::make_program("telecom_gsm"),
                           sim::amd_zen_model());
  const auto out = ev.evaluate(
      {{"long_term", {"mem2reg", "slp-vectorizer", "dce", "simplifycfg"}}});
  ASSERT_TRUE(out.valid) << out.why_invalid;
  EXPECT_GT(out.stats.get("slp.NumVectorInstrs"), 0);
}
