// Tests for the prefix cache's persistent disk tier (sim/cache_disk.hpp)
// and the MiniIR codec beneath it (ir/serialize.hpp).
//
// The property half is the contract the tier advertises: ANY torn,
// bit-flipped, zeroed or truncated entry on disk must load as a miss
// with the file quarantined — never a crash, never a wrong value.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench_suite/suite.hpp"
#include "ir/builder.hpp"
#include "ir/printer.hpp"
#include "ir/serialize.hpp"
#include "passes/pass.hpp"
#include "sim/cache_disk.hpp"
#include "sim/evaluator.hpp"
#include "sim/machine.hpp"
#include "sim/prefix_cache.hpp"
#include "support/rng.hpp"

using namespace citroen;
namespace fs = std::filesystem;

namespace {

/// Fresh scratch directory per test.
std::string scratch_dir(const char* tag) {
  const auto dir = fs::temp_directory_path() /
                   ("citroen_disk_test_" + std::string(tag) + "_" +
                    std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// A real module to round-trip: security_sha's, after a few passes so it
/// exercises most instruction kinds, phis and globals.
ir::Module sample_module() {
  auto program = bench_suite::make_program("security_sha");
  ir::Module m = program.modules.front();
  passes::run_sequence(m, {"mem2reg", "instcombine", "simplifycfg"});
  return m;
}

sim::ModuleBuild sample_build() {
  sim::ModuleBuild b;
  b.ok = true;
  b.module = sample_module();
  b.print_hash = 0x1234abcd5678ef01ull;
  b.code_size = 321;
  b.stats.add(passes::intern_stat_key("instcombine.folded"), 7);
  return b;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

}  // namespace

// ---- ir/serialize ----------------------------------------------------------

TEST(IrSerialize, ModuleRoundTripsBitExactly) {
  const ir::Module m = sample_module();
  const std::string bytes = ir::encode_module(m);
  const ir::Module back = ir::decode_module(bytes);
  // print_module is a complete rendering of the module; byte equality of
  // the text plus re-encode equality of the bytes is bit-exactness.
  EXPECT_EQ(ir::print_module(m), ir::print_module(back));
  EXPECT_EQ(bytes, ir::encode_module(back));
}

TEST(IrSerialize, TruncationThrowsInsteadOfCrashing) {
  const std::string bytes = ir::encode_module(sample_module());
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{1}, bytes.size() / 2, bytes.size() - 1}) {
    EXPECT_THROW(ir::decode_module(bytes.substr(0, keep)), std::exception)
        << "kept " << keep << " of " << bytes.size();
  }
}

TEST(IrSerialize, ModuleBuildRoundTrips) {
  const sim::ModuleBuild b = sample_build();
  const sim::ModuleBuild back =
      sim::decode_module_build(sim::encode_module_build(b));
  EXPECT_EQ(back.ok, b.ok);
  EXPECT_EQ(back.crashed, b.crashed);
  EXPECT_EQ(back.error, b.error);
  EXPECT_EQ(back.print_hash, b.print_hash);
  EXPECT_EQ(back.code_size, b.code_size);
  EXPECT_EQ(ir::print_module(back.module), ir::print_module(b.module));
  EXPECT_EQ(back.stats.counters(), b.stats.counters());
}

// ---- DiskCacheTier happy path ----------------------------------------------

TEST(DiskCacheTier, StoreThenLoadHits) {
  sim::DiskCacheTier tier(scratch_dir("roundtrip"));
  ASSERT_TRUE(tier.enabled());
  const sim::ModuleBuild b = sample_build();
  tier.store(0xfeedf00d, b);
  const auto hit = tier.load(0xfeedf00d);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->print_hash, b.print_hash);
  EXPECT_EQ(ir::print_module(hit->module), ir::print_module(b.module));
  EXPECT_EQ(tier.stats().hits, 1u);
  EXPECT_EQ(tier.stats().stores, 1u);
}

TEST(DiskCacheTier, AbsentKeyIsCleanMiss) {
  sim::DiskCacheTier tier(scratch_dir("miss"));
  EXPECT_EQ(tier.load(0xdeadbeef), nullptr);
  EXPECT_EQ(tier.stats().misses, 1u);
  EXPECT_EQ(tier.stats().quarantined, 0u);
}

TEST(DiskCacheTier, UncreatableDirDisablesTier) {
  sim::DiskCacheTier tier("/proc/definitely/not/writable");
  EXPECT_FALSE(tier.enabled());
}

TEST(DiskCacheTier, FailedBuildsRoundTripToo) {
  sim::DiskCacheTier tier(scratch_dir("failed"));
  sim::ModuleBuild b;
  b.ok = false;
  b.crashed = true;
  b.error = "pass crashed: instcombine: boom";
  tier.store(5, b);
  const auto hit = tier.load(5);
  ASSERT_NE(hit, nullptr);
  EXPECT_FALSE(hit->ok);
  EXPECT_TRUE(hit->crashed);
  EXPECT_EQ(hit->error, b.error);
}

// ---- corruption properties -------------------------------------------------

namespace {

/// Corrupt the stored entry with `mutate`, then assert the contract:
/// load is a miss, the file is quarantined, nothing throws.
void expect_corruption_contained(const std::string& dir,
                                 const std::function<void(std::string&)>& mutate,
                                 const char* what) {
  sim::DiskCacheTier tier(dir);
  ASSERT_TRUE(tier.enabled());
  constexpr std::uint64_t kKey = 0xabcdef12;
  tier.store(kKey, sample_build());
  const std::string path = tier.entry_path(kKey);
  std::string bytes = read_file(path);
  ASSERT_FALSE(bytes.empty());
  mutate(bytes);
  write_file(path, bytes);

  const auto before = tier.stats().quarantined;
  std::shared_ptr<const sim::ModuleBuild> got;
  EXPECT_NO_THROW(got = tier.load(kKey)) << what;
  EXPECT_EQ(got, nullptr) << what;
  EXPECT_EQ(tier.stats().quarantined, before + 1) << what;
  EXPECT_FALSE(fs::exists(path)) << what << ": file must be renamed aside";
  EXPECT_TRUE(fs::exists(path + ".bad")) << what;

  // And the tier keeps serving: a re-store over the quarantined key
  // works and loads cleanly.
  tier.store(kKey, sample_build());
  EXPECT_NE(tier.load(kKey), nullptr) << what;
}

}  // namespace

TEST(DiskCacheTierCorruption, RandomBitFlips) {
  Rng rng(2024);
  for (int trial = 0; trial < 12; ++trial) {
    expect_corruption_contained(
        scratch_dir(("flip" + std::to_string(trial)).c_str()),
        [&rng](std::string& bytes) {
          const auto off = rng.next_u64() % bytes.size();
          bytes[off] = static_cast<char>(
              bytes[off] ^ static_cast<char>(1u << (rng.next_u64() % 8)));
        },
        "bit flip");
  }
}

TEST(DiskCacheTierCorruption, RandomTruncation) {
  Rng rng(77);
  for (int trial = 0; trial < 12; ++trial) {
    expect_corruption_contained(
        scratch_dir(("trunc" + std::to_string(trial)).c_str()),
        [&rng](std::string& bytes) {
          bytes.resize(rng.next_u64() % bytes.size());
        },
        "truncation");
  }
}

TEST(DiskCacheTierCorruption, ZeroedRanges) {
  Rng rng(31337);
  for (int trial = 0; trial < 12; ++trial) {
    expect_corruption_contained(
        scratch_dir(("zero" + std::to_string(trial)).c_str()),
        [&rng](std::string& bytes) {
          const auto start = rng.next_u64() % bytes.size();
          const auto len = 1 + rng.next_u64() % (bytes.size() - start);
          for (std::size_t i = start; i < start + len; ++i) bytes[i] = 0;
        },
        "zeroed range");
  }
}

TEST(DiskCacheTierCorruption, WrongKeyEchoQuarantines) {
  expect_corruption_contained(
      scratch_dir("keyecho"),
      [](std::string& bytes) { bytes[8] = static_cast<char>(bytes[8] + 1); },
      "key echo");
}

TEST(DiskCacheTierCorruption, GarbageFileQuarantines) {
  expect_corruption_contained(
      scratch_dir("garbage"),
      [](std::string& bytes) { bytes.assign(64, '\xa5'); }, "garbage file");
}

// ---- PrefixCache integration -----------------------------------------------

TEST(PrefixCacheDiskTier, WarmStartServesFromDisk) {
  const std::string dir = scratch_dir("warm");
  const auto program = bench_suite::make_program("security_sha");
  const std::vector<std::string> seq = {"mem2reg", "instcombine", "gvn",
                                        "simplifycfg", "dce"};

  std::uint64_t cold_hash = 0;
  {
    sim::PrefixCacheConfig cfg;
    cfg.disk_dir = dir;
    sim::PrefixCache cache(cfg);
    const auto b = cache.build(program.modules.front(),
                               passes::intern_sequence(seq), /*salt=*/9);
    ASSERT_TRUE(b->ok);
    cold_hash = b->print_hash;
    EXPECT_GE(cache.stats().disk_stores, 1u);
  }
  {
    // A brand-new cache (fresh RAM, same dir) must serve the identical
    // finalized build from disk without running a single pass.
    sim::PrefixCacheConfig cfg;
    cfg.disk_dir = dir;
    sim::PrefixCache cache(cfg);
    const auto b = cache.build(program.modules.front(),
                               passes::intern_sequence(seq), /*salt=*/9);
    ASSERT_TRUE(b->ok);
    EXPECT_EQ(b->print_hash, cold_hash);
    EXPECT_GE(cache.stats().disk_hits, 1u);
    EXPECT_EQ(cache.stats().passes_run, 0u);
  }
}

TEST(PrefixCacheDiskTier, ClearKeepsDiskEntries) {
  const std::string dir = scratch_dir("clear");
  const auto program = bench_suite::make_program("security_sha");
  const auto ids = passes::intern_sequence({"mem2reg", "dce"});
  sim::PrefixCacheConfig cfg;
  cfg.disk_dir = dir;
  sim::PrefixCache cache(cfg);
  ASSERT_TRUE(cache.build(program.modules.front(), ids, 1)->ok);
  cache.clear();
  const auto again = cache.build(program.modules.front(), ids, 1);
  ASSERT_TRUE(again->ok);
  EXPECT_GE(cache.stats().disk_hits, 1u);
}

// ---- byte-budget regression (satellite fix) --------------------------------

namespace {

/// The smallest interesting module: `i64 main() { ret <k> }`. Its
/// snapshot payload is a rounding error next to the fixed per-entry
/// bookkeeping (map node, LRU node, twice the 8-byte key), which is
/// exactly the regime the pre-fix accounting got wrong.
ir::Module tiny_module() {
  ir::Module m;
  m.name = "tiny";
  ir::create_function(m, "main", ir::kI64, {}, false);
  ir::IRBuilder b(m.functions[0]);
  b.set_insert(0);
  b.ret(b.const_i64(7));
  return m;
}

}  // namespace

TEST(PrefixCacheBudget, AccountsKeyAndNodeOverheadPerEntry) {
  // Payload-only accounting (the pre-fix behaviour) would fit hundreds
  // of tiny entries in 8 KiB; overhead-aware accounting must start
  // evicting well before 64 distinct salts are resident — and stay
  // within the configured budget either way.
  const ir::Module m = tiny_module();
  const auto ids = passes::intern_sequence({"mem2reg", "dce"});
  sim::PrefixCacheConfig cfg;
  cfg.byte_budget = 8 << 10;
  cfg.snapshot_stride = 1000;  // finalized entries only
  cfg.shards = 1;
  sim::PrefixCache cache(cfg);

  for (std::size_t i = 0; i < 64; ++i)
    cache.build(m, ids, /*salt=*/i + 1);
  const auto st = cache.stats();
  EXPECT_LE(st.bytes, std::size_t{8} << 10);
  EXPECT_GT(st.evictions, 0u)
      << "64 distinct entries must overflow an 8 KiB budget once the "
         "per-entry key/node overhead is counted";
}
