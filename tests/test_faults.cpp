// Tests for the fault-injection layer (sim/faults.hpp) and the hardened
// evaluation path (sim/robust_evaluator.hpp): seeded determinism,
// transient-vs-deterministic behaviour, retry, quarantine, replicated
// measurement and the noisy-rejection guard.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench_suite/suite.hpp"
#include "persist/codec.hpp"
#include "sim/evaluator.hpp"
#include "sim/faults.hpp"
#include "sim/machine.hpp"
#include "sim/robust_evaluator.hpp"

using namespace citroen;

namespace {

const std::vector<std::vector<std::string>>& probe_sequences() {
  static const std::vector<std::vector<std::string>> seqs = {
      {"dce"},          {"gvn"},
      {"mem2reg"},      {"instcombine"},
      {"mem2reg", "gvn"}, {"gvn", "dce"},
      {"mem2reg", "gvn", "dce"}, {"dce", "mem2reg"},
  };
  return seqs;
}

}  // namespace

TEST(Faults, KeysFollowSequencePrefixes) {
  const std::vector<std::string> a = {"gvn", "dce", "licm"};
  const std::vector<std::string> b = {"gvn", "dce", "unroll"};
  // Shared prefixes share keys; diverging suffixes do not.
  EXPECT_EQ(sim::fault_key("m", a, 1), sim::fault_key("m", b, 1));
  EXPECT_EQ(sim::fault_key("m", a, 2), sim::fault_key("m", b, 2));
  EXPECT_NE(sim::fault_key("m", a, 3), sim::fault_key("m", b, 3));
  // The module is part of the key.
  EXPECT_NE(sim::fault_key("m", a, 2), sim::fault_key("n", a, 2));
}

TEST(Faults, DecisionsAreSeedDeterministic) {
  sim::FaultPlan plan;
  plan.seed = 17;
  plan.transient_crash_rate = 0.3;
  plan.deterministic_crash_rate = 0.3;
  plan.hang_rate = 0.3;
  plan.noise_sigma = 0.2;
  const sim::FaultInjector a(plan), b(plan);
  bool any_fault = false;
  for (const auto& seq : probe_sequences()) {
    const auto da = a.compile_fault("sha", seq);
    const auto db = b.compile_fault("sha", seq);
    EXPECT_EQ(da.kind, db.kind);
    EXPECT_EQ(da.transient, db.transient);
    EXPECT_EQ(da.detail, db.detail);
    any_fault = any_fault || da.kind != sim::FaultKind::None;
  }
  EXPECT_TRUE(any_fault) << "rates this high must hit some probe";
  for (std::uint64_t h : {1ull, 99ull, 12345ull}) {
    EXPECT_EQ(a.runtime_fault(h).kind, b.runtime_fault(h).kind);
    EXPECT_EQ(a.perturb(1000.0, h, 0), b.perturb(1000.0, h, 0));
  }

  // A different seed reshuffles which operations fault.
  sim::FaultPlan other = plan;
  other.seed = 18;
  const sim::FaultInjector c(other);
  bool any_diff = false;
  for (const auto& seq : probe_sequences()) {
    sim::FaultInjector fresh(plan);  // counter-free comparison
    if (fresh.compile_fault("sha", seq).kind !=
        c.compile_fault("sha", seq).kind)
      any_diff = true;
  }
  for (std::uint64_t h = 0; h < 64 && !any_diff; ++h) {
    sim::FaultInjector fresh(plan);
    if (fresh.perturb(1000.0, h, 0) != c.perturb(1000.0, h, 0))
      any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Faults, DeterministicCrashesArePermanent) {
  sim::FaultPlan plan;
  plan.deterministic_crash_rate = 1.0;
  const sim::FaultInjector inj(plan);
  for (int attempt = 0; attempt < 3; ++attempt) {
    const auto d = inj.compile_fault("sha", {"gvn"});
    EXPECT_EQ(d.kind, sim::FaultKind::Crash);
    EXPECT_FALSE(d.transient);
  }
}

TEST(Faults, TransientCrashesClearOnRetryAndReplayAfterReset) {
  sim::FaultPlan plan;
  plan.seed = 7;
  plan.transient_crash_rate = 0.6;
  // Find a probe whose first attempt crashes but that recovers on retry.
  for (const auto& seq : probe_sequences()) {
    sim::FaultInjector inj(plan);
    const auto first = inj.compile_fault("sha", seq);
    if (first.kind != sim::FaultKind::Crash) continue;
    EXPECT_TRUE(first.transient);
    int recovered_at = -1;
    for (int attempt = 1; attempt <= 16; ++attempt) {
      if (inj.compile_fault("sha", seq).kind == sim::FaultKind::None) {
        recovered_at = attempt;
        break;
      }
    }
    ASSERT_GT(recovered_at, 0) << "transient fault never cleared";
    // Forgetting the attempt counters replays the exact same history.
    inj.reset_attempts();
    EXPECT_EQ(inj.compile_fault("sha", seq).kind, sim::FaultKind::Crash);
    for (int attempt = 1; attempt < recovered_at; ++attempt)
      EXPECT_EQ(inj.compile_fault("sha", seq).kind, sim::FaultKind::Crash);
    EXPECT_EQ(inj.compile_fault("sha", seq).kind, sim::FaultKind::None);
    return;
  }
  FAIL() << "no probe sequence crashed at 60% transient rate";
}

TEST(Faults, PerturbIsDeterministicPerReplicate) {
  sim::FaultPlan plan;
  plan.seed = 5;
  plan.noise_sigma = 0.1;
  const sim::FaultInjector inj(plan);
  const double a0 = inj.perturb(1e6, 42, 0);
  EXPECT_EQ(a0, inj.perturb(1e6, 42, 0));  // same replicate, same draw
  EXPECT_NE(a0, inj.perturb(1e6, 42, 1));  // fresh replicate, fresh draw
  EXPECT_NE(a0, inj.perturb(1e6, 43, 0));  // different binary, fresh draw
  EXPECT_GT(a0, 0.0);
}

TEST(Faults, DisabledPlanIsInert) {
  const sim::FaultPlan plan;  // all-zero
  EXPECT_FALSE(plan.enabled());
  const sim::FaultInjector inj(plan);
  EXPECT_EQ(inj.compile_fault("sha", {"gvn"}).kind, sim::FaultKind::None);
  EXPECT_EQ(inj.runtime_fault(42).kind, sim::FaultKind::None);
  EXPECT_FALSE(inj.miscompiles(42, 0));
  EXPECT_EQ(inj.perturb(123.5, 42, 0), 123.5);

  // The evaluator refuses to attach an inert injector at all.
  sim::ProgramEvaluator ev(bench_suite::make_program("security_sha"),
                           sim::arm_a57_model());
  ev.set_fault_injector(&inj);
  EXPECT_EQ(ev.fault_injector(), nullptr);
}

TEST(Robust, NoInjectorMatchesPlainEvaluatorBitForBit) {
  const sim::SequenceAssignment a{{"sha", {"mem2reg", "gvn", "dce"}}};
  sim::ProgramEvaluator plain(bench_suite::make_program("security_sha"),
                              sim::arm_a57_model());
  const auto expect = plain.evaluate(a);

  sim::ProgramEvaluator base(bench_suite::make_program("security_sha"),
                             sim::arm_a57_model());
  sim::RobustEvaluator robust(base);
  const auto got = robust.evaluate(a);
  ASSERT_TRUE(expect.valid && got.valid);
  EXPECT_EQ(expect.cycles, got.cycles);
  EXPECT_EQ(expect.speedup, got.speedup);
  EXPECT_EQ(expect.binary_hash, got.binary_hash);
  EXPECT_EQ(expect.code_size, got.code_size);
  EXPECT_EQ(robust.robust_stats().valid, 1);
}

TEST(Robust, RetriesRecoverTransientCrashes) {
  sim::FaultPlan plan;
  plan.seed = 7;
  plan.transient_crash_rate = 0.6;
  // Mirror the injector to find a probe that crashes first but recovers
  // within the retry budget (deterministic given the plan seed).
  sim::SequenceAssignment victim;
  for (const auto& seq : probe_sequences()) {
    const sim::FaultInjector probe(plan);
    if (probe.compile_fault("sha", seq).kind != sim::FaultKind::Crash)
      continue;
    for (int attempt = 1; attempt <= 4; ++attempt) {
      if (probe.compile_fault("sha", seq).kind == sim::FaultKind::None) {
        victim = {{"sha", seq}};
        break;
      }
    }
    if (!victim.empty()) break;
  }
  ASSERT_FALSE(victim.empty());

  sim::ProgramEvaluator base(bench_suite::make_program("security_sha"),
                             sim::arm_a57_model());
  const sim::FaultInjector inj(plan);
  sim::RobustConfig cfg;
  cfg.max_retries = 4;
  sim::RobustEvaluator robust(base, cfg, &inj);
  const auto out = robust.evaluate(victim);
  EXPECT_TRUE(out.valid) << out.why_invalid;
  EXPECT_GE(out.attempts, 2);
  EXPECT_GE(robust.robust_stats().retries, 1);
  EXPECT_EQ(robust.robust_stats().valid, 1);
}

TEST(Robust, QuarantineRemembersDeterministicFailures) {
  sim::FaultPlan plan;
  plan.deterministic_crash_rate = 1.0;
  const sim::FaultInjector inj(plan);
  sim::ProgramEvaluator base(bench_suite::make_program("security_sha"),
                             sim::arm_a57_model());
  sim::RobustEvaluator robust(base, {}, &inj);
  // One pass = one prefix carrying the full crash rate: guaranteed hit.
  const sim::SequenceAssignment a{{"sha", {"gvn"}}};

  const auto first = robust.evaluate(a);
  EXPECT_FALSE(first.valid);
  EXPECT_EQ(first.failure, sim::FailureKind::Crash);
  EXPECT_TRUE(robust.is_quarantined(a));
  EXPECT_EQ(robust.quarantine_size(), 1u);

  // The second proposal is refused without paying for an attempt.
  const auto again = robust.evaluate(a);
  EXPECT_FALSE(again.valid);
  EXPECT_TRUE(again.cache_hit);
  EXPECT_EQ(again.attempts, 0);
  EXPECT_NE(again.why_invalid.find("quarantined"), std::string::npos);
  EXPECT_EQ(robust.robust_stats().quarantine_hits, 1);

  // A different assignment is still admissible.
  EXPECT_FALSE(robust.is_quarantined({{"sha", {"mem2reg"}}}));
}

TEST(Robust, InjectedHangsAreClassifiedAndQuarantined) {
  sim::FaultPlan plan;
  plan.hang_rate = 1.0;  // every binary blows the instruction budget
  const sim::FaultInjector inj(plan);
  sim::ProgramEvaluator base(bench_suite::make_program("security_sha"),
                             sim::arm_a57_model());
  sim::RobustEvaluator robust(base, {}, &inj);
  const sim::SequenceAssignment a{{"sha", {"mem2reg"}}};
  const auto out = robust.evaluate(a);
  EXPECT_FALSE(out.valid);
  EXPECT_EQ(out.failure, sim::FailureKind::Hang);
  EXPECT_NE(out.why_invalid.find("instruction budget"), std::string::npos);
  EXPECT_TRUE(robust.is_quarantined(a));
  EXPECT_EQ(robust.robust_stats().failures.at("hang"), 1);
}

TEST(Robust, ReplicatedMeasurementTracksTheTruth) {
  const sim::SequenceAssignment a{{"sha", {"mem2reg", "gvn", "dce"}}};
  sim::ProgramEvaluator clean(bench_suite::make_program("security_sha"),
                              sim::arm_a57_model());
  const double truth = clean.evaluate(a).cycles;

  sim::FaultPlan plan;
  plan.seed = 11;
  plan.noise_sigma = 0.05;
  const sim::FaultInjector inj(plan);
  sim::ProgramEvaluator base(bench_suite::make_program("security_sha"),
                             sim::arm_a57_model());
  sim::RobustConfig cfg;
  cfg.replicates = 5;
  sim::RobustEvaluator robust(base, cfg, &inj);
  const auto out = robust.evaluate(a);
  ASSERT_TRUE(out.valid) << out.why_invalid;
  // The median of 5 replicates at sigma=0.05 lands close to the truth.
  EXPECT_NEAR(out.cycles / truth, 1.0, 0.1);
  EXPECT_NE(out.cycles, truth);  // but it IS a noisy estimate
}

TEST(Robust, HopelesslyNoisyMeasurementsAreRejectedNotQuarantined) {
  sim::FaultPlan plan;
  plan.seed = 3;
  plan.noise_sigma = 1.5;  // spread far beyond any acceptance threshold
  const sim::FaultInjector inj(plan);
  sim::ProgramEvaluator base(bench_suite::make_program("security_sha"),
                             sim::arm_a57_model());
  sim::RobustConfig cfg;
  cfg.replicates = 3;
  cfg.max_extra_replicates = 0;
  cfg.noisy_reject_mad = 0.02;
  sim::RobustEvaluator robust(base, cfg, &inj);
  const sim::SequenceAssignment a{{"sha", {"mem2reg"}}};
  const auto out = robust.evaluate(a);
  EXPECT_FALSE(out.valid);
  EXPECT_EQ(out.failure, sim::FailureKind::NoisyRejected);
  EXPECT_TRUE(out.transient);
  // Noise is a property of the measurement, not the sequence: the
  // assignment stays admissible for a later, luckier attempt.
  EXPECT_FALSE(robust.is_quarantined(a));
  EXPECT_EQ(robust.robust_stats().failures.at("noisy-rejected"), 1);
}

// ---- quarantine LRU bound (PR 4) ------------------------------------------

TEST(Quarantine, CapEvictsLeastRecentlyUsed) {
  sim::QuarantineSet q(3);
  q.insert(1, sim::FailureKind::Crash);
  q.insert(2, sim::FailureKind::Hang);
  q.insert(3, sim::FailureKind::Miscompile);
  EXPECT_EQ(q.size(), 3u);
  q.insert(4, sim::FailureKind::WorkerCrash);  // evicts 1 (oldest)
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.evictions(), 1u);
  EXPECT_EQ(q.peek(1), nullptr);
  ASSERT_NE(q.peek(2), nullptr);
  ASSERT_NE(q.peek(4), nullptr);
  EXPECT_EQ(*q.peek(4), sim::FailureKind::WorkerCrash);
}

TEST(Quarantine, TouchRefreshesRecencyButPeekDoesNot) {
  sim::QuarantineSet q(2);
  q.insert(1, sim::FailureKind::Crash);
  q.insert(2, sim::FailureKind::Crash);
  // peek(1) must NOT protect 1: candidate generators only peek.
  EXPECT_NE(q.peek(1), nullptr);
  q.insert(3, sim::FailureKind::Crash);  // evicts 1 despite the peek
  EXPECT_EQ(q.peek(1), nullptr);
  // touch(2) refreshes: 3 becomes the LRU victim.
  EXPECT_NE(q.touch(2), nullptr);
  q.insert(4, sim::FailureKind::Crash);
  EXPECT_EQ(q.peek(3), nullptr);
  EXPECT_NE(q.peek(2), nullptr);
}

TEST(Quarantine, ReinsertRefreshesInsteadOfDuplicating) {
  sim::QuarantineSet q(2);
  q.insert(1, sim::FailureKind::Crash);
  q.insert(2, sim::FailureKind::Crash);
  q.insert(1, sim::FailureKind::Hang);  // refresh + overwrite kind
  EXPECT_EQ(q.size(), 2u);
  ASSERT_NE(q.peek(1), nullptr);
  EXPECT_EQ(*q.peek(1), sim::FailureKind::Hang);
  q.insert(3, sim::FailureKind::Crash);  // evicts 2 (1 was refreshed)
  EXPECT_EQ(q.peek(2), nullptr);
  EXPECT_NE(q.peek(1), nullptr);
}

TEST(Quarantine, SaveLoadPreservesRecencyOrderAndCounters) {
  sim::QuarantineSet q(4);
  for (std::uint64_t s = 1; s <= 4; ++s)
    q.insert(s, sim::FailureKind::Crash);
  q.touch(1);  // order (MRU->LRU): 1 4 3 2
  persist::Writer w;
  q.save(w);
  const std::string bytes = w.take();

  sim::QuarantineSet back(4);
  persist::Reader r(bytes);
  back.load(r);
  EXPECT_EQ(back.size(), 4u);
  back.insert(5, sim::FailureKind::Crash);  // must evict 2, the LRU
  EXPECT_EQ(back.peek(2), nullptr);
  EXPECT_NE(back.peek(1), nullptr);
  EXPECT_NE(back.peek(3), nullptr);
}

TEST(Quarantine, LoadAppliesTheCurrentSmallerCap) {
  sim::QuarantineSet q(0);  // unbounded writer
  for (std::uint64_t s = 1; s <= 6; ++s)
    q.insert(s, sim::FailureKind::Crash);
  persist::Writer w;
  q.save(w);
  const std::string bytes = w.take();

  sim::QuarantineSet back(3);  // restored under a tighter budget
  persist::Reader r(bytes);
  back.load(r);
  EXPECT_EQ(back.size(), 3u);
  // The three most recent survive the shrink.
  EXPECT_NE(back.peek(6), nullptr);
  EXPECT_NE(back.peek(5), nullptr);
  EXPECT_NE(back.peek(4), nullptr);
  EXPECT_EQ(back.peek(3), nullptr);
}

TEST(Robust, QuarantineCapIsHonouredEndToEnd) {
  sim::FaultPlan plan;
  plan.seed = 21;
  plan.deterministic_crash_rate = 1.0;  // every candidate quarantines
  const sim::FaultInjector inj(plan);
  sim::ProgramEvaluator base(bench_suite::make_program("security_sha"),
                             sim::arm_a57_model());
  sim::RobustConfig cfg;
  cfg.quarantine_cap = 4;
  sim::RobustEvaluator robust(base, cfg, &inj);
  const auto& space = passes::PassRegistry::instance().pass_names();
  for (int i = 0; i < 10; ++i) {
    sim::SequenceAssignment a{
        {"sha", {"mem2reg", space[static_cast<std::size_t>(i) % space.size()]}}};
    robust.evaluate(a);
  }
  EXPECT_LE(robust.quarantine_size(), 4u);
  EXPECT_GT(robust.quarantine_evictions(), 0u);
}
