// Unit and integration tests for the GP surrogate and the AIBO loop.

#include <gtest/gtest.h>

#include <cmath>

#include "aibo/aibo.hpp"
#include "gp/gp.hpp"
#include "support/rng.hpp"
#include "synth/functions.hpp"

using namespace citroen;

TEST(GaussianProcess, InterpolatesSmoothFunction) {
  Rng rng(1);
  std::vector<Vec> xs;
  Vec ys;
  for (int i = 0; i < 40; ++i) {
    Vec x = {rng.uniform(), rng.uniform()};
    ys.push_back(std::sin(3.0 * x[0]) + x[1] * x[1]);
    xs.push_back(std::move(x));
  }
  gp::GaussianProcess model(2);
  model.fit(xs, ys);
  double max_err = 0.0;
  for (int i = 0; i < 20; ++i) {
    Vec x = {rng.uniform(0.1, 0.9), rng.uniform(0.1, 0.9)};
    const double truth = std::sin(3.0 * x[0]) + x[1] * x[1];
    max_err = std::max(max_err, std::abs(model.predict(x).mean - truth));
  }
  EXPECT_LT(max_err, 0.25);
}

TEST(GaussianProcess, VarianceShrinksAtData) {
  Rng rng(2);
  std::vector<Vec> xs;
  Vec ys;
  for (int i = 0; i < 20; ++i) {
    Vec x = {rng.uniform()};
    ys.push_back(x[0]);
    xs.push_back(std::move(x));
  }
  gp::GaussianProcess model(1);
  model.fit(xs, ys);
  const double var_at_data = model.predict(xs[0]).var;
  const double var_far = model.predict({-5.0}).var;
  EXPECT_LT(var_at_data, var_far);
}

TEST(GaussianProcess, GradientMatchesFiniteDifference) {
  Rng rng(3);
  std::vector<Vec> xs;
  Vec ys;
  for (int i = 0; i < 25; ++i) {
    Vec x = {rng.uniform(), rng.uniform(), rng.uniform()};
    ys.push_back(x[0] * x[1] - x[2]);
    xs.push_back(std::move(x));
  }
  gp::GaussianProcess model(3);
  model.fit(xs, ys);
  const Vec x0 = {0.3, 0.6, 0.4};
  const auto g = model.predict_with_grad(x0);
  const double h = 1e-6;
  for (std::size_t d = 0; d < 3; ++d) {
    Vec xp = x0, xm = x0;
    xp[d] += h;
    xm[d] -= h;
    const double fd_mean =
        (model.predict(xp).mean - model.predict(xm).mean) / (2 * h);
    const double fd_var =
        (model.predict(xp).var - model.predict(xm).var) / (2 * h);
    EXPECT_NEAR(g.dmean[d], fd_mean, 1e-4 + 1e-3 * std::abs(fd_mean));
    EXPECT_NEAR(g.dvar[d], fd_var, 1e-4 + 1e-3 * std::abs(fd_var));
  }
}

TEST(Aibo, ImprovesOverInitialDesignOnAckley) {
  auto task = synth::make_task("ackley20");
  aibo::AiboConfig cfg;
  cfg.init_samples = 15;
  cfg.k = 40;
  cfg.gp.fit_steps = 10;
  aibo::Aibo bo(task.box, cfg, 11);
  const auto r = bo.run(task.f, 60);
  ASSERT_EQ(r.ys.size(), 60u);
  const double init_best = r.best_curve[14];
  EXPECT_LT(r.best(), init_best);
}

TEST(Aibo, BeatsPureRandomSearchOnAckley) {
  auto task = synth::make_task("ackley20");
  aibo::AiboConfig cfg;
  cfg.init_samples = 15;
  cfg.k = 40;
  cfg.gp.fit_steps = 10;
  aibo::Aibo bo(task.box, cfg, 5);
  const auto r = bo.run(task.f, 70);

  Rng rng(5);
  double random_best = 1e300;
  for (int i = 0; i < 70; ++i)
    random_best = std::min(random_best, task.f(task.box.sample(rng)));
  EXPECT_LT(r.best(), random_best);
}

TEST(Aibo, DiagnosticsArePopulated) {
  auto task = synth::make_task("rastrigin20");
  aibo::AiboConfig cfg;
  cfg.init_samples = 10;
  cfg.k = 30;
  cfg.gp.fit_steps = 5;
  aibo::Aibo bo(task.box, cfg, 3);
  const auto r = bo.run(task.f, 30);
  ASSERT_EQ(r.member_names.size(), 3u);
  int total_wins = 0;
  for (int w : r.af_wins) total_wins += w;
  EXPECT_EQ(total_wins, 20);  // one winner per post-init iteration
  EXPECT_FALSE(r.diags.empty());
  EXPECT_GT(r.model_seconds, 0.0);
}

TEST(Aibo, BatchModeProducesRequestedEvaluations) {
  auto task = synth::make_task("griewank20");
  aibo::AiboConfig cfg;
  cfg.init_samples = 10;
  cfg.k = 20;
  cfg.batch_size = 5;
  cfg.gp.fit_steps = 5;
  aibo::Aibo bo(task.box, cfg, 9);
  const auto r = bo.run(task.f, 40);
  EXPECT_EQ(r.ys.size(), 40u);
}
