// Tests for the crash-safety layer (src/persist): codec round trips,
// journal recovery under every corruption mode the design promises to
// survive (torn tail, bit flip, zero-length, garbage header), atomic
// checkpoints, RunSession verify/diverge semantics, and bit-exact
// serialization of the stateful components (RNG, GP, evaluator caches,
// fault-injector attempts).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_suite/suite.hpp"
#include "gp/gp.hpp"
#include "persist/checkpoint.hpp"
#include "persist/codec.hpp"
#include "persist/journal.hpp"
#include "persist/quarantine.hpp"
#include "persist/journaled_evaluator.hpp"
#include "persist/run_session.hpp"
#include "sim/evaluator.hpp"
#include "sim/faults.hpp"
#include "sim/machine.hpp"
#include "sim/robust_evaluator.hpp"
#include "support/matrix.hpp"
#include "support/rng.hpp"

using namespace citroen;

namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "citroen_persist_" + name;
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(f),
                     std::istreambuf_iterator<char>());
}

std::string journal_with_records(const std::string& path,
                                 const std::vector<std::string>& payloads) {
  std::remove(path.c_str());
  persist::JournalWriter w(path, persist::JournalConfig{}, 0);
  for (const auto& p : payloads) w.append(p);
  w.flush();
  return path;
}

}  // namespace

// ---- codec ----------------------------------------------------------------

TEST(PersistCodec, Crc32KnownValue) {
  // The CRC-32/ISO-HDLC check value from the catalogue of CRC algorithms.
  EXPECT_EQ(persist::crc32(std::string("123456789")), 0xCBF43926u);
}

TEST(PersistCodec, PrimitivesRoundTrip) {
  persist::Writer w;
  w.u8(7);
  w.b(true);
  w.b(false);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i32(-42);
  w.i64(-1234567890123ll);
  w.f64(-0.0);
  w.f64(1.0 / 3.0);
  w.str("hello\0world");
  const std::string blob = w.take();

  persist::Reader r(blob);
  EXPECT_EQ(r.u8(), 7);
  EXPECT_TRUE(r.b());
  EXPECT_FALSE(r.b());
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1234567890123ll);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(r.f64()),
            std::bit_cast<std::uint64_t>(-0.0));
  EXPECT_EQ(r.f64(), 1.0 / 3.0);
  EXPECT_EQ(r.str(), "hello");  // literal truncates at NUL when built
  EXPECT_TRUE(r.at_end());
}

TEST(PersistCodec, TruncatedPayloadThrows) {
  persist::Writer w;
  w.u64(1);
  w.u64(2);
  const std::string blob = w.take();
  const std::string torn = blob.substr(0, blob.size() - 3);
  persist::Reader r(torn);
  EXPECT_EQ(r.u64(), 1u);
  EXPECT_THROW(r.u64(), std::runtime_error);
}

TEST(PersistCodec, ContainersAndMatrixRoundTrip) {
  persist::Writer w;
  const Vec v = {1.5, -2.25, 1e-300};
  Matrix m(2, 3);
  m(0, 0) = 1.0;
  m(1, 2) = -7.5;
  const std::vector<std::string> names = {"a", "", "long name with spaces"};
  const std::map<std::string, int> counts = {{"x", 1}, {"y", -2}};
  persist::put(w, v);
  persist::put(w, m);
  persist::put(w, names);
  persist::put(w, counts);

  const std::string blob = w.take();
  persist::Reader r(blob);
  Vec v2;
  Matrix m2;
  std::vector<std::string> names2;
  std::map<std::string, int> counts2;
  persist::get(r, v2);
  persist::get(r, m2);
  persist::get(r, names2);
  persist::get(r, counts2);
  EXPECT_EQ(v2, v);
  EXPECT_EQ(m2.rows(), 2u);
  EXPECT_EQ(m2.cols(), 3u);
  EXPECT_EQ(m2(0, 0), 1.0);
  EXPECT_EQ(m2(1, 2), -7.5);
  EXPECT_EQ(names2, names);
  EXPECT_EQ(counts2, counts);
  EXPECT_TRUE(r.at_end());
}

TEST(PersistCodec, CompactAssignmentRoundTrip) {
  const auto& names = passes::PassRegistry::instance().pass_names();
  sim::SequenceAssignment a;
  a["mod_a"] = {names.front(), names.back(), names[names.size() / 2]};
  a["mod_b"] = {};
  a["mod_c"] = {names.front(), "not-a-registered-pass", names[1]};

  persist::Writer w;
  persist::put_compact_assignment(w, a);
  const std::string blob = w.take();
  // The dictionary encoding is the point: registered names cost two bytes,
  // not a length-prefixed string.
  persist::Writer plain;
  sim::put(plain, a);
  EXPECT_LT(blob.size(), plain.size());

  persist::Reader r(blob);
  sim::SequenceAssignment b;
  persist::get_compact_assignment(r, b);
  EXPECT_TRUE(r.at_end());
  ASSERT_EQ(b.size(), a.size());
  for (const auto& [module, seq] : a) EXPECT_EQ(b[module], seq);
}

TEST(PersistCodec, CompactAssignmentRejectsBadPassId) {
  persist::Writer w;
  w.u64(1);
  w.str("m");
  w.u32(1);
  w.u8(0xFE);  // id 0xFFFE: in-range frame, out-of-range registry id
  w.u8(0xFF);
  const std::string blob = w.take();
  persist::Reader r(blob);
  sim::SequenceAssignment a;
  EXPECT_THROW(persist::get_compact_assignment(r, a), std::runtime_error);
}

TEST(PersistCodec, RngRoundTripIncludesSpareDeviate) {
  Rng rng(12345);
  rng.normal();  // leaves a cached Marsaglia spare with ~50% probability;
  rng.uniform();
  rng.normal();  // draw a couple to hit both parities across runs
  persist::Writer w;
  persist::put(w, rng);
  const std::string blob = w.take();
  persist::Reader r(blob);
  Rng copy(1);
  persist::get(r, copy);
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(rng.normal()),
              std::bit_cast<std::uint64_t>(copy.normal()));
    ASSERT_EQ(rng.uniform_int(0, 1000), copy.uniform_int(0, 1000));
  }
}

// ---- journal --------------------------------------------------------------

TEST(PersistJournal, AppendAndRecover) {
  const std::string path = temp_path("jrn_basic");
  journal_with_records(path, {"alpha", "", "gamma with bytes \x01\x02"});
  const auto rec = persist::recover_journal(path);
  ASSERT_EQ(rec.records.size(), 3u);
  EXPECT_EQ(rec.records[0], "alpha");
  EXPECT_EQ(rec.records[1], "");
  EXPECT_EQ(rec.records[2], "gamma with bytes \x01\x02");
  EXPECT_FALSE(rec.truncated);
  EXPECT_EQ(rec.valid_bytes, rec.file_bytes);
}

TEST(PersistJournal, TruncatedTailRecoversPrefix) {
  const std::string path = temp_path("jrn_torn");
  journal_with_records(path, {"first", "second", "third"});
  const std::string bytes = read_file(path);
  // Chop mid-way through the last record's payload: a torn append.
  write_file(path, bytes.substr(0, bytes.size() - 2));
  const auto rec = persist::recover_journal(path);
  ASSERT_EQ(rec.records.size(), 2u);
  EXPECT_EQ(rec.records[1], "second");
  EXPECT_TRUE(rec.truncated);
  EXPECT_NE(rec.note.find(std::to_string(rec.valid_bytes)),
            std::string::npos)
      << "recovery note must name the byte offset: " << rec.note;
}

TEST(PersistJournal, BitFlippedPayloadRecoversPrefix) {
  const std::string path = temp_path("jrn_flip");
  journal_with_records(path, {"aaaaaaaa", "bbbbbbbb", "cccccccc"});
  std::string bytes = read_file(path);
  // Flip one bit inside the second record's payload; its CRC must fail.
  const std::size_t second_payload =
      persist::kJournalHeaderBytes + (8 + 8) + 8 + 2;
  bytes[second_payload] = static_cast<char>(bytes[second_payload] ^ 0x10);
  write_file(path, bytes);
  const auto rec = persist::recover_journal(path);
  ASSERT_EQ(rec.records.size(), 1u);
  EXPECT_EQ(rec.records[0], "aaaaaaaa");
  EXPECT_TRUE(rec.truncated);
  EXPECT_FALSE(rec.note.empty());
}

TEST(PersistJournal, ZeroLengthAndMissingAndGarbage) {
  const std::string empty = temp_path("jrn_empty");
  write_file(empty, "");
  auto rec = persist::recover_journal(empty);
  EXPECT_TRUE(rec.records.empty());

  rec = persist::recover_journal(temp_path("jrn_never_created"));
  EXPECT_TRUE(rec.records.empty());

  const std::string garbage = temp_path("jrn_garbage");
  write_file(garbage, "this is not a journal at all, not even close");
  rec = persist::recover_journal(garbage);
  EXPECT_TRUE(rec.records.empty());
  EXPECT_FALSE(rec.note.empty());
}

TEST(PersistJournal, WriterResumesAfterTruncatedTail) {
  const std::string path = temp_path("jrn_resume");
  journal_with_records(path, {"one", "two"});
  std::string bytes = read_file(path);
  write_file(path, bytes + "torn garbage tail");
  auto rec = persist::recover_journal(path);
  ASSERT_EQ(rec.records.size(), 2u);
  ASSERT_TRUE(rec.truncated);
  {
    persist::JournalWriter w(path, persist::JournalConfig{}, rec.valid_bytes);
    w.append("three");
    w.flush();
  }
  rec = persist::recover_journal(path);
  ASSERT_EQ(rec.records.size(), 3u);
  EXPECT_EQ(rec.records[2], "three");
  EXPECT_FALSE(rec.truncated);
}

TEST(PersistJournal, TruncationBetweenCrcAndNextHeaderRecoversPrefix) {
  // The torn frame carries its complete [len][crc] header but zero
  // payload bytes — truncation exactly between the CRC word and where
  // the payload (and eventually the next header) would begin.
  const std::string path = temp_path("jrn_hdr_only");
  journal_with_records(path, {"first", "second", "third"});
  const std::string bytes = read_file(path);
  const std::size_t two_records =
      persist::kJournalHeaderBytes + (8 + 5) + (8 + 6);  // "first","second"
  write_file(path, bytes.substr(0, two_records + 8));  // + bare header
  const auto rec = persist::recover_journal(path);
  ASSERT_EQ(rec.records.size(), 2u);
  EXPECT_EQ(rec.records[1], "second");
  EXPECT_TRUE(rec.truncated);
  EXPECT_EQ(rec.valid_bytes, two_records);
}

TEST(PersistJournal, TruncationAtExactRecordBoundaryIsClean) {
  // Chopping precisely after a record's last payload byte leaves a valid
  // shorter journal: nothing torn, nothing to truncate.
  const std::string path = temp_path("jrn_boundary");
  journal_with_records(path, {"first", "second", "third"});
  const std::string bytes = read_file(path);
  const std::size_t two_records =
      persist::kJournalHeaderBytes + (8 + 5) + (8 + 6);
  write_file(path, bytes.substr(0, two_records));
  const auto rec = persist::recover_journal(path);
  ASSERT_EQ(rec.records.size(), 2u);
  EXPECT_FALSE(rec.truncated);
  EXPECT_EQ(rec.valid_bytes, rec.file_bytes);
}

TEST(PersistJournal, MagicOnlyFileIsCleanAndEmpty) {
  // A writer that crashed before its first append leaves just the magic:
  // a legitimate zero-record journal, not corruption.
  const std::string path = temp_path("jrn_magic_only");
  std::remove(path.c_str());
  {
    persist::JournalWriter w(path, persist::JournalConfig{}, 0);
    w.flush();
  }
  const auto rec = persist::recover_journal(path);
  EXPECT_TRUE(rec.records.empty());
  EXPECT_FALSE(rec.truncated);
  EXPECT_EQ(rec.file_bytes, rec.valid_bytes);
  EXPECT_EQ(rec.file_bytes,
            static_cast<std::uint64_t>(persist::kJournalHeaderBytes));
}

// ---- quarantine -----------------------------------------------------------

TEST(PersistQuarantine, RenamesToDotBad) {
  const std::string path = temp_path("quar_basic");
  for (int i = 0; i < 20; ++i)
    std::remove((path + ".bad" + (i ? "." + std::to_string(i) : "")).c_str());
  write_file(path, "corrupt bytes");
  const std::string dest = persist::quarantine_file(path);
  EXPECT_EQ(dest, path + ".bad");
  EXPECT_EQ(read_file(dest), "corrupt bytes");
  std::ifstream original(path);
  EXPECT_FALSE(original.good()) << "original must be gone after quarantine";
}

TEST(PersistQuarantine, CounterAvoidsClobberingPriorQuarantine) {
  const std::string path = temp_path("quar_counter");
  for (int i = 0; i < 20; ++i)
    std::remove((path + ".bad" + (i ? "." + std::to_string(i) : "")).c_str());
  write_file(path, "first corruption");
  ASSERT_EQ(persist::quarantine_file(path), path + ".bad");
  write_file(path, "second corruption");
  EXPECT_EQ(persist::quarantine_file(path), path + ".bad.1");
  EXPECT_EQ(read_file(path + ".bad"), "first corruption");
  EXPECT_EQ(read_file(path + ".bad.1"), "second corruption");
}

// ---- checkpoint -----------------------------------------------------------

TEST(PersistCheckpoint, RoundTripAndCorruptionRejected) {
  const std::string path = temp_path("ckpt");
  const std::string payload(1000, '\x5A');
  persist::write_checkpoint(path, payload);
  auto got = persist::read_checkpoint(path);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);

  std::string bytes = read_file(path);
  bytes[bytes.size() / 2] ^= 0x01;
  write_file(path, bytes);
  std::string note;
  got = persist::read_checkpoint(path, &note);
  EXPECT_FALSE(got.has_value());
  EXPECT_FALSE(note.empty());

  EXPECT_FALSE(persist::read_checkpoint(temp_path("ckpt_missing"))
                   .has_value());
}

// ---- run session ----------------------------------------------------------

TEST(PersistRunSession, FreshRunThenResumeVerifiesTail) {
  const std::string dir = temp_path("sess_verify");
  persist::SessionConfig cfg;
  cfg.dir = dir;
  {
    persist::RunSession s(cfg, "run");
    EXPECT_FALSE(s.complete());
    EXPECT_EQ(s.next_index(), 0u);
    s.push("r0");
    s.push("r1");
    s.push("r2");
    s.flush();
  }
  cfg.resume = true;
  persist::RunSession s(cfg, "run");
  ASSERT_EQ(s.num_records(), 3u);
  EXPECT_FALSE(s.has_state());
  // Replay from index 0: identical pushes verify silently.
  s.push("r0");
  s.push("r1");
  s.push("r2");
  s.push("r3");  // past the tail: append mode
  EXPECT_EQ(s.next_index(), 4u);
}

TEST(PersistRunSession, DivergenceTruncatesStaleTail) {
  const std::string dir = temp_path("sess_diverge");
  persist::SessionConfig cfg;
  cfg.dir = dir;
  {
    persist::RunSession s(cfg, "run");
    s.push("same");
    s.push("old-a");
    s.push("old-b");
    s.flush();
  }
  cfg.resume = true;
  {
    persist::RunSession s(cfg, "run");
    s.push("same");
    s.push("NEW");  // diverges: warn, truncate, keep the recomputed record
    s.push("after");
    s.flush();
  }
  persist::RunSession s(cfg, "run");
  ASSERT_EQ(s.num_records(), 3u);
  EXPECT_EQ(s.record(1), "NEW");
  EXPECT_EQ(s.record(2), "after");
}

TEST(PersistRunSession, CompleteCheckpointShortCircuitsResume) {
  const std::string dir = temp_path("sess_complete");
  persist::SessionConfig cfg;
  cfg.dir = dir;
  {
    persist::RunSession s(cfg, "run");
    s.push("r0");
    s.save_checkpoint("final-state", /*complete=*/true);
  }
  cfg.resume = true;
  persist::RunSession s(cfg, "run");
  EXPECT_TRUE(s.complete());
  EXPECT_EQ(s.state(), "final-state");
}

TEST(PersistRunSession, CheckpointCursorSkipsFoldedRecords) {
  const std::string dir = temp_path("sess_cursor");
  persist::SessionConfig cfg;
  cfg.dir = dir;
  cfg.checkpoint_every = 2;
  {
    persist::RunSession s(cfg, "run");
    s.push("r0");
    s.push("r1");
    EXPECT_TRUE(s.checkpoint_due());
    s.save_checkpoint("state@2", /*complete=*/false);
    EXPECT_FALSE(s.checkpoint_due());
    s.push("r2");
    s.flush();
  }
  cfg.resume = true;
  persist::RunSession s(cfg, "run");
  ASSERT_TRUE(s.has_state());
  EXPECT_EQ(s.state(), "state@2");
  EXPECT_EQ(s.state_records(), 2u);
  // The cursor starts at K: the next push verifies against record 2.
  EXPECT_EQ(s.next_index(), 2u);
  s.push("r2");
  EXPECT_EQ(s.next_index(), 3u);
}

TEST(PersistRunSession, FreshStartDiscardsPriorState) {
  const std::string dir = temp_path("sess_fresh");
  persist::SessionConfig cfg;
  cfg.dir = dir;
  {
    persist::RunSession s(cfg, "run");
    s.push("old");
    s.save_checkpoint("old-state", /*complete=*/true);
  }
  // resume=false: start over.
  persist::RunSession s(cfg, "run");
  EXPECT_FALSE(s.complete());
  EXPECT_FALSE(s.has_state());
  EXPECT_EQ(s.num_records(), 0u);
}

// ---- stateful components --------------------------------------------------

TEST(PersistState, GaussianProcessRoundTripIsBitExact) {
  Rng rng(99);
  gp::GpConfig cfg;
  cfg.fit_steps = 10;
  gp::GaussianProcess a(3, cfg);
  std::vector<Vec> xs;
  Vec ys;
  for (int i = 0; i < 12; ++i) {
    Vec x(3);
    for (auto& v : x) v = rng.uniform();
    ys.push_back(std::sin(3.0 * x[0]) + 0.1 * x[1] - x[2] * x[2]);
    xs.push_back(std::move(x));
  }
  a.fit(xs, ys);
  // Extend incrementally so the serialized factor is the rank-one-updated
  // one (which differs from a fresh refit in the last ulps).
  a.set_fit_hypers(false);
  xs.push_back(Vec{0.25, 0.5, 0.75});
  ys.push_back(0.123);
  a.fit(xs, ys);
  ASSERT_GE(a.num_incremental_fits(), 1);

  persist::Writer w;
  a.save_state(w);
  gp::GaussianProcess b(3, cfg);
  const std::string blob = w.take();
  persist::Reader r(blob);
  b.load_state(r);

  Rng probe(7);
  for (int i = 0; i < 20; ++i) {
    Vec x(3);
    for (auto& v : x) v = probe.uniform();
    const auto pa = a.predict(x);
    const auto pb = b.predict(x);
    ASSERT_EQ(std::bit_cast<std::uint64_t>(pa.mean),
              std::bit_cast<std::uint64_t>(pb.mean));
    ASSERT_EQ(std::bit_cast<std::uint64_t>(pa.var),
              std::bit_cast<std::uint64_t>(pb.var));
  }
  // Continued incremental fits stay in lockstep too.
  xs.push_back(Vec{0.9, 0.1, 0.4});
  ys.push_back(-0.5);
  a.fit(xs, ys);
  b.fit(xs, ys);
  const auto pa = a.predict(Vec{0.3, 0.3, 0.3});
  const auto pb = b.predict(Vec{0.3, 0.3, 0.3});
  EXPECT_EQ(std::bit_cast<std::uint64_t>(pa.mean),
            std::bit_cast<std::uint64_t>(pb.mean));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(pa.var),
            std::bit_cast<std::uint64_t>(pb.var));
}

TEST(PersistState, GaussianProcessRejectsWrongDimension) {
  gp::GaussianProcess a(3);
  persist::Writer w;
  a.save_state(w);
  gp::GaussianProcess b(4);
  const std::string blob = w.take();
  persist::Reader r(blob);
  EXPECT_THROW(b.load_state(r), std::runtime_error);
}

namespace {

sim::SequenceAssignment random_assignment(const sim::ProgramEvaluator& eval,
                                          Rng& rng) {
  static const std::vector<std::string> pool = {
      "mem2reg", "gvn", "dce", "instcombine", "licm", "sroa"};
  sim::SequenceAssignment a;
  std::vector<std::string> seq;
  for (int i = 0; i < 5; ++i)
    seq.push_back(pool[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))]);
  a[eval.hot_modules().front().first] = seq;
  return a;
}

}  // namespace

TEST(PersistState, EvaluatorRuntimeStateRoundTrip) {
  sim::ProgramEvaluator a(bench_suite::make_program("security_sha"),
                          sim::machine_by_name("arm"));
  sim::ProgramEvaluator b(bench_suite::make_program("security_sha"),
                          sim::machine_by_name("arm"));
  Rng rng(5);
  std::vector<sim::SequenceAssignment> seen;
  for (int i = 0; i < 6; ++i) {
    seen.push_back(random_assignment(a, rng));
    a.evaluate(seen.back());
  }
  persist::Writer w;
  a.save_runtime_state(w);
  const std::string blob = w.take();
  persist::Reader r(blob);
  b.load_runtime_state(r);
  EXPECT_EQ(b.num_measurements(), a.num_measurements());
  // Re-evaluating a seen assignment must hit the identical-binary cache in
  // both, producing byte-identical outcomes (incl. the cache_hit flag).
  for (const auto& s : seen) {
    const auto oa = a.evaluate(s);
    const auto ob = b.evaluate(s);
    EXPECT_TRUE(ob.cache_hit);
    persist::Writer wa, wb;
    sim::put(wa, oa);
    sim::put(wb, ob);
    EXPECT_EQ(wa.take(), wb.take());
  }
}

TEST(PersistState, RobustEvaluatorAndInjectorRoundTrip) {
  sim::FaultPlan plan;
  plan.seed = 77;
  plan.transient_crash_rate = 0.25;
  plan.deterministic_crash_rate = 0.25;
  plan.noise_sigma = 0.05;

  sim::ProgramEvaluator base_a(bench_suite::make_program("security_sha"),
                               sim::machine_by_name("arm"));
  sim::FaultInjector inj_a(plan);
  sim::RobustEvaluator a(base_a, sim::RobustConfig{}, &inj_a);

  Rng rng(11);
  std::vector<sim::SequenceAssignment> seqs;
  for (int i = 0; i < 10; ++i) {
    seqs.push_back(random_assignment(base_a, rng));
    a.evaluate(seqs.back());
  }

  persist::Writer w;
  a.save_state(w);
  base_a.save_runtime_state(w);
  inj_a.save_attempts(w);
  const std::string blob = w.take();

  sim::ProgramEvaluator base_b(bench_suite::make_program("security_sha"),
                               sim::machine_by_name("arm"));
  sim::FaultInjector inj_b(plan);
  sim::RobustEvaluator b(base_b, sim::RobustConfig{}, &inj_b);
  persist::Reader r(blob);
  b.load_state(r);
  base_b.load_runtime_state(r);
  inj_b.load_attempts(r);

  // Quarantine decisions and continued evaluation streams must agree.
  Rng rng_a(13), rng_b(13);
  for (int i = 0; i < 8; ++i) {
    const auto sa = random_assignment(base_a, rng_a);
    const auto sb = random_assignment(base_b, rng_b);
    EXPECT_EQ(a.is_quarantined(sa), b.is_quarantined(sb));
    const auto oa = a.evaluate(sa);
    const auto ob = b.evaluate(sb);
    persist::Writer wa, wb;
    sim::put(wa, oa);
    sim::put(wb, ob);
    ASSERT_EQ(wa.take(), wb.take());
  }
}

// ---- sandbox failure taxonomy in journal records (PR 4) --------------------

TEST(PersistCodec, WorkerFailureKindsRoundTrip) {
  // The journal stores FailureKind as a u8; the sandbox classes appended
  // in PR 4 must survive the trip (and never renumber earlier classes).
  for (const auto kind :
       {sim::FailureKind::WorkerCrash, sim::FailureKind::WorkerTimeout,
        sim::FailureKind::WorkerOOM}) {
    sim::EvalOutcome o;
    o.valid = false;
    o.failure = kind;
    o.why_invalid = "sandbox: worker killed by signal 11 (stage build)";
    o.transient = false;
    o.attempts = 1;
    persist::Writer w;
    sim::put(w, o);
    const std::string bytes = w.take();
    persist::Reader r(bytes);
    sim::EvalOutcome back;
    sim::get(r, back);
    EXPECT_EQ(back.failure, kind);
    EXPECT_EQ(back.why_invalid, o.why_invalid);
    EXPECT_FALSE(back.valid);
  }
  // Pre-sandbox classes keep their wire values (append-only enum).
  EXPECT_EQ(static_cast<int>(sim::FailureKind::Verifier), 5);
  EXPECT_EQ(static_cast<int>(sim::FailureKind::WorkerCrash), 6);
  EXPECT_EQ(static_cast<int>(sim::FailureKind::WorkerTimeout), 7);
  EXPECT_EQ(static_cast<int>(sim::FailureKind::WorkerOOM), 8);
}

TEST(PersistCodec, FaultPlanRealFaultRatesRoundTrip) {
  sim::FaultPlan p;
  p.seed = 77;
  p.transient_crash_rate = 0.125;
  p.segv_rate = 0.25;
  p.oom_rate = 0.0625;
  p.spin_rate = 0.03125;
  persist::Writer w;
  sim::put(w, p);
  const std::string bytes = w.take();
  persist::Reader r(bytes);
  sim::FaultPlan back;
  sim::get(r, back);
  EXPECT_EQ(back.seed, p.seed);
  EXPECT_EQ(back.transient_crash_rate, p.transient_crash_rate);
  EXPECT_EQ(back.segv_rate, p.segv_rate);
  EXPECT_EQ(back.oom_rate, p.oom_rate);
  EXPECT_EQ(back.spin_rate, p.spin_rate);
}
