// Tests for the evaluator service (caching, differential testing,
// accounting) and the CITROEN feature extractors.

#include <gtest/gtest.h>

#include <cmath>

#include "bench_suite/suite.hpp"
#include "citroen/features.hpp"
#include "citroen/tuner.hpp"
#include "ir/builder.hpp"
#include "sim/evaluator.hpp"
#include "sim/faults.hpp"
#include "sim/machine.hpp"
#include "synth/flag_task.hpp"
#include "synth/functions.hpp"

using namespace citroen;

TEST(Evaluator, IdenticalBinariesHitTheCache) {
  sim::ProgramEvaluator ev(bench_suite::make_program("security_sha"),
                           sim::arm_a57_model());
  // Two sequences that normalise to the same module: dce twice vs thrice
  // on an already-clean module produce identical binaries.
  const auto a = ev.evaluate({{"sha", {"dce", "dce"}}});
  const auto b = ev.evaluate({{"sha", {"dce", "dce", "dce"}}});
  ASSERT_TRUE(a.valid && b.valid);
  EXPECT_FALSE(a.cache_hit);
  EXPECT_TRUE(b.cache_hit);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(ev.num_cache_hits(), 1);
}

TEST(Evaluator, MeasurementCountsExcludeCacheHits) {
  sim::ProgramEvaluator ev(bench_suite::make_program("bzip2"),
                           sim::arm_a57_model());
  ev.evaluate({{"huffman", {"mem2reg"}}});
  ev.evaluate({{"huffman", {"mem2reg"}}});
  ev.evaluate({{"huffman", {"mem2reg", "gvn"}}});
  EXPECT_EQ(ev.num_measurements() + ev.num_cache_hits(), 3);
  EXPECT_GE(ev.num_cache_hits(), 1);
}

TEST(Evaluator, UntunedModulesDefaultToO3) {
  sim::ProgramEvaluator ev(bench_suite::make_program("telecom_gsm"),
                           sim::arm_a57_model());
  // Empty assignment = everything at -O3 = the baseline itself.
  const auto out = ev.evaluate({});
  ASSERT_TRUE(out.valid);
  EXPECT_NEAR(out.speedup, 1.0, 1e-12);
}

TEST(Evaluator, EmptySequenceMeansNoOptimisation) {
  sim::ProgramEvaluator ev(bench_suite::make_program("spec_lbm"),
                           sim::arm_a57_model());
  const auto out = ev.evaluate({{"stream", {}}, {"collide", {}}});
  ASSERT_TRUE(out.valid);
  EXPECT_LT(out.speedup, 1.0);  // -O0 modules are slower than -O3
}

TEST(Evaluator, ProgramHashDetectsAnyChange) {
  auto p1 = bench_suite::make_program("spec_xz");
  auto p2 = bench_suite::make_program("spec_xz");
  EXPECT_EQ(sim::program_hash(p1), sim::program_hash(p2));
  passes::run_sequence(p2.modules[0], {"mem2reg"});
  EXPECT_NE(sim::program_hash(p1), sim::program_hash(p2));
}

TEST(Evaluator, DifferentialTestingCatchesInjectedMiscompile) {
  sim::ProgramEvaluator ev(bench_suite::make_program("security_sha"),
                           sim::arm_a57_model());
  // Simulate a broken optimisation by corrupting a constant of the CRC
  // mixer; the reference output must expose the difference (this is the
  // oracle the differential tester compares against).
  auto broken = bench_suite::make_program("security_sha");
  for (auto& f : broken.modules[0].functions) {
    for (auto& in : f.instrs) {
      if (in.op == ir::Opcode::ConstInt && in.imm == 0x5a5a) {
        in.imm = 0x5a5b;  // flip one bit of the CRC seed
      }
    }
  }
  const auto out = ir::interpret(broken);
  EXPECT_TRUE(!out.ok || out.ret != ev.reference_output())
      << "corruption was not observable: weak differential oracle";
}

TEST(Evaluator, InstructionBudgetExhaustionIsAHang) {
  sim::ProgramEvaluator ev(bench_suite::make_program("security_sha"),
                           sim::arm_a57_model());
  ir::ExecLimits tight;
  tight.max_instructions = 50;  // far below any real run
  ev.set_exec_limits(tight);
  EXPECT_EQ(ev.exec_limits().max_instructions, 50u);
  const auto out = ev.evaluate({{"sha", {"dce"}}});
  EXPECT_FALSE(out.valid);
  EXPECT_EQ(out.failure, sim::FailureKind::Hang);
  EXPECT_STREQ(sim::failure_kind_name(out.failure), "hang");
  EXPECT_NE(out.why_invalid.find("hang"), std::string::npos)
      << out.why_invalid;
}

TEST(Evaluator, RuntimeTrapIsACrashNotAHang) {
  sim::ProgramEvaluator ev(bench_suite::make_program("security_sha"),
                           sim::arm_a57_model());
  ir::ExecLimits limits;
  limits.max_call_depth = 0;  // the entry call itself traps
  ev.set_exec_limits(limits);
  const auto out = ev.evaluate({{"sha", {"dce"}}});
  EXPECT_FALSE(out.valid);
  EXPECT_EQ(out.failure, sim::FailureKind::Crash);
  EXPECT_NE(out.why_invalid.find("runtime trap"), std::string::npos)
      << out.why_invalid;
}

TEST(Evaluator, ExecLimitsConfigurableAtConstruction) {
  ir::ExecLimits limits;
  limits.max_instructions = 123'456;
  sim::ProgramEvaluator ev(bench_suite::make_program("security_sha"),
                           sim::arm_a57_model(), limits);
  EXPECT_EQ(ev.exec_limits().max_instructions, 123'456u);
}

TEST(Evaluator, InjectedMiscompileFailsTheDifferentialTest) {
  sim::ProgramEvaluator ev(bench_suite::make_program("security_sha"),
                           sim::arm_a57_model());
  sim::FaultPlan plan;
  plan.miscompile_rate = 1.0;
  const sim::FaultInjector inj(plan);
  ev.set_fault_injector(&inj);
  const auto out = ev.evaluate({{"sha", {"mem2reg", "gvn"}}});
  EXPECT_FALSE(out.valid);
  EXPECT_EQ(out.failure, sim::FailureKind::Miscompile);
  EXPECT_NE(out.why_invalid.find("differential test failed"),
            std::string::npos)
      << out.why_invalid;
}

TEST(Evaluator, WorkloadOnlyMiscompileEscapesTrainInput) {
  sim::ProgramEvaluator ev(bench_suite::make_program("security_sha", 42),
                           sim::arm_a57_model());
  ev.add_workload(bench_suite::make_program("security_sha", 77));
  sim::FaultPlan plan;
  plan.workload_miscompile_rate = 1.0;  // manifests on extra inputs only
  const sim::FaultInjector inj(plan);
  ev.set_fault_injector(&inj);
  const auto out = ev.evaluate({{"sha", {"mem2reg", "gvn"}}});
  EXPECT_FALSE(out.valid);
  EXPECT_EQ(out.failure, sim::FailureKind::Miscompile);
  EXPECT_NE(out.why_invalid.find("extra workload"), std::string::npos)
      << out.why_invalid;
}

TEST(Evaluator, CacheHitRestoresPerSequenceStatsAndSize) {
  sim::ProgramEvaluator ev(bench_suite::make_program("security_sha"),
                           sim::arm_a57_model());
  const sim::SequenceAssignment a{{"sha", {"dce", "dce"}}};
  const sim::SequenceAssignment b{{"sha", {"dce", "dce", "dce"}}};
  const auto ra = ev.evaluate(a);
  const auto rb = ev.evaluate(b);
  ASSERT_TRUE(ra.valid && rb.valid);
  ASSERT_TRUE(rb.cache_hit);
  // Timing comes from the cached identical binary...
  EXPECT_EQ(ra.cycles, rb.cycles);
  EXPECT_EQ(ra.binary_hash, rb.binary_hash);
  // ...but stats/code_size describe THIS sequence's compilation, exactly
  // as a fresh compile of it reports them.
  const auto cb = ev.compile(b);
  ASSERT_TRUE(cb.valid);
  EXPECT_EQ(rb.code_size, cb.code_size);
  EXPECT_EQ(rb.stats.counters(), cb.stats.counters());
}

TEST(Evaluator, OnlyDeterministicOutcomesAreCached) {
  sim::ProgramEvaluator ev(bench_suite::make_program("security_sha"),
                           sim::arm_a57_model());
  const sim::SequenceAssignment a{{"sha", {"mem2reg"}}};

  sim::FaultPlan transient;
  transient.transient_hang_rate = 1.0;
  const sim::FaultInjector tinj(transient);
  ev.set_fault_injector(&tinj);
  const auto t1 = ev.evaluate(a);
  const auto t2 = ev.evaluate(a);
  EXPECT_FALSE(t1.valid);
  EXPECT_EQ(t1.failure, sim::FailureKind::Hang);
  EXPECT_TRUE(t1.transient);
  EXPECT_FALSE(t2.cache_hit);  // transient outcome never poisons the cache

  sim::FaultPlan det;
  det.hang_rate = 1.0;
  const sim::FaultInjector dinj(det);
  ev.set_fault_injector(&dinj);  // flushes the cache
  const auto d1 = ev.evaluate(a);
  const auto d2 = ev.evaluate(a);
  EXPECT_FALSE(d1.valid);
  EXPECT_FALSE(d1.transient);
  EXPECT_TRUE(d2.cache_hit);  // deterministic failures replay for free
  EXPECT_EQ(d2.failure, sim::FailureKind::Hang);
}

TEST(Evaluator, StatsOnlyCoverTunedModules) {
  sim::ProgramEvaluator ev(bench_suite::make_program("telecom_gsm"),
                           sim::arm_a57_model());
  const auto co = ev.compile({{"long_term", {"mem2reg"}}});
  ASSERT_TRUE(co.valid);
  EXPECT_EQ(co.module_stats.size(), 1u);
  EXPECT_TRUE(co.module_stats.count("long_term"));
  EXPECT_GT(co.stats.get("mem2reg.NumPromoted"), 0);
}

TEST(Evaluator, KeepProgramReturnsOptimisedIr) {
  sim::ProgramEvaluator ev(bench_suite::make_program("telecom_gsm"),
                           sim::arm_a57_model());
  const auto co =
      ev.compile({{"long_term", {"mem2reg", "slp-vectorizer"}}}, true);
  ASSERT_TRUE(co.valid);
  ASSERT_NE(co.program, nullptr);
  const auto* m = co.program->find_module("long_term");
  ASSERT_NE(m, nullptr);
  bool has_vector = false;
  for (const auto& f : m->functions) {
    for (const auto& in : f.instrs) {
      if (!in.dead() && in.type.is_vector()) has_vector = true;
    }
  }
  EXPECT_TRUE(has_vector);
}

TEST(Features, StatsVocabularyIsStable) {
  const core::StatsFeatures a, b;
  EXPECT_EQ(a.keys(), b.keys());
  EXPECT_EQ(a.dim(), passes::PassRegistry::instance().all_stat_keys().size());
}

TEST(Features, StatsExtractionIsLogCompressed) {
  core::StatsFeatures feat;
  passes::StatsRegistry stats;
  stats.add("mem2reg", "NumPromoted", 7);
  const Vec f = feat.extract(stats);
  double nonzero = 0.0;
  for (std::size_t i = 0; i < feat.dim(); ++i) {
    if (f[i] != 0.0) {
      ++nonzero;
      EXPECT_NEAR(f[i], std::log1p(7.0), 1e-12);
      EXPECT_EQ(feat.keys()[i], "mem2reg.NumPromoted");
    }
  }
  EXPECT_EQ(nonzero, 1.0);
}

TEST(Features, AutophaseCountsOpcodes) {
  ir::Module m;
  m.name = "t";
  ir::create_function(m, "f", ir::kI64, {}, false);
  ir::IRBuilder b(m.functions[0]);
  b.set_insert(0);
  const auto x = b.const_i64(1);
  b.ret(b.binop(ir::Opcode::Add, x, x));
  const Vec f = core::AutophaseFeatures::extract(m);
  const auto& names = core::AutophaseFeatures::names();
  auto at = [&](const std::string& n) {
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (names[i] == n) return f[i];
    }
    return -1.0;
  };
  EXPECT_NEAR(at("n_add"), std::log1p(1.0), 1e-12);
  EXPECT_NEAR(at("n_ret"), std::log1p(1.0), 1e-12);
  EXPECT_NEAR(at("n_functions"), std::log1p(1.0), 1e-12);
}

TEST(Features, SequenceEncodingCountsAndPositions) {
  core::SequenceFeatures feat(4, 10);
  const Vec f = feat.extract({2, 0, 2});
  EXPECT_DOUBLE_EQ(f[0], 1.0);      // pass 0 once
  EXPECT_DOUBLE_EQ(f[2], 2.0);      // pass 2 twice
  EXPECT_DOUBLE_EQ(f[4 + 2], 0.1);  // pass 2 first at position 1/10
  EXPECT_DOUBLE_EQ(f[4 + 0], 0.2);  // pass 0 first at position 2/10
  EXPECT_DOUBLE_EQ(f[1], 0.0);
}

TEST(FlagTask, RespectsAllOnEqualsCanonical) {
  const auto task = synth::make_flag_task("security_sha", "arm");
  // All flags on = the canonical sequence; must be a valid build with a
  // finite objective close to (or better than) 1.0.
  Vec all_on(synth::flag_task_dim(), 1.0);
  const double y = task.f(all_on);
  EXPECT_GT(y, 0.0);
  EXPECT_LT(y, 2.0);
  // All off = -O0 modules: strictly slower.
  Vec all_off(synth::flag_task_dim(), 0.0);
  EXPECT_GT(task.f(all_off), y);
}

TEST(SynthTasks, KnownOptimaAndDeterminism) {
  for (const char* name : {"ackley20", "rastrigin20", "griewank20"}) {
    const auto task = synth::make_task(name);
    EXPECT_NEAR(task.f(Vec(20, 0.0)), 0.0, 1e-9) << name;
  }
  const auto rosen = synth::make_task("rosenbrock20");
  EXPECT_NEAR(rosen.f(Vec(20, 1.0)), 0.0, 1e-9);
  // Determinism of the proxies.
  for (const char* name : {"push14", "rover60", "nas36", "cheetah102",
                           "lasso180"}) {
    const auto task = synth::make_task(name);
    Rng rng(4);
    const Vec x = task.box.sample(rng);
    EXPECT_EQ(task.f(x), task.f(x)) << name;
  }
}

TEST(Evaluator, MultiWorkloadDifferentialTesting) {
  sim::ProgramEvaluator ev(bench_suite::make_program("security_sha", 42),
                           sim::arm_a57_model());
  const double single_o3 = ev.o3_cycles();
  ev.add_workload(bench_suite::make_program("security_sha", 77));
  EXPECT_EQ(ev.num_workloads(), 2u);
  // Baseline recomputed as a mean over workloads; stays positive.
  EXPECT_GT(ev.o3_cycles(), 0.0);
  // Valid sequences stay valid across workloads.
  const auto out = ev.evaluate({{"sha", {"mem2reg", "gvn", "dce"}}});
  ASSERT_TRUE(out.valid) << out.why_invalid;
  EXPECT_GT(out.speedup, 0.0);
  (void)single_o3;
}

TEST(Evaluator, WorkloadStructureMismatchThrows) {
  sim::ProgramEvaluator ev(bench_suite::make_program("security_sha"),
                           sim::arm_a57_model());
  EXPECT_THROW(ev.add_workload(bench_suite::make_program("bzip2")),
               std::runtime_error);
}

TEST(Citroen, WarmStartObservationsRoundTrip) {
  sim::ProgramEvaluator ev1(bench_suite::make_program("spec_x264"),
                            sim::arm_a57_model());
  core::CitroenConfig cfg;
  cfg.budget = 10;
  cfg.initial_random = 4;
  cfg.max_hot_modules = 1;
  cfg.gp.fit_steps = 4;
  core::CitroenTuner t1(ev1, cfg);
  const auto r1 = t1.run();
  ASSERT_FALSE(r1.observations.empty());

  sim::ProgramEvaluator ev2(bench_suite::make_program("consumer_mad"),
                            sim::arm_a57_model());
  cfg.warm_start = r1.observations;
  core::CitroenTuner t2(ev2, cfg);
  const auto r2 = t2.run();
  EXPECT_EQ(r2.measurements, 10);
  // The warm observations are part of the target's data set.
  EXPECT_GE(r2.observations.size(),
            r1.observations.size() + 10);
}
