// Unit tests for the support layer: RNG, dense linear algebra,
// transforms, and descriptive statistics.

#include <gtest/gtest.h>

#include <cmath>

#include "support/matrix.hpp"
#include "support/rng.hpp"
#include "support/statistics.hpp"
#include "support/transforms.hpp"

using namespace citroen;

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformIndexInBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.uniform_index(17), 17u);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(5);
  Rng b = a.split();
  // The two streams should not be identical.
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(17);
  std::vector<double> w = {0.0, 10.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.categorical(w), 1u);
}

TEST(Rng, CategoricalAllZeroFallsBackUniform) {
  Rng rng(19);
  std::vector<double> w = {0.0, 0.0, 0.0, 0.0};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 400; ++i) ++counts[rng.categorical(w)];
  for (int c : counts) EXPECT_GT(c, 0);
}

TEST(Matrix, MatmulIdentity) {
  Matrix a(3, 3);
  int v = 1;
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) a(i, j) = v++;
  }
  const Matrix c = matmul(a, Matrix::identity(3));
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(c(i, j), a(i, j));
  }
}

TEST(Matrix, CholeskySolveRoundTrip) {
  Rng rng(3);
  const std::size_t n = 12;
  // SPD matrix A = B B^T + n*I.
  Matrix b(n, n);
  for (auto& v : b.data()) v = rng.uniform(-1.0, 1.0);
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = i == j ? static_cast<double>(n) : 0.0;
      for (std::size_t k = 0; k < n; ++k) acc += b(i, k) * b(j, k);
      a(i, j) = acc;
    }
  }
  const Cholesky ch = cholesky(a);
  ASSERT_TRUE(ch.ok);
  EXPECT_EQ(ch.jitter, 0.0);
  Vec x(n);
  for (auto& v : x) v = rng.uniform(-2.0, 2.0);
  const Vec rhs = matvec(a, x);
  const Vec sol = ch.solve(rhs);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(sol[i], x[i], 1e-8);
}

TEST(Matrix, CholeskyAddsJitterForSingular) {
  Matrix a(3, 3);  // rank-1
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) a(i, j) = 1.0;
  }
  const Cholesky ch = cholesky(a);
  EXPECT_TRUE(ch.ok);
  EXPECT_GT(ch.jitter, 0.0);
}

TEST(Matrix, LogDetMatchesKnownValue) {
  Matrix a(2, 2);
  a(0, 0) = 4.0;
  a(1, 1) = 9.0;
  const Cholesky ch = cholesky(a);
  ASSERT_TRUE(ch.ok);
  EXPECT_NEAR(ch.log_det(), std::log(36.0), 1e-9);
}

TEST(Matrix, EighReconstructsMatrix) {
  Rng rng(21);
  const std::size_t n = 8;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = rng.uniform(-1.0, 1.0);
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  const EigenSym e = eigh_jacobi(a);
  // A == V diag(w) V^T
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < n; ++k)
        acc += e.vectors(i, k) * e.values[k] * e.vectors(j, k);
      EXPECT_NEAR(acc, a(i, j), 1e-8);
    }
  }
}

TEST(Matrix, EighVectorsOrthonormal) {
  Rng rng(22);
  const std::size_t n = 6;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = rng.uniform(-1.0, 1.0);
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  const EigenSym e = eigh_jacobi(a);
  for (std::size_t p = 0; p < n; ++p) {
    for (std::size_t q = 0; q < n; ++q) {
      double acc = 0.0;
      for (std::size_t k = 0; k < n; ++k)
        acc += e.vectors(k, p) * e.vectors(k, q);
      EXPECT_NEAR(acc, p == q ? 1.0 : 0.0, 1e-8);
    }
  }
}

// ---- Yeo-Johnson property sweep -------------------------------------------

class YeoJohnsonRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(YeoJohnsonRoundTrip, RawInverseIsExact) {
  const double lambda = GetParam();
  for (const double y : {-10.0, -1.5, -0.1, 0.0, 0.1, 1.5, 10.0, 300.0}) {
    const double z = YeoJohnson::raw(y, lambda);
    EXPECT_NEAR(YeoJohnson::raw_inverse(z, lambda), y,
                1e-8 * (1.0 + std::abs(y)))
        << "lambda=" << lambda << " y=" << y;
  }
}

INSTANTIATE_TEST_SUITE_P(Lambdas, YeoJohnsonRoundTrip,
                         ::testing::Values(-1.5, -0.5, 0.0, 0.5, 1.0, 2.0,
                                           3.0));

TEST(YeoJohnson, FitStandardisesSkewedData) {
  Rng rng(31);
  Vec y;
  for (int i = 0; i < 400; ++i) {
    const double u = rng.normal();
    y.push_back(std::exp(u));  // log-normal: heavily right-skewed
  }
  YeoJohnson yj;
  yj.fit(y);
  const Vec z = yj.transform(y);
  EXPECT_NEAR(mean(z), 0.0, 1e-9);
  EXPECT_NEAR(stddev(z), 1.0, 1e-9);
  // The fitted transform should reduce skewness substantially.
  auto skew = [](const Vec& v) {
    const double m = mean(v), s = stddev(v);
    double acc = 0.0;
    for (double x : v) acc += std::pow((x - m) / s, 3.0);
    return acc / static_cast<double>(v.size());
  };
  EXPECT_LT(std::abs(skew(z)), std::abs(skew(y)) / 2.0);
}

TEST(YeoJohnson, TransformInverseRoundTrip) {
  Vec y = {1.0, 5.0, 2.5, -3.0, 0.0, 12.0};
  YeoJohnson yj;
  yj.fit(y);
  for (double v : y) EXPECT_NEAR(yj.inverse(yj.transform(v)), v, 1e-7);
}

TEST(InputScaler, RoundTrip) {
  InputScaler sc({-2.0, 0.0}, {4.0, 10.0});
  const Vec x = {1.0, 7.5};
  const Vec u = sc.to_unit(x);
  EXPECT_NEAR(u[0], 0.5, 1e-12);
  EXPECT_NEAR(u[1], 0.75, 1e-12);
  const Vec back = sc.from_unit(u);
  EXPECT_NEAR(back[0], x[0], 1e-12);
  EXPECT_NEAR(back[1], x[1], 1e-12);
}

TEST(InputScaler, FitHandlesConstantDimension) {
  InputScaler sc;
  sc.fit({{1.0, 5.0}, {2.0, 5.0}, {3.0, 5.0}});
  const Vec u = sc.to_unit({2.0, 5.0});
  EXPECT_TRUE(std::isfinite(u[1]));
}

TEST(Statistics, BasicAggregates) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_DOUBLE_EQ(median(v), 2.5);
  EXPECT_NEAR(stddev(v), std::sqrt(1.25), 1e-12);
  EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(quantile({1, 2, 3, 4, 5}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile({1, 2, 3, 4, 5}, 1.0), 5.0);
}

TEST(Statistics, PearsonPerfectCorrelation) {
  EXPECT_NEAR(pearson({1, 2, 3, 4}, {2, 4, 6, 8}), 1.0, 1e-12);
  EXPECT_NEAR(pearson({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0, 1e-12);
}

// ---- shared jittered backoff (support/backoff.hpp) -------------------------
// One implementation backs the sandbox supervisor's respawn delays, the
// dist pool's peer reconnects, and citroen-cli's resubmit retries.

#include "support/backoff.hpp"

TEST(Backoff, JitteredStaysInWindowAndIsDeterministic) {
  std::uint64_t s1 = 42, s2 = 42;
  for (int i = 0; i < 200; ++i) {
    const double a = support::jittered_backoff(0.1, 0.5, &s1);
    const double b = support::jittered_backoff(0.1, 0.5, &s2);
    EXPECT_EQ(a, b);  // same state stream => same delays
    EXPECT_GE(a, 0.1 * 0.5);
    EXPECT_LE(a, 0.1 * 1.5);
  }
}

TEST(Backoff, JitterZeroIsExact) {
  std::uint64_t s = 7;
  EXPECT_DOUBLE_EQ(support::jittered_backoff(0.25, 0.0, &s), 0.25);
}

TEST(Backoff, FullJitterBoundedByCap) {
  std::uint64_t s = 99;
  for (int attempt = 0; attempt < 30; ++attempt) {
    const double d = support::full_jitter_backoff(attempt, 0.05, 2.0, &s);
    EXPECT_GT(d, 0.0);
    EXPECT_LE(d, 2.0);
  }
}

TEST(Backoff, FullJitterGrowsWithAttempts) {
  // The cap for attempt k is initial*2^k: the attempt-5 floor (10% of
  // its cap) must exceed the attempt-0 ceiling (100% of its cap).
  std::uint64_t s = 3;
  double early_max = 0, late_min = 1e9;
  for (int i = 0; i < 100; ++i) {
    std::uint64_t t = s + static_cast<std::uint64_t>(i);
    early_max = std::max(early_max,
                         support::full_jitter_backoff(0, 0.05, 100.0, &t));
    late_min = std::min(late_min,
                        support::full_jitter_backoff(5, 0.05, 100.0, &t));
  }
  EXPECT_LT(early_max, 0.05 + 1e-12);
  EXPECT_GT(late_min, 0.05);
}

TEST(Backoff, RespawnDoublesAndClamps) {
  std::uint64_t s = 11;
  // jitter 0 => exact exponential ladder, clamped at the max.
  EXPECT_DOUBLE_EQ(support::respawn_backoff(1, 0.1, 1.0, 0.0, &s), 0.1);
  EXPECT_DOUBLE_EQ(support::respawn_backoff(2, 0.1, 1.0, 0.0, &s), 0.2);
  EXPECT_DOUBLE_EQ(support::respawn_backoff(3, 0.1, 1.0, 0.0, &s), 0.4);
  EXPECT_DOUBLE_EQ(support::respawn_backoff(10, 0.1, 1.0, 0.0, &s), 1.0);
  EXPECT_DOUBLE_EQ(support::respawn_backoff(60, 0.1, 1.0, 0.0, &s), 1.0);
}
