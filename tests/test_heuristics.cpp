// Tests for the heuristic optimisers (GA, CMA-ES, DES) and the sequence
// mutation kit.

#include <gtest/gtest.h>

#include <cmath>

#include "heuristics/cmaes.hpp"
#include "heuristics/des.hpp"
#include "heuristics/ga.hpp"

using namespace citroen;
using namespace citroen::heuristics;

namespace {

double sphere(const Vec& x) {
  double acc = 0.0;
  for (double v : x) acc += v * v;
  return acc;
}

Box unit_box(std::size_t d, double lo = -2.0, double hi = 2.0) {
  return Box{Vec(d, lo), Vec(d, hi)};
}

/// Drive an ask/tell optimiser on a function; return best value found.
double drive(ContinuousOptimizer& opt, const Box& box, int evals,
             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec> xs;
  Vec ys;
  for (int i = 0; i < 10; ++i) {
    Vec x = box.sample(rng);
    ys.push_back(sphere(x));
    xs.push_back(std::move(x));
  }
  opt.init(xs, ys);
  double best = *std::min_element(ys.begin(), ys.end());
  for (int i = 10; i < evals; ++i) {
    const Vec x = opt.ask(1, rng)[0];
    const double y = sphere(x);
    best = std::min(best, y);
    opt.tell(x, y);
  }
  return best;
}

}  // namespace

TEST(Box, ClampAndSample) {
  Box b = unit_box(3, -1.0, 1.0);
  const Vec clamped = b.clamp({-5.0, 0.5, 9.0});
  EXPECT_DOUBLE_EQ(clamped[0], -1.0);
  EXPECT_DOUBLE_EQ(clamped[1], 0.5);
  EXPECT_DOUBLE_EQ(clamped[2], 1.0);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const Vec x = b.sample(rng);
    for (double v : x) {
      EXPECT_GE(v, -1.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(GaContinuous, ConvergesOnSphere) {
  GaContinuous ga(unit_box(6));
  const double best = drive(ga, unit_box(6), 300, 3);
  EXPECT_LT(best, 0.5);
}

TEST(GaContinuous, ChildrenRespectBounds) {
  GaContinuous ga(unit_box(4, 0.0, 1.0));
  Rng rng(5);
  std::vector<Vec> xs;
  Vec ys;
  for (int i = 0; i < 10; ++i) {
    xs.push_back(Box{Vec(4, 0.0), Vec(4, 1.0)}.sample(rng));
    ys.push_back(sphere(xs.back()));
  }
  ga.init(xs, ys);
  for (const auto& c : ga.ask(200, rng)) {
    for (double v : c) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(GaContinuous, DiversityDropsAsPopulationConverges) {
  GaContinuous ga(unit_box(4));
  Rng rng(7);
  std::vector<Vec> xs;
  Vec ys;
  for (int i = 0; i < 30; ++i) {
    xs.push_back(unit_box(4).sample(rng));
    ys.push_back(sphere(xs.back()));
  }
  ga.init(xs, ys);
  const double d0 = ga.population_diversity();
  // Feed a cluster of near-identical elite points.
  for (int i = 0; i < 60; ++i) {
    Vec x(4, 0.01 * i * 1e-3);
    ga.tell(x, sphere(x));
  }
  EXPECT_LT(ga.population_diversity(), d0);
}

TEST(CmaEs, ConvergesOnSphere) {
  CmaEs es(unit_box(6));
  const double best = drive(es, unit_box(6), 400, 11);
  EXPECT_LT(best, 0.1);
}

TEST(CmaEs, StepSizeAdapts) {
  CmaEs es(unit_box(4));
  const double sigma0 = es.sigma();
  Rng rng(13);
  for (int i = 0; i < 200; ++i) {
    const Vec x = es.ask(1, rng)[0];
    es.tell(x, sphere(x));
  }
  EXPECT_NE(es.sigma(), sigma0);  // CSA must have moved the step size
  EXPECT_GT(es.sigma(), 0.0);
}

TEST(DesSequence, AdoptsImprovements) {
  DesSequence des(10, 20);
  Rng rng(17);
  des.tell({1, 2, 3}, 5.0);
  EXPECT_EQ(des.incumbent_value(), 5.0);
  des.tell({4, 5}, 7.0);  // worse: rejected
  EXPECT_EQ(des.incumbent_value(), 5.0);
  EXPECT_EQ(des.incumbent(), (Sequence{1, 2, 3}));
  des.tell({9}, 1.0);  // better: adopted
  EXPECT_EQ(des.incumbent(), (Sequence{9}));
}

TEST(DesSequence, MutantsDeriveFromIncumbent) {
  DesSequence des(10, 20);
  Rng rng(19);
  const Sequence inc = {1, 2, 3, 4, 5, 6, 7, 8};
  des.tell(inc, 1.0);
  // Single-mutation children differ from the incumbent by a small edit.
  for (const auto& c : des.ask(50, rng)) {
    EXPECT_LE(static_cast<int>(c.size()),
              static_cast<int>(inc.size()) + 1);
    EXPECT_GE(static_cast<int>(c.size()),
              static_cast<int>(inc.size()) - 1);
  }
}

// ---- mutation kit property sweep -------------------------------------------

class MutationProperties : public ::testing::TestWithParam<int> {};

TEST_P(MutationProperties, OutputsStayWithinBounds) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  const int num_passes = 32;
  const int max_len = 60;
  Sequence s = random_sequence(num_passes, max_len, rng);
  for (int i = 0; i < 300; ++i) {
    s = mutate_sequence(s, num_passes, max_len, rng);
    EXPECT_GE(s.size(), 1u);
    EXPECT_LE(static_cast<int>(s.size()), max_len);
    for (int p : s) {
      EXPECT_GE(p, 0);
      EXPECT_LT(p, num_passes);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationProperties,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(MutationKit, RandomSequenceRespectsBounds) {
  Rng rng(23);
  for (int i = 0; i < 200; ++i) {
    const Sequence s = random_sequence(12, 25, rng);
    EXPECT_GE(s.size(), 1u);
    EXPECT_LE(s.size(), 25u);
    for (int p : s) {
      EXPECT_GE(p, 0);
      EXPECT_LT(p, 12);
    }
  }
}

TEST(GaSequence, ProducesValidOffspring) {
  GaSequence ga(16, 30);
  Rng rng(29);
  std::vector<Sequence> xs;
  Vec ys;
  for (int i = 0; i < 12; ++i) {
    xs.push_back(random_sequence(16, 30, rng));
    ys.push_back(static_cast<double>(i));
  }
  ga.init(xs, ys);
  for (const auto& c : ga.ask(100, rng)) {
    EXPECT_GE(c.size(), 1u);
    EXPECT_LE(c.size(), 30u);
    for (int p : c) {
      EXPECT_GE(p, 0);
      EXPECT_LT(p, 16);
    }
  }
}
