// Checkpoint/resume round trips: every tuner family (CITROEN, the five
// phase-ordering baselines, AIBO) must produce a byte-identical result
// when its state is serialized mid-run, restored into freshly-constructed
// objects and driven to completion — including under a fault plan, where
// the evaluator caches, quarantine sets and injector attempt counters are
// part of the state. Also covers the in-process kill/resume path through
// RunSession + JournaledEvaluator (checkpoint at K, crash at N > K,
// journal-tail replay).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "aibo/aibo.hpp"
#include "baselines/tuners.hpp"
#include "bench_suite/suite.hpp"
#include "citroen/tuner.hpp"
#include "persist/codec.hpp"
#include "persist/journaled_evaluator.hpp"
#include "persist/run_session.hpp"
#include "sim/evaluator.hpp"
#include "sim/faults.hpp"
#include "sim/machine.hpp"
#include "sim/robust_evaluator.hpp"
#include "synth/functions.hpp"

using namespace citroen;

namespace {

constexpr int kBudget = 24;

sim::ProgramEvaluator make_eval() {
  return sim::ProgramEvaluator(bench_suite::make_program("security_sha"),
                               sim::machine_by_name("arm"));
}

core::CitroenConfig citroen_config() {
  core::CitroenConfig cfg;
  cfg.budget = kBudget;
  cfg.initial_random = 6;
  cfg.candidates_per_iter = 8;
  cfg.gp.fit_steps = 4;
  cfg.seed = 3;
  return cfg;
}

std::string result_bytes(core::TuneResult r) {
  // Wall-clock observability fields, excluded from the replay contract.
  r.model_seconds = 0.0;
  r.compile_seconds = 0.0;
  r.measure_seconds = 0.0;
  persist::Writer w;
  core::put(w, r);
  return w.take();
}

std::string trace_bytes(const baselines::TuneTrace& t) {
  persist::Writer w;
  baselines::put(w, t);
  return w.take();
}

sim::FaultPlan test_fault_plan() {
  sim::FaultPlan plan;
  plan.seed = 321;
  plan.transient_crash_rate = 0.1;
  plan.deterministic_crash_rate = 0.1;
  plan.noise_sigma = 0.05;
  return plan;
}

}  // namespace

// ---- CITROEN --------------------------------------------------------------

TEST(Resume, CitroenStepwiseEqualsRun) {
  auto e1 = make_eval();
  core::CitroenTuner t1(e1, citroen_config());
  const std::string ref = result_bytes(t1.run());

  auto e2 = make_eval();
  core::CitroenTuner t2(e2, citroen_config());
  t2.start();
  while (t2.step()) {
  }
  EXPECT_EQ(result_bytes(t2.finish()), ref);
}

TEST(Resume, CitroenSaveLoadMidRunIsByteIdentical) {
  auto e1 = make_eval();
  core::CitroenTuner t1(e1, citroen_config());
  const std::string ref = result_bytes(t1.run());

  // Serialize after every single step and continue in brand-new objects.
  for (int cut : {3, 9, 15}) {
    auto e2 = make_eval();
    core::CitroenTuner t2(e2, citroen_config());
    t2.start();
    bool done = false;
    for (int i = 0; i < cut && !done; ++i) done = !t2.step();

    persist::Writer w;
    t2.save_state(w);
    e2.save_runtime_state(w);
    const std::string blob = w.take();

    auto e3 = make_eval();
    core::CitroenTuner t3(e3, citroen_config());
    persist::Reader r(blob);
    t3.load_state(r);
    e3.load_runtime_state(r);
    while (t3.step()) {
    }
    EXPECT_EQ(result_bytes(t3.finish()), ref) << "cut=" << cut;
  }
}

TEST(Resume, CitroenSaveLoadUnderFaultPlan) {
  const sim::FaultPlan plan = test_fault_plan();

  auto base1 = make_eval();
  sim::FaultInjector inj1(plan);
  sim::RobustEvaluator rob1(base1, sim::RobustConfig{}, &inj1);
  core::CitroenTuner t1(rob1, citroen_config());
  const std::string ref = result_bytes(t1.run());

  auto base2 = make_eval();
  sim::FaultInjector inj2(plan);
  sim::RobustEvaluator rob2(base2, sim::RobustConfig{}, &inj2);
  core::CitroenTuner t2(rob2, citroen_config());
  t2.start();
  for (int i = 0; i < 8; ++i)
    if (!t2.step()) break;

  persist::Writer w;
  t2.save_state(w);
  base2.save_runtime_state(w);
  rob2.save_state(w);
  inj2.save_attempts(w);
  const std::string blob = w.take();

  auto base3 = make_eval();
  sim::FaultInjector inj3(plan);
  sim::RobustEvaluator rob3(base3, sim::RobustConfig{}, &inj3);
  core::CitroenTuner t3(rob3, citroen_config());
  persist::Reader r(blob);
  t3.load_state(r);
  base3.load_runtime_state(r);
  rob3.load_state(r);
  inj3.load_attempts(r);
  while (t3.step()) {
  }
  EXPECT_EQ(result_bytes(t3.finish()), ref);
}

// ---- baselines ------------------------------------------------------------

class ResumeBaseline : public testing::TestWithParam<const char*> {};

TEST_P(ResumeBaseline, SaveLoadMidRunIsByteIdentical) {
  const std::string method = GetParam();
  baselines::PhaseTunerConfig cfg;
  cfg.budget = kBudget;
  cfg.seed = 5;

  auto e1 = make_eval();
  auto t1 = baselines::make_phase_tuner(method, e1, cfg);
  while (t1->step()) {
  }
  const std::string ref = trace_bytes(t1->finish());

  for (int cut : {2, 7}) {
    auto e2 = make_eval();
    auto t2 = baselines::make_phase_tuner(method, e2, cfg);
    bool done = false;
    for (int i = 0; i < cut && !done; ++i) done = !t2->step();

    persist::Writer w;
    t2->save_state(w);
    e2.save_runtime_state(w);
    const std::string blob = w.take();

    auto e3 = make_eval();
    auto t3 = baselines::make_phase_tuner(method, e3, cfg);
    persist::Reader r(blob);
    t3->load_state(r);
    e3.load_runtime_state(r);
    while (t3->step()) {
    }
    EXPECT_EQ(trace_bytes(t3->finish()), ref)
        << method << " diverged at cut=" << cut;
  }
}

INSTANTIATE_TEST_SUITE_P(AllMethods, ResumeBaseline,
                         testing::Values("random", "ga", "des", "opentuner",
                                         "boca"));

// ---- AIBO -----------------------------------------------------------------

TEST(Resume, AiboSaveLoadMidRunIsByteIdentical) {
  const synth::Task task = synth::make_task("ackley4");
  aibo::AiboConfig cfg;
  cfg.init_samples = 8;
  cfg.k = 40;
  cfg.gp.fit_steps = 4;
  const int budget = 20;

  const auto aibo_bytes = [](aibo::Result res) {
    res.model_seconds = 0.0;  // wall clock, excluded from the contract
    persist::Writer w;
    aibo::put(w, res);
    return w.take();
  };

  aibo::Aibo a(task.box, cfg, 2);
  const std::string ref = aibo_bytes(a.run(task.f, budget));

  for (int cut : {1, 4}) {
    aibo::Aibo b(task.box, cfg, 2);
    b.start(task.f, budget);
    bool done = false;
    for (int i = 0; i < cut && !done; ++i) done = !b.step(task.f);

    persist::Writer w;
    b.save_state(w);
    const std::string blob = w.take();

    aibo::Aibo c(task.box, cfg, 2);
    persist::Reader r(blob);
    c.load_state(r);
    while (c.step(task.f)) {
    }
    EXPECT_EQ(aibo_bytes(c.finish()), ref) << "cut=" << cut;
  }
}

// ---- in-process kill/resume through RunSession ----------------------------

TEST(Resume, JournaledKillAndResumeReplaysTail) {
  const std::string dir = testing::TempDir() + "citroen_resume_kill";
  const auto cfg = citroen_config();

  // Reference: an uninterrupted journaled run in a fresh session.
  std::string ref;
  {
    persist::SessionConfig scfg;
    scfg.dir = dir;
    persist::RunSession session(scfg, "ref");
    auto base = make_eval();
    persist::JournaledEvaluator jeval(base, session);
    core::CitroenTuner t(jeval, cfg);
    ref = result_bytes(t.run());
  }

  // "Crash": checkpoint at step 4, keep journaling to step 9, then drop
  // everything without a final checkpoint (stale checkpoint + longer
  // journal tail — the shape a real kill leaves behind).
  {
    persist::SessionConfig scfg;
    scfg.dir = dir;
    persist::RunSession session(scfg, "victim");
    auto base = make_eval();
    persist::JournaledEvaluator jeval(base, session);
    core::CitroenTuner t(jeval, cfg);
    t.start();
    for (int i = 0; i < 4; ++i)
      if (!t.step()) break;
    persist::Writer w;
    t.save_state(w);
    base.save_runtime_state(w);
    session.save_checkpoint(w.take(), /*complete=*/false);
    for (int i = 0; i < 5; ++i)
      if (!t.step()) break;
    session.flush();
  }

  // Resume: load the checkpoint, replay the tail under byte-verification,
  // finish. The result must match the uninterrupted run exactly.
  {
    persist::SessionConfig scfg;
    scfg.dir = dir;
    scfg.resume = true;
    persist::RunSession session(scfg, "victim");
    ASSERT_TRUE(session.has_state());
    ASSERT_GT(session.num_records(), session.state_records());
    auto base = make_eval();
    persist::JournaledEvaluator jeval(base, session);
    core::CitroenTuner t(jeval, cfg);
    persist::Reader r(session.state());
    t.load_state(r);
    base.load_runtime_state(r);
    while (t.step()) {
    }
    EXPECT_EQ(result_bytes(t.finish()), ref);
    // Replay was pure verification: the cursor walked the whole journal.
    EXPECT_GE(session.next_index(), session.num_records());
  }
}

TEST(Resume, JournaledRunSurvivesTornTail) {
  const std::string dir = testing::TempDir() + "citroen_resume_torn";
  const auto cfg = citroen_config();

  std::string ref;
  {
    persist::SessionConfig scfg;
    scfg.dir = dir;
    persist::RunSession session(scfg, "ref");
    auto base = make_eval();
    persist::JournaledEvaluator jeval(base, session);
    core::CitroenTuner t(jeval, cfg);
    ref = result_bytes(t.run());
  }
  {
    persist::SessionConfig scfg;
    scfg.dir = dir;
    persist::RunSession session(scfg, "victim");
    auto base = make_eval();
    persist::JournaledEvaluator jeval(base, session);
    core::CitroenTuner t(jeval, cfg);
    t.start();
    for (int i = 0; i < 6; ++i)
      if (!t.step()) break;
    session.flush();
  }
  // Tear the journal tail: append garbage that recovery must drop.
  {
    std::FILE* f =
        std::fopen((dir + "/victim.journal").c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fputs("\x03torn", f);
    std::fclose(f);
  }
  {
    persist::SessionConfig scfg;
    scfg.dir = dir;
    scfg.resume = true;
    persist::RunSession session(scfg, "victim");
    EXPECT_FALSE(session.recovery_note().empty());
    auto base = make_eval();
    persist::JournaledEvaluator jeval(base, session);
    core::CitroenTuner t(jeval, cfg);
    // No checkpoint was written: resume re-executes from the start under
    // journal verification.
    while (t.step()) {
    }
    EXPECT_EQ(result_bytes(t.finish()), ref);
  }
}
