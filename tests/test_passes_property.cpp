// Property-based testing of the pass infrastructure: random pass
// sequences over every benchmark program must keep the IR verifier-clean
// and preserve the program's output (differential testing), never slow
// compile into an infinite loop, and behave deterministically.

#include <gtest/gtest.h>

#include "bench_suite/suite.hpp"
#include "heuristics/optimizer.hpp"
#include "ir/interpreter.hpp"
#include "passes/pass.hpp"
#include "sim/evaluator.hpp"
#include "sim/machine.hpp"
#include "support/rng.hpp"

using namespace citroen;

namespace {

std::vector<std::string> random_names(int len, Rng& rng) {
  const auto& space = passes::PassRegistry::instance().pass_names();
  std::vector<std::string> seq;
  for (int i = 0; i < len; ++i)
    seq.push_back(space[rng.uniform_index(space.size())]);
  return seq;
}

}  // namespace

// One fuzz instance per (program, seed) pair: 12 programs x 4 seeds.
class RandomSequenceFuzz
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(RandomSequenceFuzz, PreservesSemanticsUnderRandomSequences) {
  const auto& [prog, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 13);

  auto base = bench_suite::make_program(prog);
  const auto ref = ir::interpret(base);
  ASSERT_TRUE(ref.ok) << ref.trap;

  for (int trial = 0; trial < 3; ++trial) {
    auto p = bench_suite::make_program(prog);
    const int len = 5 + static_cast<int>(rng.uniform_index(55));
    for (auto& m : p.modules) {
      const auto seq = random_names(len, rng);
      ASSERT_NO_THROW(passes::run_sequence(m, seq, /*verify_each=*/true))
          << prog << " module " << m.name << " trial " << trial;
    }
    const auto out = ir::interpret(p);
    ASSERT_TRUE(out.ok) << prog << ": " << out.trap;
    EXPECT_EQ(out.ret, ref.ret)
        << prog << " trial " << trial << ": differential test FAILED";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Fuzz, RandomSequenceFuzz,
    ::testing::Combine(::testing::ValuesIn([] {
                         std::vector<std::string> names;
                         for (const auto& b : bench_suite::benchmark_list())
                           names.push_back(b.name);
                         return names;
                       }()),
                       ::testing::Values(1, 2, 3, 4)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

TEST(PassDeterminism, SameSequenceSameBinary) {
  Rng rng(99);
  const auto seq = random_names(30, rng);
  auto p1 = bench_suite::make_program("consumer_jpeg");
  auto p2 = bench_suite::make_program("consumer_jpeg");
  for (auto& m : p1.modules) passes::run_sequence(m, seq);
  for (auto& m : p2.modules) passes::run_sequence(m, seq);
  EXPECT_EQ(sim::program_hash(p1), sim::program_hash(p2));
}

TEST(PassDeterminism, StatsAreDeterministic) {
  Rng rng(100);
  const auto seq = random_names(25, rng);
  auto p1 = bench_suite::make_program("spec_nab");
  auto p2 = bench_suite::make_program("spec_nab");
  const auto s1 = passes::run_sequence(p1.modules[0], seq);
  const auto s2 = passes::run_sequence(p2.modules[0], seq);
  EXPECT_EQ(s1.counters(), s2.counters());
}

TEST(PassIdempotence, RepeatedO3StaysValidAndStable) {
  auto p = bench_suite::make_program("security_sha");
  const auto ref = ir::interpret(p);
  for (int round = 0; round < 3; ++round) {
    for (auto& m : p.modules)
      ASSERT_NO_THROW(passes::run_sequence(m, passes::o3_sequence(), true));
  }
  const auto out = ir::interpret(p);
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.ret, ref.ret);
}

TEST(PassRobustness, RepeatedSinglePassTerminates) {
  // 10 consecutive applications of the same pass must terminate and stay
  // correct (guards against ping-pong rewrites).
  const auto& reg = passes::PassRegistry::instance();
  auto base = bench_suite::make_program("office_stringsearch");
  const auto ref = ir::interpret(base);
  for (const auto& pass : reg.pass_names()) {
    auto p = bench_suite::make_program("office_stringsearch");
    std::vector<std::string> seq(10, pass);
    for (auto& m : p.modules)
      ASSERT_NO_THROW(passes::run_sequence(m, seq, true)) << pass;
    const auto out = ir::interpret(p);
    ASSERT_TRUE(out.ok) << pass << ": " << out.trap;
    EXPECT_EQ(out.ret, ref.ret) << pass;
  }
}

TEST(StatsRegistry, MergeAndClear) {
  passes::StatsRegistry a, b;
  a.add("p", "X", 2);
  b.add("p", "X", 3);
  b.add("q", "Y", 1);
  a.merge(b);
  EXPECT_EQ(a.get("p.X"), 5);
  EXPECT_EQ(a.get("q.Y"), 1);
  EXPECT_EQ(a.get("missing.Z"), 0);
  a.clear();
  EXPECT_EQ(a.get("p.X"), 0);
}

TEST(StatsRegistry, ZeroDeltasAreNotStored) {
  passes::StatsRegistry s;
  s.add("p", "X", 0);
  EXPECT_TRUE(s.counters().empty());
}

TEST(PassRegistry, StatKeysMatchDeclaredNames) {
  const auto& reg = passes::PassRegistry::instance();
  EXPECT_GE(reg.pass_names().size(), 30u);
  EXPECT_GE(reg.all_stat_keys().size(), 50u);
  // Every key must be "<registered pass name>.<Counter>".
  for (const auto& key : reg.all_stat_keys()) {
    const auto dot = key.find('.');
    ASSERT_NE(dot, std::string::npos) << key;
  }
  // Unknown pass names are rejected.
  auto p = bench_suite::make_program("bzip2");
  EXPECT_THROW(passes::run_sequence(p.modules[0], {"not-a-pass"}),
               std::runtime_error);
}
