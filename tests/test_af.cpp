// Tests for the acquisition functions and their maximisers.

#include <gtest/gtest.h>

#include <cmath>

#include "af/acquisition.hpp"
#include "af/maximizer.hpp"

using namespace citroen;
using namespace citroen::af;

namespace {

/// GP fit to a simple 1-D bowl with a clear minimum at x = 0.3.
gp::GaussianProcess make_model() {
  Rng rng(1);
  std::vector<Vec> xs;
  Vec ys;
  for (int i = 0; i <= 20; ++i) {
    const double x = i / 20.0;
    xs.push_back({x});
    ys.push_back((x - 0.3) * (x - 0.3));
  }
  gp::GaussianProcess model(1);
  model.fit(xs, ys);
  return model;
}

double best_y(const gp::GaussianProcess& /*m*/) { return 0.0; }

}  // namespace

TEST(Acquisition, UcbFormula) {
  const auto model = make_model();
  AfConfig cfg;
  cfg.kind = AfKind::UCB;
  cfg.beta = 4.0;
  const Acquisition af(&model, cfg, best_y(model));
  const Vec x = {0.5};
  const auto p = model.predict(x);
  EXPECT_NEAR(af.value(x), -p.mean + 2.0 * std::sqrt(p.var), 1e-12);
}

TEST(Acquisition, EiNonNegativeEverywhere) {
  const auto model = make_model();
  const Acquisition af(&model, {AfKind::EI, 0.0, 64}, 0.05);
  for (int i = 0; i <= 50; ++i) {
    EXPECT_GE(af.value({i / 50.0}), 0.0);
  }
}

TEST(Acquisition, PiBoundedByOne) {
  const auto model = make_model();
  const Acquisition af(&model, {AfKind::PI, 0.0, 64}, 0.05);
  for (int i = 0; i <= 50; ++i) {
    const double v = af.value({i / 50.0});
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(Acquisition, UcbPrefersTheKnownMinimumRegion) {
  const auto model = make_model();
  const Acquisition af(&model, {AfKind::UCB, 1.0, 64}, 0.0);
  // The AF near the minimum (0.3) must exceed the AF at the worst end.
  EXPECT_GT(af.value({0.3}), af.value({1.0}));
}

class AfGradients : public ::testing::TestWithParam<AfKind> {};

TEST_P(AfGradients, MatchFiniteDifferences) {
  const auto model = make_model();
  AfConfig cfg;
  cfg.kind = GetParam();
  cfg.beta = 1.96;
  const Acquisition af(&model, cfg, 0.04);
  for (const double x0 : {0.1, 0.45, 0.82}) {
    const auto [v, g] = af.value_grad({x0});
    const double h = 1e-6;
    const double fd = (af.value({x0 + h}) - af.value({x0 - h})) / (2 * h);
    EXPECT_NEAR(g[0], fd, 1e-4 + 1e-3 * std::abs(fd)) << "x=" << x0;
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, AfGradients,
                         ::testing::Values(AfKind::UCB, AfKind::EI,
                                           AfKind::PI),
                         [](const auto& info) {
                           switch (info.param) {
                             case AfKind::UCB: return "UCB";
                             case AfKind::EI: return "EI";
                             default: return "PI";
                           }
                         });

TEST(Maximizer, AscendImprovesAfValue) {
  const auto model = make_model();
  const Acquisition af(&model, {AfKind::UCB, 1.96, 64}, 0.0);
  const heuristics::Box box{{0.0}, {1.0}};
  const Vec start = {0.95};
  const double v0 = af.value(start);
  const auto [x, v] = ascend(af, start, box, {});
  EXPECT_GE(v, v0);
  EXPECT_GE(x[0], 0.0);
  EXPECT_LE(x[0], 1.0);
}

TEST(Maximizer, EsAndRandomFindReasonablePoints) {
  const auto model = make_model();
  const Acquisition af(&model, {AfKind::UCB, 1.0, 64}, 0.0);
  const heuristics::Box box{{0.0}, {1.0}};
  Rng rng(3);
  const auto es = es_maximize(af, box, 120, rng);
  const auto rs = random_maximize(af, box, 120, rng);
  // Both must find AF values at least as good as a fixed corner probe.
  EXPECT_GE(es.second, af.value({1.0}));
  EXPECT_GE(rs.second, af.value({1.0}));
}

TEST(McAcquisition, PenalisesClusteredBatches) {
  const auto model = make_model();
  McAcquisition mc(&model, {AfKind::EI, 0.0, 256}, 0.04);
  // The marginal qEI of adding a point right next to a pending one must
  // not exceed adding a far-away point (submodularity-ish behaviour).
  mc.add_pending({0.5});
  const double near = mc.value({0.5001});
  const double far = mc.value({0.05});
  EXPECT_GE(far, near - 1e-9);
}

TEST(McAcquisition, MoreSamplesStaysFinite) {
  const auto model = make_model();
  McAcquisition mc(&model, {AfKind::UCB, 1.96, 64}, 0.0);
  for (double x = 0.0; x <= 1.0; x += 0.25) {
    EXPECT_TRUE(std::isfinite(mc.value({x})));
  }
}

TEST(NormalHelpers, CdfPdfSanity) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(10.0), 1.0, 1e-12);
  EXPECT_NEAR(normal_cdf(-10.0), 0.0, 1e-12);
  EXPECT_NEAR(normal_pdf(0.0), 0.3989422804014327, 1e-12);
  EXPECT_GT(normal_pdf(0.0), normal_pdf(1.0));
}
