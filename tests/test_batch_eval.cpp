// Properties of the batch evaluation engine: the work-stealing thread
// pool, the FlatMap assignment container, pass-name interning, the
// pipeline-prefix cache, and — the central contract — that
// `evaluate_batch` with any thread count and any cache configuration is
// bit-identical to the serial seed path, including under an injected
// fault plan.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_suite/suite.hpp"
#include "citroen/tuner.hpp"
#include "baselines/tuners.hpp"
#include "sim/evaluator.hpp"
#include "sim/faults.hpp"
#include "sim/machine.hpp"
#include "sim/prefix_cache.hpp"
#include "sim/robust_evaluator.hpp"
#include "support/flat_map.hpp"
#include "support/thread_pool.hpp"

using namespace citroen;

namespace {

sim::ProgramEvaluator make_eval() {
  return sim::ProgramEvaluator(bench_suite::make_program("security_sha"),
                               sim::arm_a57_model());
}

/// A batch of ES-style candidates: mutations of a common base sequence,
/// so most pairs share a long prefix (the prefix cache's target shape).
std::vector<sim::SequenceAssignment> make_batch(int n) {
  const std::vector<std::string> base = {
      "mem2reg", "instcombine", "simplifycfg", "gvn",  "licm",
      "indvars", "loop-unroll", "dce",         "sroa", "early-cse",
      "sccp",    "adce"};
  const auto& space = passes::PassRegistry::instance().pass_names();
  std::vector<sim::SequenceAssignment> batch;
  for (int i = 0; i < n; ++i) {
    auto seq = base;
    // Deterministic point mutation in the suffix, leaving the prefix
    // shared; every 4th candidate is an exact duplicate of the base.
    if (i % 4 != 0) {
      const std::size_t pos = seq.size() - 1 - (static_cast<std::size_t>(i) % 4);
      seq[pos] = space[(static_cast<std::size_t>(i) * 7) % space.size()];
    }
    sim::SequenceAssignment a;
    a["sha"] = seq;
    if (i % 3 == 0) a["pad"] = {"dce", "simplifycfg"};
    batch.push_back(std::move(a));
  }
  return batch;
}

void expect_outcome_eq(const sim::EvalOutcome& a, const sim::EvalOutcome& b) {
  EXPECT_EQ(a.valid, b.valid);
  EXPECT_EQ(a.why_invalid, b.why_invalid);
  EXPECT_EQ(a.failure, b.failure);
  EXPECT_EQ(a.transient, b.transient);
  EXPECT_EQ(a.cycles, b.cycles);  // bit-identical, not approximately
  EXPECT_EQ(a.speedup, b.speedup);
  EXPECT_EQ(a.cache_hit, b.cache_hit);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.binary_hash, b.binary_hash);
  EXPECT_EQ(a.code_size, b.code_size);
  EXPECT_EQ(a.stats.counters(), b.stats.counters());
}

sim::FaultPlan nasty_plan() {
  sim::FaultPlan plan;
  plan.seed = 99;
  plan.transient_crash_rate = 0.1;
  plan.deterministic_crash_rate = 0.1;
  plan.hang_rate = 0.05;
  plan.transient_hang_rate = 0.05;
  plan.miscompile_rate = 0.05;
  plan.noise_sigma = 0.1;
  plan.outlier_rate = 0.05;
  return plan;
}

}  // namespace

// ---- thread pool ----------------------------------------------------------

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::atomic<int>> hits(103);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, NestedCallsRunInline) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.parallel_for(8, [&](std::size_t) {
    // Reentrant parallel_for must not deadlock waiting on the same pool.
    pool.parallel_for(8, [&](std::size_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(32,
                                 [&](std::size_t i) {
                                   if (i == 13)
                                     throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool stays usable afterwards.
  std::atomic<int> n{0};
  pool.parallel_for(16, [&](std::size_t) { ++n; });
  EXPECT_EQ(n.load(), 16);
}

TEST(ThreadPool, SingleThreadPoolIsSerial) {
  ThreadPool pool(1);
  std::vector<std::size_t> order;
  pool.parallel_for(10, [&](std::size_t i) { order.push_back(i); });
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

// ---- FlatMap --------------------------------------------------------------

TEST(FlatMap, MatchesStdMapIterationOrder) {
  const FlatMap<std::string, int> fm{{"zeta", 1}, {"alpha", 2}, {"mid", 3}};
  const std::map<std::string, int> sm{{"zeta", 1}, {"alpha", 2}, {"mid", 3}};
  ASSERT_EQ(fm.size(), sm.size());
  auto it = sm.begin();
  for (const auto& [k, v] : fm) {
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
  }
}

TEST(FlatMap, BasicOperations) {
  FlatMap<std::string, int> m;
  EXPECT_TRUE(m.empty());
  m["b"] = 2;
  m["a"] = 1;
  m["b"] = 20;  // overwrite via operator[]
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.at("b"), 20);
  EXPECT_EQ(m.count("a"), 1u);
  EXPECT_EQ(m.count("zz"), 0u);
  EXPECT_EQ(m.find("zz"), m.end());
  EXPECT_FALSE(m.emplace("a", 99).second);  // no overwrite via emplace
  EXPECT_EQ(m.at("a"), 1);
  EXPECT_EQ(m.erase("a"), 1u);
  EXPECT_EQ(m.erase("a"), 0u);
  EXPECT_THROW(m.at("a"), std::out_of_range);
  // Keys stay sorted after mixed insertion.
  m["zz"] = 3;
  m["aa"] = 4;
  std::string prev;
  for (const auto& [k, v] : m) {
    EXPECT_LT(prev, k);
    prev = k;
  }
  const FlatMap<std::string, int> x{{"k", 1}};
  const FlatMap<std::string, int> y{{"k", 1}};
  const FlatMap<std::string, int> z{{"k", 2}};
  EXPECT_EQ(x, y);
  EXPECT_NE(x, z);
}

TEST(FlatMap, InitializerListFirstDuplicateWins) {
  const FlatMap<std::string, int> m{{"a", 1}, {"a", 2}, {"b", 3}};
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.at("a"), 1);  // std::map semantics
}

// ---- pass interning -------------------------------------------------------

TEST(Interning, RoundTripsEveryRegisteredPass) {
  const auto& reg = passes::PassRegistry::instance();
  for (std::size_t i = 0; i < reg.num_passes(); ++i) {
    const auto& name = reg.pass_names()[i];
    const int id = reg.id_of(name);
    ASSERT_EQ(id, static_cast<int>(i));
    EXPECT_EQ(reg.name_of(static_cast<passes::PassId>(id)), name);
  }
  EXPECT_EQ(reg.id_of("no-such-pass"), -1);
  EXPECT_THROW(passes::intern_sequence({"gvn", "no-such-pass"}),
               std::runtime_error);
}

TEST(Interning, IdSequenceMatchesStringSequence) {
  auto p1 = bench_suite::make_program("security_sha");
  auto p2 = p1;
  const std::vector<std::string> seq = {"mem2reg", "gvn", "dce",
                                        "simplifycfg"};
  const auto ids = passes::intern_sequence(seq);
  const auto s1 = passes::run_sequence(p1.modules[0], seq);
  const auto s2 = passes::run_sequence(p2.modules[0], ids.data(), ids.size());
  EXPECT_EQ(s1.counters(), s2.counters());
  EXPECT_EQ(sim::program_hash(p1), sim::program_hash(p2));
}

// ---- prefix cache ---------------------------------------------------------

TEST(PrefixCache, CachedBuildsMatchUncachedBitForBit) {
  const auto program = bench_suite::make_program("security_sha");
  const auto& m = program.modules[0];
  sim::PrefixCacheConfig off;
  off.byte_budget = 0;
  const sim::PrefixCache cold(off);
  const sim::PrefixCache warm;  // default 64 MB

  const auto batch = make_batch(24);
  for (const auto& a : batch) {
    const auto ids = passes::intern_sequence(a.at("sha"));
    const auto u = cold.build(m, ids);
    const auto c = warm.build(m, ids);
    EXPECT_EQ(u->ok, c->ok);
    EXPECT_EQ(u->print_hash, c->print_hash);
    EXPECT_EQ(u->code_size, c->code_size);
    EXPECT_EQ(u->stats.counters(), c->stats.counters());
  }
  const auto ws = warm.stats();
  const auto cs = cold.stats();
  // Shared prefixes and duplicate candidates must have saved pass runs.
  EXPECT_GT(ws.full_hits + ws.prefix_hits, 0u);
  EXPECT_GT(ws.passes_saved, 0u);
  EXPECT_LT(ws.passes_run, cs.passes_run);
  EXPECT_GT(ws.bytes, 0u);
}

TEST(PrefixCache, FailedBuildsAreCachedWithTheSameError) {
  // A sequence whose pipeline is fine but the module unknown-pass case is
  // exercised at interning; here exercise repeat lookups of an ok build
  // and confirm the second build is a pure cache hit.
  const auto program = bench_suite::make_program("security_sha");
  const sim::PrefixCache cache;
  const auto ids = passes::intern_sequence({"gvn", "dce"});
  const auto first = cache.build(program.modules[0], ids);
  const auto again = cache.build(program.modules[0], ids);
  EXPECT_EQ(first.get(), again.get());  // literally the same entry
  EXPECT_EQ(cache.stats().full_hits, 1u);
}

TEST(PrefixCache, ByteBudgetEvicts) {
  sim::PrefixCacheConfig tiny;
  tiny.byte_budget = 64 << 10;  // 64 KB: far below the working set
  tiny.shards = 2;
  const sim::PrefixCache cache(tiny);
  const auto program = bench_suite::make_program("security_sha");
  for (const auto& a : make_batch(32)) {
    const auto ids = passes::intern_sequence(a.at("sha"));
    cache.build(program.modules[0], ids);
  }
  const auto st = cache.stats();
  EXPECT_LE(st.bytes, tiny.byte_budget);
  EXPECT_GT(st.evictions, 0u);
}

// ---- batch evaluation determinism ----------------------------------------

TEST(BatchEval, BitIdenticalToSerialAtEveryThreadCount) {
  const auto batch = make_batch(16);

  // Reference: the plain serial path on a fresh evaluator with the
  // prefix cache disabled — the seed behaviour.
  auto serial = make_eval();
  serial.set_prefix_cache_config([] {
    sim::PrefixCacheConfig c;
    c.byte_budget = 0;
    return c;
  }());
  std::vector<sim::EvalOutcome> want;
  for (const auto& a : batch) want.push_back(serial.evaluate(a));

  for (const int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    auto ev = make_eval();
    ev.set_thread_pool(&pool);
    const auto got = ev.evaluate_batch(batch);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " candidate=" + std::to_string(i));
      expect_outcome_eq(want[i], got[i]);
    }
    // The serial-order integer counters must also match exactly.
    EXPECT_EQ(ev.num_compiles(), serial.num_compiles());
    EXPECT_EQ(ev.num_measurements(), serial.num_measurements());
    EXPECT_EQ(ev.num_cache_hits(), serial.num_cache_hits());
    // And the prefix cache must actually have been exercised.
    EXPECT_GT(ev.prefix_cache_stats().passes_saved, 0u);
  }
}

TEST(BatchEval, PrefixCacheOnAndOffAgree) {
  const auto batch = make_batch(12);
  auto on = make_eval();
  auto off = make_eval();
  off.set_prefix_cache_config([] {
    sim::PrefixCacheConfig c;
    c.byte_budget = 0;
    return c;
  }());
  const auto a = on.evaluate_batch(batch);
  std::vector<sim::EvalOutcome> b;
  for (const auto& s : batch) b.push_back(off.evaluate(s));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) expect_outcome_eq(a[i], b[i]);
}

TEST(BatchEval, CompileBatchMatchesSerialCompile) {
  const auto batch = make_batch(12);
  auto batched = make_eval();
  auto serial = make_eval();
  const auto got = batched.compile_batch(batch);
  ASSERT_EQ(got.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto want = serial.compile(batch[i]);
    EXPECT_EQ(got[i].valid, want.valid);
    EXPECT_EQ(got[i].why_invalid, want.why_invalid);
    EXPECT_EQ(got[i].binary_hash, want.binary_hash);
    EXPECT_EQ(got[i].code_size, want.code_size);
    EXPECT_EQ(got[i].stats.counters(), want.stats.counters());
  }
}

TEST(BatchEval, BitIdenticalUnderInjectedFaults) {
  const auto batch = make_batch(16);

  // Each run owns a fresh injector: its transient-attempt counters are
  // mutable state that must start identical for trajectories to match.
  const sim::FaultInjector serial_injector(nasty_plan());
  auto base_serial = make_eval();
  sim::RobustEvaluator serial(base_serial, {}, &serial_injector);
  std::vector<sim::EvalOutcome> want;
  for (const auto& a : batch) want.push_back(serial.evaluate(a));

  for (const int threads : {2, 8}) {
    ThreadPool pool(threads);
    const sim::FaultInjector injector(nasty_plan());
    auto base = make_eval();
    base.set_thread_pool(&pool);
    sim::RobustEvaluator robust(base, {}, &injector);
    const auto got = robust.evaluate_batch(batch);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " candidate=" + std::to_string(i));
      expect_outcome_eq(want[i], got[i]);
    }
    // Retry/quarantine bookkeeping is order-sensitive state; it must
    // evolve identically.
    const auto& ws = serial.robust_stats();
    const auto& gs = robust.robust_stats();
    EXPECT_EQ(gs.evaluations, ws.evaluations);
    EXPECT_EQ(gs.attempts, ws.attempts);
    EXPECT_EQ(gs.retries, ws.retries);
    EXPECT_EQ(gs.quarantine_hits, ws.quarantine_hits);
    EXPECT_EQ(gs.valid, ws.valid);
    EXPECT_EQ(gs.failures, ws.failures);
    EXPECT_EQ(robust.quarantine_size(), serial.quarantine_size());
  }
}

// ---- tuner trajectory invariance ------------------------------------------

TEST(BatchEval, CitroenTrajectoryIsThreadCountInvariant) {
  auto run_with_threads = [&](int threads) {
    ThreadPool pool(threads);
    auto ev = make_eval();
    ev.set_thread_pool(&pool);
    core::CitroenConfig cfg;
    cfg.budget = 12;
    cfg.initial_random = 4;
    cfg.candidates_per_iter = 8;
    cfg.gp.fit_steps = 3;
    cfg.seed = 7;
    core::CitroenTuner tuner(ev, cfg);
    return tuner.run();
  };
  const auto t1 = run_with_threads(1);
  const auto t8 = run_with_threads(8);
  EXPECT_EQ(t1.speedup_curve, t8.speedup_curve);
  EXPECT_EQ(t1.best_speedup, t8.best_speedup);
  EXPECT_EQ(t1.measurements, t8.measurements);
  EXPECT_EQ(t1.compiles, t8.compiles);
  EXPECT_EQ(t1.best_assignment, t8.best_assignment);
}

TEST(BatchEval, GaTrajectoryIsThreadCountInvariant) {
  auto run_with_threads = [&](int threads) {
    ThreadPool pool(threads);
    auto ev = make_eval();
    ev.set_thread_pool(&pool);
    baselines::PhaseTunerConfig cfg;
    cfg.budget = 10;
    cfg.seed = 3;
    return baselines::run_ga_tuner(ev, cfg);
  };
  const auto t1 = run_with_threads(1);
  const auto t4 = run_with_threads(4);
  EXPECT_EQ(t1.speedup_curve, t4.speedup_curve);
  EXPECT_EQ(t1.best_speedup, t4.best_speedup);
  EXPECT_EQ(t1.invalid, t4.invalid);
}
