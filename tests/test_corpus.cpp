// Tests for the durable transfer corpus (src/corpus): round trips,
// nearest-cluster lookup and its rejection thresholds, the concurrency
// (flock) and schema-version degradation rungs, and the corruption
// property suite the ISSUE demands — random-position bit flips,
// truncations, zeroed ranges and mid-append kills, twelve cases each,
// must always recover-or-quarantine into a working cold start and never
// crash, hang, or fabricate a wrong warm start.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_suite/suite.hpp"
#include "corpus/corpus.hpp"
#include "persist/codec.hpp"
#include "persist/journal.hpp"
#include "sim/evaluator.hpp"
#include "sim/machine.hpp"
#include "support/matrix.hpp"

using namespace citroen;

namespace {

std::string temp_dir(const std::string& name) {
  const std::string d = testing::TempDir() + "citroen_corpus_" + name;
  std::filesystem::remove_all(d);
  return d;
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(f),
                     std::istreambuf_iterator<char>());
}

constexpr std::uint64_t kFp = 7;

/// Synthetic entries with far-apart dim-4 signatures: every entry is its
/// own cluster (RMS distance between any two is >= 5, cluster radius 1).
corpus::CorpusEntry make_entry(int i) {
  corpus::CorpusEntry e;
  e.program = "prog_" + std::to_string(i);
  e.machine = "arm";
  e.module = "mod_" + std::to_string(i % 3);
  e.stats_vocab_fp = kFp;
  e.budget = static_cast<std::uint32_t>(10 + i);
  e.speedup = 1.1 + 0.05 * i;
  e.signature = Vec{10.0 * i, 10.0 * i + 0.5, 3.0, 4.0};
  e.sequence = {"mem2reg", "pass_" + std::to_string(i), "gvn"};
  e.observations = {{Vec{1.0 * i, 2.0, 3.0, 4.0, 5.0}, 0.9 - 0.01 * i}};
  return e;
}

/// Build a pristine n-entry corpus in `dir`; returns the file bytes.
std::string build_pristine(const std::string& dir, int n) {
  corpus::TransferCorpus c(dir, {});
  for (int i = 0; i < n; ++i) EXPECT_TRUE(c.append(make_entry(i)));
  EXPECT_EQ(c.num_entries(), static_cast<std::size_t>(n));
  return read_file(corpus::TransferCorpus::file_path(dir));
}

/// The corruption-suite invariants: a writer handle over a damaged file
/// must (a) not crash (caller survives construction), (b) load an
/// in-order subsequence of the original entries with unaltered content,
/// (c) only hand out original sequences from lookups, (d) quarantine
/// exactly when nothing at all survived, and (e) still accept appends
/// and serve them to a reopened handle — a working cold start.
void check_damaged(const std::string& dir, int n_original,
                   const std::string& label) {
  SCOPED_TRACE(label);
  std::size_t loaded = 0;
  {
    corpus::TransferCorpus c(dir, {});
    ASSERT_TRUE(c.writable());

    int next = 0;
    for (const auto& got : c.entries()) {
      int match = -1;
      for (int i = next; i < n_original; ++i) {
        if (got.program == make_entry(i).program) {
          match = i;
          break;
        }
      }
      ASSERT_GE(match, 0) << "loaded entry is not an in-order original: "
                          << got.program;
      const auto want = make_entry(match);
      EXPECT_EQ(got.sequence, want.sequence);
      EXPECT_EQ(got.module, want.module);
      EXPECT_DOUBLE_EQ(got.speedup, want.speedup);
      EXPECT_EQ(got.signature, want.signature);
      next = match + 1;
    }
    loaded = c.num_entries();

    for (int i = 0; i < n_original; ++i) {
      const auto a = c.advise_module("arm", kFp, make_entry(i).signature);
      if (!a.hit) continue;
      for (const auto& seq : a.sequences) {
        bool known = false;
        for (int j = 0; j < n_original && !known; ++j)
          known = seq == make_entry(j).sequence;
        EXPECT_TRUE(known) << "lookup fabricated a sequence";
      }
    }

    if (c.stats().quarantined) {
      // Quarantine is the whole-file rung: nothing loaded, the wreck is
      // preserved next to the fresh file, and the note says why.
      EXPECT_EQ(loaded, 0u);
      EXPECT_FALSE(c.stats().note.empty());
      EXPECT_TRUE(std::filesystem::exists(
          corpus::TransferCorpus::file_path(dir) + ".bad"));
    }

    EXPECT_TRUE(c.append(make_entry(500)));
  }
  corpus::CorpusConfig ro;
  ro.mode = corpus::OpenMode::ReadOnly;
  corpus::TransferCorpus again(dir, ro);
  EXPECT_EQ(again.num_entries(), loaded + 1);
}

}  // namespace

// ---- round trips ----------------------------------------------------------

TEST(Corpus, RoundTripReopen) {
  const std::string dir = temp_dir("roundtrip");
  build_pristine(dir, 6);

  corpus::CorpusConfig ro;
  ro.mode = corpus::OpenMode::ReadOnly;
  corpus::TransferCorpus c(dir, ro);
  EXPECT_FALSE(c.writable());
  ASSERT_EQ(c.num_entries(), 6u);
  EXPECT_EQ(c.stats().recovered_bytes, 0u);
  EXPECT_FALSE(c.stats().quarantined);
  for (int i = 0; i < 6; ++i) {
    const auto want = make_entry(i);
    const auto& got = c.entries()[static_cast<std::size_t>(i)];
    EXPECT_EQ(got.program, want.program);
    EXPECT_EQ(got.machine, want.machine);
    EXPECT_EQ(got.module, want.module);
    EXPECT_EQ(got.budget, want.budget);
    EXPECT_EQ(got.sequence, want.sequence);
    EXPECT_EQ(got.signature, want.signature);
    ASSERT_EQ(got.observations.size(), 1u);
    EXPECT_EQ(got.observations[0].first, want.observations[0].first);
    EXPECT_DOUBLE_EQ(got.observations[0].second, want.observations[0].second);
  }
}

TEST(Corpus, AppendDedupsExactDuplicates) {
  const std::string dir = temp_dir("dedup");
  corpus::TransferCorpus c(dir, {});
  EXPECT_TRUE(c.append(make_entry(0)));
  EXPECT_FALSE(c.append(make_entry(0)));
  EXPECT_EQ(c.num_entries(), 1u);
  EXPECT_EQ(c.stats().deduped, 1u);
  auto changed = make_entry(0);
  changed.speedup += 0.25;  // different content key -> a real append
  EXPECT_TRUE(c.append(changed));
  EXPECT_EQ(c.num_entries(), 2u);
}

// ---- lookup ---------------------------------------------------------------

TEST(Corpus, AdviseHitsIdenticalSignatureAndRejectsFarOnes) {
  const std::string dir = temp_dir("advise");
  build_pristine(dir, 6);
  corpus::CorpusConfig ro;
  ro.mode = corpus::OpenMode::ReadOnly;
  corpus::TransferCorpus c(dir, ro);

  const auto hit = c.advise_module("arm", kFp, make_entry(2).signature);
  ASSERT_TRUE(hit.hit);
  EXPECT_DOUBLE_EQ(hit.distance, 0.0);
  ASSERT_FALSE(hit.sequences.empty());
  EXPECT_EQ(hit.sequences[0], make_entry(2).sequence);

  // Every rejection threshold keeps the cold path: wrong machine, wrong
  // vocabulary fingerprint, wrong dimension, too-far signature.
  EXPECT_FALSE(c.advise_module("x86", kFp, make_entry(2).signature).hit);
  EXPECT_FALSE(c.advise_module("arm", kFp + 1, make_entry(2).signature).hit);
  EXPECT_FALSE(c.advise_module("arm", kFp, Vec{1.0, 2.0}).hit);
  EXPECT_FALSE(c.advise_module("arm", kFp, Vec{500.0, 500.0, 3.0, 4.0}).hit);
  EXPECT_EQ(c.stats().lookups, 5u);
  EXPECT_EQ(c.stats().hits, 1u);
}

TEST(Corpus, MinClusterEntriesGateRejectsThinClusters) {
  const std::string dir = temp_dir("thin");
  build_pristine(dir, 2);
  corpus::CorpusConfig cfg;
  cfg.mode = corpus::OpenMode::ReadOnly;
  cfg.min_cluster_entries = 2;  // every synthetic cluster has exactly 1
  corpus::TransferCorpus c(dir, cfg);
  EXPECT_FALSE(c.advise_module("arm", kFp, make_entry(0).signature).hit);
}

TEST(Corpus, AdviseForModulesOnRealEvaluatorTransfersOwnResult) {
  // Tune telecom_gsm briefly, append the result, then ask the corpus to
  // advise the same program again: the probe signature is identical, so
  // it must hit at distance ~0 and return the stored winner.
  const std::string dir = temp_dir("real_eval");
  sim::ProgramEvaluator eval(bench_suite::make_program("telecom_gsm"),
                             sim::machine_by_name("arm"));
  core::CitroenConfig cfg;
  cfg.budget = 12;
  cfg.initial_random = 6;
  cfg.max_hot_modules = 1;
  cfg.seed = 3;
  core::CitroenTuner tuner(eval, cfg);
  const auto res = tuner.run();

  corpus::TransferCorpus c(dir, {});
  auto entries = corpus::entries_from_result(eval, "telecom_gsm", "arm", 12,
                                             res, tuner.tuned_modules());
  if (entries.empty()) {
    GTEST_SKIP() << "run found no speedup worth transferring";
  }
  for (const auto& e : entries) EXPECT_TRUE(c.append(e));

  const auto advice =
      corpus::advise_for_modules(c, eval, "arm", tuner.tuned_modules());
  EXPECT_GT(advice.modules_matched, 0u);
  ASSERT_FALSE(advice.seed_sequences.empty());
  EXPECT_EQ(advice.seed_sequences[0].second, entries[0].sequence);

  // A different machine never matches (its entries live in another
  // cluster key), so the tuner would run cold — byte-identically.
  const auto other =
      corpus::advise_for_modules(c, eval, "riscv", tuner.tuned_modules());
  EXPECT_TRUE(other.empty());
}

TEST(Corpus, AdviseForModulesEmptyCorpusIsColdAndProbeFree) {
  const std::string dir = temp_dir("empty_cold");
  corpus::TransferCorpus c(dir, {});
  sim::ProgramEvaluator eval(bench_suite::make_program("security_sha"),
                             sim::machine_by_name("arm"));
  const int before = eval.num_compiles();
  const auto advice = corpus::advise_for_modules(c, eval, "arm", {"sha"});
  EXPECT_TRUE(advice.empty());
  EXPECT_EQ(eval.num_compiles(), before)
      << "empty corpus must not probe-compile";
}

TEST(Corpus, TunerAdviceRoundTrips) {
  corpus::TunerAdvice a;
  a.seed_sequences = {{"mod", {"gvn", "licm"}}, {"mod2", {"dce"}}};
  a.warm_start = {{Vec{1.0, 2.0}, 0.5}, {Vec{3.0, 4.0}, 0.75}};
  a.modules_matched = 2;
  persist::Writer w;
  corpus::put(w, a);
  persist::Reader r(w.data());
  corpus::TunerAdvice b;
  corpus::get(r, b);
  EXPECT_TRUE(r.at_end());
  EXPECT_EQ(b.seed_sequences, a.seed_sequences);
  EXPECT_EQ(b.modules_matched, a.modules_matched);
  ASSERT_EQ(b.warm_start.size(), 2u);
  EXPECT_EQ(b.warm_start[1].first, a.warm_start[1].first);
  EXPECT_DOUBLE_EQ(b.warm_start[1].second, a.warm_start[1].second);
}

// ---- degradation rungs ----------------------------------------------------

TEST(Corpus, SecondWriterDegradesToReadOnly) {
  const std::string dir = temp_dir("flock");
  corpus::TransferCorpus first(dir, {});
  ASSERT_TRUE(first.writable());
  EXPECT_TRUE(first.append(make_entry(0)));
  {
    // flock is per open-file-description, so a second handle in the same
    // process conflicts exactly like a second process would.
    corpus::TransferCorpus second(dir, {});
    EXPECT_FALSE(second.writable());
    EXPECT_TRUE(second.stats().lock_degraded);
    EXPECT_FALSE(second.append(make_entry(1)));
    EXPECT_EQ(second.num_entries(), 1u);  // lookups still served
  }
}

TEST(Corpus, WriterLockReleasedOnDestruction) {
  const std::string dir = temp_dir("flock_release");
  { corpus::TransferCorpus first(dir, {}); }
  corpus::TransferCorpus second(dir, {});
  EXPECT_TRUE(second.writable());
}

TEST(Corpus, FutureSchemaVersionIsReadOnlyAndNeverTruncated) {
  const std::string dir = temp_dir("future");
  std::filesystem::create_directories(dir);
  const std::string path = corpus::TransferCorpus::file_path(dir);
  {
    persist::JournalWriter w(path, persist::JournalConfig{}, 0,
                             corpus::kCorpusMagic);
    persist::Writer payload;
    payload.u8(0);    // kRecHeader
    payload.u32(99);  // a schema from the future
    w.append(payload.take());
    w.flush();
  }
  const std::string before = read_file(path);
  {
    corpus::TransferCorpus c(dir, {});
    EXPECT_FALSE(c.writable());
    EXPECT_TRUE(c.stats().future_version);
    EXPECT_EQ(c.num_entries(), 0u);
    EXPECT_FALSE(c.append(make_entry(0)));
  }
  EXPECT_EQ(read_file(path), before) << "future-format file must not change";
  // The failed writer released the lock: a concurrent old-format writer
  // elsewhere would still be wrong, but nothing here holds it hostage.
  corpus::TransferCorpus again(dir, {});
  EXPECT_FALSE(again.writable());
}

TEST(Corpus, GarbageFileQuarantinesAndRestartsCold) {
  const std::string dir = temp_dir("quarantine");
  std::filesystem::create_directories(dir);
  const std::string path = corpus::TransferCorpus::file_path(dir);
  write_file(path, "this is definitely not a corpus file");
  write_file(path + ".bad", "previous wreck");  // forces the counter
  {
    corpus::TransferCorpus c(dir, {});
    EXPECT_TRUE(c.stats().quarantined);
    EXPECT_TRUE(c.writable());
    EXPECT_EQ(c.num_entries(), 0u);
    EXPECT_TRUE(c.append(make_entry(0)));
  }
  EXPECT_EQ(read_file(path + ".bad"), "previous wreck");
  EXPECT_EQ(read_file(path + ".bad.1"),
            "this is definitely not a corpus file");
  corpus::CorpusConfig ro;
  ro.mode = corpus::OpenMode::ReadOnly;
  corpus::TransferCorpus again(dir, ro);
  EXPECT_EQ(again.num_entries(), 1u);
}

TEST(Corpus, ReadOnlyHandleNeverQuarantinesGarbage) {
  const std::string dir = temp_dir("ro_garbage");
  std::filesystem::create_directories(dir);
  const std::string path = corpus::TransferCorpus::file_path(dir);
  write_file(path, "garbage");
  corpus::CorpusConfig ro;
  ro.mode = corpus::OpenMode::ReadOnly;
  corpus::TransferCorpus c(dir, ro);
  EXPECT_EQ(c.num_entries(), 0u);
  EXPECT_EQ(read_file(path), "garbage") << "read-only must not touch disk";
  EXPECT_FALSE(std::filesystem::exists(path + ".bad"));
}

// ---- corruption property suite --------------------------------------------

TEST(CorpusCorruption, BitFlipsAlwaysRecoverOrQuarantine) {
  const std::string base = temp_dir("flip_base");
  const std::string pristine = build_pristine(base, 6);
  ASSERT_GT(pristine.size(), 24u);
  for (int k = 0; k < 12; ++k) {
    // Deterministic positions spread over the whole file, including the
    // magic (k=0 maps into the first 8 bytes -> quarantine territory).
    const std::size_t pos = (k * pristine.size()) / 12;
    std::string bytes = pristine;
    bytes[pos] = static_cast<char>(bytes[pos] ^ (1 << (k % 8)));
    const std::string dir = temp_dir("flip_case");
    std::filesystem::create_directories(dir);
    write_file(corpus::TransferCorpus::file_path(dir), bytes);
    check_damaged(dir, 6, "bit flip at byte " + std::to_string(pos));
  }
}

TEST(CorpusCorruption, TruncationsAlwaysRecoverOrQuarantine) {
  const std::string base = temp_dir("trunc_base");
  const std::string pristine = build_pristine(base, 6);
  for (int k = 0; k < 12; ++k) {
    const std::size_t keep = (k * pristine.size()) / 12;
    const std::string dir = temp_dir("trunc_case");
    std::filesystem::create_directories(dir);
    write_file(corpus::TransferCorpus::file_path(dir),
               pristine.substr(0, keep));
    check_damaged(dir, 6, "truncated to " + std::to_string(keep) + " bytes");
  }
}

TEST(CorpusCorruption, ZeroedRangesAlwaysRecoverOrQuarantine) {
  const std::string base = temp_dir("zero_base");
  const std::string pristine = build_pristine(base, 6);
  for (int k = 0; k < 12; ++k) {
    const std::size_t start = (k * pristine.size()) / 12;
    const std::size_t len =
        std::min<std::size_t>(16 + 8 * static_cast<std::size_t>(k),
                              pristine.size() - start);
    std::string bytes = pristine;
    for (std::size_t i = start; i < start + len; ++i) bytes[i] = '\0';
    const std::string dir = temp_dir("zero_case");
    std::filesystem::create_directories(dir);
    write_file(corpus::TransferCorpus::file_path(dir), bytes);
    check_damaged(dir, 6,
                  "zeroed [" + std::to_string(start) + ", " +
                      std::to_string(start + len) + ")");
  }
}

TEST(CorpusCorruption, MidAppendTornTailsAlwaysRecover) {
  // The honest torn-write shape: the first 6 entries are intact and the
  // 7th append stopped partway. Build the real tail bytes by diffing a
  // 7-entry file against the 6-entry prefix, then replay every cut.
  const std::string base6 = temp_dir("tail_base6");
  const std::string pristine6 = build_pristine(base6, 6);
  const std::string base7 = temp_dir("tail_base7");
  std::filesystem::create_directories(base7);
  write_file(corpus::TransferCorpus::file_path(base7), pristine6);
  { corpus::TransferCorpus c(base7, {}); ASSERT_TRUE(c.append(make_entry(6))); }
  const std::string pristine7 =
      read_file(corpus::TransferCorpus::file_path(base7));
  ASSERT_EQ(pristine7.substr(0, pristine6.size()), pristine6)
      << "append must be pure tail growth";
  const std::string tail = pristine7.substr(pristine6.size());
  ASSERT_GT(tail.size(), 12u);

  for (int k = 0; k < 12; ++k) {
    const std::size_t cut = 1 + (k * (tail.size() - 1)) / 12;
    const std::string dir = temp_dir("tail_case");
    std::filesystem::create_directories(dir);
    write_file(corpus::TransferCorpus::file_path(dir),
               pristine6 + tail.substr(0, cut));
    SCOPED_TRACE("torn tail cut at " + std::to_string(cut));
    corpus::TransferCorpus c(dir, {});
    ASSERT_TRUE(c.writable());
    // The 6 intact entries always survive; the torn 7th never half-loads
    // (it is either fully decodable or truncated away).
    EXPECT_GE(c.num_entries(), 6u);
    EXPECT_LE(c.num_entries(), 7u);
    EXPECT_FALSE(c.stats().quarantined);
    EXPECT_TRUE(c.append(make_entry(600)));
  }
}

TEST(CorpusCorruption, SigkillMidAppendRecoversOnReopen) {
  const std::string dir = temp_dir("sigkill");
  build_pristine(dir, 3);

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    corpus::CorpusConfig kcfg;
    kcfg.mode = corpus::OpenMode::AppendWait;
    kcfg.kill_after_tail_bytes = 10;  // die mid-frame
    try {
      corpus::TransferCorpus c(dir, kcfg);
      c.append(make_entry(3));
    } catch (...) {
    }
    _exit(97);  // only reachable if the kill hook misfired
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  corpus::TransferCorpus c(dir, {});
  EXPECT_TRUE(c.writable());
  EXPECT_GT(c.stats().recovered_bytes, 0u);
  EXPECT_EQ(c.num_entries(), 3u);
  EXPECT_TRUE(c.append(make_entry(3)));
  EXPECT_EQ(c.num_entries(), 4u);
}
