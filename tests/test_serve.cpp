// Tests for the citroend serving layer (src/serve/): wire codec
// round-trips and rejection of malformed frames, admission/quota
// enforcement, deficit-round-robin fairness, job resume byte-identity,
// and a live in-process daemon exercised over a real Unix socket —
// admission rejects, graceful drain with the 0/75 exit taxonomy, and
// kill/restart/re-attach recovery. The in-process server runs in a
// std::thread, so the accept/scheduler loop is part of the TSan CI job.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "corpus/corpus.hpp"
#include "obs/trace.hpp"
#include "persist/checkpoint.hpp"
#include "persist/codec.hpp"
#include "persist/run_session.hpp"
#include "serve/admission.hpp"
#include "serve/client.hpp"
#include "serve/job.hpp"
#include "serve/scheduler.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"

using namespace citroen;

namespace {

std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "citroen_serve_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

bool curves_identical(const Vec& a, const Vec& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

serve::JobSpec small_spec(const std::string& method = "random",
                          std::uint32_t budget = 10, std::uint64_t seed = 3) {
  serve::JobSpec s;
  s.program = "telecom_gsm";
  s.machine = "arm";
  s.method = method;
  s.budget = budget;
  s.seed = seed;
  return s;
}

}  // namespace

// ---- wire codec -----------------------------------------------------------

TEST(ServeWire, AllMessagesRoundTrip) {
  std::string err;

  serve::HelloMsg hello;
  hello.tenant = "tenant-a";
  serve::HelloMsg hello2;
  ASSERT_TRUE(serve::decode(serve::encode(hello), &hello2, &err)) << err;
  EXPECT_EQ(hello2.tenant, "tenant-a");
  EXPECT_EQ(hello2.version, serve::kProtocolVersion);

  serve::SubmitMsg sub;
  sub.spec = small_spec("citroen", 77, 123456789ull);
  serve::SubmitMsg sub2;
  ASSERT_TRUE(serve::decode(serve::encode(sub), &sub2, &err)) << err;
  EXPECT_EQ(sub2.spec.program, "telecom_gsm");
  EXPECT_EQ(sub2.spec.method, "citroen");
  EXPECT_EQ(sub2.spec.budget, 77u);
  EXPECT_EQ(sub2.spec.seed, 123456789ull);

  serve::RejectMsg rej;
  rej.reason = serve::RejectReason::OverTenantBudget;
  rej.message = "quota";
  rej.retry_after_seconds = 0.25;
  serve::RejectMsg rej2;
  ASSERT_TRUE(serve::decode(serve::encode(rej), &rej2, &err)) << err;
  EXPECT_EQ(rej2.reason, serve::RejectReason::OverTenantBudget);
  EXPECT_EQ(rej2.retry_after_seconds, 0.25);

  serve::ResultMsg res;
  res.job_id = 42;
  res.status = serve::ResultStatus::Ok;
  res.curve = {1.0, 0.1 + 0.2, 1.4758525773932889, -0.0};
  serve::ResultMsg res2;
  ASSERT_TRUE(serve::decode(serve::encode(res), &res2, &err)) << err;
  ASSERT_TRUE(curves_identical(res.curve, res2.curve))
      << "doubles must survive the wire bit-exactly";

  serve::StatusMsg st;
  st.job_id = 7;
  st.state = serve::JobState::Running;
  st.evals_done = 5;
  st.budget = 30;
  serve::StatusMsg st2;
  ASSERT_TRUE(serve::decode(serve::encode(st), &st2, &err)) << err;
  EXPECT_EQ(st2.state, serve::JobState::Running);
  EXPECT_EQ(st2.evals_done, 5u);
}

TEST(ServeWire, MalformedPayloadsAreRejectedNotTrusted) {
  std::string err;
  serve::HelloMsg hello;

  EXPECT_FALSE(serve::decode(std::string(), &hello, &err));
  EXPECT_FALSE(serve::decode(std::string("\xff garbage"), &hello, &err));

  // Truncations of a valid message must never decode.
  serve::SubmitMsg sub;
  sub.spec = small_spec();
  const std::string good = serve::encode(sub);
  for (std::size_t cut = 0; cut < good.size(); ++cut) {
    serve::SubmitMsg out;
    EXPECT_FALSE(serve::decode(good.substr(0, cut), &out, &err))
        << "cut at " << cut;
  }
  // Trailing bytes are a framing error, not ignorable padding.
  serve::SubmitMsg out;
  EXPECT_FALSE(serve::decode(good + "x", &out, &err));

  // A Submit payload must not decode as a Hello (tag mismatch).
  EXPECT_FALSE(serve::decode(good, &hello, &err));

  // Empty tenant and incomplete specs are rejected at decode time.
  serve::HelloMsg anon;
  anon.tenant = "";
  EXPECT_FALSE(serve::decode(serve::encode(anon), &hello, &err));
  serve::SubmitMsg noprog;
  noprog.spec = small_spec();
  noprog.spec.program = "";
  EXPECT_FALSE(serve::decode(serve::encode(noprog), &out, &err));
}

TEST(ServeWire, RejectReasonTransience) {
  using serve::RejectReason;
  EXPECT_TRUE(serve::reject_is_transient(RejectReason::OverTenantJobs));
  EXPECT_TRUE(serve::reject_is_transient(RejectReason::OverTenantBudget));
  EXPECT_TRUE(serve::reject_is_transient(RejectReason::OverCapacity));
  EXPECT_FALSE(serve::reject_is_transient(RejectReason::Draining));
  EXPECT_FALSE(serve::reject_is_transient(RejectReason::BadRequest));
  EXPECT_FALSE(serve::reject_is_transient(RejectReason::UnknownJob));
}

// ---- admission control ----------------------------------------------------

TEST(ServeAdmission, EnforcesPerTenantJobQuota) {
  serve::QuotaConfig qc;
  qc.default_quota.max_jobs = 2;
  qc.default_quota.max_evals = 1000;
  serve::AdmissionController adm(qc);

  EXPECT_FALSE(adm.try_admit("t", small_spec("random", 10)));
  EXPECT_FALSE(adm.try_admit("t", small_spec("random", 10)));
  const auto rej = adm.try_admit("t", small_spec("random", 10));
  ASSERT_TRUE(rej.has_value());
  EXPECT_EQ(rej->reason, serve::RejectReason::OverTenantJobs);
  EXPECT_GT(rej->retry_after_seconds, 0.0) << "transient: carries a hint";

  // Another tenant is unaffected; release opens the slot again.
  EXPECT_FALSE(adm.try_admit("u", small_spec("random", 10)));
  adm.release("t", small_spec("random", 10));
  EXPECT_FALSE(adm.try_admit("t", small_spec("random", 10)));
  EXPECT_EQ(adm.tenant_jobs("t"), 2);
}

TEST(ServeAdmission, EnforcesEvalBudgetQuotaAndGlobalCap) {
  serve::QuotaConfig qc;
  qc.default_quota.max_jobs = 10;
  qc.default_quota.max_evals = 64;
  qc.max_jobs_total = 3;
  serve::AdmissionController adm(qc);

  EXPECT_FALSE(adm.try_admit("t", small_spec("random", 40)));
  const auto rej = adm.try_admit("t", small_spec("random", 40));
  ASSERT_TRUE(rej.has_value());
  EXPECT_EQ(rej->reason, serve::RejectReason::OverTenantBudget);
  EXPECT_EQ(adm.tenant_evals("t"), 40u);

  EXPECT_FALSE(adm.try_admit("u", small_spec("random", 10)));
  EXPECT_FALSE(adm.try_admit("v", small_spec("random", 10)));
  const auto cap = adm.try_admit("w", small_spec("random", 10));
  ASSERT_TRUE(cap.has_value());
  EXPECT_EQ(cap->reason, serve::RejectReason::OverCapacity);
  EXPECT_EQ(adm.total_jobs(), 3);
}

TEST(ServeAdmission, OverridesAndRecharge) {
  serve::QuotaConfig qc;
  qc.default_quota.max_jobs = 1;
  qc.overrides["vip"] = {5, 100000};
  serve::AdmissionController adm(qc);

  for (int i = 0; i < 5; ++i)
    EXPECT_FALSE(adm.try_admit("vip", small_spec("random", 10))) << i;
  EXPECT_TRUE(adm.try_admit("vip", small_spec("random", 10)));

  // recharge (resume path) bypasses the check entirely.
  serve::AdmissionController adm2(qc);
  for (int i = 0; i < 7; ++i) adm2.recharge("x", small_spec("random", 10));
  EXPECT_EQ(adm2.tenant_jobs("x"), 7);
}

// ---- DRR scheduler --------------------------------------------------------

TEST(ServeScheduler, GreedyTenantCannotStarveOthers) {
  serve::DrrScheduler sched(/*quantum=*/4);
  // Tenant "hog" has 8 jobs (ids 1..8); "meek" has one (id 100).
  for (std::uint64_t j = 1; j <= 8; ++j) sched.add("hog", j);
  sched.add("meek", 100);

  std::uint64_t hog_credits = 0, meek_credits = 0;
  for (int i = 0; i < 400; ++i) {
    const auto pick = sched.pick();
    ASSERT_TRUE(pick.has_value());
    const std::uint64_t cost = 2;  // every step costs 2 eval-credits
    if (*pick == 100)
      meek_credits += cost;
    else
      hog_credits += cost;
    sched.charge(*pick, cost);
  }
  // Long-run throughput is per-tenant, not per-job: the lone meek job
  // gets the same credit share as the hog's whole fleet.
  EXPECT_NEAR(static_cast<double>(meek_credits),
              static_cast<double>(hog_credits),
              static_cast<double>(hog_credits) * 0.1);
}

TEST(ServeScheduler, RoundRobinsWithinATenantAndAcrossTenants) {
  serve::DrrScheduler sched(/*quantum=*/1);
  sched.add("a", 1);
  sched.add("a", 2);
  sched.add("b", 3);

  std::map<std::uint64_t, int> picks;
  for (int i = 0; i < 300; ++i) {
    const auto pick = sched.pick();
    ASSERT_TRUE(pick.has_value());
    picks[*pick]++;
    sched.charge(*pick, 1);
  }
  // b's single job gets ~150; a's two jobs split ~150 between them.
  EXPECT_NEAR(picks[3], 150, 15);
  EXPECT_NEAR(picks[1], 75, 15);
  EXPECT_NEAR(picks[2], 75, 15);
}

TEST(ServeScheduler, RemoveAndEmptyBehave) {
  serve::DrrScheduler sched;
  EXPECT_FALSE(sched.pick().has_value());
  sched.add("t", 1);
  sched.add("t", 2);
  EXPECT_EQ(sched.size(), 2u);
  sched.remove(1);
  ASSERT_TRUE(sched.pick().has_value());
  EXPECT_EQ(*sched.pick(), 2u);
  sched.remove(2);
  EXPECT_TRUE(sched.empty());
  EXPECT_FALSE(sched.pick().has_value());
  EXPECT_EQ(sched.active_tenants(), 0u);
}

// ---- job stepping + resume ------------------------------------------------

TEST(ServeJob, SteppedJobMatchesSerialReplayByteForByte) {
  const std::string dir = fresh_dir("job_plain");
  const auto spec = small_spec("random", 12, 5);
  serve::JobRecord rec;
  rec.id = 1;
  rec.tenant = "t";
  rec.spec = spec;
  serve::TuningJob job(rec, dir, /*resume=*/false, nullptr);
  while (!job.terminal()) job.step();
  EXPECT_EQ(job.state(), serve::JobState::Done);
  EXPECT_EQ(job.evals_done(), 12u);
  EXPECT_TRUE(curves_identical(job.curve(), serve::serial_replay(spec)));
}

TEST(ServeJob, InterruptedJobResumesByteIdentically) {
  for (const std::string method : {"random", "citroen"}) {
    const std::string dir = fresh_dir("job_resume_" + method);
    const auto spec = small_spec(method, 14, 9);
    serve::JobRecord rec;
    rec.id = 2;
    rec.tenant = "t";
    rec.spec = spec;
    {
      serve::TuningJob job(rec, dir, /*resume=*/false, nullptr,
                           /*fsync_every=*/4, /*checkpoint_every=*/3);
      for (int i = 0; i < 3 && !job.terminal(); ++i) job.step();
      job.checkpoint_for_drain();
      // Job object destroyed mid-run: simulates the daemon dying.
    }
    serve::TuningJob job(rec, dir, /*resume=*/true, nullptr);
    while (!job.terminal()) job.step();
    EXPECT_TRUE(curves_identical(job.curve(), serve::serial_replay(spec)))
        << method << " resume diverged from serial replay";
  }
}

TEST(ServeJob, RecordRoundTripsAndCancelPersists) {
  const std::string dir = fresh_dir("job_record");
  serve::JobRecord rec;
  rec.id = 0xdeadbeefull;
  rec.tenant = "acme";
  rec.spec = small_spec("ga", 25, 7);
  serve::save_job_record(dir, rec);

  serve::JobRecord got;
  std::string note;
  ASSERT_TRUE(serve::load_job_record(serve::job_meta_path(dir, rec.id), &got,
                                     &note))
      << note;
  EXPECT_EQ(got.id, rec.id);
  EXPECT_EQ(got.tenant, "acme");
  EXPECT_EQ(got.spec.method, "ga");
  EXPECT_FALSE(got.cancelled);

  // Cancel persists: a fresh (resume) construction sees the flag and
  // refuses to run.
  serve::TuningJob job(got, dir, /*resume=*/false, nullptr);
  job.step();
  job.cancel(dir);
  EXPECT_EQ(job.state(), serve::JobState::Cancelled);
  serve::JobRecord after;
  ASSERT_TRUE(serve::load_job_record(serve::job_meta_path(dir, rec.id), &after,
                                     &note));
  EXPECT_TRUE(after.cancelled);
  serve::TuningJob revived(after, dir, /*resume=*/true, nullptr);
  EXPECT_EQ(revived.state(), serve::JobState::Cancelled);
  EXPECT_EQ(revived.step(), 0u);
}

TEST(ServeJob, InvalidSpecThrows) {
  const std::string dir = fresh_dir("job_bad");
  serve::JobRecord rec;
  rec.id = 3;
  rec.tenant = "t";
  rec.spec = small_spec();
  rec.spec.program = "no_such_program";
  EXPECT_THROW(serve::TuningJob(rec, dir, false, nullptr), std::exception);
  rec.spec = small_spec();
  rec.spec.method = "no_such_method";
  EXPECT_THROW(serve::TuningJob(rec, dir, false, nullptr), std::exception);
}

TEST(ServeJob, CorpusLearnsOnDoneAndAdvisesTheNextJob) {
  const std::string cdir = fresh_dir("job_corpus_store");
  auto corp =
      std::make_shared<corpus::TransferCorpus>(cdir, corpus::CorpusConfig{});
  ASSERT_TRUE(corp->writable());

  // Job 1 starts against an empty corpus: no advice (cold path), and its
  // winner lands in the corpus when it finishes.
  serve::JobRecord rec1;
  rec1.id = 10;
  rec1.tenant = "t";
  rec1.spec = small_spec("citroen", 18, 9);
  {
    serve::TuningJob job(rec1, fresh_dir("job_corpus_1"), /*resume=*/false,
                         nullptr, 64, 10, {}, corp);
    EXPECT_TRUE(job.record().advice.empty());
    while (!job.terminal()) job.step();
    EXPECT_EQ(job.state(), serve::JobState::Done);
  }
  ASSERT_GT(corp->num_entries(), 0u) << "finished job must append its winner";

  // Job 2 on the same program resolves advice ONCE at admission: the
  // probe signatures are identical, so the corpus must match.
  serve::JobRecord rec2;
  rec2.id = 11;
  rec2.tenant = "t";
  rec2.spec = small_spec("citroen", 18, 10);
  const std::string dir2 = fresh_dir("job_corpus_2");
  serve::TuningJob job2(rec2, dir2, /*resume=*/false, nullptr, 64, 10, {},
                        corp);
  EXPECT_FALSE(job2.record().advice.empty());
  EXPECT_GT(job2.record().advice.modules_matched, 0u);

  // The frozen advice round-trips through the v2 meta record, so a
  // daemon restart resumes with the advice the job started under.
  serve::save_job_record(dir2, job2.record());
  serve::JobRecord loaded;
  std::string note;
  ASSERT_TRUE(serve::load_job_record(serve::job_meta_path(dir2, rec2.id),
                                     &loaded, &note))
      << note;
  EXPECT_EQ(loaded.advice.seed_sequences,
            job2.record().advice.seed_sequences);
  EXPECT_EQ(loaded.advice.modules_matched,
            job2.record().advice.modules_matched);

  while (!job2.terminal()) job2.step();
  EXPECT_EQ(job2.state(), serve::JobState::Done);
  EXPECT_FALSE(job2.curve().empty());
}

TEST(ServeJob, AdvisedJobResumesByteIdentically) {
  // The warm path's resume contract: a job that took corpus advice and
  // was interrupted mid-run finishes byte-identically to the same job
  // run without interruption, because the advice is frozen in its meta
  // record at admission. A read-only corpus handle keeps the corpus
  // contents fixed across both constructions.
  const std::string cdir = fresh_dir("job_adv_resume_store");
  {
    auto writer = std::make_shared<corpus::TransferCorpus>(
        cdir, corpus::CorpusConfig{});
    serve::JobRecord seed_rec;
    seed_rec.id = 20;
    seed_rec.tenant = "t";
    seed_rec.spec = small_spec("citroen", 18, 9);
    serve::TuningJob seeder(seed_rec, fresh_dir("job_adv_resume_seed"),
                            /*resume=*/false, nullptr, 64, 10, {}, writer);
    while (!seeder.terminal()) seeder.step();
  }
  corpus::CorpusConfig ro;
  ro.mode = corpus::OpenMode::ReadOnly;
  auto corp = std::make_shared<corpus::TransferCorpus>(cdir, ro);
  ASSERT_GT(corp->num_entries(), 0u);

  serve::JobRecord rec;
  rec.id = 21;
  rec.tenant = "t";
  rec.spec = small_spec("citroen", 18, 10);

  serve::TuningJob straight(rec, fresh_dir("job_adv_resume_a"),
                            /*resume=*/false, nullptr, 64, 10, {}, corp);
  ASSERT_FALSE(straight.record().advice.empty()) << "lookup must hit";
  while (!straight.terminal()) straight.step();

  const std::string dir_b = fresh_dir("job_adv_resume_b");
  {
    serve::TuningJob first(rec, dir_b, /*resume=*/false, nullptr,
                           /*fsync_every=*/4, /*checkpoint_every=*/3, {},
                           corp);
    serve::save_job_record(dir_b, first.record());  // daemon admission
    for (int i = 0; i < 3 && !first.terminal(); ++i) first.step();
    first.checkpoint_for_drain();
    // Destroyed mid-run: the daemon died.
  }
  serve::JobRecord revived;
  std::string note;
  ASSERT_TRUE(serve::load_job_record(serve::job_meta_path(dir_b, rec.id),
                                     &revived, &note))
      << note;
  EXPECT_EQ(revived.advice.seed_sequences,
            straight.record().advice.seed_sequences);
  serve::TuningJob resumed(revived, dir_b, /*resume=*/true, nullptr, 64, 10,
                           {}, corp);
  while (!resumed.terminal()) resumed.step();
  EXPECT_TRUE(curves_identical(resumed.curve(), straight.curve()))
      << "advised resume diverged from the uninterrupted advised run";
}

TEST(ServeJob, V1MetaRecordsStillLoadWithEmptyAdvice) {
  // A pre-corpus meta (format v1) must keep loading after the upgrade —
  // hand-craft one through the same checkpoint container the v1 writer
  // used.
  const std::string dir = fresh_dir("job_meta_v1");
  persist::Writer w;
  w.u32(1);  // version 1: no advice field
  w.u64(42);
  w.str("acme");
  w.str("telecom_gsm");
  w.str("arm");
  w.str("random");
  w.u32(10);
  w.u64(3);
  w.b(false);
  persist::write_checkpoint(serve::job_meta_path(dir, 42), w.data());

  serve::JobRecord rec;
  std::string note;
  ASSERT_TRUE(
      serve::load_job_record(serve::job_meta_path(dir, 42), &rec, &note))
      << note;
  EXPECT_EQ(rec.id, 42u);
  EXPECT_EQ(rec.tenant, "acme");
  EXPECT_TRUE(rec.advice.empty());
}

// ---- live daemon over a real socket --------------------------------------

namespace {

struct LiveServer {
  explicit LiveServer(const serve::ServerConfig& cfg)
      : socket_path(cfg.socket_path), server(cfg) {
    thread = std::thread([this] { exit_code = server.run(); });
    // The listener binds before the loop; give it a moment.
    for (int i = 0; i < 200; ++i) {
      if (std::filesystem::exists(socket_path)) break;
      ::usleep(10 * 1000);
    }
  }
  int stop_and_join() {
    if (thread.joinable()) {
      server.request_stop();
      thread.join();
    }
    return exit_code;
  }
  ~LiveServer() { stop_and_join(); }

  std::string socket_path;
  serve::Server server;
  std::thread thread;
  int exit_code = -1;
};

serve::ServerConfig live_config(const std::string& dir) {
  serve::ServerConfig cfg;
  cfg.socket_path = dir + "/d.sock";
  cfg.state_dir = dir + "/state";
  cfg.install_signal_handlers = false;  // tests drive request_stop()
  cfg.idle_poll_ms = 5;
  cfg.drain_deadline_seconds = 5.0;
  return cfg;
}

std::unique_ptr<LiveServer> start_server(serve::ServerConfig cfg) {
  auto ls = std::make_unique<LiveServer>(cfg);
  ls->socket_path = cfg.socket_path;
  return ls;
}

serve::ClientConfig client_config(const std::string& socket,
                                  const std::string& tenant) {
  serve::ClientConfig cc;
  cc.socket_path = socket;
  cc.tenant = tenant;
  cc.jitter_seed = 4242;
  return cc;
}

}  // namespace

TEST(ServeDaemon, SubmitRunsToByteIdenticalResult) {
  const std::string dir = fresh_dir("daemon_basic");
  auto cfg = live_config(dir);
  auto ls = start_server(cfg);

  serve::Client client(client_config(cfg.socket_path, "tenant1"));
  const auto spec = small_spec("random", 10, 21);
  const auto id = client.submit(spec, 20.0);
  ASSERT_TRUE(id.has_value()) << client.error();
  const auto out = client.wait_result(*id, 60.0);
  EXPECT_EQ(out.status, serve::ResultStatus::Ok) << out.error;
  EXPECT_TRUE(curves_identical(out.curve, serve::serial_replay(spec)));

  // Re-attach after completion still serves the terminal result.
  const auto again = client.wait_result(*id, 20.0);
  EXPECT_EQ(again.status, serve::ResultStatus::Ok);
  EXPECT_TRUE(curves_identical(again.curve, out.curve));

  EXPECT_EQ(ls->stop_and_join(), 0) << "drained empty -> exit 0";
}

TEST(ServeDaemon, OverQuotaSubmissionGetsTypedTransientReject) {
  const std::string dir = fresh_dir("daemon_quota");
  auto cfg = live_config(dir);
  cfg.quotas.default_quota.max_jobs = 1;
  cfg.quotas.default_quota.max_evals = 1000;
  auto ls = start_server(cfg);

  serve::Client client(client_config(cfg.socket_path, "busy"));
  const auto first = client.submit(small_spec("random", 60, 1), 20.0);
  ASSERT_TRUE(first.has_value()) << client.error();
  // Zero retry budget: the transient reject surfaces as failure, with
  // the daemon's reason in error().
  const auto second = client.submit(small_spec("random", 10, 2), 0.0);
  EXPECT_FALSE(second.has_value());
  EXPECT_NE(client.error().find("job"), std::string::npos) << client.error();

  // An unknown job id draws the permanent UnknownJob reject.
  const auto ghost = client.wait_result(999999, 10.0);
  EXPECT_EQ(ghost.status, serve::ResultStatus::Failed);
  EXPECT_NE(ghost.error.find("unknown-job"), std::string::npos) << ghost.error;
}

TEST(ServeDaemon, CancelStopsAJobAndPersists) {
  const std::string dir = fresh_dir("daemon_cancel");
  auto cfg = live_config(dir);
  auto ls = start_server(cfg);

  serve::Client client(client_config(cfg.socket_path, "t"));
  // Big budget: the cancel lands while the job is still running.
  const auto id = client.submit(small_spec("ga", 600, 5), 20.0);
  ASSERT_TRUE(id.has_value()) << client.error();
  ASSERT_TRUE(client.cancel(*id));
  const auto out = client.wait_result(*id, 60.0);
  EXPECT_EQ(out.status, serve::ResultStatus::Cancelled);
  EXPECT_EQ(ls->stop_and_join(), 0)
      << "cancelled job is terminal: drain has nothing to checkpoint";
}

TEST(ServeDaemon, DrainCheckpointsInFlightJobsAndExits75) {
  const std::string dir = fresh_dir("daemon_drain");
  auto cfg = live_config(dir);
  cfg.drain_deadline_seconds = 0.2;  // force the checkpoint path
  auto ls = start_server(cfg);

  serve::Client client(client_config(cfg.socket_path, "t"));
  const auto spec = small_spec("ga", 400, 8);
  const auto id = client.submit(spec, 20.0);
  ASSERT_TRUE(id.has_value()) << client.error();

  // Pump until the first progress frame, then stop immediately: the job
  // is provably mid-run (a few evals out of 400) and cannot finish
  // inside the 0.2 s drain deadline. Pumping in short slices instead of
  // one fixed window keeps this true under sanitizer slowdowns too.
  std::atomic<bool> progressed{false};
  const double pump_deadline = sandbox::monotonic_seconds() + 60.0;
  while (!progressed.load() && sandbox::monotonic_seconds() < pump_deadline) {
    client.wait_result(*id, 0.5, [&](std::uint64_t done, std::uint64_t) {
      if (done > 0) progressed = true;
    });
  }
  EXPECT_TRUE(progressed.load());
  EXPECT_EQ(ls->stop_and_join(), persist::kExitInterrupted)
      << "in-flight work checkpointed -> exit 75";

  // A restarted daemon resumes the journal and finishes byte-identically;
  // the client re-attaches by job id.
  auto cfg2 = live_config(dir);
  cfg2.resume = true;
  auto ls2 = start_server(cfg2);
  serve::Client client2(client_config(cfg2.socket_path, "t"));
  const auto out = client2.wait_result(*id, 240.0);
  EXPECT_EQ(out.status, serve::ResultStatus::Ok) << out.error;
  EXPECT_TRUE(curves_identical(out.curve, serve::serial_replay(spec)))
      << "drain/resume must not change the result";
  EXPECT_EQ(ls2->stop_and_join(), 0);
}

TEST(ServeDaemon, DrainingDaemonRejectsNewSubmissions) {
  const std::string dir = fresh_dir("daemon_draining");
  auto cfg = live_config(dir);
  cfg.drain_deadline_seconds = 0.5;
  auto ls = start_server(cfg);

  serve::Client client(client_config(cfg.socket_path, "t"));
  const auto id = client.submit(small_spec("ga", 600, 4), 20.0);
  ASSERT_TRUE(id.has_value()) << client.error();

  ls->server.request_stop();
  ::usleep(100 * 1000);  // let the loop notice and flip to draining

  serve::Client late(client_config(cfg.socket_path, "late"));
  const auto refused = late.submit(small_spec("random", 5, 1), 0.0);
  EXPECT_FALSE(refused.has_value());
  EXPECT_NE(late.error().find("drain"), std::string::npos) << late.error();
}

TEST(ServeDaemon, SharedPrefixCacheAcrossTenantsPreservesResults) {
  const std::string dir = fresh_dir("daemon_shared");
  auto cfg = live_config(dir);
  auto ls = start_server(cfg);

  // Two tenants tune the SAME spec concurrently: the daemon-wide prefix
  // cache is shared between their evaluator stacks, and both must still
  // byte-match the serial replay.
  const auto spec = small_spec("ga", 12, 13);
  std::vector<serve::JobOutcome> outs(2);
  std::vector<std::thread> threads;
  for (int i = 0; i < 2; ++i) {
    threads.emplace_back([&, i] {
      serve::Client c(
          client_config(cfg.socket_path, i == 0 ? "alpha" : "beta"));
      const auto id = c.submit(spec, 20.0);
      if (id) outs[i] = c.wait_result(*id, 60.0);
    });
  }
  for (auto& t : threads) t.join();
  const Vec replay = serve::serial_replay(spec);
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(outs[i].status, serve::ResultStatus::Ok) << outs[i].error;
    EXPECT_TRUE(curves_identical(outs[i].curve, replay)) << "tenant " << i;
  }
  EXPECT_EQ(ls->stop_and_join(), 0);
}

// ---- live introspection ----------------------------------------------------

namespace {

serve::InspectOkMsg sample_inspect() {
  serve::InspectOkMsg m;
  m.epoch = 3;
  m.draining = true;
  m.clients = 2;
  serve::TenantSnap t;
  t.tenant = "acme";
  t.jobs_in_flight = 1;
  t.evals_in_flight = 30;
  t.max_jobs = 2;
  t.max_evals = 4096;
  t.drr_deficit = -7;
  t.queued_jobs = 1;
  t.evals_total = 123;
  m.tenants.push_back(t);
  serve::JobSnap j;
  j.id = 42;
  j.tenant = "acme";
  j.state = serve::JobState::Running;
  j.evals_done = 5;
  j.budget = 30;
  m.jobs.push_back(j);
  m.cache_builds = 10;
  m.cache_full_hits = 4;
  m.cache_prefix_hits = 3;
  m.cache_disk_hits = 1;
  m.corpus_entries = 9;
  m.corpus_lookups = 6;
  m.corpus_hits = 2;
  m.corpus_writable = true;
  serve::PeerSnap p;
  p.endpoint = "unix:/tmp/p0.sock";
  p.connected = true;
  p.banned = false;
  p.consecutive_failures = 0;
  p.clock_offset_ns = -12345;
  m.peers.push_back(p);
  serve::FlightSnap f;
  f.seq = 1;
  f.ts_ns = 999;
  f.kind = "job_accept";
  f.a = 42;
  f.b = 30;
  f.detail = "acme";
  m.flight.push_back(f);
  m.counters.emplace_back("citroend_evals_total", 5);
  m.counters.emplace_back("citroend_tenant_evals_total{tenant=\"acme\"}", 5);
  return m;
}

int raw_connect(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace

TEST(ServeWire, InspectMessagesRoundTrip) {
  std::string err;
  serve::InspectMsg q;
  q.include_flight = false;
  serve::InspectMsg q2;
  ASSERT_TRUE(serve::decode(serve::encode(q), &q2, &err)) << err;
  EXPECT_FALSE(q2.include_flight);

  const serve::InspectOkMsg m = sample_inspect();
  serve::InspectOkMsg m2;
  ASSERT_TRUE(serve::decode(serve::encode(m), &m2, &err)) << err;
  EXPECT_EQ(m2.epoch, 3u);
  EXPECT_TRUE(m2.draining);
  EXPECT_EQ(m2.clients, 2u);
  ASSERT_EQ(m2.tenants.size(), 1u);
  EXPECT_EQ(m2.tenants[0].tenant, "acme");
  EXPECT_EQ(m2.tenants[0].drr_deficit, -7);
  EXPECT_EQ(m2.tenants[0].evals_total, 123u);
  ASSERT_EQ(m2.jobs.size(), 1u);
  EXPECT_EQ(m2.jobs[0].state, serve::JobState::Running);
  EXPECT_EQ(m2.cache_disk_hits, 1u);
  EXPECT_EQ(m2.corpus_hits, 2u);
  EXPECT_TRUE(m2.corpus_writable);
  ASSERT_EQ(m2.peers.size(), 1u);
  EXPECT_EQ(m2.peers[0].clock_offset_ns, -12345);
  ASSERT_EQ(m2.flight.size(), 1u);
  EXPECT_EQ(m2.flight[0].kind, "job_accept");
  ASSERT_EQ(m2.counters.size(), 2u);
  EXPECT_EQ(m2.counters[1].first,
            "citroend_tenant_evals_total{tenant=\"acme\"}");

  // Truncations never decode.
  const std::string good = serve::encode(m);
  for (std::size_t cut = 0; cut < good.size(); cut += 7) {
    serve::InspectOkMsg out;
    EXPECT_FALSE(serve::decode(good.substr(0, cut), &out, &err))
        << "cut at " << cut;
  }
}

TEST(ServeWire, StatusRenderersCoverTheSnapshot) {
  const serve::InspectOkMsg m = sample_inspect();
  const std::string json = serve::status_json(m);
  std::string err;
  EXPECT_TRUE(obs::json_well_formed(json, &err)) << err << "\n" << json;
  EXPECT_NE(json.find("\"epoch\":3"), std::string::npos);
  EXPECT_NE(json.find("\"tenant\":\"acme\""), std::string::npos);
  EXPECT_NE(json.find("\"state\":\"running\""), std::string::npos);
  EXPECT_NE(json.find("\"clock_offset_ns\":-12345"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"job_accept\""), std::string::npos);
  EXPECT_NE(
      json.find("\"citroend_tenant_evals_total{tenant=\\\"acme\\\"}\":5"),
      std::string::npos)
      << json;

  const std::string text = serve::status_text(m);
  EXPECT_NE(text.find("epoch 3"), std::string::npos);
  EXPECT_NE(text.find("DRAINING"), std::string::npos);
  EXPECT_NE(text.find("acme"), std::string::npos);
  EXPECT_NE(text.find("unix:/tmp/p0.sock"), std::string::npos);
}

TEST(ServeDaemon, VersionMismatchDrawsTypedReject) {
  const std::string dir = fresh_dir("daemon_version");
  auto cfg = live_config(dir);
  auto ls = start_server(cfg);

  const int fd = raw_connect(cfg.socket_path);
  ASSERT_GE(fd, 0);
  serve::HelloMsg hello;
  hello.tenant = "skewed";
  hello.version = serve::kProtocolVersion + 7;
  ASSERT_EQ(sandbox::write_frame(fd, serve::encode(hello)),
            sandbox::IoStatus::Ok);
  sandbox::FrameReader reader(fd);
  std::string payload;
  ASSERT_EQ(reader.read(&payload, 10.0), sandbox::IoStatus::Ok);
  serve::RejectMsg rej;
  std::string err;
  ASSERT_TRUE(serve::decode(payload, &rej, &err)) << err;
  EXPECT_EQ(rej.reason, serve::RejectReason::BadRequest);
  EXPECT_NE(rej.message.find("protocol version mismatch"), std::string::npos)
      << rej.message;
  EXPECT_NE(rej.message.find("daemon v"), std::string::npos) << rej.message;
  ::close(fd);
}

TEST(ServeDaemon, InspectReportsTenantsJobsAndFlight) {
  const std::string dir = fresh_dir("daemon_inspect");
  auto cfg = live_config(dir);
  auto ls = start_server(cfg);

  serve::Client client(client_config(cfg.socket_path, "ten-i"));
  const auto id = client.submit(small_spec("random", 10, 21), 20.0);
  ASSERT_TRUE(id.has_value()) << client.error();
  const auto out = client.wait_result(*id, 60.0);
  ASSERT_EQ(out.status, serve::ResultStatus::Ok) << out.error;

  const auto snap = client.inspect();
  ASSERT_TRUE(snap.has_value()) << client.error();
  EXPECT_EQ(snap->epoch, client.epoch());
  EXPECT_FALSE(snap->draining);
  EXPECT_GE(snap->clients, 1u);

  bool tenant_found = false;
  for (const auto& t : snap->tenants) {
    if (t.tenant != "ten-i") continue;
    tenant_found = true;
    // budget evals plus the baseline measurement the session runs first.
    EXPECT_GE(t.evals_total, 10u);
    EXPECT_LE(t.evals_total, 11u);
    EXPECT_EQ(t.jobs_in_flight, 0u) << "job finished: charge released";
    EXPECT_GT(t.max_jobs, 0u);
  }
  EXPECT_TRUE(tenant_found);

  bool job_found = false;
  for (const auto& j : snap->jobs) {
    if (j.id != *id) continue;
    job_found = true;
    EXPECT_EQ(j.tenant, "ten-i");
    EXPECT_EQ(j.state, serve::JobState::Done);
    EXPECT_GE(j.evals_done, 10u);
    EXPECT_EQ(j.budget, 10u);
  }
  EXPECT_TRUE(job_found);

  // The always-on flight recorder saw the accept and the completion.
  bool accept_seen = false, done_seen = false;
  for (const auto& f : snap->flight) {
    if (f.a != *id) continue;
    if (f.kind == "job_accept") accept_seen = true;
    if (f.kind == "job_done") done_seen = true;
  }
  EXPECT_TRUE(accept_seen);
  EXPECT_TRUE(done_seen);

  // Counter values come from one registry snapshot, which always carries
  // the trace-drop counter.
  bool drops_found = false;
  for (const auto& [name, v] : snap->counters)
    if (name == "citroen_trace_dropped_total") drops_found = true;
  EXPECT_TRUE(drops_found);

  // The renderers accept a real snapshot.
  std::string err;
  EXPECT_TRUE(obs::json_well_formed(serve::status_json(*snap), &err)) << err;
  EXPECT_FALSE(serve::status_text(*snap).empty());
}

TEST(ServeDaemon, HttpGetOnWireSocketServesPrometheus) {
  const std::string dir = fresh_dir("daemon_http");
  auto cfg = live_config(dir);
  auto ls = start_server(cfg);

  const int fd = raw_connect(cfg.socket_path);
  ASSERT_GE(fd, 0);
  const char req[] = "GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n";
  ASSERT_EQ(::write(fd, req, sizeof(req) - 1),
            static_cast<ssize_t>(sizeof(req) - 1));
  std::string resp;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(resp.find("HTTP/1.0 200 OK"), std::string::npos)
      << resp.substr(0, 200);
  EXPECT_NE(resp.find("text/plain"), std::string::npos);
  EXPECT_NE(resp.find("citroen_trace_dropped_total"), std::string::npos)
      << "every scrape surfaces trace drops";
}

TEST(ServeClient, HandshakeRejectSurfacesDaemonMessage) {
  // A daemon that rejects the handshake (the version-skew path) must
  // surface its message through error() — what `citroen-cli status`
  // prints before exiting non-zero.
  const std::string dir = fresh_dir("client_reject");
  const std::string path = dir + "/fake.sock";
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listen_fd, 4), 0);
  // Serve EVERY connection: the client retries within its connect window,
  // and an unanswered retry would overwrite the reject with a timeout.
  std::atomic<bool> stop{false};
  std::thread fake([listen_fd, &stop] {
    for (;;) {
      const int conn = ::accept(listen_fd, nullptr, nullptr);
      if (conn < 0) return;
      if (stop.load()) {
        ::close(conn);
        return;
      }
      sandbox::FrameReader reader(conn);
      std::string payload;
      reader.read(&payload, 5.0);
      serve::RejectMsg rej;
      rej.reason = serve::RejectReason::BadRequest;
      rej.message = "protocol version mismatch: client v2, daemon v99";
      sandbox::write_frame(conn, serve::encode(rej));
      ::close(conn);
    }
  });

  serve::ClientConfig cc = client_config(path, "t");
  cc.connect_timeout_seconds = 0.05;  // every attempt draws the reject
  cc.frame_timeout_seconds = 5.0;
  serve::Client client(cc);
  const auto snap = client.inspect();
  EXPECT_FALSE(snap.has_value());
  EXPECT_NE(client.error().find("protocol version mismatch"),
            std::string::npos)
      << client.error();

  stop.store(true);
  const int wake = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ::connect(wake, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  ::close(wake);
  fake.join();
  ::close(listen_fd);
}
