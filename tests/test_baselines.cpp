// Tests for the baseline optimisers: the random forest, the continuous
// BO baselines (TuRBO-/HeSBO-style), and the phase-tuner traces.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/continuous_bo.hpp"
#include "baselines/random_forest.hpp"
#include "baselines/tuners.hpp"
#include "bench_suite/suite.hpp"
#include "sim/machine.hpp"

using namespace citroen;

namespace {

double sphere(const Vec& x) {
  double acc = 0.0;
  for (double v : x) acc += v * v;
  return acc;
}

}  // namespace

TEST(RandomForest, LearnsASimpleFunction) {
  Rng rng(1);
  std::vector<Vec> xs;
  Vec ys;
  for (int i = 0; i < 200; ++i) {
    Vec x = {rng.uniform(), rng.uniform()};
    ys.push_back(x[0] > 0.5 ? 2.0 : -2.0);
    xs.push_back(std::move(x));
  }
  baselines::RandomForest rf;
  rf.fit(xs, ys, rng);
  const auto [lo_mean, lo_var] = rf.predict({0.2, 0.5});
  const auto [hi_mean, hi_var] = rf.predict({0.8, 0.5});
  EXPECT_LT(lo_mean, 0.0);
  EXPECT_GT(hi_mean, 0.0);
  EXPECT_GE(lo_var, 0.0);
  EXPECT_GE(hi_var, 0.0);
}

TEST(RandomForest, VarianceHigherOffDistribution) {
  Rng rng(2);
  std::vector<Vec> xs;
  Vec ys;
  for (int i = 0; i < 150; ++i) {
    Vec x = {rng.uniform(0.0, 0.5)};
    ys.push_back(std::sin(6.0 * x[0]));
    xs.push_back(std::move(x));
  }
  baselines::RandomForest rf;
  rf.fit(xs, ys, rng);
  // Averages over trees still defined away from the data.
  const auto [m, v] = rf.predict({0.9});
  EXPECT_TRUE(std::isfinite(m));
  EXPECT_GE(v, 0.0);
}

TEST(ContinuousBaselines, AllImproveOnSphere) {
  const heuristics::Box box{Vec(8, -3.0), Vec(8, 3.0)};
  const int budget = 120;
  Rng probe(3);
  const double random_ref =
      baselines::run_random_blackbox(box, sphere, budget, 3).best();
  for (const auto& [name, trace] :
       {std::pair{"turbo", baselines::run_turbo(box, sphere, budget, 3)},
        std::pair{"hesbo", baselines::run_hesbo(box, sphere, budget, 3)},
        std::pair{"cmaes",
                  baselines::run_cmaes_blackbox(box, sphere, budget, 3)},
        std::pair{"ga", baselines::run_ga_blackbox(box, sphere, budget, 3)}}) {
    EXPECT_EQ(trace.best_curve.size(), static_cast<std::size_t>(budget))
        << name;
    // Best-so-far curves are monotone non-increasing.
    for (std::size_t i = 1; i < trace.best_curve.size(); ++i)
      EXPECT_LE(trace.best_curve[i], trace.best_curve[i - 1]) << name;
    EXPECT_LT(trace.best(), random_ref * 1.5) << name;  // sane quality
  }
}

TEST(ContinuousBaselines, HesboOptimisesThroughEmbedding) {
  // 40-D sphere with only 5 effective dims: HeSBO's sweet spot.
  const heuristics::Box box{Vec(40, -2.0), Vec(40, 2.0)};
  auto f = [](const Vec& x) {
    double acc = 0.0;
    for (int i = 0; i < 5; ++i) acc += x[static_cast<std::size_t>(i)] *
                                       x[static_cast<std::size_t>(i)];
    return acc;
  };
  const auto t = baselines::run_hesbo(box, f, 100, 7);
  EXPECT_LT(t.best(), f(Vec(40, 1.0)));
}

TEST(PhaseTuners, TracesAreMonotoneAndSized) {
  baselines::PhaseTunerConfig cfg;
  cfg.budget = 15;
  cfg.seed = 11;
  sim::ProgramEvaluator ev(bench_suite::make_program("telecom_adpcm"),
                           sim::amd_zen_model());
  const auto t = baselines::run_ensemble_tuner(ev, cfg);
  EXPECT_EQ(t.speedup_curve.size(), 15u);
  for (std::size_t i = 1; i < t.speedup_curve.size(); ++i)
    EXPECT_GE(t.speedup_curve[i], t.speedup_curve[i - 1]);
}

TEST(PhaseTuners, DeterministicGivenSeed) {
  baselines::PhaseTunerConfig cfg;
  cfg.budget = 10;
  cfg.seed = 21;
  auto run = [&] {
    sim::ProgramEvaluator ev(bench_suite::make_program("network_dijkstra"),
                             sim::arm_a57_model());
    return baselines::run_des_tuner(ev, cfg).speedup_curve;
  };
  EXPECT_EQ(run(), run());
}

TEST(MachinePresets, DifferentModelsDifferentCycles) {
  auto p = bench_suite::make_program("consumer_mad");
  const auto arm = ir::interpret(p, sim::arm_a57_model());
  const auto x86 = ir::interpret(p, sim::amd_zen_model());
  ASSERT_TRUE(arm.ok && x86.ok);
  EXPECT_EQ(arm.ret, x86.ret);        // semantics machine-independent
  EXPECT_NE(arm.cycles, x86.cycles);  // timing machine-dependent
  EXPECT_THROW(sim::machine_by_name("riscv"), std::runtime_error);
}

TEST(BenchSuitePrograms, WorkloadSeedChangesDataNotStructure) {
  const auto a = bench_suite::make_program("spec_xz", 1);
  const auto b = bench_suite::make_program("spec_xz", 2);
  ASSERT_EQ(a.modules.size(), b.modules.size());
  for (std::size_t m = 0; m < a.modules.size(); ++m) {
    EXPECT_EQ(a.modules[m].functions.size(), b.modules[m].functions.size());
    EXPECT_EQ(a.modules[m].globals.size(), b.modules[m].globals.size());
  }
  const auto ra = ir::interpret(a);
  const auto rb = ir::interpret(b);
  ASSERT_TRUE(ra.ok && rb.ok);
  EXPECT_NE(ra.ret, rb.ret);  // different inputs, different outputs
}

TEST(BenchSuitePrograms, MultiModuleHeatIsSpread) {
  // The multi-module allocation experiments need programs where at least
  // two modules carry non-trivial runtime.
  int spread = 0;
  for (const auto& info : bench_suite::benchmark_list()) {
    sim::ProgramEvaluator ev(bench_suite::make_program(info.name),
                             sim::arm_a57_model());
    int heavy = 0;
    for (const auto& [m, frac] : ev.hot_modules()) {
      if (m != "driver" && frac > 0.15) ++heavy;
    }
    if (heavy >= 2) ++spread;
  }
  EXPECT_GE(spread, 8) << "suite lost its multi-module character";
}
