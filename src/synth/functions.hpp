#pragma once
// Synthetic test functions (Table 4.1) with their standard domains, plus
// the real-world task proxies used by the Ch. 4 experiments (see
// DESIGN.md "Substitutions" for what each proxy stands in for).
//
// All objectives are MINIMISED. Reward-style tasks are returned negated.

#include <functional>
#include <string>

#include "heuristics/optimizer.hpp"

namespace citroen::synth {

using Objective = std::function<double(const Vec&)>;

struct Task {
  std::string name;
  heuristics::Box box;
  Objective f;
  double optimum = 0.0;  ///< known best value (for reference only)
};

// ---- synthetic functions ---------------------------------------------------
double ackley(const Vec& x);
double rosenbrock(const Vec& x);
double rastrigin(const Vec& x);
double griewank(const Vec& x);

Task make_synthetic(const std::string& name, std::size_t dim);

// ---- real-world proxies ----------------------------------------------------
/// 14-D push-dynamics toy (sparse reward near the two targets).
Task make_push14();
/// 60-D rover trajectory: 30 B-spline control points over a 2-D cost field.
Task make_rover60();
/// 102-D linear-policy locomotion proxy on a toy hopper dynamical system.
Task make_cheetah102();
/// 36-D NAS surrogate: plateaued quadratic with categorical-ish cells.
Task make_nas36();
/// 180-D weighted-Lasso on synthetic genotype data (coordinate descent).
Task make_lasso180();

/// Resolve by name: "ackley100", "rosenbrock20", ..., "push14",
/// "rover60", "cheetah102", "nas36", "lasso180".
Task make_task(const std::string& spec);

}  // namespace citroen::synth
