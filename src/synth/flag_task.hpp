#pragma once
// Compiler flag-selection task (Sec. 4.2.2 / Fig. 4.4): a fixed canonical
// pass sequence where each position can be enabled (x_i >= 0.5) or
// disabled, embedded in [0,1]^d for continuous BO. The objective is the
// modelled runtime of the chosen benchmark relative to -O3 (lower is
// better; 1.0 == -O3).

#include <memory>

#include "synth/functions.hpp"

namespace citroen::synth {

/// Number of binary flags in the canonical sequence.
std::size_t flag_task_dim();

/// The canonical pass sequence the flags gate.
const std::vector<std::string>& flag_task_sequence();

/// Build the task over `benchmark` (default: the paper's telecom_gsm) on
/// the given machine preset ("x86" mirrors the paper's Threadripper).
Task make_flag_task(const std::string& benchmark = "telecom_gsm",
                    const std::string& machine = "x86");

}  // namespace citroen::synth
