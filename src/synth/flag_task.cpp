#include "synth/flag_task.hpp"

#include "bench_suite/suite.hpp"
#include "passes/pass.hpp"
#include "sim/evaluator.hpp"
#include "sim/machine.hpp"

namespace citroen::synth {

const std::vector<std::string>& flag_task_sequence() {
  // -O3 followed by a second clean-up round: 60 gateable positions, the
  // same order of magnitude as the paper's 82 -O3 flags.
  static const std::vector<std::string> seq = [] {
    std::vector<std::string> s = passes::o3_sequence();
    const std::vector<std::string> extra = {
        "early-cse",     "instcombine",  "simplifycfg", "gvn",
        "licm",          "loop-unroll",  "slp-vectorizer", "dce",
        "reassociate",   "sccp",         "jump-threading", "sink",
        "adce",          "constmerge",   "div-rem-pairs",  "vectorcombine",
        "loop-simplify", "loop-vectorize", "loop-idiom",  "instsimplify",
        "aggressive-instcombine", "simplifycfg", "dce",
    };
    s.insert(s.end(), extra.begin(), extra.end());
    return s;
  }();
  return seq;
}

std::size_t flag_task_dim() { return flag_task_sequence().size(); }

Task make_flag_task(const std::string& benchmark,
                    const std::string& machine) {
  Task t;
  t.name = "flags_" + benchmark;
  const std::size_t d = flag_task_dim();
  t.box = heuristics::Box{Vec(d, 0.0), Vec(d, 1.0)};

  auto evaluator = std::make_shared<sim::ProgramEvaluator>(
      bench_suite::make_program(benchmark), sim::machine_by_name(machine));

  t.f = [evaluator, d](const Vec& x) {
    std::vector<std::string> seq;
    const auto& canonical = flag_task_sequence();
    for (std::size_t i = 0; i < d; ++i) {
      if (x[i] >= 0.5) seq.push_back(canonical[i]);
    }
    sim::SequenceAssignment assign;
    for (const auto& m : evaluator->base_program().modules)
      assign[m.name] = seq;
    const auto out = evaluator->evaluate(assign);
    // Invalid builds (none expected on this task) count as very slow.
    if (!out.valid) return 4.0;
    return out.cycles / evaluator->o3_cycles();
  };
  t.optimum = 0.0;
  return t;
}

}  // namespace citroen::synth
