#include "synth/functions.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "support/rng.hpp"

namespace citroen::synth {

double ackley(const Vec& x) {
  const double n = static_cast<double>(x.size());
  double sum_sq = 0.0, sum_cos = 0.0;
  for (double v : x) {
    sum_sq += v * v;
    sum_cos += std::cos(2.0 * M_PI * v);
  }
  return -20.0 * std::exp(-0.2 * std::sqrt(sum_sq / n)) -
         std::exp(sum_cos / n) + 20.0 + M_E;
}

double rosenbrock(const Vec& x) {
  double acc = 0.0;
  for (std::size_t i = 0; i + 1 < x.size(); ++i) {
    const double a = x[i + 1] - x[i] * x[i];
    const double b = 1.0 - x[i];
    acc += 100.0 * a * a + b * b;
  }
  return acc;
}

double rastrigin(const Vec& x) {
  double acc = 10.0 * static_cast<double>(x.size());
  for (double v : x) acc += v * v - 10.0 * std::cos(2.0 * M_PI * v);
  return acc;
}

double griewank(const Vec& x) {
  double sum = 0.0, prod = 1.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sum += x[i] * x[i] / 4000.0;
    prod *= std::cos(x[i] / std::sqrt(static_cast<double>(i + 1)));
  }
  return sum - prod + 1.0;
}

namespace {

heuristics::Box uniform_box(std::size_t dim, double lo, double hi) {
  return heuristics::Box{Vec(dim, lo), Vec(dim, hi)};
}

}  // namespace

Task make_synthetic(const std::string& name, std::size_t dim) {
  if (name == "ackley")
    return {"ackley" + std::to_string(dim), uniform_box(dim, -5.0, 10.0),
            ackley, 0.0};
  if (name == "rosenbrock")
    return {"rosenbrock" + std::to_string(dim), uniform_box(dim, -5.0, 10.0),
            rosenbrock, 0.0};
  if (name == "rastrigin")
    return {"rastrigin" + std::to_string(dim),
            uniform_box(dim, -5.12, 5.12), rastrigin, 0.0};
  if (name == "griewank")
    return {"griewank" + std::to_string(dim), uniform_box(dim, -10.0, 10.0),
            griewank, 0.0};
  throw std::runtime_error("unknown synthetic function: " + name);
}

Task make_push14() {
  // Two pushers (position, angle, push duration ...) move two objects
  // toward fixed targets; reward is sparse: distance reduction only when
  // a push connects. 14 parameters in [0,1] scaled internally.
  Task t;
  t.name = "push14";
  t.box = uniform_box(14, 0.0, 1.0);
  t.f = [](const Vec& x) {
    auto segment = [&](int base, double ox, double oy, double tx,
                       double ty) {
      // pusher start, direction, and distance
      const double px = 4.0 * x[static_cast<std::size_t>(base)] - 2.0;
      const double py = 4.0 * x[static_cast<std::size_t>(base) + 1] - 2.0;
      const double ang = 2.0 * M_PI * x[static_cast<std::size_t>(base) + 2];
      const double dist = 2.0 * x[static_cast<std::size_t>(base) + 3];
      const double dx = std::cos(ang), dy = std::sin(ang);
      // closest approach of the push ray to the object
      const double relx = ox - px, rely = oy - py;
      const double along = std::clamp(relx * dx + rely * dy, 0.0, dist);
      const double cx = px + along * dx, cy = py + along * dy;
      const double miss = std::hypot(ox - cx, oy - cy);
      double nox = ox, noy = oy;
      if (miss < 0.35) {
        // connected: the object slides along the push direction
        const double carry = std::max(0.0, dist - along);
        nox += dx * carry;
        noy += dy * carry;
      }
      return std::pair<double, double>{nox, noy};
    };
    // object 1 at (0,-1) -> target (2,1); object 2 at (0,1) -> (-2,1)
    auto [o1x, o1y] = segment(0, 0.0, -1.0, 2.0, 1.0);
    auto [o2x, o2y] = segment(4, 0.0, 1.0, -2.0, 1.0);
    // second pushes (3 params each reused from the tail of x)
    auto [p1x, p1y] = segment(8, o1x, o1y, 2.0, 1.0);
    std::pair<double, double> second2 = {o2x, o2y};
    {
      const double px = 4.0 * x[12] - 2.0;
      const double ang = 2.0 * M_PI * x[13];
      const double dx = std::cos(ang), dy = std::sin(ang);
      const double relx = o2x - px, rely = o2y - (-2.0);
      const double along = std::clamp(relx * dx + rely * dy, 0.0, 1.5);
      const double cx = px + along * dx, cy = -2.0 + along * dy;
      if (std::hypot(o2x - cx, o2y - cy) < 0.35) {
        second2 = {o2x + dx * 0.8, o2y + dy * 0.8};
      }
    }
    const double d1 = std::hypot(p1x - 2.0, p1y - 1.0);
    const double d2 = std::hypot(second2.first + 2.0, second2.second - 1.0);
    return d1 + d2;  // minimise remaining distance to the targets
  };
  t.optimum = 0.0;
  return t;
}

Task make_rover60() {
  // 30 control points in [0,1]^2 define a piecewise-linear trajectory
  // from (0,0) to (1,1) through a field of circular obstacles; cost =
  // obstacle penalties + endpoint misses (best reward 5 in the paper; we
  // minimise the negated reward).
  Task t;
  t.name = "rover60";
  t.box = uniform_box(60, 0.0, 1.0);
  // Fixed obstacle layout (deterministic).
  static const std::vector<std::array<double, 3>> obstacles = [] {
    std::vector<std::array<double, 3>> obs;
    Rng rng(1234);
    for (int i = 0; i < 15; ++i) {
      obs.push_back({rng.uniform(0.1, 0.9), rng.uniform(0.1, 0.9),
                     rng.uniform(0.05, 0.12)});
    }
    return obs;
  }();
  t.f = [](const Vec& x) {
    double cost = 0.0;
    double px = 0.0, py = 0.0;
    for (std::size_t i = 0; i <= 30; ++i) {
      const double nx = i < 30 ? x[2 * i] : 1.0;
      const double ny = i < 30 ? x[2 * i + 1] : 1.0;
      // sample the segment against the obstacles
      for (int s = 0; s <= 4; ++s) {
        const double f = s / 4.0;
        const double qx = px + f * (nx - px);
        const double qy = py + f * (ny - py);
        for (const auto& o : obstacles) {
          const double d = std::hypot(qx - o[0], qy - o[1]);
          if (d < o[2]) cost += (o[2] - d) * 20.0;
        }
      }
      cost += 0.05 * std::hypot(nx - px, ny - py);  // path length
      px = nx;
      py = ny;
    }
    // start/end anchoring (start is fixed; the first point should be near
    // the origin for a smooth launch)
    cost += 2.0 * std::hypot(x[0], x[1]);
    return cost - 5.0;  // align with the paper's "best reward 5" scale
  };
  t.optimum = -5.0;
  return t;
}

Task make_cheetah102() {
  // Linear policy a = W s on a toy planar hopper: 6 state dims, 17
  // actuator mixes -> 102 weights. Reward = forward distance - energy.
  Task t;
  t.name = "cheetah102";
  t.box = uniform_box(102, -1.0, 1.0);
  t.f = [](const Vec& w) {
    double pos = 0.0, vel = 0.0, height = 1.0, hvel = 0.0, phase = 0.0,
           energy = 0.0;
    for (int step = 0; step < 60; ++step) {
      const double s[6] = {pos * 0.05, vel, height, hvel, std::sin(phase),
                           std::cos(phase)};
      double torque = 0.0, hop = 0.0;
      for (int a = 0; a < 17; ++a) {
        double act = 0.0;
        for (int k = 0; k < 6; ++k)
          act += w[static_cast<std::size_t>(a * 6 + k)] * s[k];
        act = std::tanh(act);
        torque += (a % 2 == 0 ? act : 0.5 * act);
        hop += (a % 3 == 0 ? act : 0.0);
        energy += 0.002 * act * act;
      }
      torque /= 9.0;
      hop /= 6.0;
      // crude hopper physics
      hvel += 0.3 * hop - 0.15;                    // gravity vs hop thrust
      height = std::max(0.2, height + 0.1 * hvel);
      if (height <= 0.21) hvel = std::abs(hvel) * 0.4;
      const double traction = height < 0.8 ? 1.0 : 0.2;
      vel += traction * 0.4 * torque - 0.05 * vel;
      pos += 0.1 * vel;
      phase += 0.4 + 0.1 * torque;
    }
    return -(pos - energy);  // maximise distance minus energy
  };
  t.optimum = -1e9;
  return t;
}

Task make_nas36() {
  // NAS-Bench-like surrogate: 36 continuous parameters quantised into
  // operation choices; accuracy landscape = smooth base + cell-dependent
  // bumps, giving plateaus and discontinuities like the real benchmark.
  Task t;
  t.name = "nas36";
  t.box = uniform_box(36, 0.0, 1.0);
  t.f = [](const Vec& x) {
    double acc = 0.90;
    for (std::size_t i = 0; i < 36; ++i) {
      const int op = std::min(2, static_cast<int>(x[i] * 3.0));
      const double centred = x[i] - 0.5;
      acc += (op == 1 ? 0.002 : op == 2 ? -0.001 : 0.0005) *
             std::cos(7.0 * static_cast<double>(i));
      acc -= 0.0008 * centred * centred;
    }
    // pairwise interactions between adjacent "edges"
    for (std::size_t i = 0; i + 1 < 36; i += 2) {
      const int a = std::min(2, static_cast<int>(x[i] * 3.0));
      const int b = std::min(2, static_cast<int>(x[i + 1] * 3.0));
      if (a == 1 && b == 1) acc += 0.0015;
      if (a == 2 && b == 2) acc -= 0.002;
    }
    return -acc;  // maximise accuracy
  };
  t.optimum = -1.0;
  return t;
}

Task make_lasso180() {
  // Weighted Lasso on synthetic "genotype" data: X is 96 x 180 with a
  // sparse true signal; parameters are per-feature penalty weights in
  // [0,1]; objective = validation MSE after 25 coordinate-descent steps.
  Task t;
  t.name = "lasso180";
  t.box = uniform_box(180, 0.0, 1.0);

  struct Data {
    std::vector<Vec> x_train, x_val;
    Vec y_train, y_val;
  };
  static const Data data = [] {
    Data d;
    Rng rng(77);
    Vec w_true(180, 0.0);
    for (int i = 0; i < 12; ++i)
      w_true[rng.uniform_index(180)] = rng.uniform(-2.0, 2.0);
    auto gen = [&](std::size_t n, std::vector<Vec>& xs, Vec& ys) {
      for (std::size_t r = 0; r < n; ++r) {
        Vec row(180);
        for (auto& v : row) v = rng.uniform(-1.0, 1.0);
        double y = rng.normal(0.0, 0.05);
        for (std::size_t i = 0; i < 180; ++i) y += row[i] * w_true[i];
        xs.push_back(std::move(row));
        ys.push_back(y);
      }
    };
    gen(96, d.x_train, d.y_train);
    gen(48, d.x_val, d.y_val);
    return d;
  }();

  t.f = [](const Vec& lam) {
    // Coordinate descent for the weighted Lasso.
    Vec w(180, 0.0);
    Vec residual = data.y_train;
    const std::size_t n = data.x_train.size();
    for (int it = 0; it < 25; ++it) {
      for (std::size_t j = 0; j < 180; ++j) {
        double rho = 0.0, zj = 0.0;
        for (std::size_t r = 0; r < n; ++r) {
          const double xij = data.x_train[r][j];
          rho += xij * (residual[r] + xij * w[j]);
          zj += xij * xij;
        }
        const double penalty = 4.0 * lam[j] * static_cast<double>(n) / 96.0;
        double nw = 0.0;
        if (rho > penalty) nw = (rho - penalty) / zj;
        if (rho < -penalty) nw = (rho + penalty) / zj;
        const double delta = nw - w[j];
        if (delta != 0.0) {
          for (std::size_t r = 0; r < n; ++r)
            residual[r] -= delta * data.x_train[r][j];
          w[j] = nw;
        }
      }
    }
    double mse = 0.0;
    for (std::size_t r = 0; r < data.x_val.size(); ++r) {
      double pred = 0.0;
      for (std::size_t j = 0; j < 180; ++j) pred += data.x_val[r][j] * w[j];
      const double e = pred - data.y_val[r];
      mse += e * e;
    }
    return mse / static_cast<double>(data.x_val.size());
  };
  t.optimum = 0.0;
  return t;
}

Task make_task(const std::string& spec) {
  if (spec == "push14") return make_push14();
  if (spec == "rover60") return make_rover60();
  if (spec == "cheetah102") return make_cheetah102();
  if (spec == "nas36") return make_nas36();
  if (spec == "lasso180") return make_lasso180();
  // "<fn><dim>" form.
  for (const char* fn : {"ackley", "rosenbrock", "rastrigin", "griewank"}) {
    const std::string prefix(fn);
    if (spec.rfind(prefix, 0) == 0) {
      const std::size_t dim =
          static_cast<std::size_t>(std::stoi(spec.substr(prefix.size())));
      return make_synthetic(prefix, dim);
    }
  }
  throw std::runtime_error("unknown task: " + spec);
}

}  // namespace citroen::synth
