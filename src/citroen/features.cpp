#include "citroen/features.hpp"

#include <cmath>

namespace citroen::core {

StatsFeatures::StatsFeatures()
    : keys_(passes::PassRegistry::instance().all_stat_keys()) {}

Vec StatsFeatures::extract(const passes::StatsRegistry& stats) const {
  Vec out(keys_.size(), 0.0);
  for (std::size_t i = 0; i < keys_.size(); ++i)
    out[i] = std::log1p(static_cast<double>(stats.get(keys_[i])));
  return out;
}

const std::vector<std::string>& AutophaseFeatures::names() {
  static const std::vector<std::string> n = [] {
    std::vector<std::string> out;
    // One slot per opcode (including never-counted pseudo ops, harmless).
    for (int op = 0; op <= static_cast<int>(ir::Opcode::Phi); ++op)
      out.push_back(std::string("n_") +
                    ir::opcode_name(static_cast<ir::Opcode>(op)));
    out.push_back("n_blocks");
    out.push_back("n_functions");
    out.push_back("n_instructions");
    out.push_back("n_vector_typed");
    return out;
  }();
  return n;
}

Vec AutophaseFeatures::extract(const ir::Module& m) {
  Vec out(dim(), 0.0);
  const std::size_t op_slots = static_cast<std::size_t>(ir::Opcode::Phi) + 1;
  double blocks = 0.0, instrs = 0.0, vectors = 0.0;
  for (const auto& f : m.functions) {
    for (const auto& bb : f.blocks) {
      bool live = false;
      for (ir::ValueId id : bb.insts) {
        const ir::Instr& in = f.instr(id);
        if (in.dead()) continue;
        live = true;
        out[static_cast<std::size_t>(in.op)] += 1.0;
        instrs += 1.0;
        if (in.type.is_vector()) vectors += 1.0;
      }
      if (live) blocks += 1.0;
    }
  }
  out[op_slots + 0] = blocks;
  out[op_slots + 1] = static_cast<double>(m.functions.size());
  out[op_slots + 2] = instrs;
  out[op_slots + 3] = vectors;
  for (auto& v : out) v = std::log1p(v);
  return out;
}

Vec SequenceFeatures::extract(const heuristics::Sequence& s) const {
  const std::size_t np = static_cast<std::size_t>(num_passes_);
  Vec out(2 * np, 0.0);
  for (std::size_t i = 0; i < s.size(); ++i) {
    const std::size_t p = static_cast<std::size_t>(s[i]);
    if (p >= np) continue;
    out[p] += 1.0;
    if (out[np + p] == 0.0)
      out[np + p] =
          static_cast<double>(i + 1) / static_cast<double>(max_len_);
  }
  return out;
}

}  // namespace citroen::core
