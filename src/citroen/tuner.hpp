#pragma once
// CITROEN (Ch. 5): BO-based compiler phase ordering guided by
// compilation statistics.
//
// Each iteration:
//   1. pick the module with the best expected payoff (adaptive budget
//      allocation across the program's hot modules),
//   2. generate candidate pass sequences with the discrete heuristics
//      (1+lambda ES seeded from the incumbent, a discrete GA, and random
//      sequences — the AIBO recipe adapted to categorical space),
//   3. *compile* every candidate (cheap) to collect its statistics
//      feature vector; identical binaries are resolved from the cache for
//      free,
//   4. score candidates with the acquisition function over the GP cost
//      model fit on (statistics, measured runtime) pairs, plus a coverage
//      bonus that steers away from already-observed feature points
//      (Sec. 5.3.4's fix for the sparse feature space of Table 5.2),
//   5. measure only the winning candidate (one runtime measurement),
//      update the model, the heuristics, and the allocation bandit.

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "af/acquisition.hpp"
#include "citroen/features.hpp"
#include "gp/gp.hpp"
#include "sim/evaluator.hpp"

namespace citroen::core {

struct CitroenConfig {
  int budget = 100;            ///< runtime measurements
  int initial_random = 10;     ///< random sequences measured up-front
  int candidates_per_iter = 16;///< compile-only candidates per iteration
  int max_seq_len = 60;        ///< paper: 120 over 76 passes; scaled
  double hot_threshold = 0.9;  ///< tune modules covering this runtime share
  int max_hot_modules = 3;

  af::AfConfig af;             ///< default UCB beta=1.96
  gp::GpConfig gp;
  int refit_period = 4;        ///< full hyper-refit every k iterations
  /// On refactor-only rounds with an unchanged active feature set, freeze
  /// the input/output transforms, append-transform only the new
  /// observations and let the GP extend its Cholesky factor rank-one
  /// (O(n^2)) instead of refitting from scratch (O(n^3)).
  bool incremental_gp = true;

  enum class Features { Stats, Autophase, RawSequence };
  Features features = Features::Stats;   ///< Fig. 5.9 alternatives

  bool coverage_af = true;     ///< ablation: disable the coverage bonus
  double coverage_weight = 0.25;
  bool heuristic_generator = true;  ///< ablation: random-only candidates
  bool adaptive_allocation = true;  ///< ablation: round-robin modules
  double bandit_explore = 0.5;

  /// Pass names forming the search space (default: the full registry;
  /// `passes::legacy_pass_names()` models the older compiler of
  /// Fig. 5.10).
  std::vector<std::string> pass_space;

  /// Warm-start observations from a previous run on another program
  /// (the thesis's Sec. 6.3.3 future-work direction: exploiting
  /// program-independent pass correlations). Feature dimensionality must
  /// match this tuner's configuration (same feature kind and module
  /// count); mismatching entries are ignored.
  std::vector<std::pair<Vec, double>> warm_start;

  /// Transfer-corpus winners: (module name, pass-name sequence) pairs
  /// measured by the FIRST phase-1 attempts in place of random
  /// sequences. Names that no longer resolve (unknown module or pass)
  /// are dropped. Every seed is validated by an ordinary measurement
  /// before it can become an incumbent, so a stale or mismatched seed
  /// can waste budget but never produce a wrong answer. An empty list
  /// keeps phase 1 byte-identical to a run without a corpus: seeded
  /// attempts consume no RNG draws and leave the round-robin cursor
  /// untouched.
  std::vector<std::pair<std::string, std::vector<std::string>>>
      seed_sequences;

  std::uint64_t seed = 1;
};

struct TuneResult {
  double best_speedup = 0.0;   ///< over -O3
  sim::SequenceAssignment best_assignment;
  Vec speedup_curve;           ///< best-so-far after each measurement
  std::map<std::string, int> measurements_per_module;
  int measurements = 0;
  int compiles = 0;
  int cache_hits = 0;          ///< identical-binary reuses
  int invalid = 0;             ///< builds rejected by verify/difftest
  /// Invalid evaluations per failure class ("crash", "hang",
  /// "miscompile", "noisy-rejected", "verifier") — the final report's
  /// failure breakdown.
  std::map<std::string, int> failure_counts;
  int quarantined_skipped = 0; ///< candidates dropped via the quarantine set
  int gp_fit_failures = 0;     ///< cost-model refits that had to be discarded
  int random_fallback_rounds = 0;  ///< iterations run without a model
  int feature_collisions = 0;  ///< distinct binaries, identical features
  double model_seconds = 0.0;
  double compile_seconds = 0.0;
  double measure_seconds = 0.0;
  /// (feature name, ARD relevance = 1/lengthscale), descending — the
  /// Table 5.5 ranking of impactful compilation statistics.
  std::vector<std::pair<std::string, double>> stat_relevance;
  /// Every (feature, normalised runtime) observation gathered during the
  /// run; feed as `warm_start` to transfer knowledge to another program.
  std::vector<std::pair<Vec, double>> observations;
};

class CitroenTuner {
 public:
  /// Works against any `sim::Evaluator` — the plain `ProgramEvaluator`
  /// or the hardened `RobustEvaluator` (whose quarantine set the
  /// candidate generators consult via `is_quarantined`).
  CitroenTuner(sim::Evaluator& evaluator, CitroenConfig config);
  ~CitroenTuner();

  /// One-shot convenience: start() + step() to exhaustion + finish().
  TuneResult run();

  // ---- stepwise API (crash-safe runners) --------------------------------
  // The same search, advanced one unit at a time so a runner can
  // checkpoint, honour a deadline, or stop between steps. run() is
  // byte-identical to driving these by hand.

  /// Reset to a fresh run (applies warm-start observations).
  void start();
  /// Advance one unit — one phase-1 random attempt or one phase-2
  /// model-guided iteration. Returns false once the budget/iteration
  /// limits are exhausted (the run is complete).
  bool step();
  /// Assemble the result from the current state. Idempotent and valid
  /// mid-run, so an interrupted run still reports its best-so-far.
  TuneResult finish() const;
  bool started() const { return impl_ != nullptr; }

  /// Serialize/restore the complete search state — RNG stream, per-module
  /// heuristics, model training set, GP factorisation, transforms,
  /// result-so-far — such that a restored tuner continues byte-identically
  /// to one that never stopped. load_state() implies start().
  void save_state(persist::Writer& w) const;
  void load_state(persist::Reader& r);

  /// Deadline-aware degradation hook: while the callback returns true,
  /// full hyper-parameter refits are skipped (cheap refactor-only fits
  /// keep running) so a run close to its wall-clock deadline still
  /// finishes in-flight work. Never changes results when the callback
  /// returns false throughout.
  void set_skip_hyper_refits(std::function<bool()> skip) {
    skip_hyper_refits_ = std::move(skip);
  }

  /// Modules selected for tuning (after hot-module profiling).
  const std::vector<std::string>& tuned_modules() const { return modules_; }

 private:
  struct Impl;

  sim::Evaluator& eval_;
  CitroenConfig config_;
  std::vector<std::string> modules_;
  std::function<bool()> skip_hyper_refits_;
  std::unique_ptr<Impl> impl_;
};

/// Hot-module selection (Sec. 5.3.1): the modules a CitroenTuner built
/// with `config` would tune on `evaluator` — cover `hot_threshold` of
/// runtime, cap at `max_hot_modules`, never the dispatch-only driver,
/// sorted by name. Exposed so the transfer corpus can probe exactly the
/// modules the tuner will tune before the tuner is constructed.
std::vector<std::string> select_hot_modules(const sim::Evaluator& evaluator,
                                            const CitroenConfig& config);

/// Serialization of a finished result (the `complete` checkpoint stores
/// it so a resumed-but-finished run returns without recomputation).
void put(persist::Writer& w, const TuneResult& r);
void get(persist::Reader& r, TuneResult& out);

}  // namespace citroen::core
