#include "citroen/tuner.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "heuristics/des.hpp"
#include "heuristics/ga.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "persist/codec.hpp"
#include "support/timer.hpp"
#include "support/transforms.hpp"

namespace citroen::core {

using heuristics::Sequence;

namespace {

/// Quantised hash of a feature vector (collision detection, Table 5.2).
std::uint64_t feature_hash(const Vec& f) {
  std::uint64_t h = 1469598103934665603ULL;
  for (double v : f) {
    const std::int64_t q = static_cast<std::int64_t>(std::llround(v * 1e6));
    for (int b = 0; b < 8; ++b) {
      h ^= static_cast<std::uint8_t>(q >> (8 * b));
      h *= 1099511628211ULL;
    }
  }
  return h;
}

std::vector<std::string> to_names(const Sequence& s,
                                  const std::vector<std::string>& space) {
  std::vector<std::string> out;
  out.reserve(s.size());
  for (int p : s) out.push_back(space[static_cast<std::size_t>(p)]);
  return out;
}

struct ModuleState {
  std::string name;
  double hot_fraction = 0.0;
  Sequence incumbent;             ///< best sequence found for this module
  bool has_incumbent = false;     ///< false: the module stays at -O3
  heuristics::DesSequence des;
  heuristics::GaSequence ga;
  int measurements = 0;
  double gain = 0.0;              ///< smoothed recent improvement

  ModuleState(std::string n, double frac, int num_passes, int max_len)
      : name(std::move(n)),
        hot_fraction(frac),
        des(num_passes, max_len),
        ga(num_passes, max_len) {}
};

const std::string kJoint = "<joint>";

}  // namespace

// ---- TuneResult serialization ----------------------------------------------

void put(persist::Writer& w, const TuneResult& r) {
  w.f64(r.best_speedup);
  sim::put(w, r.best_assignment);
  persist::put(w, r.speedup_curve);
  persist::put(w, r.measurements_per_module);
  w.i32(r.measurements);
  w.i32(r.compiles);
  w.i32(r.cache_hits);
  w.i32(r.invalid);
  persist::put(w, r.failure_counts);
  w.i32(r.quarantined_skipped);
  w.i32(r.gp_fit_failures);
  w.i32(r.random_fallback_rounds);
  w.i32(r.feature_collisions);
  w.f64(r.model_seconds);
  w.f64(r.compile_seconds);
  w.f64(r.measure_seconds);
  w.u64(r.stat_relevance.size());
  for (const auto& [name, rel] : r.stat_relevance) {
    w.str(name);
    w.f64(rel);
  }
  w.u64(r.observations.size());
  for (const auto& [f, y] : r.observations) {
    persist::put(w, f);
    w.f64(y);
  }
}

void get(persist::Reader& r, TuneResult& out) {
  out = TuneResult{};
  out.best_speedup = r.f64();
  sim::get(r, out.best_assignment);
  persist::get(r, out.speedup_curve);
  persist::get(r, out.measurements_per_module);
  out.measurements = r.i32();
  out.compiles = r.i32();
  out.cache_hits = r.i32();
  out.invalid = r.i32();
  persist::get(r, out.failure_counts);
  out.quarantined_skipped = r.i32();
  out.gp_fit_failures = r.i32();
  out.random_fallback_rounds = r.i32();
  out.feature_collisions = r.i32();
  out.model_seconds = r.f64();
  out.compile_seconds = r.f64();
  out.measure_seconds = r.f64();
  const std::uint64_t nrel = r.u64();
  out.stat_relevance.reserve(nrel);
  for (std::uint64_t i = 0; i < nrel; ++i) {
    std::string name = r.str();
    const double rel = r.f64();
    out.stat_relevance.emplace_back(std::move(name), rel);
  }
  const std::uint64_t nobs = r.u64();
  out.observations.reserve(nobs);
  for (std::uint64_t i = 0; i < nobs; ++i) {
    Vec f;
    persist::get(r, f);
    const double y = r.f64();
    out.observations.emplace_back(std::move(f), y);
  }
}

// ---- the search state, one step at a time ----------------------------------

struct CitroenTuner::Impl {
  enum class Phase : std::uint8_t { InitialRandom = 0, ModelGuided = 1 };

  sim::Evaluator& eval;
  const CitroenConfig& config;
  const std::vector<std::string>& modules;
  const std::function<bool()>& skip_hyper_refits;

  // Deterministic plumbing, rebuilt from the config on construction and
  // never serialized.
  int num_passes;
  StatsFeatures stats_feat;
  SequenceFeatures seq_feat;
  bool need_program;
  std::vector<std::string> feature_names;
  std::size_t feat_dim;
  /// Corpus seeds resolved to (index into mods, pass ids). Consumed by
  /// the first phase-1 attempts; the cursor is p1_attempts itself, so
  /// resume needs no extra checkpoint state.
  std::vector<std::pair<std::size_t, Sequence>> seeds;

  // Search state (everything below is checkpointed).
  Phase phase = Phase::InitialRandom;
  Rng rng;
  std::vector<ModuleState> mods;
  std::vector<Vec> data_x;
  Vec data_y;
  std::unordered_map<std::uint64_t, double> measured_hash;  // binary -> y
  std::unordered_set<std::uint64_t> observed_features;
  double best_y = 1.0;  ///< normalised runtime; -O3 (1.0) always available
  double model_seconds = 0.0;
  TuneResult result;
  int budget_used = 0;
  std::size_t mod_rr = 0;   ///< phase-1 round-robin cursor
  int p1_attempts = 0;      ///< phase-1 attempt counter (safety valve)
  int iter = 0;             ///< phase-2 iteration counter
  int stall = 0;            ///< iterations without a new measurement
  std::size_t fitted_points = 0;
  std::vector<std::size_t> active;
  std::unique_ptr<gp::GaussianProcess> model;
  InputScaler scaler;
  YeoJohnson yj;
  std::vector<Vec> unit_x;  ///< projected+scaled copies of data_x
  Vec ty;                   ///< transformed copies of data_y

  Stopwatch model_clock;  ///< scratch timer, not state

  Impl(sim::Evaluator& e, const CitroenConfig& c,
       const std::vector<std::string>& m, const std::function<bool()>& skip)
      : eval(e),
        config(c),
        modules(m),
        skip_hyper_refits(skip),
        num_passes(static_cast<int>(c.pass_space.size())),
        seq_feat(num_passes, c.max_seq_len),
        need_program(c.features == CitroenConfig::Features::Autophase),
        rng(c.seed) {
    // Per-module heuristic state.
    // One arm per tuned module, plus a "joint" arm whose candidates apply
    // the same sequence to every tuned module (the classic whole-program
    // search the baselines perform). The joint arm captures correlated
    // wins cheaply; the per-module arms refine beyond them.
    std::map<std::string, double> frac;
    for (const auto& [n, f] : eval.hot_modules()) frac[n] = f;
    for (const auto& name : modules)
      mods.emplace_back(name, frac[name], num_passes, config.max_seq_len);
    if (modules.size() > 1)
      mods.emplace_back(kJoint, 1.0, num_passes, config.max_seq_len);

    // Feature extraction plumbing.
    for (const auto& mod : modules) {
      const std::vector<std::string>* base = nullptr;
      std::vector<std::string> seq_names;
      if (config.features == CitroenConfig::Features::Stats) {
        base = &stats_feat.keys();
      } else if (config.features == CitroenConfig::Features::Autophase) {
        base = &AutophaseFeatures::names();
      } else {
        for (int p = 0; p < num_passes; ++p)
          seq_names.push_back(
              "count_" + config.pass_space[static_cast<std::size_t>(p)]);
        for (int p = 0; p < num_passes; ++p)
          seq_names.push_back(
              "pos_" + config.pass_space[static_cast<std::size_t>(p)]);
        base = &seq_names;
      }
      for (const auto& k : *base) feature_names.push_back(mod + "/" + k);
    }
    feat_dim = feature_names.size();

    // Warm-start transfer: seed the model with observations from another
    // program's run (dimensions must match; see CitroenConfig::warm_start).
    for (const auto& [wf, wy] : config.warm_start) {
      if (wf.size() == feat_dim) {
        data_x.push_back(wf);
        data_y.push_back(wy);
        observed_features.insert(feature_hash(wf));
      }
    }

    // Corpus seed sequences: resolve names against this run's modules and
    // pass space; entries that no longer resolve are dropped (they would
    // only have been measured anyway, never trusted unmeasured).
    for (const auto& [mod_name, pass_names] : config.seed_sequences) {
      std::size_t mi = mods.size();
      for (std::size_t i = 0; i < mods.size(); ++i)
        if (mods[i].name == mod_name) mi = i;
      if (mi == mods.size()) continue;
      Sequence s;
      for (const auto& pn : pass_names)
        for (int p = 0; p < num_passes; ++p)
          if (config.pass_space[static_cast<std::size_t>(p)] == pn) {
            s.push_back(p);
            break;
          }
      if (s.empty()) continue;
      if (static_cast<int>(s.size()) > config.max_seq_len)
        s.resize(static_cast<std::size_t>(config.max_seq_len));
      seeds.emplace_back(mi, std::move(s));
    }
  }

  // Modules without an adopted incumbent stay at the evaluator's -O3
  // default (absent from the assignment map). The joint pseudo-target
  // applies the candidate to every tuned module.
  sim::SequenceAssignment assignment_for(const std::string& target,
                                         const Sequence& candidate) const {
    sim::SequenceAssignment a;
    for (const auto& ms : mods) {
      if (ms.name == kJoint) continue;
      if (target == kJoint || ms.name == target) {
        a[ms.name] = to_names(candidate, config.pass_space);
      } else if (ms.has_incumbent) {
        a[ms.name] = to_names(ms.incumbent, config.pass_space);
      }
    }
    return a;
  }

  Vec extract_features(const sim::CompileOutcome& co,
                       const sim::SequenceAssignment& assign) const {
    Vec f;
    f.reserve(feat_dim);
    for (const auto& mname : modules) {
      Vec part;
      switch (config.features) {
        case CitroenConfig::Features::Stats: {
          const auto it = co.module_stats.find(mname);
          part = stats_feat.extract(it == co.module_stats.end()
                                        ? passes::StatsRegistry{}
                                        : it->second);
          break;
        }
        case CitroenConfig::Features::Autophase: {
          const ir::Module* m =
              co.program ? co.program->find_module(mname) : nullptr;
          part = m ? AutophaseFeatures::extract(*m)
                   : Vec(AutophaseFeatures::dim(), 0.0);
          break;
        }
        case CitroenConfig::Features::RawSequence: {
          Sequence s;
          const auto it = assign.find(mname);
          if (it != assign.end()) {
            for (const auto& pname : it->second) {
              for (int p = 0; p < num_passes; ++p) {
                if (config.pass_space[static_cast<std::size_t>(p)] == pname)
                  s.push_back(p);
              }
            }
          }
          part = seq_feat.extract(s);
          break;
        }
      }
      f.insert(f.end(), part.begin(), part.end());
    }
    return f;
  }

  void record(const std::string& target, const Sequence& cand,
              const Vec& features, double y, bool counts_budget) {
    if (counts_budget) {
      result.speedup_curve.push_back(
          std::max(result.speedup_curve.empty()
                       ? 0.0
                       : result.speedup_curve.back(),
                   1.0 / y));
      ++result.measurements_per_module[target];
    }
    data_x.push_back(features);
    data_y.push_back(y);
    observed_features.insert(feature_hash(features));
    for (auto& ms : mods) {
      if (ms.name != target) continue;
      ms.des.tell(cand, y);
      ms.ga.tell(cand, y);
      if (counts_budget) ++ms.measurements;
      if (y < best_y) {
        const double gain = (best_y - y) / best_y;
        ms.gain = 0.5 * ms.gain + 0.5 * gain;
        best_y = y;
        result.best_assignment = assignment_for(target, cand);
        if (target == kJoint) {
          // A joint win re-seeds every per-module incumbent.
          for (auto& other : mods) {
            if (other.name == kJoint) continue;
            other.incumbent = cand;
            other.has_incumbent = true;
          }
        }
        ms.incumbent = cand;
        ms.has_incumbent = true;
      } else {
        ms.gain *= 0.8;
      }
    }
  }

  bool measure(const std::string& target, const Sequence& cand,
               const Vec& features, std::uint64_t binary_hash) {
    const auto out = eval.evaluate(assignment_for(target, cand));
    double y;
    if (!out.valid) {
      ++result.invalid;
      ++result.failure_counts[sim::failure_kind_name(out.failure)];
      y = 4.0;  // a rejected build is treated as a very slow binary
    } else {
      y = 1.0 / out.speedup;
    }
    measured_hash[binary_hash] = y;
    record(target, cand, features, y, /*counts_budget=*/!out.cache_hit);
    if (out.cache_hit) ++result.cache_hits;
    return !out.cache_hit;
  }

  // The raw feature space is wide (stats vocabulary x modules) but most
  // counters never move for a given program; the model is fit only on
  // the *active* dimensions (those with observed variance), which makes
  // the ARD fit both sharper and cheaper.
  void recompute_active() {
    active.clear();
    for (std::size_t d = 0; d < feat_dim; ++d) {
      const double first = data_x[0][d];
      for (const auto& f : data_x) {
        if (f[d] != first) {
          active.push_back(d);
          break;
        }
      }
    }
    if (active.empty()) active.push_back(0);
  }

  Vec project(const Vec& f) const {
    Vec out(active.size());
    for (std::size_t i = 0; i < active.size(); ++i) out[i] = f[active[i]];
    return out;
  }

  // ---- phase 1: random initial design -----------------------------------
  /// One random attempt; false when the phase is over.
  bool step_initial_random() {
    if (budget_used >= std::min(config.initial_random, config.budget) ||
        p1_attempts >= config.budget * 20)
      return false;
    // The first attempts measure corpus-transferred seeds instead of
    // random sequences. Seeded attempts consume no RNG draws and leave
    // the round-robin cursor alone, so with no seeds this phase is
    // byte-identical to a corpus-free build, and the seed cursor
    // (p1_attempts) is already checkpointed.
    const auto seed_ix = static_cast<std::size_t>(p1_attempts);
    ++p1_attempts;
    ModuleState* msp;
    Sequence cand;
    if (seed_ix < seeds.size()) {
      msp = &mods[seeds[seed_ix].first];
      cand = seeds[seed_ix].second;
    } else {
      msp = &mods[mod_rr % mods.size()];
      ++mod_rr;
      cand = heuristics::random_sequence(num_passes, config.max_seq_len, rng);
    }
    auto& ms = *msp;
    const auto assign = assignment_for(ms.name, cand);
    if (eval.is_quarantined(assign)) {
      ++result.quarantined_skipped;
      return true;
    }
    const auto co = eval.compile(assign, need_program);
    ++result.compiles;
    if (!co.valid) return true;
    const Vec features = extract_features(co, assign);
    if (measure(ms.name, cand, features, co.binary_hash)) ++budget_used;
    return true;
  }

  // ---- phase 2: model-guided search --------------------------------------
  /// One full iteration (fit, select, propose, compile, measure winner);
  /// false when the budget or the iteration safety valve is exhausted.
  bool step_model_guided() {
    if (budget_used >= config.budget || iter >= config.budget * 10 ||
        data_x.empty())
      return false;
    ++iter;
    // Fit the cost model (skip the refit when no new data arrived). A
    // refit can fail numerically (degenerate kernel matrix, non-finite
    // likelihood); the tuner then discards the model and degrades to
    // random proposals for the round instead of dying mid-run.
    model_clock.reset();
    // "model_update" brackets exactly the regions model_clock charges to
    // model_seconds, so fig5_12's span-derived breakdown matches the
    // tuner's own accounting (gp_fit spans nest inside it).
    if (obs::trace_enabled()) obs::emit('B', "model_update", "tuner");
    if (data_x.size() != fitted_points || !model) {
      const std::vector<std::size_t> prev_active = active;
      recompute_active();
      bool hyper_round = iter % config.refit_period == 1 ||
                         active.size() != prev_active.size();
      // Deadline degradation: with the wall clock nearly spent, an
      // optional Adam hyper-fit is the first work to shed. Skipping it
      // only switches which fit path runs, so a checkpoint taken at the
      // next step boundary stays exactly replayable.
      if (hyper_round && skip_hyper_refits && skip_hyper_refits())
        hyper_round = false;
      bool fitted = false;
      // Incremental refresh (refactor-only rounds with an unchanged
      // active set): freeze the input/output transforms, transform only
      // the observations appended since the last fit, and let the GP
      // extend its Cholesky factor rank-one instead of refitting.
      if (config.incremental_gp && model && !hyper_round &&
          fitted_points > 0 && data_x.size() > fitted_points &&
          active == prev_active && unit_x.size() == fitted_points) {
        for (std::size_t i = unit_x.size(); i < data_x.size(); ++i)
          unit_x.push_back(scaler.to_unit(project(data_x[i])));
        while (ty.size() < data_y.size())
          ty.push_back(yj.transform(data_y[ty.size()]));
        model->set_fit_hypers(false);
        try {
          model->fit(unit_x, ty);
          if (!std::isfinite(model->log_marginal_likelihood()))
            throw std::runtime_error("non-finite log marginal likelihood");
          fitted_points = data_x.size();
          fitted = true;
        } catch (const std::exception&) {
          ++result.gp_fit_failures;
          model.reset();
        }
      }
      if (!fitted) {
        std::vector<Vec> px;
        px.reserve(data_x.size());
        for (const auto& f : data_x) px.push_back(project(f));
        scaler.fit(px);
        unit_x.clear();
        unit_x.reserve(px.size());
        for (const auto& f : px) unit_x.push_back(scaler.to_unit(f));
        yj.fit(data_y);
        ty = yj.transform(data_y);
        if (!model || active.size() != prev_active.size())
          model = std::make_unique<gp::GaussianProcess>(active.size(),
                                                        config.gp);
        // Full hyper-parameter refit only every `refit_period` iterations;
        // in between, the learned hypers are kept and only the Cholesky
        // factorisation is refreshed with the new data.
        model->set_fit_hypers(hyper_round);
        try {
          model->fit(unit_x, ty);
          if (!std::isfinite(model->log_marginal_likelihood()))
            throw std::runtime_error("non-finite log marginal likelihood");
          fitted_points = data_x.size();
        } catch (const std::exception&) {
          ++result.gp_fit_failures;
          model.reset();
        }
      }
    }
    std::unique_ptr<af::Acquisition> acq;
    if (model) {
      double best_ty = ty[0];
      for (double v : ty) best_ty = std::min(best_ty, v);
      acq = std::make_unique<af::Acquisition>(model.get(), config.af,
                                              best_ty);
    } else {
      ++result.random_fallback_rounds;
    }
    model_seconds += model_clock.seconds();
    if (obs::trace_enabled()) obs::emit('E', "model_update", "tuner");

    // Module selection: UCB bandit over expected payoff.
    std::size_t chosen = 0;
    if (config.adaptive_allocation) {
      double best_score = -1e300;
      double total = 0.0;
      for (const auto& ms : mods) total += ms.measurements + 1.0;
      for (std::size_t i = 0; i < mods.size(); ++i) {
        const auto& ms = mods[i];
        const double explore =
            config.bandit_explore *
            std::sqrt(std::log(total + 1.0) / (ms.measurements + 1.0));
        const double score = ms.hot_fraction * (ms.gain + explore);
        if (score > best_score) {
          best_score = score;
          chosen = i;
        }
      }
    } else {
      chosen = static_cast<std::size_t>(iter) % mods.size();
    }
    auto& ms = mods[chosen];

    // Candidate generation (Sec. 5.3.5). When recent iterations kept
    // hitting already-measured binaries, lean harder on fresh random
    // sequences to escape the collapsed neighbourhood.
    std::vector<Sequence> cands;
    if (config.heuristic_generator && stall < 3) {
      OBS_SPAN("es_ask", "tuner");
      const int per = std::max(1, config.candidates_per_iter / 3);
      for (auto& c : ms.des.ask(per, rng)) cands.push_back(std::move(c));
      for (auto& c : ms.ga.ask(per, rng)) cands.push_back(std::move(c));
      for (int i = 0; i < config.candidates_per_iter - 2 * per; ++i)
        cands.push_back(heuristics::random_sequence(
            num_passes, config.max_seq_len, rng));
    } else {
      for (int i = 0; i < config.candidates_per_iter; ++i)
        cands.push_back(heuristics::random_sequence(
            num_passes, config.max_seq_len, rng));
    }

    // Compile all candidates; score with AF + coverage. The batch of
    // assignments is prefetched first (compile-only), so the prefix
    // cache compiles shared-prefix pipelines concurrently; the serial
    // loop below then resolves each compile from the warm cache with
    // results identical to compiling serially.
    std::vector<sim::SequenceAssignment> assigns;
    assigns.reserve(cands.size());
    for (const auto& cand : cands)
      assigns.push_back(assignment_for(ms.name, cand));
    eval.prefetch(assigns, /*with_measure=*/false);

    struct Scored {
      Sequence cand;
      Vec features;
      std::uint64_t hash;
      double score;
    };
    std::vector<Scored> pool;
    for (std::size_t ci = 0; ci < cands.size(); ++ci) {
      auto& cand = cands[ci];
      const auto& assign = assigns[ci];
      // Known deterministic failures (from the hardened evaluator's
      // quarantine set) are not worth a compile, let alone a measurement.
      if (eval.is_quarantined(assign)) {
        ++result.quarantined_skipped;
        continue;
      }
      const auto co = eval.compile(assign, need_program);
      ++result.compiles;
      if (!co.valid) continue;
      Vec features = extract_features(co, assign);

      // Identical binary already measured: learn for free, skip selection.
      // The free data is capped so degenerate programs (where most random
      // sequences collapse to few binaries) cannot blow up the GP fit.
      const auto known = measured_hash.find(co.binary_hash);
      if (known != measured_hash.end()) {
        if (data_x.size() < static_cast<std::size_t>(4 * config.budget)) {
          record(ms.name, cand, features, known->second,
                 /*counts_budget=*/false);
        }
        ++result.cache_hits;
        continue;
      }

      model_clock.reset();
      if (obs::trace_enabled()) obs::emit('B', "acq_score", "tuner");
      double score;
      const std::uint64_t fh = feature_hash(features);
      if (observed_features.count(fh)) ++result.feature_collisions;
      if (acq) {
        const Vec u = scaler.to_unit(project(features));
        score = acq->value(u);
        if (config.coverage_af) {
          // Coverage bonus: distance to the nearest observed feature point
          // (unit scale), pushing sampling into unobserved statistics
          // regions; zero for exact collisions.
          double nearest = 1e300;
          for (const auto& o : unit_x) {
            double d2 = 0.0;
            for (std::size_t k = 0; k < u.size(); ++k) {
              const double t = u[k] - o[k];
              d2 += t * t;
            }
            nearest = std::min(nearest, d2);
          }
          score += config.coverage_weight *
                   std::sqrt(nearest / static_cast<double>(active.size()));
        }
      } else {
        // No trustworthy model this round: degrade to a random pick
        // among the compilable candidates.
        score = rng.uniform();
      }
      model_seconds += model_clock.seconds();
      if (obs::trace_enabled()) obs::emit('E', "acq_score", "tuner");
      pool.push_back(Scored{std::move(cand), std::move(features),
                            co.binary_hash, score});
    }

    if (pool.empty()) {
      ++stall;  // everything deduped this round; retry with more entropy
      return true;
    }

    auto winner = std::max_element(
        pool.begin(), pool.end(),
        [](const Scored& a, const Scored& b) { return a.score < b.score; });
    if (measure(ms.name, winner->cand, winner->features, winner->hash)) {
      ++budget_used;
      stall = 0;
    } else {
      ++stall;
    }
    return true;
  }

  bool step() {
    OBS_SPAN("tuner_step", "tuner");
    OBS_COUNTER_INC("citroen_tuner_steps_total");
    if (phase == Phase::InitialRandom) {
      if (step_initial_random()) return true;
      phase = Phase::ModelGuided;
    }
    return step_model_guided();
  }

  TuneResult finish() const {
    TuneResult out = result;
    out.measurements = budget_used;
    for (std::size_t i = 0; i < data_x.size(); ++i)
      out.observations.emplace_back(data_x[i], data_y[i]);
    out.best_speedup =
        out.speedup_curve.empty() ? 0.0 : out.speedup_curve.back();
    out.model_seconds = model_seconds;
    out.compile_seconds = eval.total_compile_seconds();
    out.measure_seconds = eval.total_measure_seconds();

    // Table 5.5: rank the active features by ARD relevance.
    if (model) {
      const Vec ls = model->lengthscales();
      for (std::size_t i = 0; i < active.size() && i < ls.size(); ++i)
        out.stat_relevance.emplace_back(feature_names[active[i]],
                                        1.0 / ls[i]);
      std::sort(out.stat_relevance.begin(), out.stat_relevance.end(),
                [](const auto& a, const auto& b) {
                  return a.second > b.second;
                });
    }
    return out;
  }

  // ---- checkpointing ------------------------------------------------------

  void save_state(persist::Writer& w) const {
    w.u8(static_cast<std::uint8_t>(phase));
    persist::put(w, rng);
    w.u64(mods.size());
    for (const auto& ms : mods) {
      w.str(ms.name);
      w.f64(ms.hot_fraction);
      persist::put(w, ms.incumbent);
      w.b(ms.has_incumbent);
      persist::put(w, ms.des.incumbent());
      w.f64(ms.des.incumbent_value());
      w.u64(ms.ga.population().size());
      for (const auto& [seq, y] : ms.ga.population()) {
        persist::put(w, seq);
        w.f64(y);
      }
      w.i32(ms.measurements);
      w.f64(ms.gain);
    }
    persist::put(w, data_x);
    persist::put(w, data_y);
    {
      std::vector<std::uint64_t> keys;
      keys.reserve(measured_hash.size());
      for (const auto& [k, _] : measured_hash) keys.push_back(k);
      std::sort(keys.begin(), keys.end());
      w.u64(keys.size());
      for (const std::uint64_t k : keys) {
        w.u64(k);
        w.f64(measured_hash.at(k));
      }
    }
    {
      std::vector<std::uint64_t> feats(observed_features.begin(),
                                       observed_features.end());
      std::sort(feats.begin(), feats.end());
      persist::put(w, feats);
    }
    w.f64(best_y);
    w.f64(model_seconds);
    put(w, result);
    w.i32(budget_used);
    w.u64(mod_rr);
    w.i32(p1_attempts);
    w.i32(iter);
    w.i32(stall);
    w.u64(fitted_points);
    {
      std::vector<std::uint64_t> act(active.begin(), active.end());
      persist::put(w, act);
    }
    persist::put(w, scaler.lower());
    persist::put(w, scaler.upper());
    w.f64(yj.lambda());
    w.f64(yj.mean());
    w.f64(yj.stddev());
    persist::put(w, unit_x);
    persist::put(w, ty);
    w.b(model != nullptr);
    if (model) model->save_state(w);
  }

  void load_state(persist::Reader& r) {
    phase = static_cast<Phase>(r.u8());
    persist::get(r, rng);
    const std::uint64_t nmods = r.u64();
    if (nmods != mods.size())
      throw std::runtime_error("citroen: checkpoint module-count mismatch");
    for (auto& ms : mods) {
      const std::string name = r.str();
      if (name != ms.name)
        throw std::runtime_error("citroen: checkpoint module-name mismatch");
      ms.hot_fraction = r.f64();
      persist::get(r, ms.incumbent);
      ms.has_incumbent = r.b();
      Sequence des_best;
      persist::get(r, des_best);
      const double des_y = r.f64();
      ms.des.set_incumbent(std::move(des_best), des_y);
      const std::uint64_t npop = r.u64();
      std::vector<std::pair<Sequence, double>> pop;
      pop.reserve(npop);
      for (std::uint64_t i = 0; i < npop; ++i) {
        Sequence seq;
        persist::get(r, seq);
        const double y = r.f64();
        pop.emplace_back(std::move(seq), y);
      }
      ms.ga.set_population(std::move(pop));
      ms.measurements = r.i32();
      ms.gain = r.f64();
    }
    persist::get(r, data_x);
    persist::get(r, data_y);
    measured_hash.clear();
    const std::uint64_t nmeas = r.u64();
    for (std::uint64_t i = 0; i < nmeas; ++i) {
      const std::uint64_t k = r.u64();
      measured_hash[k] = r.f64();
    }
    {
      std::vector<std::uint64_t> feats;
      persist::get(r, feats);
      observed_features.clear();
      observed_features.insert(feats.begin(), feats.end());
    }
    best_y = r.f64();
    model_seconds = r.f64();
    get(r, result);
    budget_used = r.i32();
    mod_rr = static_cast<std::size_t>(r.u64());
    p1_attempts = r.i32();
    iter = r.i32();
    stall = r.i32();
    fitted_points = static_cast<std::size_t>(r.u64());
    {
      std::vector<std::uint64_t> act;
      persist::get(r, act);
      active.assign(act.begin(), act.end());
    }
    Vec lower, upper;
    persist::get(r, lower);
    persist::get(r, upper);
    scaler = InputScaler(std::move(lower), std::move(upper));
    const double lambda = r.f64();
    const double mean = r.f64();
    const double stddev = r.f64();
    yj.set_params(lambda, mean, stddev);
    persist::get(r, unit_x);
    persist::get(r, ty);
    if (r.b()) {
      model = std::make_unique<gp::GaussianProcess>(active.size(), config.gp);
      model->load_state(r);
    } else {
      model.reset();
    }
  }
};

// ---- public API -------------------------------------------------------------

std::vector<std::string> select_hot_modules(const sim::Evaluator& evaluator,
                                            const CitroenConfig& config) {
  // Hot-module selection (Sec. 5.3.1): cover `hot_threshold` of runtime.
  std::vector<std::string> modules;
  double covered = 0.0;
  for (const auto& [name, frac] : evaluator.hot_modules()) {
    if (covered >= config.hot_threshold ||
        static_cast<int>(modules.size()) >= config.max_hot_modules)
      break;
    // The driver module is never tuned (it only dispatches).
    if (name == "driver") continue;
    modules.push_back(name);
    covered += frac;
  }
  if (modules.empty()) modules.push_back(evaluator.hot_modules()[0].first);
  std::sort(modules.begin(), modules.end());
  return modules;
}

CitroenTuner::CitroenTuner(sim::Evaluator& evaluator, CitroenConfig config)
    : eval_(evaluator), config_(std::move(config)) {
  if (config_.pass_space.empty())
    config_.pass_space = passes::PassRegistry::instance().pass_names();
  modules_ = select_hot_modules(eval_, config_);
}

CitroenTuner::~CitroenTuner() = default;

void CitroenTuner::start() {
  impl_ = std::make_unique<Impl>(eval_, config_, modules_, skip_hyper_refits_);
}

bool CitroenTuner::step() {
  if (!impl_) start();
  return impl_->step();
}

TuneResult CitroenTuner::finish() const {
  if (!impl_) return TuneResult{};
  return impl_->finish();
}

void CitroenTuner::save_state(persist::Writer& w) const {
  if (!impl_)
    throw std::runtime_error("citroen: save_state before start()");
  impl_->save_state(w);
}

void CitroenTuner::load_state(persist::Reader& r) {
  start();
  impl_->load_state(r);
}

TuneResult CitroenTuner::run() {
  start();
  while (step()) {
  }
  return finish();
}

}  // namespace citroen::core
