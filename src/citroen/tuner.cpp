#include "citroen/tuner.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "heuristics/des.hpp"
#include "heuristics/ga.hpp"
#include "support/timer.hpp"
#include "support/transforms.hpp"

namespace citroen::core {

using heuristics::Sequence;

namespace {

/// Quantised hash of a feature vector (collision detection, Table 5.2).
std::uint64_t feature_hash(const Vec& f) {
  std::uint64_t h = 1469598103934665603ULL;
  for (double v : f) {
    const std::int64_t q = static_cast<std::int64_t>(std::llround(v * 1e6));
    for (int b = 0; b < 8; ++b) {
      h ^= static_cast<std::uint8_t>(q >> (8 * b));
      h *= 1099511628211ULL;
    }
  }
  return h;
}

std::vector<std::string> to_names(const Sequence& s,
                                  const std::vector<std::string>& space) {
  std::vector<std::string> out;
  out.reserve(s.size());
  for (int p : s) out.push_back(space[static_cast<std::size_t>(p)]);
  return out;
}

struct ModuleState {
  std::string name;
  double hot_fraction = 0.0;
  Sequence incumbent;             ///< best sequence found for this module
  bool has_incumbent = false;     ///< false: the module stays at -O3
  heuristics::DesSequence des;
  heuristics::GaSequence ga;
  int measurements = 0;
  double gain = 0.0;              ///< smoothed recent improvement

  ModuleState(std::string n, double frac, int num_passes, int max_len)
      : name(std::move(n)),
        hot_fraction(frac),
        des(num_passes, max_len),
        ga(num_passes, max_len) {}
};

}  // namespace

CitroenTuner::CitroenTuner(sim::Evaluator& evaluator, CitroenConfig config)
    : eval_(evaluator), config_(std::move(config)) {
  if (config_.pass_space.empty())
    config_.pass_space = passes::PassRegistry::instance().pass_names();

  // Hot-module selection (Sec. 5.3.1): cover `hot_threshold` of runtime.
  double covered = 0.0;
  for (const auto& [name, frac] : eval_.hot_modules()) {
    if (covered >= config_.hot_threshold ||
        static_cast<int>(modules_.size()) >= config_.max_hot_modules)
      break;
    // The driver module is never tuned (it only dispatches).
    if (name == "driver") continue;
    modules_.push_back(name);
    covered += frac;
  }
  if (modules_.empty()) modules_.push_back(eval_.hot_modules()[0].first);
  std::sort(modules_.begin(), modules_.end());
}

TuneResult CitroenTuner::run() {
  TuneResult result;
  Rng rng(config_.seed);
  const int num_passes = static_cast<int>(config_.pass_space.size());

  // Per-module heuristic state.
  // One arm per tuned module, plus a "joint" arm whose candidates apply
  // the same sequence to every tuned module (the classic whole-program
  // search the baselines perform). The joint arm captures correlated
  // wins cheaply; the per-module arms refine beyond them.
  std::vector<ModuleState> mods;
  const std::string kJoint = "<joint>";
  {
    std::map<std::string, double> frac;
    for (const auto& [n, f] : eval_.hot_modules()) frac[n] = f;
    for (const auto& name : modules_)
      mods.emplace_back(name, frac[name], num_passes, config_.max_seq_len);
    if (modules_.size() > 1)
      mods.emplace_back(kJoint, 1.0, num_passes, config_.max_seq_len);
  }

  // Feature extraction plumbing.
  const StatsFeatures stats_feat;
  const SequenceFeatures seq_feat(num_passes, config_.max_seq_len);
  const bool need_program = config_.features == CitroenConfig::Features::Autophase;
  std::vector<std::string> feature_names;
  for (const auto& m : modules_) {
    const std::vector<std::string>* base = nullptr;
    std::vector<std::string> seq_names;
    if (config_.features == CitroenConfig::Features::Stats) {
      base = &stats_feat.keys();
    } else if (config_.features == CitroenConfig::Features::Autophase) {
      base = &AutophaseFeatures::names();
    } else {
      for (int p = 0; p < num_passes; ++p)
        seq_names.push_back("count_" + config_.pass_space[static_cast<std::size_t>(p)]);
      for (int p = 0; p < num_passes; ++p)
        seq_names.push_back("pos_" + config_.pass_space[static_cast<std::size_t>(p)]);
      base = &seq_names;
    }
    for (const auto& k : *base) feature_names.push_back(m + "/" + k);
  }
  const std::size_t feat_dim = feature_names.size();

  // Modules without an adopted incumbent stay at the evaluator's -O3
  // default (absent from the assignment map). The joint pseudo-target
  // applies the candidate to every tuned module.
  auto assignment_for = [&](const std::string& target,
                            const Sequence& candidate) {
    sim::SequenceAssignment a;
    for (const auto& ms : mods) {
      if (ms.name == kJoint) continue;
      if (target == kJoint || ms.name == target) {
        a[ms.name] = to_names(candidate, config_.pass_space);
      } else if (ms.has_incumbent) {
        a[ms.name] = to_names(ms.incumbent, config_.pass_space);
      }
    }
    return a;
  };

  auto extract_features = [&](const sim::CompileOutcome& co,
                              const sim::SequenceAssignment& assign) {
    Vec f;
    f.reserve(feat_dim);
    for (const auto& mname : modules_) {
      Vec part;
      switch (config_.features) {
        case CitroenConfig::Features::Stats: {
          const auto it = co.module_stats.find(mname);
          part = stats_feat.extract(it == co.module_stats.end()
                                        ? passes::StatsRegistry{}
                                        : it->second);
          break;
        }
        case CitroenConfig::Features::Autophase: {
          const ir::Module* m =
              co.program ? co.program->find_module(mname) : nullptr;
          part = m ? AutophaseFeatures::extract(*m)
                   : Vec(AutophaseFeatures::dim(), 0.0);
          break;
        }
        case CitroenConfig::Features::RawSequence: {
          Sequence s;
          const auto it = assign.find(mname);
          if (it != assign.end()) {
            for (const auto& pname : it->second) {
              for (int p = 0; p < num_passes; ++p) {
                if (config_.pass_space[static_cast<std::size_t>(p)] == pname)
                  s.push_back(p);
              }
            }
          }
          part = seq_feat.extract(s);
          break;
        }
      }
      f.insert(f.end(), part.begin(), part.end());
    }
    return f;
  };

  // Model data: (features, normalised runtime y = cycles / o3_cycles).
  std::vector<Vec> data_x;
  Vec data_y;
  std::unordered_map<std::uint64_t, double> measured_hash;  // binary -> y
  std::unordered_set<std::uint64_t> observed_features;
  // y is normalised runtime (cycles / o3_cycles); the -O3 default (1.0)
  // is always available, so incumbents are only adopted below it.
  double best_y = 1.0;

  Stopwatch model_clock;
  double model_seconds = 0.0;

  auto record = [&](const std::string& target, const Sequence& cand,
                    const Vec& features, double y, bool counts_budget) {
    if (counts_budget) {
      result.speedup_curve.push_back(
          std::max(result.speedup_curve.empty()
                       ? 0.0
                       : result.speedup_curve.back(),
                   1.0 / y));
      ++result.measurements_per_module[target];
    }
    data_x.push_back(features);
    data_y.push_back(y);
    observed_features.insert(feature_hash(features));
    for (auto& ms : mods) {
      if (ms.name != target) continue;
      ms.des.tell(cand, y);
      ms.ga.tell(cand, y);
      if (counts_budget) ++ms.measurements;
      if (y < best_y) {
        const double gain = (best_y - y) / best_y;
        ms.gain = 0.5 * ms.gain + 0.5 * gain;
        best_y = y;
        result.best_assignment = assignment_for(target, cand);
        if (target == kJoint) {
          // A joint win re-seeds every per-module incumbent.
          for (auto& other : mods) {
            if (other.name == kJoint) continue;
            other.incumbent = cand;
            other.has_incumbent = true;
          }
        }
        ms.incumbent = cand;
        ms.has_incumbent = true;
      } else {
        ms.gain *= 0.8;
      }
    }
  };

  auto measure = [&](const std::string& target, const Sequence& cand,
                     const Vec& features,
                     std::uint64_t binary_hash) -> bool {
    const auto out = eval_.evaluate(assignment_for(target, cand));
    double y;
    if (!out.valid) {
      ++result.invalid;
      ++result.failure_counts[sim::failure_kind_name(out.failure)];
      y = 4.0;  // a rejected build is treated as a very slow binary
    } else {
      y = 1.0 / out.speedup;
    }
    measured_hash[binary_hash] = y;
    record(target, cand, features, y, /*counts_budget=*/!out.cache_hit);
    if (out.cache_hit) ++result.cache_hits;
    return !out.cache_hit;
  };

  // Warm-start transfer: seed the model with observations from another
  // program's run (dimensions must match; see CitroenConfig::warm_start).
  for (const auto& [wf, wy] : config_.warm_start) {
    if (wf.size() == feat_dim) {
      data_x.push_back(wf);
      data_y.push_back(wy);
      observed_features.insert(feature_hash(wf));
    }
  }

  // ---- phase 1: random initial design ------------------------------------
  int budget_used = 0;
  {
    std::size_t mod_rr = 0;
    int attempts = 0;
    while (budget_used < std::min(config_.initial_random, config_.budget) &&
           attempts++ < config_.budget * 20) {
      auto& ms = mods[mod_rr % mods.size()];
      ++mod_rr;
      Sequence cand = heuristics::random_sequence(
          num_passes, config_.max_seq_len, rng);
      const auto assign = assignment_for(ms.name, cand);
      if (eval_.is_quarantined(assign)) {
        ++result.quarantined_skipped;
        continue;
      }
      const auto co = eval_.compile(assign, need_program);
      ++result.compiles;
      if (!co.valid) continue;
      const Vec features = extract_features(co, assign);
      if (measure(ms.name, cand, features, co.binary_hash)) ++budget_used;
    }
    // Also seed each module's incumbent with the (known-good) -O3-like
    // empty-diff: the incumbent starts as the best random one seen.
  }

  // The raw feature space is wide (stats vocabulary x modules) but most
  // counters never move for a given program; the model is fit only on
  // the *active* dimensions (those with observed variance), which makes
  // the ARD fit both sharper and cheaper.
  std::vector<std::size_t> active;
  auto recompute_active = [&] {
    active.clear();
    for (std::size_t d = 0; d < feat_dim; ++d) {
      const double first = data_x[0][d];
      for (const auto& f : data_x) {
        if (f[d] != first) {
          active.push_back(d);
          break;
        }
      }
    }
    if (active.empty()) active.push_back(0);
  };
  auto project = [&](const Vec& f) {
    Vec out(active.size());
    for (std::size_t i = 0; i < active.size(); ++i) out[i] = f[active[i]];
    return out;
  };

  std::unique_ptr<gp::GaussianProcess> model;
  InputScaler scaler;
  YeoJohnson yj;
  std::vector<Vec> unit_x;  ///< projected+scaled copies of data_x
  Vec ty;                   ///< transformed copies of data_y
  int iter = 0;

  // ---- phase 2: model-guided search ---------------------------------------
  int stall = 0;  ///< consecutive iterations without a new measurement
  std::size_t fitted_points = 0;
  while (budget_used < config_.budget && iter < config_.budget * 10 &&
         !data_x.empty()) {
    ++iter;
    // Fit the cost model (skip the refit when no new data arrived). A
    // refit can fail numerically (degenerate kernel matrix, non-finite
    // likelihood); the tuner then discards the model and degrades to
    // random proposals for the round instead of dying mid-run.
    model_clock.reset();
    if (data_x.size() != fitted_points || !model) {
      const std::vector<std::size_t> prev_active = active;
      recompute_active();
      const bool hyper_round = iter % config_.refit_period == 1 ||
                               active.size() != prev_active.size();
      bool fitted = false;
      // Incremental refresh (refactor-only rounds with an unchanged
      // active set): freeze the input/output transforms, transform only
      // the observations appended since the last fit, and let the GP
      // extend its Cholesky factor rank-one instead of refitting.
      if (config_.incremental_gp && model && !hyper_round &&
          fitted_points > 0 && data_x.size() > fitted_points &&
          active == prev_active && unit_x.size() == fitted_points) {
        for (std::size_t i = unit_x.size(); i < data_x.size(); ++i)
          unit_x.push_back(scaler.to_unit(project(data_x[i])));
        while (ty.size() < data_y.size())
          ty.push_back(yj.transform(data_y[ty.size()]));
        model->set_fit_hypers(false);
        try {
          model->fit(unit_x, ty);
          if (!std::isfinite(model->log_marginal_likelihood()))
            throw std::runtime_error("non-finite log marginal likelihood");
          fitted_points = data_x.size();
          fitted = true;
        } catch (const std::exception&) {
          ++result.gp_fit_failures;
          model.reset();
        }
      }
      if (!fitted) {
        std::vector<Vec> px;
        px.reserve(data_x.size());
        for (const auto& f : data_x) px.push_back(project(f));
        scaler.fit(px);
        unit_x.clear();
        unit_x.reserve(px.size());
        for (const auto& f : px) unit_x.push_back(scaler.to_unit(f));
        yj.fit(data_y);
        ty = yj.transform(data_y);
        if (!model || active.size() != prev_active.size())
          model = std::make_unique<gp::GaussianProcess>(active.size(),
                                                        config_.gp);
        // Full hyper-parameter refit only every `refit_period` iterations;
        // in between, the learned hypers are kept and only the Cholesky
        // factorisation is refreshed with the new data.
        model->set_fit_hypers(hyper_round);
        try {
          model->fit(unit_x, ty);
          if (!std::isfinite(model->log_marginal_likelihood()))
            throw std::runtime_error("non-finite log marginal likelihood");
          fitted_points = data_x.size();
        } catch (const std::exception&) {
          ++result.gp_fit_failures;
          model.reset();
        }
      }
    }
    std::unique_ptr<af::Acquisition> acq;
    if (model) {
      double best_ty = ty[0];
      for (double v : ty) best_ty = std::min(best_ty, v);
      acq = std::make_unique<af::Acquisition>(model.get(), config_.af,
                                              best_ty);
    } else {
      ++result.random_fallback_rounds;
    }
    model_seconds += model_clock.seconds();

    // Module selection: UCB bandit over expected payoff.
    std::size_t chosen = 0;
    if (config_.adaptive_allocation) {
      double best_score = -1e300;
      double total = 0.0;
      for (const auto& ms : mods) total += ms.measurements + 1.0;
      for (std::size_t i = 0; i < mods.size(); ++i) {
        const auto& ms = mods[i];
        const double explore =
            config_.bandit_explore *
            std::sqrt(std::log(total + 1.0) / (ms.measurements + 1.0));
        const double score = ms.hot_fraction * (ms.gain + explore);
        if (score > best_score) {
          best_score = score;
          chosen = i;
        }
      }
    } else {
      chosen = static_cast<std::size_t>(iter) % mods.size();
    }
    auto& ms = mods[chosen];

    // Candidate generation (Sec. 5.3.5). When recent iterations kept
    // hitting already-measured binaries, lean harder on fresh random
    // sequences to escape the collapsed neighbourhood.
    std::vector<Sequence> cands;
    if (config_.heuristic_generator && stall < 3) {
      const int per = std::max(1, config_.candidates_per_iter / 3);
      for (auto& c : ms.des.ask(per, rng)) cands.push_back(std::move(c));
      for (auto& c : ms.ga.ask(per, rng)) cands.push_back(std::move(c));
      for (int i = 0; i < config_.candidates_per_iter - 2 * per; ++i)
        cands.push_back(heuristics::random_sequence(
            num_passes, config_.max_seq_len, rng));
    } else {
      for (int i = 0; i < config_.candidates_per_iter; ++i)
        cands.push_back(heuristics::random_sequence(
            num_passes, config_.max_seq_len, rng));
    }

    // Compile all candidates; score with AF + coverage. The batch of
    // assignments is prefetched first (compile-only), so the prefix
    // cache compiles shared-prefix pipelines concurrently; the serial
    // loop below then resolves each compile from the warm cache with
    // results identical to compiling serially.
    std::vector<sim::SequenceAssignment> assigns;
    assigns.reserve(cands.size());
    for (const auto& cand : cands)
      assigns.push_back(assignment_for(ms.name, cand));
    eval_.prefetch(assigns, /*with_measure=*/false);

    struct Scored {
      Sequence cand;
      Vec features;
      std::uint64_t hash;
      double score;
    };
    std::vector<Scored> pool;
    for (std::size_t ci = 0; ci < cands.size(); ++ci) {
      auto& cand = cands[ci];
      const auto& assign = assigns[ci];
      // Known deterministic failures (from the hardened evaluator's
      // quarantine set) are not worth a compile, let alone a measurement.
      if (eval_.is_quarantined(assign)) {
        ++result.quarantined_skipped;
        continue;
      }
      const auto co = eval_.compile(assign, need_program);
      ++result.compiles;
      if (!co.valid) continue;
      Vec features = extract_features(co, assign);

      // Identical binary already measured: learn for free, skip selection.
      // The free data is capped so degenerate programs (where most random
      // sequences collapse to few binaries) cannot blow up the GP fit.
      const auto known = measured_hash.find(co.binary_hash);
      if (known != measured_hash.end()) {
        if (data_x.size() < static_cast<std::size_t>(4 * config_.budget)) {
          record(ms.name, cand, features, known->second,
                 /*counts_budget=*/false);
        }
        ++result.cache_hits;
        continue;
      }

      model_clock.reset();
      double score;
      const std::uint64_t fh = feature_hash(features);
      if (observed_features.count(fh)) ++result.feature_collisions;
      if (acq) {
        const Vec u = scaler.to_unit(project(features));
        score = acq->value(u);
        if (config_.coverage_af) {
          // Coverage bonus: distance to the nearest observed feature point
          // (unit scale), pushing sampling into unobserved statistics
          // regions; zero for exact collisions.
          double nearest = 1e300;
          for (const auto& o : unit_x) {
            double d2 = 0.0;
            for (std::size_t k = 0; k < u.size(); ++k) {
              const double t = u[k] - o[k];
              d2 += t * t;
            }
            nearest = std::min(nearest, d2);
          }
          score += config_.coverage_weight *
                   std::sqrt(nearest / static_cast<double>(active.size()));
        }
      } else {
        // No trustworthy model this round: degrade to a random pick
        // among the compilable candidates.
        score = rng.uniform();
      }
      model_seconds += model_clock.seconds();
      pool.push_back(Scored{std::move(cand), std::move(features),
                            co.binary_hash, score});
    }

    if (pool.empty()) {
      ++stall;  // everything deduped this round; retry with more entropy
      continue;
    }

    auto winner = std::max_element(
        pool.begin(), pool.end(),
        [](const Scored& a, const Scored& b) { return a.score < b.score; });
    if (measure(ms.name, winner->cand, winner->features, winner->hash)) {
      ++budget_used;
      stall = 0;
    } else {
      ++stall;
    }
  }

  result.measurements = budget_used;
  for (std::size_t i = 0; i < data_x.size(); ++i)
    result.observations.emplace_back(data_x[i], data_y[i]);
  result.best_speedup =
      result.speedup_curve.empty() ? 0.0 : result.speedup_curve.back();
  result.model_seconds = model_seconds;
  result.compile_seconds = eval_.total_compile_seconds();
  result.measure_seconds = eval_.total_measure_seconds();

  // Table 5.5: rank the active features by ARD relevance.
  if (model) {
    const Vec ls = model->lengthscales();
    for (std::size_t i = 0; i < active.size() && i < ls.size(); ++i)
      result.stat_relevance.emplace_back(feature_names[active[i]],
                                         1.0 / ls[i]);
    std::sort(result.stat_relevance.begin(), result.stat_relevance.end(),
              [](const auto& a, const auto& b) {
                return a.second > b.second;
              });
  }
  return result;
}

}  // namespace citroen::core
