#pragma once
// Feature extraction for the CITROEN cost model and its alternatives
// (Fig. 5.9): compilation statistics (the paper's contribution),
// Autophase-style static IR counters, and raw one-hot sequence encodings.

#include <string>
#include <vector>

#include "heuristics/optimizer.hpp"
#include "ir/module.hpp"
#include "passes/pass.hpp"
#include "support/matrix.hpp"

namespace citroen::core {

/// Stats featureiser over the registry's fixed "pass.Counter" vocabulary.
/// Counts are log1p-compressed (they are heavy-tailed).
class StatsFeatures {
 public:
  StatsFeatures();

  std::size_t dim() const { return keys_.size(); }
  const std::vector<std::string>& keys() const { return keys_; }

  Vec extract(const passes::StatsRegistry& stats) const;

 private:
  std::vector<std::string> keys_;
};

/// Autophase-style static IR counters of one module: per-opcode counts,
/// block/function/phi/load/store totals. Deliberately blind to what the
/// paper's §3.4 highlights (e.g. function attributes set by
/// function-attrs), which is why it underperforms stats features.
class AutophaseFeatures {
 public:
  static const std::vector<std::string>& names();
  static std::size_t dim() { return names().size(); }
  static Vec extract(const ir::Module& m);
};

/// Raw pass-sequence encoding: per-pass count histogram plus the
/// normalised position of each pass's first occurrence (what a standard
/// BO on the tuning parameters themselves would see).
class SequenceFeatures {
 public:
  explicit SequenceFeatures(int num_passes, int max_len)
      : num_passes_(num_passes), max_len_(max_len) {}

  std::size_t dim() const { return 2 * static_cast<std::size_t>(num_passes_); }
  Vec extract(const heuristics::Sequence& s) const;

 private:
  int num_passes_;
  int max_len_;
};

}  // namespace citroen::core
