#include "persist/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "persist/codec.hpp"

namespace citroen::persist {

namespace {

// The trailing digit is the payload-format version. Bump it whenever any
// serialized run state changes shape (v2: QuarantineSet gained LRU order
// + an eviction counter): an old-version checkpoint then fails the magic
// check and resume falls back to full journal replay, instead of
// misparsing the blob into garbage state.
constexpr char kMagic[8] = {'C', 'T', 'R', 'N', 'C', 'K', 'P', '2'};
constexpr std::size_t kHeaderBytes = sizeof(kMagic) + 8 + 4;

std::uint32_t read_le32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= std::uint32_t{static_cast<unsigned char>(p[i])} << (8 * i);
  return v;
}

std::uint64_t read_le64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= std::uint64_t{static_cast<unsigned char>(p[i])} << (8 * i);
  return v;
}

[[noreturn]] void io_fail(const std::string& what, const std::string& path) {
  throw std::runtime_error("checkpoint " + path + ": " + what + ": " +
                           std::strerror(errno));
}

}  // namespace

void write_checkpoint(const std::string& path, const std::string& payload) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) io_fail("open failed", tmp);

  Writer header;
  header.bytes(kMagic, sizeof(kMagic));
  header.u64(payload.size());
  header.u32(crc32(payload));
  std::string bytes = header.take();
  bytes += payload;

  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      io_fail("write failed", tmp);
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    io_fail("fsync failed", tmp);
  }
  ::close(fd);
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    io_fail("rename failed", path);
}

std::optional<std::string> read_checkpoint(const std::string& path,
                                           std::string* note) {
  auto report = [&](const std::string& why) {
    if (note) *note = "checkpoint " + path + ": " + why;
    return std::nullopt;
  };
  std::ifstream in(path, std::ios::binary);
  if (!in) return report("no file");
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (bytes.size() < kHeaderBytes) return report("truncated header, ignoring");
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
    return report("bad magic, ignoring");
  const std::uint64_t len = read_le64(bytes.data() + sizeof(kMagic));
  const std::uint32_t want_crc = read_le32(bytes.data() + sizeof(kMagic) + 8);
  if (bytes.size() < kHeaderBytes + len)
    return report("truncated payload, ignoring");
  std::string payload = bytes.substr(kHeaderBytes, len);
  if (crc32(payload) != want_crc)
    return report("payload checksum mismatch, ignoring");
  if (note) *note = "checkpoint " + path + ": loaded " +
                    std::to_string(len) + " bytes";
  return payload;
}

}  // namespace citroen::persist
