#pragma once
// Write-ahead evaluation journal: an append-only file of length-prefixed,
// CRC-checksummed records, fsync'd on a configurable cadence.
//
// File layout:
//   [8-byte magic "CTRNJRN1"]
//   repeated records: [u32 payload_len][u32 crc32(payload)][payload]
//
// A process killed mid-append leaves a torn record at the tail. Recovery
// (`recover_journal`) walks the file record by record, stops at the first
// record whose framing or checksum does not hold, and reports the byte
// offset of the last good record's end; opening the journal for append
// truncates the file there instead of aborting the run. Anything before
// that offset is trusted, anything after is discarded — the write-ahead
// discipline (records are appended before the in-memory state advances)
// makes the truncated journal a consistent prefix of the run.

#include <cstdint>
#include <string>
#include <vector>

namespace citroen::persist {

/// Size of the magic header; record frames start at this offset.
inline constexpr std::size_t kJournalHeaderBytes = 8;

struct JournalConfig {
  /// fsync the journal file every this many appended records (and on
  /// every explicit flush). 1 = maximum durability, higher amortises the
  /// syscall over a batch of evaluations.
  int fsync_every = 256;
};

/// Result of scanning a journal file for valid records.
struct JournalRecovery {
  std::vector<std::string> records;  ///< valid payloads, in append order
  std::uint64_t valid_bytes = 0;     ///< file offset of the first bad byte
  std::uint64_t file_bytes = 0;      ///< size of the file as scanned
  bool truncated = false;            ///< a torn/corrupt tail was dropped
  std::string note;  ///< human-readable recovery log line (empty if clean)
};

/// Scan `path` and return every record up to the first torn or corrupt
/// one. Never throws on corruption: a missing file, a zero-length file, a
/// garbage header and a torn tail all come back as a (possibly empty)
/// record list plus a note naming the byte offset where trust ended.
/// `magic8` selects the 8-byte file magic; nullptr means the evaluation
/// journal's "CTRNJRN1" (other journal-framed files, e.g. the transfer
/// corpus, pass their own).
JournalRecovery recover_journal(const std::string& path,
                                const char* magic8 = nullptr);

/// Appender. Creating one truncates the file to `start_bytes` (the
/// recovery's `valid_bytes`, dropping any corrupt tail) — or writes a
/// fresh header when the file is new or empty — and appends after that.
class JournalWriter {
 public:
  JournalWriter(const std::string& path, JournalConfig config,
                std::uint64_t start_bytes, const char* magic8 = nullptr);
  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Append one record (framing + checksum added here). Honors the fsync
  /// cadence; call `flush()` to force durability at a boundary.
  void append(const std::string& payload);

  /// Flush buffered appends and fsync the file.
  void flush();

  std::uint64_t records_appended() const { return appended_; }

 private:
  void write_out();  ///< drain buf_ to the fd (EINTR-safe)

  int fd_ = -1;
  JournalConfig config_;
  std::uint64_t appended_ = 0;
  int unsynced_ = 0;
  /// Framed records accumulated in userspace between sync points. Data is
  /// only guaranteed durable at sync points anyway, so records lost from
  /// this buffer on a hard kill are exactly the ones resume re-executes.
  std::string buf_;
};

}  // namespace citroen::persist
