#pragma once
// Atomic checkpoint files: the full serialized run state written as
// tmp + fsync + rename, so a crash mid-checkpoint leaves the previous
// checkpoint intact. A checkpoint that fails its CRC or magic check is
// reported as absent (with a note), never fatal — resume then falls back
// to replaying the journal from the start.
//
// File layout: [8-byte magic "CTRNCKP2"][u64 payload_len]
//              [u32 crc32(payload)][payload]
//
// The magic's trailing digit doubles as the payload-format version; a
// checkpoint written by a process with a different state layout is
// rejected as "bad magic" and resume replays the journal instead.

#include <cstdint>
#include <optional>
#include <string>

namespace citroen::persist {

/// Atomically replace `path` with a checkpoint holding `payload`.
/// Throws std::runtime_error on I/O failure.
void write_checkpoint(const std::string& path, const std::string& payload);

/// Read and validate a checkpoint. Returns nullopt when the file is
/// missing, truncated, or corrupt; `note` (optional) receives a log line
/// explaining why.
std::optional<std::string> read_checkpoint(const std::string& path,
                                           std::string* note = nullptr);

}  // namespace citroen::persist
