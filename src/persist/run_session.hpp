#pragma once
// One crash-safe tuning run = one RunSession: a write-ahead journal of
// evaluation records plus an atomically-replaced checkpoint of the full
// tuner state.
//
// Resume protocol (the byte-identical guarantee):
//   1. The checkpoint holds all order-sensitive state as of journal
//      record K (tuner, RNG streams, evaluator caches, quarantine sets).
//   2. Journal records K..N (the tail written after the last checkpoint)
//      are replayed by *re-executing* the tuner from the checkpointed
//      state. Each re-executed evaluation is byte-verified against the
//      corresponding journal record; because every piece of
//      order-sensitive state was restored, re-execution reproduces the
//      original records exactly. Serving recorded outcomes without
//      re-execution would desynchronise the fault injector's attempt
//      counters and the identical-binary cache, so it is never done.
//   3. Past record N the run switches to append mode and continues.
//
// A divergence during replay (recomputed record != journal record) means
// the environment changed between processes (different binary, edited
// files). It is reported on stderr, the stale tail is truncated, and the
// recomputed result wins — the run continues correct-but-rebased rather
// than aborting.
//
// The kill switch (`kill_run`/`kill_at`) is test-only: the process calls
// _Exit(kExitKilled) immediately after the matching record is made
// durable, leaving the checkpoint intentionally stale (exercising tail
// replay) and any concurrently-written journals torn (exercising
// recovery truncation).

#include <cstdint>
#include <memory>
#include <string>

#include "persist/journal.hpp"

namespace citroen::persist {

/// Documented process exit statuses for persistence-enabled runs.
inline constexpr int kExitComplete = 0;     ///< run finished normally
inline constexpr int kExitInterrupted = 75; ///< graceful stop, resumable
inline constexpr int kExitKilled = 99;      ///< test kill-switch fired

struct SessionConfig {
  std::string dir;           ///< session directory (journals + checkpoints)
  bool resume = false;       ///< keep existing state instead of starting over
  int fsync_every = 256;      ///< journal fsync cadence (records)
  int checkpoint_every = 25; ///< checkpoint cadence (journal records)
  std::string kill_run;      ///< test kill-switch: run name it applies to
  std::int64_t kill_at = -1; ///< ...record index to _Exit(99) after
  double deadline_seconds = 0.0;  ///< wall-clock budget; <=0 = none
};

/// Journal + checkpoint pair for one named run inside a session
/// directory. Not thread-safe; each run is driven by one thread.
class RunSession {
 public:
  /// Opens (resume) or resets (fresh) the run's files. The directory is
  /// created if needed. Recovery of a corrupt journal or checkpoint is
  /// silent-but-logged, never fatal.
  RunSession(const SessionConfig& config, const std::string& run_name);
  ~RunSession();

  RunSession(const RunSession&) = delete;
  RunSession& operator=(const RunSession&) = delete;

  const std::string& run_name() const { return run_name_; }

  // ---- resume state -------------------------------------------------------
  /// True when a previous process checkpointed this run as finished; its
  /// final state blob is `state()` and nothing needs re-running.
  bool complete() const { return complete_; }
  bool has_state() const { return has_state_; }
  const std::string& state() const { return state_; }
  /// K: number of journal records already folded into `state()`.
  std::uint64_t state_records() const { return state_records_; }

  /// Recovered journal records (the replay source).
  std::uint64_t num_records() const { return records_.size(); }
  const std::string& record(std::uint64_t i) const { return records_[i]; }

  // ---- write path ---------------------------------------------------------
  /// Verify-or-append one record at the cursor. While the cursor is
  /// inside the recovered journal the payload is byte-compared against
  /// the stored record (divergence: warn, truncate, keep `payload`);
  /// past the end it is appended and fsync'd on the configured cadence.
  void push(const std::string& payload);

  /// Cursor: records processed (verified + appended) this process,
  /// counted from 0 at the start of the run.
  std::uint64_t next_index() const { return next_index_; }

  /// Force the journal to disk (graceful-shutdown path).
  void flush();

  // ---- checkpointing ------------------------------------------------------
  /// True when `checkpoint_every` records have passed since the last
  /// checkpoint (resume or saved) — callers checkpoint at the next step
  /// boundary.
  bool checkpoint_due() const;
  /// Atomically write [complete][next_index][state_blob]; flushes the
  /// journal first so the checkpoint never gets ahead of it.
  void save_checkpoint(const std::string& state_blob, bool complete);

  /// Recovery/checkpoint log lines (empty when nothing noteworthy).
  const std::string& recovery_note() const { return recovery_note_; }
  const std::string& checkpoint_note() const { return checkpoint_note_; }

 private:
  void open_writer_at(std::uint64_t record_index);
  std::uint64_t record_offset(std::uint64_t record_index) const;

  SessionConfig config_;
  std::string run_name_;
  std::string journal_path_;
  std::string checkpoint_path_;

  std::vector<std::string> records_;
  std::uint64_t recovered_valid_bytes_ = 0;
  std::string recovery_note_;
  std::string checkpoint_note_;

  bool complete_ = false;
  bool has_state_ = false;
  std::string state_;
  std::uint64_t state_records_ = 0;

  std::uint64_t next_index_ = 0;
  std::uint64_t last_checkpoint_records_ = 0;
  bool diverged_ = false;
  std::unique_ptr<JournalWriter> writer_;
};

}  // namespace citroen::persist
