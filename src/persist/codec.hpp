#pragma once
// Binary serialization primitives for the crash-safety layer: a little-
// endian append-only Writer, a bounds-checked Reader, and CRC32.
//
// Everything the journal and checkpoints store goes through this codec.
// Doubles are encoded as their IEEE-754 bit pattern, so a value survives
// a save/load round trip bit-for-bit — the property the byte-identical
// resume guarantee rests on. Unordered containers are written sorted by
// key so the same state always produces the same bytes.
//
// Header-only on purpose: any subsystem (sim, gp, heuristics, tuners) can
// implement `save_state`/`load_state` against it without linking the
// persist library.

#include <bit>
#include <cstdint>
#include <cstring>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/matrix.hpp"
#include "support/rng.hpp"

namespace citroen::persist {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), the checksum guarding
/// every journal record and checkpoint payload.
inline std::uint32_t crc32(const void* data, std::size_t n,
                           std::uint32_t seed = 0) {
  static const auto table = [] {
    std::vector<std::uint32_t> t(256);
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = ~seed;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i)
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  return ~crc;
}

inline std::uint32_t crc32(const std::string& s, std::uint32_t seed = 0) {
  return crc32(s.data(), s.size(), seed);
}

/// Append-only little-endian encoder.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void b(bool v) { u8(v ? 1 : 0); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  void bytes(const void* data, std::size_t n) {
    buf_.append(static_cast<const char*>(data), n);
  }
  void str(const std::string& s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }

  const std::string& data() const { return buf_; }
  std::string take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

/// Bounds-checked decoder over a borrowed byte range. Throws
/// `std::runtime_error` on any overrun — a corrupt or version-skewed
/// payload surfaces as a recoverable error, never undefined behaviour.
class Reader {
 public:
  Reader(const char* data, std::size_t size) : data_(data), size_(size) {}
  explicit Reader(const std::string& s) : Reader(s.data(), s.size()) {}
  /// The reader borrows the buffer; a temporary would dangle immediately.
  explicit Reader(std::string&&) = delete;

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  bool b() { return u8() != 0; }

  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{u8()} << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{u8()} << (8 * i);
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }

  std::string str() {
    const std::uint64_t n = u64();
    need(n);
    std::string s(data_ + pos_, static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }

  std::size_t remaining() const { return size_ - pos_; }
  bool at_end() const { return pos_ == size_; }

 private:
  void need(std::uint64_t n) const {
    if (n > size_ - pos_)
      throw std::runtime_error("persist: truncated payload");
  }

  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// ---- container helpers ----------------------------------------------------

inline void put(Writer& w, const Vec& v) {
  w.u64(v.size());
  for (double x : v) w.f64(x);
}

inline void get(Reader& r, Vec& v) {
  v.resize(static_cast<std::size_t>(r.u64()));
  for (double& x : v) x = r.f64();
}

inline void put(Writer& w, const std::vector<Vec>& vs) {
  w.u64(vs.size());
  for (const auto& v : vs) put(w, v);
}

inline void get(Reader& r, std::vector<Vec>& vs) {
  vs.resize(static_cast<std::size_t>(r.u64()));
  for (auto& v : vs) get(r, v);
}

inline void put(Writer& w, const std::vector<int>& v) {
  w.u64(v.size());
  for (int x : v) w.i32(x);
}

inline void get(Reader& r, std::vector<int>& v) {
  v.resize(static_cast<std::size_t>(r.u64()));
  for (int& x : v) x = r.i32();
}

inline void put(Writer& w, const std::vector<std::string>& v) {
  w.u64(v.size());
  for (const auto& s : v) w.str(s);
}

inline void get(Reader& r, std::vector<std::string>& v) {
  v.resize(static_cast<std::size_t>(r.u64()));
  for (auto& s : v) s = r.str();
}

inline void put(Writer& w, const std::vector<std::uint64_t>& v) {
  w.u64(v.size());
  for (std::uint64_t x : v) w.u64(x);
}

inline void get(Reader& r, std::vector<std::uint64_t>& v) {
  v.resize(static_cast<std::size_t>(r.u64()));
  for (std::uint64_t& x : v) x = r.u64();
}

template <class V, class PutV>
void put_map(Writer& w, const std::map<std::string, V>& m, PutV putv) {
  w.u64(m.size());
  for (const auto& [k, v] : m) {
    w.str(k);
    putv(w, v);
  }
}

template <class V, class GetV>
void get_map(Reader& r, std::map<std::string, V>& m, GetV getv) {
  m.clear();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string k = r.str();
    m.emplace(std::move(k), getv(r));
  }
}

inline void put(Writer& w, const std::map<std::string, int>& m) {
  put_map(w, m, [](Writer& ww, int v) { ww.i32(v); });
}

inline void get(Reader& r, std::map<std::string, int>& m) {
  get_map(r, m, [](Reader& rr) { return rr.i32(); });
}

inline void put(Writer& w, const std::map<std::string, std::int64_t>& m) {
  put_map(w, m, [](Writer& ww, std::int64_t v) { ww.i64(v); });
}

inline void get(Reader& r, std::map<std::string, std::int64_t>& m) {
  get_map(r, m, [](Reader& rr) { return rr.i64(); });
}

inline void put(Writer& w, const Matrix& m) {
  w.u64(m.rows());
  w.u64(m.cols());
  for (double x : m.data()) w.f64(x);
}

inline void get(Reader& r, Matrix& m) {
  const auto rows = static_cast<std::size_t>(r.u64());
  const auto cols = static_cast<std::size_t>(r.u64());
  m = Matrix(rows, cols);
  for (double& x : m.data()) x = r.f64();
}

inline void put(Writer& w, const Cholesky& c) {
  put(w, c.L);
  w.f64(c.jitter);
  w.b(c.ok);
}

inline void get(Reader& r, Cholesky& c) {
  get(r, c.L);
  c.jitter = r.f64();
  c.ok = r.b();
}

inline void put(Writer& w, const Rng& rng) {
  const Rng::State st = rng.state();
  for (std::uint64_t s : st.s) w.u64(s);
  w.f64(st.spare);
  w.b(st.has_spare);
}

inline void get(Reader& r, Rng& rng) {
  Rng::State st{};
  for (std::uint64_t& s : st.s) s = r.u64();
  st.spare = r.f64();
  st.has_spare = r.b();
  rng.set_state(st);
}

}  // namespace citroen::persist
