#pragma once
// Deadline- and signal-aware shutdown coordination.
//
// The watchdog is a process-wide singleton that a runner consults between
// units of work (one evaluation, one tuner step). `stop_requested()`
// becomes true when SIGINT/SIGTERM arrives or the configured wall-clock
// deadline passes; `deadline_imminent(margin)` lets long optional work
// (e.g. GP hyperparameter refits) be skipped when the remaining budget is
// thin, so a run degrades gracefully instead of being killed mid-fit.
//
// Signal handlers only flip a sig_atomic_t flag — all I/O (journal flush,
// final checkpoint) happens later on the normal code path.

#include <csignal>

namespace citroen::persist {

class Watchdog {
 public:
  static Watchdog& instance();

  /// Install SIGINT/SIGTERM handlers that request a graceful stop. Safe
  /// to call more than once.
  void install_signal_handlers();

  /// Arm a wall-clock deadline `seconds` from now; <= 0 disarms it.
  void set_deadline_seconds(double seconds);

  /// True once a stop signal arrived or the deadline passed.
  bool stop_requested() const;

  /// True when less than `margin_seconds` of wall clock remains before
  /// the deadline (always false when no deadline is armed).
  bool deadline_imminent(double margin_seconds) const;

  /// Programmatic stop (tests, embedding code).
  void request_stop() { stop_flag_ = 1; }

  /// Clear signal/deadline state (tests run several sessions in-process).
  void reset();

  /// Seconds of wall clock left before the deadline; +inf when disarmed.
  double seconds_remaining() const;

 private:
  Watchdog() = default;

  volatile std::sig_atomic_t stop_flag_ = 0;
  bool handlers_installed_ = false;
  bool deadline_armed_ = false;
  double deadline_monotonic_ = 0.0;  // CLOCK_MONOTONIC seconds
};

}  // namespace citroen::persist
