#include "persist/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "persist/codec.hpp"

namespace citroen::persist {

namespace {

constexpr char kMagic[8] = {'C', 'T', 'R', 'N', 'J', 'R', 'N', '1'};
constexpr std::size_t kHeaderBytes = kJournalHeaderBytes;
static_assert(sizeof(kMagic) == kJournalHeaderBytes);
/// Upper bound on a single record's payload; anything larger in the
/// length field is framing corruption, not a real record.
constexpr std::uint64_t kMaxRecordBytes = std::uint64_t{1} << 30;

std::uint32_t read_le32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= std::uint32_t{static_cast<unsigned char>(p[i])} << (8 * i);
  return v;
}

void write_le32(char* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<char>(v >> (8 * i));
}

[[noreturn]] void io_fail(const std::string& what, const std::string& path) {
  throw std::runtime_error("journal " + path + ": " + what + ": " +
                           std::strerror(errno));
}

}  // namespace

JournalRecovery recover_journal(const std::string& path, const char* magic8) {
  const char* magic = magic8 ? magic8 : kMagic;
  JournalRecovery out;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    out.note = "journal " + path + ": no existing file, starting fresh";
    return out;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  out.file_bytes = bytes.size();
  if (bytes.empty()) {
    out.note = "journal " + path + ": zero-length file, starting fresh";
    return out;
  }
  if (bytes.size() < kHeaderBytes ||
      std::memcmp(bytes.data(), magic, kHeaderBytes) != 0) {
    out.truncated = true;
    out.note = "journal " + path +
               ": unrecognized header, discarding all " +
               std::to_string(bytes.size()) + " bytes (truncating at offset 0)";
    return out;
  }

  std::size_t pos = kHeaderBytes;
  out.valid_bytes = pos;
  while (pos + 8 <= bytes.size()) {
    const std::uint64_t len = read_le32(bytes.data() + pos);
    const std::uint32_t want_crc = read_le32(bytes.data() + pos + 4);
    if (len > kMaxRecordBytes || pos + 8 + len > bytes.size()) break;
    const char* payload = bytes.data() + pos + 8;
    if (crc32(payload, static_cast<std::size_t>(len)) != want_crc) break;
    out.records.emplace_back(payload, static_cast<std::size_t>(len));
    pos += 8 + static_cast<std::size_t>(len);
    out.valid_bytes = pos;
  }
  if (out.valid_bytes < out.file_bytes) {
    out.truncated = true;
    out.note = "journal " + path + ": torn/corrupt record after " +
               std::to_string(out.records.size()) +
               " valid records, truncating " +
               std::to_string(out.file_bytes - out.valid_bytes) +
               " bytes at offset " + std::to_string(out.valid_bytes);
  }
  return out;
}

JournalWriter::JournalWriter(const std::string& path, JournalConfig config,
                             std::uint64_t start_bytes, const char* magic8)
    : config_(config) {
  const char* magic = magic8 ? magic8 : kMagic;
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd_ < 0) io_fail("open failed", path);
  // Drop any corrupt tail found by recovery; a fresh or reset file gets
  // the header (re)written.
  if (start_bytes < kHeaderBytes) start_bytes = 0;
  if (::ftruncate(fd_, static_cast<off_t>(start_bytes)) != 0)
    io_fail("ftruncate failed", path);
  if (::lseek(fd_, 0, SEEK_END) < 0) io_fail("lseek failed", path);
  if (start_bytes == 0) {
    if (::write(fd_, magic, kHeaderBytes) !=
        static_cast<ssize_t>(kHeaderBytes))
      io_fail("header write failed", path);
  }
}

JournalWriter::~JournalWriter() {
  if (fd_ >= 0) {
    try {
      write_out();
    } catch (...) {
      // destructor must not throw; an undrained tail is a torn journal,
      // which recovery handles
    }
    ::fsync(fd_);
    ::close(fd_);
  }
}

void JournalWriter::append(const std::string& payload) {
  char frame[8];
  write_le32(frame, static_cast<std::uint32_t>(payload.size()));
  write_le32(frame + 4, crc32(payload));
  buf_.append(frame, sizeof(frame));
  buf_ += payload;
  ++appended_;
  OBS_COUNTER_INC("citroen_journal_appends_total");
  OBS_COUNTER_ADD("citroen_journal_bytes_total", 8 + payload.size());
  if (++unsynced_ >= std::max(1, config_.fsync_every)) {
    OBS_SPAN("journal_fdatasync", "persist");
    write_out();
    // fdatasync suffices mid-run: it flushes the data and the file size,
    // which is all recovery needs. flush() pays for the full fsync at
    // graceful-shutdown and checkpoint barriers.
    ::fdatasync(fd_);
    unsynced_ = 0;
  }
}

void JournalWriter::write_out() {
  std::size_t off = 0;
  while (off < buf_.size()) {
    const ssize_t n = ::write(fd_, buf_.data() + off, buf_.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      io_fail("append failed", "<open journal>");
    }
    off += static_cast<std::size_t>(n);
  }
  buf_.clear();
}

void JournalWriter::flush() {
  if (fd_ >= 0) {
    OBS_SPAN("journal_flush", "persist");
    OBS_COUNTER_INC("citroen_journal_flushes_total");
    write_out();
    ::fsync(fd_);
    unsynced_ = 0;
  }
}

}  // namespace citroen::persist
