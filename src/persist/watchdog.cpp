#include "persist/watchdog.hpp"

#include <ctime>
#include <limits>

namespace citroen::persist {

namespace {

double monotonic_now() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

void on_stop_signal(int) { Watchdog::instance().request_stop(); }

}  // namespace

Watchdog& Watchdog::instance() {
  static Watchdog w;
  return w;
}

void Watchdog::install_signal_handlers() {
  if (handlers_installed_) return;
  struct sigaction sa{};
  sa.sa_handler = on_stop_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // interrupt blocking syscalls so the run loop notices
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  handlers_installed_ = true;
}

void Watchdog::set_deadline_seconds(double seconds) {
  if (seconds <= 0.0) {
    deadline_armed_ = false;
    return;
  }
  deadline_armed_ = true;
  deadline_monotonic_ = monotonic_now() + seconds;
}

bool Watchdog::stop_requested() const {
  if (stop_flag_) return true;
  return deadline_armed_ && monotonic_now() >= deadline_monotonic_;
}

bool Watchdog::deadline_imminent(double margin_seconds) const {
  if (!deadline_armed_) return false;
  return monotonic_now() + margin_seconds >= deadline_monotonic_;
}

void Watchdog::reset() {
  stop_flag_ = 0;
  deadline_armed_ = false;
}

double Watchdog::seconds_remaining() const {
  if (!deadline_armed_) return std::numeric_limits<double>::infinity();
  return deadline_monotonic_ - monotonic_now();
}

}  // namespace citroen::persist
