#pragma once
// Shared corruption-quarantine policy: a file that failed validation is
// moved aside — never silently deleted — so an operator can inspect what
// went wrong while the writer restarts cold. Used by the prefix cache's
// disk tier and the transfer corpus loader.

#include <cstdio>
#include <string>

#include <unistd.h>

namespace citroen::persist {

/// Atomically rename `path` to "<path>.bad" — or "<path>.bad.1",
/// "<path>.bad.2", … when earlier quarantined copies already occupy the
/// name. After 16 copies the base name is recycled rather than growing
/// unboundedly. Returns the chosen destination, or an empty string when
/// rename was impossible and the file was unlinked instead (cross-device
/// moves, permissions); either way `path` no longer exists afterwards.
inline std::string quarantine_file(const std::string& path) {
  const std::string base = path + ".bad";
  std::string dest = base;
  for (int i = 1; ::access(dest.c_str(), F_OK) == 0 && i <= 16; ++i)
    dest = base + "." + std::to_string(i);
  if (::access(dest.c_str(), F_OK) == 0) {
    ::unlink(base.c_str());
    dest = base;
  }
  if (::rename(path.c_str(), dest.c_str()) == 0) return dest;
  ::unlink(path.c_str());
  return std::string();
}

}  // namespace citroen::persist
