#pragma once
// Write-ahead journaling decorator over `sim::Evaluator`.
//
// Every `evaluate` call is recorded as (index, assignment, outcome) and
// pushed through the owning RunSession *after* the inner evaluator ran —
// during replay the push byte-verifies the recomputed record against the
// journal; past the recovered tail it appends and fsyncs on the session's
// cadence. Compile-only calls and prefetches are pure (memoized) work and
// are not journaled.
//
// Header-only so the persist library needs no link dependency on sim;
// only translation units that already use both pay for the include.

#include <cstdint>
#include <stdexcept>
#include <string>

#include "passes/pass.hpp"
#include "persist/codec.hpp"
#include "persist/run_session.hpp"
#include "sim/evaluator.hpp"

namespace citroen::persist {

/// Journal record tags. Eval records come from JournaledEvaluator;
/// Sample records are continuous-domain (x, y) observations journaled by
/// the AIBO runner, which evaluates synthetic objectives directly.
inline constexpr std::uint8_t kRecordEval = 1;
inline constexpr std::uint8_t kRecordSample = 2;

/// Pass sequences dominate journal bytes (a length-prefixed string per
/// pass), and the journal is on the per-evaluation hot path. Encode each
/// pass as its dense registry id in two bytes instead; 0xFFFF escapes to
/// a literal string for names outside the registry. Registry order is
/// compiled in, so a resumed process decodes ids identically — and a
/// build whose registry changed surfaces as replay divergence, which the
/// session already handles by rebasing.
inline void put_compact_assignment(Writer& w,
                                   const sim::SequenceAssignment& a) {
  const auto& reg = passes::PassRegistry::instance();
  w.u64(a.size());
  for (const auto& [module, seq] : a) {
    w.str(module);
    w.u32(static_cast<std::uint32_t>(seq.size()));
    for (const auto& name : seq) {
      const int id = reg.id_of(name);
      if (id >= 0 && id < 0xFFFF) {
        w.u8(static_cast<std::uint8_t>(id & 0xFF));
        w.u8(static_cast<std::uint8_t>(id >> 8));
      } else {
        w.u8(0xFF);
        w.u8(0xFF);
        w.str(name);
      }
    }
  }
}

inline void get_compact_assignment(Reader& r, sim::SequenceAssignment& a) {
  const auto& reg = passes::PassRegistry::instance();
  a.clear();
  const std::uint64_t modules = r.u64();
  for (std::uint64_t m = 0; m < modules; ++m) {
    const std::string module = r.str();
    auto& seq = a[module];
    const std::uint32_t n = r.u32();
    seq.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint32_t id =
          std::uint32_t{r.u8()} | (std::uint32_t{r.u8()} << 8);
      if (id == 0xFFFF) {
        seq.push_back(r.str());
      } else {
        if (id >= reg.num_passes())
          throw std::runtime_error("persist: pass id out of range");
        seq.push_back(reg.name_of(static_cast<passes::PassId>(id)));
      }
    }
  }
}

inline std::string encode_eval_record(std::uint64_t index,
                                      const sim::SequenceAssignment& a,
                                      const sim::EvalOutcome& o) {
  Writer w;
  w.u8(kRecordEval);
  w.u64(index);
  put_compact_assignment(w, a);
  sim::put(w, o);
  return w.take();
}

inline std::string encode_sample_record(std::uint64_t index, const Vec& x,
                                        double y) {
  Writer w;
  w.u8(kRecordSample);
  w.u64(index);
  put(w, x);
  w.f64(y);
  return w.take();
}

class JournaledEvaluator final : public sim::Evaluator {
 public:
  JournaledEvaluator(sim::Evaluator& inner, RunSession& session)
      : inner_(inner), session_(session) {}

  const ir::Program& base_program() const override {
    return inner_.base_program();
  }
  const std::string& program_name() const override {
    return inner_.program_name();
  }
  double o3_cycles() const override { return inner_.o3_cycles(); }
  double o0_cycles() const override { return inner_.o0_cycles(); }
  std::int64_t reference_output() const override {
    return inner_.reference_output();
  }
  std::vector<std::pair<std::string, double>> hot_modules() const override {
    return inner_.hot_modules();
  }
  sim::CompileOutcome compile(const sim::SequenceAssignment& seqs,
                              bool keep_program = false) const override {
    return inner_.compile(seqs, keep_program);
  }
  void prefetch(std::span<const sim::SequenceAssignment> batch,
                bool with_measure = true) override {
    inner_.prefetch(batch, with_measure);
  }
  bool is_quarantined(const sim::SequenceAssignment& seqs) const override {
    return inner_.is_quarantined(seqs);
  }
  void set_fault_injector(const sim::FaultInjector* injector) override {
    inner_.set_fault_injector(injector);
  }
  double total_compile_seconds() const override {
    return inner_.total_compile_seconds();
  }
  double total_measure_seconds() const override {
    return inner_.total_measure_seconds();
  }
  int num_compiles() const override { return inner_.num_compiles(); }
  int num_measurements() const override { return inner_.num_measurements(); }
  int num_cache_hits() const override { return inner_.num_cache_hits(); }

  sim::EvalOutcome evaluate(const sim::SequenceAssignment& seqs) override {
    const std::uint64_t index = session_.next_index();
    sim::EvalOutcome out = inner_.evaluate(seqs);
    session_.push(encode_eval_record(index, seqs, out));
    return out;
  }

  sim::Evaluator& inner() { return inner_; }
  RunSession& session() { return session_; }

 private:
  sim::Evaluator& inner_;
  RunSession& session_;
};

}  // namespace citroen::persist
