#include "persist/run_session.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "persist/checkpoint.hpp"
#include "persist/codec.hpp"

namespace citroen::persist {

RunSession::RunSession(const SessionConfig& config,
                       const std::string& run_name)
    : config_(config), run_name_(run_name) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(config_.dir, ec);
  journal_path_ = config_.dir + "/" + run_name_ + ".journal";
  checkpoint_path_ = config_.dir + "/" + run_name_ + ".ckpt";

  if (!config_.resume) {
    fs::remove(journal_path_, ec);
    fs::remove(checkpoint_path_, ec);
    return;
  }

  JournalRecovery rec = recover_journal(journal_path_);
  records_ = std::move(rec.records);
  recovered_valid_bytes_ = rec.valid_bytes;
  recovery_note_ = rec.note;

  std::string note;
  if (auto payload = read_checkpoint(checkpoint_path_, &note)) {
    try {
      Reader r(*payload);
      complete_ = r.b();
      state_records_ = r.u64();
      state_ = payload->substr(payload->size() - r.remaining());
      has_state_ = true;
    } catch (const std::exception& e) {
      // A CRC-valid checkpoint with a short body is a version skew or a
      // writer bug; treat like a missing checkpoint and replay in full.
      complete_ = false;
      has_state_ = false;
      state_.clear();
      state_records_ = 0;
      note = "checkpoint " + checkpoint_path_ + ": undecodable (" + e.what() +
             "), ignoring";
    }
  }
  checkpoint_note_ = note;
  // Records 0..K-1 are folded into the checkpointed state; the cursor
  // starts at K and re-executes only the tail.
  next_index_ = state_records_;
  last_checkpoint_records_ = state_records_;
}

RunSession::~RunSession() = default;

std::uint64_t RunSession::record_offset(std::uint64_t record_index) const {
  std::uint64_t off = kJournalHeaderBytes;
  for (std::uint64_t i = 0; i < record_index; ++i)
    off += 8 + records_[i].size();
  return off;
}

void RunSession::open_writer_at(std::uint64_t record_index) {
  // Appending at the recovered end reuses recovery's byte count (which is
  // 0 for a garbage-header file, forcing a fresh header); truncating at a
  // diverged record needs the computed frame offset.
  const std::uint64_t start = record_index >= records_.size()
                                  ? recovered_valid_bytes_
                                  : record_offset(record_index);
  writer_ = std::make_unique<JournalWriter>(
      journal_path_, JournalConfig{config_.fsync_every}, start);
}

void RunSession::push(const std::string& payload) {
  if (!diverged_ && next_index_ < records_.size()) {
    if (payload != records_[next_index_]) {
      std::fprintf(stderr,
                   "persist: %s: replay diverged at record %llu — keeping the "
                   "recomputed result and truncating the stale journal tail "
                   "(%llu records dropped)\n",
                   run_name_.c_str(),
                   static_cast<unsigned long long>(next_index_),
                   static_cast<unsigned long long>(records_.size() -
                                                   next_index_));
      diverged_ = true;
      open_writer_at(next_index_);
      writer_->append(payload);
    }
  } else {
    if (!writer_) open_writer_at(records_.size());
    writer_->append(payload);
  }
  const std::uint64_t index = next_index_++;
  if (config_.kill_at >= 0 && run_name_ == config_.kill_run &&
      static_cast<std::int64_t>(index) == config_.kill_at) {
    // Test kill-switch: die with the record durable but the checkpoint
    // stale, like a power cut between a measurement and the next
    // checkpoint. No destructors run; sibling runs' journals stay torn.
    flush();
    // _Exit skips the atexit trace/metrics flush, so dump both here:
    // a deadline-killed run must still leave a parseable trace file.
    obs::flush_all();
    std::_Exit(kExitKilled);
  }
}

void RunSession::flush() {
  if (writer_) writer_->flush();
}

bool RunSession::checkpoint_due() const {
  return next_index_ - last_checkpoint_records_ >=
         static_cast<std::uint64_t>(std::max(1, config_.checkpoint_every));
}

void RunSession::save_checkpoint(const std::string& state_blob,
                                 bool complete) {
  OBS_SPAN("checkpoint_save", "persist");
  OBS_COUNTER_INC("citroen_checkpoints_total");
  flush();  // the checkpoint must never claim records the journal lost
  Writer w;
  w.b(complete);
  w.u64(next_index_);
  w.bytes(state_blob.data(), state_blob.size());
  write_checkpoint(checkpoint_path_, w.data());
  last_checkpoint_records_ = next_index_;
}

}  // namespace citroen::persist
