#pragma once
// Seeded, reproducible pseudo-random number generation.
//
// All stochastic components in this library (heuristic optimisers, BO
// initial designs, workload generators) draw from an explicitly threaded
// `Rng` so that every experiment is reproducible from a single seed.

#include <cstdint>
#include <vector>

namespace citroen {

/// xoshiro256** PRNG with SplitMix64 seeding.
///
/// Deterministic across platforms; cheap to copy so optimisers can fork
/// independent streams via `split()`.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal deviate (Marsaglia polar method, cached spare).
  double normal();

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p);

  /// Fork an independent child stream (hashes internal state).
  Rng split();

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_index(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Sample an index from unnormalised non-negative weights.
  /// Falls back to uniform if all weights are zero.
  std::size_t categorical(const std::vector<double>& weights);

  /// Raw engine state for checkpointing. Restoring it resumes the stream
  /// exactly, including the cached Marsaglia spare deviate.
  struct State {
    std::uint64_t s[4];
    double spare;
    bool has_spare;
  };
  State state() const {
    return State{{s_[0], s_[1], s_[2], s_[3]}, spare_, has_spare_};
  }
  void set_state(const State& st) {
    for (int i = 0; i < 4; ++i) s_[i] = st.s[i];
    spare_ = st.spare;
    has_spare_ = st.has_spare;
  }

 private:
  std::uint64_t s_[4];
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace citroen
