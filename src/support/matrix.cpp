#include "support/matrix.hpp"

#include <cassert>
#include <cmath>

namespace citroen {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  // i-k-j loop order keeps the inner loop contiguous for row-major storage.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double* ci = c.row_ptr(i);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      const double* bk = b.row_ptr(k);
      for (std::size_t j = 0; j < b.cols(); ++j) ci[j] += aik * bk[j];
    }
  }
  return c;
}

Vec matvec(const Matrix& a, const Vec& x) {
  assert(a.cols() == x.size());
  Vec y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* ai = a.row_ptr(i);
    double acc = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) acc += ai[j] * x[j];
    y[i] = acc;
  }
  return y;
}

Vec matvec_transposed(const Matrix& a, const Vec& x) {
  assert(a.rows() == x.size());
  Vec y(a.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* ai = a.row_ptr(i);
    const double xi = x[i];
    for (std::size_t j = 0; j < a.cols(); ++j) y[j] += ai[j] * xi;
  }
  return y;
}

Vec Cholesky::solve_lower(const Vec& b) const {
  const std::size_t n = L.rows();
  Vec x(b);
  for (std::size_t i = 0; i < n; ++i) {
    const double* li = L.row_ptr(i);
    double acc = x[i];
    for (std::size_t j = 0; j < i; ++j) acc -= li[j] * x[j];
    x[i] = acc / li[i];
  }
  return x;
}

Vec Cholesky::solve_upper(const Vec& b) const {
  const std::size_t n = L.rows();
  Vec x(b);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= L(j, ii) * x[j];
    x[ii] = acc / L(ii, ii);
  }
  return x;
}

Vec Cholesky::solve(const Vec& b) const { return solve_upper(solve_lower(b)); }

double Cholesky::log_det() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < L.rows(); ++i) acc += std::log(L(i, i));
  return 2.0 * acc;
}

bool Cholesky::extend(const Vec& k_new, double diag) {
  if (!ok) return false;
  const std::size_t n = L.rows();
  if (k_new.size() != n) return false;
  // New row c solves L c = k_new; new pivot d = sqrt(diag - c.c).
  const Vec c = solve_lower(k_new);
  const double d2 = diag + jitter - dot(c, c);
  if (!(d2 > 1e-12) || !std::isfinite(d2)) return false;
  Matrix grown(n + 1, n + 1);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j) grown(i, j) = L(i, j);
  for (std::size_t j = 0; j < n; ++j) grown(n, j) = c[j];
  grown(n, n) = std::sqrt(d2);
  L = std::move(grown);
  return true;
}

namespace {

bool try_cholesky(const Matrix& a, double jitter, Matrix& out) {
  const std::size_t n = a.rows();
  out = Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a(i, j) + (i == j ? jitter : 0.0);
      const double* li = out.row_ptr(i);
      const double* lj = out.row_ptr(j);
      for (std::size_t k = 0; k < j; ++k) sum -= li[k] * lj[k];
      if (i == j) {
        if (sum <= 0.0 || !std::isfinite(sum)) return false;
        out(i, j) = std::sqrt(sum);
      } else {
        out(i, j) = sum / out(j, j);
      }
    }
  }
  return true;
}

}  // namespace

Cholesky cholesky(const Matrix& a, double initial_jitter, double max_jitter) {
  assert(a.rows() == a.cols());
  Cholesky result;
  // First try without jitter, then escalate: GP kernel matrices are often
  // numerically rank-deficient when inputs nearly coincide.
  if (try_cholesky(a, 0.0, result.L)) {
    result.ok = true;
    return result;
  }
  for (double j = initial_jitter; j <= max_jitter; j *= 10.0) {
    if (try_cholesky(a, j, result.L)) {
      result.jitter = j;
      result.ok = true;
      return result;
    }
  }
  result.ok = false;
  return result;
}

EigenSym eigh_jacobi(const Matrix& a, int max_sweeps) {
  const std::size_t n = a.rows();
  EigenSym e;
  Matrix m = a;
  e.vectors = Matrix::identity(n);
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) off += m(p, q) * m(p, q);
    }
    if (off < 1e-20) break;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = m(p, q);
        if (std::abs(apq) < 1e-15) continue;
        const double theta = (m(q, q) - m(p, p)) / (2.0 * apq);
        const double t = std::copysign(
            1.0 / (std::abs(theta) + std::sqrt(theta * theta + 1.0)), theta);
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (std::size_t i = 0; i < n; ++i) {
          const double mip = m(i, p), miq = m(i, q);
          m(i, p) = c * mip - s * miq;
          m(i, q) = s * mip + c * miq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double mpi = m(p, i), mqi = m(q, i);
          m(p, i) = c * mpi - s * mqi;
          m(q, i) = s * mpi + c * mqi;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double vip = e.vectors(i, p), viq = e.vectors(i, q);
          e.vectors(i, p) = c * vip - s * viq;
          e.vectors(i, q) = s * vip + c * viq;
        }
      }
    }
  }
  e.values.resize(n);
  for (std::size_t i = 0; i < n; ++i) e.values[i] = m(i, i);
  return e;
}

double dot(const Vec& a, const Vec& b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm2(const Vec& a) { return std::sqrt(dot(a, a)); }

void axpy(Vec& a, double s, const Vec& b) {
  assert(a.size() == b.size());
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += s * b[i];
}

}  // namespace citroen
