#pragma once
// Tiny environment-variable helpers. The repo's runtime knobs
// (CITROEN_THREADS, CITROEN_SANDBOX, CITROEN_SANDBOX_WORKERS, ...) all
// parse through here so the accepted syntax stays uniform: unset or
// unparsable values fall back, "0"/"false"/"off" disable flags.

#include <cstdlib>
#include <cstring>

namespace citroen::support {

/// Integer knob: `fallback` when unset or not a positive integer.
inline int env_int(const char* name, int fallback) {
  if (const char* v = std::getenv(name)) {
    const int n = std::atoi(v);
    if (n > 0) return n;
  }
  return fallback;
}

/// Boolean knob: false when unset, "0", "false" or "off"; true otherwise
/// (so `CITROEN_SANDBOX=1 ...` and `CITROEN_SANDBOX=on ...` both work).
inline bool env_flag(const char* name) {
  const char* v = std::getenv(name);
  if (!v || !*v) return false;
  return std::strcmp(v, "0") != 0 && std::strcmp(v, "false") != 0 &&
         std::strcmp(v, "off") != 0;
}

}  // namespace citroen::support
