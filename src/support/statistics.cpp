#include "support/statistics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace citroen {

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double acc = 0.0;
  for (double x : v) acc += x;
  return acc / static_cast<double>(v.size());
}

double variance(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  const double m = mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return acc / static_cast<double>(v.size());
}

double stddev(const std::vector<double>& v) { return std::sqrt(variance(v)); }

double median(std::vector<double> v) { return quantile(std::move(v), 0.5); }

double quantile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double geomean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double acc = 0.0;
  for (double x : v) {
    assert(x > 0.0);
    acc += std::log(x);
  }
  return std::exp(acc / static_cast<double>(v.size()));
}

double pearson(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  if (a.size() < 2) return 0.0;
  const double ma = mean(a), mb = mean(b);
  double sab = 0.0, saa = 0.0, sbb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sab += (a[i] - ma) * (b[i] - mb);
    saa += (a[i] - ma) * (a[i] - ma);
    sbb += (b[i] - mb) * (b[i] - mb);
  }
  if (saa <= 0.0 || sbb <= 0.0) return 0.0;
  return sab / std::sqrt(saa * sbb);
}

}  // namespace citroen
