#pragma once
// Descriptive statistics used when aggregating experiment runs.

#include <vector>

namespace citroen {

double mean(const std::vector<double>& v);
double variance(const std::vector<double>& v);  ///< population variance
double stddev(const std::vector<double>& v);
double median(std::vector<double> v);           ///< by value; sorts a copy
double quantile(std::vector<double> v, double q);
double geomean(const std::vector<double>& v);   ///< requires positive entries
double pearson(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace citroen
