#pragma once
// Work-stealing fork-join pool used by the batch evaluation engine
// (sim::ProgramEvaluator::prefetch) and the bench harnesses.
//
// The only primitive is `parallel_for`: indices are dealt round-robin
// into per-participant deques, the calling thread participates, and idle
// participants steal from the back of a victim's deque. A call made from
// inside a pool task runs inline on the calling thread, so nested
// parallelism (a parallel bench harness driving a parallel evaluator)
// degrades to serial execution instead of deadlocking.
//
// The pool imposes no ordering of its own: callers that need
// deterministic results must hand it pure tasks and merge serially,
// which is exactly what the evaluator's prefetch/replay split does.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace citroen {

class ThreadPool {
 public:
  /// `threads` <= 0 selects the default (`CITROEN_THREADS` env var, else
  /// the hardware concurrency). A pool of size 1 runs everything inline.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total participants: workers plus the calling thread.
  int size() const { return num_threads_; }

  /// Run fn(i) for every i in [0, n), blocking until all complete. The
  /// first exception thrown by a task is rethrown here after the loop
  /// drains. Reentrant calls execute inline.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& fn);

  /// Process-wide pool, sized once from `CITROEN_THREADS`/hardware.
  static ThreadPool& global();

  /// Default thread count (env override or hardware concurrency).
  static int default_threads();

 private:
  struct Shard;
  struct Loop;

  void worker_main(int id);
  static void run_loop(Loop& loop, std::size_t self);

  int num_threads_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers wait for a new loop
  std::condition_variable done_cv_;  ///< caller waits for loop completion
  std::shared_ptr<Loop> current_;
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
};

}  // namespace citroen
