#pragma once
// Output/input transforms used when fitting the GP surrogate.
//
// The thesis applies a Yeo-Johnson power transform to observed objective
// values to reduce skew (Sec. 4.3.2), and rescales inputs to [0,1]^d.

#include <cstddef>
#include <vector>

#include "support/matrix.hpp"

namespace citroen {

/// Yeo-Johnson power transform with maximum-likelihood lambda.
///
/// Unlike Box-Cox, Yeo-Johnson is defined for negative inputs, which occur
/// for reward-style objectives. `fit` selects lambda by golden-section
/// search on the profile log-likelihood, then standardises the transformed
/// values to zero mean / unit variance.
class YeoJohnson {
 public:
  /// Fit lambda (and post-transform mean/std) to the data.
  void fit(const Vec& y);

  /// Transform a single value with the fitted parameters.
  double transform(double y) const;

  /// Inverse of `transform`.
  double inverse(double z) const;

  /// Transform a vector.
  Vec transform(const Vec& y) const;

  double lambda() const { return lambda_; }
  double mean() const { return mean_; }
  double stddev() const { return std_; }

  /// Restore fitted parameters exactly (crash-safe resume).
  void set_params(double lambda, double mean, double stddev) {
    lambda_ = lambda;
    mean_ = mean;
    std_ = stddev;
  }

  /// Raw (unstandardised) Yeo-Johnson transform with parameter lambda.
  static double raw(double y, double lambda);
  /// Inverse of `raw`.
  static double raw_inverse(double z, double lambda);

 private:
  double lambda_ = 1.0;
  double mean_ = 0.0;
  double std_ = 1.0;
};

/// Per-dimension affine rescaling of inputs into [0, 1]^d.
class InputScaler {
 public:
  InputScaler() = default;
  InputScaler(Vec lower, Vec upper);

  /// Learn bounds from data (with a small margin so test points inside the
  /// convex hull stay within [0,1]).
  void fit(const std::vector<Vec>& xs);

  Vec to_unit(const Vec& x) const;
  Vec from_unit(const Vec& u) const;

  std::size_t dim() const { return lower_.size(); }
  const Vec& lower() const { return lower_; }
  const Vec& upper() const { return upper_; }

 private:
  Vec lower_;
  Vec upper_;
};

}  // namespace citroen
