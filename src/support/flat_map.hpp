#pragma once
// Sorted-vector map used for hot-path lookup tables, most importantly
// `sim::SequenceAssignment`: a tuner builds one assignment per candidate
// per iteration, and a node-per-entry std::map spends more time in the
// allocator than in the comparisons. Keys are kept sorted, so iteration
// order — and therefore every signature or hash derived from it —
// matches std::map exactly; lookups are binary searches over contiguous
// memory and construction is a single allocation.

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <stdexcept>
#include <utility>
#include <vector>

namespace citroen {

template <class K, class V>
class FlatMap {
 public:
  using value_type = std::pair<K, V>;
  using iterator = typename std::vector<value_type>::iterator;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  FlatMap() = default;
  FlatMap(std::initializer_list<value_type> init) : data_(init) {
    std::stable_sort(
        data_.begin(), data_.end(),
        [](const value_type& a, const value_type& b) {
          return a.first < b.first;
        });
    // As with std::map's initializer-list constructor, the first
    // occurrence of a duplicated key wins.
    data_.erase(std::unique(data_.begin(), data_.end(),
                            [](const value_type& a, const value_type& b) {
                              return a.first == b.first;
                            }),
                data_.end());
  }

  bool empty() const { return data_.empty(); }
  std::size_t size() const { return data_.size(); }
  void clear() { data_.clear(); }
  void reserve(std::size_t n) { data_.reserve(n); }

  iterator begin() { return data_.begin(); }
  iterator end() { return data_.end(); }
  const_iterator begin() const { return data_.begin(); }
  const_iterator end() const { return data_.end(); }

  iterator find(const K& k) {
    const auto it = lower(k);
    return (it != data_.end() && it->first == k) ? it : data_.end();
  }
  const_iterator find(const K& k) const {
    const auto it = lower(k);
    return (it != data_.end() && it->first == k) ? it : data_.end();
  }

  std::size_t count(const K& k) const { return find(k) != end() ? 1u : 0u; }
  bool contains(const K& k) const { return find(k) != end(); }

  V& operator[](const K& k) {
    auto it = lower(k);
    if (it == data_.end() || it->first != k)
      it = data_.insert(it, value_type(k, V{}));
    return it->second;
  }

  V& at(const K& k) {
    const auto it = find(k);
    if (it == data_.end()) throw std::out_of_range("FlatMap::at");
    return it->second;
  }
  const V& at(const K& k) const {
    const auto it = find(k);
    if (it == data_.end()) throw std::out_of_range("FlatMap::at");
    return it->second;
  }

  template <class... Args>
  std::pair<iterator, bool> emplace(const K& k, Args&&... args) {
    auto it = lower(k);
    if (it != data_.end() && it->first == k) return {it, false};
    it = data_.insert(it, value_type(k, V(std::forward<Args>(args)...)));
    return {it, true};
  }

  iterator erase(iterator it) { return data_.erase(it); }
  std::size_t erase(const K& k) {
    const auto it = find(k);
    if (it == data_.end()) return 0;
    data_.erase(it);
    return 1;
  }

  friend bool operator==(const FlatMap& a, const FlatMap& b) {
    return a.data_ == b.data_;
  }
  friend bool operator!=(const FlatMap& a, const FlatMap& b) {
    return !(a == b);
  }

 private:
  iterator lower(const K& k) {
    return std::lower_bound(
        data_.begin(), data_.end(), k,
        [](const value_type& e, const K& key) { return e.first < key; });
  }
  const_iterator lower(const K& k) const {
    return std::lower_bound(
        data_.begin(), data_.end(), k,
        [](const value_type& e, const K& key) { return e.first < key; });
  }

  std::vector<value_type> data_;
};

}  // namespace citroen
