#include "support/thread_pool.hpp"

#include <atomic>
#include <deque>
#include <exception>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/env.hpp"

namespace citroen {

namespace {
// Set while a thread is executing loop tasks; reentrant parallel_for
// calls then run inline instead of re-entering the pool.
thread_local bool tls_in_parallel_for = false;
}  // namespace

struct ThreadPool::Shard {
  std::mutex mu;
  std::deque<std::size_t> q;
};

struct ThreadPool::Loop {
  const std::function<void(std::size_t)>* fn = nullptr;
  std::vector<std::unique_ptr<Shard>> shards;
  std::atomic<std::size_t> pending{0};  ///< tasks not yet finished
  int active = 0;                       ///< workers inside run_loop (mu_)
  std::mutex err_mu;
  std::exception_ptr error;
};

int ThreadPool::default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return support::env_int("CITROEN_THREADS",
                          hw > 0 ? static_cast<int>(hw) : 1);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(0);
  return pool;
}

ThreadPool::ThreadPool(int threads)
    : num_threads_(threads > 0 ? threads : default_threads()) {
  workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (int id = 1; id < num_threads_; ++id)
    workers_.emplace_back([this, id] { worker_main(id); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_loop(Loop& loop, std::size_t self) {
  const std::size_t width = loop.shards.size();
  for (;;) {
    std::size_t idx = 0;
    bool got = false;
    {
      Shard& s = *loop.shards[self];
      const std::lock_guard<std::mutex> lock(s.mu);
      if (!s.q.empty()) {
        idx = s.q.front();
        s.q.pop_front();
        got = true;
      }
    }
    // Own deque empty: steal from the back of the first non-empty victim.
    for (std::size_t off = 1; off < width && !got; ++off) {
      Shard& s = *loop.shards[(self + off) % width];
      const std::lock_guard<std::mutex> lock(s.mu);
      if (!s.q.empty()) {
        idx = s.q.back();
        s.q.pop_back();
        got = true;
      }
    }
    if (!got) return;
    try {
      OBS_SPAN("pool_job", "pool");
      OBS_COUNTER_INC("citroen_pool_jobs_total");
      (*loop.fn)(idx);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(loop.err_mu);
      if (!loop.error) loop.error = std::current_exception();
    }
    loop.pending.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void ThreadPool::worker_main(int id) {
  std::uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Loop> loop;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [&] { return stop_ || (current_ && epoch_ != seen); });
      if (stop_) return;
      seen = epoch_;
      loop = current_;
      ++loop->active;
    }
    tls_in_parallel_for = true;
    run_loop(*loop, static_cast<std::size_t>(id) % loop->shards.size());
    tls_in_parallel_for = false;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      --loop->active;
    }
    done_cv_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || num_threads_ == 1 || tls_in_parallel_for) {
    const bool nested = tls_in_parallel_for;
    tls_in_parallel_for = true;
    try {
      for (std::size_t i = 0; i < n; ++i) fn(i);
    } catch (...) {
      tls_in_parallel_for = nested;
      throw;
    }
    tls_in_parallel_for = nested;
    return;
  }

  if (obs::trace_enabled())
    obs::emit('B', "parallel_for", "pool", 0, "n", n);
  OBS_COUNTER_INC("citroen_parallel_for_total");

  auto loop = std::make_shared<Loop>();
  loop->fn = &fn;
  const std::size_t width =
      std::min(static_cast<std::size_t>(num_threads_), n);
  loop->shards.reserve(width);
  for (std::size_t s = 0; s < width; ++s)
    loop->shards.push_back(std::make_unique<Shard>());
  for (std::size_t i = 0; i < n; ++i)
    loop->shards[i % width]->q.push_back(i);
  loop->pending.store(n, std::memory_order_release);

  {
    const std::lock_guard<std::mutex> lock(mu_);
    current_ = loop;
    ++epoch_;
  }
  work_cv_.notify_all();

  tls_in_parallel_for = true;
  run_loop(*loop, 0);
  tls_in_parallel_for = false;

  std::unique_lock<std::mutex> lock(mu_);
  if (current_ == loop) current_.reset();  // no further pickups
  done_cv_.wait(lock, [&] {
    return loop->pending.load(std::memory_order_acquire) == 0 &&
           loop->active == 0;
  });
  lock.unlock();

  if (obs::trace_enabled()) obs::emit('E', "parallel_for", "pool");
  if (loop->error) std::rethrow_exception(loop->error);
}

}  // namespace citroen
