#include "support/transforms.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace citroen {

double YeoJohnson::raw(double y, double lambda) {
  if (y >= 0.0) {
    if (std::abs(lambda) < 1e-12) return std::log1p(y);
    return (std::pow(y + 1.0, lambda) - 1.0) / lambda;
  }
  const double l2 = 2.0 - lambda;
  if (std::abs(l2) < 1e-12) return -std::log1p(-y);
  return -(std::pow(1.0 - y, l2) - 1.0) / l2;
}

double YeoJohnson::raw_inverse(double z, double lambda) {
  if (z >= 0.0) {
    if (std::abs(lambda) < 1e-12) return std::expm1(z);
    return std::pow(lambda * z + 1.0, 1.0 / lambda) - 1.0;
  }
  const double l2 = 2.0 - lambda;
  if (std::abs(l2) < 1e-12) return -std::expm1(-z);
  return 1.0 - std::pow(1.0 - l2 * z, 1.0 / l2);
}

namespace {

/// Profile log-likelihood of the Yeo-Johnson transform under a Gaussian model.
double yj_log_likelihood(const Vec& y, double lambda) {
  const std::size_t n = y.size();
  Vec z(n);
  for (std::size_t i = 0; i < n; ++i) z[i] = YeoJohnson::raw(y[i], lambda);
  double mean = 0.0;
  for (double v : z) mean += v;
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (double v : z) var += (v - mean) * (v - mean);
  var /= static_cast<double>(n);
  if (var <= 0.0 || !std::isfinite(var)) return -1e300;
  double ll = -0.5 * static_cast<double>(n) * std::log(var);
  // Jacobian term: sum (lambda-1) * sign-aware log(1+|y|).
  for (double v : y) {
    ll += (lambda - 1.0) * std::copysign(std::log1p(std::abs(v)), v) *
          (v >= 0.0 ? 1.0 : 1.0);
  }
  return ll;
}

}  // namespace

void YeoJohnson::fit(const Vec& y) {
  assert(!y.empty());
  // Golden-section search for lambda in [-2, 4].
  double a = -2.0, b = 4.0;
  const double gr = 0.5 * (std::sqrt(5.0) - 1.0);
  double c = b - gr * (b - a);
  double d = a + gr * (b - a);
  double fc = yj_log_likelihood(y, c);
  double fd = yj_log_likelihood(y, d);
  for (int it = 0; it < 60; ++it) {
    if (fc > fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - gr * (b - a);
      fc = yj_log_likelihood(y, c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + gr * (b - a);
      fd = yj_log_likelihood(y, d);
    }
  }
  lambda_ = 0.5 * (a + b);

  Vec z(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) z[i] = raw(y[i], lambda_);
  mean_ = 0.0;
  for (double v : z) mean_ += v;
  mean_ /= static_cast<double>(z.size());
  double var = 0.0;
  for (double v : z) var += (v - mean_) * (v - mean_);
  var /= static_cast<double>(z.size());
  std_ = var > 1e-300 ? std::sqrt(var) : 1.0;
}

double YeoJohnson::transform(double y) const {
  return (raw(y, lambda_) - mean_) / std_;
}

double YeoJohnson::inverse(double z) const {
  return raw_inverse(z * std_ + mean_, lambda_);
}

Vec YeoJohnson::transform(const Vec& y) const {
  Vec z(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) z[i] = transform(y[i]);
  return z;
}

InputScaler::InputScaler(Vec lower, Vec upper)
    : lower_(std::move(lower)), upper_(std::move(upper)) {
  assert(lower_.size() == upper_.size());
}

void InputScaler::fit(const std::vector<Vec>& xs) {
  assert(!xs.empty());
  const std::size_t d = xs[0].size();
  lower_.assign(d, 1e300);
  upper_.assign(d, -1e300);
  for (const Vec& x : xs) {
    for (std::size_t i = 0; i < d; ++i) {
      lower_[i] = std::min(lower_[i], x[i]);
      upper_[i] = std::max(upper_[i], x[i]);
    }
  }
  for (std::size_t i = 0; i < d; ++i) {
    if (upper_[i] - lower_[i] < 1e-12) upper_[i] = lower_[i] + 1.0;
  }
}

Vec InputScaler::to_unit(const Vec& x) const {
  Vec u(x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    u[i] = (x[i] - lower_[i]) / (upper_[i] - lower_[i]);
  return u;
}

Vec InputScaler::from_unit(const Vec& u) const {
  Vec x(u.size());
  for (std::size_t i = 0; i < u.size(); ++i)
    x[i] = lower_[i] + u[i] * (upper_[i] - lower_[i]);
  return x;
}

}  // namespace citroen
