#pragma once
// Minimal dense linear algebra used by the Gaussian-process surrogate:
// row-major matrices, Cholesky factorisation with adaptive jitter, and
// triangular solves. Sized for exact GP inference with up to a few
// thousand observations, which is the regime of BO-based autotuning.

#include <cstddef>
#include <vector>

namespace citroen {

using Vec = std::vector<double>;

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  double* row_ptr(std::size_t r) { return data_.data() + r * cols_; }
  const double* row_ptr(std::size_t r) const { return data_.data() + r * cols_; }

  Vec& data() { return data_; }
  const Vec& data() const { return data_; }

  static Matrix identity(std::size_t n);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  Vec data_;
};

/// C = A * B.
Matrix matmul(const Matrix& a, const Matrix& b);

/// y = A * x.
Vec matvec(const Matrix& a, const Vec& x);

/// y = A^T * x.
Vec matvec_transposed(const Matrix& a, const Vec& x);

/// Result of a Cholesky factorisation A = L L^T (L lower-triangular).
struct Cholesky {
  Matrix L;            ///< lower-triangular factor
  double jitter = 0.0; ///< diagonal jitter that was required for SPD-ness
  bool ok = false;     ///< false if factorisation failed even with max jitter

  /// Solve A x = b via forward/back substitution.
  Vec solve(const Vec& b) const;

  /// Solve L x = b (forward substitution).
  Vec solve_lower(const Vec& b) const;

  /// Solve L^T x = b (back substitution).
  Vec solve_upper(const Vec& b) const;

  /// log(det A) = 2 * sum(log diag L).
  double log_det() const;

  /// Rank-one extension: grow the factor of A to that of the bordered
  /// matrix [[A, k_new], [k_new^T, diag]] in O(n^2) instead of
  /// refactorising in O(n^3). The stored jitter is applied to the new
  /// diagonal element, matching what a fresh factorisation of the
  /// jittered matrix would produce. Returns false — leaving the factor
  /// unchanged — when the extension is not safely positive definite.
  bool extend(const Vec& k_new, double diag);
};

/// Factor a symmetric matrix, adding growing diagonal jitter (starting at
/// `initial_jitter`, multiplied by 10 up to `max_jitter`) until the
/// factorisation succeeds. The input is not modified.
Cholesky cholesky(const Matrix& a, double initial_jitter = 1e-10,
                  double max_jitter = 1e-2);

/// Eigendecomposition of a symmetric matrix via cyclic Jacobi rotations:
/// A = V diag(w) V^T. Used by CMA-ES for C^{1/2} and C^{-1/2}.
struct EigenSym {
  Vec values;   ///< ascending is not guaranteed; paired with columns of V
  Matrix vectors;  ///< eigenvectors as columns
};
EigenSym eigh_jacobi(const Matrix& a, int max_sweeps = 32);

/// Dot product.
double dot(const Vec& a, const Vec& b);

/// Euclidean norm.
double norm2(const Vec& a);

/// a += s * b.
void axpy(Vec& a, double s, const Vec& b);

}  // namespace citroen
