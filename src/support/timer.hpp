#pragma once
// Wall-clock stopwatch for the algorithmic-runtime experiments
// (Table 4.2, Figure 5.12).

#include <chrono>

namespace citroen {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace citroen
