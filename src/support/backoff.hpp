#pragma once
// Shared retry/backoff arithmetic.
//
// Three independent subsystems sleep-and-retry against correlated
// failure: the sandbox supervisor respawning dead workers, the serving
// client resubmitting after daemon restarts, and the dist pool
// reconnecting to lost peers. Each used to carry its own splitmix64 +
// jitter formula; this header is the single unit-tested implementation
// all of them draw from. Results never depend on these values — jitter
// only stretches sleeps — so the stream seed is free to differ per site.

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace citroen::support {

/// Deterministic 64-bit mixer (Vigna's splitmix64). Advances `state`.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Uniform double in [0, 1) drawn from the splitmix64 stream `state`.
inline double uniform_unit(std::uint64_t* state) {
  return static_cast<double>(splitmix64(*state) >> 11) * 0x1.0p-53;
}

/// `base_seconds` scaled by a uniform factor in [1 - jitter, 1 + jitter]
/// (jitter clamped to [0, 1]). Anti-thundering-herd for fixed schedules:
/// N agents sleeping the same exponential ladder decorrelate instead of
/// retrying in lockstep. jitter == 0 returns base_seconds exactly.
inline double jittered_backoff(double base_seconds, double jitter,
                               std::uint64_t* state) {
  const double j = std::clamp(jitter, 0.0, 1.0);
  if (j <= 0) return base_seconds;
  return base_seconds * (1.0 - j + 2.0 * j * uniform_unit(state));
}

/// Exponential schedule with full jitter: cap = min(max, initial * 2^n),
/// returned delay uniform in [0.1 * cap, cap]. The 10% floor keeps a
/// hot-loop retry from ever spinning at zero delay. `attempt` counts
/// from 0 and is clamped so the shift can't overflow.
inline double full_jitter_backoff(int attempt, double initial_seconds,
                                  double max_seconds, std::uint64_t* state) {
  const double cap =
      std::min(max_seconds,
               initial_seconds * std::ldexp(1.0, std::clamp(attempt, 0, 20)));
  return cap * (0.1 + 0.9 * uniform_unit(state));
}

/// Fixed-ratio exponential ladder with proportional jitter — the
/// supervisor/peer respawn schedule: delay for the k-th consecutive
/// failure (k >= 1) is min(max, base * 2^(k-1)) stretched by
/// jittered_backoff.
inline double respawn_backoff(int consecutive_failures, double base_seconds,
                              double max_seconds, double jitter,
                              std::uint64_t* state) {
  const int k = std::max(1, consecutive_failures);
  const double base = std::min(
      max_seconds,
      base_seconds * std::ldexp(1.0, std::min(k - 1, 16)));
  return jittered_backoff(base, jitter, state);
}

}  // namespace citroen::support
