// Analysis-caching pass manager + the interned stat-key table backing the
// string-free StatsRegistry hot path. See passman.hpp for the contracts.

#include "passes/passman.hpp"

#include <array>
#include <atomic>
#include <cstdlib>
#include <deque>
#include <stdexcept>
#include <string_view>

#include "ir/verifier.hpp"

namespace citroen::passes {

// ---------------------------------------------------------------------------
// Stat-key interner
// ---------------------------------------------------------------------------

namespace {

constexpr std::size_t kMaxStatKeys = 4096;

/// Global append-only interner. Guarded by a resettable spinlock (the obs
/// idiom) so a freshly forked sandbox worker can clear a lock the parent
/// happened to hold; `by_id` entries are published with release stores so
/// `stat_key_name` never takes the lock. Leaked deliberately: StatKeys and
/// the names behind them live for the whole process.
struct StatInterner {
  std::atomic_flag lock = ATOMIC_FLAG_INIT;
  std::unordered_map<std::string, StatKey> index;
  std::deque<std::string> names;  // stable storage for by_id pointers
  std::array<std::atomic<const std::string*>, kMaxStatKeys> by_id{};
};

StatInterner& interner() {
  static StatInterner* g = new StatInterner();
  return *g;
}

struct SpinGuard {
  std::atomic_flag& flag;
  explicit SpinGuard(std::atomic_flag& f) : flag(f) {
    while (flag.test_and_set(std::memory_order_acquire)) {
    }
  }
  ~SpinGuard() { flag.clear(std::memory_order_release); }
};

}  // namespace

StatKey intern_stat_key(const std::string& full) {
  auto& in = interner();
  SpinGuard g(in.lock);
  const auto it = in.index.find(full);
  if (it != in.index.end()) return it->second;
  if (in.names.size() >= kMaxStatKeys)
    throw std::runtime_error("stat-key interner capacity exceeded");
  const StatKey id = static_cast<StatKey>(in.names.size());
  in.names.push_back(full);
  in.by_id[id].store(&in.names.back(), std::memory_order_release);
  in.index.emplace(full, id);
  return id;
}

StatKey intern_stat_key(const std::string& pass, const std::string& counter) {
  std::string full;
  full.reserve(pass.size() + 1 + counter.size());
  full += pass;
  full += '.';
  full += counter;
  return intern_stat_key(full);
}

const std::string& stat_key_name(StatKey key) {
  return *interner().by_id[key].load(std::memory_order_acquire);
}

void reset_stat_interner_after_fork() {
  interner().lock.clear(std::memory_order_release);
}

const char* analysis_name(AnalysisId id) {
  switch (id) {
    case AnalysisId::kDominators:
      return "dominators";
    case AnalysisId::kLoops:
      return "loops";
    case AnalysisId::kUseCounts:
      return "use-counts";
    case AnalysisId::kDefBlocks:
      return "def-blocks";
    case AnalysisId::kMemSummary:
      return "memory-summary";
    case AnalysisId::kNumAnalyses:
      break;
  }
  return "unknown-analysis";
}

// ---------------------------------------------------------------------------
// AnalysisManager
// ---------------------------------------------------------------------------

MemorySummary compute_memory_summary(const ir::Module& m,
                                     const ir::Function& f) {
  MemorySummary out;
  out.block_has_store.assign(f.blocks.size(), 0);
  out.block_has_side_call.assign(f.blocks.size(), 0);
  for (ir::BlockId b = 0; b < static_cast<ir::BlockId>(f.blocks.size()); ++b) {
    for (ir::ValueId id : f.block(b).insts) {
      const ir::Instr& in = f.instr(id);
      if (in.dead()) continue;
      if (ir::writes_memory(in.op))
        out.block_has_store[static_cast<std::size_t>(b)] = 1;
      if (in.op == ir::Opcode::Call) {
        const ir::Function* callee = m.find_function(in.callee);
        if (!callee || !callee->attr_readnone)
          out.block_has_side_call[static_cast<std::size_t>(b)] = 1;
      }
    }
  }
  return out;
}

bool AnalysisManager::cache_enabled_from_env() {
  const char* v = std::getenv("CITROEN_ANALYSIS_CACHE");
  return !v || std::string_view(v) != "0";
}

namespace {

/// Loop info is derived from the dominator tree, so dropping dominators
/// must drop loops with it.
AnalysisSet normalize_mask(AnalysisSet s) {
  if (s & kAnalysisDominators) s |= kAnalysisLoops;
  return s;
}

bool dom_equal(const ir::DomTree& a, const ir::DomTree& b) {
  return a.idom == b.idom && a.children == b.children &&
         a.rpo_index == b.rpo_index && a.rpo == b.rpo &&
         a.reachable == b.reachable;
}

bool loops_equal(const std::vector<ir::Loop>& a,
                 const std::vector<ir::Loop>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].header != b[i].header || a[i].preheader != b[i].preheader ||
        a[i].blocks != b[i].blocks || a[i].latches != b[i].latches ||
        a[i].exits != b[i].exits || a[i].depth != b[i].depth)
      return false;
  }
  return true;
}

}  // namespace

const ir::DomTree& AnalysisManager::dominators(const ir::Function& f) {
  Entry& e = cache_[&f];
  if (enabled_ && e.dom) {
    ++stats_.reused;
    return *e.dom;
  }
  e.dom = ir::compute_dominators(f);
  ++stats_.computed;
  return *e.dom;
}

const std::vector<ir::Loop>& AnalysisManager::loops(const ir::Function& f) {
  Entry& e = cache_[&f];
  if (enabled_ && e.loops) {
    ++stats_.reused;
    return *e.loops;
  }
  const ir::DomTree& dt = dominators(f);
  e.loops = ir::find_loops(f, dt);
  ++stats_.computed;
  return *e.loops;
}

const std::vector<int>& AnalysisManager::use_counts(const ir::Function& f) {
  Entry& e = cache_[&f];
  if (enabled_ && e.uses) {
    ++stats_.reused;
    return *e.uses;
  }
  e.uses = ir::count_uses(f);
  ++stats_.computed;
  return *e.uses;
}

const std::vector<ir::BlockId>& AnalysisManager::def_blocks(
    const ir::Function& f) {
  Entry& e = cache_[&f];
  if (enabled_ && e.defs) {
    ++stats_.reused;
    return *e.defs;
  }
  e.defs = ir::def_blocks(f);
  ++stats_.computed;
  return *e.defs;
}

const MemorySummary& AnalysisManager::memory_summary(const ir::Module& m,
                                                     const ir::Function& f) {
  Entry& e = cache_[&f];
  if (enabled_ && e.mem) {
    ++stats_.reused;
    return *e.mem;
  }
  e.mem = compute_memory_summary(m, f);
  ++stats_.computed;
  return *e.mem;
}

void AnalysisManager::invalidate(const ir::Function& f, AnalysisSet what) {
  what = normalize_mask(what);
  const auto it = cache_.find(&f);
  if (it == cache_.end() || what == kNoAnalyses) return;
  ++stats_.invalidations;
  Entry& e = it->second;
  if (what & kAnalysisDominators) e.dom.reset();
  if (what & kAnalysisLoops) e.loops.reset();
  if (what & kAnalysisUseCounts) e.uses.reset();
  if (what & kAnalysisDefBlocks) e.defs.reset();
  if (what & kAnalysisMemSummary) e.mem.reset();
}

void AnalysisManager::apply_invalidation(AnalysisSet what) {
  what = normalize_mask(what);
  if (cache_.empty() || what == kNoAnalyses) return;
  ++stats_.invalidations;
  if (what == kAllAnalyses) {
    // Function identity itself may be stale (e.g. globalopt erased module
    // functions, shifting the rest): the pointer keys cannot be trusted.
    cache_.clear();
    return;
  }
  for (auto& [fp, e] : cache_) {
    (void)fp;
    if (what & kAnalysisDominators) e.dom.reset();
    if (what & kAnalysisLoops) e.loops.reset();
    if (what & kAnalysisUseCounts) e.uses.reset();
    if (what & kAnalysisDefBlocks) e.defs.reset();
    if (what & kAnalysisMemSummary) e.mem.reset();
  }
}

std::string AnalysisManager::differential_check(const ir::Module& m) const {
  // Iterate module functions (not the cache) so entries whose Function was
  // erased are never dereferenced; such entries are simply unreachable.
  for (const auto& f : m.functions) {
    const auto it = cache_.find(&f);
    if (it == cache_.end()) continue;
    const Entry& e = it->second;
    if (e.dom && !dom_equal(*e.dom, ir::compute_dominators(f)))
      return std::string("stale dominators for function '") + f.name + "'";
    if (e.loops &&
        !loops_equal(*e.loops, ir::find_loops(f, ir::compute_dominators(f))))
      return std::string("stale loops for function '") + f.name + "'";
    if (e.uses && *e.uses != ir::count_uses(f))
      return std::string("stale use-counts for function '") + f.name + "'";
    if (e.defs && *e.defs != ir::def_blocks(f))
      return std::string("stale def-blocks for function '") + f.name + "'";
    if (e.mem) {
      const MemorySummary fresh = compute_memory_summary(m, f);
      if (e.mem->block_has_store != fresh.block_has_store ||
          e.mem->block_has_side_call != fresh.block_has_side_call)
        return std::string("stale memory-summary for function '") + f.name +
               "'";
    }
  }
  return {};
}

// ---------------------------------------------------------------------------
// PassManager
// ---------------------------------------------------------------------------

PassManagerOptions PassManagerOptions::from_env() {
  PassManagerOptions opts;
  opts.cache_enabled = AnalysisManager::cache_enabled_from_env();
  return opts;
}

bool PassManager::run_pass(Pass& p, ir::Module& m, StatsRegistry& stats) {
  const bool changed = p.run(m, stats, am_);
  if (changed) am_.apply_invalidation(p.invalidates());
  return changed;
}

StatsRegistry PassManager::run(ir::Module& m, const PassId* ids,
                               std::size_t n) {
  StatsRegistry stats;
  const auto& reg = PassRegistry::instance();
  for (std::size_t i = 0; i < n; ++i) {
    const auto pass = reg.create(ids[i]);
    run_pass(*pass, m, stats);
    if (opts_.verify_each) {
      const auto errs = ir::verify_module(m);
      if (!errs.empty())
        throw std::runtime_error("verifier failed after '" +
                                 reg.name_of(ids[i]) + "': " + errs.front());
      const std::string div = am_.differential_check(m);
      if (!div.empty())
        throw std::runtime_error("analysis cache divergence after '" +
                                 reg.name_of(ids[i]) + "': " + div);
    }
  }
  return stats;
}

bool Pass::run(ir::Module& m, StatsRegistry& stats) {
  AnalysisManager am;
  return run(m, stats, am);
}

}  // namespace citroen::passes
