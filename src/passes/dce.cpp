// dce: delete trivially dead (unused, side-effect-free) instructions.
// adce: aggressive DCE — everything is presumed dead until reached from a
//       root (stores, calls, returns, terminators, memory intrinsics), so
//       dead phi cycles and unused loads disappear too.

#include "passes/common.hpp"
#include "passes/factories.hpp"
#include "passes/passman.hpp"

namespace citroen::passes {

using namespace ir;

namespace {

bool removable(Opcode op) { return is_pure(op) || op == Opcode::Load; }

class DcePass final : public Pass {
 public:
  std::string name() const override { return "dce"; }
  std::vector<std::string> stat_names() const override {
    return {"NumDeleted"};
  }
  /// Kills pure instructions and loads: no CFG change, no store removed.
  AnalysisSet invalidates() const override {
    return kAnalysisUseCounts | kAnalysisDefBlocks;
  }
  bool run(Module& m, StatsRegistry& stats, AnalysisManager& am) override {
    bool changed = false;
    for (auto& f : m.functions) {
      bool local = true;
      while (local) {
        local = false;
        const auto& uses = am.use_counts(f);
        for (auto& bb : f.blocks) {
          for (ValueId id : bb.insts) {
            Instr& in = f.instr(id);
            if (in.dead() || !removable(in.op)) continue;
            if (uses[static_cast<std::size_t>(id)] == 0) {
              f.kill(id);
              stats.add(name(), "NumDeleted", 1);
              local = true;
              changed = true;
            }
          }
        }
        if (local) {
          f.purge_dead_from_blocks();
          // The next round re-queries use counts against the mutated IR.
          am.invalidate(f, kAnalysisUseCounts | kAnalysisDefBlocks);
        }
      }
    }
    return changed;
  }
};

class AdcePass final : public Pass {
 public:
  std::string name() const override { return "adce"; }
  std::vector<std::string> stat_names() const override {
    return {"NumRemoved"};
  }
  /// Kills pure instructions, loads, and dead phi cycles: no CFG change,
  /// no store or call removed (roots are always live).
  AnalysisSet invalidates() const override {
    return kAnalysisUseCounts | kAnalysisDefBlocks;
  }
  bool run(Module& m, StatsRegistry& stats, AnalysisManager&) override {
    bool changed = false;
    for (auto& f : m.functions) changed |= run_fn(f, stats);
    return changed;
  }

 private:
  bool run_fn(Function& f, StatsRegistry& stats) {
    std::vector<bool> live(f.instrs.size(), false);
    std::vector<ValueId> work;
    for (const auto& bb : f.blocks) {
      for (ValueId id : bb.insts) {
        const Instr& in = f.instr(id);
        if (in.dead()) continue;
        const bool root = is_terminator(in.op) || writes_memory(in.op) ||
                          in.op == Opcode::Call || in.op == Opcode::Alloca;
        if (root) {
          live[static_cast<std::size_t>(id)] = true;
          work.push_back(id);
        }
      }
    }
    while (!work.empty()) {
      const ValueId id = work.back();
      work.pop_back();
      for (ValueId op : f.instr(id).ops) {
        if (!live[static_cast<std::size_t>(op)]) {
          live[static_cast<std::size_t>(op)] = true;
          work.push_back(op);
        }
      }
    }
    bool changed = false;
    for (auto& bb : f.blocks) {
      for (ValueId id : bb.insts) {
        Instr& in = f.instr(id);
        if (in.dead() || in.op == Opcode::Arg) continue;
        if (!live[static_cast<std::size_t>(id)] && removable(in.op)) {
          f.kill(id);
          stats.add(name(), "NumRemoved", 1);
          changed = true;
        }
        // Phis are also removable when dead (they are pure).
        if (!live[static_cast<std::size_t>(id)] && in.op == Opcode::Phi) {
          f.kill(id);
          stats.add(name(), "NumRemoved", 1);
          changed = true;
        }
      }
    }
    if (changed) f.purge_dead_from_blocks();
    return changed;
  }
};

}  // namespace

std::unique_ptr<Pass> make_dce() { return std::make_unique<DcePass>(); }
std::unique_ptr<Pass> make_adce() { return std::make_unique<AdcePass>(); }

}  // namespace citroen::passes
