// instcombine / instsimplify / aggressive-instcombine: peephole rewrites.
//
// instcombine includes the sign-extension widening rule that reproduces
// the paper's Fig. 5.1 interaction: `sext64(mul32(sext32(a16), sext32(b16)))`
// is rewritten to `mul64(sext64(a16), sext64(b16))` — locally profitable
// (one instruction fewer) but it widens the multiply to i64, which the SLP
// vectoriser's profitability model then rejects. Running instcombine
// *between* mem2reg and slp-vectorizer therefore kills vectorisation,
// while running it after does not.

#include <array>

#include "passes/common.hpp"
#include "passes/factories.hpp"
#include "passes/passman.hpp"

namespace citroen::passes {

using namespace ir;

namespace {

bool is_pow2(std::int64_t v) { return v > 0 && (v & (v - 1)) == 0; }
int log2_i64(std::int64_t v) {
  int k = 0;
  while ((1LL << k) < v) ++k;
  return k;
}

/// Counter indices for the peephole engine's interned stat keys.
enum PeepholeCounter {
  kConstFold,
  kCanonicalized,
  kSimplified,
  kCombined,
  kWidenedMul,
  kExpanded,
  kNumPeepholeCounters,
};

/// The "pass.Counter" keys interned once per pass execution so the rewrite
/// loop increments counters without touching a string.
struct PeepholeKeys {
  std::array<StatKey, kNumPeepholeCounters> key;
  explicit PeepholeKeys(const std::string& pass)
      : key{intern_stat_key(pass, "NumConstFold"),
            intern_stat_key(pass, "NumCanonicalized"),
            intern_stat_key(pass, "NumSimplified"),
            intern_stat_key(pass, "NumCombined"),
            intern_stat_key(pass, "NumWidenedMul"),
            intern_stat_key(pass, "NumExpanded")} {}
};

/// Shared per-function peephole engine; the three passes enable different
/// rule sets (mirroring how LLVM's instsimplify is the "no new
/// instructions" subset of instcombine).
struct Peephole {
  Function& f;
  StatsRegistry& stats;
  const PeepholeKeys& keys;
  bool allow_new_instrs;      ///< instcombine: yes; instsimplify: no
  bool aggressive;            ///< aggressive-instcombine extras
  bool changed = false;

  void count(PeepholeCounter c) { stats.add(keys.key[c], 1); }

  void replace_with_const(BlockId b, std::size_t pos, ValueId id,
                          const FoldedConst& c) {
    const ValueId cid = insert_const(f, b, pos, f.instr(id).type, c);
    f.replace_all_uses(id, cid);
    f.kill(id);
    changed = true;
  }

  void replace_with_value(ValueId id, ValueId repl) {
    f.replace_all_uses(id, repl);
    f.kill(id);
    changed = true;
  }

  void run() {
    bool local = true;
    int rounds = 0;
    while (local && rounds++ < 8) {
      local = false;
      for (BlockId b = 0; b < static_cast<BlockId>(f.blocks.size()); ++b) {
        // Index loop: rules may insert constants into this block.
        for (std::size_t i = 0; i < f.block(b).insts.size(); ++i) {
          const ValueId id = f.block(b).insts[i];
          Instr& in = f.instr(id);
          if (in.dead()) continue;
          local |= visit(b, i, id, in);
        }
      }
      if (local) {
        f.purge_dead_from_blocks();
        changed = true;
      }
    }
  }

  bool visit(BlockId b, std::size_t pos, ValueId id, Instr& in) {
    // Constant folding (both passes).
    if (is_pure(in.op) && !in.ops.empty() && !in.type.is_vector()) {
      if (auto c = try_const_fold(f, in)) {
        replace_with_const(b, pos, id, *c);
        count(kConstFold);
        return true;
      }
    }

    // Canonicalise: constant operand of a commutative op goes right.
    if (is_commutative(in.op) && in.ops.size() == 2 &&
        const_int_value(f, in.ops[0]) && !const_int_value(f, in.ops[1])) {
      std::swap(in.ops[0], in.ops[1]);
      count(kCanonicalized);
      return true;
    }

    // Algebraic identities (value-returning only: instsimplify-safe).
    if (in.ops.size() == 2) {
      const auto rc = const_int_value(f, in.ops[1]);
      if (rc) {
        switch (in.op) {
          case Opcode::Add:
          case Opcode::Sub:
          case Opcode::Or:
          case Opcode::Xor:
          case Opcode::Shl:
          case Opcode::LShr:
          case Opcode::AShr:
            if (*rc == 0) {
              replace_with_value(id, in.ops[0]);
              count(kSimplified);
              return true;
            }
            break;
          case Opcode::Mul:
          case Opcode::SDiv:
            if (*rc == 1) {
              replace_with_value(id, in.ops[0]);
              count(kSimplified);
              return true;
            }
            if (in.op == Opcode::Mul && *rc == 0) {
              replace_with_const(b, pos, id, FoldedConst{false, 0, 0.0});
              count(kSimplified);
              return true;
            }
            break;
          case Opcode::And:
            if (*rc == 0) {
              replace_with_const(b, pos, id, FoldedConst{false, 0, 0.0});
              count(kSimplified);
              return true;
            }
            break;
          default:
            break;
        }
      }
      // x - x => 0 ; x ^ x => 0.
      if ((in.op == Opcode::Sub || in.op == Opcode::Xor) &&
          in.ops[0] == in.ops[1]) {
        replace_with_const(b, pos, id, FoldedConst{false, 0, 0.0});
        count(kSimplified);
        return true;
      }
    }

    // select c, x, x => x
    if (in.op == Opcode::Select && in.ops[1] == in.ops[2]) {
      replace_with_value(id, in.ops[1]);
      count(kSimplified);
      return true;
    }

    // sext(sext(x)) => sext(x) to the outer type.
    if (in.op == Opcode::SExt) {
      const Instr& inner = f.instr(in.ops[0]);
      if (inner.op == Opcode::SExt) {
        in.ops[0] = inner.ops[0];
        count(kCombined);
        return true;
      }
      // trunc-of-sext round trip: sext_T(trunc_S(x)) with T == type(x) and
      // S wide enough would need range info; skipped (not provable here).
    }
    if (in.op == Opcode::ZExt) {
      const Instr& inner = f.instr(in.ops[0]);
      if (inner.op == Opcode::ZExt) {
        in.ops[0] = inner.ops[0];
        count(kCombined);
        return true;
      }
    }
    // trunc(sext(x)) where trunc returns the original type => x.
    if (in.op == Opcode::Trunc) {
      const Instr& inner = f.instr(in.ops[0]);
      if ((inner.op == Opcode::SExt || inner.op == Opcode::ZExt) &&
          f.instr(inner.ops[0]).type == in.type) {
        replace_with_value(id, inner.ops[0]);
        count(kCombined);
        return true;
      }
    }

    if (!allow_new_instrs) return false;

    // ---- rules below may create instructions: instcombine only ----------

    // mul x, 2^k => shl x, k (cheaper on the machine model).
    if (in.op == Opcode::Mul && in.type.is_int() && !in.type.is_vector()) {
      const auto rc = const_int_value(f, in.ops[1]);
      if (rc && is_pow2(*rc) && *rc > 1) {
        const ValueId k = insert_const(
            f, b, pos, in.type, FoldedConst{false, log2_i64(*rc), 0.0});
        Instr& self = f.instr(id);  // arena may have reallocated
        self.op = Opcode::Shl;
        self.ops[1] = k;
        count(kCombined);
        return true;
      }
    }

    // The Fig. 5.1 widening rule:
    //   sext_W(mul_N(sext_N(a), sext_N(b))) => mul_W(sext_W(a), sext_W(b))
    // valid because the product of two values sign-extended from width
    // <= N/2 cannot wrap at width N.
    if (in.op == Opcode::SExt) {
      const Instr& mul = f.instr(in.ops[0]);
      if (mul.op == Opcode::Mul && !mul.type.is_vector()) {
        const Instr& sa = f.instr(mul.ops[0]);
        const Instr& sb = f.instr(mul.ops[1]);
        if (sa.op == Opcode::SExt && sb.op == Opcode::SExt) {
          const int wa = f.instr(sa.ops[0]).type.bit_width();
          const int wb = f.instr(sb.ops[0]).type.bit_width();
          if (wa * 2 <= mul.type.bit_width() &&
              wb * 2 <= mul.type.bit_width()) {
            // Capture before add_instr: the arena may reallocate and
            // invalidate every Instr reference held above.
            const ValueId src_a = sa.ops[0];
            const ValueId src_b = sb.ops[0];
            const Type out_ty = in.type;
            Instr na;
            na.op = Opcode::SExt;
            na.type = out_ty;
            na.ops = {src_a};
            const ValueId ida = f.add_instr(std::move(na));
            Instr nb;
            nb.op = Opcode::SExt;
            nb.type = out_ty;
            nb.ops = {src_b};
            const ValueId idb = f.add_instr(std::move(nb));
            auto& insts = f.block(b).insts;
            insts.insert(insts.begin() + static_cast<std::ptrdiff_t>(pos),
                         {ida, idb});
            Instr& self = f.instr(id);  // insertion may not invalidate; re-ref
            self.op = Opcode::Mul;
            self.ops = {ida, idb};
            count(kCombined);
            count(kWidenedMul);
            return true;
          }
        }
      }
    }

    if (!aggressive) return false;

    // ---- aggressive-instcombine extras -----------------------------------

    // (x + c1) + c2 => x + (c1 + c2) ; same for mul.
    if ((in.op == Opcode::Add || in.op == Opcode::Mul) &&
        !in.type.is_vector()) {
      const auto c2 = const_int_value(f, in.ops[1]);
      const Instr& lhs = f.instr(in.ops[0]);
      if (c2 && lhs.op == in.op && lhs.ops.size() == 2) {
        const auto c1 = const_int_value(f, lhs.ops[1]);
        if (c1) {
          const std::int64_t merged =
              in.op == Opcode::Add ? (*c1 + *c2) : (*c1 * *c2);
          const ValueId lhs0 = lhs.ops[0];
          const ValueId mc = insert_const(
              f, b, pos, in.type,
              FoldedConst{false, wrap_to_width(in.type, merged), 0.0});
          Instr& self = f.instr(id);  // arena may have reallocated
          self.ops = {lhs0, mc};
          count(kExpanded);
          return true;
        }
      }
    }

    // shl(shl(x, c1), c2) => shl(x, c1+c2) when c1+c2 < width.
    if (in.op == Opcode::Shl) {
      const auto c2 = const_int_value(f, in.ops[1]);
      const Instr& lhs = f.instr(in.ops[0]);
      if (c2 && lhs.op == Opcode::Shl) {
        const auto c1 = const_int_value(f, lhs.ops[1]);
        if (c1 && *c1 + *c2 < in.type.bit_width()) {
          const ValueId lhs0 = lhs.ops[0];
          const ValueId mc = insert_const(f, b, pos, in.type,
                                          FoldedConst{false, *c1 + *c2, 0.0});
          Instr& self = f.instr(id);  // arena may have reallocated
          self.ops = {lhs0, mc};
          count(kExpanded);
          return true;
        }
      }
    }
    return false;
  }
};

class InstCombinePass final : public Pass {
 public:
  std::string name() const override { return "instcombine"; }
  std::vector<std::string> stat_names() const override {
    return {"NumCombined", "NumConstFold", "NumSimplified",
            "NumCanonicalized", "NumWidenedMul"};
  }
  /// Block-local rewrites (insert constants, rewrite ops in place, kill
  /// instructions): no CFG change, no store or call touched.
  AnalysisSet invalidates() const override {
    return kAnalysisUseCounts | kAnalysisDefBlocks;
  }
  bool run(Module& m, StatsRegistry& stats, AnalysisManager&) override {
    bool changed = false;
    const PeepholeKeys keys(name());
    for (auto& f : m.functions) {
      Peephole p{f, stats, keys, /*allow_new_instrs=*/true,
                 /*aggressive=*/false};
      p.run();
      changed |= p.changed;
    }
    return changed;
  }
};

class InstSimplifyPass final : public Pass {
 public:
  std::string name() const override { return "instsimplify"; }
  std::vector<std::string> stat_names() const override {
    return {"NumConstFold", "NumSimplified", "NumCanonicalized"};
  }
  AnalysisSet invalidates() const override {
    return kAnalysisUseCounts | kAnalysisDefBlocks;
  }
  bool run(Module& m, StatsRegistry& stats, AnalysisManager&) override {
    bool changed = false;
    const PeepholeKeys keys(name());
    for (auto& f : m.functions) {
      Peephole p{f, stats, keys, /*allow_new_instrs=*/false,
                 /*aggressive=*/false};
      p.run();
      changed |= p.changed;
    }
    return changed;
  }
};

class AggressiveInstCombinePass final : public Pass {
 public:
  std::string name() const override { return "aggressive-instcombine"; }
  std::vector<std::string> stat_names() const override {
    return {"NumCombined", "NumConstFold", "NumSimplified",
            "NumCanonicalized", "NumWidenedMul", "NumExpanded"};
  }
  AnalysisSet invalidates() const override {
    return kAnalysisUseCounts | kAnalysisDefBlocks;
  }
  bool run(Module& m, StatsRegistry& stats, AnalysisManager&) override {
    bool changed = false;
    const PeepholeKeys keys(name());
    for (auto& f : m.functions) {
      Peephole p{f, stats, keys, /*allow_new_instrs=*/true,
                 /*aggressive=*/true};
      p.run();
      changed |= p.changed;
    }
    return changed;
  }
};

}  // namespace

std::unique_ptr<Pass> make_instcombine() {
  return std::make_unique<InstCombinePass>();
}
std::unique_ptr<Pass> make_instsimplify() {
  return std::make_unique<InstSimplifyPass>();
}
std::unique_ptr<Pass> make_aggressive_instcombine() {
  return std::make_unique<AggressiveInstCombinePass>();
}

}  // namespace citroen::passes
