// Extended loop-pass family, built on the analysis-caching pass manager.
// Like the first family (loop_passes.cpp), every pass here only fires on
// loops already normalised into counted form — `loop-simplify` must have
// created the preheader first (via `insert_loop_preheader`), so the tuner
// keeps having to discover loop-simplify-before-X orderings.
//
//   loop-fusion     : merge two adjacent counted loops with identical
//                     iteration spaces and provably disjoint memory into
//                     one loop (halves loop overhead, grows the body that
//                     SLP/unroll then chew on).
//   indvar-simplify : rewrite secondary affine induction variables as a
//                     function of the primary one, deleting their phi —
//                     unlocks loop-idiom/vectorise matchers that require
//                     a single-phi loop.
//   loop-peel       : clone the first iteration into the preheader when
//                     the trip count is odd, so x2/x4 partial unrolling
//                     (which needs an even count) can fire afterwards.

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "passes/common.hpp"
#include "passes/factories.hpp"
#include "passes/passman.hpp"

namespace citroen::passes {

using namespace ir;

namespace {

/// Underlying object of a memory address: the Alloca/GlobalAddr at the
/// bottom of a (possibly Gep-wrapped) pointer, or kNoValue when unknown.
ValueId underlying_object(const Function& f, ValueId addr) {
  ValueId v = addr;
  while (f.instr(v).op == Opcode::Gep) v = f.instr(v).ops[0];
  const Opcode op = f.instr(v).op;
  return (op == Opcode::Alloca || op == Opcode::GlobalAddr) ? v : kNoValue;
}

/// Conservative must-not-alias for two underlying objects (same test the
/// loop-idiom memcpy matcher uses).
bool provably_distinct(const Function& f, ValueId a, ValueId b) {
  const Instr& ia = f.instr(a);
  const Instr& ib = f.instr(b);
  if (ia.op == Opcode::GlobalAddr && ib.op == Opcode::GlobalAddr)
    return ia.global_index != ib.global_index;
  if (ia.op == Opcode::Alloca && ib.op == Opcode::Alloca) return a != b;
  return true;  // alloca vs global never alias
}

/// Underlying objects read and written by a counted loop. `unknown` is set
/// when any access cannot be resolved to a distinct object (or a call /
/// memory intrinsic appears) — fusion then has to assume aliasing.
struct MemRefs {
  std::vector<ValueId> reads;
  std::vector<ValueId> writes;
  bool unknown = false;
};

MemRefs loop_mem_refs(const Function& f, const CountedLoop& cl) {
  MemRefs r;
  for (BlockId b : {cl.header, cl.body}) {
    for (ValueId id : f.block(b).insts) {
      const Instr& in = f.instr(id);
      if (in.dead()) continue;
      if (in.op == Opcode::Load) {
        const ValueId o = underlying_object(f, in.ops[0]);
        if (o == kNoValue) {
          r.unknown = true;
          return r;
        }
        r.reads.push_back(o);
      } else if (in.op == Opcode::Store) {
        const ValueId o = underlying_object(f, in.ops[1]);
        if (o == kNoValue) {
          r.unknown = true;
          return r;
        }
        r.writes.push_back(o);
      } else if (in.op == Opcode::Call || in.op == Opcode::Memset ||
                 in.op == Opcode::Memcpy) {
        r.unknown = true;
        return r;
      }
    }
  }
  return r;
}

bool all_distinct(const Function& f, const std::vector<ValueId>& xs,
                  const std::vector<ValueId>& ys) {
  for (ValueId x : xs) {
    for (ValueId y : ys) {
      if (!provably_distinct(f, x, y)) return false;
    }
  }
  return true;
}

/// Any value defined inside the loop used outside it (exit values)?
bool values_escape(const Function& f, const CountedLoop& cl) {
  std::vector<bool> inside(f.instrs.size(), false);
  for (BlockId b : {cl.header, cl.body}) {
    for (ValueId id : f.block(b).insts)
      inside[static_cast<std::size_t>(id)] = true;
  }
  for (BlockId b = 0; b < static_cast<BlockId>(f.blocks.size()); ++b) {
    if (b == cl.header || b == cl.body) continue;
    for (ValueId uid : f.block(b).insts) {
      const Instr& u = f.instr(uid);
      if (u.dead()) continue;
      for (ValueId op : u.ops) {
        if (inside[static_cast<std::size_t>(op)]) return true;
      }
    }
  }
  return false;
}

class LoopFusionPass final : public Pass {
 public:
  std::string name() const override { return "loop-fusion"; }
  std::vector<std::string> stat_names() const override {
    return {"NumFused"};
  }
  AnalysisSet invalidates() const override { return kAllAnalyses; }
  bool run(Module& m, StatsRegistry& stats, AnalysisManager& am) override {
    bool changed = false;
    for (auto& f : m.functions) {
      bool local = true;
      while (local) {
        local = false;
        const auto& loops = am.loops(f);
        for (const auto& la : loops) {
          const auto a = match_counted_loop(f, la);
          if (!a || !a->reduction_phis.empty()) continue;
          for (const auto& lb : loops) {
            if (&la == &lb) continue;
            const auto b = match_counted_loop(f, lb);
            if (!b || !b->reduction_phis.empty()) continue;
            if (fuse(f, *a, *b)) {
              stats.add(name(), "NumFused", 1);
              changed = true;
              local = true;
              break;
            }
          }
          if (local) break;
        }
        if (local) am.invalidate(f, kAllAnalyses);
      }
    }
    return changed;
  }

 private:
  bool fuse(Function& f, const CountedLoop& a, const CountedLoop& b) {
    // B must directly follow A: A's exit is B's preheader, reached only
    // from A's header, and contains nothing but the branch into B. (The
    // single-branch requirement also guarantees no value B depends on is
    // defined in the glue block we delete below.)
    if (a.exit != b.preheader) return false;
    const ValueId glue_term = f.terminator(a.exit);
    if (glue_term == kNoValue || f.instr(glue_term).op != Opcode::Br)
      return false;
    for (ValueId id : f.block(a.exit).insts) {
      if (!f.instr(id).dead() && id != glue_term) return false;
    }
    const auto preds = f.predecessors();
    if (preds[static_cast<std::size_t>(a.exit)].size() != 1) return false;

    // Identical iteration spaces.
    if (a.init != b.init || a.step != b.step || a.limit != b.limit)
      return false;

    // No exit values: neither loop's results may be used after it (the
    // compilers' indvars exit-value rewrite removes iv uses beforehand).
    if (values_escape(f, a) || values_escape(f, b)) return false;

    // Memory disjointness: after fusion, iteration i of B runs before
    // iterations i+1.. of A, so every B access must be independent of
    // every A write (and vice versa).
    const MemRefs ma = loop_mem_refs(f, a);
    const MemRefs mb = loop_mem_refs(f, b);
    if (ma.unknown || mb.unknown) return false;
    if (!all_distinct(f, ma.writes, mb.reads) ||
        !all_distinct(f, ma.writes, mb.writes) ||
        !all_distinct(f, ma.reads, mb.writes))
      return false;

    // Splice B's body into A's, rewiring B's induction onto A's. B's own
    // increment is skipped (A already steps the shared iv); any in-body
    // use of it maps to A's increment, which precedes the splice point.
    auto& abody = f.block(a.body).insts;
    const ValueId aterm = f.terminator(a.body);
    std::erase(abody, aterm);
    std::unordered_map<ValueId, ValueId> map;
    map[b.iv_phi] = a.iv_phi;
    map[b.iv_next] = a.iv_next;
    std::vector<ValueId> src;
    for (ValueId id : f.block(b.body).insts) {
      if (id != b.iv_next) src.push_back(id);
    }
    clone_instr_list(f, src, a.body, map);
    f.block(a.body).insts.push_back(aterm);

    // A's header now exits straight past B.
    Instr& at = f.instr(f.terminator(a.header));
    for (auto& s : at.succs) {
      if (s == a.exit) s = b.exit;
    }
    retarget_phi_edges(f, b.exit, b.header, a.header);

    // Drop the glue block and B's loop.
    for (BlockId blk : {a.exit, b.header, b.body}) {
      for (ValueId id : f.block(blk).insts) f.kill(id);
      f.block(blk).insts.clear();
    }
    f.purge_dead_from_blocks();
    return true;
  }
};

class IndVarSimplifyPass final : public Pass {
 public:
  std::string name() const override { return "indvar-simplify"; }
  std::vector<std::string> stat_names() const override {
    return {"NumIVSimplified"};
  }
  /// Rewrites instructions and deletes a phi; the CFG is untouched, as is
  /// the store/call summary.
  AnalysisSet invalidates() const override {
    return kAnalysisUseCounts | kAnalysisDefBlocks;
  }
  bool run(Module& m, StatsRegistry& stats, AnalysisManager& am) override {
    bool changed = false;
    for (auto& f : m.functions) {
      const auto& loops = am.loops(f);
      for (const auto& loop : loops) {
        bool local = true;
        while (local) {
          local = false;
          const auto cl = match_counted_loop(f, loop);
          if (!cl || cl->step != 1) break;
          for (ValueId rp : cl->reduction_phis) {
            if (rewrite_secondary_iv(f, *cl, rp, am)) {
              stats.add(name(), "NumIVSimplified", 1);
              // No CFG edit: the loop info referenced above stays valid.
              am.invalidate(f, kAnalysisUseCounts | kAnalysisDefBlocks);
              changed = true;
              local = true;
              break;
            }
          }
        }
      }
    }
    return changed;
  }

 private:
  /// rp = phi [c0, preheader], [rp + c, body] is affine in the primary iv
  /// (step 1): rp == c0 + (iv - init) * c. Materialise that expression at
  /// the top of the body, redirect rp's uses to it, and delete the phi.
  bool rewrite_secondary_iv(Function& f, const CountedLoop& cl, ValueId rp,
                            AnalysisManager& am) {
    const Instr& p = f.instr(rp);
    const Type ty = p.type;
    if (!(ty == f.instr(cl.iv_phi).type)) return false;
    ValueId init_v = kNoValue, next_v = kNoValue;
    for (std::size_t k = 0; k < 2; ++k) {
      if (p.phi_blocks[k] == cl.preheader) {
        init_v = p.ops[k];
      } else if (p.phi_blocks[k] == cl.body) {
        next_v = p.ops[k];
      }
    }
    if (init_v == kNoValue || next_v == kNoValue || next_v == rp)
      return false;
    const auto c0 = const_int_value(f, init_v);
    if (!c0) return false;
    const Instr& nx = f.instr(next_v);
    if (nx.op != Opcode::Add || nx.ops[0] != rp) return false;
    const auto c = const_int_value(f, nx.ops[1]);
    if (!c) return false;
    // The increment must feed only the phi, and the phi must have no uses
    // outside the body (an exit use would need the final value instead).
    const auto& uses = am.use_counts(f);
    if (uses[static_cast<std::size_t>(next_v)] != 1) return false;
    for (BlockId b = 0; b < static_cast<BlockId>(f.blocks.size()); ++b) {
      if (b == cl.body) continue;
      for (ValueId uid : f.block(b).insts) {
        const Instr& u = f.instr(uid);
        if (u.dead() || uid == rp) continue;
        for (ValueId op : u.ops) {
          if (op == rp) return false;
        }
      }
    }

    // c0 + (iv - init) * c, at the top of the body. Wrapping arithmetic
    // matches the repeated-addition semantics of the original phi.
    std::size_t pos = 0;
    const ValueId c_init = insert_const(f, cl.body, pos++, ty,
                                        FoldedConst{false, cl.init, 0.0});
    Instr sub;
    sub.op = Opcode::Sub;
    sub.type = ty;
    sub.ops = {cl.iv_phi, c_init};
    const ValueId sid = f.add_instr(std::move(sub));
    auto insert_at = [&](ValueId id) {
      auto& insts = f.block(cl.body).insts;
      insts.insert(insts.begin() + static_cast<std::ptrdiff_t>(pos++), id);
    };
    insert_at(sid);
    const ValueId c_scale =
        insert_const(f, cl.body, pos++, ty, FoldedConst{false, *c, 0.0});
    Instr mul;
    mul.op = Opcode::Mul;
    mul.type = ty;
    mul.ops = {sid, c_scale};
    const ValueId mid = f.add_instr(std::move(mul));
    insert_at(mid);
    const ValueId c_base =
        insert_const(f, cl.body, pos++, ty, FoldedConst{false, *c0, 0.0});
    Instr add;
    add.op = Opcode::Add;
    add.type = ty;
    add.ops = {mid, c_base};
    const ValueId aid = f.add_instr(std::move(add));
    insert_at(aid);

    for (ValueId uid : f.block(cl.body).insts) {
      Instr& u = f.instr(uid);
      if (u.dead() || uid == next_v || uid == sid || uid == mid ||
          uid == aid)
        continue;
      for (auto& op : u.ops) {
        if (op == rp) op = aid;
      }
    }
    f.kill(next_v);
    f.kill(rp);
    f.purge_dead_from_blocks();
    return true;
  }
};

class LoopPeelPass final : public Pass {
 public:
  explicit LoopPeelPass(std::size_t max_body = 64) : max_body_(max_body) {}

  std::string name() const override { return "loop-peel"; }
  std::vector<std::string> stat_names() const override {
    return {"NumPeeled"};
  }
  /// Peeling clones the first iteration into the preheader: instructions
  /// are added but no block or edge changes, so dominators and loop
  /// structure survive. Cloned stores/calls land in the preheader, so the
  /// memory summary must be refreshed.
  AnalysisSet invalidates() const override {
    return kAnalysisUseCounts | kAnalysisDefBlocks | kAnalysisMemSummary;
  }
  bool run(Module& m, StatsRegistry& stats, AnalysisManager& am) override {
    bool changed = false;
    for (auto& f : m.functions) {
      const auto& loops = am.loops(f);
      for (const auto& loop : loops) {
        const auto cl = match_counted_loop(f, loop);
        if (!cl) continue;
        // Peel exactly when it rounds an odd trip count down to an even
        // one: the case that unblocks x2/x4 partial unrolling. (Also makes
        // the pass self-limiting — the result never matches again.)
        if (cl->trip_count < 3 || cl->trip_count % 2 == 0) continue;
        if (f.block(cl->body).insts.size() > max_body_) continue;
        peel(f, *cl);
        stats.add(name(), "NumPeeled", 1);
        // No CFG edit: the loop info referenced above stays valid.
        am.invalidate(f, kAnalysisUseCounts | kAnalysisDefBlocks |
                             kAnalysisMemSummary);
        changed = true;
      }
    }
    return changed;
  }

 private:
  void peel(Function& f, const CountedLoop& cl) {
    auto& ph = f.block(cl.preheader).insts;
    const ValueId pterm = f.terminator(cl.preheader);
    std::erase(ph, pterm);

    std::vector<ValueId> all_phis = cl.reduction_phis;
    all_phis.push_back(cl.iv_phi);
    std::unordered_map<ValueId, ValueId> init_of, latch_of;
    for (ValueId p : all_phis) {
      const Instr& pi = f.instr(p);
      for (std::size_t k = 0; k < 2; ++k) {
        if (pi.phi_blocks[k] == cl.preheader) init_of[p] = pi.ops[k];
        if (pi.phi_blocks[k] == cl.body) latch_of[p] = pi.ops[k];
      }
    }

    // First iteration, with every phi at its entry value.
    std::unordered_map<ValueId, ValueId> map = init_of;
    clone_instr_list(f, f.block(cl.body).insts, cl.preheader, map);

    // The peeled iv value is known statically; materialise it as a
    // constant so the loop stays in counted form for unroll/vectorise.
    Instr c;
    c.op = Opcode::ConstInt;
    c.type = f.instr(cl.iv_phi).type;
    c.imm = wrap_to_width(c.type, cl.init + cl.step);
    const ValueId cid = f.add_instr(std::move(c));
    f.block(cl.preheader).insts.push_back(cid);
    f.block(cl.preheader).insts.push_back(pterm);

    // Each phi's entry value becomes the peeled iteration's output.
    for (ValueId p : all_phis) {
      Instr& pi = f.instr(p);
      for (std::size_t k = 0; k < 2; ++k) {
        if (pi.phi_blocks[k] != cl.preheader) continue;
        if (p == cl.iv_phi) {
          pi.ops[k] = cid;
        } else {
          const ValueId lv = latch_of[p];
          const auto it = map.find(lv);
          pi.ops[k] = it != map.end() ? it->second : lv;
        }
      }
    }
  }

  std::size_t max_body_;
};

}  // namespace

std::unique_ptr<Pass> make_loop_fusion() {
  return std::make_unique<LoopFusionPass>();
}
std::unique_ptr<Pass> make_indvar_simplify() {
  return std::make_unique<IndVarSimplifyPass>();
}
std::unique_ptr<Pass> make_loop_peel() {
  return std::make_unique<LoopPeelPass>();
}

}  // namespace citroen::passes
