#pragma once
// Shared SSA-construction machinery: dominance frontiers and the alloca
// promotion engine used by both `mem2reg` and `sroa`.

#include <string>
#include <vector>

#include "ir/analysis.hpp"
#include "ir/module.hpp"
#include "passes/pass.hpp"

namespace citroen::passes {

/// Dominance frontier per block.
std::vector<std::vector<ir::BlockId>> dominance_frontiers(
    const ir::Function& f, const ir::DomTree& dt);

struct PromoteResult {
  int promoted = 0;    ///< allocas rewritten into SSA values
  int phis = 0;        ///< phi nodes inserted
  int dead_stores = 0; ///< stores removed along the way
};

/// Promote every scalar alloca whose only uses are same-typed loads and
/// stores (standard iterated-dominance-frontier phi placement + renaming).
/// With `am` given the dominator tree comes from the analysis cache; the
/// caller must have invalidated after any earlier mutation of `f`.
PromoteResult promote_allocas(ir::Function& f, AnalysisManager* am = nullptr);

/// True if the alloca with value id `a` is promotable in `f`.
bool is_promotable_alloca(const ir::Function& f, ir::ValueId a);

}  // namespace citroen::passes
