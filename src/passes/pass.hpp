#pragma once
// Pass framework: the MiniIR analogue of LLVM's legacy pass manager plus
// the `-stats` machinery that CITROEN's cost model consumes.
//
// Every transformation pass increments named counters while it runs; the
// aggregated counters (keyed "pass.Counter", e.g. "slp.NumVectorInstrs")
// form the *compilation statistics* feature vector of the paper.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/module.hpp"

namespace citroen::passes {

/// Dense pass identifier: index into the registry's stable pass order.
/// Hot paths (prefix-cache keys, sequence hashing, pipeline execution)
/// work on interned ids; the string API stays at the edges.
using PassId = std::uint16_t;

/// Aggregated `-stats` counters for one compilation.
class StatsRegistry {
 public:
  void add(const std::string& pass, const std::string& counter,
           std::int64_t delta) {
    if (delta != 0) counters_[pass + "." + counter] += delta;
  }

  std::int64_t get(const std::string& key) const {
    const auto it = counters_.find(key);
    return it == counters_.end() ? 0 : it->second;
  }

  /// Store a counter unconditionally, zero included. Deserialisation uses
  /// this so a restored registry reproduces the original byte-for-byte —
  /// `merge` can legitimately leave zero-valued entries that `add`'s
  /// nonzero filter would drop.
  void set(const std::string& key, std::int64_t value) {
    counters_[key] = value;
  }

  const std::map<std::string, std::int64_t>& counters() const {
    return counters_;
  }

  void merge(const StatsRegistry& other) {
    for (const auto& [k, v] : other.counters_) counters_[k] += v;
  }

  void clear() { counters_.clear(); }

 private:
  std::map<std::string, std::int64_t> counters_;
};

/// A transformation pass over one module (= one translation unit).
class Pass {
 public:
  virtual ~Pass() = default;

  /// Stable pass name, as used in pass sequences ("mem2reg", ...).
  virtual std::string name() const = 0;

  /// Counter names this pass may emit (used to build the fixed feature
  /// vocabulary of the CITROEN cost model).
  virtual std::vector<std::string> stat_names() const = 0;

  /// Apply the pass; returns true if the module changed.
  virtual bool run(ir::Module& m, StatsRegistry& stats) = 0;
};

/// Global pass registry. Names mirror their LLVM inspirations.
class PassRegistry {
 public:
  static const PassRegistry& instance();

  /// All registered pass names, in a stable order.
  const std::vector<std::string>& pass_names() const { return names_; }

  /// Create a fresh pass by name (nullptr if unknown).
  std::unique_ptr<Pass> create(const std::string& name) const;

  /// Number of registered passes; valid PassIds are [0, num_passes()).
  std::size_t num_passes() const { return names_.size(); }

  /// Dense id of a pass name, or -1 if unknown.
  int id_of(const std::string& name) const;

  /// Name of a pass id (must be a valid id from `id_of`).
  const std::string& name_of(PassId id) const { return names_[id]; }

  /// Create a fresh pass by dense id.
  std::unique_ptr<Pass> create(PassId id) const;

  /// Fixed vocabulary of "pass.Counter" feature keys, in a stable order.
  const std::vector<std::string>& all_stat_keys() const { return stat_keys_; }

 private:
  PassRegistry();

  std::vector<std::string> names_;
  std::vector<std::string> stat_keys_;
  std::unordered_map<std::string, PassId> index_;
};

/// Run `sequence` (pass names) over the module; unknown names are an error.
/// Returns the aggregated statistics of the compilation. If `verify_each`
/// is set, the IR verifier runs after every pass and a violation throws
/// `std::runtime_error` (used by tests and differential-testing mode).
StatsRegistry run_sequence(ir::Module& m,
                           const std::vector<std::string>& sequence,
                           bool verify_each = false);

/// Intern pass names to dense ids. Unknown names throw the same
/// "unknown pass: <name>" error as `run_sequence`.
std::vector<PassId> intern_sequence(const std::vector<std::string>& sequence);

/// Run an interned sequence over the module (the hot-path variant; the
/// string overload above interns and delegates here).
StatsRegistry run_sequence(ir::Module& m, const PassId* ids, std::size_t n,
                           bool verify_each = false);

/// The reference -O3 pipeline (fixed order, mirrors LLVM's structure).
const std::vector<std::string>& o3_sequence();

/// The reference -O3 pipeline, pre-interned.
const std::vector<PassId>& o3_sequence_ids();

/// A reduced pass set standing in for an older compiler ("LLVM 10" in
/// Fig. 5.10): no SLP vectoriser, no function-attrs, no div-rem-pairs.
const std::vector<std::string>& legacy_pass_names();

}  // namespace citroen::passes
