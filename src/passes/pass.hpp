#pragma once
// Pass framework: the MiniIR analogue of LLVM's legacy pass manager plus
// the `-stats` machinery that CITROEN's cost model consumes.
//
// Every transformation pass increments named counters while it runs; the
// aggregated counters (keyed "pass.Counter", e.g. "slp.NumVectorInstrs")
// form the *compilation statistics* feature vector of the paper.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/module.hpp"

namespace citroen::passes {

/// Dense pass identifier: index into the registry's stable pass order.
/// Hot paths (prefix-cache keys, sequence hashing, pipeline execution)
/// work on interned ids; the string API stays at the edges.
using PassId = std::uint16_t;

// ---------------------------------------------------------------------------
// Analyses
// ---------------------------------------------------------------------------

/// Dense analysis identifier, mirroring PassId interning: index into the
/// fixed set of function analyses the AnalysisManager can cache.
enum class AnalysisId : std::uint8_t {
  kDominators = 0,  ///< ir::DomTree (compute_dominators)
  kLoops,           ///< std::vector<ir::Loop> (find_loops; needs kDominators)
  kUseCounts,       ///< std::vector<int> (count_uses)
  kDefBlocks,       ///< std::vector<ir::BlockId> (def_blocks)
  kMemSummary,      ///< per-block store/side-call summary (alias surrogate)
  kNumAnalyses,
};

/// Display name of an analysis ("dominators", ...), for diagnostics.
const char* analysis_name(AnalysisId id);

/// Bitset over AnalysisId: what a pass invalidates (or a manager drops).
using AnalysisSet = std::uint8_t;

constexpr AnalysisSet analysis_bit(AnalysisId id) {
  return static_cast<AnalysisSet>(1u << static_cast<unsigned>(id));
}

constexpr AnalysisSet kAnalysisDominators = analysis_bit(AnalysisId::kDominators);
constexpr AnalysisSet kAnalysisLoops = analysis_bit(AnalysisId::kLoops);
constexpr AnalysisSet kAnalysisUseCounts = analysis_bit(AnalysisId::kUseCounts);
constexpr AnalysisSet kAnalysisDefBlocks = analysis_bit(AnalysisId::kDefBlocks);
constexpr AnalysisSet kAnalysisMemSummary = analysis_bit(AnalysisId::kMemSummary);
constexpr AnalysisSet kNoAnalyses = 0;
constexpr AnalysisSet kAllAnalyses =
    static_cast<AnalysisSet>((1u << static_cast<unsigned>(AnalysisId::kNumAnalyses)) - 1);

class AnalysisManager;  // passes/passman.hpp

// ---------------------------------------------------------------------------
// Statistics
// ---------------------------------------------------------------------------

/// Interned "pass.Counter" key. Dense ids are handed out in first-intern
/// order by a global, append-only, mutex-protected interner; passes resolve
/// their keys once (at construction) so the per-increment hot path is
/// string-free.
using StatKey = std::uint32_t;

/// Intern "pass" + "." + "counter" (builds the combined key once).
StatKey intern_stat_key(const std::string& pass, const std::string& counter);
/// Intern an already-combined "pass.Counter" key.
StatKey intern_stat_key(const std::string& full);
/// The combined "pass.Counter" name of an interned key. The reference is
/// stable for the lifetime of the process.
const std::string& stat_key_name(StatKey key);

/// Aggregated `-stats` counters for one compilation.
///
/// Storage is keyed by interned StatKey; the sorted string-keyed view that
/// serialisation and feature extraction consume is materialised lazily by
/// `counters()` (and is byte-identical to the historical representation).
/// Thread-safety contract: a registry is single-owner while being written;
/// call `counters()` once before sharing it read-only across threads (the
/// prefix cache does this via its size accounting at insert time).
class StatsRegistry {
 public:
  /// String-free hot path. Matches the historical `add` filter: a delta of
  /// zero creates no entry, but an entry whose deltas later sum to zero
  /// persists.
  void add(StatKey key, std::int64_t delta) {
    if (delta != 0) {
      by_key_[key] += delta;
      dirty_ = true;
    }
  }

  void add(const std::string& pass, const std::string& counter,
           std::int64_t delta) {
    if (delta != 0) add(intern_stat_key(pass, counter), delta);
  }

  std::int64_t get(const std::string& key) const {
    const auto it = by_key_.find(intern_stat_key(key));
    return it == by_key_.end() ? 0 : it->second;
  }

  /// Store a counter unconditionally, zero included. Deserialisation uses
  /// this so a restored registry reproduces the original byte-for-byte —
  /// `merge` can legitimately leave zero-valued entries that `add`'s
  /// nonzero filter would drop.
  void set(const std::string& key, std::int64_t value) {
    by_key_[intern_stat_key(key)] = value;
    dirty_ = true;
  }

  /// Sorted "pass.Counter" -> value view (the serialised byte format).
  const std::map<std::string, std::int64_t>& counters() const {
    if (dirty_) {
      by_name_.clear();
      for (const auto& [k, v] : by_key_) by_name_[stat_key_name(k)] = v;
      dirty_ = false;
    }
    return by_name_;
  }

  void merge(const StatsRegistry& other) {
    for (const auto& [k, v] : other.by_key_) by_key_[k] += v;
    if (!other.by_key_.empty()) dirty_ = true;
  }

  void clear() {
    by_key_.clear();
    by_name_.clear();
    dirty_ = false;
  }

 private:
  std::unordered_map<StatKey, std::int64_t> by_key_;
  mutable std::map<std::string, std::int64_t> by_name_;
  mutable bool dirty_ = false;
};

// ---------------------------------------------------------------------------
// Passes
// ---------------------------------------------------------------------------

/// A transformation pass over one module (= one translation unit).
class Pass {
 public:
  virtual ~Pass() = default;

  /// Stable pass name, as used in pass sequences ("mem2reg", ...).
  virtual std::string name() const = 0;

  /// Counter names this pass may emit (used to build the fixed feature
  /// vocabulary of the CITROEN cost model).
  virtual std::vector<std::string> stat_names() const = 0;

  /// Apply the pass; returns true if the module changed. Cached analyses
  /// are available through `am`; any reference obtained from it is valid
  /// until the pass mutates the IR and must be re-fetched after an
  /// `am.invalidate(...)`. A pass that mutates and then re-queries the
  /// SAME analysis must invalidate in between — the differential verifier
  /// (PassManagerOptions::verify_each) enforces this contract.
  virtual bool run(ir::Module& m, StatsRegistry& stats, AnalysisManager& am) = 0;

  /// Which analyses this pass destroys when it reports a change. The
  /// manager drops exactly this set after a changed run; everything else
  /// survives to the next pass. Over-approximating is always safe (it
  /// costs recomputation, never correctness); the conservative default is
  /// "everything".
  virtual AnalysisSet invalidates() const { return kAllAnalyses; }

  /// Convenience entry point for callers without a pipeline: runs the pass
  /// under a throwaway AnalysisManager. Defined in passman.cpp.
  bool run(ir::Module& m, StatsRegistry& stats);
};

/// Global pass registry. Names mirror their LLVM inspirations.
class PassRegistry {
 public:
  static const PassRegistry& instance();

  /// All registered pass names, in a stable order.
  const std::vector<std::string>& pass_names() const { return names_; }

  /// Create a fresh pass by name (nullptr if unknown).
  std::unique_ptr<Pass> create(const std::string& name) const;

  /// Number of registered passes; valid PassIds are [0, num_passes()).
  std::size_t num_passes() const { return names_.size(); }

  /// Dense id of a pass name, or -1 if unknown.
  int id_of(const std::string& name) const;

  /// Name of a pass id (must be a valid id from `id_of`).
  const std::string& name_of(PassId id) const { return names_[id]; }

  /// Create a fresh pass by dense id.
  std::unique_ptr<Pass> create(PassId id) const;

  /// Fixed vocabulary of "pass.Counter" feature keys, in a stable order.
  const std::vector<std::string>& all_stat_keys() const { return stat_keys_; }

 private:
  PassRegistry();

  std::vector<std::string> names_;
  std::vector<std::string> stat_keys_;
  std::unordered_map<std::string, PassId> index_;
};

/// Run `sequence` (pass names) over the module; unknown names are an error.
/// Returns the aggregated statistics of the compilation. If `verify_each`
/// is set, the IR verifier and the analysis-cache differential check run
/// after every pass and a violation throws `std::runtime_error` (used by
/// tests and differential-testing mode).
StatsRegistry run_sequence(ir::Module& m,
                           const std::vector<std::string>& sequence,
                           bool verify_each = false);

/// Intern pass names to dense ids. Unknown names throw the same
/// "unknown pass: <name>" error as `run_sequence`.
std::vector<PassId> intern_sequence(const std::vector<std::string>& sequence);

/// Run an interned sequence over the module (the hot-path variant; the
/// string overload above interns and delegates here).
StatsRegistry run_sequence(ir::Module& m, const PassId* ids, std::size_t n,
                           bool verify_each = false);

/// The reference -O3 pipeline (fixed order, mirrors LLVM's structure).
const std::vector<std::string>& o3_sequence();

/// The reference -O3 pipeline, pre-interned.
const std::vector<PassId>& o3_sequence_ids();

/// A reduced pass set standing in for an older compiler ("LLVM 10" in
/// Fig. 5.10): no SLP vectoriser, no function-attrs, no div-rem-pairs.
const std::vector<std::string>& legacy_pass_names();

}  // namespace citroen::passes
