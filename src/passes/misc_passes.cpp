// reassociate: flatten and re-rank chains of a commutative operator so
//              constants meet (enabling folding) and identical subtrees
//              meet (enabling CSE).
// sccp:        reachability-aware constant propagation + branch folding.
// constmerge:  hoist and deduplicate integer constants per function.
// div-rem-pairs: rewrite srem as a-(a/b)*b when the matching sdiv exists.
// vectorcombine: fold vector/scalar round trips left by vectorisers.

#include <algorithm>

#include "passes/common.hpp"
#include "passes/factories.hpp"
#include "passes/passman.hpp"

namespace citroen::passes {

using namespace ir;

namespace {

class ReassociatePass final : public Pass {
 public:
  std::string name() const override { return "reassociate"; }
  std::vector<std::string> stat_names() const override {
    return {"NumReassoc", "NumFolded"};
  }
  /// Rewrites chains in place (new adds/muls + constants, old chain
  /// killed): no CFG change, nothing memory-relevant.
  AnalysisSet invalidates() const override {
    return kAnalysisUseCounts | kAnalysisDefBlocks;
  }
  bool run(Module& m, StatsRegistry& stats, AnalysisManager& am) override {
    bool changed = false;
    for (auto& f : m.functions) changed |= run_fn(f, stats, am);
    return changed;
  }

 private:
  bool run_fn(Function& f, StatsRegistry& stats, AnalysisManager& am) {
    bool changed = false;
    // Single-use chain detection runs against the entry snapshot, exactly
    // like the historical once-per-function computation.
    const auto& uses = am.use_counts(f);
    for (BlockId b = 0; b < static_cast<BlockId>(f.blocks.size()); ++b) {
      for (std::size_t i = 0; i < f.block(b).insts.size(); ++i) {
        const ValueId id = f.block(b).insts[i];
        const Instr& in = f.instr(id);
        if (in.dead()) continue;
        if (in.op != Opcode::Add && in.op != Opcode::Mul) continue;
        if (in.type.is_vector() || !in.type.is_int()) continue;

        // Only rewrite the root of a chain (no same-op users).
        bool is_root = true;
        for (const auto& bb2 : f.blocks) {
          for (ValueId uid : bb2.insts) {
            const Instr& u = f.instr(uid);
            if (!u.dead() && u.op == in.op) {
              for (ValueId op : u.ops) {
                if (op == id) is_root = false;
              }
            }
          }
        }
        if (!is_root) continue;

        // Collect leaves of the single-use, same-block chain.
        std::vector<ValueId> leaves;
        std::vector<ValueId> interior;
        bool ok = collect(f, uses, b, id, in.op, leaves, interior);
        if (!ok || interior.empty() || leaves.size() < 3) continue;

        // Partition constants; fold them into one.
        std::int64_t acc = in.op == Opcode::Add ? 0 : 1;
        std::vector<ValueId> vars;
        int consts = 0;
        for (ValueId l : leaves) {
          if (auto c = const_int_value(f, l)) {
            const std::uint64_t uacc = static_cast<std::uint64_t>(acc);
            const std::uint64_t uc = static_cast<std::uint64_t>(*c);
            acc = static_cast<std::int64_t>(
                in.op == Opcode::Add ? uacc + uc : uacc * uc);
            ++consts;
          } else {
            vars.push_back(l);
          }
        }
        if (consts < 2) continue;  // nothing to gain
        acc = wrap_to_width(in.type, acc);
        std::sort(vars.begin(), vars.end());

        // Rebuild: left-assoc over vars, constant last (if not identity).
        const Type ty = in.type;
        const Opcode op = in.op;
        std::vector<ValueId> chain_ops = vars;
        const bool identity =
            (op == Opcode::Add && acc == 0) || (op == Opcode::Mul && acc == 1);
        if (!identity || chain_ops.empty()) {
          const ValueId cid =
              insert_const(f, b, i, ty, FoldedConst{false, acc, 0.0});
          chain_ops.push_back(cid);
        }
        ValueId cur = chain_ops[0];
        for (std::size_t k = 1; k < chain_ops.size(); ++k) {
          Instr nb;
          nb.op = op;
          nb.type = ty;
          nb.ops = {cur, chain_ops[k]};
          const ValueId nid = f.add_instr(std::move(nb));
          auto& insts = f.block(b).insts;
          const auto at = std::find(insts.begin(), insts.end(), id);
          insts.insert(at, nid);
          cur = nid;
        }
        f.replace_all_uses(id, cur);
        f.kill(id);
        for (ValueId v : interior) {
          if (v != id) f.kill(v);
        }
        f.purge_dead_from_blocks();
        stats.add(name(), "NumReassoc", 1);
        stats.add(name(), "NumFolded", consts - 1);
        changed = true;
        break;  // block list changed; rescan block
      }
    }
    return changed;
  }

  bool collect(const Function& f, const std::vector<int>& uses, BlockId b,
               ValueId id, Opcode op, std::vector<ValueId>& leaves,
               std::vector<ValueId>& interior) {
    const Instr& in = f.instr(id);
    interior.push_back(id);
    for (ValueId opnd : in.ops) {
      const Instr& oi = f.instr(opnd);
      const bool chainable = !oi.dead() && oi.op == op &&
                             uses[static_cast<std::size_t>(opnd)] == 1;
      if (chainable) {
        if (!collect(f, uses, b, opnd, op, leaves, interior)) return false;
      } else {
        leaves.push_back(opnd);
      }
    }
    return leaves.size() <= 16;
  }
};

class SccpPass final : public Pass {
 public:
  std::string name() const override { return "sccp"; }
  std::vector<std::string> stat_names() const override {
    return {"NumInstRemoved", "NumDeadBlocks"};
  }
  AnalysisSet invalidates() const override { return kAllAnalyses; }
  bool run(Module& m, StatsRegistry& stats, AnalysisManager& am) override {
    bool changed = false;
    for (auto& f : m.functions) {
      bool local = true;
      int rounds = 0;
      while (local && rounds++ < 8) {
        local = false;
        // Fold every pure instruction with constant operands.
        for (BlockId b = 0; b < static_cast<BlockId>(f.blocks.size()); ++b) {
          for (std::size_t i = 0; i < f.block(b).insts.size(); ++i) {
            const ValueId id = f.block(b).insts[i];
            const Instr& in = f.instr(id);
            if (in.dead() || !is_pure(in.op) || in.ops.empty()) continue;
            if (in.op == Opcode::Phi) continue;
            if (auto c = try_const_fold(f, in)) {
              const ValueId cid = insert_const(f, b, i, in.type, *c);
              f.replace_all_uses(id, cid);
              f.kill(id);
              stats.add(name(), "NumInstRemoved", 1);
              local = true;
            }
          }
        }
        // Phis whose incoming values are all the same constant.
        for (auto& bb : f.blocks) {
          for (ValueId id : std::vector<ValueId>(bb.insts)) {
            Instr& in = f.instr(id);
            if (in.dead() || in.op != Opcode::Phi || in.ops.empty()) continue;
            const auto first = const_int_value(f, in.ops[0]);
            if (!first) continue;
            bool all_same = true;
            for (ValueId op : in.ops) {
              const auto c = const_int_value(f, op);
              if (!c || *c != *first) all_same = false;
            }
            if (all_same) {
              // The incoming constant lives in a predecessor and need not
              // dominate the phi's users; materialise a copy in entry.
              const Type ty = in.type;
              const ValueId cid =
                  insert_const(f, 0, 0, ty, FoldedConst{false, *first, 0.0});
              f.replace_all_uses(id, cid);
              f.kill(id);
              stats.add(name(), "NumInstRemoved", 1);
              local = true;
            }
          }
        }
        // Fold constant conditional branches and prune edges.
        for (BlockId b = 0; b < static_cast<BlockId>(f.blocks.size()); ++b) {
          const ValueId t = f.terminator(b);
          if (t == kNoValue) continue;
          Instr& term = f.instr(t);
          if (term.op != Opcode::CondBr) continue;
          const auto c = const_int_value(f, term.ops[0]);
          if (!c) continue;
          const BlockId keep = *c ? term.succs[0] : term.succs[1];
          const BlockId drop = *c ? term.succs[1] : term.succs[0];
          term.op = Opcode::Br;
          term.ops.clear();
          term.succs = {keep};
          if (drop != keep) remove_phi_edge(f, b, drop);
          local = true;
        }
        if (local) {
          f.purge_dead_from_blocks();
          // This round mutated the CFG; refresh before reachability.
          am.invalidate(f, kAllAnalyses);
          const int dead = delete_unreachable_blocks(f, &am);
          stats.add(name(), "NumDeadBlocks", dead);
          changed = true;
        }
      }
    }
    return changed;
  }
};

class ConstMergePass final : public Pass {
 public:
  std::string name() const override { return "constmerge"; }
  std::vector<std::string> stat_names() const override {
    return {"NumMerged"};
  }
  /// Dedups and moves operand-free constants: no CFG change, nothing
  /// memory-relevant.
  AnalysisSet invalidates() const override {
    return kAnalysisUseCounts | kAnalysisDefBlocks;
  }
  bool run(Module& m, StatsRegistry& stats, AnalysisManager& am) override {
    bool changed = false;
    for (auto& f : m.functions) {
      // Hoisting constants to the entry block is always sound (they are
      // pure and operand-free), making function-wide dedup possible.
      std::map<std::pair<int, std::int64_t>, ValueId> int_leaders;
      std::map<std::pair<int, double>, ValueId> fp_leaders;
      std::vector<ValueId> to_hoist;
      for (auto& bb : f.blocks) {
        for (ValueId id : std::vector<ValueId>(bb.insts)) {
          Instr& in = f.instr(id);
          if (in.dead() || in.type.is_vector()) continue;
          if (in.op == Opcode::ConstInt) {
            const auto key = std::make_pair(
                static_cast<int>(in.type.scalar), in.imm);
            auto [it, inserted] = int_leaders.try_emplace(key, id);
            if (!inserted) {
              f.replace_all_uses(id, it->second);
              f.kill(id);
              stats.add(name(), "NumMerged", 1);
              changed = true;
            } else {
              to_hoist.push_back(id);
            }
          } else if (in.op == Opcode::ConstFP) {
            const auto key = std::make_pair(
                static_cast<int>(in.type.scalar), in.fimm);
            auto [it, inserted] = fp_leaders.try_emplace(key, id);
            if (!inserted) {
              f.replace_all_uses(id, it->second);
              f.kill(id);
              stats.add(name(), "NumMerged", 1);
              changed = true;
            } else {
              to_hoist.push_back(id);
            }
          }
        }
      }
      // Move every leader to the top of the entry block so it dominates
      // every merged use.
      if (!to_hoist.empty()) {
        for (auto& bb : f.blocks) {
          std::erase_if(bb.insts, [&](ValueId v) {
            return std::find(to_hoist.begin(), to_hoist.end(), v) !=
                   to_hoist.end();
          });
        }
        auto& entry = f.block(0).insts;
        entry.insert(entry.begin(), to_hoist.begin(), to_hoist.end());
        // Hoisting moves definitions between blocks even when no dedup
        // happened (changed stays false, so the manager won't drop
        // anything for us).
        am.invalidate(f, kAnalysisUseCounts | kAnalysisDefBlocks);
      }
      f.purge_dead_from_blocks();
    }
    return changed;
  }
};

class DivRemPairsPass final : public Pass {
 public:
  std::string name() const override { return "div-rem-pairs"; }
  std::vector<std::string> stat_names() const override {
    return {"NumDecomposed"};
  }
  /// Adds a mul/sub pair and kills the srem: no CFG change, nothing
  /// memory-relevant.
  AnalysisSet invalidates() const override {
    return kAnalysisUseCounts | kAnalysisDefBlocks;
  }
  bool run(Module& m, StatsRegistry& stats, AnalysisManager& am) override {
    bool changed = false;
    for (auto& f : m.functions) {
      const DomTree& dt = am.dominators(f);
      const auto& defs = am.def_blocks(f);
      // Collect sdivs keyed by operand pair.
      std::map<std::pair<ValueId, ValueId>, ValueId> divs;
      for (const auto& bb : f.blocks) {
        for (ValueId id : bb.insts) {
          const Instr& in = f.instr(id);
          if (!in.dead() && in.op == Opcode::SDiv && !in.type.is_vector())
            divs[{in.ops[0], in.ops[1]}] = id;
        }
      }
      if (divs.empty()) continue;
      for (BlockId b = 0; b < static_cast<BlockId>(f.blocks.size()); ++b) {
        for (std::size_t i = 0; i < f.block(b).insts.size(); ++i) {
          const ValueId id = f.block(b).insts[i];
          const Instr& in = f.instr(id);
          if (in.dead() || in.op != Opcode::SRem || in.type.is_vector())
            continue;
          const auto it = divs.find({in.ops[0], in.ops[1]});
          if (it == divs.end() || it->second == id) continue;
          const BlockId db = defs[static_cast<std::size_t>(it->second)];
          const bool same_block_before =
              db == b && std::find(f.block(b).insts.begin(),
                                   f.block(b).insts.begin() +
                                       static_cast<std::ptrdiff_t>(i),
                                   it->second) !=
                             f.block(b).insts.begin() +
                                 static_cast<std::ptrdiff_t>(i);
          if (!(same_block_before || (db != b && db >= 0 &&
                                      dt.dominates(db, b))))
            continue;
          // rem = a - (a/b)*b
          const ValueId a = in.ops[0];
          const ValueId bb2 = in.ops[1];
          const Type ty = in.type;
          Instr mul;
          mul.op = Opcode::Mul;
          mul.type = ty;
          mul.ops = {it->second, bb2};
          const ValueId mid = f.add_instr(std::move(mul));
          Instr sub;
          sub.op = Opcode::Sub;
          sub.type = ty;
          sub.ops = {a, mid};
          const ValueId sid = f.add_instr(std::move(sub));
          auto& insts = f.block(b).insts;
          insts.insert(insts.begin() + static_cast<std::ptrdiff_t>(i),
                       {mid, sid});
          f.replace_all_uses(id, sid);
          f.kill(id);
          stats.add(name(), "NumDecomposed", 1);
          changed = true;
        }
      }
      f.purge_dead_from_blocks();
    }
    return changed;
  }
};

class VectorCombinePass final : public Pass {
 public:
  std::string name() const override { return "vectorcombine"; }
  std::vector<std::string> stat_names() const override {
    return {"NumCombined"};
  }
  /// Kills vextract instructions: no CFG change, nothing memory-relevant.
  AnalysisSet invalidates() const override {
    return kAnalysisUseCounts | kAnalysisDefBlocks;
  }
  bool run(Module& m, StatsRegistry& stats, AnalysisManager&) override {
    bool changed = false;
    for (auto& f : m.functions) {
      for (auto& bb : f.blocks) {
        for (ValueId id : std::vector<ValueId>(bb.insts)) {
          Instr& in = f.instr(id);
          if (in.dead()) continue;
          // vextract(vsplat x, lane) => x
          if (in.op == Opcode::VExtract) {
            const Instr& src = f.instr(in.ops[0]);
            if (src.op == Opcode::VSplat) {
              f.replace_all_uses(id, src.ops[0]);
              f.kill(id);
              stats.add(name(), "NumCombined", 1);
              changed = true;
            }
          }
          // vsplat(vextract(v, 0)) and similar left as future work.
        }
      }
      f.purge_dead_from_blocks();
    }
    return changed;
  }
};

}  // namespace

std::unique_ptr<Pass> make_reassociate() {
  return std::make_unique<ReassociatePass>();
}
std::unique_ptr<Pass> make_sccp() { return std::make_unique<SccpPass>(); }
std::unique_ptr<Pass> make_constmerge() {
  return std::make_unique<ConstMergePass>();
}
std::unique_ptr<Pass> make_div_rem_pairs() {
  return std::make_unique<DivRemPairsPass>();
}
std::unique_ptr<Pass> make_vectorcombine() {
  return std::make_unique<VectorCombinePass>();
}

}  // namespace citroen::passes
