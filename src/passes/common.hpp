#pragma once
// Shared helpers for writing passes: constant folding, CFG edge surgery,
// and block-content cloning (used by inline/unroll/vectorize).

#include <optional>
#include <unordered_map>
#include <vector>

#include "ir/analysis.hpp"
#include "ir/module.hpp"
#include "passes/pass.hpp"

namespace citroen::passes {

/// Wrap an integer to the width of `t` (sign-extended representation).
std::int64_t wrap_to_width(ir::Type t, std::int64_t v);

/// If `id` is a scalar ConstInt, return its value.
std::optional<std::int64_t> const_int_value(const ir::Function& f,
                                            ir::ValueId id);
/// If `id` is a scalar ConstFP, return its value.
std::optional<double> const_fp_value(const ir::Function& f, ir::ValueId id);

/// Try to evaluate a pure scalar instruction whose operands are constants.
/// Returns the folded value as {is_float, int, fp}. Division by zero and
/// other trapping cases return nullopt (must not be folded away).
struct FoldedConst {
  bool is_float = false;
  std::int64_t i = 0;
  double f = 0.0;
};
std::optional<FoldedConst> try_const_fold(const ir::Function& f,
                                          const ir::Instr& in);

/// Materialise a constant instruction right before `before_pos` in `block`.
ir::ValueId insert_const(ir::Function& f, ir::BlockId block,
                         std::size_t before_pos, ir::Type t,
                         const FoldedConst& c);

/// Remove the CFG edge from -> to: drops `to`'s phi entries for `from`.
/// The terminator of `from` must already have been updated by the caller.
void remove_phi_edge(ir::Function& f, ir::BlockId from, ir::BlockId to);

/// Retarget every phi in `block` that lists `old_pred` to list `new_pred`.
void retarget_phi_edges(ir::Function& f, ir::BlockId block,
                        ir::BlockId old_pred, ir::BlockId new_pred);

/// Kill all instructions in blocks unreachable from entry and empty those
/// blocks; fixes phi lists in reachable blocks. Returns #blocks removed.
/// With `am` given, the reachability query comes from the analysis cache
/// (the caller must have invalidated after any prior CFG mutation) and the
/// function invalidates `f`'s cached analyses itself when it mutates.
int delete_unreachable_blocks(ir::Function& f, AnalysisManager* am = nullptr);

/// Preheader creation (the normalization step every counted-loop transform
/// depends on): insert a dedicated block between `loop`'s outside
/// predecessors and its header, merging multi-entry phi edges into the new
/// block. `preds` is `f.predecessors()`. Returns the new block id, or -1
/// when the loop has no outside entry (unreachable loop). The caller owns
/// analysis invalidation: this edits the CFG.
ir::BlockId insert_loop_preheader(
    ir::Function& f, const ir::Loop& loop,
    const std::vector<std::vector<ir::BlockId>>& preds);

/// Clone the live, non-phi instructions of `src` into `dst` (appending),
/// remapping operands through `value_map` (ids absent from the map are
/// kept as-is). Terminators are skipped. Each cloned id is recorded into
/// `value_map` under its source id. Cloned allocas are hoisted to entry.
void clone_block_body(ir::Function& f, ir::BlockId src, ir::BlockId dst,
                      std::unordered_map<ir::ValueId, ir::ValueId>& value_map);

/// As `clone_block_body` but clones an explicit instruction list (so the
/// caller can snapshot a block once and clone it repeatedly even while
/// appending into the same block, as partial unrolling does).
void clone_instr_list(ir::Function& f, const std::vector<ir::ValueId>& insts,
                      ir::BlockId dst,
                      std::unordered_map<ir::ValueId, ir::ValueId>& value_map);

/// A value is defined outside the loop (or is an argument/constant defined
/// in a block not in `in_loop`).
bool defined_outside(const ir::Function& f, ir::ValueId v,
                     const std::vector<bool>& in_loop,
                     const std::vector<ir::BlockId>& defs);

/// Canonical counted-loop description recognised by unroll/vectorise/idiom:
///   header: iv = phi [init, preheader], [iv_next, latch]
///           (optional reduction phis)
///           cond = icmp slt iv, limit ; condbr cond, body, exit   (while)
/// or the rotated form with the test in the latch.
struct CountedLoop {
  ir::BlockId preheader = -1;
  ir::BlockId header = -1;
  ir::BlockId body = -1;    ///< single body block (== latch)
  ir::BlockId exit = -1;
  ir::ValueId iv_phi = ir::kNoValue;
  ir::ValueId iv_next = ir::kNoValue;   ///< add iv, step (in body)
  std::int64_t init = 0;
  std::int64_t step = 0;
  std::int64_t limit = 0;
  std::int64_t trip_count = 0;          ///< exact iterations
  std::vector<ir::ValueId> reduction_phis;  ///< other header phis
};

/// Recognise the while-form counted loop with a single body block and
/// constant bounds. Returns nullopt when the shape does not match.
std::optional<CountedLoop> match_counted_loop(const ir::Function& f,
                                              const ir::Loop& loop);

}  // namespace citroen::passes
