// Inter-procedural passes (scoped to one module, i.e. one translation
// unit, as under separate compilation):
//   inline         : bottom-up inlining of small internal callees.
//   function-attrs : infer readnone/argmemonly — attributes invisible to
//                    IR-statistics code features but observable through
//                    this pass's counters (the paper's §3.4 example).
//   ipsccp         : propagate call-site-constant arguments into callees.
//   tailcallelim   : turn self-recursive tail calls into loops.
//   globalopt      : drop uncalled internal functions.
//   deadargelim    : neutralise arguments the callee never reads, so the
//                    caller-side computation becomes dead.

#include <algorithm>
#include <map>
#include <set>

#include "passes/common.hpp"
#include "passes/factories.hpp"
#include "passes/passman.hpp"

namespace citroen::passes {

using namespace ir;

namespace {

/// Call sites within a module, per callee name.
std::map<std::string, std::vector<std::pair<Function*, ValueId>>> call_sites(
    Module& m) {
  std::map<std::string, std::vector<std::pair<Function*, ValueId>>> out;
  for (auto& f : m.functions) {
    for (const auto& bb : f.blocks) {
      for (ValueId id : bb.insts) {
        const Instr& in = f.instr(id);
        if (!in.dead() && in.op == Opcode::Call)
          out[in.callee].emplace_back(&f, id);
      }
    }
  }
  return out;
}

bool calls_symbol(const Function& f, const std::string& sym) {
  for (const auto& bb : f.blocks) {
    for (ValueId id : bb.insts) {
      const Instr& in = f.instr(id);
      if (!in.dead() && in.op == Opcode::Call && in.callee == sym) return true;
    }
  }
  return false;
}

class InlinePass final : public Pass {
 public:
  explicit InlinePass(int threshold = 48) : threshold_(threshold) {}

  std::string name() const override { return "inline"; }
  std::vector<std::string> stat_names() const override {
    return {"NumInlined"};
  }

  AnalysisSet invalidates() const override { return kAllAnalyses; }
  bool run(Module& m, StatsRegistry& stats, AnalysisManager&) override {
    bool changed = false;
    // Iterate: inlining can expose further inlinable sites; bound rounds.
    for (int round = 0; round < 4; ++round) {
      bool local = false;
      for (std::size_t fi = 0; fi < m.functions.size(); ++fi) {
        Function& caller = m.functions[fi];
        // Snapshot call sites in this caller.
        std::vector<ValueId> sites;
        for (const auto& bb : caller.blocks) {
          for (ValueId id : bb.insts) {
            const Instr& in = caller.instr(id);
            if (!in.dead() && in.op == Opcode::Call) sites.push_back(id);
          }
        }
        for (ValueId site : sites) {
          const Instr& call = caller.instr(site);
          if (call.dead() || call.op != Opcode::Call) continue;
          Function* callee = m.find_function(call.callee);
          if (!callee || !callee->internal) continue;
          if (callee->name == caller.name) continue;          // recursion
          if (calls_symbol(*callee, callee->name)) continue;  // self-rec
          if (calls_symbol(*callee, caller.name)) continue;   // mutual
          if (callee->live_instr_count() >
              static_cast<std::size_t>(threshold_))
            continue;
          inline_site(caller, *callee, site);
          stats.add(name(), "NumInlined", 1);
          changed = true;
          local = true;
        }
      }
      if (!local) break;
    }
    return changed;
  }

 private:
  void inline_site(Function& caller, const Function& callee, ValueId site) {
    const Instr call = caller.instr(site);  // copy

    // Locate the call within its block.
    BlockId call_block = -1;
    std::size_t call_pos = 0;
    for (BlockId b = 0; b < static_cast<BlockId>(caller.blocks.size()); ++b) {
      const auto& insts = caller.block(b).insts;
      for (std::size_t i = 0; i < insts.size(); ++i) {
        if (insts[i] == site) {
          call_block = b;
          call_pos = i;
        }
      }
    }

    // Split: continuation gets everything after the call.
    caller.blocks.push_back(BasicBlock{"inl.cont", {}});
    const BlockId cont = static_cast<BlockId>(caller.blocks.size() - 1);
    {
      auto& ci = caller.block(call_block).insts;
      caller.block(cont).insts.assign(ci.begin() +
                                          static_cast<std::ptrdiff_t>(call_pos) +
                                          1,
                                      ci.end());
      ci.erase(ci.begin() + static_cast<std::ptrdiff_t>(call_pos), ci.end());
    }
    // Successor phis that referenced call_block now come from cont.
    for (BlockId s : caller.successors(cont))
      retarget_phi_edges(caller, s, call_block, cont);

    // Clone callee blocks.
    const BlockId block_base = static_cast<BlockId>(caller.blocks.size());
    for (const auto& cb : callee.blocks)
      caller.blocks.push_back(BasicBlock{"inl." + cb.name, {}});

    // Value map: callee args -> call operands.
    std::unordered_map<ValueId, ValueId> map;
    for (std::size_t a = 0; a < callee.num_args(); ++a)
      map[static_cast<ValueId>(a)] = call.ops[a];

    // Clone instructions (including phis and terminators).
    std::vector<std::pair<ValueId, ValueId>> rets;  // (cloned ret, block)
    for (BlockId cb = 0; cb < static_cast<BlockId>(callee.blocks.size());
         ++cb) {
      for (ValueId id : callee.block(cb).insts) {
        const Instr& orig = callee.instr(id);
        if (orig.dead()) continue;
        Instr copy = orig;
        for (auto& op : copy.ops) {
          const auto it = map.find(op);
          if (it != map.end()) op = it->second;
        }
        for (auto& s : copy.succs) s += block_base;
        for (auto& pb : copy.phi_blocks) pb += block_base;
        const BlockId dst = block_base + cb;
        if (copy.op == Opcode::Ret) {
          // Replaced by a branch to the continuation. Record the *callee*
          // return-value id: it may be defined by a block cloned later
          // (e.g. a loop phi), so it is remapped only after the whole
          // body has been cloned.
          const ValueId rv = orig.ops.empty() ? kNoValue : orig.ops[0];
          Instr br;
          br.op = Opcode::Br;
          br.succs = {cont};
          const ValueId bid = caller.add_instr(std::move(br));
          caller.block(dst).insts.push_back(bid);
          rets.emplace_back(rv, dst);
          map[id] = kNoValue;
          continue;
        }
        const ValueId nid = caller.add_instr(std::move(copy));
        if (caller.instr(nid).op == Opcode::Alloca) {
          // Allocas hoist to the caller entry so a call inside a loop does
          // not grow the frame every iteration (mirrors LLVM).
          auto& entry = caller.block(0).insts;
          entry.insert(entry.begin(), nid);
        } else {
          caller.block(dst).insts.push_back(nid);
        }
        map[id] = nid;
      }
    }
    // Second remap: operands that referenced values cloned *after* their
    // user (phi back edges) were left pointing at callee ids; rewrite each
    // clone's operands from the source instruction through the final map.
    for (BlockId cb = 0; cb < static_cast<BlockId>(callee.blocks.size());
         ++cb) {
      for (ValueId id : callee.block(cb).insts) {
        const Instr& orig = callee.instr(id);
        if (orig.dead() || !map.count(id) || map[id] == kNoValue) continue;
        Instr& clone = caller.instr(map[id]);
        for (std::size_t k = 0; k < clone.ops.size(); ++k) {
          const ValueId orig_op = orig.ops[k];
          const auto it = map.find(orig_op);
          if (it != map.end() && it->second != kNoValue)
            clone.ops[k] = it->second;
        }
      }
    }

    // Remap the recorded return values through the now-complete map.
    for (auto& [v, blk] : rets) {
      const auto it = map.find(v);
      if (it != map.end() && it->second != kNoValue) v = it->second;
    }

    // Jump from the call block into the inlined entry.
    {
      Instr br;
      br.op = Opcode::Br;
      br.succs = {block_base};
      const ValueId bid = caller.add_instr(std::move(br));
      caller.block(call_block).insts.push_back(bid);
    }

    // Return value: single ret feeds directly; multiple rets need a phi.
    if (!call.type.is_void()) {
      ValueId rv = kNoValue;
      if (rets.size() == 1) {
        rv = rets[0].first;
      } else {
        Instr phi;
        phi.op = Opcode::Phi;
        phi.type = call.type;
        for (auto& [v, b] : rets) {
          phi.ops.push_back(v);
          phi.phi_blocks.push_back(b);
        }
        rv = caller.add_instr(std::move(phi));
        auto& ci = caller.block(cont).insts;
        ci.insert(ci.begin(), rv);
      }
      caller.replace_all_uses(site, rv);
    }
    caller.kill(site);
    caller.purge_dead_from_blocks();
  }

  int threshold_;
};

class FunctionAttrsPass final : public Pass {
 public:
  std::string name() const override { return "function-attrs"; }
  std::vector<std::string> stat_names() const override {
    return {"NumReadNone", "NumArgMemOnly"};
  }
  /// Attribute-only: no IR changes, but a newly readnone callee stops
  /// counting as a side call in every caller's cached memory summary.
  AnalysisSet invalidates() const override { return kAnalysisMemSummary; }
  bool run(Module& m, StatsRegistry& stats, AnalysisManager&) override {
    bool changed = false;
    // Fixpoint over the module-local call graph.
    bool local = true;
    while (local) {
      local = false;
      for (auto& f : m.functions) {
        if (!f.attr_readnone && infer_readnone(f, m)) {
          f.attr_readnone = true;
          stats.add(name(), "NumReadNone", 1);
          changed = true;
          local = true;
        }
        if (!f.attr_argmemonly && infer_argmemonly(f, m)) {
          f.attr_argmemonly = true;
          stats.add(name(), "NumArgMemOnly", 1);
          changed = true;
          local = true;
        }
      }
    }
    return changed;
  }

 private:
  bool infer_readnone(const Function& f, const Module& m) {
    for (const auto& bb : f.blocks) {
      for (ValueId id : bb.insts) {
        const Instr& in = f.instr(id);
        if (in.dead()) continue;
        if (reads_memory(in.op) || writes_memory(in.op)) return false;
        if (in.op == Opcode::Call) {
          const Function* callee = m.find_function(in.callee);
          if (!callee || !callee->attr_readnone) return false;
        }
      }
    }
    return true;
  }

  bool infer_argmemonly(const Function& f, const Module& m) {
    // Every accessed pointer must chain back to an argument or an alloca.
    for (const auto& bb : f.blocks) {
      for (ValueId id : bb.insts) {
        const Instr& in = f.instr(id);
        if (in.dead()) continue;
        ValueId ptr = kNoValue;
        if (in.op == Opcode::Load) ptr = in.ops[0];
        if (in.op == Opcode::Store) ptr = in.ops[1];
        if (in.op == Opcode::Memset || in.op == Opcode::Memcpy) return false;
        if (in.op == Opcode::Call) {
          const Function* callee = m.find_function(in.callee);
          if (!callee ||
              (!callee->attr_readnone && !callee->attr_argmemonly))
            return false;
        }
        if (ptr == kNoValue) continue;
        // Walk the gep chain to the root.
        ValueId root = ptr;
        for (int hops = 0; hops < 32; ++hops) {
          const Instr& p = f.instr(root);
          if (p.op == Opcode::Gep) {
            root = p.ops[0];
          } else {
            break;
          }
        }
        const Instr& r = f.instr(root);
        if (!(r.op == Opcode::Arg || r.op == Opcode::Alloca)) return false;
      }
    }
    return true;
  }
};

class IpsccpPass final : public Pass {
 public:
  std::string name() const override { return "ipsccp"; }
  std::vector<std::string> stat_names() const override {
    return {"NumArgsConsted"};
  }
  /// Inserts constants and rewrites argument uses: no CFG change, nothing
  /// memory-relevant.
  AnalysisSet invalidates() const override {
    return kAnalysisUseCounts | kAnalysisDefBlocks;
  }
  bool run(Module& m, StatsRegistry& stats, AnalysisManager&) override {
    bool changed = false;
    const auto sites = call_sites(m);
    for (auto& f : m.functions) {
      if (!f.internal) continue;
      const auto it = sites.find(f.name);
      if (it == sites.end() || it->second.empty()) continue;
      for (std::size_t a = 0; a < f.num_args(); ++a) {
        // All call sites must pass the same integer constant.
        std::optional<std::int64_t> common;
        bool ok = true;
        for (const auto& [caller, site] : it->second) {
          const Instr& call = caller->instr(site);
          if (call.dead() || a >= call.ops.size()) {
            ok = false;
            break;
          }
          const auto c = const_int_value(*caller, call.ops[a]);
          if (!c || (common && *common != *c)) {
            ok = false;
            break;
          }
          common = c;
        }
        if (!ok || !common) continue;
        // The argument may already be unused.
        bool used = false;
        for (const auto& bb : f.blocks) {
          for (ValueId id : bb.insts) {
            for (ValueId op : f.instr(id).ops) {
              if (op == static_cast<ValueId>(a)) used = true;
            }
          }
        }
        if (!used) continue;
        const Type ty = f.arg_types[a];
        if (!ty.is_int()) continue;
        const ValueId cid = insert_const(
            f, 0, 0, ty, FoldedConst{false, *common, 0.0});
        f.replace_all_uses(static_cast<ValueId>(a), cid);
        stats.add(name(), "NumArgsConsted", 1);
        changed = true;
      }
    }
    return changed;
  }
};

class TailCallElimPass final : public Pass {
 public:
  std::string name() const override { return "tailcallelim"; }
  std::vector<std::string> stat_names() const override {
    return {"NumEliminated"};
  }
  AnalysisSet invalidates() const override { return kAllAnalyses; }
  bool run(Module& m, StatsRegistry& stats, AnalysisManager&) override {
    bool changed = false;
    for (auto& f : m.functions) changed |= run_fn(f, stats);
    return changed;
  }

 private:
  bool run_fn(Function& f, StatsRegistry& stats) {
    // Find self-recursive tail calls: `r = call f(...)` immediately
    // followed by `ret r` (or `call f(...)` + `ret` for void).
    struct TailSite {
      BlockId block;
      ValueId call, ret;
    };
    std::vector<TailSite> sites;
    for (BlockId b = 0; b < static_cast<BlockId>(f.blocks.size()); ++b) {
      const auto& insts = f.block(b).insts;
      ValueId prev = kNoValue;
      for (ValueId id : insts) {
        const Instr& in = f.instr(id);
        if (in.dead()) continue;
        if (in.op == Opcode::Ret && prev != kNoValue) {
          const Instr& c = f.instr(prev);
          if (c.op == Opcode::Call && c.callee == f.name) {
            const bool matches = in.ops.empty()
                                     ? c.type.is_void()
                                     : (!in.ops.empty() && in.ops[0] == prev);
            if (matches) sites.push_back({b, prev, id});
          }
        }
        prev = id;
      }
    }
    if (sites.empty()) return false;

    // Split the entry: allocas stay in the old entry; everything else
    // moves to the new loop header so phis for arguments can live there.
    f.blocks.push_back(BasicBlock{"tce.header", {}});
    const BlockId header = static_cast<BlockId>(f.blocks.size() - 1);
    {
      auto& e = f.block(0).insts;
      auto& h = f.block(header).insts;
      std::vector<ValueId> keep;
      for (ValueId id : e) {
        if (f.instr(id).op == Opcode::Alloca) {
          keep.push_back(id);
        } else {
          h.push_back(id);
        }
      }
      e = std::move(keep);
      Instr br;
      br.op = Opcode::Br;
      br.succs = {header};
      const ValueId bid = f.add_instr(std::move(br));
      f.block(0).insts.push_back(bid);
    }
    // Every branch to block 0 cannot exist (entry has no preds by
    // construction); phi_blocks in former-entry successors must be
    // retargeted to the header.
    for (BlockId s : f.successors(header))
      retarget_phi_edges(f, s, 0, header);

    // Argument phis.
    std::vector<ValueId> arg_phis;
    for (std::size_t a = 0; a < f.num_args(); ++a) {
      Instr phi;
      phi.op = Opcode::Phi;
      phi.type = f.arg_types[a];
      phi.ops = {static_cast<ValueId>(a)};
      phi.phi_blocks = {0};
      const ValueId pid = f.add_instr(std::move(phi));
      arg_phis.push_back(pid);
      auto& h = f.block(header).insts;
      h.insert(h.begin(), pid);
    }
    // Replace argument uses (except in the new phis' first entries).
    for (auto& bb : f.blocks) {
      for (ValueId id : bb.insts) {
        Instr& in = f.instr(id);
        if (in.dead()) continue;
        if (std::find(arg_phis.begin(), arg_phis.end(), id) != arg_phis.end())
          continue;
        for (auto& op : in.ops) {
          if (op >= 0 && op < static_cast<ValueId>(f.num_args()))
            op = arg_phis[static_cast<std::size_t>(op)];
        }
      }
    }

    // Rewrite each tail site into a jump back to the header. A site that
    // lived in the entry block has just been moved into the header.
    for (const auto& site : sites) {
      const BlockId sb = site.block == 0 ? header : site.block;
      const Instr call = f.instr(site.call);  // copy (args)
      for (std::size_t a = 0; a < f.num_args(); ++a) {
        Instr& phi = f.instr(arg_phis[a]);
        phi.ops.push_back(call.ops[a]);
        phi.phi_blocks.push_back(sb);
      }
      Instr& ret = f.instr(site.ret);
      ret.op = Opcode::Br;
      ret.ops.clear();
      ret.succs = {header};
      f.kill(site.call);
    }
    f.purge_dead_from_blocks();
    stats.add(name(), "NumEliminated",
              static_cast<std::int64_t>(sites.size()));
    return true;
  }
};

class GlobalOptPass final : public Pass {
 public:
  std::string name() const override { return "globalopt"; }
  std::vector<std::string> stat_names() const override {
    return {"NumFnDeleted"};
  }
  /// Erasing module functions shifts the survivors: function identity is
  /// gone, the whole cache must be cleared (kAllAnalyses does that).
  AnalysisSet invalidates() const override { return kAllAnalyses; }
  bool run(Module& m, StatsRegistry& stats, AnalysisManager&) override {
    bool changed = false;
    bool local = true;
    while (local) {
      local = false;
      const auto sites = call_sites(m);
      for (std::size_t fi = m.functions.size(); fi-- > 0;) {
        Function& f = m.functions[fi];
        if (!f.internal) continue;
        const auto it = sites.find(f.name);
        if (it != sites.end() && !it->second.empty()) continue;
        m.functions.erase(m.functions.begin() +
                          static_cast<std::ptrdiff_t>(fi));
        stats.add(name(), "NumFnDeleted", 1);
        changed = true;
        local = true;
        break;  // sites holds stale Function pointers now
      }
    }
    return changed;
  }
};

class DeadArgElimPass final : public Pass {
 public:
  std::string name() const override { return "deadargelim"; }
  std::vector<std::string> stat_names() const override {
    return {"NumArgumentsEliminated"};
  }
  /// Inserts constants and rewrites call operands: no CFG change, nothing
  /// memory-relevant.
  AnalysisSet invalidates() const override {
    return kAnalysisUseCounts | kAnalysisDefBlocks;
  }
  bool run(Module& m, StatsRegistry& stats, AnalysisManager&) override {
    bool changed = false;
    const auto sites = call_sites(m);
    for (auto& f : m.functions) {
      if (!f.internal) continue;
      const auto it = sites.find(f.name);
      if (it == sites.end()) continue;
      for (std::size_t a = 0; a < f.num_args(); ++a) {
        if (!f.arg_types[a].is_int()) continue;
        bool used = false;
        for (const auto& bb : f.blocks) {
          for (ValueId id : bb.insts) {
            for (ValueId op : f.instr(id).ops) {
              if (op == static_cast<ValueId>(a)) used = true;
            }
          }
        }
        if (used) continue;
        // Neutralise the operand at every call site: the expensive caller
        // computation feeding it becomes dead (signature is kept so other
        // call sites stay valid).
        for (const auto& [caller, site] : it->second) {
          Instr& call = caller->instr(site);
          if (call.dead() || a >= call.ops.size()) continue;
          if (const_int_value(*caller, call.ops[a])) continue;  // already
          // Locate the call to insert the zero before it.
          for (BlockId b = 0;
               b < static_cast<BlockId>(caller->blocks.size()); ++b) {
            auto& insts = caller->block(b).insts;
            const auto pos = std::find(insts.begin(), insts.end(), site);
            if (pos == insts.end()) continue;
            const ValueId cid = insert_const(
                *caller, b,
                static_cast<std::size_t>(pos - insts.begin()),
                f.arg_types[a], FoldedConst{false, 0, 0.0});
            caller->instr(site).ops[a] = cid;
            stats.add(name(), "NumArgumentsEliminated", 1);
            changed = true;
            break;
          }
        }
      }
    }
    return changed;
  }
};

}  // namespace

std::unique_ptr<Pass> make_inline() { return std::make_unique<InlinePass>(); }
std::unique_ptr<Pass> make_function_attrs() {
  return std::make_unique<FunctionAttrsPass>();
}
std::unique_ptr<Pass> make_ipsccp() { return std::make_unique<IpsccpPass>(); }
std::unique_ptr<Pass> make_tailcallelim() {
  return std::make_unique<TailCallElimPass>();
}
std::unique_ptr<Pass> make_globalopt() {
  return std::make_unique<GlobalOptPass>();
}
std::unique_ptr<Pass> make_deadargelim() {
  return std::make_unique<DeadArgElimPass>();
}

}  // namespace citroen::passes
