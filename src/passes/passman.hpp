#pragma once
// Analysis-caching pass manager (the MimiC `passman` idiom): passes declare
// what they invalidate (Pass::invalidates), the manager computes dominator
// trees / loop info / memory summaries once per function and hands passes
// cached references, and after each changed pass drops exactly the declared
// set — everything else survives across the whole pipeline.
//
// Correctness contract: a cached value must equal what a fresh computation
// would return at every pass boundary. Over-invalidating is always safe
// (it costs recomputation, never correctness); under-invalidating is a bug
// that `AnalysisManager::differential_check` (run under verify_each) turns
// into a hard error. The `CITROEN_ANALYSIS_CACHE=0` escape hatch makes the
// manager recompute on every query, so cache-on vs. cache-off byte-identity
// is testable and CI-enforced.
//
// Fork-safety (`CITROEN_SANDBOX=1`): managers are stack-local to one
// pipeline execution and never shared across threads or inherited across
// fork; the only process-global state the stats hot path touches is the
// stat-key interner, which uses a resettable spinlock
// (`reset_stat_interner_after_fork`) like the obs layer's interner.

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/analysis.hpp"
#include "ir/module.hpp"
#include "passes/pass.hpp"

namespace citroen::passes {

/// Per-block memory behaviour summary (the alias-analysis surrogate LICM
/// consumes): does the block contain a store / a call that may touch
/// memory? A call is a "side call" unless its callee is known readnone.
struct MemorySummary {
  std::vector<char> block_has_store;
  std::vector<char> block_has_side_call;
};

MemorySummary compute_memory_summary(const ir::Module& m,
                                     const ir::Function& f);

/// Counters for the cache's effectiveness (BM_PassPipeline reports these).
struct AnalysisCacheStats {
  std::uint64_t computed = 0;       ///< analyses computed from scratch
  std::uint64_t reused = 0;         ///< queries served from cache
  std::uint64_t invalidations = 0;  ///< invalidate/apply_invalidation calls
};

/// Function-analysis cache for one pipeline execution. Stack-local: one
/// instance per `run_sequence` / prefix-cache build, never shared.
///
/// References returned by the getters are stable until the corresponding
/// analysis is invalidated for that function (unordered_map nodes do not
/// move on rehash). With caching disabled every getter recomputes in place,
/// so the reference stays valid but its contents are refreshed — identical
/// values as long as callers honour the invalidation contract.
class AnalysisManager {
 public:
  AnalysisManager() : AnalysisManager(cache_enabled_from_env()) {}
  explicit AnalysisManager(bool enabled) : enabled_(enabled) {}

  /// CITROEN_ANALYSIS_CACHE: unset or any value but "0" enables caching.
  static bool cache_enabled_from_env();

  bool enabled() const { return enabled_; }

  const ir::DomTree& dominators(const ir::Function& f);
  const std::vector<ir::Loop>& loops(const ir::Function& f);
  const std::vector<int>& use_counts(const ir::Function& f);
  const std::vector<ir::BlockId>& def_blocks(const ir::Function& f);
  const MemorySummary& memory_summary(const ir::Module& m,
                                      const ir::Function& f);

  /// Drop `what` for one function (in-pass use: a pass that mutates and
  /// then re-queries must invalidate in between). Invalidating dominators
  /// implies invalidating loop info, which is derived from it.
  void invalidate(const ir::Function& f, AnalysisSet what);

  /// Drop `what` for every function; kAllAnalyses clears the whole map
  /// (required when function *identity* may have changed, e.g. globalopt
  /// erasing module functions and shifting the rest).
  void apply_invalidation(AnalysisSet what);

  const AnalysisCacheStats& stats() const { return stats_; }

  /// Recompute every still-cached analysis of every module function and
  /// compare against the cached value. Returns "" when consistent, else a
  /// description of the first divergence (which analysis, which function).
  /// This is how a pass that lies about `invalidates()` is caught.
  std::string differential_check(const ir::Module& m) const;

 private:
  struct Entry {
    std::optional<ir::DomTree> dom;
    std::optional<std::vector<ir::Loop>> loops;
    std::optional<std::vector<int>> uses;
    std::optional<std::vector<ir::BlockId>> defs;
    std::optional<MemorySummary> mem;
  };

  bool enabled_;
  AnalysisCacheStats stats_;
  std::unordered_map<const ir::Function*, Entry> cache_;
};

/// Reset the stat-key interner's spinlock in a freshly forked child (the
/// sandbox worker's post-fork detach calls this, mirroring obs).
void reset_stat_interner_after_fork();

struct PassManagerOptions {
  bool cache_enabled = true;
  bool verify_each = false;
  /// cache_enabled from CITROEN_ANALYSIS_CACHE, verify_each off.
  static PassManagerOptions from_env();
};

/// Drives a pass pipeline over one module with a shared AnalysisManager.
class PassManager {
 public:
  PassManager() : PassManager(PassManagerOptions::from_env()) {}
  explicit PassManager(PassManagerOptions opts)
      : opts_(opts), am_(opts.cache_enabled) {}

  /// Run one pass and apply its declared invalidation if it changed the
  /// module. Returns the pass's changed flag.
  bool run_pass(Pass& p, ir::Module& m, StatsRegistry& stats);

  /// Run a whole interned sequence; with verify_each set, the IR verifier
  /// and the analysis differential check run after every pass and throw
  /// std::runtime_error on violation.
  StatsRegistry run(ir::Module& m, const PassId* ids, std::size_t n);

  AnalysisManager& analyses() { return am_; }
  const AnalysisCacheStats& cache_stats() const { return am_.stats(); }

 private:
  PassManagerOptions opts_;
  AnalysisManager am_;
};

}  // namespace citroen::passes
