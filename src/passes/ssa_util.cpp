#include "passes/ssa_util.hpp"

#include <algorithm>
#include <unordered_map>

#include "passes/passman.hpp"

namespace citroen::passes {

using namespace ir;

std::vector<std::vector<BlockId>> dominance_frontiers(const Function& f,
                                                      const DomTree& dt) {
  std::vector<std::vector<BlockId>> df(f.blocks.size());
  const auto preds = f.predecessors();
  for (BlockId b = 0; b < static_cast<BlockId>(f.blocks.size()); ++b) {
    if (!dt.reachable[static_cast<std::size_t>(b)]) continue;
    if (preds[static_cast<std::size_t>(b)].size() < 2) continue;
    for (BlockId p : preds[static_cast<std::size_t>(b)]) {
      if (!dt.reachable[static_cast<std::size_t>(p)]) continue;
      BlockId runner = p;
      while (runner != dt.idom[static_cast<std::size_t>(b)]) {
        auto& dfr = df[static_cast<std::size_t>(runner)];
        if (std::find(dfr.begin(), dfr.end(), b) == dfr.end())
          dfr.push_back(b);
        runner = dt.idom[static_cast<std::size_t>(runner)];
      }
    }
  }
  return df;
}

bool is_promotable_alloca(const Function& f, ValueId a) {
  const Instr& al = f.instr(a);
  if (al.op != Opcode::Alloca) return false;
  Type slot_type = kVoid;
  for (const auto& bb : f.blocks) {
    for (ValueId id : bb.insts) {
      const Instr& in = f.instr(id);
      if (in.dead()) continue;
      for (std::size_t k = 0; k < in.ops.size(); ++k) {
        if (in.ops[k] != a) continue;
        if (in.op == Opcode::Load && k == 0) {
          if (in.type.is_vector()) return false;
          if (slot_type.is_void()) slot_type = in.type;
          if (!(slot_type == in.type)) return false;
        } else if (in.op == Opcode::Store && k == 1) {
          const Type st = f.instr(in.ops[0]).type;
          if (st.is_vector()) return false;
          if (slot_type.is_void()) slot_type = st;
          if (!(slot_type == st)) return false;
        } else {
          return false;  // escapes (gep, call, stored-as-value, ...)
        }
      }
    }
  }
  if (slot_type.is_void()) return true;  // unused alloca: trivially removable
  return al.alloca_bytes == slot_type.total_bytes();
}

namespace {

struct Renamer {
  Function& f;
  const DomTree& dt;
  const std::vector<std::vector<BlockId>>& preds;
  // alloca id -> dense index
  std::unordered_map<ValueId, int> slot_index;
  // phi value id -> slot index (phis inserted by promotion)
  std::unordered_map<ValueId, int> phi_slot;
  // per-slot stack of reaching definitions
  std::vector<std::vector<ValueId>> stacks;
  // lazily created "undef" (zero) constant per slot
  std::vector<ValueId> zero_const;
  std::vector<Type> slot_types;
  int dead_stores = 0;

  ValueId current(int s) {
    if (!stacks[static_cast<std::size_t>(s)].empty())
      return stacks[static_cast<std::size_t>(s)].back();
    // Value loaded before any store: materialise a zero constant in entry.
    if (zero_const[static_cast<std::size_t>(s)] == kNoValue) {
      Instr c;
      c.op = slot_types[static_cast<std::size_t>(s)].is_float()
                 ? Opcode::ConstFP
                 : Opcode::ConstInt;
      c.type = slot_types[static_cast<std::size_t>(s)];
      const ValueId id = f.add_instr(std::move(c));
      auto& entry = f.block(0).insts;
      entry.insert(entry.begin(), id);
      zero_const[static_cast<std::size_t>(s)] = id;
    }
    return zero_const[static_cast<std::size_t>(s)];
  }

  void rename(BlockId b) {
    std::vector<int> pushed;  // slots pushed in this block, for unwinding

    // Iterate over a snapshot: materialising a zero constant appends to the
    // entry block's instruction list, which may be the list being walked.
    const std::vector<ValueId> insts_snapshot = f.block(b).insts;
    for (ValueId id : insts_snapshot) {
      Instr& in = f.instr(id);
      if (in.dead()) continue;
      if (in.op == Opcode::Phi) {
        const auto it = phi_slot.find(id);
        if (it != phi_slot.end()) {
          stacks[static_cast<std::size_t>(it->second)].push_back(id);
          pushed.push_back(it->second);
        }
        continue;
      }
      if (in.op == Opcode::Load) {
        const auto it = slot_index.find(in.ops[0]);
        if (it != slot_index.end()) {
          const ValueId repl = current(it->second);
          f.replace_all_uses(id, repl);
          f.kill(id);
          continue;
        }
      }
      if (in.op == Opcode::Store) {
        const auto it = slot_index.find(in.ops[1]);
        if (it != slot_index.end()) {
          stacks[static_cast<std::size_t>(it->second)].push_back(in.ops[0]);
          pushed.push_back(it->second);
          f.kill(id);
          ++dead_stores;
          continue;
        }
      }
    }

    // Fill phi operands of successors for edges leaving this block.
    for (BlockId s : f.successors(b)) {
      const std::vector<ValueId> succ_snapshot = f.block(s).insts;
      for (ValueId id : succ_snapshot) {
        Instr& in = f.instr(id);
        if (in.dead()) continue;
        if (in.op != Opcode::Phi) break;
        const auto it = phi_slot.find(id);
        if (it == phi_slot.end()) continue;
        for (std::size_t k = 0; k < in.phi_blocks.size(); ++k) {
          if (in.phi_blocks[k] == b) in.ops[k] = current(it->second);
        }
      }
    }

    for (BlockId c : dt.children[static_cast<std::size_t>(b)]) rename(c);

    for (const int s : pushed) stacks[static_cast<std::size_t>(s)].pop_back();
  }
};

}  // namespace

PromoteResult promote_allocas(Function& f, AnalysisManager* am) {
  PromoteResult result;
  if (f.blocks.empty()) return result;

  // Gather promotable allocas.
  std::vector<ValueId> allocas;
  for (const auto& bb : f.blocks) {
    for (ValueId id : bb.insts) {
      if (f.instr(id).op == Opcode::Alloca && is_promotable_alloca(f, id))
        allocas.push_back(id);
    }
  }
  if (allocas.empty()) return result;

  // Promotion rewrites instructions but never the CFG, so the tree stays
  // valid throughout the renaming walk.
  const DomTree local_dt = am ? DomTree{} : compute_dominators(f);
  const DomTree& dt = am ? am->dominators(f) : local_dt;
  const auto df = dominance_frontiers(f, dt);
  const auto preds = f.predecessors();

  Renamer rn{f, dt, preds, {}, {}, {}, {}, {}, 0};
  rn.stacks.resize(allocas.size());
  rn.zero_const.assign(allocas.size(), kNoValue);
  rn.slot_types.resize(allocas.size());

  for (std::size_t s = 0; s < allocas.size(); ++s) {
    rn.slot_index[allocas[s]] = static_cast<int>(s);
    // Determine the slot's value type from its first access.
    Type ty = kI64;
    for (const auto& bb : f.blocks) {
      bool found = false;
      for (ValueId id : bb.insts) {
        const Instr& in = f.instr(id);
        if (in.dead()) continue;
        if (in.op == Opcode::Load && in.ops[0] == allocas[s]) {
          ty = in.type;
          found = true;
          break;
        }
        if (in.op == Opcode::Store && in.ops.size() == 2 &&
            in.ops[1] == allocas[s]) {
          ty = f.instr(in.ops[0]).type;
          found = true;
          break;
        }
      }
      if (found) break;
    }
    rn.slot_types[s] = ty;

    // Iterated dominance frontier of the store blocks -> phi placement.
    std::vector<BlockId> work;
    for (BlockId b = 0; b < static_cast<BlockId>(f.blocks.size()); ++b) {
      for (ValueId id : f.block(b).insts) {
        const Instr& in = f.instr(id);
        if (!in.dead() && in.op == Opcode::Store && in.ops.size() == 2 &&
            in.ops[1] == allocas[s])
          work.push_back(b);
      }
    }
    std::vector<bool> has_phi(f.blocks.size(), false);
    while (!work.empty()) {
      const BlockId b = work.back();
      work.pop_back();
      for (BlockId d : df[static_cast<std::size_t>(b)]) {
        if (has_phi[static_cast<std::size_t>(d)]) continue;
        has_phi[static_cast<std::size_t>(d)] = true;
        Instr phi;
        phi.op = Opcode::Phi;
        phi.type = ty;
        for (BlockId p : preds[static_cast<std::size_t>(d)]) {
          phi.ops.push_back(kNoValue);  // filled during renaming
          phi.phi_blocks.push_back(p);
        }
        const ValueId pid = f.add_instr(std::move(phi));
        auto& insts = f.block(d).insts;
        insts.insert(insts.begin(), pid);
        rn.phi_slot[pid] = static_cast<int>(s);
        ++result.phis;
        work.push_back(d);
      }
    }
  }

  rn.rename(0);
  result.dead_stores = rn.dead_stores;

  // Drop the allocas themselves and fix any phi operand that stayed
  // unfilled (unreachable incoming edge): use the slot's zero constant.
  for (auto& [pid, s] : rn.phi_slot) {
    Instr& phi = f.instr(pid);
    for (auto& op : phi.ops) {
      if (op == kNoValue) op = rn.current(s);
    }
  }
  for (ValueId a : allocas) f.kill(a);
  f.purge_dead_from_blocks();
  result.promoted = static_cast<int>(allocas.size());
  return result;
}

}  // namespace citroen::passes
