#pragma once
// Factory functions for every pass; the registry wires them to names.

#include <memory>

#include "passes/pass.hpp"

namespace citroen::passes {

std::unique_ptr<Pass> make_mem2reg();
std::unique_ptr<Pass> make_sroa();
std::unique_ptr<Pass> make_instcombine();
std::unique_ptr<Pass> make_instsimplify();
std::unique_ptr<Pass> make_aggressive_instcombine();
std::unique_ptr<Pass> make_dce();
std::unique_ptr<Pass> make_adce();
std::unique_ptr<Pass> make_simplifycfg();
std::unique_ptr<Pass> make_jump_threading();
std::unique_ptr<Pass> make_sink();
std::unique_ptr<Pass> make_early_cse();
std::unique_ptr<Pass> make_gvn();
std::unique_ptr<Pass> make_reassociate();
std::unique_ptr<Pass> make_sccp();
std::unique_ptr<Pass> make_constmerge();
std::unique_ptr<Pass> make_div_rem_pairs();
std::unique_ptr<Pass> make_vectorcombine();
std::unique_ptr<Pass> make_loop_simplify();
std::unique_ptr<Pass> make_loop_rotate();
std::unique_ptr<Pass> make_licm();
std::unique_ptr<Pass> make_indvars();
std::unique_ptr<Pass> make_loop_unroll();
std::unique_ptr<Pass> make_loop_vectorize();
std::unique_ptr<Pass> make_loop_idiom();
std::unique_ptr<Pass> make_loop_deletion();
std::unique_ptr<Pass> make_slp_vectorizer();
std::unique_ptr<Pass> make_inline();
std::unique_ptr<Pass> make_function_attrs();
std::unique_ptr<Pass> make_ipsccp();
std::unique_ptr<Pass> make_tailcallelim();
std::unique_ptr<Pass> make_globalopt();
std::unique_ptr<Pass> make_deadargelim();
std::unique_ptr<Pass> make_dse();
std::unique_ptr<Pass> make_memcpyopt();
std::unique_ptr<Pass> make_loop_unswitch();
std::unique_ptr<Pass> make_loop_fusion();
std::unique_ptr<Pass> make_indvar_simplify();
std::unique_ptr<Pass> make_loop_peel();

}  // namespace citroen::passes
