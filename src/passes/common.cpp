#include "passes/common.hpp"

#include <algorithm>

#include "passes/passman.hpp"

namespace citroen::passes {

using namespace ir;

std::int64_t wrap_to_width(Type t, std::int64_t v) {
  switch (t.scalar) {
    case Scalar::I1: return v & 1;
    case Scalar::I16: return static_cast<std::int16_t>(v);
    case Scalar::I32: return static_cast<std::int32_t>(v);
    default: return v;
  }
}

std::optional<std::int64_t> const_int_value(const Function& f, ValueId id) {
  const Instr& in = f.instr(id);
  if (in.op == Opcode::ConstInt && !in.type.is_vector()) return in.imm;
  return std::nullopt;
}

std::optional<double> const_fp_value(const Function& f, ValueId id) {
  const Instr& in = f.instr(id);
  if (in.op == Opcode::ConstFP && !in.type.is_vector()) return in.fimm;
  return std::nullopt;
}

std::optional<FoldedConst> try_const_fold(const Function& f,
                                          const Instr& in) {
  if (in.type.is_vector()) return std::nullopt;

  auto ci = [&](std::size_t k) { return const_int_value(f, in.ops[k]); };
  auto cf = [&](std::size_t k) { return const_fp_value(f, in.ops[k]); };
  FoldedConst out;

  if (is_int_binop(in.op)) {
    const auto a = ci(0), b = ci(1);
    if (!a || !b) return std::nullopt;
    std::int64_t r = 0;
    // Wrap-around semantics in unsigned arithmetic (matches the
    // interpreter and avoids signed-overflow UB).
    const std::uint64_t ua = static_cast<std::uint64_t>(*a);
    const std::uint64_t ub = static_cast<std::uint64_t>(*b);
    switch (in.op) {
      case Opcode::Add: r = static_cast<std::int64_t>(ua + ub); break;
      case Opcode::Sub: r = static_cast<std::int64_t>(ua - ub); break;
      case Opcode::Mul: r = static_cast<std::int64_t>(ua * ub); break;
      case Opcode::SDiv:
        if (*b == 0 || (*a == INT64_MIN && *b == -1)) return std::nullopt;
        r = *a / *b;
        break;
      case Opcode::SRem:
        if (*b == 0 || (*a == INT64_MIN && *b == -1)) return std::nullopt;
        r = *a % *b;
        break;
      case Opcode::Shl:
        r = static_cast<std::int64_t>(ua << (ub & 63));
        break;
      case Opcode::LShr: {
        const int w = in.type.bit_width();
        const std::uint64_t masked =
            ua & (w == 64 ? ~0ULL : ((1ULL << w) - 1));
        r = static_cast<std::int64_t>(masked >> (ub & 63));
        break;
      }
      case Opcode::AShr: r = *a >> (*b & 63); break;
      case Opcode::And: r = *a & *b; break;
      case Opcode::Or: r = *a | *b; break;
      case Opcode::Xor: r = *a ^ *b; break;
      default: return std::nullopt;
    }
    out.i = wrap_to_width(in.type, r);
    return out;
  }

  if (is_float_binop(in.op)) {
    const auto a = cf(0), b = cf(1);
    if (!a || !b) return std::nullopt;
    out.is_float = true;
    switch (in.op) {
      case Opcode::FAdd: out.f = *a + *b; break;
      case Opcode::FSub: out.f = *a - *b; break;
      case Opcode::FMul: out.f = *a * *b; break;
      case Opcode::FDiv: out.f = *a / *b; break;
      default: return std::nullopt;
    }
    return out;
  }

  switch (in.op) {
    case Opcode::ICmp: {
      const auto a = ci(0), b = ci(1);
      if (!a || !b) return std::nullopt;
      bool r = false;
      switch (in.pred) {
        case CmpPred::EQ: r = *a == *b; break;
        case CmpPred::NE: r = *a != *b; break;
        case CmpPred::SLT: r = *a < *b; break;
        case CmpPred::SLE: r = *a <= *b; break;
        case CmpPred::SGT: r = *a > *b; break;
        case CmpPred::SGE: r = *a >= *b; break;
        default: return std::nullopt;
      }
      out.i = r ? 1 : 0;
      return out;
    }
    case Opcode::SExt:
    case Opcode::Trunc: {
      const auto a = ci(0);
      if (!a) return std::nullopt;
      out.i = wrap_to_width(in.type, *a);
      return out;
    }
    case Opcode::ZExt: {
      const auto a = ci(0);
      if (!a) return std::nullopt;
      const int w = f.instr(in.ops[0]).type.bit_width();
      const std::uint64_t raw = static_cast<std::uint64_t>(*a) &
                                (w == 64 ? ~0ULL : ((1ULL << w) - 1));
      out.i = wrap_to_width(in.type, static_cast<std::int64_t>(raw));
      return out;
    }
    case Opcode::SIToFP: {
      const auto a = ci(0);
      if (!a) return std::nullopt;
      out.is_float = true;
      out.f = static_cast<double>(*a);
      return out;
    }
    case Opcode::FPToSI: {
      const auto a = cf(0);
      if (!a) return std::nullopt;
      // Out-of-range conversions are traps in the interpreter's world view
      // only if UB; we fold with C semantics (truncation), matching it.
      out.i = wrap_to_width(in.type, static_cast<std::int64_t>(*a));
      return out;
    }
    case Opcode::Select: {
      const auto c = ci(0);
      if (!c) return std::nullopt;
      const ValueId chosen = *c ? in.ops[1] : in.ops[2];
      if (auto v = const_int_value(f, chosen)) {
        out.i = *v;
        return out;
      }
      if (auto v = const_fp_value(f, chosen)) {
        out.is_float = true;
        out.f = *v;
        return out;
      }
      return std::nullopt;
    }
    default:
      return std::nullopt;
  }
}

ValueId insert_const(Function& f, BlockId block, std::size_t before_pos,
                     Type t, const FoldedConst& c) {
  Instr in;
  in.op = c.is_float ? Opcode::ConstFP : Opcode::ConstInt;
  in.type = t;
  in.imm = c.i;
  in.fimm = c.f;
  const ValueId id = f.add_instr(std::move(in));
  auto& insts = f.block(block).insts;
  insts.insert(insts.begin() + static_cast<std::ptrdiff_t>(
                                   std::min(before_pos, insts.size())),
               id);
  return id;
}

void remove_phi_edge(Function& f, BlockId from, BlockId to) {
  for (ValueId id : f.block(to).insts) {
    Instr& in = f.instr(id);
    if (in.dead()) continue;
    if (in.op != Opcode::Phi) break;
    for (std::size_t k = 0; k < in.phi_blocks.size(); ++k) {
      if (in.phi_blocks[k] == from) {
        in.ops.erase(in.ops.begin() + static_cast<std::ptrdiff_t>(k));
        in.phi_blocks.erase(in.phi_blocks.begin() +
                            static_cast<std::ptrdiff_t>(k));
        break;
      }
    }
    // Single-entry phi degenerates to a copy.
    if (in.ops.size() == 1) {
      const ValueId repl = in.ops[0];
      f.replace_all_uses(id, repl);
      f.kill(id);
    }
  }
  f.purge_dead_from_blocks();
}

void retarget_phi_edges(Function& f, BlockId block, BlockId old_pred,
                        BlockId new_pred) {
  for (ValueId id : f.block(block).insts) {
    Instr& in = f.instr(id);
    if (in.dead()) continue;
    if (in.op != Opcode::Phi) break;
    for (auto& pb : in.phi_blocks) {
      if (pb == old_pred) pb = new_pred;
    }
  }
}

int delete_unreachable_blocks(Function& f, AnalysisManager* am) {
  // The reachability snapshot stays valid throughout: phi-entry cleanup and
  // emptying unreachable blocks never change what entry can reach.
  const DomTree local_dt = am ? DomTree{} : compute_dominators(f);
  const DomTree& dt = am ? am->dominators(f) : local_dt;
  int removed = 0;
  bool mutated = false;
  // First drop phi entries coming from unreachable predecessors.
  for (BlockId b = 0; b < static_cast<BlockId>(f.blocks.size()); ++b) {
    if (!dt.reachable[static_cast<std::size_t>(b)]) continue;
    for (ValueId id : std::vector<ValueId>(f.block(b).insts)) {
      Instr& in = f.instr(id);
      if (in.dead()) continue;
      if (in.op != Opcode::Phi) break;
      for (std::size_t k = in.phi_blocks.size(); k-- > 0;) {
        if (!dt.reachable[static_cast<std::size_t>(in.phi_blocks[k])]) {
          in.ops.erase(in.ops.begin() + static_cast<std::ptrdiff_t>(k));
          in.phi_blocks.erase(in.phi_blocks.begin() +
                              static_cast<std::ptrdiff_t>(k));
          mutated = true;
        }
      }
      if (in.ops.size() == 1) {
        f.replace_all_uses(id, in.ops[0]);
        f.kill(id);
        mutated = true;
      }
    }
  }
  for (BlockId b = 1; b < static_cast<BlockId>(f.blocks.size()); ++b) {
    if (dt.reachable[static_cast<std::size_t>(b)]) continue;
    auto& bb = f.block(b);
    if (bb.insts.empty()) continue;
    for (ValueId id : bb.insts) f.kill(id);
    bb.insts.clear();
    ++removed;
    mutated = true;
  }
  f.purge_dead_from_blocks();
  if (am && mutated) am->invalidate(f, kAllAnalyses);
  return removed;
}

BlockId insert_loop_preheader(
    Function& f, const Loop& loop,
    const std::vector<std::vector<BlockId>>& preds) {
  std::vector<bool> in(f.blocks.size(), false);
  for (BlockId b : loop.blocks) in[static_cast<std::size_t>(b)] = true;
  std::vector<BlockId> outside;
  for (BlockId p : preds[static_cast<std::size_t>(loop.header)]) {
    if (!in[static_cast<std::size_t>(p)]) outside.push_back(p);
  }
  if (outside.empty()) return -1;  // unreachable loop

  // New preheader block.
  f.blocks.push_back(BasicBlock{"preheader", {}});
  const BlockId ph = static_cast<BlockId>(f.blocks.size() - 1);

  // Header phis: merge the outside entries in the preheader.
  for (ValueId id : std::vector<ValueId>(f.block(loop.header).insts)) {
    Instr& phi = f.instr(id);
    if (phi.dead()) continue;
    if (phi.op != Opcode::Phi) break;
    std::vector<std::pair<ValueId, BlockId>> outside_in;
    for (std::size_t k = phi.phi_blocks.size(); k-- > 0;) {
      if (!in[static_cast<std::size_t>(phi.phi_blocks[k])]) {
        outside_in.emplace_back(phi.ops[k], phi.phi_blocks[k]);
        phi.ops.erase(phi.ops.begin() + static_cast<std::ptrdiff_t>(k));
        phi.phi_blocks.erase(phi.phi_blocks.begin() +
                             static_cast<std::ptrdiff_t>(k));
      }
    }
    ValueId merged;
    if (outside_in.size() == 1) {
      merged = outside_in[0].first;
    } else {
      Instr np;
      np.op = Opcode::Phi;
      np.type = f.instr(id).type;
      for (auto& [v, b] : outside_in) {
        np.ops.push_back(v);
        np.phi_blocks.push_back(b);
      }
      merged = f.add_instr(std::move(np));
      f.block(ph).insts.push_back(merged);
    }
    Instr& phi2 = f.instr(id);  // re-fetch (arena may realloc)
    phi2.ops.push_back(merged);
    phi2.phi_blocks.push_back(ph);
  }

  // Preheader terminator + redirect outside predecessors.
  Instr br;
  br.op = Opcode::Br;
  br.succs = {loop.header};
  const ValueId brid = f.add_instr(std::move(br));
  f.block(ph).insts.push_back(brid);
  for (BlockId p : outside) {
    const ValueId pt = f.terminator(p);
    if (pt == kNoValue) continue;
    for (auto& s : f.instr(pt).succs) {
      if (s == loop.header) s = ph;
    }
  }
  return ph;
}

void clone_block_body(Function& f, BlockId src, BlockId dst,
                      std::unordered_map<ValueId, ValueId>& value_map) {
  clone_instr_list(f, f.block(src).insts, dst, value_map);
}

void clone_instr_list(Function& f, const std::vector<ValueId>& insts,
                      BlockId dst,
                      std::unordered_map<ValueId, ValueId>& value_map) {
  const std::vector<ValueId> src_insts = insts;
  for (ValueId id : src_insts) {
    const Instr& orig = f.instr(id);
    if (orig.dead() || orig.op == Opcode::Phi || is_terminator(orig.op))
      continue;
    Instr copy = orig;
    for (auto& op : copy.ops) {
      const auto it = value_map.find(op);
      if (it != value_map.end()) op = it->second;
    }
    const ValueId nid = f.add_instr(std::move(copy));
    if (f.instr(nid).op == Opcode::Alloca) {
      auto& entry = f.block(0).insts;
      entry.insert(entry.begin(), nid);
    } else {
      f.block(dst).insts.push_back(nid);
    }
    value_map[id] = nid;
  }
}

bool defined_outside(const Function& f, ValueId v,
                     const std::vector<bool>& in_loop,
                     const std::vector<BlockId>& defs) {
  const Instr& in = f.instr(v);
  if (in.op == Opcode::Arg) return true;
  const BlockId db = defs[static_cast<std::size_t>(v)];
  if (db < 0) return true;
  return !in_loop[static_cast<std::size_t>(db)];
}

std::optional<CountedLoop> match_counted_loop(const Function& f,
                                              const Loop& loop) {
  if (loop.preheader < 0 || loop.latches.size() != 1) return std::nullopt;
  if (loop.blocks.size() != 2) return std::nullopt;  // header + single body
  const BlockId header = loop.header;
  const BlockId body = loop.latches[0];
  if (body == header) return std::nullopt;

  CountedLoop cl;
  cl.preheader = loop.preheader;
  cl.header = header;
  cl.body = body;

  // Header: phis, then icmp, then condbr(body, exit).
  const ValueId term = f.terminator(header);
  if (term == kNoValue) return std::nullopt;
  const Instr& br = f.instr(term);
  if (br.op != Opcode::CondBr) return std::nullopt;
  if (br.succs[0] != body) return std::nullopt;
  cl.exit = br.succs[1];
  if (std::find(loop.blocks.begin(), loop.blocks.end(), cl.exit) !=
      loop.blocks.end())
    return std::nullopt;

  const Instr& cmp = f.instr(br.ops[0]);
  if (cmp.op != Opcode::ICmp || cmp.pred != CmpPred::SLT) return std::nullopt;
  const auto limit = const_int_value(f, cmp.ops[1]);
  if (!limit) return std::nullopt;

  // Identify phis; the induction phi feeds the compare.
  for (ValueId id : f.block(header).insts) {
    const Instr& in = f.instr(id);
    if (in.dead()) continue;
    if (in.op != Opcode::Phi) {
      // The only non-phi header instructions allowed are the compare and
      // the terminator itself.
      if (id != br.ops[0] && id != term) return std::nullopt;
      continue;
    }
    if (in.ops.size() != 2) return std::nullopt;
    if (id == cmp.ops[0]) {
      cl.iv_phi = id;
    } else {
      cl.reduction_phis.push_back(id);
    }
  }
  if (cl.iv_phi == kNoValue) return std::nullopt;

  // iv incoming values: init from preheader (constant), next from latch.
  const Instr& ivp = f.instr(cl.iv_phi);
  for (std::size_t k = 0; k < 2; ++k) {
    if (ivp.phi_blocks[k] == cl.preheader) {
      const auto init = const_int_value(f, ivp.ops[k]);
      if (!init) return std::nullopt;
      cl.init = *init;
    } else if (ivp.phi_blocks[k] == body) {
      cl.iv_next = ivp.ops[k];
    } else {
      return std::nullopt;
    }
  }
  if (cl.iv_next == kNoValue) return std::nullopt;
  const Instr& next = f.instr(cl.iv_next);
  if (next.op != Opcode::Add || next.ops[0] != cl.iv_phi) return std::nullopt;
  const auto step = const_int_value(f, next.ops[1]);
  if (!step || *step <= 0) return std::nullopt;
  cl.step = *step;
  cl.limit = *limit;

  if (cl.limit <= cl.init) return std::nullopt;  // zero-trip or degenerate
  const std::int64_t span = cl.limit - cl.init;
  cl.trip_count = (span + cl.step - 1) / cl.step;

  // Body must end with an unconditional branch back to the header.
  const ValueId bterm = f.terminator(body);
  if (bterm == kNoValue || f.instr(bterm).op != Opcode::Br) return std::nullopt;

  // Reduction phis must have their loop-carried value defined in the body.
  for (ValueId rp : cl.reduction_phis) {
    const Instr& p = f.instr(rp);
    for (std::size_t k = 0; k < 2; ++k) {
      if (p.phi_blocks[k] != cl.preheader && p.phi_blocks[k] != body)
        return std::nullopt;
    }
  }
  return cl;
}

}  // namespace citroen::passes
