// slp-vectorizer: packs 4 isomorphic scalar chains rooted at consecutive
//                 loads into 4-lane vector operations.
// loop-vectorize: widens counted loops with stride-1 accesses by a factor
//                 of 4, with integer reduction support.
//
// Both implement the paper's Fig. 5.1 profitability rule: integer vector
// lanes of 64 bits are "not profitable" and the tree/loop is rejected.
// Since instcombine's widening rule turns i16->i32->i64 sext chains into
// i64 multiplies, running instcombine *before* a vectoriser can destroy
// vectorisation — observable through slp.NumVectorInstrs, exactly the
// signal CITROEN's cost model learns from (Table 5.1).
//
// Floating-point *reductions* are never vectorised (reassociation would
// change results and fail differential testing); element-wise fp maps are.

#include <algorithm>
#include <array>
#include <map>
#include <set>

#include "passes/common.hpp"
#include "passes/factories.hpp"
#include "passes/passman.hpp"

namespace citroen::passes {

using namespace ir;

namespace {

constexpr int kLanes = 4;

bool profitable_elem(Type t) {
  if (t.is_float()) return true;
  return t.is_int() && t.bit_width() <= 32;
}

// ---------------------------------------------------------------------------
// SLP
// ---------------------------------------------------------------------------

struct PackedGroup {
  std::array<ValueId, kLanes> lanes{};
  ValueId vec = kNoValue;  ///< assigned at codegen
};

class SlpPass final : public Pass {
 public:
  std::string name() const override { return "slp"; }
  std::vector<std::string> stat_names() const override {
    return {"NumVectorInstrs", "NumVectorized", "NumNotBeneficial"};
  }
  /// Inserts vector instructions and kills packed scalars in place: no
  /// CFG change, and stores are never part of a tree (region safety), so
  /// the memory summary survives.
  AnalysisSet invalidates() const override {
    return kAnalysisUseCounts | kAnalysisDefBlocks;
  }
  bool run(Module& m, StatsRegistry& stats, AnalysisManager& am) override {
    bool changed = false;
    for (auto& f : m.functions) {
      for (BlockId b = 0; b < static_cast<BlockId>(f.blocks.size()); ++b) {
        // Repeat until no more trees form in this block.
        while (vectorize_block(f, b, stats, am)) {
          changed = true;
          // The next attempt re-queries use counts against the new IR.
          am.invalidate(f, kAnalysisUseCounts | kAnalysisDefBlocks);
        }
      }
    }
    return changed;
  }

 private:
  using Quad = std::array<ValueId, kLanes>;

  struct Ctx {
    Function& f;
    std::map<ValueId, int> pos;   ///< instruction position within block
    const std::vector<int>& uses;
    BlockId block;
  };

  static bool in_block(const Ctx& c, ValueId v) { return c.pos.count(v) > 0; }

  /// Decompose a load's address into (base, constant offset); loads from
  /// gep(base, C) qualify. Returns false for non-conforming loads.
  static bool load_addr(const Function& f, ValueId load, ValueId& base,
                        std::int64_t& offset) {
    const Instr& in = f.instr(load);
    if (in.op != Opcode::Load || in.type.is_vector()) return false;
    const Instr& g = f.instr(in.ops[0]);
    if (g.op != Opcode::Gep) return false;
    if (g.stride != in.type.total_bytes()) return false;
    const auto c = const_int_value(f, g.ops[1]);
    if (!c) return false;
    base = g.ops[0];
    offset = *c;
    return true;
  }

  static const PackedGroup* find_group(const std::vector<PackedGroup>& tree,
                                       const Quad& lanes) {
    for (const auto& g : tree) {
      if (g.lanes == lanes) return &g;
    }
    return nullptr;
  }

  /// The unique user of `v` (kNoValue if it has != 1 uses or the user is
  /// outside the current block).
  static ValueId unique_user(const Ctx& c, ValueId v) {
    if (c.uses[static_cast<std::size_t>(v)] != 1) return kNoValue;
    for (const auto& [id, p] : c.pos) {
      const Instr& u = c.f.instr(id);
      if (u.dead()) continue;
      for (ValueId op : u.ops) {
        if (op == v) return id;
      }
    }
    return kNoValue;  // single use lives outside this block
  }

  /// Recursively pack `vals` down to consecutive-load leaves, appending
  /// the discovered groups (operands before users) to `tree`.
  bool pack_down(const Ctx& c, const Quad& vals,
                 std::vector<PackedGroup>& tree, int depth) {
    if (depth > 6) return false;
    if (find_group(tree, vals)) return true;
    // Lanes must be 4 distinct single-use instructions in this block with
    // identical opcode/type.
    for (int k = 0; k < kLanes; ++k) {
      const ValueId v = vals[static_cast<std::size_t>(k)];
      if (!in_block(c, v) || c.uses[static_cast<std::size_t>(v)] != 1)
        return false;
      for (int j = k + 1; j < kLanes; ++j) {
        if (v == vals[static_cast<std::size_t>(j)]) return false;
      }
    }
    const Instr& i0 = c.f.instr(vals[0]);
    for (int k = 1; k < kLanes; ++k) {
      const Instr& ik = c.f.instr(vals[static_cast<std::size_t>(k)]);
      if (ik.op != i0.op || !(ik.type == i0.type)) return false;
    }
    if (!profitable_elem(i0.type)) return false;

    if (i0.op == Opcode::Load) {
      ValueId base0;
      std::int64_t off0;
      if (!load_addr(c.f, vals[0], base0, off0)) return false;
      for (int k = 1; k < kLanes; ++k) {
        ValueId bk;
        std::int64_t ok2;
        if (!load_addr(c.f, vals[static_cast<std::size_t>(k)], bk, ok2))
          return false;
        if (bk != base0 || ok2 != off0 + k) return false;
      }
      tree.push_back(PackedGroup{vals, kNoValue});
      return true;
    }
    if (is_cast(i0.op)) {
      Quad inner;
      for (int k = 0; k < kLanes; ++k)
        inner[static_cast<std::size_t>(k)] =
            c.f.instr(vals[static_cast<std::size_t>(k)]).ops[0];
      if (!pack_down(c, inner, tree, depth + 1)) return false;
      tree.push_back(PackedGroup{vals, kNoValue});
      return true;
    }
    if (is_binop(i0.op)) {
      for (int oi = 0; oi < 2; ++oi) {
        Quad opq;
        bool uniform = true;
        for (int k = 0; k < kLanes; ++k) {
          opq[static_cast<std::size_t>(k)] =
              c.f.instr(vals[static_cast<std::size_t>(k)])
                  .ops[static_cast<std::size_t>(oi)];
          if (opq[static_cast<std::size_t>(k)] != opq[0]) uniform = false;
        }
        if (uniform) continue;  // splat at codegen
        if (!pack_down(c, opq, tree, depth + 1)) return false;
      }
      tree.push_back(PackedGroup{vals, kNoValue});
      return true;
    }
    return false;
  }

  bool vectorize_block(Function& f, BlockId b, StatsRegistry& stats,
                       AnalysisManager& am) {
    Ctx c{f, {}, am.use_counts(f), b};
    const auto& insts = f.block(b).insts;
    for (std::size_t i = 0; i < insts.size(); ++i) {
      if (!f.instr(insts[i]).dead()) c.pos[insts[i]] = static_cast<int>(i);
    }

    // Seed groups: 4 loads from consecutive constant offsets off a common
    // base pointer (the base may itself be a gep computed in a loop).
    struct LoadInfo {
      ValueId load, base;
      std::int64_t offset;
      Type type;
    };
    std::vector<LoadInfo> loads;
    for (ValueId id : insts) {
      const Instr& in = f.instr(id);
      if (in.dead()) continue;
      ValueId base;
      std::int64_t off;
      if (load_addr(f, id, base, off) && profitable_elem(in.type))
        loads.push_back({id, base, off, in.type});
    }
    std::sort(loads.begin(), loads.end(), [](const auto& a, const auto& b2) {
      if (a.base != b2.base) return a.base < b2.base;
      return a.offset < b2.offset;
    });
    for (std::size_t i = 0; i + kLanes <= loads.size(); ++i) {
      bool consecutive = true;
      for (int k = 1; k < kLanes; ++k) {
        const auto& p = loads[i + static_cast<std::size_t>(k) - 1];
        const auto& n = loads[i + static_cast<std::size_t>(k)];
        if (n.base != p.base || n.offset != p.offset + 1 ||
            !(n.type == p.type))
          consecutive = false;
      }
      if (!consecutive) continue;
      Quad seed;
      for (int k = 0; k < kLanes; ++k)
        seed[static_cast<std::size_t>(k)] =
            loads[i + static_cast<std::size_t>(k)].load;
      if (try_tree(c, seed, stats)) return true;
    }
    return false;
  }

  bool try_tree(Ctx& c, const Quad& seed, StatsRegistry& stats) {
    Function& f = c.f;
    std::vector<PackedGroup> tree;
    if (!pack_down(c, seed, tree, 0)) return false;
    Quad frontier = seed;

    // Grow towards users while they stay isomorphic and profitable.
    while (true) {
      Quad users;
      bool ok = true;
      for (int k = 0; k < kLanes && ok; ++k) {
        const ValueId u =
            unique_user(c, frontier[static_cast<std::size_t>(k)]);
        if (u == kNoValue) ok = false;
        users[static_cast<std::size_t>(k)] = u;
      }
      if (!ok) break;
      for (int k = 0; k < kLanes && ok; ++k) {
        for (int j = k + 1; j < kLanes; ++j) {
          if (users[static_cast<std::size_t>(k)] ==
              users[static_cast<std::size_t>(j)])
            ok = false;
        }
      }
      if (!ok) break;
      const Instr& u0 = f.instr(users[0]);
      if (!(is_binop(u0.op) || is_cast(u0.op))) break;
      bool iso = true;
      for (int k = 1; k < kLanes; ++k) {
        const Instr& uk = f.instr(users[static_cast<std::size_t>(k)]);
        if (uk.op != u0.op || !(uk.type == u0.type)) iso = false;
      }
      if (!iso || !profitable_elem(u0.type)) break;

      if (is_binop(u0.op)) {
        // One operand column must be exactly the frontier; the other must
        // be uniform or packable (e.g. the second load chain of a dot
        // product).
        int fcol = -1;
        for (int oi = 0; oi < 2; ++oi) {
          bool all = true;
          for (int k = 0; k < kLanes; ++k) {
            if (f.instr(users[static_cast<std::size_t>(k)])
                    .ops[static_cast<std::size_t>(oi)] !=
                frontier[static_cast<std::size_t>(k)])
              all = false;
          }
          if (all) fcol = oi;
        }
        if (fcol < 0) break;
        const int other = 1 - fcol;
        Quad opq;
        bool uniform = true;
        for (int k = 0; k < kLanes; ++k) {
          opq[static_cast<std::size_t>(k)] =
              f.instr(users[static_cast<std::size_t>(k)])
                  .ops[static_cast<std::size_t>(other)];
          if (opq[static_cast<std::size_t>(k)] != opq[0]) uniform = false;
        }
        if (!uniform && !find_group(tree, opq) &&
            !pack_down(c, opq, tree, 0))
          break;
      }
      tree.push_back(PackedGroup{users, kNoValue});
      frontier = users;
    }

    if (tree.size() < 2) {
      // A lone vector load is not worth the shuffle overhead; if growth
      // stopped because the next group's element type was 64-bit integer,
      // record the profitability rejection (the paper's Fig. 5.1 signal).
      bool wide_user = false;
      for (ValueId v : frontier) {
        const ValueId u = unique_user(c, v);
        if (u != kNoValue) {
          const Type t = f.instr(u).type;
          if (t.is_int() && t.bit_width() >= 64) wide_user = true;
        }
      }
      if (wide_user) stats.add(name(), "NumNotBeneficial", 1);
      return false;
    }

    // Reduction root: the frontier lanes feed a linear integer add chain,
    // either directly or through one scalar sign-extension per lane (the
    // Fig. 5.1b shape: reduce in i32, widen once, accumulate in i64).
    Quad chain_in = frontier;
    std::array<ValueId, kLanes> sexts{};
    bool via_sext = false;
    {
      int sext_count = 0;
      Quad maybe;
      for (int k = 0; k < kLanes; ++k) {
        const ValueId u =
            unique_user(c, frontier[static_cast<std::size_t>(k)]);
        if (u != kNoValue && f.instr(u).op == Opcode::SExt) {
          maybe[static_cast<std::size_t>(k)] = u;
          ++sext_count;
        }
      }
      if (sext_count == kLanes) {
        bool same = true;
        for (int k = 1; k < kLanes; ++k) {
          if (!(f.instr(maybe[static_cast<std::size_t>(k)]).type ==
                f.instr(maybe[0]).type))
            same = false;
        }
        if (same) {
          via_sext = true;
          sexts = maybe;
          chain_in = maybe;
        }
      }
    }
    const auto chain = match_reduction_chain(f, chain_in, c.uses);
    if (!chain) return false;
    const Type red_ty = f.instr(chain->result).type;
    if (!red_ty.is_int()) return false;

    // Region safety: no stores/calls between the tree and the chain, and
    // the chain's result must not be consumed before its replacement.
    int lo = INT32_MAX, hi = -1;
    auto widen = [&](ValueId id) {
      const auto it = c.pos.find(id);
      if (it != c.pos.end()) {
        lo = std::min(lo, it->second);
        hi = std::max(hi, it->second);
      }
    };
    for (const auto& g : tree) {
      for (ValueId v : g.lanes) widen(v);
    }
    if (via_sext) {
      for (ValueId s : sexts) widen(s);
    }
    for (ValueId a : chain->adds) widen(a);
    const auto& insts = f.block(c.block).insts;
    for (int p = lo; p <= hi; ++p) {
      const Instr& in = f.instr(insts[static_cast<std::size_t>(p)]);
      if (in.dead()) continue;
      if (writes_memory(in.op) || in.op == Opcode::Call) return false;
      const bool in_chain =
          std::find(chain->adds.begin(), chain->adds.end(),
                    insts[static_cast<std::size_t>(p)]) != chain->adds.end();
      if (!in_chain) {
        for (ValueId op : in.ops) {
          if (op == chain->result) return false;
        }
      }
    }

    // ---- codegen ----------------------------------------------------------
    std::vector<ValueId> emitted;
    int vec_instrs = 0;
    auto emit = [&](Instr in) {
      const ValueId id = f.add_instr(std::move(in));
      emitted.push_back(id);
      ++vec_instrs;
      return id;
    };

    for (auto& g : tree) {
      const Instr& l0 = f.instr(g.lanes[0]);
      if (l0.op == Opcode::Load) {
        Instr vl;
        vl.op = Opcode::Load;
        vl.type = l0.type.vector4();
        vl.ops = {l0.ops[0]};
        g.vec = emit(std::move(vl));
        continue;
      }
      if (is_cast(l0.op)) {
        Quad inner;
        for (int k = 0; k < kLanes; ++k)
          inner[static_cast<std::size_t>(k)] =
              f.instr(g.lanes[static_cast<std::size_t>(k)]).ops[0];
        const PackedGroup* og = find_group(tree, inner);
        Instr vc;
        vc.op = l0.op;
        vc.type = l0.type.vector4();
        vc.ops = {og->vec};
        g.vec = emit(std::move(vc));
        continue;
      }
      // Binop.
      Instr vb;
      vb.op = l0.op;
      vb.type = l0.type.vector4();
      vb.ops.resize(2);
      for (int oi = 0; oi < 2; ++oi) {
        Quad opq;
        bool uniform = true;
        for (int k = 0; k < kLanes; ++k) {
          opq[static_cast<std::size_t>(k)] =
              f.instr(g.lanes[static_cast<std::size_t>(k)])
                  .ops[static_cast<std::size_t>(oi)];
          if (opq[static_cast<std::size_t>(k)] != opq[0]) uniform = false;
        }
        const PackedGroup* og = find_group(tree, opq);
        if (og && og->vec != kNoValue) {
          vb.ops[static_cast<std::size_t>(oi)] = og->vec;
        } else if (uniform) {
          Instr sp;
          sp.op = Opcode::VSplat;
          sp.type = f.instr(opq[0]).type.vector4();
          sp.ops = {opq[0]};
          vb.ops[static_cast<std::size_t>(oi)] = emit(std::move(sp));
        } else {
          return false;  // unreachable: growth/pack_down verified shapes
        }
      }
      g.vec = emit(std::move(vb));
    }

    // reduce -> (optional widen) -> external accumulate.
    const ValueId top_vec = tree.back().vec;
    const Type top_sty = f.instr(tree.back().lanes[0]).type;
    Instr rd;
    rd.op = Opcode::VReduceAdd;
    rd.type = top_sty;
    rd.ops = {top_vec};
    ValueId red = emit(std::move(rd));
    if (via_sext) {
      Instr sx;
      sx.op = Opcode::SExt;
      sx.type = red_ty;
      sx.ops = {red};
      red = emit(std::move(sx));
    }
    ValueId final_val = red;
    if (chain->external != kNoValue) {
      Instr ad;
      ad.op = Opcode::Add;
      ad.type = red_ty;
      ad.ops = {chain->external, red};
      final_val = emit(std::move(ad));
      --vec_instrs;  // the scalar accumulate is not a vector instruction
    }

    {
      auto& bi = f.block(c.block).insts;
      bi.insert(bi.begin() + static_cast<std::ptrdiff_t>(hi) + 1,
                emitted.begin(), emitted.end());
    }
    f.replace_all_uses(chain->result, final_val);
    for (ValueId a : chain->adds) f.kill(a);
    if (via_sext) {
      for (ValueId s : sexts) f.kill(s);
    }
    for (auto it = tree.rbegin(); it != tree.rend(); ++it) {
      for (ValueId v : it->lanes) f.kill(v);
    }
    f.purge_dead_from_blocks();

    stats.add(name(), "NumVectorized", 1);
    stats.add(name(), "NumVectorInstrs", vec_instrs);
    return true;
  }

  struct ChainInfo {
    std::array<ValueId, kLanes> adds{};
    ValueId external = kNoValue;
    ValueId result = kNoValue;
  };

  /// Match a linear integer add chain  a1 = x + m_i ; a2 = a1 + m_j ; ...
  /// consuming each of the four lane values exactly once.
  std::optional<ChainInfo> match_reduction_chain(const Function& f,
                                                 const Quad& top,
                                                 const std::vector<int>& uses) {
    for (ValueId v : top) {
      if (uses[static_cast<std::size_t>(v)] != 1) return std::nullopt;
    }
    std::map<ValueId, ValueId> lane_user;  // lane -> add
    for (const auto& bb : f.blocks) {
      for (ValueId id : bb.insts) {
        const Instr& in = f.instr(id);
        if (in.dead()) continue;
        for (ValueId op : in.ops) {
          for (ValueId v : top) {
            if (op == v) {
              if (in.op != Opcode::Add || !in.type.is_int() ||
                  in.type.is_vector())
                return std::nullopt;
              lane_user[v] = id;
            }
          }
        }
      }
    }
    if (lane_user.size() != kLanes) return std::nullopt;
    std::set<ValueId> add_set;
    for (auto& [v, a] : lane_user) add_set.insert(a);
    if (add_set.size() != kLanes) return std::nullopt;  // linear chain only

    ChainInfo ci;
    std::set<ValueId> lanes(top.begin(), top.end());
    ValueId head = kNoValue;
    for (ValueId a : add_set) {
      const Instr& in = f.instr(a);
      ValueId non_lane = kNoValue;
      int lane_ops = 0;
      for (ValueId op : in.ops) {
        if (lanes.count(op)) {
          ++lane_ops;
        } else {
          non_lane = op;
        }
      }
      if (lane_ops != 1) return std::nullopt;
      if (!add_set.count(non_lane)) {
        if (head != kNoValue) return std::nullopt;
        head = a;
        ci.external = non_lane;
      }
    }
    if (head == kNoValue) return std::nullopt;
    std::size_t n = 0;
    ValueId cur = head;
    while (true) {
      ci.adds[n++] = cur;
      if (n == kLanes) break;
      ValueId nxt = kNoValue;
      for (ValueId a : add_set) {
        const Instr& in = f.instr(a);
        for (ValueId op : in.ops) {
          if (op == cur) nxt = a;
        }
      }
      if (nxt == kNoValue) return std::nullopt;
      cur = nxt;
    }
    ci.result = cur;
    for (std::size_t k = 0; k + 1 < kLanes; ++k) {
      if (uses[static_cast<std::size_t>(ci.adds[k])] != 1) return std::nullopt;
    }
    return ci;
  }
};

// ---------------------------------------------------------------------------
// Loop vectorizer
// ---------------------------------------------------------------------------

class LoopVectorizePass final : public Pass {
 public:
  std::string name() const override { return "loop-vectorize"; }
  std::vector<std::string> stat_names() const override {
    return {"LoopsVectorized", "NumNotProfitable", "NumNotLegal"};
  }
  /// Rewrites loop bodies in place (blocks and edges survive): dominators
  /// and loop info stay valid, everything value-level changes. Mutated
  /// functions additionally get a full in-pass invalidation below.
  AnalysisSet invalidates() const override {
    return kAnalysisUseCounts | kAnalysisDefBlocks | kAnalysisMemSummary;
  }
  bool run(Module& m, StatsRegistry& stats, AnalysisManager& am) override {
    bool changed = false;
    for (auto& f : m.functions) {
      bool local = true;
      while (local) {
        local = false;
        const auto& loops = am.loops(f);
        for (const auto& loop : loops) {
          const auto cl = match_counted_loop(f, loop);
          if (!cl || cl->step != 1 || cl->trip_count % kLanes != 0 ||
              cl->trip_count < 2 * kLanes)
            continue;
          if (vectorize(f, *cl, stats, am)) {
            changed = true;
            local = true;
            am.invalidate(f, kAllAnalyses);
            break;
          }
        }
      }
    }
    return changed;
  }

 private:
  bool vectorize(Function& f, const CountedLoop& cl, StatsRegistry& stats,
                 AnalysisManager& am) {
    // Constants materialised inside the body are operands, not work: move
    // them to the preheader so classification and splatting stay simple.
    {
      auto& body = f.block(cl.body).insts;
      std::vector<ValueId> consts;
      for (ValueId id : body) {
        const Instr& in = f.instr(id);
        if (!in.dead() &&
            (in.op == Opcode::ConstInt || in.op == Opcode::ConstFP))
          consts.push_back(id);
      }
      for (ValueId id : consts) {
        std::erase(body, id);
        auto& ph = f.block(cl.preheader).insts;
        ph.insert(ph.end() - 1, id);
      }
      // This motion happens before the legality checks, so the function
      // can be mutated even when this returns false: refresh def blocks
      // before they are queried below.
      if (!consts.empty()) am.invalidate(f, kAnalysisDefBlocks);
    }
    std::vector<bool> in_loop(f.blocks.size(), false);
    in_loop[static_cast<std::size_t>(cl.header)] = true;
    in_loop[static_cast<std::size_t>(cl.body)] = true;
    const auto& defs = am.def_blocks(f);
    const auto& uses = am.use_counts(f);

    // Classify body instructions.
    struct StoreRec {
      ValueId store, base;
    };
    std::vector<ValueId> payload;  // in order, excluding iv_next/terminator
    std::vector<ValueId> load_bases, store_bases;
    std::map<ValueId, ValueId> red_add;  // reduction phi -> its add
    for (ValueId id : f.block(cl.body).insts) {
      const Instr& in = f.instr(id);
      if (in.dead() || id == cl.iv_next || is_terminator(in.op)) continue;
      payload.push_back(id);
      if (in.op == Opcode::Load) {
        const Instr& g = f.instr(in.ops[0]);
        if (g.op != Opcode::Gep || g.ops[1] != cl.iv_phi ||
            g.stride != in.type.total_bytes() || in.type.is_vector() ||
            !defined_outside(f, g.ops[0], in_loop, defs)) {
          stats.add(name(), "NumNotLegal", 1);
          return false;
        }
        load_bases.push_back(g.ops[0]);
      } else if (in.op == Opcode::Store) {
        const Instr& g = f.instr(in.ops[1]);
        const Type vt = f.instr(in.ops[0]).type;
        if (g.op != Opcode::Gep || g.ops[1] != cl.iv_phi ||
            g.stride != vt.total_bytes() || vt.is_vector() ||
            !defined_outside(f, g.ops[0], in_loop, defs)) {
          stats.add(name(), "NumNotLegal", 1);
          return false;
        }
        store_bases.push_back(g.ops[0]);
      } else if (in.op == Opcode::Gep) {
        if (in.ops[1] != cl.iv_phi) {
          stats.add(name(), "NumNotLegal", 1);
          return false;
        }
      } else if (is_binop(in.op) || is_cast(in.op)) {
        if (in.type.is_vector()) return false;
        // The raw induction value must not flow into arithmetic (we have
        // no step-vector constant to widen it with).
        for (ValueId op : in.ops) {
          if (op == cl.iv_phi) {
            stats.add(name(), "NumNotLegal", 1);
            return false;
          }
        }
      } else {
        stats.add(name(), "NumNotLegal", 1);
        return false;
      }
    }
    if (payload.empty()) return false;

    // Alias legality: every (load base, store base) pair must be provably
    // distinct objects.
    auto distinct_objects = [&](ValueId a, ValueId b) {
      const Instr& x = f.instr(a);
      const Instr& y = f.instr(b);
      if (x.op == Opcode::GlobalAddr && y.op == Opcode::GlobalAddr)
        return x.global_index != y.global_index;
      if (x.op == Opcode::Alloca && y.op == Opcode::Alloca) return a != b;
      if ((x.op == Opcode::Alloca) != (y.op == Opcode::Alloca)) return true;
      return false;
    };
    for (ValueId lb : load_bases) {
      for (ValueId sb : store_bases) {
        if (!distinct_objects(lb, sb)) {
          stats.add(name(), "NumNotLegal", 1);
          return false;
        }
      }
    }

    // Reductions: integer adds only (fp reassociation would change the
    // program's observable output).
    for (ValueId rp : cl.reduction_phis) {
      const Instr& p = f.instr(rp);
      ValueId latch_v = kNoValue;
      for (std::size_t k = 0; k < 2; ++k) {
        if (p.phi_blocks[k] == cl.body) latch_v = p.ops[k];
      }
      const Instr& a = f.instr(latch_v);
      if (a.op != Opcode::Add || !a.type.is_int() || a.type.is_vector() ||
          (a.ops[0] != rp && a.ops[1] != rp)) {
        stats.add(name(), "NumNotLegal", 1);
        return false;
      }
      // The phi may only be used by its own add inside the loop.
      for (ValueId id : f.block(cl.body).insts) {
        const Instr& u = f.instr(id);
        if (u.dead() || id == latch_v) continue;
        for (ValueId op : u.ops) {
          if (op == rp) {
            stats.add(name(), "NumNotLegal", 1);
            return false;
          }
        }
      }
      red_add[rp] = latch_v;
    }

    // Profitability (the paper's rule): no 64-bit integer vector lanes.
    for (ValueId id : payload) {
      const Instr& in = f.instr(id);
      if (in.op == Opcode::Gep) continue;
      const Type t =
          in.op == Opcode::Store ? f.instr(in.ops[0]).type : in.type;
      if (!profitable_elem(t)) {
        stats.add(name(), "NumNotProfitable", 1);
        return false;
      }
    }
    (void)uses;

    // ---- transform --------------------------------------------------------
    // 1. Reduction phis become vector phis with a zero-splat init; the
    //    scalar init is re-added after the final reduce in the exit block.
    std::map<ValueId, std::pair<ValueId, ValueId>> red_fixups;  // phi->(init, reduce placeholder)
    for (auto& [rp, addv] : red_add) {
      Instr& p = f.instr(rp);
      const Type sty = p.type;
      ValueId init_v = kNoValue;
      for (std::size_t k = 0; k < 2; ++k) {
        if (p.phi_blocks[k] == cl.preheader) init_v = p.ops[k];
      }
      // zero + splat in the preheader.
      Instr zc;
      zc.op = Opcode::ConstInt;
      zc.type = sty;
      zc.imm = 0;
      const ValueId zid = f.add_instr(std::move(zc));
      Instr sp;
      sp.op = Opcode::VSplat;
      sp.type = sty.vector4();
      sp.ops = {zid};
      const ValueId spid = f.add_instr(std::move(sp));
      auto& ph = f.block(cl.preheader).insts;
      ph.insert(ph.end() - 1, {zid, spid});
      Instr& p2 = f.instr(rp);
      p2.type = sty.vector4();
      for (std::size_t k = 0; k < 2; ++k) {
        if (p2.phi_blocks[k] == cl.preheader) p2.ops[k] = spid;
      }
      red_fixups[rp] = {init_v, kNoValue};
    }

    // 2. Rewrite payload to vector form in place.
    std::map<ValueId, ValueId> vec_of;  // scalar body value -> vector value
    for (auto& [rp, addv] : red_add) vec_of[rp] = rp;  // phi is vector now
    std::vector<ValueId> new_body;
    auto splat_in_preheader = [&](ValueId scalar) {
      Instr sp;
      sp.op = Opcode::VSplat;
      sp.type = f.instr(scalar).type.vector4();
      sp.ops = {scalar};
      const ValueId spid = f.add_instr(std::move(sp));
      auto& ph = f.block(cl.preheader).insts;
      ph.insert(ph.end() - 1, spid);
      return spid;
    };
    auto map_operand = [&](ValueId op) {
      const auto it = vec_of.find(op);
      if (it != vec_of.end()) return it->second;
      // Loop-invariant scalar: splat once.
      const ValueId spid = splat_in_preheader(op);
      vec_of[op] = spid;
      return spid;
    };

    for (ValueId id : payload) {
      const Instr in = f.instr(id);  // copy: we will kill originals
      if (in.op == Opcode::Gep) {
        new_body.push_back(id);  // geps stay scalar (address computation)
        continue;
      }
      if (in.op == Opcode::Load) {
        Instr vl;
        vl.op = Opcode::Load;
        vl.type = in.type.vector4();
        vl.ops = {in.ops[0]};
        const ValueId vid = f.add_instr(std::move(vl));
        vec_of[id] = vid;
        new_body.push_back(vid);
        continue;
      }
      if (in.op == Opcode::Store) {
        Instr vs;
        vs.op = Opcode::Store;
        vs.ops = {map_operand(in.ops[0]), in.ops[1]};
        const ValueId vid = f.add_instr(std::move(vs));
        new_body.push_back(vid);
        continue;
      }
      // binop / cast
      Instr vb;
      vb.op = in.op;
      vb.type = in.type.vector4();
      for (ValueId op : in.ops) vb.ops.push_back(map_operand(op));
      const ValueId vid = f.add_instr(std::move(vb));
      vec_of[id] = vid;
      new_body.push_back(vid);
    }

    // 3. iv_next steps by 4; rebuild the body instruction list.
    {
      Instr sc;
      sc.op = Opcode::ConstInt;
      sc.type = f.instr(cl.iv_phi).type;
      sc.imm = kLanes * cl.step;
      const ValueId scid = f.add_instr(std::move(sc));
      new_body.push_back(scid);
      Instr& nx = f.instr(cl.iv_next);
      nx.ops[1] = scid;
      new_body.push_back(cl.iv_next);
      const ValueId bterm = f.terminator(cl.body);
      new_body.push_back(bterm);
      // Kill replaced scalars (not geps / iv_next / terminator).
      for (ValueId id : payload) {
        const Instr& in = f.instr(id);
        if (in.op == Opcode::Gep) continue;
        f.kill(id);
      }
      f.block(cl.body).insts = std::move(new_body);
    }

    // 4. Reduction phi latch values + exit fixup.
    for (auto& [rp, addv] : red_add) {
      Instr& p = f.instr(rp);
      for (std::size_t k = 0; k < 2; ++k) {
        if (p.phi_blocks[k] == cl.body) p.ops[k] = vec_of[addv];
      }
      // exit: total = init + vreduce.add(phi)
      const Type sty = f.instr(rp).type.element();
      Instr rd;
      rd.op = Opcode::VReduceAdd;
      rd.type = sty;
      rd.ops = {rp};
      const ValueId rid = f.add_instr(std::move(rd));
      Instr ad;
      ad.op = Opcode::Add;
      ad.type = sty;
      ad.ops = {red_fixups[rp].first, rid};
      const ValueId tid = f.add_instr(std::move(ad));
      // Replace outside uses of the scalar phi value with the total.
      for (BlockId b = 0; b < static_cast<BlockId>(f.blocks.size()); ++b) {
        if (b == cl.header || b == cl.body) continue;
        for (ValueId uid : f.block(b).insts) {
          Instr& u = f.instr(uid);
          if (u.dead()) continue;
          for (auto& op : u.ops) {
            if (op == rp) op = tid;
          }
        }
      }
      auto& ex = f.block(cl.exit).insts;
      std::size_t at = 0;
      while (at < ex.size() && f.instr(ex[at]).op == Opcode::Phi) ++at;
      ex.insert(ex.begin() + static_cast<std::ptrdiff_t>(at), {rid, tid});
    }

    f.purge_dead_from_blocks();
    stats.add(name(), "LoopsVectorized", 1);
    return true;
  }
};

}  // namespace

std::unique_ptr<Pass> make_slp_vectorizer() {
  return std::make_unique<SlpPass>();
}
std::unique_ptr<Pass> make_loop_vectorize() {
  return std::make_unique<LoopVectorizePass>();
}

}  // namespace citroen::passes
