// mem2reg: promote scalar stack slots to SSA registers.
// sroa: split multi-element stack aggregates accessed through constant
//       indices into scalar slots, then promote those as well.
//
// These are the gateway passes of MiniIR, exactly as in LLVM: SLP/loop
// vectorisation, LICM and GVN all require values in registers, so a pass
// sequence that omits (or mis-places) promotion forfeits most other wins.

#include "passes/common.hpp"
#include "passes/factories.hpp"
#include "passes/passman.hpp"
#include "passes/ssa_util.hpp"

namespace citroen::passes {

using namespace ir;

namespace {

class Mem2RegPass final : public Pass {
 public:
  std::string name() const override { return "mem2reg"; }
  std::vector<std::string> stat_names() const override {
    return {"NumPromoted", "NumPHIInsert", "NumDeadStore"};
  }

  /// Promotion kills loads/stores/allocas and inserts phis without any
  /// CFG edit: dominators and loop info survive the pass.
  AnalysisSet invalidates() const override {
    return kAnalysisUseCounts | kAnalysisDefBlocks | kAnalysisMemSummary;
  }
  bool run(Module& m, StatsRegistry& stats, AnalysisManager& am) override {
    bool changed = false;
    for (auto& f : m.functions) {
      const PromoteResult r = promote_allocas(f, &am);
      stats.add(name(), "NumPromoted", r.promoted);
      stats.add(name(), "NumPHIInsert", r.phis);
      stats.add(name(), "NumDeadStore", r.dead_stores);
      changed |= r.promoted > 0;
    }
    return changed;
  }
};

/// An alloca is SROA-splittable if every use is a Gep with a constant
/// index that feeds only same-typed loads/stores fully covering one element.
class SroaPass final : public Pass {
 public:
  std::string name() const override { return "sroa"; }
  std::vector<std::string> stat_names() const override {
    return {"NumReplaced", "NumPromoted", "NumPHIInsert"};
  }

  AnalysisSet invalidates() const override {
    return kAnalysisUseCounts | kAnalysisDefBlocks | kAnalysisMemSummary;
  }
  bool run(Module& m, StatsRegistry& stats, AnalysisManager& am) override {
    bool changed = false;
    for (auto& f : m.functions) changed |= run_fn(f, stats, am);
    return changed;
  }

 private:
  bool run_fn(Function& f, StatsRegistry& stats, AnalysisManager& am) {
    bool changed = false;
    // Find splittable aggregates.
    std::vector<ValueId> allocas;
    for (const auto& bb : f.blocks) {
      for (ValueId id : bb.insts) {
        if (f.instr(id).op == Opcode::Alloca) allocas.push_back(id);
      }
    }
    for (ValueId a : allocas) {
      if (splittable(f, a)) {
        split(f, a);
        stats.add(name(), "NumReplaced", 1);
        changed = true;
      }
    }
    // SROA finishes with promotion (LLVM's SROA subsumes mem2reg).
    // Splitting rewrote instructions (no CFG edit); refresh everything but
    // the still-valid dominator tree the promoter is about to query.
    if (changed)
      am.invalidate(
          f, kAnalysisUseCounts | kAnalysisDefBlocks | kAnalysisMemSummary);
    const PromoteResult r = promote_allocas(f, &am);
    stats.add(name(), "NumPromoted", r.promoted);
    stats.add(name(), "NumPHIInsert", r.phis);
    changed |= r.promoted > 0;
    return changed;
  }

  bool splittable(const Function& f, ValueId a) {
    const Instr& al = f.instr(a);
    int elem_bytes = -1;
    int max_index = -1;
    for (const auto& bb : f.blocks) {
      for (ValueId id : bb.insts) {
        const Instr& in = f.instr(id);
        if (in.dead()) continue;
        for (std::size_t k = 0; k < in.ops.size(); ++k) {
          if (in.ops[k] != a) continue;
          if (in.op != Opcode::Gep || k != 0) return false;
          const auto idx = const_int_value(f, in.ops[1]);
          if (!idx || *idx < 0 || *idx > 64) return false;
          if (elem_bytes == -1) elem_bytes = in.stride;
          if (in.stride != elem_bytes) return false;
          max_index = std::max(max_index, static_cast<int>(*idx));
          // Gep result must feed only loads/stores of elem_bytes width.
          for (const auto& bb2 : f.blocks) {
            for (ValueId uid : bb2.insts) {
              const Instr& u = f.instr(uid);
              if (u.dead()) continue;
              for (std::size_t j = 0; j < u.ops.size(); ++j) {
                if (u.ops[j] != id) continue;
                if (u.op == Opcode::Load && j == 0 &&
                    u.type.total_bytes() == elem_bytes)
                  continue;
                if (u.op == Opcode::Store && j == 1 &&
                    f.instr(u.ops[0]).type.total_bytes() == elem_bytes)
                  continue;
                return false;
              }
            }
          }
        }
      }
    }
    if (elem_bytes <= 0) return false;
    return (max_index + 1) * elem_bytes <= al.alloca_bytes;
  }

  void split(Function& f, ValueId a) {
    const int elem_bytes = [&] {
      for (const auto& bb : f.blocks) {
        for (ValueId id : bb.insts) {
          const Instr& in = f.instr(id);
          if (!in.dead() && in.op == Opcode::Gep && in.ops[0] == a)
            return in.stride;
        }
      }
      return 0;
    }();

    // One scalar alloca per accessed index.
    std::unordered_map<std::int64_t, ValueId> scalar_slot;
    for (const auto& bb : f.blocks) {
      for (ValueId id : std::vector<ValueId>(bb.insts)) {
        Instr& in = f.instr(id);
        if (in.dead() || in.op != Opcode::Gep || in.ops[0] != a) continue;
        const std::int64_t idx = *const_int_value(f, in.ops[1]);
        auto it = scalar_slot.find(idx);
        if (it == scalar_slot.end()) {
          Instr na;
          na.op = Opcode::Alloca;
          na.type = kPtr;
          na.alloca_bytes = elem_bytes;
          const ValueId nid = f.add_instr(std::move(na));
          auto& entry = f.block(0).insts;
          entry.insert(entry.begin(), nid);
          it = scalar_slot.emplace(idx, nid).first;
        }
        f.replace_all_uses(id, it->second);
        f.kill(id);
      }
    }
    f.kill(a);
    f.purge_dead_from_blocks();
  }
};

}  // namespace

std::unique_ptr<Pass> make_mem2reg() { return std::make_unique<Mem2RegPass>(); }
std::unique_ptr<Pass> make_sroa() { return std::make_unique<SroaPass>(); }

}  // namespace citroen::passes
