#include <functional>
#include <stdexcept>

#include "passes/factories.hpp"
#include "passes/pass.hpp"
#include "passes/passman.hpp"

namespace citroen::passes {

namespace {

struct Entry {
  const char* name;
  std::unique_ptr<Pass> (*factory)();
};

// Order here is the stable pass-id order used by the tuner's categorical
// encoding; names mirror the LLVM passes they model (Table 5.3).
constexpr Entry kEntries[] = {
    {"mem2reg", make_mem2reg},
    {"sroa", make_sroa},
    {"instcombine", make_instcombine},
    {"instsimplify", make_instsimplify},
    {"aggressive-instcombine", make_aggressive_instcombine},
    {"dce", make_dce},
    {"adce", make_adce},
    {"simplifycfg", make_simplifycfg},
    {"jump-threading", make_jump_threading},
    {"sink", make_sink},
    {"early-cse", make_early_cse},
    {"gvn", make_gvn},
    {"reassociate", make_reassociate},
    {"sccp", make_sccp},
    {"constmerge", make_constmerge},
    {"div-rem-pairs", make_div_rem_pairs},
    {"vectorcombine", make_vectorcombine},
    {"loop-simplify", make_loop_simplify},
    {"loop-rotate", make_loop_rotate},
    {"licm", make_licm},
    {"indvars", make_indvars},
    {"loop-unroll", make_loop_unroll},
    {"loop-vectorize", make_loop_vectorize},
    {"loop-idiom", make_loop_idiom},
    {"loop-deletion", make_loop_deletion},
    {"slp-vectorizer", make_slp_vectorizer},
    {"inline", make_inline},
    {"function-attrs", make_function_attrs},
    {"ipsccp", make_ipsccp},
    {"tailcallelim", make_tailcallelim},
    {"globalopt", make_globalopt},
    {"deadargelim", make_deadargelim},
    {"dse", make_dse},
    {"memcpyopt", make_memcpyopt},
    {"loop-unswitch", make_loop_unswitch},
    // Appended (never reordered): PassId order feeds the prefix-cache key
    // derivation and the tuner's categorical encoding.
    {"loop-fusion", make_loop_fusion},
    {"indvar-simplify", make_indvar_simplify},
    {"loop-peel", make_loop_peel},
};

}  // namespace

PassRegistry::PassRegistry() {
  for (const auto& e : kEntries) {
    index_.emplace(e.name, static_cast<PassId>(names_.size()));
    names_.emplace_back(e.name);
    const auto p = e.factory();
    for (const auto& s : p->stat_names())
      stat_keys_.push_back(p->name() + "." + s);
  }
}

const PassRegistry& PassRegistry::instance() {
  static const PassRegistry reg;
  return reg;
}

std::unique_ptr<Pass> PassRegistry::create(const std::string& name) const {
  const int id = id_of(name);
  return id < 0 ? nullptr : create(static_cast<PassId>(id));
}

int PassRegistry::id_of(const std::string& name) const {
  const auto it = index_.find(name);
  return it == index_.end() ? -1 : static_cast<int>(it->second);
}

std::unique_ptr<Pass> PassRegistry::create(PassId id) const {
  return kEntries[id].factory();
}

std::vector<PassId> intern_sequence(const std::vector<std::string>& sequence) {
  const auto& reg = PassRegistry::instance();
  std::vector<PassId> ids;
  ids.reserve(sequence.size());
  for (const auto& name : sequence) {
    const int id = reg.id_of(name);
    if (id < 0) throw std::runtime_error("unknown pass: " + name);
    ids.push_back(static_cast<PassId>(id));
  }
  return ids;
}

StatsRegistry run_sequence(ir::Module& m, const PassId* ids, std::size_t n,
                           bool verify_each) {
  auto opts = PassManagerOptions::from_env();
  opts.verify_each = verify_each;
  PassManager pm(opts);
  return pm.run(m, ids, n);
}

StatsRegistry run_sequence(ir::Module& m,
                           const std::vector<std::string>& sequence,
                           bool verify_each) {
  const auto ids = intern_sequence(sequence);
  return run_sequence(m, ids.data(), ids.size(), verify_each);
}

const std::vector<std::string>& o3_sequence() {
  // Mirrors the structure of LLVM's -O3: canonicalise, inline, scalar
  // clean-up, the loop pipeline, vectorisers, then late clean-up.
  static const std::vector<std::string> seq = {
      "simplifycfg",  "sroa",          "early-cse",
      "function-attrs", "inline",      "mem2reg",
      "instcombine",  "simplifycfg",   "tailcallelim",
      "sccp",         "ipsccp",        "deadargelim",
      "reassociate",  "loop-simplify", "licm",
      "indvars",      "loop-idiom",    "loop-deletion",
      "loop-unroll",  "gvn",           "early-cse",
      "jump-threading", "dce",         "loop-simplify",
      "loop-vectorize", "slp-vectorizer", "vectorcombine",
      "instcombine",  "simplifycfg",   "div-rem-pairs",
      "memcpyopt",    "dse",           "loop-unswitch",
      "loop-rotate",  "licm",          "adce",
      "constmerge",   "globalopt",     "sink",
      "simplifycfg",
  };
  return seq;
}

const std::vector<PassId>& o3_sequence_ids() {
  static const std::vector<PassId> ids = intern_sequence(o3_sequence());
  return ids;
}

const std::vector<std::string>& legacy_pass_names() {
  // "Older compiler" pass set for the Fig. 5.10 analogue: no SLP, no
  // function-attrs, no div-rem-pairs, no vectorcombine.
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const auto& n : PassRegistry::instance().pass_names()) {
      if (n == "slp-vectorizer" || n == "function-attrs" ||
          n == "div-rem-pairs" || n == "vectorcombine" || n == "dse" ||
          n == "memcpyopt" || n == "loop-unswitch" || n == "loop-fusion" ||
          n == "indvar-simplify" || n == "loop-peel")
        continue;
      out.push_back(n);
    }
    return out;
  }();
  return names;
}

}  // namespace citroen::passes
