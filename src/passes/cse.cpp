// early-cse: dominator-scoped common-subexpression elimination with a
//            memory generation counter, so redundant loads within a
//            store-free region are also removed.
// gvn:       global value numbering of pure expressions (and calls to
//            functions proven readnone by `function-attrs` — the
//            cross-pass interaction the paper calls out as invisible to
//            IR-feature-based code characterisations).

#include <map>
#include <unordered_map>

#include "passes/common.hpp"
#include "passes/factories.hpp"
#include "passes/passman.hpp"

namespace citroen::passes {

using namespace ir;

namespace {

/// Structural key of a pure instruction.
struct ExprKey {
  Opcode op;
  Type type;
  CmpPred pred;
  std::int64_t imm;
  double fimm;
  std::int32_t global_index;
  std::int32_t stride;
  std::string callee;
  std::vector<ValueId> ops;

  bool operator<(const ExprKey& o) const {
    if (op != o.op) return op < o.op;
    if (type.scalar != o.type.scalar) return type.scalar < o.type.scalar;
    if (type.lanes != o.type.lanes) return type.lanes < o.type.lanes;
    if (pred != o.pred) return pred < o.pred;
    if (imm != o.imm) return imm < o.imm;
    if (fimm != o.fimm) return fimm < o.fimm;
    if (global_index != o.global_index) return global_index < o.global_index;
    if (stride != o.stride) return stride < o.stride;
    if (callee != o.callee) return callee < o.callee;
    return ops < o.ops;
  }
};

ExprKey make_key(const Instr& in) {
  ExprKey k{in.op,  in.type,         in.pred,   in.imm, in.fimm,
            in.global_index, in.stride, in.callee, in.ops};
  if (is_commutative(in.op) && k.ops.size() == 2 && k.ops[0] > k.ops[1])
    std::swap(k.ops[0], k.ops[1]);
  return k;
}

class EarlyCsePass final : public Pass {
 public:
  std::string name() const override { return "early-cse"; }
  std::vector<std::string> stat_names() const override {
    return {"NumCSE", "NumCSELoad"};
  }
  /// Kills pure instructions and loads: no CFG change (dominators and
  /// loops survive), no store or side-call removed (memory summary
  /// survives).
  AnalysisSet invalidates() const override {
    return kAnalysisUseCounts | kAnalysisDefBlocks;
  }
  bool run(Module& m, StatsRegistry& stats, AnalysisManager& am) override {
    bool changed = false;
    for (auto& f : m.functions) changed |= run_fn(f, m, stats, am);
    return changed;
  }

 private:
  bool changed_ = false;

  struct Scope {
    std::vector<ExprKey> exprs;        // keys added in this scope
    std::vector<ExprKey> load_keys;    // load keys added in this scope
  };

  bool run_fn(Function& f, Module& m, StatsRegistry& stats,
              AnalysisManager& am) {
    changed_ = false;
    const DomTree& dt = am.dominators(f);
    std::map<ExprKey, ValueId> table;
    walk(f, m, dt, 0, table, stats);
    if (changed_) f.purge_dead_from_blocks();
    return changed_;
  }

  void walk(Function& f, Module& m, const DomTree& dt, BlockId b,
            std::map<ExprKey, ValueId>& table, StatsRegistry& stats) {
    std::vector<ExprKey> added;
    // Load CSE is block-local: without memory SSA, a store in a sibling
    // dominator subtree can lie on an execution path between two blocks on
    // the same dominator chain, so cross-block reuse would be unsound.
    std::map<ExprKey, ValueId> loads;
    std::int64_t mem_gen = 0;

    for (ValueId id : std::vector<ValueId>(f.block(b).insts)) {
      Instr& in = f.instr(id);
      if (in.dead()) continue;
      if (writes_memory(in.op)) {
        ++mem_gen;
        continue;
      }
      if (in.op == Opcode::Call) {
        const Function* callee = m.find_function(in.callee);
        if (!callee || !callee->attr_readnone) ++mem_gen;
        continue;  // call CSE is left to gvn
      }
      if (in.op == Opcode::Load) {
        ExprKey k = make_key(in);
        k.imm = mem_gen;  // fold the memory generation into the key
        auto [it, inserted] = loads.try_emplace(k, id);
        if (!inserted) {
          f.replace_all_uses(id, it->second);
          f.kill(id);
          stats.add(name(), "NumCSELoad", 1);
          changed_ = true;
        }
        continue;
      }
      if (!is_pure(in.op) || in.op == Opcode::Phi) continue;
      const ExprKey k = make_key(in);
      auto [it, inserted] = table.try_emplace(k, id);
      if (!inserted) {
        f.replace_all_uses(id, it->second);
        f.kill(id);
        stats.add(name(), "NumCSE", 1);
        changed_ = true;
      } else {
        added.push_back(k);
      }
    }

    for (BlockId c : dt.children[static_cast<std::size_t>(b)])
      walk(f, m, dt, c, table, stats);

    for (const auto& k : added) table.erase(k);
  }
};

class GvnPass final : public Pass {
 public:
  std::string name() const override { return "gvn"; }
  std::vector<std::string> stat_names() const override {
    return {"NumGVNInstr", "NumGVNCall"};
  }
  /// Kills pure instructions and readnone calls (which the memory summary
  /// never counts as side calls): only use counts and def blocks change.
  AnalysisSet invalidates() const override {
    return kAnalysisUseCounts | kAnalysisDefBlocks;
  }
  bool run(Module& m, StatsRegistry& stats, AnalysisManager& am) override {
    bool changed = false;
    for (auto& f : m.functions) changed |= run_fn(f, m, stats, am);
    return changed;
  }

 private:
  bool run_fn(Function& f, Module& m, StatsRegistry& stats,
              AnalysisManager& am) {
    bool changed = false;
    const DomTree& dt = am.dominators(f);
    const auto& defs = am.def_blocks(f);
    std::map<ExprKey, ValueId> leader;

    // RPO walk: the first occurrence becomes the leader; later occurrences
    // dominated by the leader are replaced.
    for (BlockId b : dt.rpo) {
      for (ValueId id : std::vector<ValueId>(f.block(b).insts)) {
        Instr& in = f.instr(id);
        if (in.dead()) continue;
        const bool pure_expr = is_pure(in.op) && in.op != Opcode::Phi &&
                               in.op != Opcode::ConstInt &&
                               in.op != Opcode::ConstFP;
        bool readnone_call = false;
        if (in.op == Opcode::Call) {
          const Function* callee = m.find_function(in.callee);
          readnone_call = callee && callee->attr_readnone;
        }
        if (!pure_expr && !readnone_call) continue;
        const ExprKey k = make_key(in);
        const auto it = leader.find(k);
        if (it == leader.end()) {
          leader.emplace(k, id);
          continue;
        }
        const BlockId lb = defs[static_cast<std::size_t>(it->second)];
        if (lb >= 0 && dt.dominates(lb, b) && it->second != id) {
          f.replace_all_uses(id, it->second);
          f.kill(id);
          stats.add(name(), readnone_call ? "NumGVNCall" : "NumGVNInstr", 1);
          changed = true;
        }
      }
    }
    if (changed) f.purge_dead_from_blocks();
    return changed;
  }
};

}  // namespace

std::unique_ptr<Pass> make_early_cse() {
  return std::make_unique<EarlyCsePass>();
}
std::unique_ptr<Pass> make_gvn() { return std::make_unique<GvnPass>(); }

}  // namespace citroen::passes
