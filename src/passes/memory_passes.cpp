// dse:        block-local dead-store elimination — a store overwritten by
//             a later store to the same address with no intervening read
//             or aliasing access is removed.
// memcpyopt:  block-local store-to-load forwarding — a load from the same
//             address as a dominating-in-block store of the same type is
//             replaced by the stored value (LLVM folds this into GVN and
//             MemCpyOpt; it is kept separate here for a richer space).
// loop-unswitch: hoist a loop-invariant conditional out of a counted loop
//             by cloning the loop per branch side.

#include <algorithm>
#include <unordered_map>

#include "passes/common.hpp"
#include "passes/factories.hpp"
#include "passes/passman.hpp"

namespace citroen::passes {

using namespace ir;

namespace {

bool may_write(Opcode op) {
  return writes_memory(op) || op == Opcode::Call;
}

class DsePass final : public Pass {
 public:
  std::string name() const override { return "dse"; }
  std::vector<std::string> stat_names() const override {
    return {"NumStoresDeleted"};
  }
  /// Kills stores: use counts, def blocks, and the memory summary change;
  /// the CFG does not.
  AnalysisSet invalidates() const override {
    return kAnalysisUseCounts | kAnalysisDefBlocks | kAnalysisMemSummary;
  }
  bool run(Module& m, StatsRegistry& stats, AnalysisManager&) override {
    bool changed = false;
    for (auto& f : m.functions) {
      for (auto& bb : f.blocks) {
        // Walk backwards: remember the widest later store per address; a
        // store is dead if the same SSA address is fully overwritten
        // later with no read (or opaque access) in between.
        std::unordered_map<ValueId, int> pending;  // addr -> max later width
        for (std::size_t i = bb.insts.size(); i-- > 0;) {
          const ValueId id = bb.insts[i];
          Instr& in = f.instr(id);
          if (in.dead()) continue;
          if (in.op == Opcode::Store) {
            const ValueId addr = in.ops[1];
            const Type vt = f.instr(in.ops[0]).type;
            const int width = vt.total_bytes();
            const auto it = pending.find(addr);
            if (it != pending.end() && it->second >= width) {
              f.kill(id);
              stats.add(name(), "NumStoresDeleted", 1);
              changed = true;
              continue;
            }
            auto& w = pending[addr];
            w = std::max(w, width);
            continue;
          }
          if (reads_memory(in.op) || in.op == Opcode::Call ||
              in.op == Opcode::Memset || in.op == Opcode::Memcpy) {
            // Any read or opaque access invalidates all pending kills
            // (conservative: unknown addresses may alias).
            pending.clear();
          }
        }
      }
      f.purge_dead_from_blocks();
    }
    return changed;
  }
};

class MemCpyOptPass final : public Pass {
 public:
  std::string name() const override { return "memcpyopt"; }
  std::vector<std::string> stat_names() const override {
    return {"NumLoadsForwarded"};
  }
  /// Kills loads only (stores stay): the memory summary survives.
  AnalysisSet invalidates() const override {
    return kAnalysisUseCounts | kAnalysisDefBlocks;
  }
  bool run(Module& m, StatsRegistry& stats, AnalysisManager&) override {
    bool changed = false;
    for (auto& f : m.functions) {
      for (auto& bb : f.blocks) {
        // Forward walk: last store value per exact address.
        std::unordered_map<ValueId, ValueId> last_store;  // addr -> value
        for (ValueId id : std::vector<ValueId>(bb.insts)) {
          Instr& in = f.instr(id);
          if (in.dead()) continue;
          if (in.op == Opcode::Store) {
            // A store through any pointer may clobber any other address
            // (two SSA pointers can be runtime-equal), so only knowledge
            // about this exact SSA address survives.
            const ValueId addr = in.ops[1];
            const ValueId val = in.ops[0];
            last_store.clear();
            last_store[addr] = val;
            continue;
          }
          if (in.op == Opcode::Load && !in.type.is_vector()) {
            // SSA identity of the pointer is the must-alias relation we
            // rely on; any other store cleared the table above.
            const auto it = last_store.find(in.ops[0]);
            if (it != last_store.end() &&
                f.instr(it->second).type == in.type) {
              f.replace_all_uses(id, it->second);
              f.kill(id);
              stats.add(name(), "NumLoadsForwarded", 1);
              changed = true;
            }
            continue;
          }
          if (may_write(in.op)) {
            // A write through an unknown pointer may clobber anything.
            last_store.clear();
          }
        }
      }
      f.purge_dead_from_blocks();
    }
    return changed;
  }
};

class LoopUnswitchPass final : public Pass {
 public:
  std::string name() const override { return "loop-unswitch"; }
  std::vector<std::string> stat_names() const override {
    return {"NumUnswitched"};
  }
  AnalysisSet invalidates() const override { return kAllAnalyses; }
  bool run(Module& m, StatsRegistry& stats, AnalysisManager& am) override {
    bool changed = false;
    for (auto& f : m.functions) {
      const auto& loops = am.loops(f);
      for (const auto& loop : loops) {
        if (unswitch(f, loop, am)) {
          stats.add(name(), "NumUnswitched", 1);
          changed = true;
          break;  // CFG changed; one unswitch per function per run
        }
      }
    }
    return changed;
  }

 private:
  /// Unswitch the shape
  ///   header: phis, cmp, condbr(bodyA|bodyB, ...)  -- NOT this; we target
  /// a counted loop whose single body block *begins* with a conditional
  /// branch on a loop-invariant i1 value leading to two single-block arms
  /// that rejoin at the latch.
  /// Supported shape (produced by classify-style code after mem2reg):
  ///   header -> body(cond_br inv, armA, armB); armA -> latch; armB -> latch
  /// Transformation: duplicate nothing — instead, hoist the invariant
  /// branch in front of the *loop* by versioning the body: replace the
  /// in-loop branch condition with a select-free specialised loop chosen
  /// in the preheader. To stay conservative, this implementation handles
  /// the simpler profitable case: the arm blocks are straight-line and
  /// side-effect-free on one side, in which case the branch becomes a
  /// select and the CFG collapses (if-conversion, LLVM's
  /// SimplifyCFG-speculation; grouped under unswitching here).
  bool unswitch(Function& f, const Loop& loop, AnalysisManager& am) {
    // Find an in-loop CondBr whose condition is defined outside the loop.
    std::vector<bool> in(f.blocks.size(), false);
    for (BlockId b : loop.blocks) in[static_cast<std::size_t>(b)] = true;
    const auto& defs = am.def_blocks(f);
    for (BlockId b : loop.blocks) {
      const ValueId t = f.terminator(b);
      if (t == kNoValue) continue;
      const Instr& term = f.instr(t);
      if (term.op != Opcode::CondBr) continue;
      if (term.succs[0] == loop.header || term.succs[1] == loop.header)
        continue;  // the latch test
      const ValueId cond = term.ops[0];
      if (!defined_outside(f, cond, in, defs)) continue;
      const BlockId armA = term.succs[0];
      const BlockId armB = term.succs[1];
      if (armA == armB) continue;
      if (!try_if_convert(f, b, cond, armA, armB)) continue;
      return true;
    }
    return false;
  }

  /// If both arms are single-block, straight-line, side-effect-free, and
  /// rejoin at a common successor, convert their phi merges to selects
  /// and make the branch unconditional (the invariant test disappears
  /// from the loop entirely after DCE).
  bool try_if_convert(Function& f, BlockId from, ValueId cond, BlockId armA,
                      BlockId armB) {
    const auto preds = f.predecessors();
    auto straight = [&](BlockId arm) -> std::optional<BlockId> {
      if (preds[static_cast<std::size_t>(arm)].size() != 1)
        return std::nullopt;
      const ValueId t = f.terminator(arm);
      if (t == kNoValue || f.instr(t).op != Opcode::Br) return std::nullopt;
      for (ValueId id : f.block(arm).insts) {
        const Instr& in = f.instr(id);
        if (in.dead() || id == t) continue;
        // Speculation safety: pure and non-trapping only.
        if (!is_pure(in.op) || in.op == Opcode::SDiv ||
            in.op == Opcode::SRem || in.op == Opcode::FDiv ||
            in.op == Opcode::Phi)
          return std::nullopt;
      }
      return f.instr(t).succs[0];
    };
    const auto joinA = straight(armA);
    const auto joinB = straight(armB);
    if (!joinA || !joinB || *joinA != *joinB) return false;
    const BlockId join = *joinA;

    // Phis in the join keyed by the two arms become selects.
    std::vector<ValueId> to_select;
    for (ValueId id : f.block(join).insts) {
      const Instr& in = f.instr(id);
      if (in.dead()) continue;
      if (in.op != Opcode::Phi) break;
      ValueId va = kNoValue, vb = kNoValue;
      for (std::size_t k = 0; k < in.phi_blocks.size(); ++k) {
        if (in.phi_blocks[k] == armA) va = in.ops[k];
        if (in.phi_blocks[k] == armB) vb = in.ops[k];
      }
      if (va == kNoValue || vb == kNoValue) return false;
      if (in.ops.size() != 2) return false;  // only the two-arm merge
      to_select.push_back(id);
    }

    // Splice both arms' bodies into `from` (before its terminator), then
    // rewrite the terminator to branch straight to the join.
    const ValueId fterm = f.terminator(from);
    auto& fi = f.block(from).insts;
    std::erase(fi, fterm);
    for (BlockId arm : {armA, armB}) {
      for (ValueId id : std::vector<ValueId>(f.block(arm).insts)) {
        Instr& in = f.instr(id);
        if (in.dead() || is_terminator(in.op)) continue;
        fi.push_back(id);
      }
      for (ValueId id : f.block(arm).insts) {
        if (is_terminator(f.instr(id).op)) f.kill(id);
      }
      f.block(arm).insts.clear();
    }
    // Phis -> selects.
    for (ValueId id : to_select) {
      Instr& phi = f.instr(id);
      ValueId va = kNoValue, vb = kNoValue;
      for (std::size_t k = 0; k < phi.phi_blocks.size(); ++k) {
        if (phi.phi_blocks[k] == armA) va = phi.ops[k];
        if (phi.phi_blocks[k] == armB) vb = phi.ops[k];
      }
      Instr sel;
      sel.op = Opcode::Select;
      sel.type = phi.type;
      sel.ops = {cond, va, vb};
      const ValueId sid = f.add_instr(std::move(sel));
      f.block(from).insts.push_back(sid);
      f.replace_all_uses(id, sid);
      f.kill(id);
    }
    // New terminator.
    Instr br;
    br.op = Opcode::Br;
    br.succs = {join};
    const ValueId bid = f.add_instr(std::move(br));
    f.block(from).insts.push_back(bid);
    f.kill(fterm);
    retarget_phi_edges(f, join, armA, from);
    f.purge_dead_from_blocks();
    return true;
  }
};

}  // namespace

std::unique_ptr<Pass> make_dse() { return std::make_unique<DsePass>(); }
std::unique_ptr<Pass> make_memcpyopt() {
  return std::make_unique<MemCpyOptPass>();
}
std::unique_ptr<Pass> make_loop_unswitch() {
  return std::make_unique<LoopUnswitchPass>();
}

}  // namespace citroen::passes
