// Loop transformation passes. Every pass here operates on natural loops
// discovered from the dominator tree, and most require a preheader, which
// only `loop-simplify` creates — so the autotuner has to *discover* the
// loop-simplify-before-{licm,unroll,vectorize,idiom} ordering, just as a
// real phase-ordering search over LLVM must place canonicalisation passes.
//
//   loop-simplify : insert preheaders (canonical form).
//   loop-rotate   : move the exit test to the latch behind an entry guard
//                   (enables LICM of loads; changes the loop away from the
//                   while-shape that unroll/vectorise match — a genuine
//                   ordering tension).
//   licm          : hoist invariant computation; loads/readnone-calls only
//                   out of guaranteed-to-execute loops.
//   indvars       : canonicalise exit conditions (sle -> slt) and rewrite
//                   exit values of the induction variable.
//   loop-unroll   : full or partial (x4/x2) unrolling of counted loops.
//   loop-idiom    : recognise memset/memcpy loops.
//   loop-deletion : drop side-effect-free loops with no live results.

#include <algorithm>
#include <set>

#include "passes/common.hpp"
#include "passes/factories.hpp"
#include "passes/passman.hpp"

namespace citroen::passes {

using namespace ir;

namespace {

std::vector<bool> loop_mask(const Function& f, const Loop& loop) {
  std::vector<bool> in(f.blocks.size(), false);
  for (BlockId b : loop.blocks) in[static_cast<std::size_t>(b)] = true;
  return in;
}

/// True if the loop is in rotated (do-while) form: some latch exits.
bool is_rotated(const Function& f, const Loop& loop) {
  for (BlockId l : loop.latches) {
    const ValueId t = f.terminator(l);
    if (t != kNoValue && f.instr(t).op == Opcode::CondBr) return true;
  }
  return false;
}

class LoopSimplifyPass final : public Pass {
 public:
  std::string name() const override { return "loop-simplify"; }
  std::vector<std::string> stat_names() const override {
    return {"NumPreheaders"};
  }
  AnalysisSet invalidates() const override { return kAllAnalyses; }
  bool run(Module& m, StatsRegistry& stats, AnalysisManager& am) override {
    bool changed = false;
    for (auto& f : m.functions) {
      bool local = true;
      while (local) {
        local = false;
        const auto& loops = am.loops(f);
        const auto preds = f.predecessors();
        for (const auto& loop : loops) {
          if (loop.preheader >= 0) continue;
          if (insert_loop_preheader(f, loop, preds) < 0) continue;
          stats.add(name(), "NumPreheaders", 1);
          changed = true;
          local = true;
          break;  // CFG changed: recompute loops
        }
        if (local) am.invalidate(f, kAllAnalyses);
      }
    }
    return changed;
  }
};

class LoopRotatePass final : public Pass {
 public:
  std::string name() const override { return "loop-rotate"; }
  std::vector<std::string> stat_names() const override {
    return {"NumRotated"};
  }
  AnalysisSet invalidates() const override { return kAllAnalyses; }
  bool run(Module& m, StatsRegistry& stats, AnalysisManager& am) override {
    bool changed = false;
    for (auto& f : m.functions) {
      const auto& loops = am.loops(f);
      const auto preds = f.predecessors();
      for (const auto& loop : loops) {
        if (rotate(f, loop, preds, am)) {
          stats.add(name(), "NumRotated", 1);
          changed = true;
          break;  // CFG changed; one rotation per function per run
        }
      }
    }
    return changed;
  }

 private:
  bool rotate(Function& f, const Loop& loop,
              const std::vector<std::vector<BlockId>>& preds,
              AnalysisManager& am) {
    // Shape: preheader -> header {phis, cmp, condbr(body, exit)};
    //        single body block == latch ending `br header`.
    if (loop.preheader < 0 || loop.latches.size() != 1) return false;
    if (loop.blocks.size() != 2) return false;
    const BlockId header = loop.header;
    const BlockId body = loop.latches[0];
    const BlockId ph = loop.preheader;
    const ValueId hterm = f.terminator(header);
    if (hterm == kNoValue) return false;
    const Instr ht = f.instr(hterm);
    if (ht.op != Opcode::CondBr || ht.succs[0] != body) return false;
    const BlockId exit = ht.succs[1];
    if (exit == body || exit == header) return false;
    if (preds[static_cast<std::size_t>(exit)].size() != 1) return false;
    const ValueId cmp_id = ht.ops[0];
    // Copy by value: add_instr below may reallocate the arena.
    const Instr cmp = f.instr(cmp_id);
    if (cmp.op != Opcode::ICmp) return false;
    // Header must contain only phis + cmp + condbr; cmp single-use.
    const auto& uses = am.use_counts(f);
    if (uses[static_cast<std::size_t>(cmp_id)] != 1) return false;
    std::vector<ValueId> phis;
    for (ValueId id : f.block(header).insts) {
      const Instr& in = f.instr(id);
      if (in.dead()) continue;
      if (in.op == Opcode::Phi) {
        phis.push_back(id);
      } else if (id != cmp_id && id != hterm) {
        return false;
      }
    }
    // Phi incoming maps.
    std::unordered_map<ValueId, ValueId> init_of, next_of;
    for (ValueId p : phis) {
      const Instr& pi = f.instr(p);
      if (pi.ops.size() != 2) return false;
      for (std::size_t k = 0; k < 2; ++k) {
        if (pi.phi_blocks[k] == ph) {
          init_of[p] = pi.ops[k];
        } else if (pi.phi_blocks[k] == body) {
          next_of[p] = pi.ops[k];
        } else {
          return false;
        }
      }
    }
    if (init_of.size() != phis.size() || next_of.size() != phis.size())
      return false;

    // 1. Guard: clone the compare into the preheader with init values.
    //    The guarded edge goes through a *new* preheader block so the
    //    rotated loop keeps the canonical form LICM/unroll expect.
    f.blocks.push_back(BasicBlock{"rot.ph", {}});
    const BlockId newph = static_cast<BlockId>(f.blocks.size() - 1);
    Instr guard_cmp = cmp;
    for (auto& op : guard_cmp.ops) {
      const auto it = init_of.find(op);
      if (it != init_of.end()) op = it->second;
    }
    const ValueId gid = f.add_instr(std::move(guard_cmp));
    {
      const ValueId pterm = f.terminator(ph);
      auto& pinsts = f.block(ph).insts;
      pinsts.insert(pinsts.end() - 1, gid);
      Instr& pt = f.instr(pterm);
      pt.op = Opcode::CondBr;
      pt.ops = {gid};
      pt.succs = {newph, exit};
    }
    {
      Instr br2;
      br2.op = Opcode::Br;
      br2.succs = {header};
      const ValueId bid = f.add_instr(std::move(br2));
      f.block(newph).insts.push_back(bid);
      retarget_phi_edges(f, header, ph, newph);
    }

    // 2. Latch: clone the compare with next values; branch back or exit.
    Instr latch_cmp = cmp;
    for (auto& op : latch_cmp.ops) {
      const auto it = next_of.find(op);
      if (it != next_of.end()) op = it->second;
    }
    const ValueId lid = f.add_instr(std::move(latch_cmp));
    {
      const ValueId bterm = f.terminator(body);
      auto& binsts = f.block(body).insts;
      binsts.insert(binsts.end() - 1, lid);
      Instr& bt = f.instr(bterm);
      bt.op = Opcode::CondBr;
      bt.ops = {lid};
      bt.succs = {header, exit};
    }

    // 3. Header: drop cmp + condbr, fall through to body.
    {
      Instr& t = f.instr(hterm);
      t.op = Opcode::Br;
      t.ops.clear();
      t.succs = {body};
      f.kill(cmp_id);
      f.purge_dead_from_blocks();
    }

    // 4. Exit phis for loop values used after the loop: the exit is now
    //    reached from the guard (values = inits) or the latch (= nexts).
    for (ValueId p : phis) {
      bool used_outside = false;
      for (BlockId b = 0; b < static_cast<BlockId>(f.blocks.size()); ++b) {
        if (b == header || b == body) continue;
        for (ValueId uid : f.block(b).insts) {
          const Instr& u = f.instr(uid);
          if (u.dead()) continue;
          for (ValueId op : u.ops) {
            if (op == p) used_outside = true;
          }
        }
      }
      if (!used_outside) continue;
      Instr ep;
      ep.op = Opcode::Phi;
      ep.type = f.instr(p).type;
      ep.ops = {init_of[p], next_of[p]};
      ep.phi_blocks = {ph, body};
      const ValueId eid = f.add_instr(std::move(ep));
      // Replace outside uses (excluding the new exit phi itself).
      for (BlockId b = 0; b < static_cast<BlockId>(f.blocks.size()); ++b) {
        if (b == header || b == body) continue;
        for (ValueId uid : f.block(b).insts) {
          Instr& u = f.instr(uid);
          if (u.dead() || uid == eid) continue;
          for (auto& op : u.ops) {
            if (op == p) op = eid;
          }
        }
      }
      f.block(exit).insts.insert(f.block(exit).insts.begin(), eid);
    }
    return true;
  }
};

class LicmPass final : public Pass {
 public:
  std::string name() const override { return "licm"; }
  std::vector<std::string> stat_names() const override {
    return {"NumHoisted", "NumHoistedLoad", "NumHoistedCall"};
  }
  /// LICM only moves instructions between blocks: the CFG, loop structure
  /// and use counts are untouched; only the defining block of what moved
  /// (and it moves no stores or side-calls) changes.
  AnalysisSet invalidates() const override { return kAnalysisDefBlocks; }
  bool run(Module& m, StatsRegistry& stats, AnalysisManager& am) override {
    bool changed = false;
    for (auto& f : m.functions) changed |= run_fn(f, m, stats, am);
    return changed;
  }

 private:
  bool run_fn(Function& f, Module& m, StatsRegistry& stats,
              AnalysisManager& am) {
    bool changed = false;
    auto loops = am.loops(f);  // copied: sorted below
    // Innermost first so invariants bubble outward across repeated runs.
    std::sort(loops.begin(), loops.end(),
              [](const Loop& a, const Loop& b) { return a.depth > b.depth; });
    for (const auto& loop : loops) {
      if (loop.preheader < 0) continue;
      const auto in = loop_mask(f, loop);
      const auto& defs = am.def_blocks(f);

      // Memory safety inside this loop.
      bool has_store = false, has_side_call = false;
      {
        const auto& mem = am.memory_summary(m, f);
        for (BlockId b : loop.blocks) {
          if (mem.block_has_store[static_cast<std::size_t>(b)])
            has_store = true;
          if (mem.block_has_side_call[static_cast<std::size_t>(b)])
            has_side_call = true;
        }
      }
      const bool guaranteed =
          is_rotated(f, loop) || match_counted_loop(f, loop).has_value();

      std::vector<bool> hoisted(f.instrs.size(), false);
      bool moved_any = false;
      bool local = true;
      while (local) {
        local = false;
        for (BlockId b : loop.blocks) {
          for (ValueId id : std::vector<ValueId>(f.block(b).insts)) {
            const Instr& i2 = f.instr(id);
            if (i2.dead() || i2.op == Opcode::Phi || is_terminator(i2.op))
              continue;
            bool invariant_ops = true;
            for (ValueId op : i2.ops) {
              if (!defined_outside(f, op, in, defs) &&
                  !hoisted[static_cast<std::size_t>(op)])
                invariant_ops = false;
            }
            if (!invariant_ops) continue;

            const char* counter = nullptr;
            if (i2.op == Opcode::ConstInt || i2.op == Opcode::ConstFP) {
              // Constants are free, but moving them out unblocks hoisting
              // of instructions that use them; not counted as a hoist.
              auto& src = f.block(b).insts;
              std::erase(src, id);
              auto& dst = f.block(loop.preheader).insts;
              dst.insert(dst.end() - 1, id);
              hoisted[static_cast<std::size_t>(id)] = true;
              moved_any = true;
              local = true;
              continue;
            }
            if (is_pure(i2.op)) {
              // Division can trap: only hoist when execution guaranteed.
              if ((i2.op == Opcode::SDiv || i2.op == Opcode::SRem ||
                   i2.op == Opcode::FDiv) &&
                  !guaranteed)
                continue;
              counter = "NumHoisted";
            } else if (i2.op == Opcode::Load && !has_store &&
                       !has_side_call && guaranteed) {
              counter = "NumHoistedLoad";
            } else if (i2.op == Opcode::Call && guaranteed && !has_store) {
              const Function* callee = m.find_function(i2.callee);
              if (callee && callee->attr_readnone) {
                counter = "NumHoistedCall";
              } else {
                continue;
              }
            } else {
              continue;
            }

            // Move to the preheader, before its terminator.
            auto& src = f.block(b).insts;
            std::erase(src, id);
            auto& dst = f.block(loop.preheader).insts;
            dst.insert(dst.end() - 1, id);
            hoisted[static_cast<std::size_t>(id)] = true;
            stats.add(name(), counter, 1);
            moved_any = true;
            changed = true;
            local = true;
          }
        }
      }
      // Re-fetch def-blocks for the next loop; this also covers the
      // const-only case where the pass-level changed flag stays false.
      if (moved_any) am.invalidate(f, kAnalysisDefBlocks);
    }
    return changed;
  }
};

class IndVarsPass final : public Pass {
 public:
  std::string name() const override { return "indvars"; }
  std::vector<std::string> stat_names() const override {
    return {"NumLFTR", "NumExitValues"};
  }
  /// Inserts constants and rewrites operands; the CFG (and thus dominators
  /// and loop structure) is untouched, as is the store/call summary.
  AnalysisSet invalidates() const override {
    return kAnalysisUseCounts | kAnalysisDefBlocks;
  }
  bool run(Module& m, StatsRegistry& stats, AnalysisManager& am) override {
    bool changed = false;
    for (auto& f : m.functions) {
      // (a) sle const -> slt const+1 on loop-exit compares, so that the
      //     counted-loop matcher (and thus unroll/vectorise) can fire.
      const auto& loops = am.loops(f);
      for (const auto& loop : loops) {
        const ValueId t = f.terminator(loop.header);
        if (t == kNoValue) continue;
        const Instr& term = f.instr(t);
        if (term.op != Opcode::CondBr) continue;
        Instr& cmp = f.instr(term.ops[0]);
        if (cmp.op != Opcode::ICmp || cmp.pred != CmpPred::SLE) continue;
        const auto c = const_int_value(f, cmp.ops[1]);
        if (!c || *c == INT64_MAX) continue;
        const ValueId nc = insert_const(
            f, loop.header, 0, f.instr(cmp.ops[1]).type,
            FoldedConst{false, *c + 1, 0.0});
        Instr& cmp2 = f.instr(term.ops[0]);  // re-fetch after insert
        cmp2.pred = CmpPred::SLT;
        cmp2.ops[1] = nc;
        stats.add(name(), "NumLFTR", 1);
        changed = true;
      }

      // (b) exit-value rewriting: outside uses of the induction phi of a
      //     counted loop become the (constant) final value. Part (a) did
      //     not change the CFG, so the cached loop info is still exact.
      const auto& loops2 = am.loops(f);
      for (const auto& loop : loops2) {
        const auto cl = match_counted_loop(f, loop);
        if (!cl) continue;
        const std::int64_t final_iv = cl->init + cl->trip_count * cl->step;
        bool used_outside = false;
        for (BlockId b = 0; b < static_cast<BlockId>(f.blocks.size()); ++b) {
          if (b == cl->header || b == cl->body) continue;
          for (ValueId uid : f.block(b).insts) {
            const Instr& u = f.instr(uid);
            if (u.dead() || u.op == Opcode::Phi) continue;
            for (ValueId op : u.ops) {
              if (op == cl->iv_phi) used_outside = true;
            }
          }
        }
        if (!used_outside) continue;
        const Type ty = f.instr(cl->iv_phi).type;
        const ValueId cid =
            insert_const(f, cl->exit, 0, ty, FoldedConst{false, final_iv, 0.0});
        for (BlockId b = 0; b < static_cast<BlockId>(f.blocks.size()); ++b) {
          if (b == cl->header || b == cl->body) continue;
          for (ValueId uid : f.block(b).insts) {
            Instr& u = f.instr(uid);
            if (u.dead() || u.op == Opcode::Phi) continue;
            for (auto& op : u.ops) {
              if (op == cl->iv_phi) op = cid;
            }
          }
        }
        stats.add(name(), "NumExitValues", 1);
        changed = true;
      }
    }
    return changed;
  }
};

class LoopUnrollPass final : public Pass {
 public:
  explicit LoopUnrollPass(int full_limit = 64, int partial_factor = 4)
      : full_limit_(full_limit), partial_factor_(partial_factor) {}

  std::string name() const override { return "loop-unroll"; }
  std::vector<std::string> stat_names() const override {
    return {"NumUnrolled", "NumFullyUnrolled"};
  }
  AnalysisSet invalidates() const override { return kAllAnalyses; }
  bool run(Module& m, StatsRegistry& stats, AnalysisManager& am) override {
    bool changed = false;
    for (auto& f : m.functions) {
      bool local = true;
      while (local) {
        local = false;
        const auto& loops = am.loops(f);
        for (const auto& loop : loops) {
          const auto cl = match_counted_loop(f, loop);
          if (!cl) continue;
          const std::size_t body_size = f.block(cl->body).insts.size();
          if (cl->trip_count <= full_limit_ &&
              cl->trip_count * static_cast<std::int64_t>(body_size) <= 512) {
            full_unroll(f, *cl);
            stats.add(name(), "NumFullyUnrolled", 1);
            changed = true;
            local = true;
            break;
          }
          int factor = 0;
          if (cl->trip_count % partial_factor_ == 0 &&
              cl->trip_count / partial_factor_ >= 2 && body_size <= 64) {
            factor = partial_factor_;
          } else if (cl->trip_count % 2 == 0 && cl->trip_count / 2 >= 2 &&
                     body_size <= 64) {
            factor = 2;
          }
          if (factor > 1 && !already_unrolled_.count(cl->header)) {
            partial_unroll(f, *cl, factor);
            already_unrolled_.insert(cl->header);
            stats.add(name(), "NumUnrolled", 1);
            changed = true;
            local = true;
            break;
          }
        }
        if (local) am.invalidate(f, kAllAnalyses);
      }
      already_unrolled_.clear();
    }
    return changed;
  }

 private:
  void full_unroll(Function& f, const CountedLoop& cl) {
    // Clone the body trip_count times straight into the preheader.
    auto& ph = f.block(cl.preheader).insts;
    const ValueId pterm = f.terminator(cl.preheader);
    std::erase(ph, pterm);

    // prev_out: current value of each header phi.
    std::unordered_map<ValueId, ValueId> prev_out;
    std::vector<std::pair<ValueId, ValueId>> phi_latch;  // phi -> latch val
    std::vector<ValueId> all_phis = cl.reduction_phis;
    all_phis.push_back(cl.iv_phi);
    for (ValueId p : all_phis) {
      const Instr& pi = f.instr(p);
      for (std::size_t k = 0; k < 2; ++k) {
        if (pi.phi_blocks[k] == cl.preheader) prev_out[p] = pi.ops[k];
        if (pi.phi_blocks[k] == cl.body) phi_latch.emplace_back(p, pi.ops[k]);
      }
    }

    const std::vector<ValueId> body_snapshot = f.block(cl.body).insts;
    for (std::int64_t it = 0; it < cl.trip_count; ++it) {
      std::unordered_map<ValueId, ValueId> map;
      for (auto& [p, v] : prev_out) map[p] = v;
      clone_instr_list(f, body_snapshot, cl.preheader, map);
      for (auto& [p, latch_v] : phi_latch) {
        const auto mapped = map.find(latch_v);
        prev_out[p] = mapped != map.end() ? mapped->second : latch_v;
      }
    }

    // Re-attach the preheader terminator, now jumping to the exit.
    {
      Instr& t = f.instr(pterm);
      t.succs = {cl.exit};
      f.block(cl.preheader).insts.push_back(pterm);
    }
    retarget_phi_edges(f, cl.exit, cl.header, cl.preheader);

    // Outside uses of the header phis get their final values.
    for (auto& [p, v] : prev_out) f.replace_all_uses(p, v);

    // Kill the loop blocks.
    for (BlockId b : {cl.header, cl.body}) {
      for (ValueId id : f.block(b).insts) f.kill(id);
      f.block(b).insts.clear();
    }
    f.purge_dead_from_blocks();
  }

  void partial_unroll(Function& f, const CountedLoop& cl, int factor) {
    auto& body = f.block(cl.body).insts;
    const ValueId bterm = f.terminator(cl.body);
    std::erase(body, bterm);

    std::vector<ValueId> all_phis = cl.reduction_phis;
    all_phis.push_back(cl.iv_phi);
    std::unordered_map<ValueId, ValueId> latch_of;
    std::unordered_map<ValueId, ValueId> prev_out;
    for (ValueId p : all_phis) {
      const Instr& pi = f.instr(p);
      for (std::size_t k = 0; k < 2; ++k) {
        if (pi.phi_blocks[k] == cl.body) {
          latch_of[p] = pi.ops[k];
          prev_out[p] = pi.ops[k];
        }
      }
    }

    const std::vector<ValueId> body_snapshot = f.block(cl.body).insts;
    for (int it = 1; it < factor; ++it) {
      std::unordered_map<ValueId, ValueId> map;
      for (ValueId p : all_phis) map[p] = prev_out[p];
      clone_instr_list(f, body_snapshot, cl.body, map);
      for (ValueId p : all_phis) {
        const auto mapped = map.find(latch_of[p]);
        prev_out[p] = mapped != map.end() ? mapped->second : latch_of[p];
      }
    }

    // Update the phis' latch incoming to the last clone's outputs.
    for (ValueId p : all_phis) {
      Instr& pi = f.instr(p);
      for (std::size_t k = 0; k < 2; ++k) {
        if (pi.phi_blocks[k] == cl.body) pi.ops[k] = prev_out[p];
      }
    }
    f.block(cl.body).insts.push_back(bterm);
  }

  int full_limit_;
  int partial_factor_;
  std::set<BlockId> already_unrolled_;
};

class LoopIdiomPass final : public Pass {
 public:
  std::string name() const override { return "loop-idiom"; }
  std::vector<std::string> stat_names() const override {
    return {"NumMemSet", "NumMemCpy"};
  }
  AnalysisSet invalidates() const override { return kAllAnalyses; }
  bool run(Module& m, StatsRegistry& stats, AnalysisManager& am) override {
    bool changed = false;
    for (auto& f : m.functions) {
      bool local = true;
      while (local) {
        local = false;
        const auto& loops = am.loops(f);
        for (const auto& loop : loops) {
          const auto cl = match_counted_loop(f, loop);
          if (!cl || cl->step != 1 || !cl->reduction_phis.empty()) continue;
          if (try_memset(f, *cl, stats, am) || try_memcpy(f, *cl, stats, am)) {
            changed = true;
            local = true;
            break;
          }
        }
        if (local) am.invalidate(f, kAllAnalyses);
      }
    }
    return changed;
  }

 private:
  /// Live body instructions excluding iv_next, the terminator, and
  /// constants (which are operands, not work).
  std::vector<ValueId> body_payload(const Function& f, const CountedLoop& cl) {
    std::vector<ValueId> out;
    for (ValueId id : f.block(cl.body).insts) {
      const Instr& in = f.instr(id);
      if (in.dead() || id == cl.iv_next || is_terminator(in.op) ||
          in.op == Opcode::ConstInt || in.op == Opcode::ConstFP)
        continue;
      out.push_back(id);
    }
    return out;
  }

  void replace_loop_with(Function& f, const CountedLoop& cl,
                         std::vector<Instr> new_instrs) {
    auto& ph = f.block(cl.preheader).insts;
    const ValueId pterm = f.terminator(cl.preheader);
    std::erase(ph, pterm);
    for (auto& in : new_instrs) {
      const ValueId id = f.add_instr(std::move(in));
      f.block(cl.preheader).insts.push_back(id);
    }
    Instr& t = f.instr(pterm);
    t.succs = {cl.exit};
    f.block(cl.preheader).insts.push_back(pterm);
    retarget_phi_edges(f, cl.exit, cl.header, cl.preheader);
    // Outside uses of the iv get the final value.
    const std::int64_t final_iv = cl.init + cl.trip_count * cl.step;
    Instr c;
    c.op = Opcode::ConstInt;
    c.type = f.instr(cl.iv_phi).type;
    c.imm = final_iv;
    const ValueId cid = f.add_instr(std::move(c));
    f.block(cl.preheader).insts.insert(f.block(cl.preheader).insts.end() - 1,
                                       cid);
    f.replace_all_uses(cl.iv_phi, cid);
    for (BlockId b : {cl.header, cl.body}) {
      for (ValueId id : f.block(b).insts) f.kill(id);
      f.block(b).insts.clear();
    }
    f.purge_dead_from_blocks();
  }

  bool try_memset(Function& f, const CountedLoop& cl, StatsRegistry& stats,
                  AnalysisManager& am) {
    const auto payload = body_payload(f, cl);
    // Expect: gep(base, iv) ; store const0, gep  (plus optional const def)
    ValueId gep = kNoValue, store = kNoValue;
    for (ValueId id : payload) {
      const Instr& in = f.instr(id);
      if (in.op == Opcode::Gep && in.ops[1] == cl.iv_phi &&
          gep == kNoValue) {
        gep = id;
      } else if (in.op == Opcode::Store && store == kNoValue) {
        store = id;
      } else if (in.op == Opcode::ConstInt) {
        continue;
      } else {
        return false;
      }
    }
    if (gep == kNoValue || store == kNoValue) return false;
    const Instr& g = f.instr(gep);
    const Instr& s = f.instr(store);
    if (s.ops[1] != gep) return false;
    const auto zero = const_int_value(f, s.ops[0]);
    if (!zero || *zero != 0) return false;
    const ValueId base = g.ops[0];
    const std::vector<bool> in_loop = [&] {
      std::vector<bool> v(f.blocks.size(), false);
      v[static_cast<std::size_t>(cl.header)] = true;
      v[static_cast<std::size_t>(cl.body)] = true;
      return v;
    }();
    if (!defined_outside(f, base, in_loop, am.def_blocks(f))) return false;

    // memset(base + init*stride, 0, trip*stride), placed in the preheader.
    const std::int64_t stride = g.stride;
    const ValueId pterm = f.terminator(cl.preheader);
    Instr c0;
    c0.op = Opcode::ConstInt;
    c0.type = kI64;
    c0.imm = cl.init;
    const ValueId c0id = f.add_instr(std::move(c0));
    Instr gp2;
    gp2.op = Opcode::Gep;
    gp2.type = kPtr;
    gp2.stride = static_cast<std::int32_t>(stride);
    gp2.ops = {base, c0id};
    const ValueId gpid = f.add_instr(std::move(gp2));
    Instr zb;
    zb.op = Opcode::ConstInt;
    zb.type = kI64;
    zb.imm = 0;
    const ValueId zbid = f.add_instr(std::move(zb));
    Instr sz;
    sz.op = Opcode::ConstInt;
    sz.type = kI64;
    sz.imm = cl.trip_count * stride;
    const ValueId szid = f.add_instr(std::move(sz));
    Instr ms;
    ms.op = Opcode::Memset;
    ms.ops = {gpid, zbid, szid};
    const ValueId msid = f.add_instr(std::move(ms));
    auto& phi2 = f.block(cl.preheader).insts;
    const auto at = std::find(phi2.begin(), phi2.end(), pterm);
    phi2.insert(at, {c0id, gpid, zbid, szid, msid});
    replace_loop_with(f, cl, {});
    stats.add(name(), "NumMemSet", 1);
    return true;
  }

  bool try_memcpy(Function& f, const CountedLoop& cl, StatsRegistry& stats,
                  AnalysisManager& am) {
    const auto payload = body_payload(f, cl);
    ValueId gsrc = kNoValue, gdst = kNoValue, ld = kNoValue, st = kNoValue;
    for (ValueId id : payload) {
      const Instr& in = f.instr(id);
      if (in.op == Opcode::Gep && in.ops[1] == cl.iv_phi) {
        if (gsrc == kNoValue) {
          gsrc = id;
        } else if (gdst == kNoValue) {
          gdst = id;
        } else {
          return false;
        }
      } else if (in.op == Opcode::Load && ld == kNoValue) {
        ld = id;
      } else if (in.op == Opcode::Store && st == kNoValue) {
        st = id;
      } else {
        return false;
      }
    }
    if (gsrc == kNoValue || gdst == kNoValue || ld == kNoValue ||
        st == kNoValue)
      return false;
    // Sort out which gep is the load's, which the store's.
    if (f.instr(ld).ops[0] != gsrc) std::swap(gsrc, gdst);
    const Instr& gl = f.instr(gsrc);
    const Instr& gs = f.instr(gdst);
    const Instr& l = f.instr(ld);
    const Instr& s = f.instr(st);
    if (l.ops[0] != gsrc || s.ops[1] != gdst || s.ops[0] != ld) return false;
    if (gl.stride != gs.stride) return false;
    if (l.type.total_bytes() != gl.stride) return false;
    // Distinct underlying objects only (conservative alias check).
    const Instr& bsrc = f.instr(gl.ops[0]);
    const Instr& bdst = f.instr(gs.ops[0]);
    const bool distinct =
        (bsrc.op == Opcode::GlobalAddr && bdst.op == Opcode::GlobalAddr &&
         bsrc.global_index != bdst.global_index) ||
        (bsrc.op == Opcode::Alloca && bdst.op == Opcode::Alloca &&
         gl.ops[0] != gs.ops[0]) ||
        (bsrc.op == Opcode::Alloca) != (bdst.op == Opcode::Alloca);
    if (!distinct) return false;
    const std::vector<bool> in_loop = [&] {
      std::vector<bool> v(f.blocks.size(), false);
      v[static_cast<std::size_t>(cl.header)] = true;
      v[static_cast<std::size_t>(cl.body)] = true;
      return v;
    }();
    const auto& defs = am.def_blocks(f);
    if (!defined_outside(f, gl.ops[0], in_loop, defs) ||
        !defined_outside(f, gs.ops[0], in_loop, defs))
      return false;

    const std::int64_t stride = gl.stride;
    const ValueId src_base = gl.ops[0];
    const ValueId dst_base = gs.ops[0];
    const ValueId pterm = f.terminator(cl.preheader);
    Instr c0;
    c0.op = Opcode::ConstInt;
    c0.type = kI64;
    c0.imm = cl.init;
    const ValueId c0id = f.add_instr(std::move(c0));
    Instr g1;
    g1.op = Opcode::Gep;
    g1.type = kPtr;
    g1.stride = static_cast<std::int32_t>(stride);
    g1.ops = {src_base, c0id};
    const ValueId g1id = f.add_instr(std::move(g1));
    Instr g2;
    g2.op = Opcode::Gep;
    g2.type = kPtr;
    g2.stride = static_cast<std::int32_t>(stride);
    g2.ops = {dst_base, c0id};
    const ValueId g2id = f.add_instr(std::move(g2));
    Instr sz;
    sz.op = Opcode::ConstInt;
    sz.type = kI64;
    sz.imm = cl.trip_count * stride;
    const ValueId szid = f.add_instr(std::move(sz));
    Instr mc;
    mc.op = Opcode::Memcpy;
    mc.ops = {g2id, g1id, szid};
    const ValueId mcid = f.add_instr(std::move(mc));
    auto& phx = f.block(cl.preheader).insts;
    const auto at = std::find(phx.begin(), phx.end(), pterm);
    phx.insert(at, {c0id, g1id, g2id, szid, mcid});
    replace_loop_with(f, cl, {});
    stats.add(name(), "NumMemCpy", 1);
    return true;
  }
};

class LoopDeletionPass final : public Pass {
 public:
  std::string name() const override { return "loop-deletion"; }
  std::vector<std::string> stat_names() const override {
    return {"NumDeleted"};
  }
  AnalysisSet invalidates() const override { return kAllAnalyses; }
  bool run(Module& m, StatsRegistry& stats, AnalysisManager& am) override {
    bool changed = false;
    for (auto& f : m.functions) {
      bool local = true;
      while (local) {
        local = false;
        const auto& loops = am.loops(f);
        for (const auto& loop : loops) {
          const auto cl = match_counted_loop(f, loop);
          if (!cl) continue;
          // Loop must be free of side effects...
          bool side_effects = false;
          for (BlockId b : loop.blocks) {
            for (ValueId id : f.block(b).insts) {
              const Instr& in = f.instr(id);
              if (in.dead()) continue;
              if (writes_memory(in.op) || in.op == Opcode::Call ||
                  in.op == Opcode::Load)
                side_effects = true;
            }
          }
          if (side_effects) continue;
          // ...and none of its values may be used outside.
          bool used_outside = false;
          const auto in_mask = loop_mask(f, loop);
          const auto& defs = am.def_blocks(f);
          for (BlockId b = 0; b < static_cast<BlockId>(f.blocks.size());
               ++b) {
            if (in_mask[static_cast<std::size_t>(b)]) continue;
            for (ValueId uid : f.block(b).insts) {
              const Instr& u = f.instr(uid);
              if (u.dead()) continue;
              for (ValueId op : u.ops) {
                const Instr& d = f.instr(op);
                if (d.op == Opcode::Arg) continue;
                const BlockId db = defs[static_cast<std::size_t>(op)];
                if (db >= 0 && in_mask[static_cast<std::size_t>(db)])
                  used_outside = true;
              }
            }
          }
          if (used_outside) continue;

          // Bypass the loop entirely.
          const ValueId pterm = f.terminator(cl->preheader);
          Instr& t = f.instr(pterm);
          t.succs = {cl->exit};
          retarget_phi_edges(f, cl->exit, cl->header, cl->preheader);
          for (BlockId b : loop.blocks) {
            for (ValueId id : f.block(b).insts) f.kill(id);
            f.block(b).insts.clear();
          }
          f.purge_dead_from_blocks();
          stats.add(name(), "NumDeleted", 1);
          changed = true;
          local = true;
          break;
        }
        if (local) am.invalidate(f, kAllAnalyses);
      }
    }
    return changed;
  }
};

}  // namespace

std::unique_ptr<Pass> make_loop_simplify() {
  return std::make_unique<LoopSimplifyPass>();
}
std::unique_ptr<Pass> make_loop_rotate() {
  return std::make_unique<LoopRotatePass>();
}
std::unique_ptr<Pass> make_licm() { return std::make_unique<LicmPass>(); }
std::unique_ptr<Pass> make_indvars() {
  return std::make_unique<IndVarsPass>();
}
std::unique_ptr<Pass> make_loop_unroll() {
  return std::make_unique<LoopUnrollPass>();
}
std::unique_ptr<Pass> make_loop_idiom() {
  return std::make_unique<LoopIdiomPass>();
}
std::unique_ptr<Pass> make_loop_deletion() {
  return std::make_unique<LoopDeletionPass>();
}

}  // namespace citroen::passes
