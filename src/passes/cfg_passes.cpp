// simplifycfg: fold constant branches, merge straight-line block chains,
//              thread trivial forwarding blocks, drop unreachable code.
// jump-threading: redirect a predecessor straight to a branch target when
//              a phi-fed conditional branch is decided on that edge.
// sink: move pure single-use computations into the successor that uses
//              them, so the other path does not pay for them.

#include <algorithm>

#include "passes/common.hpp"
#include "passes/factories.hpp"
#include "passes/passman.hpp"

namespace citroen::passes {

using namespace ir;

namespace {

class SimplifyCfgPass final : public Pass {
 public:
  std::string name() const override { return "simplifycfg"; }
  std::vector<std::string> stat_names() const override {
    return {"NumSimpl", "NumFoldedBranch", "NumBlocksMerged",
            "NumUnreachable"};
  }
  AnalysisSet invalidates() const override { return kAllAnalyses; }
  bool run(Module& m, StatsRegistry& stats, AnalysisManager& am) override {
    bool changed = false;
    for (auto& f : m.functions) changed |= run_fn(f, stats, am);
    return changed;
  }

 private:
  bool run_fn(Function& f, StatsRegistry& stats, AnalysisManager& am) {
    bool changed = false;
    bool local = true;
    int rounds = 0;
    while (local && rounds++ < 8) {
      local = false;
      local |= fold_constant_branches(f, stats);
      local |= merge_chains(f, stats);
      local |= thread_forwarders(f, stats);
      // The three rewrites above change the CFG; drop the cached view
      // before delete_unreachable_blocks queries reachability.
      if (local) am.invalidate(f, kAllAnalyses);
      const int dead = delete_unreachable_blocks(f, &am);
      if (dead > 0) {
        stats.add(name(), "NumUnreachable", dead);
        local = true;
      }
      changed |= local;
    }
    return changed;
  }

  bool fold_constant_branches(Function& f, StatsRegistry& stats) {
    bool changed = false;
    for (BlockId b = 0; b < static_cast<BlockId>(f.blocks.size()); ++b) {
      const ValueId t = f.terminator(b);
      if (t == kNoValue) continue;
      Instr& term = f.instr(t);
      if (term.op != Opcode::CondBr) continue;
      const auto c = const_int_value(f, term.ops[0]);
      BlockId keep = -1, drop = -1;
      if (c) {
        keep = *c ? term.succs[0] : term.succs[1];
        drop = *c ? term.succs[1] : term.succs[0];
      } else if (term.succs[0] == term.succs[1]) {
        keep = term.succs[0];
        drop = -1;
      } else {
        continue;
      }
      term.op = Opcode::Br;
      term.ops.clear();
      term.succs = {keep};
      if (drop >= 0 && drop != keep) remove_phi_edge(f, b, drop);
      stats.add(name(), "NumFoldedBranch", 1);
      stats.add(name(), "NumSimpl", 1);
      changed = true;
    }
    return changed;
  }

  bool merge_chains(Function& f, StatsRegistry& stats) {
    bool changed = false;
    const auto preds = f.predecessors();
    for (BlockId b = 1; b < static_cast<BlockId>(f.blocks.size()); ++b) {
      const auto& p = preds[static_cast<std::size_t>(b)];
      if (p.size() != 1) continue;
      const BlockId pred = p[0];
      if (pred == b) continue;
      if (f.successors(pred).size() != 1) continue;
      const ValueId pterm = f.terminator(pred);
      if (pterm == kNoValue) continue;

      // Single-entry phis collapse to their value.
      for (ValueId id : std::vector<ValueId>(f.block(b).insts)) {
        Instr& in = f.instr(id);
        if (in.dead()) continue;
        if (in.op != Opcode::Phi) break;
        if (in.ops.size() == 1) {
          f.replace_all_uses(id, in.ops[0]);
          f.kill(id);
        } else {
          // Multi-entry phi with a single CFG predecessor: malformed for
          // merging; bail out on this block.
          goto next_block;
        }
      }

      {
        // Splice b's instructions after removing pred's terminator.
        auto& pi = f.block(pred).insts;
        f.kill(pterm);
        std::erase_if(pi, [&](ValueId v) { return f.instr(v).dead(); });
        auto& bi = f.block(b).insts;
        std::erase_if(bi, [&](ValueId v) { return f.instr(v).dead(); });
        pi.insert(pi.end(), bi.begin(), bi.end());
        bi.clear();
        // Phi edges in b's successors now come from pred.
        for (BlockId s : f.successors(pred))
          retarget_phi_edges(f, s, b, pred);
        stats.add(name(), "NumBlocksMerged", 1);
        stats.add(name(), "NumSimpl", 1);
        changed = true;
        // preds snapshot is stale now; restart scanning next round.
        return changed;
      }
    next_block:;
    }
    return changed;
  }

  /// A block containing only `br X` can be bypassed: predecessors jump to
  /// X directly (when X's phis do not already see those predecessors).
  bool thread_forwarders(Function& f, StatsRegistry& stats) {
    bool changed = false;
    const auto preds = f.predecessors();
    for (BlockId b = 1; b < static_cast<BlockId>(f.blocks.size()); ++b) {
      const auto& bi = f.block(b).insts;
      ValueId only = kNoValue;
      bool trivial = true;
      for (ValueId id : bi) {
        if (f.instr(id).dead()) continue;
        if (only != kNoValue) {
          trivial = false;
          break;
        }
        only = id;
      }
      if (!trivial || only == kNoValue) continue;
      const Instr& term = f.instr(only);
      if (term.op != Opcode::Br) continue;
      const BlockId target = term.succs[0];
      if (target == b) continue;

      // Phis in target keyed by b need per-predecessor values; only safe
      // when target has no phis or all phi entries from b can be copied.
      bool target_has_phi = false;
      for (ValueId id : f.block(target).insts) {
        const Instr& in = f.instr(id);
        if (!in.dead() && in.op == Opcode::Phi) {
          target_has_phi = true;
          break;
        }
      }
      const auto& bp = preds[static_cast<std::size_t>(b)];
      if (bp.empty()) continue;
      if (target_has_phi) {
        // Copy the value incoming from b for each new predecessor edge;
        // sound because the value is the same regardless of which pred we
        // arrived from (it dominates b).
        bool any_pred_already_in_target = false;
        for (BlockId p : bp) {
          for (BlockId s : f.successors(p)) {
            if (s == target) any_pred_already_in_target = true;
          }
        }
        if (any_pred_already_in_target) continue;  // would double an edge
        for (ValueId id : f.block(target).insts) {
          Instr& in = f.instr(id);
          if (in.dead()) continue;
          if (in.op != Opcode::Phi) break;
          ValueId from_b = kNoValue;
          for (std::size_t k = 0; k < in.phi_blocks.size(); ++k) {
            if (in.phi_blocks[k] == b) from_b = in.ops[k];
          }
          if (from_b == kNoValue) return changed;  // malformed; abort
          for (std::size_t k = 0; k < in.phi_blocks.size(); ++k) {
            if (in.phi_blocks[k] == b) {
              in.phi_blocks[k] = bp[0];
            }
          }
          for (std::size_t pi = 1; pi < bp.size(); ++pi) {
            in.ops.push_back(from_b);
            in.phi_blocks.push_back(bp[pi]);
          }
        }
      }
      // Redirect all predecessors of b to the target.
      for (BlockId p : bp) {
        const ValueId pt = f.terminator(p);
        if (pt == kNoValue) continue;
        for (auto& s : f.instr(pt).succs) {
          if (s == b) s = target;
        }
      }
      // b is now unreachable; the cleanup pass will drop it.
      stats.add(name(), "NumSimpl", 1);
      changed = true;
      return changed;  // CFG changed; re-scan next round
    }
    return changed;
  }
};

class JumpThreadingPass final : public Pass {
 public:
  std::string name() const override { return "jump-threading"; }
  std::vector<std::string> stat_names() const override {
    return {"NumThreads"};
  }
  AnalysisSet invalidates() const override { return kAllAnalyses; }
  bool run(Module& m, StatsRegistry& stats, AnalysisManager&) override {
    bool changed = false;
    for (auto& f : m.functions) changed |= run_fn(f, stats);
    return changed;
  }

 private:
  bool run_fn(Function& f, StatsRegistry& stats) {
    bool changed = false;
    for (BlockId b = 0; b < static_cast<BlockId>(f.blocks.size()); ++b) {
      const ValueId t = f.terminator(b);
      if (t == kNoValue) continue;
      const Instr& term = f.instr(t);
      if (term.op != Opcode::CondBr) continue;
      const Instr& cond = f.instr(term.ops[0]);
      if (cond.op != Opcode::Phi) continue;

      // The block must contain only phis + the branch for the thread to be
      // a pure control-flow shortcut.
      int live = 0;
      for (ValueId id : f.block(b).insts) {
        const Instr& in = f.instr(id);
        if (!in.dead() && in.op != Opcode::Phi) ++live;
      }
      if (live != 1) continue;

      // Find a predecessor whose incoming condition value is constant.
      for (std::size_t k = 0; k < cond.ops.size(); ++k) {
        const auto c = const_int_value(f, cond.ops[k]);
        if (!c) continue;
        const BlockId pred = cond.phi_blocks[k];
        const BlockId target = *c ? term.succs[0] : term.succs[1];
        // Threading duplicates nothing only when the target has no phis
        // and b has no other phis used beyond the branch.
        bool other_phi_used = false;
        for (ValueId id : f.block(b).insts) {
          const Instr& in = f.instr(id);
          if (in.dead() || in.op != Opcode::Phi) continue;
          if (id == term.ops[0]) continue;
          other_phi_used = true;
        }
        if (other_phi_used) continue;
        bool target_has_phi = false;
        for (ValueId id : f.block(target).insts) {
          const Instr& in = f.instr(id);
          if (in.dead()) continue;
          target_has_phi = in.op == Opcode::Phi;
          break;
        }
        if (target_has_phi) continue;

        // Redirect pred's edge b -> target. Only when pred has exactly one
        // edge into b (otherwise the phi bookkeeping would be ambiguous).
        const ValueId pt = f.terminator(pred);
        if (pt == kNoValue) continue;
        int edges_to_b = 0;
        for (BlockId s : f.instr(pt).succs) {
          if (s == b) ++edges_to_b;
        }
        if (edges_to_b != 1) continue;
        for (auto& s : f.instr(pt).succs) {
          if (s == b) s = target;
        }
        remove_phi_edge(f, pred, b);
        stats.add(name(), "NumThreads", 1);
        changed = true;
        break;  // phi structure changed; next block
      }
    }
    return changed;
  }
};

class SinkPass final : public Pass {
 public:
  std::string name() const override { return "sink"; }
  std::vector<std::string> stat_names() const override { return {"NumSunk"}; }
  /// Moves pure instructions between existing blocks: only def blocks
  /// change (no CFG edit, no use-count change, nothing memory-relevant).
  AnalysisSet invalidates() const override { return kAnalysisDefBlocks; }
  bool run(Module& m, StatsRegistry& stats, AnalysisManager& am) override {
    bool changed = false;
    for (auto& f : m.functions) changed |= run_fn(f, stats, am);
    return changed;
  }

 private:
  bool run_fn(Function& f, StatsRegistry& stats, AnalysisManager& am) {
    bool changed = false;
    const auto preds = f.predecessors();
    // Queried once before any motion; kept deliberately stale during the
    // scan exactly like the historical single-snapshot behaviour.
    const auto& defs = am.def_blocks(f);
    for (BlockId b = 0; b < static_cast<BlockId>(f.blocks.size()); ++b) {
      const auto succs = f.successors(b);
      if (succs.size() < 2) continue;  // sinking pays on branchy blocks
      for (ValueId id : std::vector<ValueId>(f.block(b).insts)) {
        const Instr& in = f.instr(id);
        if (in.dead() || !is_pure(in.op) || in.op == Opcode::Phi) continue;
        if (in.op == Opcode::ConstInt || in.op == Opcode::ConstFP) continue;
        // All uses must live in exactly one successor with b as only pred.
        BlockId use_block = -1;
        bool ok = true;
        for (const auto& bb2 : f.blocks) {
          for (ValueId uid : bb2.insts) {
            const Instr& u = f.instr(uid);
            if (u.dead()) continue;
            for (ValueId op : u.ops) {
              if (op != id) continue;
              const BlockId ub = defs[static_cast<std::size_t>(uid)];
              if (u.op == Opcode::Phi || ub == b) {
                ok = false;
              } else if (use_block == -1) {
                use_block = ub;
              } else if (use_block != ub) {
                ok = false;
              }
            }
          }
        }
        if (!ok || use_block == -1) continue;
        if (std::find(succs.begin(), succs.end(), use_block) == succs.end())
          continue;
        if (preds[static_cast<std::size_t>(use_block)].size() != 1) continue;
        // Move: detach from b, insert after phis in use_block.
        auto& bi = f.block(b).insts;
        std::erase(bi, id);
        auto& ui = f.block(use_block).insts;
        std::size_t pos = 0;
        while (pos < ui.size() && f.instr(ui[pos]).op == Opcode::Phi) ++pos;
        ui.insert(ui.begin() + static_cast<std::ptrdiff_t>(pos), id);
        stats.add(name(), "NumSunk", 1);
        changed = true;
      }
    }
    return changed;
  }
};

}  // namespace

std::unique_ptr<Pass> make_simplifycfg() {
  return std::make_unique<SimplifyCfgPass>();
}
std::unique_ptr<Pass> make_jump_threading() {
  return std::make_unique<JumpThreadingPass>();
}
std::unique_ptr<Pass> make_sink() { return std::make_unique<SinkPass>(); }

}  // namespace citroen::passes
