#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>

#include "obs/trace.hpp"  // json_escape

namespace citroen::obs {

namespace detail {
std::atomic<bool> g_metrics_on{false};
}  // namespace detail

namespace {

/// Same fork-safe spinlock rationale as the trace layer.
class SpinLock {
 public:
  void lock() {
    while (locked_.exchange(true, std::memory_order_acquire)) {
    }
  }
  void unlock() { locked_.store(false, std::memory_order_release); }
  void reset() { locked_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> locked_{false};
};

SpinLock g_reg_mu;

// Instruments never move or die once created: unique_ptr values in maps
// keyed by name, leaked with the registry at process exit.
std::map<std::string, std::unique_ptr<Counter>>& counters() {
  static auto* m = new std::map<std::string, std::unique_ptr<Counter>>();
  return *m;
}
std::map<std::string, std::unique_ptr<Gauge>>& gauges() {
  static auto* m = new std::map<std::string, std::unique_ptr<Gauge>>();
  return *m;
}
std::map<std::string, std::unique_ptr<Histogram>>& histograms() {
  static auto* m = new std::map<std::string, std::unique_ptr<Histogram>>();
  return *m;
}

SpinLock g_mpath_mu;
std::string& metrics_path_ref() {
  static auto* p = new std::string();
  return *p;
}

std::atomic<std::uint32_t> g_next_shard{0};

int local_shard() {
  thread_local int shard = static_cast<int>(
      g_next_shard.fetch_add(1, std::memory_order_relaxed) %
      Histogram::kShards);
  return shard;
}

void atexit_write() { write_metrics_files(metrics_path()); }

void register_atexit_once() {
  static bool registered = [] {
    std::atexit(&atexit_write);
    return true;
  }();
  (void)registered;
}

/// CITROEN_METRICS: unset/""/"0" -> off; "1" -> on, in-memory only;
/// anything else -> on, value is the JSON summary path (a sibling
/// <path>.prom gets the Prometheus text).
const bool g_env_init = [] {
  const char* env = std::getenv("CITROEN_METRICS");
  if (!env || !*env || std::strcmp(env, "0") == 0) return true;
  detail::g_metrics_on.store(true, std::memory_order_relaxed);
  if (std::strcmp(env, "1") != 0) {
    metrics_path_ref() = env;
    register_atexit_once();
  }
  return true;
}();

}  // namespace

void metrics_force_enable(bool on) {
  detail::g_metrics_on.store(on, std::memory_order_relaxed);
}

void Histogram::record(std::uint64_t v) {
  Shard& s = shards_[local_shard()];
  s.buckets[static_cast<std::size_t>(bucket_of(v))].fetch_add(
      1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(v, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot out;
  for (const Shard& s : shards_) {
    out.count += s.count.load(std::memory_order_relaxed);
    out.sum += s.sum.load(std::memory_order_relaxed);
    for (int b = 0; b < kBuckets; ++b)
      out.buckets[static_cast<std::size_t>(b)] +=
          s.buckets[static_cast<std::size_t>(b)].load(
              std::memory_order_relaxed);
  }
  return out;
}

Registry& Registry::instance() {
  static Registry* r = new Registry();
  return *r;
}

Counter& Registry::counter(const std::string& name) {
  g_reg_mu.lock();
  auto& slot = counters()[name];
  if (!slot) slot = std::make_unique<Counter>();
  Counter& c = *slot;
  g_reg_mu.unlock();
  return c;
}

Gauge& Registry::gauge(const std::string& name) {
  g_reg_mu.lock();
  auto& slot = gauges()[name];
  if (!slot) slot = std::make_unique<Gauge>();
  Gauge& g = *slot;
  g_reg_mu.unlock();
  return g;
}

Histogram& Registry::histogram(const std::string& name) {
  g_reg_mu.lock();
  auto& slot = histograms()[name];
  if (!slot) slot = std::make_unique<Histogram>();
  Histogram& h = *slot;
  g_reg_mu.unlock();
  return h;
}

std::vector<std::pair<std::string, std::uint64_t>>
Registry::counters_snapshot() {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  g_reg_mu.lock();
  out.reserve(counters().size());
  for (const auto& [name, c] : counters()) out.emplace_back(name, c->value());
  g_reg_mu.unlock();
  return out;
}

std::string Registry::prometheus_text() {
  std::string out;
  char buf[192];
  g_reg_mu.lock();
  for (const auto& [name, c] : counters()) {
    std::snprintf(buf, sizeof(buf), "# TYPE %s counter\n%s %llu\n",
                  name.c_str(), name.c_str(),
                  static_cast<unsigned long long>(c->value()));
    out += buf;
  }
  for (const auto& [name, g] : gauges()) {
    std::snprintf(buf, sizeof(buf), "# TYPE %s gauge\n%s %.17g\n",
                  name.c_str(), name.c_str(), g->value());
    out += buf;
  }
  for (const auto& [name, h] : histograms()) {
    const auto snap = h->snapshot();
    std::snprintf(buf, sizeof(buf), "# TYPE %s histogram\n", name.c_str());
    out += buf;
    std::uint64_t cumulative = 0;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      const std::uint64_t n = snap.buckets[static_cast<std::size_t>(b)];
      cumulative += n;
      if (n == 0 && b != Histogram::kBuckets - 1) continue;
      std::snprintf(buf, sizeof(buf), "%s_bucket{le=\"%llu\"} %llu\n",
                    name.c_str(),
                    static_cast<unsigned long long>(
                        Histogram::bucket_upper_edge(b)),
                    static_cast<unsigned long long>(cumulative));
      out += buf;
    }
    std::snprintf(buf, sizeof(buf),
                  "%s_bucket{le=\"+Inf\"} %llu\n%s_sum %llu\n%s_count %llu\n",
                  name.c_str(), static_cast<unsigned long long>(snap.count),
                  name.c_str(), static_cast<unsigned long long>(snap.sum),
                  name.c_str(), static_cast<unsigned long long>(snap.count));
    out += buf;
  }
  g_reg_mu.unlock();
  return out;
}

std::string Registry::json_summary() {
  std::string out = "{\"counters\":{";
  char buf[96];
  bool first = true;
  g_reg_mu.lock();
  for (const auto& [name, c] : counters()) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(name);
    std::snprintf(buf, sizeof(buf), "\":%llu",
                  static_cast<unsigned long long>(c->value()));
    out += buf;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges()) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(name);
    std::snprintf(buf, sizeof(buf), "\":%.17g", g->value());
    out += buf;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms()) {
    const auto snap = h->snapshot();
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(name);
    std::snprintf(buf, sizeof(buf), "\":{\"count\":%llu,\"sum\":%llu,",
                  static_cast<unsigned long long>(snap.count),
                  static_cast<unsigned long long>(snap.sum));
    out += buf;
    out += "\"buckets\":[";
    bool bfirst = true;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      const std::uint64_t n = snap.buckets[static_cast<std::size_t>(b)];
      if (n == 0) continue;
      if (!bfirst) out += ',';
      bfirst = false;
      std::snprintf(buf, sizeof(buf), "{\"le\":%llu,\"count\":%llu}",
                    static_cast<unsigned long long>(
                        Histogram::bucket_upper_edge(b)),
                    static_cast<unsigned long long>(n));
      out += buf;
    }
    out += "]}";
  }
  g_reg_mu.unlock();
  out += "}}\n";
  return out;
}

void Registry::reset_locks_after_fork() {
  g_reg_mu.reset();
  g_mpath_mu.reset();
}

void write_metrics_files(const std::string& json_path) {
  if (json_path.empty()) return;
  Registry& reg = Registry::instance();
  const std::string json = reg.json_summary();
  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
  }
  const std::string prom = reg.prometheus_text();
  const std::string prom_path = json_path + ".prom";
  if (std::FILE* f = std::fopen(prom_path.c_str(), "w")) {
    std::fwrite(prom.data(), 1, prom.size(), f);
    std::fclose(f);
  }
}

std::string metrics_path() {
  g_mpath_mu.lock();
  std::string p = metrics_path_ref();
  g_mpath_mu.unlock();
  return p;
}

void set_metrics_path(std::string path) {
  g_mpath_mu.lock();
  metrics_path_ref() = std::move(path);
  g_mpath_mu.unlock();
  if (!metrics_path().empty()) register_atexit_once();
}

}  // namespace citroen::obs
