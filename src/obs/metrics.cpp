#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>

#include "obs/trace.hpp"  // json_escape, trace_dropped

namespace citroen::obs {

namespace detail {
std::atomic<bool> g_metrics_on{false};
}  // namespace detail

namespace {

/// Same fork-safe spinlock rationale as the trace layer.
class SpinLock {
 public:
  void lock() {
    while (locked_.exchange(true, std::memory_order_acquire)) {
    }
  }
  void unlock() { locked_.store(false, std::memory_order_release); }
  void reset() { locked_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> locked_{false};
};

SpinLock g_reg_mu;

// Instruments never move or die once created: unique_ptr values in maps
// keyed by name, leaked with the registry at process exit.
std::map<std::string, std::unique_ptr<Counter>>& counters() {
  static auto* m = new std::map<std::string, std::unique_ptr<Counter>>();
  return *m;
}
std::map<std::string, std::unique_ptr<Gauge>>& gauges() {
  static auto* m = new std::map<std::string, std::unique_ptr<Gauge>>();
  return *m;
}
std::map<std::string, std::unique_ptr<Histogram>>& histograms() {
  static auto* m = new std::map<std::string, std::unique_ptr<Histogram>>();
  return *m;
}

// Labeled families: one label key per family name, one child per label
// value. Children are leaked like plain instruments, so references
// returned by the labeled accessors stay valid for the process.
template <typename T>
struct Family {
  std::string label_key;
  std::map<std::string, std::unique_ptr<T>> children;  // by label value
};
std::map<std::string, Family<Counter>>& counter_families() {
  static auto* m = new std::map<std::string, Family<Counter>>();
  return *m;
}
std::map<std::string, Family<Gauge>>& gauge_families() {
  static auto* m = new std::map<std::string, Family<Gauge>>();
  return *m;
}

template <typename T>
T& labeled_child(std::map<std::string, Family<T>>& families,
                 const std::string& family, const std::string& label_key,
                 const std::string& label_value) {
  g_reg_mu.lock();
  Family<T>& fam = families[family];
  if (fam.label_key.empty()) fam.label_key = label_key;
  auto& slot = fam.children[label_value];
  if (!slot) slot = std::make_unique<T>();
  T& child = *slot;
  g_reg_mu.unlock();
  return child;
}

SpinLock g_mpath_mu;
std::string& metrics_path_ref() {
  static auto* p = new std::string();
  return *p;
}

std::atomic<std::uint32_t> g_next_shard{0};

int local_shard() {
  thread_local int shard = static_cast<int>(
      g_next_shard.fetch_add(1, std::memory_order_relaxed) %
      Histogram::kShards);
  return shard;
}

void atexit_write() { write_metrics_files(metrics_path()); }

void register_atexit_once() {
  static bool registered = [] {
    std::atexit(&atexit_write);
    return true;
  }();
  (void)registered;
}

/// CITROEN_METRICS: unset/""/"0" -> off; "1" -> on, in-memory only;
/// anything else -> on, value is the JSON summary path (a sibling
/// <path>.prom gets the Prometheus text).
const bool g_env_init = [] {
  const char* env = std::getenv("CITROEN_METRICS");
  if (!env || !*env || std::strcmp(env, "0") == 0) return true;
  detail::g_metrics_on.store(true, std::memory_order_relaxed);
  if (std::strcmp(env, "1") != 0) {
    metrics_path_ref() = env;
    register_atexit_once();
  }
  return true;
}();

}  // namespace

void metrics_force_enable(bool on) {
  detail::g_metrics_on.store(on, std::memory_order_relaxed);
}

void Histogram::record(std::uint64_t v) {
  Shard& s = shards_[local_shard()];
  s.buckets[static_cast<std::size_t>(bucket_of(v))].fetch_add(
      1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(v, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot out;
  for (const Shard& s : shards_) {
    out.count += s.count.load(std::memory_order_relaxed);
    out.sum += s.sum.load(std::memory_order_relaxed);
    for (int b = 0; b < kBuckets; ++b)
      out.buckets[static_cast<std::size_t>(b)] +=
          s.buckets[static_cast<std::size_t>(b)].load(
              std::memory_order_relaxed);
  }
  return out;
}

Registry& Registry::instance() {
  static Registry* r = new Registry();
  return *r;
}

Counter& Registry::counter(const std::string& name) {
  g_reg_mu.lock();
  auto& slot = counters()[name];
  if (!slot) slot = std::make_unique<Counter>();
  Counter& c = *slot;
  g_reg_mu.unlock();
  return c;
}

Gauge& Registry::gauge(const std::string& name) {
  g_reg_mu.lock();
  auto& slot = gauges()[name];
  if (!slot) slot = std::make_unique<Gauge>();
  Gauge& g = *slot;
  g_reg_mu.unlock();
  return g;
}

Histogram& Registry::histogram(const std::string& name) {
  g_reg_mu.lock();
  auto& slot = histograms()[name];
  if (!slot) slot = std::make_unique<Histogram>();
  Histogram& h = *slot;
  g_reg_mu.unlock();
  return h;
}

Counter& Registry::counter(const std::string& family,
                           const std::string& label_key,
                           const std::string& label_value) {
  return labeled_child(counter_families(), family, label_key, label_value);
}

Gauge& Registry::gauge(const std::string& family, const std::string& label_key,
                       const std::string& label_value) {
  return labeled_child(gauge_families(), family, label_key, label_value);
}

std::string Registry::wire_name(const std::string& family,
                                const std::string& label_key,
                                const std::string& label_value) {
  std::string out = family;
  out += '{';
  out += label_key;
  out += "=\"";
  out += label_value;
  out += "\"}";
  return out;
}

Counter& Registry::counter_from_wire(const std::string& wire_name) {
  const std::size_t brace = wire_name.find('{');
  if (brace == std::string::npos) return counter(wire_name);
  const std::size_t eq = wire_name.find("=\"", brace);
  // Malformed labeled names fall back to a plain counter under the full
  // string rather than silently dropping the delta.
  if (eq == std::string::npos || wire_name.size() < 2 ||
      wire_name.compare(wire_name.size() - 2, 2, "\"}") != 0) {
    return counter(wire_name);
  }
  const std::string family = wire_name.substr(0, brace);
  const std::string key = wire_name.substr(brace + 1, eq - brace - 1);
  const std::string value =
      wire_name.substr(eq + 2, wire_name.size() - 2 - (eq + 2));
  return counter(family, key, value);
}

std::vector<std::pair<std::string, std::uint64_t>>
Registry::counters_snapshot() {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  g_reg_mu.lock();
  out.reserve(counters().size());
  for (const auto& [name, c] : counters()) out.emplace_back(name, c->value());
  for (const auto& [family, fam] : counter_families()) {
    for (const auto& [value, c] : fam.children)
      out.emplace_back(wire_name(family, fam.label_key, value), c->value());
  }
  g_reg_mu.unlock();
  std::sort(out.begin(), out.end());
  return out;
}

MetricsSnapshot Registry::snapshot() {
  MetricsSnapshot snap;
  g_reg_mu.lock();
  snap.counters.reserve(counters().size() + 1);
  for (const auto& [name, c] : counters())
    snap.counters.emplace_back(name, c->value());
  for (const auto& [family, fam] : counter_families()) {
    for (const auto& [value, c] : fam.children)
      snap.labeled_counters.push_back(
          {family, fam.label_key, value, c->value()});
  }
  snap.gauges.reserve(gauges().size());
  for (const auto& [name, g] : gauges())
    snap.gauges.emplace_back(name, g->value());
  for (const auto& [family, fam] : gauge_families()) {
    for (const auto& [value, g] : fam.children)
      snap.labeled_gauges.push_back({family, fam.label_key, value, g->value()});
  }
  snap.histograms.reserve(histograms().size());
  for (const auto& [name, h] : histograms())
    snap.histograms.emplace_back(name, h->snapshot());
  g_reg_mu.unlock();
  // Ring-overflow drops are an atomic in the trace layer; surfacing them
  // here makes silent trace loss visible in every scrape.
  const std::string drop_name = "citroen_trace_dropped_total";
  bool have = false;
  for (auto& [name, v] : snap.counters) {
    if (name == drop_name) {
      v = trace_dropped();
      have = true;
      break;
    }
  }
  if (!have) {
    snap.counters.emplace_back(drop_name, trace_dropped());
    std::sort(snap.counters.begin(), snap.counters.end());
  }
  return snap;
}

std::string Registry::prometheus_text(const MetricsSnapshot& snap) {
  std::string out;
  char buf[192];
  for (const auto& [name, v] : snap.counters) {
    std::snprintf(buf, sizeof(buf), "# TYPE %s counter\n%s %llu\n",
                  name.c_str(), name.c_str(),
                  static_cast<unsigned long long>(v));
    out += buf;
  }
  std::string last_family;
  for (const auto& lc : snap.labeled_counters) {
    if (lc.family != last_family) {
      std::snprintf(buf, sizeof(buf), "# TYPE %s counter\n",
                    lc.family.c_str());
      out += buf;
      last_family = lc.family;
    }
    std::snprintf(buf, sizeof(buf), "%s{%s=\"%s\"} %llu\n", lc.family.c_str(),
                  lc.label_key.c_str(), lc.label_value.c_str(),
                  static_cast<unsigned long long>(lc.value));
    out += buf;
  }
  for (const auto& [name, v] : snap.gauges) {
    std::snprintf(buf, sizeof(buf), "# TYPE %s gauge\n%s %.17g\n",
                  name.c_str(), name.c_str(), v);
    out += buf;
  }
  last_family.clear();
  for (const auto& lg : snap.labeled_gauges) {
    if (lg.family != last_family) {
      std::snprintf(buf, sizeof(buf), "# TYPE %s gauge\n", lg.family.c_str());
      out += buf;
      last_family = lg.family;
    }
    std::snprintf(buf, sizeof(buf), "%s{%s=\"%s\"} %.17g\n", lg.family.c_str(),
                  lg.label_key.c_str(), lg.label_value.c_str(), lg.value);
    out += buf;
  }
  for (const auto& [name, hsnap] : snap.histograms) {
    std::snprintf(buf, sizeof(buf), "# TYPE %s histogram\n", name.c_str());
    out += buf;
    std::uint64_t cumulative = 0;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      const std::uint64_t n = hsnap.buckets[static_cast<std::size_t>(b)];
      cumulative += n;
      if (n == 0 && b != Histogram::kBuckets - 1) continue;
      std::snprintf(buf, sizeof(buf), "%s_bucket{le=\"%llu\"} %llu\n",
                    name.c_str(),
                    static_cast<unsigned long long>(
                        Histogram::bucket_upper_edge(b)),
                    static_cast<unsigned long long>(cumulative));
      out += buf;
    }
    std::snprintf(buf, sizeof(buf),
                  "%s_bucket{le=\"+Inf\"} %llu\n%s_sum %llu\n%s_count %llu\n",
                  name.c_str(), static_cast<unsigned long long>(hsnap.count),
                  name.c_str(), static_cast<unsigned long long>(hsnap.sum),
                  name.c_str(), static_cast<unsigned long long>(hsnap.count));
    out += buf;
  }
  return out;
}

std::string Registry::json_summary(const MetricsSnapshot& snap) {
  std::string out = "{\"counters\":{";
  char buf[96];
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(name);
    std::snprintf(buf, sizeof(buf), "\":%llu",
                  static_cast<unsigned long long>(v));
    out += buf;
  }
  // Labeled children appear under their flattened wire names so every
  // JSON consumer sees one flat counter map, coherent with the plain
  // counters above (same snapshot).
  for (const auto& lc : snap.labeled_counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(wire_name(lc.family, lc.label_key, lc.label_value));
    std::snprintf(buf, sizeof(buf), "\":%llu",
                  static_cast<unsigned long long>(lc.value));
    out += buf;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(name);
    std::snprintf(buf, sizeof(buf), "\":%.17g", v);
    out += buf;
  }
  for (const auto& lg : snap.labeled_gauges) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(wire_name(lg.family, lg.label_key, lg.label_value));
    std::snprintf(buf, sizeof(buf), "\":%.17g", lg.value);
    out += buf;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hsnap] : snap.histograms) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(name);
    std::snprintf(buf, sizeof(buf), "\":{\"count\":%llu,\"sum\":%llu,",
                  static_cast<unsigned long long>(hsnap.count),
                  static_cast<unsigned long long>(hsnap.sum));
    out += buf;
    out += "\"buckets\":[";
    bool bfirst = true;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      const std::uint64_t n = hsnap.buckets[static_cast<std::size_t>(b)];
      if (n == 0) continue;
      if (!bfirst) out += ',';
      bfirst = false;
      std::snprintf(buf, sizeof(buf), "{\"le\":%llu,\"count\":%llu}",
                    static_cast<unsigned long long>(
                        Histogram::bucket_upper_edge(b)),
                    static_cast<unsigned long long>(n));
      out += buf;
    }
    out += "]}";
  }
  out += "}}\n";
  return out;
}

std::string Registry::prometheus_text() { return prometheus_text(snapshot()); }

std::string Registry::json_summary() { return json_summary(snapshot()); }

void Registry::reset_locks_after_fork() {
  g_reg_mu.reset();
  g_mpath_mu.reset();
}

void write_metrics_files(const std::string& json_path) {
  if (json_path.empty()) return;
  Registry& reg = Registry::instance();
  // One snapshot feeds both files: the JSON summary and the Prometheus
  // text can never disagree about a counter or its label children.
  const MetricsSnapshot snap = reg.snapshot();
  const std::string json = Registry::json_summary(snap);
  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
  }
  const std::string prom = Registry::prometheus_text(snap);
  const std::string prom_path = json_path + ".prom";
  if (std::FILE* f = std::fopen(prom_path.c_str(), "w")) {
    std::fwrite(prom.data(), 1, prom.size(), f);
    std::fclose(f);
  }
}

std::string metrics_path() {
  g_mpath_mu.lock();
  std::string p = metrics_path_ref();
  g_mpath_mu.unlock();
  return p;
}

void set_metrics_path(std::string path) {
  g_mpath_mu.lock();
  metrics_path_ref() = std::move(path);
  g_mpath_mu.unlock();
  if (!metrics_path().empty()) register_atexit_once();
}

}  // namespace citroen::obs
