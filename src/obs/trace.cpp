#include "obs/trace.hpp"

#include <time.h>
#include <unistd.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <unordered_set>
#include <utility>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"

namespace citroen::obs {

namespace detail {
std::atomic<bool> g_trace_on{false};
}  // namespace detail

namespace {

/// Fork-safe lock: a child can reset it unconditionally after fork even
/// if a parent thread held it at fork time (a pthread mutex copied in a
/// locked state would wedge the child forever). Contention is rare by
/// design — only ring spills, drains and flushes ever take one.
class SpinLock {
 public:
  void lock() {
    while (locked_.exchange(true, std::memory_order_acquire)) {
    }
  }
  void unlock() { locked_.store(false, std::memory_order_release); }
  void reset() { locked_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> locked_{false};
};

std::uint64_t now_ns() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

constexpr std::size_t kRingCapacity = 4096;

// ---- global sink ----------------------------------------------------------

SpinLock g_sink_mu;
std::vector<TraceEvent>& sink_events() {
  static std::vector<TraceEvent>* v = new std::vector<TraceEvent>();
  return *v;
}
std::atomic<std::size_t> g_sink_cap{std::size_t{1} << 20};
std::atomic<std::uint64_t> g_dropped{0};

/// Append under g_sink_mu, dropping newest past the cap. Rings never
/// overwrite slots in place, so every event that reaches the sink is
/// whole; overflow is visible only as this counter.
void sink_append_locked(const TraceEvent* evs, std::size_t n) {
  auto& sink = sink_events();
  const std::size_t cap = g_sink_cap.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < n; ++i) {
    if (sink.size() >= cap) {
      g_dropped.fetch_add(n - i, std::memory_order_relaxed);
      return;
    }
    sink.push_back(evs[i]);
  }
}

// ---- per-thread rings -----------------------------------------------------

class TraceRing {
 public:
  /// Owner-thread only. Wait-free except when the ring fills, which
  /// spills the whole ring into the sink (amortised over kRingCapacity
  /// events).
  void push(const TraceEvent& ev) {
    std::size_t n = count_.load(std::memory_order_relaxed);
    if (n == kRingCapacity) {
      spill();
      n = 0;
    }
    slots_[n] = ev;
    count_.store(n + 1, std::memory_order_release);
  }

  /// Move everything into `out`; caller guarantees the owner thread is
  /// not emitting concurrently (see drain_trace contract).
  void drain_into(std::vector<TraceEvent>& out) {
    mu_.lock();
    const std::size_t n = count_.load(std::memory_order_acquire);
    out.insert(out.end(), slots_, slots_ + n);
    count_.store(0, std::memory_order_release);
    mu_.unlock();
  }

  void spill_into_sink() {
    mu_.lock();
    const std::size_t n = count_.load(std::memory_order_acquire);
    g_sink_mu.lock();
    sink_append_locked(slots_, n);
    g_sink_mu.unlock();
    count_.store(0, std::memory_order_release);
    mu_.unlock();
  }

  void clear() {
    count_.store(0, std::memory_order_relaxed);
    mu_.reset();
  }

 private:
  void spill() {
    mu_.lock();
    const std::size_t n = count_.load(std::memory_order_relaxed);
    g_sink_mu.lock();
    sink_append_locked(slots_, n);
    g_sink_mu.unlock();
    count_.store(0, std::memory_order_release);
    mu_.unlock();
  }

  TraceEvent slots_[kRingCapacity];
  std::atomic<std::size_t> count_{0};
  /// Excludes a drain/flush from racing the owner's spill; the owner's
  /// plain push path never touches it.
  SpinLock mu_;
};

SpinLock g_rings_mu;
std::vector<TraceRing*>& rings() {
  static std::vector<TraceRing*>* v = new std::vector<TraceRing*>();
  return *v;
}

std::atomic<std::uint32_t> g_next_tid{1};
std::uint32_t g_pid = 0;

TraceRing& local_ring() {
  // Rings are leaked on purpose: a pool thread may exit while its events
  // are still waiting for the final flush, and the registry keeps the
  // only owning pointer.
  thread_local TraceRing* ring = [] {
    auto* r = new TraceRing();
    g_rings_mu.lock();
    rings().push_back(r);
    g_rings_mu.unlock();
    return r;
  }();
  return *ring;
}

std::uint32_t local_tid() {
  thread_local std::uint32_t tid =
      g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

// ---- string interning -----------------------------------------------------

SpinLock g_intern_mu;
std::unordered_set<std::string>& intern_table() {
  static auto* t = new std::unordered_set<std::string>();
  return *t;
}

// ---- output path + env init -----------------------------------------------

SpinLock g_path_mu;
std::string& trace_path_ref() {
  static auto* p = new std::string();
  return *p;
}

void atexit_flush() { flush_trace(); }

void register_atexit_once() {
  static bool registered = [] {
    std::atexit(&atexit_flush);
    return true;
  }();
  (void)registered;
}

/// CITROEN_TRACE: unset/""/"0" -> off; "1" -> on, default file;
/// anything else -> on, value is the output path.
const bool g_env_init = [] {
  g_pid = static_cast<std::uint32_t>(::getpid());
  if (const char* cap = std::getenv("CITROEN_TRACE_SINK_CAP")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(cap, &end, 10);
    if (end != cap && v > 0) g_sink_cap.store(v, std::memory_order_relaxed);
  }
  const char* env = std::getenv("CITROEN_TRACE");
  if (!env || !*env || std::strcmp(env, "0") == 0) return true;
  trace_path_ref() =
      std::strcmp(env, "1") == 0 ? "citroen_trace.json" : env;
  detail::g_trace_on.store(true, std::memory_order_relaxed);
  register_atexit_once();
  return true;
}();

void drain_rings_into_sink() {
  g_rings_mu.lock();
  std::vector<TraceRing*> snapshot = rings();
  g_rings_mu.unlock();
  for (TraceRing* r : snapshot) r->spill_into_sink();
}

void append_json_event(std::string& out, const TraceEvent& ev) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{\"ph\":\"%c\",\"pid\":%u,\"tid\":%u,\"ts\":%.3f", ev.phase,
                ev.pid, ev.tid,
                static_cast<double>(ev.ts_ns) / 1000.0);
  out += buf;
  out += ",\"name\":\"";
  out += json_escape(ev.name ? ev.name : "");
  out += "\",\"cat\":\"";
  out += json_escape(ev.cat ? ev.cat : "");
  out += '"';
  if (ev.phase == 'b' || ev.phase == 'e' || ev.phase == 's' ||
      ev.phase == 'f') {
    std::snprintf(buf, sizeof(buf), ",\"id\":\"0x%llx\"",
                  static_cast<unsigned long long>(ev.id));
    out += buf;
  }
  // Flow finishes bind to the enclosing slice's end, which is what makes
  // the daemon->peer arrow land on the remote execution span in Perfetto.
  if (ev.phase == 'f') out += ",\"bp\":\"e\"";
  if (ev.phase == 'I') out += ",\"s\":\"t\"";
  if (ev.arg_name || ev.str_arg) {
    out += ",\"args\":{";
    bool first = true;
    if (ev.arg_name) {
      out += '"';
      out += json_escape(ev.arg_name);
      std::snprintf(buf, sizeof(buf), "\":%llu",
                    static_cast<unsigned long long>(ev.arg));
      out += buf;
      first = false;
    }
    if (ev.str_arg) {
      if (!first) out += ',';
      out += "\"detail\":\"";
      out += json_escape(ev.str_arg);
      out += '"';
    }
    out += '}';
  }
  out += '}';
}

}  // namespace

void trace_force_enable(bool on) {
  detail::g_trace_on.store(on, std::memory_order_relaxed);
}

void set_trace_path(std::string path) {
  g_path_mu.lock();
  trace_path_ref() = std::move(path);
  g_path_mu.unlock();
  if (!trace_path().empty()) register_atexit_once();
}

std::string trace_path() {
  g_path_mu.lock();
  std::string p = trace_path_ref();
  g_path_mu.unlock();
  return p;
}

const char* intern(std::string_view s) {
  g_intern_mu.lock();
  const auto [it, _] = intern_table().emplace(s);
  const char* p = it->c_str();
  g_intern_mu.unlock();
  return p;
}

void emit(char phase, const char* name, const char* cat, std::uint64_t id,
          const char* arg_name, std::uint64_t arg, const char* str_arg) {
  if (!trace_enabled()) return;
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.arg_name = arg_name;
  ev.str_arg = str_arg;
  ev.ts_ns = now_ns();
  ev.id = id;
  ev.arg = arg;
  ev.pid = g_pid;
  ev.tid = local_tid();
  ev.phase = phase;
  local_ring().push(ev);
}

std::vector<TraceEvent> drain_trace() {
  std::vector<TraceEvent> out;
  g_sink_mu.lock();
  out.swap(sink_events());
  g_sink_mu.unlock();
  g_rings_mu.lock();
  std::vector<TraceRing*> snapshot = rings();
  g_rings_mu.unlock();
  for (TraceRing* r : snapshot) r->drain_into(out);
  return out;
}

void ingest_event(const TraceEvent& ev) {
  g_sink_mu.lock();
  sink_append_locked(&ev, 1);
  g_sink_mu.unlock();
}

std::uint64_t trace_dropped() {
  return g_dropped.load(std::memory_order_relaxed);
}

std::uint64_t apply_clock_offset(std::uint64_t ts_ns, std::int64_t offset_ns) {
  if (offset_ns >= 0) {
    const std::uint64_t d = static_cast<std::uint64_t>(offset_ns);
    return ts_ns > ~std::uint64_t{0} - d ? ~std::uint64_t{0} : ts_ns + d;
  }
  // offset_ns may be INT64_MIN, whose negation overflows; negate as u64.
  const std::uint64_t d = std::uint64_t{0} - static_cast<std::uint64_t>(offset_ns);
  return ts_ns < d ? 0 : ts_ns - d;
}

void set_sink_capacity(std::size_t cap) {
  g_sink_cap.store(cap, std::memory_order_relaxed);
}

void flush_trace() {
  const std::string path = trace_path();
  if (path.empty()) return;
  drain_rings_into_sink();
  g_sink_mu.lock();
  std::vector<TraceEvent> snapshot = sink_events();
  g_sink_mu.unlock();
  const std::string doc = trace_json(snapshot);
  // Whole-file rewrite each time: every flush leaves a complete, valid
  // JSON document on disk, so even a flush-then-_Exit shutdown (watchdog
  // deadline, exit 99) yields a loadable trace. Only SIGKILL between
  // flushes loses events.
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return;
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
}

void reset_after_fork() {
  g_sink_mu.reset();
  g_rings_mu.reset();
  g_intern_mu.reset();
  g_path_mu.reset();
  g_pid = static_cast<std::uint32_t>(::getpid());
  trace_path_ref().clear();  // never clobber the supervisor's file
  sink_events().clear();
  for (TraceRing* r : rings()) r->clear();
  Registry::instance().reset_locks_after_fork();
  set_metrics_path("");  // ditto for the metrics/prom files
  flight_reset_after_fork();
}

void flush_all() {
  flush_trace();
  write_metrics_files(metrics_path());
  // _Exit-style shutdowns reach here (watchdog kill, exit 99): dump the
  // flight recorder to stderr so post-incident triage never depends on
  // tracing having been enabled. Stderr-only, so bench stdout stays
  // byte-identical.
  flight_dump(stderr);
}

std::string trace_json(const std::vector<TraceEvent>& events) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const auto& ev : events) {
    if (!first) out += ",\n";
    first = false;
    append_json_event(out, ev);
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool validate_span_nesting(const std::vector<TraceEvent>& events,
                           std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error) *error = why;
    return false;
  };
  // Sync spans: per (pid, tid), 'B'/'E' must behave as a stack whose 'E'
  // names match the matching 'B'. Async spans: per (pid, id), 'b' then
  // 'e', no reuse while open.
  std::map<std::uint64_t, std::vector<const TraceEvent*>> stacks;
  std::map<std::pair<std::uint64_t, std::uint64_t>, const char*> open_async;
  // Flow binding is order-independent: a merged trace interleaves events
  // from several processes, and a peer's 'f' may be ingested before the
  // pool's 's' appears in drain order. Collect starts first.
  std::unordered_set<std::uint64_t> flow_starts;
  for (const auto& ev : events) {
    if (ev.phase == 's') flow_starts.insert(ev.id);
  }
  for (const auto& ev : events) {
    const std::uint64_t key =
        (std::uint64_t{ev.pid} << 32) | std::uint64_t{ev.tid};
    switch (ev.phase) {
      case 'B':
        stacks[key].push_back(&ev);
        break;
      case 'E': {
        auto& st = stacks[key];
        if (st.empty())
          return fail(std::string("unmatched span end: ") +
                      (ev.name ? ev.name : "?"));
        const TraceEvent* open = st.back();
        if (std::string_view(open->name ? open->name : "") !=
            std::string_view(ev.name ? ev.name : ""))
          return fail(std::string("span end '") + (ev.name ? ev.name : "?") +
                      "' does not match open span '" +
                      (open->name ? open->name : "?") + "'");
        if (ev.ts_ns < open->ts_ns)
          return fail(std::string("span '") + (ev.name ? ev.name : "?") +
                      "' ends before it begins");
        st.pop_back();
        break;
      }
      case 'b': {
        const auto akey = std::make_pair(std::uint64_t{ev.pid}, ev.id);
        if (open_async.count(akey))
          return fail("async id reused while open");
        open_async[akey] = ev.name;
        break;
      }
      case 'e': {
        const auto akey = std::make_pair(std::uint64_t{ev.pid}, ev.id);
        auto it = open_async.find(akey);
        if (it == open_async.end()) return fail("unmatched async end");
        open_async.erase(it);
        break;
      }
      case 'I':
      case 's':
        break;
      case 'f':
        if (!flow_starts.count(ev.id))
          return fail(std::string("flow finish without start: ") +
                      (ev.name ? ev.name : "?"));
        break;
      default:
        return fail(std::string("unknown phase '") + ev.phase + "'");
    }
  }
  for (const auto& [key, st] : stacks) {
    if (!st.empty())
      return fail(std::string("span never closed: ") +
                  (st.back()->name ? st.back()->name : "?"));
  }
  if (!open_async.empty()) return fail("async span never closed");
  return true;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ---- minimal strict JSON validator ----------------------------------------

namespace {

struct JsonCursor {
  const char* p;
  const char* end;
  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r'))
      ++p;
  }
  bool eof() const { return p >= end; }
};

bool parse_value(JsonCursor& c, int depth, std::string* error);

bool parse_literal(JsonCursor& c, const char* lit, std::string* error) {
  const std::size_t n = std::strlen(lit);
  if (static_cast<std::size_t>(c.end - c.p) < n ||
      std::strncmp(c.p, lit, n) != 0) {
    if (error) *error = std::string("bad literal, expected ") + lit;
    return false;
  }
  c.p += n;
  return true;
}

bool parse_string(JsonCursor& c, std::string* error) {
  if (c.eof() || *c.p != '"') {
    if (error) *error = "expected string";
    return false;
  }
  ++c.p;
  while (!c.eof()) {
    const unsigned char ch = static_cast<unsigned char>(*c.p);
    if (ch == '"') {
      ++c.p;
      return true;
    }
    if (ch < 0x20) {
      if (error) *error = "raw control character in string";
      return false;
    }
    if (ch == '\\') {
      ++c.p;
      if (c.eof()) break;
      const char esc = *c.p;
      if (esc == 'u') {
        for (int i = 0; i < 4; ++i) {
          ++c.p;
          if (c.eof() || !std::isxdigit(static_cast<unsigned char>(*c.p))) {
            if (error) *error = "bad \\u escape";
            return false;
          }
        }
      } else if (!std::strchr("\"\\/bfnrt", esc)) {
        if (error) *error = "bad escape";
        return false;
      }
    }
    ++c.p;
  }
  if (error) *error = "unterminated string";
  return false;
}

bool parse_number(JsonCursor& c, std::string* error) {
  const char* start = c.p;
  if (!c.eof() && *c.p == '-') ++c.p;
  while (!c.eof() && std::isdigit(static_cast<unsigned char>(*c.p))) ++c.p;
  if (!c.eof() && *c.p == '.') {
    ++c.p;
    while (!c.eof() && std::isdigit(static_cast<unsigned char>(*c.p))) ++c.p;
  }
  if (!c.eof() && (*c.p == 'e' || *c.p == 'E')) {
    ++c.p;
    if (!c.eof() && (*c.p == '+' || *c.p == '-')) ++c.p;
    while (!c.eof() && std::isdigit(static_cast<unsigned char>(*c.p))) ++c.p;
  }
  if (c.p == start || (*start == '-' && c.p == start + 1)) {
    if (error) *error = "bad number";
    return false;
  }
  return true;
}

bool parse_value(JsonCursor& c, int depth, std::string* error) {
  if (depth > 128) {
    if (error) *error = "nesting too deep";
    return false;
  }
  c.skip_ws();
  if (c.eof()) {
    if (error) *error = "unexpected end of input";
    return false;
  }
  const char ch = *c.p;
  if (ch == '{') {
    ++c.p;
    c.skip_ws();
    if (!c.eof() && *c.p == '}') {
      ++c.p;
      return true;
    }
    for (;;) {
      c.skip_ws();
      if (!parse_string(c, error)) return false;
      c.skip_ws();
      if (c.eof() || *c.p != ':') {
        if (error) *error = "expected ':'";
        return false;
      }
      ++c.p;
      if (!parse_value(c, depth + 1, error)) return false;
      c.skip_ws();
      if (!c.eof() && *c.p == ',') {
        ++c.p;
        continue;
      }
      if (!c.eof() && *c.p == '}') {
        ++c.p;
        return true;
      }
      if (error) *error = "expected ',' or '}'";
      return false;
    }
  }
  if (ch == '[') {
    ++c.p;
    c.skip_ws();
    if (!c.eof() && *c.p == ']') {
      ++c.p;
      return true;
    }
    for (;;) {
      if (!parse_value(c, depth + 1, error)) return false;
      c.skip_ws();
      if (!c.eof() && *c.p == ',') {
        ++c.p;
        continue;
      }
      if (!c.eof() && *c.p == ']') {
        ++c.p;
        return true;
      }
      if (error) *error = "expected ',' or ']'";
      return false;
    }
  }
  if (ch == '"') return parse_string(c, error);
  if (ch == 't') return parse_literal(c, "true", error);
  if (ch == 'f') return parse_literal(c, "false", error);
  if (ch == 'n') return parse_literal(c, "null", error);
  return parse_number(c, error);
}

}  // namespace

bool json_well_formed(const std::string& text, std::string* error) {
  JsonCursor c{text.data(), text.data() + text.size()};
  if (!parse_value(c, 0, error)) return false;
  c.skip_ws();
  if (!c.eof()) {
    if (error) *error = "trailing bytes after JSON value";
    return false;
  }
  return true;
}

}  // namespace citroen::obs
