#pragma once
// Flight recorder: an always-on bounded ring of recent coarse events
// (job transitions, peer deaths, breaker trips, admission rejects).
//
// Unlike the trace layer this is NOT gated behind CITROEN_TRACE — the
// whole point is that post-incident triage never depends on tracing
// having been enabled. The cost budget makes that safe: flight events
// are emitted at most a handful of times per job or per peer failure,
// never per evaluation, so one clock read plus a short spinlocked ring
// write is noise.
//
// Determinism contract: the ring lives in memory, is read back only via
// flight_snapshot() (Inspect) and flight_dump() (stderr on the 75/99
// exit paths), and never feeds tuning state. Bench stdout stays
// byte-identical with the recorder present, which is why it can be
// always-on.
//
// String discipline mirrors the trace layer: `kind` is a literal;
// `detail` is copied through obs::intern() so entries never dangle.

#include <cstdint>
#include <cstdio>
#include <string_view>
#include <vector>

namespace citroen::obs {

struct FlightEvent {
  std::uint64_t seq = 0;    ///< monotone per process; gaps = overwritten
  std::uint64_t ts_ns = 0;  ///< CLOCK_MONOTONIC
  const char* kind = "";    ///< e.g. "job_done", "peer_lost", "reject"
  std::uint64_t a = 0;      ///< kind-specific (job id, peer index, ...)
  std::uint64_t b = 0;
  const char* detail = "";  ///< interned free-form context ("" = none)
};

/// Append one event, overwriting the oldest once the ring is full.
void flight_record(const char* kind, std::uint64_t a = 0, std::uint64_t b = 0,
                   std::string_view detail = {});

/// Copy the ring out, oldest first. Safe to call from any thread.
std::vector<FlightEvent> flight_snapshot();

/// Total events ever recorded (>= snapshot size once the ring wraps).
std::uint64_t flight_recorded_total();

/// Ring capacity (fixed; exposed for tests and the Inspect snapshot).
std::size_t flight_capacity();

/// Human-readable dump, one line per event; no-op when the ring is
/// empty. Called on the 75/99 exit paths with stderr.
void flight_dump(std::FILE* out);

/// Drop everything (tests, and via obs::reset_after_fork so a worker or
/// peer child starts with an empty ring instead of the parent's tail).
void flight_reset_after_fork();

}  // namespace citroen::obs
