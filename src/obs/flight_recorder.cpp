#include "obs/flight_recorder.hpp"

#include <time.h>

#include <atomic>

#include "obs/trace.hpp"  // intern

namespace citroen::obs {

namespace {

/// Same fork-safe spinlock rationale as the trace layer.
class SpinLock {
 public:
  void lock() {
    while (locked_.exchange(true, std::memory_order_acquire)) {
    }
  }
  void unlock() { locked_.store(false, std::memory_order_release); }
  void reset() { locked_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> locked_{false};
};

constexpr std::size_t kFlightCapacity = 256;

SpinLock g_flight_mu;
FlightEvent g_ring[kFlightCapacity];
std::uint64_t g_next_seq = 0;  // == total recorded; ring slot is seq % cap

std::uint64_t now_ns() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

}  // namespace

void flight_record(const char* kind, std::uint64_t a, std::uint64_t b,
                   std::string_view detail) {
  // Intern outside the ring lock (intern has its own lock).
  const char* det = detail.empty() ? "" : intern(detail);
  FlightEvent ev;
  ev.ts_ns = now_ns();
  ev.kind = kind ? kind : "";
  ev.a = a;
  ev.b = b;
  ev.detail = det;
  g_flight_mu.lock();
  ev.seq = g_next_seq++;
  g_ring[ev.seq % kFlightCapacity] = ev;
  g_flight_mu.unlock();
}

std::vector<FlightEvent> flight_snapshot() {
  std::vector<FlightEvent> out;
  g_flight_mu.lock();
  const std::uint64_t total = g_next_seq;
  const std::uint64_t n =
      total < kFlightCapacity ? total : std::uint64_t{kFlightCapacity};
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t seq = total - n + i;
    out.push_back(g_ring[seq % kFlightCapacity]);
  }
  g_flight_mu.unlock();
  return out;
}

std::uint64_t flight_recorded_total() {
  g_flight_mu.lock();
  const std::uint64_t total = g_next_seq;
  g_flight_mu.unlock();
  return total;
}

std::size_t flight_capacity() { return kFlightCapacity; }

void flight_dump(std::FILE* out) {
  const std::vector<FlightEvent> events = flight_snapshot();
  if (events.empty()) return;
  std::fprintf(out, "citroen flight recorder (%zu of %llu events):\n",
               events.size(),
               static_cast<unsigned long long>(flight_recorded_total()));
  for (const FlightEvent& ev : events) {
    std::fprintf(out, "  #%llu %.6fs %s a=%llu b=%llu%s%s\n",
                 static_cast<unsigned long long>(ev.seq),
                 static_cast<double>(ev.ts_ns) / 1e9, ev.kind,
                 static_cast<unsigned long long>(ev.a),
                 static_cast<unsigned long long>(ev.b),
                 *ev.detail ? " " : "", ev.detail);
  }
  std::fflush(out);
}

void flight_reset_after_fork() {
  g_flight_mu.reset();
  g_flight_mu.lock();
  g_next_seq = 0;
  for (FlightEvent& ev : g_ring) ev = FlightEvent{};
  g_flight_mu.unlock();
}

}  // namespace citroen::obs
