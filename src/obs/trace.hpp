#pragma once
// Trace subsystem: per-thread lock-free ring buffers feeding a bounded
// global sink, exported as Chrome trace_event JSON (loadable in Perfetto
// / chrome://tracing).
//
// Cost model: every emit site is guarded by `trace_enabled()`, a relaxed
// load of one global atomic bool. With CITROEN_TRACE unset the whole
// layer is that branch — no allocation, no clock read, no stores
// (BM_TraceEmitOverhead pins the number). When enabled, an emit is one
// CLOCK_MONOTONIC read plus a wait-free append to the calling thread's
// own ring; the only locks in the system (short spinlocks) are taken on
// the amortised ring-spill path and by drains/flushes.
//
// Determinism contract: events carry wall-clock timestamps but are only
// ever written to the trace file / returned from drain_trace(). Nothing
// here feeds back into tuning state, so all bench/tuner stdout is
// byte-identical with tracing on or off (enforced by ext_determinism and
// ext_observability in CI).
//
// Event names and categories are `const char*` by design: call sites
// pass string literals, and dynamic strings (crash signatures, pass
// names) go through intern(), which leaks them for the process lifetime
// so events never dangle.

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace citroen::obs {

/// One trace event. Phases follow the Chrome trace_event format:
/// 'B'/'E' synchronous span begin/end (strictly nested per thread),
/// 'b'/'e' asynchronous span begin/end (paired by `id`, may overlap),
/// 'I' instant, 's'/'f' flow start/finish (linked by `id` across
/// processes — how a dist_job dispatch span points at its remote
/// execution span in the merged trace).
struct TraceEvent {
  const char* name = nullptr;
  const char* cat = nullptr;
  const char* arg_name = nullptr;  ///< nullptr: no numeric arg
  const char* str_arg = nullptr;   ///< nullptr: no "detail" string arg
  std::uint64_t ts_ns = 0;         ///< CLOCK_MONOTONIC nanoseconds
  std::uint64_t id = 0;            ///< async pairing id ('b'/'e' only)
  std::uint64_t arg = 0;
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  char phase = 'I';
};

namespace detail {
extern std::atomic<bool> g_trace_on;
}  // namespace detail

/// The one branch every disabled emit site pays.
inline bool trace_enabled() {
  return detail::g_trace_on.load(std::memory_order_relaxed);
}

/// Programmatic enable/disable (benches and tests; the env path is
/// CITROEN_TRACE). Enabling does not set an output path — in-memory
/// tracing with drain_trace() works without ever touching the disk.
void trace_force_enable(bool on);

/// Output file for flush_trace(); "" disables file output. CITROEN_TRACE=1
/// defaults this to citroen_trace.json; CITROEN_TRACE=<path> uses <path>.
void set_trace_path(std::string path);
std::string trace_path();

/// Copy `s` into a process-lifetime arena and return a stable pointer.
/// Repeated calls with the same contents return the same pointer.
const char* intern(std::string_view s);

/// Append one event to the calling thread's ring (no-op when disabled).
void emit(char phase, const char* name, const char* cat, std::uint64_t id = 0,
          const char* arg_name = nullptr, std::uint64_t arg = 0,
          const char* str_arg = nullptr);

/// RAII synchronous span. Both literals must outlive the span (string
/// literals or intern()ed strings).
class Span {
 public:
  Span(const char* name, const char* cat) {
    if (trace_enabled()) {
      name_ = name;
      cat_ = cat;
      emit('B', name, cat);
    }
  }
  ~Span() {
    if (name_) emit('E', name_, cat_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
};

/// Move all buffered events (sink first, then each thread's ring) out of
/// the process, clearing them. Caller must be quiescent: no other thread
/// may be emitting concurrently (between tuner rounds, between sandbox
/// jobs, or after joining workers — all our call sites).
std::vector<TraceEvent> drain_trace();

/// Append a foreign event (e.g. one a sandbox worker shipped over IPC)
/// directly to the global sink. The caller sets pid/tid/ts; name strings
/// must be intern()ed or literal.
void ingest_event(const TraceEvent& ev);

/// ts_ns + offset_ns with saturation at 0 and UINT64_MAX instead of
/// wrapping. Used to re-base remote timestamps into the local
/// CLOCK_MONOTONIC timeline: with `offset` = (remote clock − local
/// clock) measured during the Hello/HelloOk handshake, the local time
/// of a remote event is apply_clock_offset(ts, -offset). Monotone in
/// `ts_ns`, so re-based spans never end before they begin regardless of
/// skew sign or magnitude.
std::uint64_t apply_clock_offset(std::uint64_t ts_ns, std::int64_t offset_ns);

/// Events discarded because the global sink hit its capacity
/// (CITROEN_TRACE_SINK_CAP, default 1M events). Rings never overwrite:
/// a full ring spills to the sink, and the sink drops-newest at cap, so
/// a torn or half-overwritten event is impossible by construction.
std::uint64_t trace_dropped();

/// Test hook: shrink the sink so overflow accounting is exercisable.
void set_sink_capacity(std::size_t cap);

/// Spill every ring into the sink and, if a trace path is set, rewrite
/// the whole file (idempotent; safe to call repeatedly and right before
/// _Exit-style shutdown). The sink keeps its events, so each flush
/// writes the cumulative trace.
void flush_trace();

/// Sandbox workers call this immediately after fork: resets all lock
/// state (spinlocks only — fork-safe by construction), clears every
/// inherited ring/sink event, re-caches the pid, and clears the trace
/// path so a worker can never clobber the supervisor's file.
void reset_after_fork();

/// flush_trace() plus a metrics-file write — the one call _Exit-style
/// shutdown paths (watchdog kill, exit 99) make before dying, since
/// _Exit skips the atexit flushes.
void flush_all();

/// Serialize events as a Chrome trace_event JSON document.
std::string trace_json(const std::vector<TraceEvent>& events);

/// Check that 'B'/'E' events nest as a proper stack per (pid, tid),
/// that every 'b' has a matching 'e' per (pid, id), and that every
/// flow finish 'f' has a flow start 's' somewhere with the same id
/// (order-independent: merged multi-process traces interleave). Used by
/// the ext_observability gate and tests.
bool validate_span_nesting(const std::vector<TraceEvent>& events,
                           std::string* error);

/// Minimal strict JSON validator (objects/arrays/strings/numbers/
/// true/false/null) — enough to guarantee Perfetto and python json.tool
/// accept what we write, without shelling out.
bool json_well_formed(const std::string& text, std::string* error);

/// Escape a string for embedding in a JSON string literal (shared with
/// the metrics exporters).
std::string json_escape(std::string_view s);

}  // namespace citroen::obs

#define OBS_CONCAT_INNER(a, b) a##b
#define OBS_CONCAT(a, b) OBS_CONCAT_INNER(a, b)

/// Scoped synchronous span: OBS_SPAN("gp_fit", "gp");
#define OBS_SPAN(name, cat) \
  ::citroen::obs::Span OBS_CONCAT(obs_span_, __LINE__)(name, cat)

/// Instant event with optional numeric payload.
#define OBS_INSTANT(name, cat)                       \
  do {                                               \
    if (::citroen::obs::trace_enabled())             \
      ::citroen::obs::emit('I', name, cat);          \
  } while (0)

#define OBS_INSTANT_ARG(name, cat, arg_name, arg_value)               \
  do {                                                                \
    if (::citroen::obs::trace_enabled())                              \
      ::citroen::obs::emit('I', name, cat, 0, arg_name,               \
                           static_cast<std::uint64_t>(arg_value));    \
  } while (0)
