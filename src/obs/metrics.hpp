#pragma once
// Metrics registry: named counters, gauges and log2-bucketed histograms
// with Prometheus text-format and end-of-run JSON summary export.
//
// Gating mirrors the trace layer: `metrics_enabled()` is one relaxed
// atomic-bool load, and every OBS_* macro does its (one-time, per-site)
// registry lookup inside the enabled branch, so with CITROEN_METRICS
// unset no instrument allocates or touches shared state. Updates are
// lock-free: counters/gauges are single atomics, histograms stripe
// their buckets across per-thread shards merged only at snapshot time.
//
// Instruments come in two flavours: plain (`counter("name")`) and
// labeled (`counter("family", "tenant", "acme")`), where a family holds
// one child per label value under a single label key. Labeled children
// render as `family{tenant="acme"} 42` in Prometheus text and travel on
// the wire (sandbox/dist obs appendices) under the flattened wire name
// `family{tenant="acme"}` — `counter_from_wire()` re-splits that form,
// so remote deltas land back in the right label child.
//
// Exports are built from one coherent `MetricsSnapshot` taken under the
// registry lock: `prometheus_text()` and `json_summary()` are pure
// renderers over the same snapshot, so a plain counter and its label
// children can never disagree mid-merge across the two formats.
//
// Like traces, metrics never feed back into tuning state — they are
// written to side files only, preserving byte-identical bench output.

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace citroen::obs {

namespace detail {
extern std::atomic<bool> g_metrics_on;
}  // namespace detail

inline bool metrics_enabled() {
  return detail::g_metrics_on.load(std::memory_order_relaxed);
}

/// Programmatic enable (benches/tests; env path is CITROEN_METRICS).
void metrics_force_enable(bool on);

class Counter {
 public:
  void add(std::uint64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) {
    v_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
  }
  double value() const {
    return std::bit_cast<double>(v_.load(std::memory_order_relaxed));
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Log2-bucketed histogram over unsigned values. Bucket 0 holds exactly
/// 0; bucket k (1 <= k <= 64) holds [2^(k-1), 2^k). A value v lands in
/// bucket floor(log2(v)) + 1, so the lower edge of every bucket is
/// inclusive and the upper edge exclusive.
class Histogram {
 public:
  static constexpr int kBuckets = 65;
  static constexpr int kShards = 16;

  static int bucket_of(std::uint64_t v) {
    if (v == 0) return 0;
    return 64 - std::countl_zero(v);
  }
  /// Exclusive upper edge of bucket b (saturated for the last bucket).
  static std::uint64_t bucket_upper_edge(int b) {
    if (b <= 0) return 1;
    if (b >= 64) return ~std::uint64_t{0};
    return std::uint64_t{1} << b;
  }

  void record(std::uint64_t v);

  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::array<std::uint64_t, kBuckets> buckets{};
  };
  /// Merge all per-thread shards. Relaxed reads: concurrent recorders
  /// may or may not be included, but nothing tears.
  Snapshot snapshot() const;

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
  };
  Shard shards_[kShards];
};

/// One coherent view of every instrument, read in a single pass under
/// the registry lock. All exports render from this.
struct MetricsSnapshot {
  struct LabeledCounter {
    std::string family;
    std::string label_key;
    std::string label_value;
    std::uint64_t value = 0;
  };
  struct LabeledGauge {
    std::string family;
    std::string label_key;
    std::string label_value;
    double value = 0.0;
  };
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<LabeledCounter> labeled_counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<LabeledGauge> labeled_gauges;
  std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;
};

/// Process-wide registry. Instruments are created on first use and live
/// for the process lifetime, so references returned here never dangle
/// (the OBS_* macros cache them in function-local statics).
class Registry {
 public:
  static Registry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Labeled child of a counter/gauge family: one label key per family
  /// (the first key registered wins), one child per label value.
  Counter& counter(const std::string& family, const std::string& label_key,
                   const std::string& label_value);
  Gauge& gauge(const std::string& family, const std::string& label_key,
               const std::string& label_value);

  /// Flattened single-string form `family{key="value"}` used to ship
  /// labeled counters over the sandbox/dist obs appendix.
  static std::string wire_name(const std::string& family,
                               const std::string& label_key,
                               const std::string& label_value);
  /// Resolve a plain or flattened-labeled name back to its instrument.
  Counter& counter_from_wire(const std::string& wire_name);

  /// Name/value pairs for every counter (labeled children under their
  /// wire names), sorted by name (stable output).
  std::vector<std::pair<std::string, std::uint64_t>> counters_snapshot();

  /// One coherent pass over all instruments. `citroen_trace_dropped_total`
  /// is injected from the trace layer's drop counter so ring overflow is
  /// always visible in exports.
  MetricsSnapshot snapshot();

  /// Prometheus text exposition format (renders a fresh snapshot()).
  std::string prometheus_text();
  /// End-of-run JSON summary ({"counters":…,"gauges":…,"histograms":…}).
  std::string json_summary();
  /// Pure renderers over a caller-held snapshot (one scrape, one view).
  static std::string prometheus_text(const MetricsSnapshot& snap);
  static std::string json_summary(const MetricsSnapshot& snap);

  /// Fork-safe lock reset for sandbox workers (see obs::reset_after_fork).
  void reset_locks_after_fork();

 private:
  Registry() = default;
};

/// Write `json_summary()` to `json_path` and `prometheus_text()` to
/// `json_path + ".prom"`. No-op when json_path is empty.
void write_metrics_files(const std::string& json_path);

/// Path from CITROEN_METRICS=<path> ("" when unset or "1"); files are
/// written there at exit.
std::string metrics_path();
void set_metrics_path(std::string path);

}  // namespace citroen::obs

#define OBS_COUNTER_ADD(name, n)                                          \
  do {                                                                    \
    if (::citroen::obs::metrics_enabled()) {                              \
      static ::citroen::obs::Counter& obs_counter_ =                      \
          ::citroen::obs::Registry::instance().counter(name);             \
      obs_counter_.add(static_cast<std::uint64_t>(n));                    \
    }                                                                     \
  } while (0)

#define OBS_COUNTER_INC(name) OBS_COUNTER_ADD(name, 1)

#define OBS_GAUGE_SET(name, v)                                            \
  do {                                                                    \
    if (::citroen::obs::metrics_enabled()) {                              \
      static ::citroen::obs::Gauge& obs_gauge_ =                          \
          ::citroen::obs::Registry::instance().gauge(name);               \
      obs_gauge_.set(static_cast<double>(v));                             \
    }                                                                     \
  } while (0)

#define OBS_HISTO_RECORD(name, v)                                         \
  do {                                                                    \
    if (::citroen::obs::metrics_enabled()) {                              \
      static ::citroen::obs::Histogram& obs_histo_ =                      \
          ::citroen::obs::Registry::instance().histogram(name);           \
      obs_histo_.record(static_cast<std::uint64_t>(v));                   \
    }                                                                     \
  } while (0)
