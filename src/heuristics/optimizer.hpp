#pragma once
// Ask/tell interfaces for the heuristic optimisers used both as
// standalone black-box baselines (Ch. 4) and as acquisition-maximiser
// initialisers inside AIBO/CITROEN (Algorithm 1).
//
// Convention: objectives are MINIMISED. Callers with reward-style
// objectives negate before telling.

#include <string>
#include <vector>

#include "support/matrix.hpp"
#include "support/rng.hpp"

namespace citroen::heuristics {

/// Rectangular search domain.
struct Box {
  Vec lower;
  Vec upper;

  std::size_t dim() const { return lower.size(); }
  Vec clamp(Vec x) const;
  Vec sample(Rng& rng) const;
};

/// Continuous ask/tell optimiser (GA, CMA-ES, random).
class ContinuousOptimizer {
 public:
  virtual ~ContinuousOptimizer() = default;
  virtual std::string name() const = 0;

  /// Seed with an already-evaluated initial design.
  virtual void init(const std::vector<Vec>& xs, const Vec& ys) = 0;

  /// Propose k raw candidates (does not consume budget).
  virtual std::vector<Vec> ask(int k, Rng& rng) = 0;

  /// Report an evaluated sample (chosen by the caller, not necessarily
  /// one of ask()'s proposals — AIBO feeds back the AF-selected point).
  virtual void tell(const Vec& x, double y) = 0;
};

/// A compiler pass sequence encoded as pass-registry indices.
using Sequence = std::vector<int>;

/// Discrete ask/tell optimiser over pass sequences (DES, discrete GA,
/// random).
class SequenceOptimizer {
 public:
  virtual ~SequenceOptimizer() = default;
  virtual std::string name() const = 0;
  virtual void init(const std::vector<Sequence>& xs, const Vec& ys) = 0;
  virtual std::vector<Sequence> ask(int k, Rng& rng) = 0;
  virtual void tell(const Sequence& x, double y) = 0;
};

/// Mutation kit shared by the discrete optimisers (Sec. 5.3.5): point
/// substitution, insertion, deletion, adjacent swap, block reverse.
Sequence mutate_sequence(const Sequence& s, int num_passes, int max_len,
                         Rng& rng);

/// Uniform random sequence with length in [1, max_len].
Sequence random_sequence(int num_passes, int max_len, Rng& rng);

}  // namespace citroen::heuristics
