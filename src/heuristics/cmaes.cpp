#include "heuristics/cmaes.hpp"

#include <algorithm>
#include <cmath>

#include "persist/codec.hpp"

namespace citroen::heuristics {

CmaEs::CmaEs(Box box, CmaEsConfig config)
    : box_(std::move(box)), config_(config) {
  n_ = box_.dim();
  setup_constants();
  mean_.assign(n_, 0.0);
  for (std::size_t i = 0; i < n_; ++i)
    mean_[i] = 0.5 * (box_.lower[i] + box_.upper[i]);
  double extent = 0.0;
  for (std::size_t i = 0; i < n_; ++i)
    extent += box_.upper[i] - box_.lower[i];
  extent /= static_cast<double>(n_);
  sigma_ = config_.sigma0 * extent;
  c_ = Matrix::identity(n_);
  p_sigma_.assign(n_, 0.0);
  p_c_.assign(n_, 0.0);
  refresh_eigen();
}

void CmaEs::setup_constants() {
  const double n = static_cast<double>(n_);
  lambda_ = config_.lambda > 0
                ? config_.lambda
                : 4 + static_cast<int>(std::floor(3.0 * std::log(n)));
  mu_ = lambda_ / 2;
  weights_.resize(static_cast<std::size_t>(mu_));
  double sum = 0.0;
  for (int i = 0; i < mu_; ++i) {
    weights_[static_cast<std::size_t>(i)] =
        std::log((lambda_ + 1.0) / 2.0) - std::log(i + 1.0);
    sum += weights_[static_cast<std::size_t>(i)];
  }
  double sum_sq = 0.0;
  for (auto& w : weights_) {
    w /= sum;
    sum_sq += w * w;
  }
  mu_w_ = 1.0 / sum_sq;
  c_sigma_ = (mu_w_ + 2.0) / (n + mu_w_ + 5.0);
  d_sigma_ = 1.0 +
             2.0 * std::max(0.0, std::sqrt((mu_w_ - 1.0) / (n + 1.0)) - 1.0) +
             c_sigma_;
  c_c_ = (4.0 + mu_w_ / n) / (n + 4.0 + 2.0 * mu_w_ / n);
  c1_ = 2.0 / ((n + 1.3) * (n + 1.3) + mu_w_);
  c_mu_ = std::min(1.0 - c1_, 2.0 * (mu_w_ - 2.0 + 1.0 / mu_w_) /
                                  ((n + 2.0) * (n + 2.0) + mu_w_));
  chi_n_ = std::sqrt(n) * (1.0 - 1.0 / (4.0 * n) + 1.0 / (21.0 * n * n));
}

void CmaEs::refresh_eigen() {
  const EigenSym e = eigh_jacobi(c_);
  eig_vectors_ = e.vectors;
  eig_sqrt_.resize(n_);
  for (std::size_t i = 0; i < n_; ++i)
    eig_sqrt_[i] = std::sqrt(std::max(1e-20, e.values[i]));
  evals_since_eigen_ = 0;
}

Vec CmaEs::sample(Rng& rng) const {
  // x = mean + sigma * B * diag(D) * z
  Vec z(n_);
  for (auto& v : z) v = rng.normal();
  Vec bd(n_, 0.0);
  for (std::size_t i = 0; i < n_; ++i) {
    const double s = eig_sqrt_[i] * z[i];
    for (std::size_t r = 0; r < n_; ++r) bd[r] += eig_vectors_(r, i) * s;
  }
  Vec x = mean_;
  axpy(x, sigma_, bd);
  return box_.clamp(std::move(x));
}

Vec CmaEs::c_inv_sqrt_times(const Vec& v) const {
  // B diag(1/D) B^T v
  Vec t(n_, 0.0);
  for (std::size_t i = 0; i < n_; ++i) {
    double acc = 0.0;
    for (std::size_t r = 0; r < n_; ++r) acc += eig_vectors_(r, i) * v[r];
    t[i] = acc / eig_sqrt_[i];
  }
  Vec out(n_, 0.0);
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t r = 0; r < n_; ++r) out[r] += eig_vectors_(r, i) * t[i];
  }
  return out;
}

void CmaEs::init(const std::vector<Vec>& xs, const Vec& ys) {
  if (xs.empty()) return;
  std::size_t best = 0;
  for (std::size_t i = 1; i < xs.size(); ++i) {
    if (ys[i] < ys[best]) best = i;
  }
  mean_ = xs[best];
}

std::vector<Vec> CmaEs::ask(int k, Rng& rng) {
  std::vector<Vec> out;
  out.reserve(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) out.push_back(sample(rng));
  return out;
}

void CmaEs::tell(const Vec& x, double y) {
  buffer_.emplace_back(x, y);
  if (static_cast<int>(buffer_.size()) >= lambda_) update_distribution();
}

void CmaEs::update_distribution() {
  std::sort(buffer_.begin(), buffer_.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });

  const Vec old_mean = mean_;
  Vec new_mean(n_, 0.0);
  for (int i = 0; i < mu_; ++i)
    axpy(new_mean, weights_[static_cast<std::size_t>(i)],
         buffer_[static_cast<std::size_t>(i)].first);

  Vec delta(n_);
  for (std::size_t i = 0; i < n_; ++i)
    delta[i] = (new_mean[i] - old_mean[i]) / sigma_;

  // Step-size path (eq. 2.9) and update (eq. 2.10).
  const Vec cz = c_inv_sqrt_times(delta);
  const double cs_decay = 1.0 - c_sigma_;
  const double cs_scale = std::sqrt(c_sigma_ * (2.0 - c_sigma_) * mu_w_);
  for (std::size_t i = 0; i < n_; ++i)
    p_sigma_[i] = cs_decay * p_sigma_[i] + cs_scale * cz[i];
  const double ps_norm = norm2(p_sigma_);
  sigma_ *= std::exp((c_sigma_ / d_sigma_) * (ps_norm / chi_n_ - 1.0));
  sigma_ = std::clamp(sigma_, 1e-10, 1e6);

  ++generation_;
  const double hs_denom = std::sqrt(
      1.0 - std::pow(1.0 - c_sigma_, 2.0 * (generation_ + 1)));
  const bool h_sigma =
      ps_norm / hs_denom < (1.4 + 2.0 / (static_cast<double>(n_) + 1.0)) *
                               chi_n_;

  // Covariance path (eq. 2.11).
  const double cc_decay = 1.0 - c_c_;
  const double cc_scale = std::sqrt(c_c_ * (2.0 - c_c_) * mu_w_);
  for (std::size_t i = 0; i < n_; ++i)
    p_c_[i] = cc_decay * p_c_[i] + (h_sigma ? cc_scale * delta[i] : 0.0);

  // Covariance update (eq. 2.12): rank-one + rank-mu.
  const double old_scale =
      1.0 - c1_ - c_mu_ +
      (h_sigma ? 0.0 : c1_ * c_c_ * (2.0 - c_c_));
  for (std::size_t r = 0; r < n_; ++r) {
    for (std::size_t cidx = 0; cidx < n_; ++cidx) {
      double v = old_scale * c_(r, cidx) + c1_ * p_c_[r] * p_c_[cidx];
      for (int i = 0; i < mu_; ++i) {
        const auto& xi = buffer_[static_cast<std::size_t>(i)].first;
        const double yr = (xi[r] - old_mean[r]) / sigma_;
        const double yc = (xi[cidx] - old_mean[cidx]) / sigma_;
        v += c_mu_ * weights_[static_cast<std::size_t>(i)] * yr * yc;
      }
      c_(r, cidx) = v;
    }
  }
  mean_ = new_mean;
  buffer_.clear();

  // Lazy eigendecomposition refresh (standard CMA-ES bookkeeping).
  if (++evals_since_eigen_ >=
      std::max(1, static_cast<int>(n_) / 10)) {
    refresh_eigen();
  }
}

void CmaEs::save_state(persist::Writer& w) const {
  w.u64(n_);
  persist::put(w, mean_);
  w.f64(sigma_);
  persist::put(w, c_);
  persist::put(w, eig_vectors_);
  persist::put(w, eig_sqrt_);
  w.i32(evals_since_eigen_);
  persist::put(w, p_sigma_);
  persist::put(w, p_c_);
  w.i32(generation_);
  w.i32(lambda_);
  w.i32(mu_);
  persist::put(w, weights_);
  w.f64(mu_w_);
  w.f64(c_sigma_);
  w.f64(d_sigma_);
  w.f64(c_c_);
  w.f64(c1_);
  w.f64(c_mu_);
  w.f64(chi_n_);
  w.u64(buffer_.size());
  for (const auto& [x, y] : buffer_) {
    persist::put(w, x);
    w.f64(y);
  }
}

void CmaEs::load_state(persist::Reader& r) {
  n_ = static_cast<std::size_t>(r.u64());
  persist::get(r, mean_);
  sigma_ = r.f64();
  persist::get(r, c_);
  persist::get(r, eig_vectors_);
  persist::get(r, eig_sqrt_);
  evals_since_eigen_ = r.i32();
  persist::get(r, p_sigma_);
  persist::get(r, p_c_);
  generation_ = r.i32();
  lambda_ = r.i32();
  mu_ = r.i32();
  persist::get(r, weights_);
  mu_w_ = r.f64();
  c_sigma_ = r.f64();
  d_sigma_ = r.f64();
  c_c_ = r.f64();
  c1_ = r.f64();
  c_mu_ = r.f64();
  chi_n_ = r.f64();
  const std::uint64_t nbuf = r.u64();
  buffer_.clear();
  buffer_.reserve(nbuf);
  for (std::uint64_t i = 0; i < nbuf; ++i) {
    Vec x;
    persist::get(r, x);
    const double y = r.f64();
    buffer_.emplace_back(std::move(x), y);
  }
}

}  // namespace citroen::heuristics
