#pragma once
// Genetic algorithms: the continuous variant mirrors pymoo's defaults
// (tournament T=2, simulated binary crossover, polynomial mutation); the
// discrete variant operates on pass sequences with one-point crossover
// and the shared mutation kit.

#include <memory>

#include "heuristics/optimizer.hpp"

namespace citroen::heuristics {

struct GaConfig {
  int population = 50;
  double crossover_prob = 0.9;   ///< per mating pair
  double sbx_eta = 15.0;         ///< SBX distribution index
  double mutation_eta = 20.0;    ///< polynomial mutation index
  double var_swap_prob = 0.5;    ///< per-variable SBX exchange probability
};

class GaContinuous final : public ContinuousOptimizer {
 public:
  GaContinuous(Box box, GaConfig config = {});

  std::string name() const override { return "ga"; }
  void init(const std::vector<Vec>& xs, const Vec& ys) override;
  std::vector<Vec> ask(int k, Rng& rng) override;
  void tell(const Vec& x, double y) override;

  /// Mean pairwise distance of the population (Fig. 4.15 diversity).
  double population_diversity() const;

  /// Checkpoint access (crash-safe resume).
  const std::vector<std::pair<Vec, double>>& population() const {
    return pop_;
  }
  void set_population(std::vector<std::pair<Vec, double>> pop) {
    pop_ = std::move(pop);
  }

 private:
  Vec make_child(Rng& rng);

  Box box_;
  GaConfig config_;
  std::vector<std::pair<Vec, double>> pop_;  ///< (x, objective)
};

struct DiscreteGaConfig {
  int population = 50;
  double crossover_prob = 0.9;
  int mutations_per_child = 2;
};

class GaSequence final : public SequenceOptimizer {
 public:
  GaSequence(int num_passes, int max_len, DiscreteGaConfig config = {});

  std::string name() const override { return "ga-seq"; }
  void init(const std::vector<Sequence>& xs, const Vec& ys) override;
  std::vector<Sequence> ask(int k, Rng& rng) override;
  void tell(const Sequence& x, double y) override;

  /// Checkpoint access (crash-safe resume).
  const std::vector<std::pair<Sequence, double>>& population() const {
    return pop_;
  }
  void set_population(std::vector<std::pair<Sequence, double>> pop) {
    pop_ = std::move(pop);
  }

 private:
  int num_passes_;
  int max_len_;
  DiscreteGaConfig config_;
  std::vector<std::pair<Sequence, double>> pop_;
};

}  // namespace citroen::heuristics
