#include "heuristics/optimizer.hpp"

#include <algorithm>

namespace citroen::heuristics {

Vec Box::clamp(Vec x) const {
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = std::clamp(x[i], lower[i], upper[i]);
  return x;
}

Vec Box::sample(Rng& rng) const {
  Vec x(dim());
  for (std::size_t i = 0; i < dim(); ++i)
    x[i] = rng.uniform(lower[i], upper[i]);
  return x;
}

Sequence mutate_sequence(const Sequence& s, int num_passes, int max_len,
                         Rng& rng) {
  Sequence out = s;
  const int kind = static_cast<int>(rng.uniform_index(5));
  switch (kind) {
    case 0: {  // point substitution
      if (out.empty()) break;
      out[rng.uniform_index(out.size())] =
          static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(
              num_passes)));
      break;
    }
    case 1: {  // insertion
      if (static_cast<int>(out.size()) >= max_len) break;
      const std::size_t at = rng.uniform_index(out.size() + 1);
      out.insert(out.begin() + static_cast<std::ptrdiff_t>(at),
                 static_cast<int>(rng.uniform_index(
                     static_cast<std::uint64_t>(num_passes))));
      break;
    }
    case 2: {  // deletion
      if (out.size() <= 1) break;
      out.erase(out.begin() +
                static_cast<std::ptrdiff_t>(rng.uniform_index(out.size())));
      break;
    }
    case 3: {  // adjacent swap
      if (out.size() < 2) break;
      const std::size_t at = rng.uniform_index(out.size() - 1);
      std::swap(out[at], out[at + 1]);
      break;
    }
    case 4: {  // block reverse
      if (out.size() < 3) break;
      std::size_t a = rng.uniform_index(out.size());
      std::size_t b = rng.uniform_index(out.size());
      if (a > b) std::swap(a, b);
      std::reverse(out.begin() + static_cast<std::ptrdiff_t>(a),
                   out.begin() + static_cast<std::ptrdiff_t>(b) + 1);
      break;
    }
    default:
      break;
  }
  return out;
}

Sequence random_sequence(int num_passes, int max_len, Rng& rng) {
  const std::size_t len = 1 + rng.uniform_index(static_cast<std::uint64_t>(
                                  max_len));
  Sequence s(len);
  for (auto& p : s)
    p = static_cast<int>(
        rng.uniform_index(static_cast<std::uint64_t>(num_passes)));
  return s;
}

}  // namespace citroen::heuristics
