#include "heuristics/des.hpp"

namespace citroen::heuristics {

DesSequence::DesSequence(int num_passes, int max_len, DesConfig config)
    : num_passes_(num_passes), max_len_(max_len), config_(config) {}

void DesSequence::init(const std::vector<Sequence>& xs, const Vec& ys) {
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (ys[i] < best_y_) {
      best_y_ = ys[i];
      best_ = xs[i];
    }
  }
}

std::vector<Sequence> DesSequence::ask(int k, Rng& rng) {
  std::vector<Sequence> out;
  out.reserve(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    if (best_.empty()) {
      out.push_back(random_sequence(num_passes_, max_len_, rng));
      continue;
    }
    Sequence child = best_;
    for (int mu = 0; mu < config_.mutations_per_child; ++mu)
      child = mutate_sequence(child, num_passes_, max_len_, rng);
    out.push_back(std::move(child));
  }
  return out;
}

void DesSequence::tell(const Sequence& x, double y) {
  if (y < best_y_ || best_.empty()) {
    best_y_ = y;
    best_ = x;
  }
}

}  // namespace citroen::heuristics
