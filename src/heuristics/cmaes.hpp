#pragma once
// Covariance-matrix-adaptation evolution strategy (full rank-mu update
// with cumulative step-size adaptation, equations 2.7-2.12 of the thesis).
// Works in ask/tell form: samples accumulate into a generation buffer and
// the distribution updates once lambda samples have been told.

#include "heuristics/optimizer.hpp"

namespace citroen::persist {
class Writer;  // persist/codec.hpp
class Reader;
}

namespace citroen::heuristics {

struct CmaEsConfig {
  double sigma0 = 0.2;  ///< initial step size, relative to the box extent
  int lambda = 0;       ///< population size; 0 = 4 + floor(3 ln n)
};

class CmaEs final : public ContinuousOptimizer {
 public:
  CmaEs(Box box, CmaEsConfig config = {});

  std::string name() const override { return "cma-es"; }
  void init(const std::vector<Vec>& xs, const Vec& ys) override;
  std::vector<Vec> ask(int k, Rng& rng) override;
  void tell(const Vec& x, double y) override;

  double sigma() const { return sigma_; }

  /// Checkpoint/restore the full distribution state (mean, covariance,
  /// eigendecomposition, evolution paths, strategy constants and the
  /// partial generation buffer) bit-for-bit, so a restored optimiser
  /// continues byte-identically. The box and config come from the ctor.
  void save_state(persist::Writer& w) const;
  void load_state(persist::Reader& r);

 private:
  void setup_constants();
  void update_distribution();
  void refresh_eigen();
  Vec sample(Rng& rng) const;
  Vec c_inv_sqrt_times(const Vec& v) const;

  Box box_;
  CmaEsConfig config_;
  std::size_t n_ = 0;

  // Distribution state.
  Vec mean_;
  double sigma_ = 0.2;
  Matrix c_;
  Matrix eig_vectors_;
  Vec eig_sqrt_;        ///< sqrt of eigenvalues (D)
  int evals_since_eigen_ = 0;

  // Evolution paths.
  Vec p_sigma_, p_c_;
  int generation_ = 0;

  // Strategy constants.
  int lambda_ = 0, mu_ = 0;
  Vec weights_;
  double mu_w_ = 0.0, c_sigma_ = 0.0, d_sigma_ = 0.0, c_c_ = 0.0, c1_ = 0.0,
         c_mu_ = 0.0, chi_n_ = 0.0;

  // Generation buffer of told samples.
  std::vector<std::pair<Vec, double>> buffer_;
};

}  // namespace citroen::heuristics
