#pragma once
// Discrete 1+lambda evolution strategy over pass sequences (Sec. 2.2.3 /
// 5.3.5): keep the incumbent best sequence, propose lambda mutants, adopt
// on improvement. Also provides the pure-random ask/tell optimisers used
// as AIBO's exploration member.

#include "heuristics/optimizer.hpp"

namespace citroen::heuristics {

struct DesConfig {
  int lambda = 8;              ///< mutants per generation
  int mutations_per_child = 1; ///< mutation strength
};

class DesSequence final : public SequenceOptimizer {
 public:
  DesSequence(int num_passes, int max_len, DesConfig config = {});

  std::string name() const override { return "des"; }
  void init(const std::vector<Sequence>& xs, const Vec& ys) override;
  std::vector<Sequence> ask(int k, Rng& rng) override;
  void tell(const Sequence& x, double y) override;

  const Sequence& incumbent() const { return best_; }
  double incumbent_value() const { return best_y_; }

  /// Restore checkpointed state (crash-safe resume).
  void set_incumbent(Sequence best, double y) {
    best_ = std::move(best);
    best_y_ = y;
  }

 private:
  int num_passes_;
  int max_len_;
  DesConfig config_;
  Sequence best_;
  double best_y_ = 1e300;
};

/// Uniform-random continuous proposals (AIBO's "random" initialiser).
class RandomContinuous final : public ContinuousOptimizer {
 public:
  explicit RandomContinuous(Box box) : box_(std::move(box)) {}
  std::string name() const override { return "random"; }
  void init(const std::vector<Vec>&, const Vec&) override {}
  std::vector<Vec> ask(int k, Rng& rng) override {
    std::vector<Vec> out;
    out.reserve(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i) out.push_back(box_.sample(rng));
    return out;
  }
  void tell(const Vec&, double) override {}

 private:
  Box box_;
};

/// Uniform-random sequence proposals.
class RandomSequence final : public SequenceOptimizer {
 public:
  RandomSequence(int num_passes, int max_len)
      : num_passes_(num_passes), max_len_(max_len) {}
  std::string name() const override { return "random-seq"; }
  void init(const std::vector<Sequence>&, const Vec&) override {}
  std::vector<Sequence> ask(int k, Rng& rng) override {
    std::vector<Sequence> out;
    out.reserve(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i)
      out.push_back(random_sequence(num_passes_, max_len_, rng));
    return out;
  }
  void tell(const Sequence&, double) override {}

 private:
  int num_passes_;
  int max_len_;
};

}  // namespace citroen::heuristics
