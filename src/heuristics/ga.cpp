#include "heuristics/ga.hpp"

#include <algorithm>
#include <cmath>

namespace citroen::heuristics {

namespace {

/// Index of the tournament winner (lower objective wins).
template <typename Pop>
std::size_t tournament(const Pop& pop, Rng& rng) {
  const std::size_t a = rng.uniform_index(pop.size());
  const std::size_t b = rng.uniform_index(pop.size());
  return pop[a].second <= pop[b].second ? a : b;
}

}  // namespace

GaContinuous::GaContinuous(Box box, GaConfig config)
    : box_(std::move(box)), config_(config) {}

void GaContinuous::init(const std::vector<Vec>& xs, const Vec& ys) {
  pop_.clear();
  for (std::size_t i = 0; i < xs.size(); ++i) pop_.emplace_back(xs[i], ys[i]);
  std::sort(pop_.begin(), pop_.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  if (pop_.size() > static_cast<std::size_t>(config_.population))
    pop_.resize(static_cast<std::size_t>(config_.population));
}

Vec GaContinuous::make_child(Rng& rng) {
  const std::size_t d = box_.dim();
  const Vec& p1 = pop_[tournament(pop_, rng)].first;
  const Vec& p2 = pop_[tournament(pop_, rng)].first;
  Vec child = p1;

  // Simulated binary crossover.
  if (rng.bernoulli(config_.crossover_prob)) {
    for (std::size_t i = 0; i < d; ++i) {
      if (!rng.bernoulli(config_.var_swap_prob)) continue;
      const double u = rng.uniform();
      const double beta =
          u <= 0.5 ? std::pow(2.0 * u, 1.0 / (config_.sbx_eta + 1.0))
                   : std::pow(1.0 / (2.0 * (1.0 - u)),
                              1.0 / (config_.sbx_eta + 1.0));
      child[i] = 0.5 * ((1.0 + beta) * p1[i] + (1.0 - beta) * p2[i]);
    }
  }

  // Polynomial mutation with probability 1/d per variable.
  const double pm = 1.0 / static_cast<double>(d);
  for (std::size_t i = 0; i < d; ++i) {
    if (!rng.bernoulli(pm)) continue;
    const double range = box_.upper[i] - box_.lower[i];
    const double u = rng.uniform();
    const double delta =
        u < 0.5 ? std::pow(2.0 * u, 1.0 / (config_.mutation_eta + 1.0)) - 1.0
                : 1.0 - std::pow(2.0 * (1.0 - u),
                                 1.0 / (config_.mutation_eta + 1.0));
    child[i] += delta * range;
  }
  return box_.clamp(std::move(child));
}

std::vector<Vec> GaContinuous::ask(int k, Rng& rng) {
  std::vector<Vec> out;
  out.reserve(static_cast<std::size_t>(k));
  if (pop_.empty()) {
    for (int i = 0; i < k; ++i) out.push_back(box_.sample(rng));
    return out;
  }
  for (int i = 0; i < k; ++i) out.push_back(make_child(rng));
  return out;
}

void GaContinuous::tell(const Vec& x, double y) {
  pop_.emplace_back(x, y);
  std::sort(pop_.begin(), pop_.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  if (pop_.size() > static_cast<std::size_t>(config_.population))
    pop_.resize(static_cast<std::size_t>(config_.population));
}

double GaContinuous::population_diversity() const {
  if (pop_.size() < 2) return 0.0;
  double total = 0.0;
  int pairs = 0;
  for (std::size_t i = 0; i < pop_.size(); ++i) {
    for (std::size_t j = i + 1; j < pop_.size(); ++j) {
      double d2 = 0.0;
      for (std::size_t k = 0; k < pop_[i].first.size(); ++k) {
        const double t = pop_[i].first[k] - pop_[j].first[k];
        d2 += t * t;
      }
      total += std::sqrt(d2);
      ++pairs;
    }
  }
  return total / pairs;
}

GaSequence::GaSequence(int num_passes, int max_len, DiscreteGaConfig config)
    : num_passes_(num_passes), max_len_(max_len), config_(config) {}

void GaSequence::init(const std::vector<Sequence>& xs, const Vec& ys) {
  pop_.clear();
  for (std::size_t i = 0; i < xs.size(); ++i) pop_.emplace_back(xs[i], ys[i]);
  std::sort(pop_.begin(), pop_.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  if (pop_.size() > static_cast<std::size_t>(config_.population))
    pop_.resize(static_cast<std::size_t>(config_.population));
}

std::vector<Sequence> GaSequence::ask(int k, Rng& rng) {
  std::vector<Sequence> out;
  out.reserve(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    if (pop_.empty()) {
      out.push_back(random_sequence(num_passes_, max_len_, rng));
      continue;
    }
    const Sequence& p1 = pop_[tournament(pop_, rng)].first;
    const Sequence& p2 = pop_[tournament(pop_, rng)].first;
    Sequence child;
    if (rng.bernoulli(config_.crossover_prob) && !p1.empty() && !p2.empty()) {
      // One-point crossover on sequences of (possibly) different lengths.
      const std::size_t c1 = rng.uniform_index(p1.size() + 1);
      const std::size_t c2 = rng.uniform_index(p2.size() + 1);
      child.assign(p1.begin(), p1.begin() + static_cast<std::ptrdiff_t>(c1));
      child.insert(child.end(),
                   p2.begin() + static_cast<std::ptrdiff_t>(c2), p2.end());
      if (static_cast<int>(child.size()) > max_len_)
        child.resize(static_cast<std::size_t>(max_len_));
      if (child.empty()) child = p1;
    } else {
      child = p1;
    }
    for (int mu = 0; mu < config_.mutations_per_child; ++mu)
      child = mutate_sequence(child, num_passes_, max_len_, rng);
    out.push_back(std::move(child));
  }
  return out;
}

void GaSequence::tell(const Sequence& x, double y) {
  pop_.emplace_back(x, y);
  std::sort(pop_.begin(), pop_.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  if (pop_.size() > static_cast<std::size_t>(config_.population))
    pop_.resize(static_cast<std::size_t>(config_.population));
}

}  // namespace citroen::heuristics
