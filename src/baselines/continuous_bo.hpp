#pragma once
// Continuous high-dimensional BO baselines for the Ch. 4 experiments:
//   - TuRBO-style trust-region local BO (success/failure-driven region
//     resizing, candidates sampled inside the region, UCB selection),
//   - HeSBO-style random-embedding BO (hash each input dimension to one
//     of d_e embedding dimensions with a random sign; BO in the low-
//     dimensional cube),
//   - plain black-box GA / CMA-ES loops (model-free references).
// All minimise and return the best-so-far curve, like aibo::Aibo.

#include <functional>

#include "heuristics/optimizer.hpp"
#include "support/matrix.hpp"

namespace citroen::baselines {

using Objective = std::function<double(const Vec&)>;

struct ContinuousTrace {
  Vec best_curve;
  double best() const { return best_curve.empty() ? 1e300 : best_curve.back(); }
};

struct TurboConfig {
  int init_samples = 20;
  int candidates = 100;     ///< per iteration, inside the trust region
  double length_init = 0.8; ///< relative to the unit cube
  double length_min = 1.0 / 128.0;
  int success_tol = 3;
  int failure_tol = 5;
  int gp_fit_steps = 10;
};

ContinuousTrace run_turbo(const heuristics::Box& box, const Objective& f,
                          int budget, std::uint64_t seed,
                          const TurboConfig& config = {});

struct HesboConfig {
  int target_dim = 10;
  int init_samples = 20;
  int candidates = 100;
  int gp_fit_steps = 10;
};

ContinuousTrace run_hesbo(const heuristics::Box& box, const Objective& f,
                          int budget, std::uint64_t seed,
                          const HesboConfig& config = {});

ContinuousTrace run_cmaes_blackbox(const heuristics::Box& box,
                                   const Objective& f, int budget,
                                   std::uint64_t seed);

ContinuousTrace run_ga_blackbox(const heuristics::Box& box,
                                const Objective& f, int budget,
                                std::uint64_t seed);

ContinuousTrace run_random_blackbox(const heuristics::Box& box,
                                    const Objective& f, int budget,
                                    std::uint64_t seed);

}  // namespace citroen::baselines
