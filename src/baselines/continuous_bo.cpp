#include "baselines/continuous_bo.hpp"

#include <algorithm>
#include <cmath>

#include "gp/gp.hpp"
#include "heuristics/cmaes.hpp"
#include "heuristics/ga.hpp"
#include "support/transforms.hpp"

namespace citroen::baselines {

using heuristics::Box;

namespace {

struct Recorder {
  Vec curve;
  double best = 1e300;
  void add(double y) {
    best = std::min(best, y);
    curve.push_back(best);
  }
};

}  // namespace

ContinuousTrace run_turbo(const Box& box, const Objective& f, int budget,
                          std::uint64_t seed, const TurboConfig& config) {
  const std::size_t d = box.dim();
  Rng rng(seed);
  Recorder rec;
  InputScaler scaler(box.lower, box.upper);

  std::vector<Vec> ux;  // unit-cube points
  Vec ys;
  auto eval_unit = [&](const Vec& u) {
    const double y = f(scaler.from_unit(u));
    rec.add(y);
    ux.push_back(u);
    ys.push_back(y);
    return y;
  };

  Box unit{Vec(d, 0.0), Vec(d, 1.0)};
  for (int i = 0; i < std::min(config.init_samples, budget); ++i)
    eval_unit(unit.sample(rng));

  double length = config.length_init;
  int successes = 0, failures = 0;
  gp::GpConfig gc;
  gc.fit_steps = config.gp_fit_steps;
  gp::GaussianProcess model(d, gc);

  while (static_cast<int>(ys.size()) < budget) {
    // Restart the trust region when it collapses.
    if (length < config.length_min) {
      length = config.length_init;
      successes = failures = 0;
    }
    // Fit on the points inside the region around the incumbent.
    std::size_t best_i = 0;
    for (std::size_t i = 1; i < ys.size(); ++i) {
      if (ys[i] < ys[best_i]) best_i = i;
    }
    const Vec& centre = ux[best_i];
    std::vector<Vec> in_x;
    Vec in_y;
    for (std::size_t i = 0; i < ux.size(); ++i) {
      bool inside = true;
      for (std::size_t k = 0; k < d; ++k) {
        if (std::abs(ux[i][k] - centre[k]) > length) inside = false;
      }
      if (inside) {
        in_x.push_back(ux[i]);
        in_y.push_back(ys[i]);
      }
    }
    if (in_x.size() < 4) {
      in_x = ux;
      in_y = ys;
    }
    YeoJohnson yj;
    yj.fit(in_y);
    model.fit(in_x, yj.transform(in_y));

    // Candidates: coordinate-sparse perturbations inside the region
    // (TuRBO's raasp-style proposal), scored by UCB.
    Vec best_cand;
    double best_score = -1e300;
    const double p_perturb =
        std::min(1.0, 20.0 / static_cast<double>(d));
    for (int c = 0; c < config.candidates; ++c) {
      Vec cand = centre;
      bool any = false;
      for (std::size_t k = 0; k < d; ++k) {
        if (rng.bernoulli(p_perturb)) {
          cand[k] = std::clamp(
              centre[k] + length * rng.uniform(-1.0, 1.0), 0.0, 1.0);
          any = true;
        }
      }
      if (!any) {
        const std::size_t k = rng.uniform_index(d);
        cand[k] =
            std::clamp(centre[k] + length * rng.uniform(-1.0, 1.0), 0.0, 1.0);
      }
      const auto post = model.predict(cand);
      const double score = -post.mean + 1.4 * std::sqrt(post.var);
      if (score > best_score) {
        best_score = score;
        best_cand = std::move(cand);
      }
    }
    const double y = eval_unit(best_cand);
    if (y < ys[best_i]) {
      if (++successes >= config.success_tol) {
        length = std::min(0.8, 2.0 * length);
        successes = 0;
      }
      failures = 0;
    } else {
      if (++failures >= config.failure_tol) {
        length *= 0.5;
        failures = 0;
      }
      successes = 0;
    }
  }
  return {rec.curve};
}

ContinuousTrace run_hesbo(const Box& box, const Objective& f, int budget,
                          std::uint64_t seed, const HesboConfig& config) {
  const std::size_t d = box.dim();
  const std::size_t de =
      std::min<std::size_t>(static_cast<std::size_t>(config.target_dim), d);
  Rng rng(seed);
  Recorder rec;

  // Hash embedding: each high dimension maps to one low dimension with a
  // random sign (Nayebi et al.'s count-sketch projection).
  std::vector<std::size_t> slot(d);
  Vec sign(d);
  for (std::size_t i = 0; i < d; ++i) {
    slot[i] = rng.uniform_index(de);
    sign[i] = rng.bernoulli(0.5) ? 1.0 : -1.0;
  }
  auto lift = [&](const Vec& z) {
    Vec x(d);
    for (std::size_t i = 0; i < d; ++i) {
      const double u = 0.5 * (1.0 + sign[i] * z[slot[i]]);  // [-1,1] -> [0,1]
      x[i] = box.lower[i] + u * (box.upper[i] - box.lower[i]);
    }
    return x;
  };

  Box low{Vec(de, -1.0), Vec(de, 1.0)};
  std::vector<Vec> zs;
  Vec ys;
  auto eval_low = [&](const Vec& z) {
    const double y = f(lift(z));
    rec.add(y);
    zs.push_back(z);
    ys.push_back(y);
    return y;
  };
  for (int i = 0; i < std::min(config.init_samples, budget); ++i)
    eval_low(low.sample(rng));

  gp::GpConfig gc;
  gc.fit_steps = config.gp_fit_steps;
  gp::GaussianProcess model(de, gc);
  while (static_cast<int>(ys.size()) < budget) {
    // Map to [0,1] for the GP.
    std::vector<Vec> uz;
    for (const auto& z : zs) {
      Vec u(de);
      for (std::size_t k = 0; k < de; ++k) u[k] = 0.5 * (z[k] + 1.0);
      uz.push_back(std::move(u));
    }
    YeoJohnson yj;
    yj.fit(ys);
    model.fit(uz, yj.transform(ys));
    Vec best_z;
    double best_score = -1e300;
    for (int c = 0; c < config.candidates; ++c) {
      Vec z = low.sample(rng);
      Vec u(de);
      for (std::size_t k = 0; k < de; ++k) u[k] = 0.5 * (z[k] + 1.0);
      const auto post = model.predict(u);
      const double score = -post.mean + 1.4 * std::sqrt(post.var);
      if (score > best_score) {
        best_score = score;
        best_z = std::move(z);
      }
    }
    eval_low(best_z);
  }
  return {rec.curve};
}

ContinuousTrace run_cmaes_blackbox(const Box& box, const Objective& f,
                                   int budget, std::uint64_t seed) {
  Rng rng(seed);
  Recorder rec;
  heuristics::CmaEs es(box);
  while (static_cast<int>(rec.curve.size()) < budget) {
    const auto batch =
        es.ask(std::min(8, budget - static_cast<int>(rec.curve.size())), rng);
    for (const auto& x : batch) {
      const double y = f(x);
      rec.add(y);
      es.tell(x, y);
    }
  }
  return {rec.curve};
}

ContinuousTrace run_ga_blackbox(const Box& box, const Objective& f,
                                int budget, std::uint64_t seed) {
  Rng rng(seed);
  Recorder rec;
  heuristics::GaContinuous ga(box);
  // Seed population.
  std::vector<Vec> xs;
  Vec ys;
  for (int i = 0; i < std::min(20, budget); ++i) {
    Vec x = box.sample(rng);
    const double y = f(x);
    rec.add(y);
    ys.push_back(y);
    xs.push_back(std::move(x));
  }
  ga.init(xs, ys);
  while (static_cast<int>(rec.curve.size()) < budget) {
    const auto batch =
        ga.ask(std::min(8, budget - static_cast<int>(rec.curve.size())), rng);
    for (const auto& x : batch) {
      const double y = f(x);
      rec.add(y);
      ga.tell(x, y);
    }
  }
  return {rec.curve};
}

ContinuousTrace run_random_blackbox(const Box& box, const Objective& f,
                                    int budget, std::uint64_t seed) {
  Rng rng(seed);
  Recorder rec;
  for (int i = 0; i < budget; ++i) rec.add(f(box.sample(rng)));
  return {rec.curve};
}

}  // namespace citroen::baselines
