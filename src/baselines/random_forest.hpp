#pragma once
// Regression random forest (bootstrap + random feature subsets) — the
// surrogate BOCA uses instead of a GP. Prediction variance across trees
// provides the uncertainty for its acquisition function.

#include <memory>
#include <vector>

#include "support/matrix.hpp"
#include "support/rng.hpp"

namespace citroen::baselines {

struct ForestConfig {
  int num_trees = 24;
  int max_depth = 10;
  int min_leaf = 3;
  double feature_fraction = 0.5;  ///< features tried per split
};

class RandomForest {
 public:
  explicit RandomForest(ForestConfig config = {}) : config_(config) {}

  void fit(const std::vector<Vec>& x, const Vec& y, Rng& rng);

  /// Mean and across-tree variance.
  std::pair<double, double> predict(const Vec& x) const;

 private:
  struct Node {
    int feature = -1;       ///< -1: leaf
    double threshold = 0.0;
    double value = 0.0;     ///< leaf prediction
    int left = -1, right = -1;
  };
  struct Tree {
    std::vector<Node> nodes;
    double predict(const Vec& x) const;
  };

  void grow(Tree& tree, int node, const std::vector<Vec>& x, const Vec& y,
            std::vector<int>& idx, int lo, int hi, int depth, Rng& rng);

  ForestConfig config_;
  std::vector<Tree> trees_;
};

}  // namespace citroen::baselines
