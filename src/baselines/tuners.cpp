#include "baselines/tuners.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "baselines/random_forest.hpp"
#include "citroen/features.hpp"
#include "heuristics/des.hpp"
#include "heuristics/ga.hpp"
#include "passes/pass.hpp"
#include "persist/codec.hpp"

namespace citroen::baselines {

using heuristics::Sequence;

void put(persist::Writer& w, const TuneTrace& t) {
  w.str(t.tuner);
  w.f64(t.best_speedup);
  sim::put(w, t.best_assignment);
  persist::put(w, t.speedup_curve);
  w.i32(t.invalid);
  persist::put(w, t.failure_counts);
  w.i32(t.quarantined_skipped);
}

void get(persist::Reader& r, TuneTrace& out) {
  out = TuneTrace{};
  out.tuner = r.str();
  out.best_speedup = r.f64();
  sim::get(r, out.best_assignment);
  persist::get(r, out.speedup_curve);
  out.invalid = r.i32();
  persist::get(r, out.failure_counts);
  out.quarantined_skipped = r.i32();
}

namespace {

struct Session {
  sim::Evaluator& eval;
  PhaseTunerConfig config;
  std::vector<std::string> modules;
  std::vector<std::string> space;
  TuneTrace trace;
  int used = 0;

  Session(sim::Evaluator& e, const PhaseTunerConfig& c)
      : eval(e), config(c) {
    space = c.pass_space.empty()
                ? passes::PassRegistry::instance().pass_names()
                : c.pass_space;
    modules =
        select_hot_modules(e, c.hot_threshold, c.max_hot_modules);
  }

  int num_passes() const { return static_cast<int>(space.size()); }

  /// The whole-program assignment a sequence denotes: the same pass
  /// order applied to every tuned module.
  sim::SequenceAssignment assignment(const Sequence& s) const {
    sim::SequenceAssignment a;
    std::vector<std::string> names;
    names.reserve(s.size());
    for (int p : s) names.push_back(space[static_cast<std::size_t>(p)]);
    for (const auto& m : modules) a[m] = names;
    return a;
  }

  /// Warm the evaluator's memo caches for an upcoming chunk of
  /// candidates. Purely a performance hint: replaying `measure` over the
  /// chunk afterwards yields bit-identical traces at any thread count.
  void prefetch(const std::vector<Sequence>& chunk) {
    std::vector<sim::SequenceAssignment> assigns;
    assigns.reserve(chunk.size());
    for (const auto& c : chunk) assigns.push_back(assignment(c));
    eval.prefetch(assigns, /*with_measure=*/true);
  }

  /// Measure one sequence applied to every tuned module. Returns the
  /// normalised runtime y (cycles / o3; invalid builds = 4.0).
  double measure(const Sequence& s) {
    const sim::SequenceAssignment a = assignment(s);
    // A quarantined signature is a known deterministic failure: learn
    // "bad" for free instead of burning an evaluation on it.
    if (eval.is_quarantined(a)) {
      ++trace.quarantined_skipped;
      return 4.0;
    }
    const auto out = eval.evaluate(a);
    double y;
    if (!out.valid) {
      ++trace.invalid;
      ++trace.failure_counts[sim::failure_kind_name(out.failure)];
      y = 4.0;
    } else {
      y = 1.0 / out.speedup;
    }
    if (!out.cache_hit) {
      ++used;
      trace.speedup_curve.push_back(std::max(
          trace.speedup_curve.empty() ? 0.0 : trace.speedup_curve.back(),
          1.0 / y));
    }
    if (out.valid && y < best_y) {
      best_y = y;
      trace.best_assignment = a;
    }
    return y;
  }

  double best_y = 1e300;  ///< best observed normalised runtime

  bool done() const { return used >= config.budget; }

  TuneTrace finish(std::string name) {
    trace.tuner = std::move(name);
    trace.best_speedup =
        trace.speedup_curve.empty() ? 0.0 : trace.speedup_curve.back();
    return trace;
  }
};

/// Common state every baseline shares: the session (trace + budget
/// accounting), the RNG stream and the attempt safety valve.
class BaseTuner : public ResumablePhaseTuner {
 public:
  BaseTuner(std::string name, sim::Evaluator& e, const PhaseTunerConfig& c)
      : name_(std::move(name)), s_(e, c), rng_(c.seed) {}

  const std::string& name() const override { return name_; }
  TuneTrace finish() override { return s_.finish(name_); }

  void save_state(persist::Writer& w) const override {
    put(w, s_.trace);
    w.i32(s_.used);
    w.f64(s_.best_y);
    persist::put(w, rng_);
    w.i32(attempts_);
    save_extra(w);
  }

  void load_state(persist::Reader& r) override {
    get(r, s_.trace);
    s_.used = r.i32();
    s_.best_y = r.f64();
    persist::get(r, rng_);
    attempts_ = r.i32();
    load_extra(r);
  }

 protected:
  virtual void save_extra(persist::Writer&) const {}
  virtual void load_extra(persist::Reader&) {}

  int attempt_limit() const { return s_.config.budget * 20; }

  std::string name_;
  Session s_;
  Rng rng_;
  int attempts_ = 0;
};

class RandomTuner final : public BaseTuner {
 public:
  using BaseTuner::BaseTuner;

  // One chunk of candidates per step, generated up-front so the
  // evaluator can compile and measure the whole chunk concurrently
  // before the serial replay. The replay order (and the RNG stream:
  // `measure` consumes no randomness) is identical to generating one
  // candidate at a time.
  bool step() override {
    if (s_.done() || attempts_ >= attempt_limit()) return false;
    std::vector<Sequence> chunk;
    const int n = std::min(16, attempt_limit() - attempts_);
    chunk.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      chunk.push_back(heuristics::random_sequence(
          s_.num_passes(), s_.config.max_seq_len, rng_));
    attempts_ += n;
    s_.prefetch(chunk);
    for (const auto& c : chunk) {
      if (s_.done()) break;
      s_.measure(c);
    }
    return true;
  }
};

class GaTuner final : public BaseTuner {
 public:
  GaTuner(std::string name, sim::Evaluator& e, const PhaseTunerConfig& c)
      : BaseTuner(std::move(name), e, c),
        ga_(s_.num_passes(), c.max_seq_len) {}

  bool step() override {
    if (s_.done() || attempts_ >= attempt_limit()) return false;
    ++attempts_;
    const auto batch = ga_.ask(4, rng_);
    s_.prefetch(batch);  // hint only; tell/measure order stays serial
    for (const auto& c : batch) {
      if (s_.done()) break;
      ga_.tell(c, s_.measure(c));
    }
    return true;
  }

 protected:
  void save_extra(persist::Writer& w) const override {
    w.u64(ga_.population().size());
    for (const auto& [seq, y] : ga_.population()) {
      persist::put(w, seq);
      w.f64(y);
    }
  }

  void load_extra(persist::Reader& r) override {
    const std::uint64_t n = r.u64();
    std::vector<std::pair<Sequence, double>> pop;
    pop.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      Sequence seq;
      persist::get(r, seq);
      const double y = r.f64();
      pop.emplace_back(std::move(seq), y);
    }
    ga_.set_population(std::move(pop));
  }

 private:
  heuristics::GaSequence ga_;
};

class DesTuner final : public BaseTuner {
 public:
  DesTuner(std::string name, sim::Evaluator& e, const PhaseTunerConfig& c)
      : BaseTuner(std::move(name), e, c),
        des_(s_.num_passes(), c.max_seq_len) {}

  bool step() override {
    if (s_.done() || attempts_ >= attempt_limit()) return false;
    ++attempts_;
    const auto batch = des_.ask(4, rng_);
    s_.prefetch(batch);  // hint only; tell/measure order stays serial
    for (const auto& c : batch) {
      if (s_.done()) break;
      des_.tell(c, s_.measure(c));
    }
    return true;
  }

 protected:
  void save_extra(persist::Writer& w) const override {
    persist::put(w, des_.incumbent());
    w.f64(des_.incumbent_value());
  }

  void load_extra(persist::Reader& r) override {
    Sequence best;
    persist::get(r, best);
    const double y = r.f64();
    des_.set_incumbent(std::move(best), y);
  }

 private:
  heuristics::DesSequence des_;
};

class EnsembleTuner final : public BaseTuner {
 public:
  EnsembleTuner(std::string name, sim::Evaluator& e,
                const PhaseTunerConfig& c)
      : BaseTuner(std::move(name), e, c),
        ga_(s_.num_passes(), c.max_seq_len),
        des_(s_.num_passes(), c.max_seq_len) {}

  // OpenTuner-style AUC credit: techniques earn score for improvements
  // and are sampled proportionally (plus smoothing for exploration).
  // Candidates are picked one at a time because each pick depends on the
  // credit updated by the previous measurement — no batch to prefetch.
  bool step() override {
    if (s_.done() || attempts_ >= attempt_limit()) return false;
    ++attempts_;
    const std::size_t pick = rng_.categorical(credit_);
    Sequence c;
    if (pick == 0) {
      c = ga_.ask(1, rng_)[0];
    } else if (pick == 1) {
      c = des_.ask(1, rng_)[0];
    } else {
      c = heuristics::random_sequence(s_.num_passes(),
                                      s_.config.max_seq_len, rng_);
    }
    const double y = s_.measure(c);
    ga_.tell(c, y);
    des_.tell(c, y);
    if (y < ens_best_y_) {
      ens_best_y_ = y;
      credit_[pick] += 1.0;
    } else {
      credit_[pick] = std::max(0.2, credit_[pick] * 0.98);
    }
    return true;
  }

 protected:
  void save_extra(persist::Writer& w) const override {
    w.u64(ga_.population().size());
    for (const auto& [seq, y] : ga_.population()) {
      persist::put(w, seq);
      w.f64(y);
    }
    persist::put(w, des_.incumbent());
    w.f64(des_.incumbent_value());
    persist::put(w, credit_);
    w.f64(ens_best_y_);
  }

  void load_extra(persist::Reader& r) override {
    const std::uint64_t n = r.u64();
    std::vector<std::pair<Sequence, double>> pop;
    pop.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      Sequence seq;
      persist::get(r, seq);
      const double y = r.f64();
      pop.emplace_back(std::move(seq), y);
    }
    ga_.set_population(std::move(pop));
    Sequence best;
    persist::get(r, best);
    const double dy = r.f64();
    des_.set_incumbent(std::move(best), dy);
    persist::get(r, credit_);
    ens_best_y_ = r.f64();
  }

 private:
  heuristics::GaSequence ga_;
  heuristics::DesSequence des_;
  Vec credit_{1.0, 1.0, 1.0};  // ga, des, random
  double ens_best_y_ = 1e300;
};

class RfBoTuner final : public BaseTuner {
 public:
  RfBoTuner(std::string name, sim::Evaluator& e, const PhaseTunerConfig& c)
      : BaseTuner(std::move(name), e, c),
        feat_(s_.num_passes(), c.max_seq_len) {}

  bool step() override {
    // Initial random design (BOCA uses a random start set), prefetched
    // as one chunk; the serial observe order is unchanged.
    if (!init_done_) {
      init_done_ = true;
      const int init = std::min(8, s_.config.budget / 4 + 1);
      std::vector<Sequence> chunk;
      chunk.reserve(static_cast<std::size_t>(init));
      for (int i = 0; i < init; ++i)
        chunk.push_back(heuristics::random_sequence(
            s_.num_passes(), s_.config.max_seq_len, rng_));
      s_.prefetch(chunk);
      for (const auto& c : chunk) {
        if (static_cast<int>(ys_.size()) >= init || s_.done() ||
            attempts_++ >= attempt_limit())
          break;
        observe(c);
      }
      return true;
    }
    if (s_.done() || attempts_ >= attempt_limit()) return false;
    ++attempts_;
    // The forest is refit from (xs, ys, rng) at the top of every
    // iteration, so it carries no state across step boundaries and is
    // never checkpointed; restoring the training set and the RNG stream
    // reproduces it exactly.
    forest_.fit(xs_, ys_, rng_);
    double best_y = *std::min_element(ys_.begin(), ys_.end());

    // Candidate pool: mutations of the best sequences + random (BOCA's
    // neighbourhood expansion around promising decision settings).
    std::vector<Sequence> pool;
    std::vector<std::size_t> order(ys_.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return ys_[a] < ys_[b]; });
    for (int k = 0; k < 24; ++k) {
      if (k < 16 && !order.empty()) {
        const Sequence& base =
            seqs_[order[static_cast<std::size_t>(k) %
                        std::min<std::size_t>(4, order.size())]];
        pool.push_back(heuristics::mutate_sequence(
            base, s_.num_passes(), s_.config.max_seq_len, rng_));
      } else {
        pool.push_back(heuristics::random_sequence(
            s_.num_passes(), s_.config.max_seq_len, rng_));
      }
    }
    // EI over the forest.
    double best_ei = -1.0;
    const Sequence* winner = &pool[0];
    for (const auto& c : pool) {
      const auto [mean, var] = forest_.predict(feat_.extract(c));
      const double sigma = std::sqrt(std::max(var, 1e-12));
      const double z = (best_y - mean) / sigma;
      const double cdf = 0.5 * std::erfc(-z * 0.7071067811865476);
      const double pdf = 0.3989422804014327 * std::exp(-0.5 * z * z);
      const double ei = (best_y - mean) * cdf + sigma * pdf;
      if (ei > best_ei) {
        best_ei = ei;
        winner = &c;
      }
    }
    observe(*winner);
    return true;
  }

 protected:
  void save_extra(persist::Writer& w) const override {
    w.b(init_done_);
    w.u64(seqs_.size());
    for (const auto& seq : seqs_) persist::put(w, seq);
    persist::put(w, ys_);
  }

  void load_extra(persist::Reader& r) override {
    init_done_ = r.b();
    const std::uint64_t n = r.u64();
    seqs_.clear();
    seqs_.reserve(n);
    xs_.clear();
    xs_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      Sequence seq;
      persist::get(r, seq);
      xs_.push_back(feat_.extract(seq));  // derived, recomputed on load
      seqs_.push_back(std::move(seq));
    }
    persist::get(r, ys_);
  }

 private:
  double observe(const Sequence& c) {
    const double y = s_.measure(c);
    seqs_.push_back(c);
    xs_.push_back(feat_.extract(c));
    ys_.push_back(y);
    return y;
  }

  core::SequenceFeatures feat_;
  std::vector<Sequence> seqs_;
  std::vector<Vec> xs_;
  Vec ys_;
  RandomForest forest_;
  bool init_done_ = false;
};

TuneTrace run_to_completion(ResumablePhaseTuner& t) {
  while (t.step()) {
  }
  return t.finish();
}

}  // namespace

std::vector<std::string> select_hot_modules(const sim::Evaluator& eval,
                                            double threshold,
                                            int max_modules) {
  std::vector<std::string> out;
  double covered = 0.0;
  for (const auto& [name, frac] : eval.hot_modules()) {
    if (covered >= threshold ||
        static_cast<int>(out.size()) >= max_modules)
      break;
    if (name == "driver") continue;
    out.push_back(name);
    covered += frac;
  }
  if (out.empty()) out.push_back(eval.hot_modules()[0].first);
  std::sort(out.begin(), out.end());
  return out;
}

std::unique_ptr<ResumablePhaseTuner> make_phase_tuner(
    const std::string& name, sim::Evaluator& eval,
    const PhaseTunerConfig& config) {
  if (name == "random")
    return std::make_unique<RandomTuner>(name, eval, config);
  if (name == "ga") return std::make_unique<GaTuner>(name, eval, config);
  if (name == "des") return std::make_unique<DesTuner>(name, eval, config);
  if (name == "opentuner")
    return std::make_unique<EnsembleTuner>(name, eval, config);
  if (name == "boca")
    return std::make_unique<RfBoTuner>(name, eval, config);
  throw std::invalid_argument("unknown baseline tuner: " + name);
}

TuneTrace run_random_search(sim::Evaluator& eval,
                            const PhaseTunerConfig& config) {
  RandomTuner t("random", eval, config);
  return run_to_completion(t);
}

TuneTrace run_ga_tuner(sim::Evaluator& eval,
                       const PhaseTunerConfig& config) {
  GaTuner t("ga", eval, config);
  return run_to_completion(t);
}

TuneTrace run_des_tuner(sim::Evaluator& eval,
                        const PhaseTunerConfig& config) {
  DesTuner t("des", eval, config);
  return run_to_completion(t);
}

TuneTrace run_ensemble_tuner(sim::Evaluator& eval,
                             const PhaseTunerConfig& config) {
  EnsembleTuner t("opentuner", eval, config);
  return run_to_completion(t);
}

TuneTrace run_rf_bo_tuner(sim::Evaluator& eval,
                          const PhaseTunerConfig& config) {
  RfBoTuner t("boca", eval, config);
  return run_to_completion(t);
}

}  // namespace citroen::baselines
