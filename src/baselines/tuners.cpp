#include "baselines/tuners.hpp"

#include <algorithm>
#include <cmath>

#include "baselines/random_forest.hpp"
#include "citroen/features.hpp"
#include "heuristics/des.hpp"
#include "heuristics/ga.hpp"
#include "passes/pass.hpp"

namespace citroen::baselines {

using heuristics::Sequence;

namespace {

struct Session {
  sim::Evaluator& eval;
  PhaseTunerConfig config;
  std::vector<std::string> modules;
  std::vector<std::string> space;
  TuneTrace trace;
  int used = 0;

  Session(sim::Evaluator& e, const PhaseTunerConfig& c)
      : eval(e), config(c) {
    space = c.pass_space.empty()
                ? passes::PassRegistry::instance().pass_names()
                : c.pass_space;
    modules =
        select_hot_modules(e, c.hot_threshold, c.max_hot_modules);
  }

  int num_passes() const { return static_cast<int>(space.size()); }

  /// The whole-program assignment a sequence denotes: the same pass
  /// order applied to every tuned module.
  sim::SequenceAssignment assignment(const Sequence& s) const {
    sim::SequenceAssignment a;
    std::vector<std::string> names;
    names.reserve(s.size());
    for (int p : s) names.push_back(space[static_cast<std::size_t>(p)]);
    for (const auto& m : modules) a[m] = names;
    return a;
  }

  /// Warm the evaluator's memo caches for an upcoming chunk of
  /// candidates. Purely a performance hint: replaying `measure` over the
  /// chunk afterwards yields bit-identical traces at any thread count.
  void prefetch(const std::vector<Sequence>& chunk) {
    std::vector<sim::SequenceAssignment> assigns;
    assigns.reserve(chunk.size());
    for (const auto& c : chunk) assigns.push_back(assignment(c));
    eval.prefetch(assigns, /*with_measure=*/true);
  }

  /// Measure one sequence applied to every tuned module. Returns the
  /// normalised runtime y (cycles / o3; invalid builds = 4.0).
  double measure(const Sequence& s) {
    const sim::SequenceAssignment a = assignment(s);
    // A quarantined signature is a known deterministic failure: learn
    // "bad" for free instead of burning an evaluation on it.
    if (eval.is_quarantined(a)) {
      ++trace.quarantined_skipped;
      return 4.0;
    }
    const auto out = eval.evaluate(a);
    double y;
    if (!out.valid) {
      ++trace.invalid;
      ++trace.failure_counts[sim::failure_kind_name(out.failure)];
      y = 4.0;
    } else {
      y = 1.0 / out.speedup;
    }
    if (!out.cache_hit) {
      ++used;
      trace.speedup_curve.push_back(std::max(
          trace.speedup_curve.empty() ? 0.0 : trace.speedup_curve.back(),
          1.0 / y));
    }
    if (out.valid && y < best_y) {
      best_y = y;
      trace.best_assignment = a;
    }
    return y;
  }

  double best_y = 1e300;  ///< best observed normalised runtime

  bool done() const { return used >= config.budget; }

  TuneTrace finish(std::string name) {
    trace.tuner = std::move(name);
    trace.best_speedup =
        trace.speedup_curve.empty() ? 0.0 : trace.speedup_curve.back();
    return trace;
  }
};

}  // namespace

std::vector<std::string> select_hot_modules(const sim::Evaluator& eval,
                                            double threshold,
                                            int max_modules) {
  std::vector<std::string> out;
  double covered = 0.0;
  for (const auto& [name, frac] : eval.hot_modules()) {
    if (covered >= threshold ||
        static_cast<int>(out.size()) >= max_modules)
      break;
    if (name == "driver") continue;
    out.push_back(name);
    covered += frac;
  }
  if (out.empty()) out.push_back(eval.hot_modules()[0].first);
  std::sort(out.begin(), out.end());
  return out;
}

TuneTrace run_random_search(sim::Evaluator& eval,
                            const PhaseTunerConfig& config) {
  Session s(eval, config);
  Rng rng(config.seed);
  // Candidates are generated in chunks so the evaluator can compile and
  // measure a whole chunk concurrently before the serial replay. The
  // replay order (and the RNG stream: `measure` consumes no randomness)
  // is identical to generating one candidate at a time.
  int attempts = 0;
  while (!s.done() && attempts < config.budget * 20) {
    std::vector<Sequence> chunk;
    const int n = std::min(16, config.budget * 20 - attempts);
    chunk.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      chunk.push_back(heuristics::random_sequence(s.num_passes(),
                                                  config.max_seq_len, rng));
    attempts += n;
    s.prefetch(chunk);
    for (const auto& c : chunk) {
      if (s.done()) break;
      s.measure(c);
    }
  }
  return s.finish("random");
}

TuneTrace run_ga_tuner(sim::Evaluator& eval,
                       const PhaseTunerConfig& config) {
  Session s(eval, config);
  Rng rng(config.seed);
  heuristics::GaSequence ga(s.num_passes(), config.max_seq_len);
  int attempts = 0;
  while (!s.done() && attempts++ < config.budget * 20) {
    const auto batch = ga.ask(4, rng);
    s.prefetch(batch);  // hint only; tell/measure order stays serial
    for (const auto& c : batch) {
      if (s.done()) break;
      ga.tell(c, s.measure(c));
    }
  }
  return s.finish("ga");
}

TuneTrace run_des_tuner(sim::Evaluator& eval,
                        const PhaseTunerConfig& config) {
  Session s(eval, config);
  Rng rng(config.seed);
  heuristics::DesSequence des(s.num_passes(), config.max_seq_len);
  int attempts = 0;
  while (!s.done() && attempts++ < config.budget * 20) {
    const auto batch = des.ask(4, rng);
    s.prefetch(batch);  // hint only; tell/measure order stays serial
    for (const auto& c : batch) {
      if (s.done()) break;
      des.tell(c, s.measure(c));
    }
  }
  return s.finish("des");
}

TuneTrace run_ensemble_tuner(sim::Evaluator& eval,
                             const PhaseTunerConfig& config) {
  Session s(eval, config);
  Rng rng(config.seed);
  heuristics::GaSequence ga(s.num_passes(), config.max_seq_len);
  heuristics::DesSequence des(s.num_passes(), config.max_seq_len);

  // OpenTuner-style AUC credit: techniques earn score for improvements
  // and are sampled proportionally (plus smoothing for exploration).
  // Candidates are picked one at a time because each pick depends on the
  // credit updated by the previous measurement — no batch to prefetch.
  Vec credit(3, 1.0);  // ga, des, random
  double best_y = 1e300;
  int attempts = 0;
  while (!s.done() && attempts++ < config.budget * 20) {
    const std::size_t pick = rng.categorical(credit);
    Sequence c;
    if (pick == 0) {
      c = ga.ask(1, rng)[0];
    } else if (pick == 1) {
      c = des.ask(1, rng)[0];
    } else {
      c = heuristics::random_sequence(s.num_passes(), config.max_seq_len,
                                      rng);
    }
    const double y = s.measure(c);
    ga.tell(c, y);
    des.tell(c, y);
    if (y < best_y) {
      best_y = y;
      credit[pick] += 1.0;
    } else {
      credit[pick] = std::max(0.2, credit[pick] * 0.98);
    }
  }
  return s.finish("opentuner");
}

TuneTrace run_rf_bo_tuner(sim::Evaluator& eval,
                          const PhaseTunerConfig& config) {
  Session s(eval, config);
  Rng rng(config.seed);
  const core::SequenceFeatures feat(s.num_passes(), config.max_seq_len);

  std::vector<Sequence> seqs;
  std::vector<Vec> xs;
  Vec ys;
  auto observe = [&](const Sequence& c) {
    const double y = s.measure(c);
    seqs.push_back(c);
    xs.push_back(feat.extract(c));
    ys.push_back(y);
    return y;
  };

  // Initial random design (BOCA uses a random start set), prefetched as
  // one chunk; the serial observe order is unchanged.
  const int init = std::min(8, config.budget / 4 + 1);
  int attempts = 0;
  {
    std::vector<Sequence> chunk;
    chunk.reserve(static_cast<std::size_t>(init));
    for (int i = 0; i < init; ++i)
      chunk.push_back(heuristics::random_sequence(s.num_passes(),
                                                  config.max_seq_len, rng));
    s.prefetch(chunk);
    for (const auto& c : chunk) {
      if (static_cast<int>(ys.size()) >= init || s.done() ||
          attempts++ >= config.budget * 20)
        break;
      observe(c);
    }
  }

  RandomForest forest;
  while (!s.done() && attempts++ < config.budget * 20) {
    forest.fit(xs, ys, rng);
    double best_y = *std::min_element(ys.begin(), ys.end());

    // Candidate pool: mutations of the best sequences + random (BOCA's
    // neighbourhood expansion around promising decision settings).
    std::vector<Sequence> pool;
    std::vector<std::size_t> order(ys.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return ys[a] < ys[b]; });
    for (int k = 0; k < 24; ++k) {
      if (k < 16 && !order.empty()) {
        const Sequence& base = seqs[order[static_cast<std::size_t>(k) % std::min<std::size_t>(4, order.size())]];
        pool.push_back(heuristics::mutate_sequence(base, s.num_passes(),
                                                   config.max_seq_len, rng));
      } else {
        pool.push_back(heuristics::random_sequence(
            s.num_passes(), config.max_seq_len, rng));
      }
    }
    // EI over the forest.
    double best_ei = -1.0;
    const Sequence* winner = &pool[0];
    for (const auto& c : pool) {
      const auto [mean, var] = forest.predict(feat.extract(c));
      const double sigma = std::sqrt(std::max(var, 1e-12));
      const double z = (best_y - mean) / sigma;
      const double cdf = 0.5 * std::erfc(-z * 0.7071067811865476);
      const double pdf = 0.3989422804014327 * std::exp(-0.5 * z * z);
      const double ei = (best_y - mean) * cdf + sigma * pdf;
      if (ei > best_ei) {
        best_ei = ei;
        winner = &c;
      }
    }
    observe(*winner);
  }
  return s.finish("boca");
}

}  // namespace citroen::baselines
