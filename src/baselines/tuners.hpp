#pragma once
// Competing phase-ordering autotuners (Sec. 5.4.4): random search, GA,
// DES, an OpenTuner-style multi-algorithm ensemble with credit
// assignment, and a BOCA-style random-forest BO over raw sequence
// features. Each applies one sequence to the program's hot modules and
// reports the same best-so-far speedup curve as CITROEN, so all the
// Fig. 5.6/5.7 comparisons are apples-to-apples.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/evaluator.hpp"
#include "support/matrix.hpp"

namespace citroen::persist {
class Writer;  // persist/codec.hpp
class Reader;
}

namespace citroen::baselines {

struct PhaseTunerConfig {
  int budget = 100;       ///< runtime measurements
  int max_seq_len = 60;
  double hot_threshold = 0.9;
  int max_hot_modules = 3;
  std::vector<std::string> pass_space;  ///< default: full registry
  std::uint64_t seed = 1;
};

struct TuneTrace {
  std::string tuner;
  double best_speedup = 0.0;  ///< over -O3
  /// Assignment behind `best_speedup` (re-validate it on a clean
  /// evaluator when tuning ran under measurement noise).
  sim::SequenceAssignment best_assignment;
  Vec speedup_curve;          ///< best-so-far per measurement
  int invalid = 0;
  /// Invalid evaluations per failure class ("crash", "hang", ...).
  std::map<std::string, int> failure_counts;
  int quarantined_skipped = 0;  ///< proposals dropped via the quarantine set
};

/// Hot modules to tune (shared with CITROEN's selection rule).
std::vector<std::string> select_hot_modules(
    const sim::Evaluator& eval, double threshold, int max_modules);

/// Checkpoint/restore a (possibly partial) trace.
void put(persist::Writer& w, const TuneTrace& t);
void get(persist::Reader& r, TuneTrace& out);

/// A baseline tuner advanced one unit at a time, so a crash-safe runner
/// can checkpoint, honour a deadline, or stop between steps. The step
/// granularity matches each algorithm's natural batch (random: one
/// 16-candidate chunk; ga/des: one ask(4) batch; opentuner: one
/// candidate; boca: the initial design, then one forest iteration), so
/// driving step() to exhaustion is byte-identical to the corresponding
/// one-shot run_* function.
class ResumablePhaseTuner {
 public:
  virtual ~ResumablePhaseTuner() = default;
  virtual const std::string& name() const = 0;
  /// Advance one unit; false once the budget/attempt limits are spent.
  virtual bool step() = 0;
  /// Assemble the trace-so-far. Valid mid-run (interrupted runs still
  /// report their best-so-far curve).
  virtual TuneTrace finish() = 0;
  /// Serialize/restore the complete tuner state (trace, RNG stream,
  /// heuristic populations, surrogate training set) such that a restored
  /// tuner continues byte-identically to one that never stopped.
  virtual void save_state(persist::Writer& w) const = 0;
  virtual void load_state(persist::Reader& r) = 0;
};

/// Factory over the five baselines: "random", "ga", "des", "opentuner"
/// (ensemble) and "boca" (random-forest BO). Throws on unknown names.
std::unique_ptr<ResumablePhaseTuner> make_phase_tuner(
    const std::string& name, sim::Evaluator& eval,
    const PhaseTunerConfig& config);

TuneTrace run_random_search(sim::Evaluator& eval,
                            const PhaseTunerConfig& config);
TuneTrace run_ga_tuner(sim::Evaluator& eval,
                       const PhaseTunerConfig& config);
TuneTrace run_des_tuner(sim::Evaluator& eval,
                        const PhaseTunerConfig& config);
/// OpenTuner-style: GA + DES + random run side by side; techniques that
/// produce improvements get a growing share of the measurement budget.
TuneTrace run_ensemble_tuner(sim::Evaluator& eval,
                             const PhaseTunerConfig& config);
/// BOCA-style: random-forest surrogate on raw sequence features; EI
/// scores a large pool of mutated candidates, best one is measured.
TuneTrace run_rf_bo_tuner(sim::Evaluator& eval,
                          const PhaseTunerConfig& config);

}  // namespace citroen::baselines
