#pragma once
// Competing phase-ordering autotuners (Sec. 5.4.4): random search, GA,
// DES, an OpenTuner-style multi-algorithm ensemble with credit
// assignment, and a BOCA-style random-forest BO over raw sequence
// features. Each applies one sequence to the program's hot modules and
// reports the same best-so-far speedup curve as CITROEN, so all the
// Fig. 5.6/5.7 comparisons are apples-to-apples.

#include <map>
#include <string>
#include <vector>

#include "sim/evaluator.hpp"
#include "support/matrix.hpp"

namespace citroen::baselines {

struct PhaseTunerConfig {
  int budget = 100;       ///< runtime measurements
  int max_seq_len = 60;
  double hot_threshold = 0.9;
  int max_hot_modules = 3;
  std::vector<std::string> pass_space;  ///< default: full registry
  std::uint64_t seed = 1;
};

struct TuneTrace {
  std::string tuner;
  double best_speedup = 0.0;  ///< over -O3
  /// Assignment behind `best_speedup` (re-validate it on a clean
  /// evaluator when tuning ran under measurement noise).
  sim::SequenceAssignment best_assignment;
  Vec speedup_curve;          ///< best-so-far per measurement
  int invalid = 0;
  /// Invalid evaluations per failure class ("crash", "hang", ...).
  std::map<std::string, int> failure_counts;
  int quarantined_skipped = 0;  ///< proposals dropped via the quarantine set
};

/// Hot modules to tune (shared with CITROEN's selection rule).
std::vector<std::string> select_hot_modules(
    const sim::Evaluator& eval, double threshold, int max_modules);

TuneTrace run_random_search(sim::Evaluator& eval,
                            const PhaseTunerConfig& config);
TuneTrace run_ga_tuner(sim::Evaluator& eval,
                       const PhaseTunerConfig& config);
TuneTrace run_des_tuner(sim::Evaluator& eval,
                        const PhaseTunerConfig& config);
/// OpenTuner-style: GA + DES + random run side by side; techniques that
/// produce improvements get a growing share of the measurement budget.
TuneTrace run_ensemble_tuner(sim::Evaluator& eval,
                             const PhaseTunerConfig& config);
/// BOCA-style: random-forest surrogate on raw sequence features; EI
/// scores a large pool of mutated candidates, best one is measured.
TuneTrace run_rf_bo_tuner(sim::Evaluator& eval,
                          const PhaseTunerConfig& config);

}  // namespace citroen::baselines
