#include "baselines/random_forest.hpp"

#include <algorithm>
#include <cmath>

namespace citroen::baselines {

double RandomForest::Tree::predict(const Vec& x) const {
  int n = 0;
  while (nodes[static_cast<std::size_t>(n)].feature >= 0) {
    const Node& nd = nodes[static_cast<std::size_t>(n)];
    n = x[static_cast<std::size_t>(nd.feature)] <= nd.threshold ? nd.left
                                                                : nd.right;
  }
  return nodes[static_cast<std::size_t>(n)].value;
}

void RandomForest::grow(Tree& tree, int node, const std::vector<Vec>& x,
                        const Vec& y, std::vector<int>& idx, int lo, int hi,
                        int depth, Rng& rng) {
  const int n = hi - lo;
  double mean = 0.0;
  for (int i = lo; i < hi; ++i) mean += y[static_cast<std::size_t>(idx[static_cast<std::size_t>(i)])];
  mean /= n;
  Node& nd = tree.nodes[static_cast<std::size_t>(node)];
  nd.value = mean;

  if (depth >= config_.max_depth || n < 2 * config_.min_leaf) return;

  const std::size_t dim = x[0].size();
  const int tries = std::max(
      1, static_cast<int>(config_.feature_fraction * static_cast<double>(dim)));
  double best_gain = 1e-12;
  int best_f = -1;
  double best_t = 0.0;
  double total_sq = 0.0;
  for (int i = lo; i < hi; ++i) {
    const double v = y[static_cast<std::size_t>(idx[static_cast<std::size_t>(i)])] - mean;
    total_sq += v * v;
  }

  for (int t = 0; t < tries; ++t) {
    const int f = static_cast<int>(rng.uniform_index(dim));
    // Candidate threshold: midpoint of two random samples.
    const double a =
        x[static_cast<std::size_t>(idx[static_cast<std::size_t>(
            lo + static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(n))))])]
         [static_cast<std::size_t>(f)];
    const double b =
        x[static_cast<std::size_t>(idx[static_cast<std::size_t>(
            lo + static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(n))))])]
         [static_cast<std::size_t>(f)];
    const double thr = 0.5 * (a + b);
    double ls = 0.0, rs = 0.0;
    int ln = 0, rn = 0;
    for (int i = lo; i < hi; ++i) {
      const double yi = y[static_cast<std::size_t>(idx[static_cast<std::size_t>(i)])];
      if (x[static_cast<std::size_t>(idx[static_cast<std::size_t>(i)])]
           [static_cast<std::size_t>(f)] <= thr) {
        ls += yi;
        ++ln;
      } else {
        rs += yi;
        ++rn;
      }
    }
    if (ln < config_.min_leaf || rn < config_.min_leaf) continue;
    // Variance-reduction gain.
    const double lmean = ls / ln, rmean = rs / rn;
    double split_sq = 0.0;
    for (int i = lo; i < hi; ++i) {
      const double yi = y[static_cast<std::size_t>(idx[static_cast<std::size_t>(i)])];
      const bool left = x[static_cast<std::size_t>(idx[static_cast<std::size_t>(i)])]
                         [static_cast<std::size_t>(f)] <= thr;
      const double e = yi - (left ? lmean : rmean);
      split_sq += e * e;
    }
    const double gain = total_sq - split_sq;
    if (gain > best_gain) {
      best_gain = gain;
      best_f = f;
      best_t = thr;
    }
  }
  if (best_f < 0) return;

  const auto mid_it = std::partition(
      idx.begin() + lo, idx.begin() + hi, [&](int i) {
        return x[static_cast<std::size_t>(i)][static_cast<std::size_t>(
                   best_f)] <= best_t;
      });
  const int mid = static_cast<int>(mid_it - idx.begin());
  if (mid == lo || mid == hi) return;

  const int left = static_cast<int>(tree.nodes.size());
  tree.nodes.emplace_back();
  const int right = static_cast<int>(tree.nodes.size());
  tree.nodes.emplace_back();
  {
    Node& nd2 = tree.nodes[static_cast<std::size_t>(node)];
    nd2.feature = best_f;
    nd2.threshold = best_t;
    nd2.left = left;
    nd2.right = right;
  }
  grow(tree, left, x, y, idx, lo, mid, depth + 1, rng);
  grow(tree, right, x, y, idx, mid, hi, depth + 1, rng);
}

void RandomForest::fit(const std::vector<Vec>& x, const Vec& y, Rng& rng) {
  trees_.assign(static_cast<std::size_t>(config_.num_trees), {});
  const std::size_t n = x.size();
  for (auto& tree : trees_) {
    std::vector<int> idx(n);
    for (auto& i : idx)
      i = static_cast<int>(rng.uniform_index(n));  // bootstrap
    tree.nodes.emplace_back();
    grow(tree, 0, x, y, idx, 0, static_cast<int>(n), 0, rng);
  }
}

std::pair<double, double> RandomForest::predict(const Vec& x) const {
  if (trees_.empty()) return {0.0, 1.0};
  double mean = 0.0;
  for (const auto& t : trees_) mean += t.predict(x);
  mean /= static_cast<double>(trees_.size());
  double var = 0.0;
  for (const auto& t : trees_) {
    const double d = t.predict(x) - mean;
    var += d * d;
  }
  var /= static_cast<double>(trees_.size());
  return {mean, var};
}

}  // namespace citroen::baselines
