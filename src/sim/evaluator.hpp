#pragma once
// The compile-and-measure service every autotuner in this repo talks to.
//
// It mirrors the paper's experimental setup:
//   - per-module pass sequences (untuned modules get the reference -O3),
//   - differential testing of every optimised build against the -O0
//     reference output (Sec. 1.1 / 5.4),
//   - an identical-binary cache so sequences that produce the same
//     optimised program are not re-measured (Kulkarni et al.),
//   - separate accounting of compile time vs. measurement time for the
//     Fig. 5.12 runtime-breakdown experiment.
//
// Tuners program against the abstract `Evaluator` interface so the same
// search code runs against the raw `ProgramEvaluator` or the hardened
// `RobustEvaluator` (sim/robust_evaluator.hpp) that adds retries,
// replicated measurement and quarantine on top of an injected fault model
// (sim/faults.hpp).
//
// Batch evaluation: `evaluate_batch`/`compile_batch` are prefetch + serial
// replay. `prefetch` performs only pure, memoizable work — pass pipelines
// through the pipeline-prefix cache and interpreter runs into a
// measurement memo — on a work-stealing thread pool; the serial loop then
// runs the *unchanged* single-candidate code path, which consumes the
// memos. Every order-sensitive step (fault-injector counters, the
// identical-binary cache, quarantine state) executes in exact serial
// order, so batch results are bit-identical to the serial path at every
// thread count, by construction.

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/interpreter.hpp"
#include "ir/module.hpp"
#include "passes/pass.hpp"
#include "sim/prefix_cache.hpp"
#include "support/flat_map.hpp"

namespace citroen {
class ThreadPool;  // support/thread_pool.hpp
}

namespace citroen::persist {
class Writer;  // persist/codec.hpp
class Reader;
}

namespace citroen::sim {

class FaultInjector;  // sim/faults.hpp

/// Map module name -> pass sequence. Modules absent from the map are
/// compiled with the reference -O3 pipeline. Keys iterate in sorted
/// order (as with the std::map this replaces), so signatures and hashes
/// derived from iteration order are stable.
using SequenceAssignment = FlatMap<std::string, std::vector<std::string>>;

/// Structured failure taxonomy for evaluation outcomes, alongside the
/// human-readable `why_invalid`. Mirrors the hazard classes the
/// autotuning literature reports for phase-order search.
enum class FailureKind {
  None,           ///< valid outcome
  Crash,          ///< pass pipeline aborted or the build trapped at runtime
  Hang,           ///< instruction budget exhausted (timeout analogue)
  Miscompile,     ///< differential test failed (any workload)
  NoisyRejected,  ///< measurement spread too large to trust (robust layer)
  Verifier,       ///< IR verifier rejected the optimised module
  // Sandbox-layer classes (sandbox/supervisor.hpp). Append-only: the
  // enum is serialized as a u8 in journals and checkpoints.
  WorkerCrash,    ///< evaluation killed its sandbox worker (signal/exit)
  WorkerTimeout,  ///< evaluation blew its wall/CPU deadline in the sandbox
  WorkerOOM,      ///< evaluation exhausted the sandbox memory cap
  // Dist-layer classes (dist/pool.hpp). Unlike the sandbox classes these
  // describe *infrastructure* failures (a remote peer, not the
  // candidate): the pool reassigns or falls back locally and never
  // synthesizes an outcome from them, so they appear in stats/obs only.
  PeerLost,       ///< peer socket died mid-job (EOF, ECONNRESET, SIGKILL)
  PeerTimeout,    ///< peer blew the job wall deadline or a liveness probe
  PeerProtocol,   ///< peer sent an undecodable or out-of-protocol frame
};

/// Stable display name ("crash", "hang", ...), for reports and logs.
const char* failure_kind_name(FailureKind k);

struct EvalOutcome {
  bool valid = false;       ///< compiled, verified, and output-matched
  std::string why_invalid;  ///< verifier/difftest/trap reason when !valid
  FailureKind failure = FailureKind::None;
  bool transient = false;   ///< failure was injected-transient (retryable)
  double cycles = 0.0;      ///< modelled runtime of the optimised build
  double speedup = 0.0;     ///< o3_cycles / cycles (0 when invalid)
  bool cache_hit = false;   ///< identical binary already measured
  int attempts = 1;         ///< compile+measure attempts consumed (>=1)
  std::uint64_t binary_hash = 0;  ///< structural hash (0 if build failed)
  passes::StatsRegistry stats;  ///< compilation statistics of tuned modules
  std::size_t code_size = 0;    ///< total live instructions after opt
};

/// Compile-only result: the statistics CITROEN's cost model consumes
/// without paying for a runtime measurement.
struct CompileOutcome {
  bool valid = false;
  std::string why_invalid;
  FailureKind failure = FailureKind::None;
  bool transient = false;   ///< failure was injected-transient (retryable)
  passes::StatsRegistry stats;  ///< merged over tuned modules
  /// Per-tuned-module statistics (the paper concatenates these when a
  /// program has several tuned modules).
  std::map<std::string, passes::StatsRegistry> module_stats;
  std::size_t code_size = 0;
  std::uint64_t binary_hash = 0;  ///< structural hash of the built program
  /// The optimised program, when requested (feature-extraction baselines
  /// need the IR itself).
  std::shared_ptr<const ir::Program> program;
};

/// The pure, order-insensitive part of one evaluation: what a sandbox
/// worker computes out-of-process and ships back over IPC. Contains no
/// injected-fault or cache state — the supervisor replays the normal
/// serial path with `runs` pre-installed as a measurement memo, so
/// sandboxed results stay byte-identical to in-process ones.
struct PureEvalResult {
  bool built = false;             ///< all modules compiled and verified
  std::uint64_t binary_hash = 0;  ///< composed hash (0 when !built)
  /// Interpreter runs: runs[0] the base workload, runs[1+i] workload i,
  /// truncated at the serial path's early-stop point (see MeasureMemo).
  /// Empty when the job was compile-only or the build failed.
  std::vector<ir::ExecResult> runs;
};

/// Abstract compile-and-measure service. `ProgramEvaluator` is the plain
/// implementation; `RobustEvaluator` hardens one against faults.
class Evaluator {
 public:
  virtual ~Evaluator() = default;

  virtual const ir::Program& base_program() const = 0;
  virtual const std::string& program_name() const = 0;

  /// Modelled cycles of the -O3 build (the paper's baseline).
  virtual double o3_cycles() const = 0;
  /// Modelled cycles of the unoptimised build.
  virtual double o0_cycles() const = 0;
  /// Reference output for differential testing.
  virtual std::int64_t reference_output() const = 0;

  /// Fraction of -O3 runtime attributed to each module, descending.
  virtual std::vector<std::pair<std::string, double>> hot_modules() const = 0;

  /// Compile with per-module sequences; no execution.
  virtual CompileOutcome compile(const SequenceAssignment& seqs,
                                 bool keep_program = false) const = 0;

  /// Full evaluation: compile, verify, differential-test, measure.
  virtual EvalOutcome evaluate(const SequenceAssignment& seqs) = 0;

  /// Warm internal memo caches for an upcoming batch of candidates by
  /// doing the pure work (pass pipelines, interpreter runs) concurrently.
  /// Purely a performance hint: subsequent `evaluate`/`compile` calls
  /// return bit-identical results whether or not prefetch ran, at any
  /// thread count. With `with_measure` false only compilation is warmed.
  /// The base implementation is a no-op.
  virtual void prefetch(std::span<const SequenceAssignment> batch,
                        bool with_measure = true) {
    (void)batch;
    (void)with_measure;
  }

  /// Evaluate a whole batch (an ES population, a replay chunk): prefetch,
  /// then the exact serial evaluation loop. Results are bit-identical to
  /// calling `evaluate` on each element in order.
  std::vector<EvalOutcome> evaluate_batch(
      std::span<const SequenceAssignment> batch);

  /// Compile-only batch counterpart of `evaluate_batch`.
  std::vector<CompileOutcome> compile_batch(
      std::span<const SequenceAssignment> batch, bool keep_program = false);

  /// True when this assignment's signature is known to fail
  /// deterministically; candidate generators skip such proposals. The
  /// plain evaluator quarantines nothing.
  virtual bool is_quarantined(const SequenceAssignment&) const {
    return false;
  }

  /// Attach a fault injector to the layer that consumes it (nullptr
  /// detaches). Decorators forward towards the ProgramEvaluator at the
  /// bottom of the stack; the default is a no-op so evaluators without an
  /// injection site ignore it.
  virtual void set_fault_injector(const FaultInjector* injector) {
    (void)injector;
  }

  // ---- accounting (Fig. 5.12 / Table 4.2) -------------------------------
  virtual double total_compile_seconds() const = 0;
  virtual double total_measure_seconds() const = 0;
  virtual int num_compiles() const = 0;
  virtual int num_measurements() const = 0;
  virtual int num_cache_hits() const = 0;
};

class ProgramEvaluator : public Evaluator {
 public:
  /// `base` must be the unoptimised (-O0 style) program. `limits` bounds
  /// every interpreter run this evaluator performs (instruction budget,
  /// memory, call depth); budget exhaustion surfaces as a `Hang` failure.
  ProgramEvaluator(ir::Program base, ir::CostModel machine,
                   ir::ExecLimits limits = {});

  const ir::Program& base_program() const override { return base_; }
  const std::string& program_name() const override { return base_.name; }

  double o3_cycles() const override { return o3_cycles_; }
  double o0_cycles() const override { return o0_cycles_; }
  std::int64_t reference_output() const override { return reference_output_; }

  /// Adjust interpreter limits after construction (e.g. derive a hang
  /// budget from the -O0 instruction count). Flushes the measurement
  /// cache; the -O3/-O0 baselines are not re-derived.
  void set_exec_limits(const ir::ExecLimits& limits);
  const ir::ExecLimits& exec_limits() const { return limits_; }

  /// Attach a fault injector (nullptr detaches). Injected faults apply to
  /// subsequent compiles/evaluations; deterministic injected outcomes are
  /// cached like real ones, transient ones are never cached.
  void set_fault_injector(const FaultInjector* injector) override;
  const FaultInjector* fault_injector() const { return injector_; }

  /// Pool used by `prefetch` (nullptr -> ThreadPool::global()). The pool
  /// choice affects wall-clock only, never results.
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }

  /// Reconfigure the pipeline-prefix cache (byte budget 0 disables it).
  /// Drops cached intermediate builds and measurement memos; evaluation
  /// results are unaffected. Applies to the shared cache when one is
  /// attached.
  void set_prefix_cache_config(const PrefixCacheConfig& config);
  PrefixCacheStats prefix_cache_stats() const { return bc().stats(); }

  /// Route module builds through a cache shared with other evaluators
  /// (nullptr detaches, reverting to the private cache). Safe for
  /// results at any thread count — the cache is pure memoization of pure
  /// pass pipelines, and keys carry a per-module content hash so
  /// same-named modules from different programs never alias. Drops this
  /// evaluator's measurement memos.
  void set_shared_prefix_cache(std::shared_ptr<PrefixCache> cache);

  /// Fraction of -O3 runtime attributed to each module, descending.
  /// This is the `perf`-based hot-module profile of Sec. 5.3.1.
  std::vector<std::pair<std::string, double>> hot_modules() const override;

  /// Register an additional workload: a program built by the same
  /// generator with a different data seed (identical module/function
  /// structure, different global images). Differential testing and
  /// timing then run over ALL workloads: a build is valid only if it
  /// matches the reference output on every input, and `cycles` becomes
  /// the mean — the multi-input methodology the thesis's Sec. 6.2.2
  /// critique calls for. Invalidates the measurement cache.
  void add_workload(const ir::Program& variant);

  std::size_t num_workloads() const { return workloads_.size() + 1; }

  /// Compile with per-module sequences; no execution. With `keep_program`
  /// the optimised IR is returned for feature extraction.
  CompileOutcome compile(const SequenceAssignment& seqs,
                         bool keep_program = false) const override;

  /// Full evaluation: compile, verify, differential-test, measure.
  EvalOutcome evaluate(const SequenceAssignment& seqs) override;

  /// Concurrently warm the prefix cache (and, with `with_measure`, the
  /// interpreter-run memo) for the batch. See the determinism contract in
  /// the file header. No-op when the prefix cache is disabled.
  void prefetch(std::span<const SequenceAssignment> batch,
                bool with_measure = true) override;

  // ---- out-of-process evaluation (sandbox/) -----------------------------
  /// Perform only the pure part of an evaluation: assemble the binary
  /// through the prefix cache and (with `with_measure`) interpret it on
  /// every workload up to the serial early-stop point. Consults no fault
  /// injector, touches no outcome cache and charges no accounting — safe
  /// to run in a forked worker whose side effects are discarded.
  PureEvalResult pure_evaluate(const SequenceAssignment& seqs,
                               bool with_measure) const;

  /// Pre-install interpreter runs for a binary (from a sandbox worker's
  /// PureEvalResult), exactly as prefetch stage 2 would have. The serial
  /// path then consumes them instead of re-interpreting. Installing a
  /// memo never changes results, only where the interpreter time is
  /// spent. No-op if the binary already has an outcome or a memo.
  void install_measure_memo(std::uint64_t binary_hash,
                            std::vector<ir::ExecResult> runs);

  // ---- accounting (Fig. 5.12 / Table 4.2) -------------------------------
  double total_compile_seconds() const override { return compile_seconds_; }
  double total_measure_seconds() const override { return measure_seconds_; }
  int num_compiles() const override { return num_compiles_; }
  int num_measurements() const override { return num_measurements_; }
  int num_cache_hits() const override { return num_cache_hits_; }

  // ---- checkpointing (persist/) -----------------------------------------
  /// Serialize the order-sensitive runtime state: the identical-binary
  /// cache (whose hits decide what counts against a tuner's budget) and
  /// the accounting counters. Pure memos (prefix cache, measurement
  /// memos) are deliberately excluded — results do not depend on them.
  void save_runtime_state(persist::Writer& w) const;
  void load_runtime_state(persist::Reader& r);

 private:
  ir::Program build(const SequenceAssignment& seqs,
                    passes::StatsRegistry* stats_out, std::string* err,
                    std::map<std::string, passes::StatsRegistry>*
                        module_stats_out = nullptr,
                    FailureKind* failure_out = nullptr,
                    bool* transient_out = nullptr,
                    std::uint64_t* hash_out = nullptr) const;

  struct Workload {
    /// Global data images per module: [module][global] -> bytes.
    std::vector<std::vector<std::vector<std::uint8_t>>> images;
    std::int64_t reference = 0;  ///< -O0 output on this input
  };

  /// Pure cache-backed assembly of the candidate's full binary — the
  /// exact module walk prefetch stage 2 performs (no fault injector, no
  /// accounting). False when any module fails to build or verify.
  bool assemble_pure(const SequenceAssignment& seqs, ir::Program* built,
                     std::uint64_t* hash) const;
  /// Pure interpreter runs for an assembled binary, with the serial
  /// path's early-stop rule: extra workloads only while outputs match.
  std::vector<ir::ExecResult> measure_pure(const ir::Program& built) const;

  /// Pure interpreter runs for one binary, precomputed by `prefetch`:
  /// runs[0] is the base workload, runs[1+i] workload i. May be shorter
  /// than the workload count (prefetch stops where the serial path
  /// would); the serial consumer falls back to interpreting directly.
  struct MeasureMemo {
    std::vector<ir::ExecResult> runs;
  };

  /// Swap the workload's global images into a built program.
  static void apply_workload(ir::Program& built, const Workload& w);

  ir::Program base_;
  ir::Program o3_built_;
  ir::CostModel machine_;
  ir::ExecLimits limits_;
  const FaultInjector* injector_ = nullptr;
  std::vector<Workload> workloads_;  ///< extra inputs beyond the base
  double o3_cycles_ = 0.0;
  double o0_cycles_ = 0.0;
  std::int64_t reference_output_ = 0;
  std::unordered_map<std::string, double> o3_module_cycles_;
  /// Print-hash of each prebuilt -O3 module, mixed into the composed
  /// binary hash when an untuned module is reused.
  std::unordered_map<std::string, std::uint64_t> o3_module_print_hash_;

  /// The active build cache: the shared one when attached, else private.
  PrefixCache& bc() const {
    return shared_cache_ ? *shared_cache_ : build_cache_;
  }
  /// Content-hash salt for a module's prefix-cache keys.
  std::uint64_t module_salt(const std::string& name) const {
    const auto it = module_salt_.find(name);
    return it == module_salt_.end() ? 0 : it->second;
  }

  mutable PrefixCache build_cache_;
  std::shared_ptr<PrefixCache> shared_cache_;
  /// Print-hash of each base (-O0) module, mixed into prefix-cache keys.
  std::unordered_map<std::string, std::uint64_t> module_salt_;
  std::unordered_map<std::uint64_t, MeasureMemo> measure_memo_;
  ThreadPool* pool_ = nullptr;

  std::unordered_map<std::uint64_t, EvalOutcome> cache_;
  mutable double compile_seconds_ = 0.0;
  double measure_seconds_ = 0.0;
  mutable int num_compiles_ = 0;
  int num_measurements_ = 0;
  int num_cache_hits_ = 0;
};

/// Structural hash of a program (identical-binary detection).
std::uint64_t program_hash(const ir::Program& p);

/// Stable signature of a sequence assignment (quarantine keying).
std::uint64_t assignment_signature(const SequenceAssignment& seqs);

// ---- serialization (persist/codec.hpp) ------------------------------------
// The journal stores every evaluation as (assignment, outcome); these
// encoders are bit-exact (doubles as IEEE-754 bit patterns) so a record
// replayed after a crash byte-compares against the original.
void put(persist::Writer& w, const SequenceAssignment& a);
void get(persist::Reader& r, SequenceAssignment& a);
void put(persist::Writer& w, const EvalOutcome& o);
void get(persist::Reader& r, EvalOutcome& o);

}  // namespace citroen::sim
