#include "sim/faults.hpp"

#include <algorithm>
#include <cmath>

#include "persist/codec.hpp"

namespace citroen::sim {

namespace {

// SplitMix64 finaliser: decorrelates structured keys into uniform bits.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t hash_str(std::uint64_t h, const std::string& s) {
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;  // FNV-1a
  }
  h ^= 0xff;  // separator so ("ab","c") != ("a","bc")
  h *= 1099511628211ULL;
  return h;
}

// Fault-site salts: independent decision streams from one seed.
constexpr std::uint64_t kSaltDetCrash = 0x11;
constexpr std::uint64_t kSaltTransCrash = 0x22;
constexpr std::uint64_t kSaltHang = 0x33;
constexpr std::uint64_t kSaltTransHang = 0x44;
constexpr std::uint64_t kSaltMiscompile = 0x55;
constexpr std::uint64_t kSaltWorkloadMis = 0x66;
constexpr std::uint64_t kSaltNoise = 0x77;
constexpr std::uint64_t kSaltOutlier = 0x88;
constexpr std::uint64_t kSaltSegv = 0x99;
constexpr std::uint64_t kSaltOom = 0xaa;
constexpr std::uint64_t kSaltSpin = 0xbb;

}  // namespace

std::uint64_t fault_key(const std::string& module,
                        const std::vector<std::string>& seq,
                        std::size_t prefix_len) {
  std::uint64_t h = 1469598103934665603ULL;
  h = hash_str(h, module);
  prefix_len = std::min(prefix_len, seq.size());
  for (std::size_t i = 0; i < prefix_len; ++i) h = hash_str(h, seq[i]);
  return h;
}

double FaultInjector::unit(std::uint64_t key, std::uint64_t salt) const {
  const std::uint64_t h = mix64(key ^ mix64(plan_.seed ^ salt));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

FaultDecision FaultInjector::compile_fault(
    const std::string& module, const std::vector<std::string>& seq) const {
  if (plan_.deterministic_crash_rate <= 0.0 &&
      plan_.transient_crash_rate <= 0.0)
    return {};
  const std::size_t len = std::max<std::size_t>(1, seq.size());
  // Spread the per-sequence rate over the prefixes so that a length-60
  // sequence is not 60x as crashy as a length-1 one; for small rates the
  // whole-sequence crash probability stays ~= the configured rate.
  const double det_step = plan_.deterministic_crash_rate /
                          static_cast<double>(len);
  const double trans_step = plan_.transient_crash_rate /
                            static_cast<double>(len);
  const std::uint64_t full_key = fault_key(module, seq, seq.size());
  const std::uint32_t attempt = attempts_[full_key]++;
  for (std::size_t i = 1; i <= seq.size(); ++i) {
    const std::uint64_t key = fault_key(module, seq, i);
    if (unit(key, kSaltDetCrash) < det_step) {
      return {FaultKind::Crash, /*transient=*/false,
              "pass '" + seq[i - 1] + "' on '" + module + "'"};
    }
    if (unit(mix64(key ^ (static_cast<std::uint64_t>(attempt) << 32)),
             kSaltTransCrash) < trans_step) {
      return {FaultKind::Crash, /*transient=*/true,
              "pass '" + seq[i - 1] + "' on '" + module + "' (transient)"};
    }
  }
  return {};
}

FaultDecision FaultInjector::runtime_fault(std::uint64_t binary_hash) const {
  if (plan_.hang_rate > 0.0 && unit(binary_hash, kSaltHang) < plan_.hang_rate)
    return {FaultKind::Hang, /*transient=*/false, "deterministic hang"};
  if (plan_.transient_hang_rate > 0.0) {
    const std::uint32_t attempt = attempts_[mix64(binary_hash)]++;
    if (unit(mix64(binary_hash ^ (static_cast<std::uint64_t>(attempt) << 32)),
             kSaltTransHang) < plan_.transient_hang_rate)
      return {FaultKind::Hang, /*transient=*/true, "transient hang"};
  }
  return {};
}

bool FaultInjector::miscompiles(std::uint64_t binary_hash,
                                std::size_t workload) const {
  if (plan_.miscompile_rate > 0.0 &&
      unit(binary_hash, kSaltMiscompile) < plan_.miscompile_rate)
    return true;
  // Input-dependent corruption never manifests on the training input.
  if (workload >= 1 && plan_.workload_miscompile_rate > 0.0 &&
      unit(mix64(binary_hash ^ workload), kSaltWorkloadMis) <
          plan_.workload_miscompile_rate)
    return true;
  return false;
}

double FaultInjector::perturb(double cycles, std::uint64_t binary_hash,
                              std::uint64_t replicate) const {
  if (plan_.noise_sigma <= 0.0 && plan_.outlier_rate <= 0.0) return cycles;
  const std::uint64_t key = mix64(binary_hash ^ mix64(replicate + 1));
  double factor = 1.0;
  if (plan_.noise_sigma > 0.0) {
    // Box-Muller from two deterministic uniforms -> log-normal multiplier.
    const double u1 = std::max(1e-12, unit(key, kSaltNoise));
    const double u2 = unit(mix64(key), kSaltNoise);
    const double z =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    factor *= std::exp(plan_.noise_sigma * z);
  }
  if (plan_.outlier_rate > 0.0 &&
      unit(key, kSaltOutlier) < plan_.outlier_rate) {
    // Spike somewhere in [2, outlier_scale]: a measurement taken while
    // the machine was busy. Always slower, never faster.
    const double span = std::max(0.0, plan_.outlier_scale - 2.0);
    factor *= 2.0 + span * unit(mix64(key ^ 0xabcdULL), kSaltOutlier);
  }
  return cycles * factor;
}

RealFaultDecision FaultInjector::real_fault(
    const std::string& module, const std::vector<std::string>& seq) const {
  if (plan_.segv_rate <= 0.0 && plan_.oom_rate <= 0.0 &&
      plan_.spin_rate <= 0.0)
    return {};
  const std::uint64_t key = fault_key(module, seq, seq.size());
  RealFaultDecision d;
  if (plan_.segv_rate > 0.0 && unit(key, kSaltSegv) < plan_.segv_rate)
    d.mode = RealFaultMode::Segv;
  else if (plan_.oom_rate > 0.0 && unit(key, kSaltOom) < plan_.oom_rate)
    d.mode = RealFaultMode::Oom;
  else if (plan_.spin_rate > 0.0 && unit(key, kSaltSpin) < plan_.spin_rate)
    d.mode = RealFaultMode::Spin;
  if (d.mode != RealFaultMode::None && !seq.empty())
    d.pass_index = static_cast<std::size_t>(mix64(key)) % seq.size();
  return d;
}

void put(persist::Writer& w, const FaultPlan& p) {
  w.u64(p.seed);
  w.f64(p.transient_crash_rate);
  w.f64(p.deterministic_crash_rate);
  w.f64(p.hang_rate);
  w.f64(p.transient_hang_rate);
  w.f64(p.miscompile_rate);
  w.f64(p.workload_miscompile_rate);
  w.f64(p.noise_sigma);
  w.f64(p.outlier_rate);
  w.f64(p.outlier_scale);
  w.f64(p.segv_rate);
  w.f64(p.oom_rate);
  w.f64(p.spin_rate);
}

void get(persist::Reader& r, FaultPlan& p) {
  p.seed = r.u64();
  p.transient_crash_rate = r.f64();
  p.deterministic_crash_rate = r.f64();
  p.hang_rate = r.f64();
  p.transient_hang_rate = r.f64();
  p.miscompile_rate = r.f64();
  p.workload_miscompile_rate = r.f64();
  p.noise_sigma = r.f64();
  p.outlier_rate = r.f64();
  p.outlier_scale = r.f64();
  p.segv_rate = r.f64();
  p.oom_rate = r.f64();
  p.spin_rate = r.f64();
}

void FaultInjector::save_attempts(persist::Writer& w) const {
  std::vector<std::uint64_t> keys;
  keys.reserve(attempts_.size());
  for (const auto& [k, _] : attempts_) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  w.u64(keys.size());
  for (const std::uint64_t k : keys) {
    w.u64(k);
    w.u32(attempts_.at(k));
  }
}

void FaultInjector::load_attempts(persist::Reader& r) {
  attempts_.clear();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t k = r.u64();
    attempts_[k] = r.u32();
  }
}

}  // namespace citroen::sim
