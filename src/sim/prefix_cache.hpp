#pragma once
// Pipeline-prefix memoization for module builds.
//
// Candidate pass sequences produced by evolutionary generators share long
// prefixes (a 1+lambda mutation of a 40-pass incumbent keeps most of it),
// yet the seed evaluator re-ran every pipeline from pass 0. This cache
// interns sequences to dense pass ids, hashes (module, pass-id prefix)
// and stores cloned intermediate module states at a fixed stride, so a
// candidate sharing a k-pass prefix with any earlier candidate resumes
// compilation at the snapshot below k — plus a finalized entry per full
// sequence so exact re-builds (retries, duplicate candidates, replayed
// batches) are O(1).
//
// Determinism: passes are pure functions of the module, so a build that
// resumes from a snapshot is bit-identical to one that starts from
// scratch. All mutation is guarded by mutex-striped shards with an LRU
// byte budget; results are returned as shared_ptr so eviction never
// invalidates a consumer.

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/module.hpp"
#include "passes/pass.hpp"

namespace citroen::sim {

struct PrefixCacheConfig {
  /// Total byte budget across all shards. 0 disables storage entirely
  /// (every build then runs from scratch, still correctly).
  std::size_t byte_budget = std::size_t{64} << 20;
  /// Snapshot the intermediate module every this many passes.
  int snapshot_stride = 4;
  /// Mutex striping width.
  int shards = 8;
  /// Directory for the persistent disk tier (sim/cache_disk.hpp). Empty
  /// falls back to $CITROEN_CACHE_DIR; still empty disables the tier.
  /// Only finalized entries spill (stride snapshots stay RAM-only); any
  /// torn/corrupt entry on disk loads as a miss, never an error.
  std::string disk_dir;
};

struct PrefixCacheStats {
  std::uint64_t builds = 0;        ///< build() calls
  std::uint64_t full_hits = 0;     ///< whole sequence already finalized
  std::uint64_t prefix_hits = 0;   ///< resumed from an intermediate state
  std::uint64_t passes_run = 0;    ///< pass executions actually paid for
  std::uint64_t passes_saved = 0;  ///< pass executions avoided
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::size_t bytes = 0;           ///< currently resident
  // Disk-tier traffic (all zero when the tier is disabled).
  std::uint64_t disk_hits = 0;         ///< finalized builds served from disk
  std::uint64_t disk_misses = 0;       ///< absent or quarantined entries
  std::uint64_t disk_stores = 0;       ///< entries durably written
  std::uint64_t disk_quarantined = 0;  ///< corrupt entries renamed aside
};

/// Result of building one module under one pass-id sequence. Failures
/// carry the raw detail; the evaluator formats user-facing messages so
/// cached and uncached failures read identically.
struct ModuleBuild {
  bool ok = false;
  bool crashed = false;          ///< a pass threw (vs verifier rejection)
  std::string error;             ///< exception text or first verifier error
  ir::Module module;             ///< post-sequence state (when ok)
  passes::StatsRegistry stats;   ///< accumulated -stats counters
  std::uint64_t print_hash = 0;  ///< FNV-1a of ir::print_module(module)
  std::size_t code_size = 0;     ///< live instructions after the sequence
};

/// Process-global per-pass progress hook, invoked immediately before each
/// pass execution inside PrefixCache::build. Sandbox worker processes
/// install one after fork so the supervisor can name the pass that was
/// active at the moment of a crash (crash-signature capture); everywhere
/// else it stays null and costs a single relaxed atomic load per pass.
/// Install only while no builds are in flight — workers do it once at
/// startup, before serving any job.
using PassProgressHook = void (*)(passes::PassId);
void set_pass_progress_hook(PassProgressHook hook);

class DiskCacheTier;

class PrefixCache {
 public:
  explicit PrefixCache(PrefixCacheConfig config = {});

  /// Build `base` under `ids`, resuming from the longest cached prefix.
  /// Thread-safe; never throws (pass exceptions become failed results).
  /// `salt` is mixed into every cache key; a cache shared across
  /// evaluators passes a content hash of the module here so two modules
  /// that merely share a name can never alias.
  std::shared_ptr<const ModuleBuild> build(const ir::Module& base,
                                           const std::vector<passes::PassId>& ids,
                                           std::uint64_t salt = 0) const;

  bool enabled() const { return config_.byte_budget > 0; }

  /// Replace the configuration; drops all cached RAM state (the disk
  /// tier persists — that is its purpose — but is re-resolved from the
  /// new config's disk_dir).
  void configure(const PrefixCacheConfig& config);

  /// Drops RAM entries only; disk entries survive (restart semantics).
  void clear() const;

  /// Aggregated counters (approximate while builders are in flight).
  PrefixCacheStats stats() const;

  /// Persistent tier, or nullptr when disabled. Exposed for tests that
  /// corrupt entries on purpose.
  const DiskCacheTier* disk_tier() const { return disk_.get(); }

 private:
  struct Entry {
    std::shared_ptr<const ModuleBuild> value;
    std::list<std::uint64_t>::iterator lru_it;
    std::size_t bytes = 0;
    bool finalized = false;  ///< verified + hashed full-sequence result
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::uint64_t, Entry> map;
    std::list<std::uint64_t> lru;  ///< front = most recently used
    std::size_t bytes = 0;
  };

  Shard& shard_for(std::uint64_t key) const;
  std::shared_ptr<const ModuleBuild> lookup(std::uint64_t key,
                                            bool need_finalized) const;
  void insert(std::uint64_t key, std::shared_ptr<const ModuleBuild> value,
              bool finalized) const;
  void bump(std::uint64_t n, std::uint64_t PrefixCacheStats::* field) const;

  PrefixCacheConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::shared_ptr<DiskCacheTier> disk_;  ///< null when tier disabled
  mutable std::mutex stats_mu_;
  mutable PrefixCacheStats stats_;
};

}  // namespace citroen::sim
