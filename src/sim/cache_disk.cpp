#include "sim/cache_disk.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "ir/serialize.hpp"
#include "obs/metrics.hpp"
#include "persist/codec.hpp"
#include "persist/quarantine.hpp"

namespace citroen::sim {

namespace {

constexpr char kMagic[8] = {'C', 'T', 'R', 'N', 'P', 'F', 'X', '1'};
constexpr std::size_t kHeaderBytes = 8 + 8 + 8 + 4;
/// An entry bigger than this is not a prefix-cache snapshot; reject it
/// before allocating a payload buffer from a corrupt length field.
constexpr std::uint64_t kMaxEntryBytes = std::uint64_t{1} << 30;

/// mkdir -p. Returns true if the full path exists as a directory after.
bool make_dirs(const std::string& dir) {
  std::string partial;
  partial.reserve(dir.size());
  for (std::size_t i = 0; i <= dir.size(); ++i) {
    if (i < dir.size() && dir[i] != '/') {
      partial.push_back(dir[i]);
      continue;
    }
    if (i < dir.size()) partial.push_back('/');
    if (partial.empty() || partial == "/") continue;
    if (::mkdir(partial.c_str(), 0777) != 0 && errno != EEXIST) return false;
  }
  struct stat st{};
  return ::stat(dir.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

bool write_all(int fd, const char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(w);
  }
  return true;
}

/// Distinct tmp names across processes (pid) and threads (counter):
/// concurrent writers of one key must never share a tmp file.
std::string tmp_suffix() {
  static std::atomic<std::uint64_t> counter{0};
  char buf[64];
  std::snprintf(buf, sizeof(buf), ".tmp.%ld.%llu",
                static_cast<long>(::getpid()),
                static_cast<unsigned long long>(
                    counter.fetch_add(1, std::memory_order_relaxed)));
  return buf;
}

}  // namespace

std::string encode_module_build(const ModuleBuild& build) {
  persist::Writer w;
  w.b(build.ok);
  w.b(build.crashed);
  w.str(build.error);
  ir::put(w, build.module);
  // Counters travel by name: StatKeys are interned per-process, so a
  // cross-process (or cross-machine) load must re-intern via set().
  persist::put(w, build.stats.counters());
  w.u64(build.print_hash);
  w.u64(static_cast<std::uint64_t>(build.code_size));
  return w.take();
}

ModuleBuild decode_module_build(const std::string& payload) {
  persist::Reader r(payload);
  ModuleBuild b;
  b.ok = r.b();
  b.crashed = r.b();
  b.error = r.str();
  ir::get(r, b.module);
  std::map<std::string, std::int64_t> counters;
  persist::get(r, counters);
  for (const auto& [k, v] : counters) b.stats.set(k, v);
  b.print_hash = r.u64();
  b.code_size = static_cast<std::size_t>(r.u64());
  if (!r.at_end())
    throw std::runtime_error("disk-tier: trailing bytes after entry");
  return b;
}

DiskCacheTier::DiskCacheTier(std::string dir) : dir_(std::move(dir)) {
  if (dir_.empty()) return;
  enabled_ = make_dirs(dir_);
}

std::string DiskCacheTier::entry_path(std::uint64_t key) const {
  char name[40];
  std::snprintf(name, sizeof(name), "pfx_%016llx.bin",
                static_cast<unsigned long long>(key));
  return dir_ + "/" + name;
}

void DiskCacheTier::bump(std::uint64_t DiskTierStats::* field) const {
  const std::lock_guard<std::mutex> lock(stats_mu_);
  ++(stats_.*field);
}

DiskTierStats DiskCacheTier::stats() const {
  const std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void DiskCacheTier::store(std::uint64_t key, const ModuleBuild& build) const {
  if (!enabled_) return;
  const std::string path = entry_path(key);
  if (::access(path.c_str(), F_OK) == 0) return;  // same key => same bytes

  const std::string payload = encode_module_build(build);
  persist::Writer header;
  header.bytes(kMagic, sizeof(kMagic));
  header.u64(key);
  header.u64(payload.size());
  header.u32(persist::crc32(payload));

  const std::string tmp = path + tmp_suffix();
  const int fd = ::open(tmp.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
  if (fd < 0) {
    bump(&DiskTierStats::store_errors);
    return;
  }
  const bool ok = write_all(fd, header.data().data(), header.size()) &&
                  write_all(fd, payload.data(), payload.size()) &&
                  ::fsync(fd) == 0;
  ::close(fd);
  if (!ok || ::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    bump(&DiskTierStats::store_errors);
    return;
  }
  bump(&DiskTierStats::stores);
  OBS_COUNTER_INC("citroen_prefix_disk_stores_total");
}

std::shared_ptr<const ModuleBuild> DiskCacheTier::load(
    std::uint64_t key) const {
  if (!enabled_) return nullptr;
  const std::string path = entry_path(key);
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    bump(&DiskTierStats::misses);
    OBS_COUNTER_INC("citroen_prefix_disk_misses_total");
    return nullptr;
  }

  std::string raw;
  char buf[1 << 16];
  bool read_ok = true;
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      read_ok = false;
      break;
    }
    if (n == 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
    if (raw.size() > kMaxEntryBytes + kHeaderBytes) {
      read_ok = false;  // corrupt length can't excuse an unbounded read
      break;
    }
  }
  ::close(fd);

  // Every failure from here on is corruption, not absence: quarantine the
  // file so the next load is a clean miss, and report a miss now.
  try {
    if (!read_ok || raw.size() < kHeaderBytes)
      throw std::runtime_error("short entry");
    persist::Reader r(raw);
    char magic[8];
    for (char& c : magic) c = static_cast<char>(r.u8());
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
      throw std::runtime_error("bad magic");
    if (r.u64() != key) throw std::runtime_error("key mismatch");
    const std::uint64_t len = r.u64();
    const std::uint32_t crc = r.u32();
    if (len > kMaxEntryBytes || len != r.remaining())
      throw std::runtime_error("bad length");
    const std::string payload = raw.substr(kHeaderBytes);
    if (persist::crc32(payload) != crc)
      throw std::runtime_error("crc mismatch");
    auto build = std::make_shared<ModuleBuild>(decode_module_build(payload));
    bump(&DiskTierStats::hits);
    OBS_COUNTER_INC("citroen_prefix_disk_hits_total");
    return build;
  } catch (const std::exception&) {
    quarantine(path);
    bump(&DiskTierStats::misses);
    OBS_COUNTER_INC("citroen_prefix_disk_misses_total");
    return nullptr;
  }
}

void DiskCacheTier::quarantine(const std::string& path) const {
  persist::quarantine_file(path);
  bump(&DiskTierStats::quarantined);
  OBS_COUNTER_INC("citroen_prefix_disk_quarantined_total");
}

}  // namespace citroen::sim
