#include "sim/evaluator.hpp"

#include <algorithm>
#include <stdexcept>

#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "sim/faults.hpp"
#include "support/timer.hpp"

namespace citroen::sim {

const char* failure_kind_name(FailureKind k) {
  switch (k) {
    case FailureKind::None: return "none";
    case FailureKind::Crash: return "crash";
    case FailureKind::Hang: return "hang";
    case FailureKind::Miscompile: return "miscompile";
    case FailureKind::NoisyRejected: return "noisy-rejected";
    case FailureKind::Verifier: return "verifier";
  }
  return "unknown";
}

std::uint64_t program_hash(const ir::Program& p) {
  // The printer output is a deterministic structural encoding; hashing it
  // detects identical binaries across different pass sequences.
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a
  auto mix = [&h](const std::string& s) {
    for (const char c : s) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 1099511628211ULL;
    }
  };
  for (const auto& m : p.modules) mix(ir::print_module(m));
  return h;
}

std::uint64_t assignment_signature(const SequenceAssignment& seqs) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](const std::string& s) {
    for (const char c : s) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 1099511628211ULL;
    }
    h ^= 0xff;
    h *= 1099511628211ULL;
  };
  for (const auto& [module, seq] : seqs) {
    mix(module);
    for (const auto& p : seq) mix(p);
  }
  return h;
}

ProgramEvaluator::ProgramEvaluator(ir::Program base, ir::CostModel machine,
                                   ir::ExecLimits limits)
    : base_(std::move(base)), machine_(machine), limits_(limits) {
  const auto errs = [&] {
    std::vector<std::string> all;
    for (const auto& m : base_.modules) {
      auto e = ir::verify_module(m);
      all.insert(all.end(), e.begin(), e.end());
    }
    return all;
  }();
  if (!errs.empty())
    throw std::runtime_error("base program invalid: " + errs.front());

  const auto o0 = ir::interpret(base_, machine_, limits_);
  if (!o0.ok)
    throw std::runtime_error("base program traps: " + o0.trap);
  o0_cycles_ = o0.cycles;
  reference_output_ = o0.ret;

  std::string err;
  o3_built_ = build({}, nullptr, &err);
  if (!err.empty()) throw std::runtime_error("-O3 build failed: " + err);
  const auto o3 = ir::interpret(o3_built_, machine_, limits_);
  if (!o3.ok || o3.ret != reference_output_)
    throw std::runtime_error("-O3 build miscompiled " + base_.name + ": " +
                             (o3.ok ? "output mismatch" : o3.trap));
  o3_cycles_ = o3.cycles;
  o3_module_cycles_ = o3.module_cycles;
}

void ProgramEvaluator::set_exec_limits(const ir::ExecLimits& limits) {
  limits_ = limits;
  // Validity can change under the new limits; drop stale outcomes.
  cache_.clear();
}

void ProgramEvaluator::set_fault_injector(const FaultInjector* injector) {
  injector_ = (injector && injector->plan().enabled()) ? injector : nullptr;
  // Outcomes cached under a different fault model are no longer valid.
  cache_.clear();
}

void ProgramEvaluator::apply_workload(ir::Program& built, const Workload& w) {
  for (std::size_t mi = 0; mi < built.modules.size(); ++mi) {
    auto& globals = built.modules[mi].globals;
    for (std::size_t gi = 0; gi < globals.size(); ++gi)
      globals[gi].init = w.images[mi][gi];
  }
}

void ProgramEvaluator::add_workload(const ir::Program& variant) {
  if (variant.modules.size() != base_.modules.size())
    throw std::runtime_error("workload structure mismatch");
  Workload w;
  for (std::size_t mi = 0; mi < variant.modules.size(); ++mi) {
    const auto& m = variant.modules[mi];
    if (m.globals.size() != base_.modules[mi].globals.size())
      throw std::runtime_error("workload global-count mismatch in " + m.name);
    std::vector<std::vector<std::uint8_t>> images;
    for (const auto& g : m.globals) images.push_back(g.init);
    w.images.push_back(std::move(images));
  }
  const auto ref = ir::interpret(variant, machine_, limits_);
  if (!ref.ok)
    throw std::runtime_error("workload variant traps: " + ref.trap);
  w.reference = ref.ret;
  workloads_.push_back(std::move(w));

  // Timings and validity now mean something different: flush the cache
  // and recompute the multi-workload -O3 baseline.
  cache_.clear();
  ir::Program o3 = o3_built_;
  double total = ir::interpret(o3, machine_, limits_).cycles;
  for (const auto& wk : workloads_) {
    apply_workload(o3, wk);
    const auto r = ir::interpret(o3, machine_, limits_);
    if (!r.ok || r.ret != wk.reference)
      throw std::runtime_error("-O3 fails on added workload");
    total += r.cycles;
  }
  o3_cycles_ = total / static_cast<double>(num_workloads());
}

std::vector<std::pair<std::string, double>> ProgramEvaluator::hot_modules()
    const {
  double total = 0.0;
  for (const auto& [name, c] : o3_module_cycles_) total += c;
  std::vector<std::pair<std::string, double>> out;
  for (const auto& [name, c] : o3_module_cycles_)
    out.emplace_back(name, total > 0.0 ? c / total : 0.0);
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

ir::Program ProgramEvaluator::build(
    const SequenceAssignment& seqs, passes::StatsRegistry* stats_out,
    std::string* err,
    std::map<std::string, passes::StatsRegistry>* module_stats_out,
    FailureKind* failure_out, bool* transient_out) const {
  const Stopwatch sw;
  ir::Program built = base_;
  for (auto& m : built.modules) {
    const auto it = seqs.find(m.name);
    // Reuse the prebuilt -O3 module when this module is not being tuned
    // (constructor pass: o3_built_ is empty, so compile everything).
    if (it == seqs.end() && !o3_built_.modules.empty()) {
      const ir::Module* pre = o3_built_.find_module(m.name);
      if (pre) {
        m = *pre;
        continue;
      }
    }
    const auto& seq =
        it == seqs.end() ? passes::o3_sequence() : it->second;
    // Injected compiler faults hit tuned (adversarially ordered)
    // pipelines only; the fixed reference pipeline is assumed sound.
    if (injector_ && it != seqs.end()) {
      const auto fault = injector_->compile_fault(m.name, seq);
      if (fault.kind == FaultKind::Crash) {
        if (err) *err = "pass pipeline crashed (injected): " + fault.detail;
        if (failure_out) *failure_out = FailureKind::Crash;
        if (transient_out) *transient_out = fault.transient;
        return built;
      }
    }
    try {
      passes::StatsRegistry s = passes::run_sequence(m, seq);
      if (stats_out && it != seqs.end()) stats_out->merge(s);
      if (module_stats_out && it != seqs.end())
        (*module_stats_out)[m.name] = std::move(s);
    } catch (const std::exception& e) {
      if (err) *err = std::string("pass pipeline failed: ") + e.what();
      if (failure_out) *failure_out = FailureKind::Crash;
      return built;
    }
    const auto verrs = ir::verify_module(m);
    if (!verrs.empty()) {
      if (err) *err = "verifier: " + verrs.front();
      if (failure_out) *failure_out = FailureKind::Verifier;
      return built;
    }
  }
  ++num_compiles_;
  compile_seconds_ += sw.seconds();
  return built;
}

CompileOutcome ProgramEvaluator::compile(const SequenceAssignment& seqs,
                                         bool keep_program) const {
  CompileOutcome out;
  std::string err;
  ir::Program built = build(seqs, &out.stats, &err, &out.module_stats,
                            &out.failure, &out.transient);
  if (!err.empty()) {
    out.why_invalid = err;
    return out;
  }
  out.valid = true;
  out.binary_hash = program_hash(built);
  for (const auto& m : built.modules) out.code_size += m.code_size();
  if (keep_program)
    out.program = std::make_shared<const ir::Program>(std::move(built));
  return out;
}

EvalOutcome ProgramEvaluator::evaluate(const SequenceAssignment& seqs) {
  EvalOutcome out;
  std::string err;
  const ir::Program built =
      build(seqs, &out.stats, &err, nullptr, &out.failure, &out.transient);
  if (!err.empty()) {
    out.why_invalid = err;
    return out;
  }
  for (const auto& m : built.modules) out.code_size += m.code_size();

  const std::uint64_t h = program_hash(built);
  out.binary_hash = h;
  const auto hit = cache_.find(h);
  if (hit != cache_.end()) {
    const auto stats = out.stats;          // stats depend on the sequence,
    const auto size = out.code_size;       // not on the cached binary
    out = hit->second;
    out.stats = stats;
    out.code_size = size;
    out.cache_hit = true;
    ++num_cache_hits_;
    return out;
  }

  const Stopwatch sw;

  // Injected runtime hang: the binary would blow the instruction budget.
  // No cycles come back from a timed-out run.
  if (injector_) {
    const auto fault = injector_->runtime_fault(h);
    if (fault.kind == FaultKind::Hang) {
      ++num_measurements_;
      out.why_invalid =
          "hang: instruction budget exhausted (injected: " + fault.detail +
          ")";
      out.failure = FailureKind::Hang;
      out.transient = fault.transient;
      measure_seconds_ += sw.seconds();
      // Transient hangs must not poison the identical-binary cache: a
      // retry of the same binary may well succeed.
      if (!out.transient) cache_[h] = out;
      return out;
    }
  }

  const auto run = ir::interpret(built, machine_, limits_);
  ++num_measurements_;
  std::int64_t ret = run.ret;
  if (injector_ && run.ok && injector_->miscompiles(h, 0)) ret ^= 1;
  if (!run.ok) {
    if (run.hung) {
      out.why_invalid = "hang: " + run.trap;
      out.failure = FailureKind::Hang;
    } else {
      out.why_invalid = "runtime trap: " + run.trap;
      out.failure = FailureKind::Crash;
    }
  } else if (ret != reference_output_) {
    // Differential testing: the optimised program must produce the same
    // output as the -O0 reference on the same workload.
    out.why_invalid = "differential test failed (output mismatch)";
    out.failure = FailureKind::Miscompile;
  } else {
    out.valid = true;
    out.cycles = run.cycles;
    // Additional workloads: the build must match every reference; the
    // reported runtime is the mean over inputs.
    for (std::size_t wi = 0; wi < workloads_.size(); ++wi) {
      const auto& w = workloads_[wi];
      ir::Program variant = built;
      apply_workload(variant, w);
      const auto r = ir::interpret(variant, machine_, limits_);
      std::int64_t wret = r.ret;
      if (injector_ && r.ok && injector_->miscompiles(h, wi + 1)) wret ^= 1;
      if (!r.ok) {
        out.valid = false;
        if (r.hung) {
          out.why_invalid = "hang on extra workload: " + r.trap;
          out.failure = FailureKind::Hang;
        } else {
          out.why_invalid = "runtime trap on extra workload: " + r.trap;
          out.failure = FailureKind::Crash;
        }
        break;
      }
      if (wret != w.reference) {
        out.valid = false;
        out.why_invalid =
            "differential test failed on extra workload";
        out.failure = FailureKind::Miscompile;
        break;
      }
      out.cycles += r.cycles;
    }
    if (out.valid) {
      out.cycles /= static_cast<double>(num_workloads());
      out.speedup = o3_cycles_ / out.cycles;
    } else {
      out.cycles = 0.0;
    }
  }
  measure_seconds_ += sw.seconds();
  cache_[h] = out;
  return out;
}

}  // namespace citroen::sim
