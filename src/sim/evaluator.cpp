#include "sim/evaluator.hpp"

#include <algorithm>
#include <mutex>
#include <stdexcept>
#include <unordered_set>

#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "persist/codec.hpp"
#include "sim/faults.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

namespace citroen::sim {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv_string(const std::string& s) {
  std::uint64_t h = kFnvOffset;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

/// Fold one module's print hash into a composed program hash. Modules
/// are mixed in program order, so equal programs hash equal and the
/// composed value can be assembled from per-module cached hashes.
void mix_module_hash(std::uint64_t& h, std::uint64_t module_hash) {
  h ^= module_hash;
  h *= kFnvPrime;
}

/// Cache key of one (module, interned sequence) build job, used to
/// deduplicate prefetch work. Mirrors the prefix cache's keying.
std::uint64_t build_job_key(const std::string& module,
                            const std::vector<passes::PassId>& ids) {
  std::uint64_t h = fnv_string(module);
  h ^= 0xff;
  h *= kFnvPrime;
  for (const passes::PassId id : ids) {
    h ^= static_cast<std::uint8_t>(id & 0xff);
    h *= kFnvPrime;
    h ^= static_cast<std::uint8_t>(id >> 8);
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

const char* failure_kind_name(FailureKind k) {
  switch (k) {
    case FailureKind::None: return "none";
    case FailureKind::Crash: return "crash";
    case FailureKind::Hang: return "hang";
    case FailureKind::Miscompile: return "miscompile";
    case FailureKind::NoisyRejected: return "noisy-rejected";
    case FailureKind::Verifier: return "verifier";
    case FailureKind::WorkerCrash: return "worker-crash";
    case FailureKind::WorkerTimeout: return "worker-timeout";
    case FailureKind::WorkerOOM: return "worker-oom";
    case FailureKind::PeerLost: return "peer-lost";
    case FailureKind::PeerTimeout: return "peer-timeout";
    case FailureKind::PeerProtocol: return "peer-protocol";
  }
  return "unknown";
}

std::uint64_t program_hash(const ir::Program& p) {
  // The printer output is a deterministic structural encoding; hashing
  // it per module and folding the per-module hashes detects identical
  // binaries across different pass sequences, and lets the evaluator
  // compose the program hash from cached per-module values.
  std::uint64_t h = kFnvOffset;
  for (const auto& m : p.modules) mix_module_hash(h, fnv_string(ir::print_module(m)));
  return h;
}

std::uint64_t assignment_signature(const SequenceAssignment& seqs) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](const std::string& s) {
    for (const char c : s) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 1099511628211ULL;
    }
    h ^= 0xff;
    h *= 1099511628211ULL;
  };
  for (const auto& [module, seq] : seqs) {
    mix(module);
    for (const auto& p : seq) mix(p);
  }
  return h;
}

ProgramEvaluator::ProgramEvaluator(ir::Program base, ir::CostModel machine,
                                   ir::ExecLimits limits)
    : base_(std::move(base)), machine_(machine), limits_(limits) {
  const auto errs = [&] {
    std::vector<std::string> all;
    for (const auto& m : base_.modules) {
      auto e = ir::verify_module(m);
      all.insert(all.end(), e.begin(), e.end());
    }
    return all;
  }();
  if (!errs.empty())
    throw std::runtime_error("base program invalid: " + errs.front());

  // Content salts must exist before the first build (the -O3 reference
  // below), or constructor-time cache keys would alias by module name
  // alone — harmless in a private RAM cache, wrong the moment a cache is
  // shared across evaluators or spilled to the disk tier.
  for (const auto& m : base_.modules)
    module_salt_[m.name] = fnv_string(ir::print_module(m));

  const auto o0 = ir::interpret(base_, machine_, limits_);
  if (!o0.ok)
    throw std::runtime_error("base program traps: " + o0.trap);
  o0_cycles_ = o0.cycles;
  reference_output_ = o0.ret;

  std::string err;
  o3_built_ = build({}, nullptr, &err);
  if (!err.empty()) throw std::runtime_error("-O3 build failed: " + err);
  const auto o3 = ir::interpret(o3_built_, machine_, limits_);
  if (!o3.ok || o3.ret != reference_output_)
    throw std::runtime_error("-O3 build miscompiled " + base_.name + ": " +
                             (o3.ok ? "output mismatch" : o3.trap));
  o3_cycles_ = o3.cycles;
  o3_module_cycles_ = o3.module_cycles;
  for (const auto& m : o3_built_.modules)
    o3_module_print_hash_[m.name] = fnv_string(ir::print_module(m));
}

void ProgramEvaluator::set_exec_limits(const ir::ExecLimits& limits) {
  limits_ = limits;
  // Validity can change under the new limits; drop stale outcomes and
  // memoized interpreter runs.
  cache_.clear();
  measure_memo_.clear();
}

void ProgramEvaluator::set_fault_injector(const FaultInjector* injector) {
  injector_ = (injector && injector->plan().enabled()) ? injector : nullptr;
  // Outcomes cached under a different fault model are no longer valid.
  cache_.clear();
  measure_memo_.clear();
}

void ProgramEvaluator::set_prefix_cache_config(
    const PrefixCacheConfig& config) {
  bc().configure(config);
  measure_memo_.clear();
}

void ProgramEvaluator::set_shared_prefix_cache(
    std::shared_ptr<PrefixCache> cache) {
  shared_cache_ = std::move(cache);
  measure_memo_.clear();
}

void ProgramEvaluator::apply_workload(ir::Program& built, const Workload& w) {
  for (std::size_t mi = 0; mi < built.modules.size(); ++mi) {
    auto& globals = built.modules[mi].globals;
    for (std::size_t gi = 0; gi < globals.size(); ++gi)
      globals[gi].init = w.images[mi][gi];
  }
}

void ProgramEvaluator::add_workload(const ir::Program& variant) {
  if (variant.modules.size() != base_.modules.size())
    throw std::runtime_error("workload structure mismatch");
  Workload w;
  for (std::size_t mi = 0; mi < variant.modules.size(); ++mi) {
    const auto& m = variant.modules[mi];
    if (m.globals.size() != base_.modules[mi].globals.size())
      throw std::runtime_error("workload global-count mismatch in " + m.name);
    std::vector<std::vector<std::uint8_t>> images;
    for (const auto& g : m.globals) images.push_back(g.init);
    w.images.push_back(std::move(images));
  }
  const auto ref = ir::interpret(variant, machine_, limits_);
  if (!ref.ok)
    throw std::runtime_error("workload variant traps: " + ref.trap);
  w.reference = ref.ret;
  workloads_.push_back(std::move(w));

  // Timings and validity now mean something different: flush the cache
  // and recompute the multi-workload -O3 baseline.
  cache_.clear();
  measure_memo_.clear();
  ir::Program o3 = o3_built_;
  double total = ir::interpret(o3, machine_, limits_).cycles;
  for (const auto& wk : workloads_) {
    apply_workload(o3, wk);
    const auto r = ir::interpret(o3, machine_, limits_);
    if (!r.ok || r.ret != wk.reference)
      throw std::runtime_error("-O3 fails on added workload");
    total += r.cycles;
  }
  o3_cycles_ = total / static_cast<double>(num_workloads());
}

std::vector<std::pair<std::string, double>> ProgramEvaluator::hot_modules()
    const {
  double total = 0.0;
  for (const auto& [name, c] : o3_module_cycles_) total += c;
  std::vector<std::pair<std::string, double>> out;
  for (const auto& [name, c] : o3_module_cycles_)
    out.emplace_back(name, total > 0.0 ? c / total : 0.0);
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

ir::Program ProgramEvaluator::build(
    const SequenceAssignment& seqs, passes::StatsRegistry* stats_out,
    std::string* err,
    std::map<std::string, passes::StatsRegistry>* module_stats_out,
    FailureKind* failure_out, bool* transient_out,
    std::uint64_t* hash_out) const {
  const Stopwatch sw;
  OBS_SPAN("build", "eval");
  OBS_COUNTER_INC("citroen_builds_total");
  ir::Program built = base_;
  std::uint64_t h = kFnvOffset;
  for (auto& m : built.modules) {
    const auto it = seqs.find(m.name);
    // Reuse the prebuilt -O3 module when this module is not being tuned
    // (constructor pass: o3_built_ is empty, so compile everything).
    if (it == seqs.end() && !o3_built_.modules.empty()) {
      const ir::Module* pre = o3_built_.find_module(m.name);
      if (pre) {
        mix_module_hash(h, o3_module_print_hash_.at(m.name));
        m = *pre;
        continue;
      }
    }
    const auto& seq =
        it == seqs.end() ? passes::o3_sequence() : it->second;
    // Injected compiler faults hit tuned (adversarially ordered)
    // pipelines only; the fixed reference pipeline is assumed sound.
    if (injector_ && it != seqs.end()) {
      const auto fault = injector_->compile_fault(m.name, seq);
      if (fault.kind == FaultKind::Crash) {
        if (err) *err = "pass pipeline crashed (injected): " + fault.detail;
        if (failure_out) *failure_out = FailureKind::Crash;
        if (transient_out) *transient_out = fault.transient;
        return built;
      }
    }
    std::vector<passes::PassId> ids;
    try {
      ids = passes::intern_sequence(seq);
    } catch (const std::exception& e) {
      if (err) *err = std::string("pass pipeline failed: ") + e.what();
      if (failure_out) *failure_out = FailureKind::Crash;
      return built;
    }
    const auto mb = bc().build(m, ids, module_salt(m.name));
    if (!mb->ok) {
      if (mb->crashed) {
        if (err) *err = "pass pipeline failed: " + mb->error;
        if (failure_out) *failure_out = FailureKind::Crash;
      } else {
        if (err) *err = "verifier: " + mb->error;
        if (failure_out) *failure_out = FailureKind::Verifier;
      }
      return built;
    }
    if (stats_out && it != seqs.end()) stats_out->merge(mb->stats);
    if (module_stats_out && it != seqs.end())
      (*module_stats_out)[m.name] = mb->stats;
    mix_module_hash(h, mb->print_hash);
    m = mb->module;
  }
  ++num_compiles_;
  compile_seconds_ += sw.seconds();
  if (hash_out) *hash_out = h;
  return built;
}

CompileOutcome ProgramEvaluator::compile(const SequenceAssignment& seqs,
                                         bool keep_program) const {
  CompileOutcome out;
  std::string err;
  std::uint64_t h = 0;
  ir::Program built = build(seqs, &out.stats, &err, &out.module_stats,
                            &out.failure, &out.transient, &h);
  if (!err.empty()) {
    out.why_invalid = err;
    return out;
  }
  out.valid = true;
  out.binary_hash = h;
  for (const auto& m : built.modules) out.code_size += m.code_size();
  if (keep_program)
    out.program = std::make_shared<const ir::Program>(std::move(built));
  return out;
}

EvalOutcome ProgramEvaluator::evaluate(const SequenceAssignment& seqs) {
  EvalOutcome out;
  std::string err;
  std::uint64_t h = 0;
  const ir::Program built =
      build(seqs, &out.stats, &err, nullptr, &out.failure, &out.transient, &h);
  if (!err.empty()) {
    out.why_invalid = err;
    return out;
  }
  for (const auto& m : built.modules) out.code_size += m.code_size();

  out.binary_hash = h;
  const auto hit = cache_.find(h);
  if (hit != cache_.end()) {
    const auto stats = out.stats;          // stats depend on the sequence,
    const auto size = out.code_size;       // not on the cached binary
    out = hit->second;
    out.stats = stats;
    out.code_size = size;
    out.cache_hit = true;
    ++num_cache_hits_;
    OBS_INSTANT("binary_cache_hit", "eval");
    OBS_COUNTER_INC("citroen_binary_cache_hits_total");
    return out;
  }

  const Stopwatch sw;
  OBS_SPAN("measure", "eval");
  OBS_COUNTER_INC("citroen_measurements_total");

  // Injected runtime hang: the binary would blow the instruction budget.
  // No cycles come back from a timed-out run.
  if (injector_) {
    const auto fault = injector_->runtime_fault(h);
    if (fault.kind == FaultKind::Hang) {
      ++num_measurements_;
      out.why_invalid =
          "hang: instruction budget exhausted (injected: " + fault.detail +
          ")";
      out.failure = FailureKind::Hang;
      out.transient = fault.transient;
      measure_seconds_ += sw.seconds();
      // Transient hangs must not poison the identical-binary cache: a
      // retry of the same binary may well succeed.
      if (!out.transient) cache_[h] = out;
      return out;
    }
  }

  // Interpreter runs are pure in the binary; consume prefetched memos
  // where available (missing/short memos fall back to interpreting).
  const MeasureMemo* memo = nullptr;
  if (const auto mit = measure_memo_.find(h); mit != measure_memo_.end())
    memo = &mit->second;
  const auto run_at = [&](std::size_t idx,
                          const ir::Program& prog) -> ir::ExecResult {
    if (memo && idx < memo->runs.size()) return memo->runs[idx];
    return ir::interpret(prog, machine_, limits_);
  };

  const auto run = run_at(0, built);
  ++num_measurements_;
  std::int64_t ret = run.ret;
  if (injector_ && run.ok && injector_->miscompiles(h, 0)) ret ^= 1;
  if (!run.ok) {
    if (run.hung) {
      out.why_invalid = "hang: " + run.trap;
      out.failure = FailureKind::Hang;
    } else {
      out.why_invalid = "runtime trap: " + run.trap;
      out.failure = FailureKind::Crash;
    }
  } else if (ret != reference_output_) {
    // Differential testing: the optimised program must produce the same
    // output as the -O0 reference on the same workload.
    out.why_invalid = "differential test failed (output mismatch)";
    out.failure = FailureKind::Miscompile;
  } else {
    out.valid = true;
    out.cycles = run.cycles;
    // Additional workloads: the build must match every reference; the
    // reported runtime is the mean over inputs.
    for (std::size_t wi = 0; wi < workloads_.size(); ++wi) {
      const auto& w = workloads_[wi];
      ir::Program variant;
      if (!(memo && wi + 1 < memo->runs.size())) {
        variant = built;
        apply_workload(variant, w);
      }
      const auto r = run_at(wi + 1, variant);
      std::int64_t wret = r.ret;
      if (injector_ && r.ok && injector_->miscompiles(h, wi + 1)) wret ^= 1;
      if (!r.ok) {
        out.valid = false;
        if (r.hung) {
          out.why_invalid = "hang on extra workload: " + r.trap;
          out.failure = FailureKind::Hang;
        } else {
          out.why_invalid = "runtime trap on extra workload: " + r.trap;
          out.failure = FailureKind::Crash;
        }
        break;
      }
      if (wret != w.reference) {
        out.valid = false;
        out.why_invalid =
            "differential test failed on extra workload";
        out.failure = FailureKind::Miscompile;
        break;
      }
      out.cycles += r.cycles;
    }
    if (out.valid) {
      out.cycles /= static_cast<double>(num_workloads());
      out.speedup = o3_cycles_ / out.cycles;
      // Deterministic payload (simulated cycles, not wall time), so this
      // histogram is identical across runs/threads.
      OBS_HISTO_RECORD("citroen_eval_cycles", out.cycles);
    } else {
      out.cycles = 0.0;
    }
  }
  measure_seconds_ += sw.seconds();
  cache_[h] = out;
  return out;
}

void ProgramEvaluator::prefetch(std::span<const SequenceAssignment> batch,
                                bool with_measure) {
  if (batch.empty() || !bc().enabled()) return;
  ThreadPool& pool = pool_ ? *pool_ : ThreadPool::global();

  // Stage 1: compile every unique (module, sequence) job concurrently
  // into the prefix cache. Pass pipelines are pure in (module, ids), so
  // concurrent population cannot change any later result. The fault
  // injector is deliberately NOT consulted here: its attempt counters
  // are order-sensitive and belong to the serial replay.
  struct BuildJob {
    const ir::Module* module;
    std::vector<passes::PassId> ids;
    std::uint64_t salt = 0;
  };
  std::vector<BuildJob> jobs;
  std::unordered_set<std::uint64_t> seen_jobs;
  for (const auto& seqs : batch) {
    for (const auto& [name, seq] : seqs) {
      const ir::Module* m = base_.find_module(name);
      if (!m) continue;
      std::vector<passes::PassId> ids;
      try {
        ids = passes::intern_sequence(seq);
      } catch (const std::exception&) {
        continue;  // serial path reports the identical error itself
      }
      if (!seen_jobs.insert(build_job_key(name, ids)).second) continue;
      jobs.push_back(BuildJob{m, std::move(ids), module_salt(name)});
    }
  }
  std::mutex acct_mu;
  double build_secs = 0.0;
  pool.parallel_for(jobs.size(), [&](std::size_t i) {
    const Stopwatch sw;
    OBS_SPAN("prefetch_build", "eval");
    bc().build(*jobs[i].module, jobs[i].ids, jobs[i].salt);
    const double s = sw.seconds();
    const std::lock_guard<std::mutex> lock(acct_mu);
    build_secs += s;
  });
  compile_seconds_ += build_secs;
  if (!with_measure) return;

  // Stage 2: assemble each candidate's binary from the (now warm) cache
  // and interpret every not-yet-measured distinct binary concurrently.
  // Runs use raw interpreter results only; injected miscompiles/hangs
  // are applied by the serial replay, which falls back to interpreting
  // directly if its early-stop point differs from ours.
  struct MeasureJob {
    std::uint64_t hash = 0;
    ir::Program built;
  };
  std::vector<MeasureJob> mjobs;
  std::unordered_set<std::uint64_t> seen_binaries;
  for (const auto& seqs : batch) {
    ir::Program built;
    std::uint64_t h = 0;
    if (!assemble_pure(seqs, &built, &h)) continue;
    if (cache_.count(h) || measure_memo_.count(h)) continue;
    if (!seen_binaries.insert(h).second) continue;
    mjobs.push_back(MeasureJob{h, std::move(built)});
  }

  std::vector<MeasureMemo> memos(mjobs.size());
  std::vector<double> secs(mjobs.size(), 0.0);
  pool.parallel_for(mjobs.size(), [&](std::size_t i) {
    const Stopwatch sw;
    OBS_SPAN("prefetch_measure", "eval");
    memos[i].runs = measure_pure(mjobs[i].built);
    secs[i] = sw.seconds();
  });
  for (std::size_t i = 0; i < mjobs.size(); ++i) {
    measure_memo_.emplace(mjobs[i].hash, std::move(memos[i]));
    measure_seconds_ += secs[i];
  }
}

bool ProgramEvaluator::assemble_pure(const SequenceAssignment& seqs,
                                     ir::Program* built,
                                     std::uint64_t* hash) const {
  *built = base_;
  std::uint64_t h = kFnvOffset;
  for (auto& m : built->modules) {
    const auto it = seqs.find(m.name);
    if (it == seqs.end()) {
      const ir::Module* pre = o3_built_.find_module(m.name);
      if (pre) {
        mix_module_hash(h, o3_module_print_hash_.at(m.name));
        m = *pre;
        continue;
      }
    }
    const auto& seq = it == seqs.end() ? passes::o3_sequence() : it->second;
    std::vector<passes::PassId> ids;
    try {
      ids = passes::intern_sequence(seq);
    } catch (const std::exception&) {
      return false;  // serial path reports the identical error itself
    }
    const auto mb = bc().build(m, ids, module_salt(m.name));
    if (!mb->ok) return false;
    mix_module_hash(h, mb->print_hash);
    m = mb->module;
  }
  *hash = h;
  return true;
}

std::vector<ir::ExecResult> ProgramEvaluator::measure_pure(
    const ir::Program& built) const {
  std::vector<ir::ExecResult> runs;
  const auto run = ir::interpret(built, machine_, limits_);
  runs.push_back(run);
  if (run.ok && run.ret == reference_output_) {
    for (const auto& w : workloads_) {
      ir::Program variant = built;
      apply_workload(variant, w);
      const auto r = ir::interpret(variant, machine_, limits_);
      runs.push_back(r);
      if (!r.ok || r.ret != w.reference) break;
    }
  }
  return runs;
}

PureEvalResult ProgramEvaluator::pure_evaluate(const SequenceAssignment& seqs,
                                               bool with_measure) const {
  PureEvalResult out;
  ir::Program built;
  std::uint64_t h = 0;
  {
    OBS_SPAN("build", "eval");
    OBS_COUNTER_INC("citroen_builds_total");
    if (!assemble_pure(seqs, &built, &h)) return out;
  }
  out.built = true;
  out.binary_hash = h;
  if (with_measure) {
    OBS_SPAN("measure", "eval");
    OBS_COUNTER_INC("citroen_measurements_total");
    out.runs = measure_pure(built);
  }
  return out;
}

void ProgramEvaluator::install_measure_memo(std::uint64_t binary_hash,
                                            std::vector<ir::ExecResult> runs) {
  if (binary_hash == 0 || runs.empty()) return;
  if (cache_.count(binary_hash) || measure_memo_.count(binary_hash)) return;
  measure_memo_.emplace(binary_hash, MeasureMemo{std::move(runs)});
}

std::vector<EvalOutcome> Evaluator::evaluate_batch(
    std::span<const SequenceAssignment> batch) {
  prefetch(batch, /*with_measure=*/true);
  std::vector<EvalOutcome> out;
  out.reserve(batch.size());
  for (const auto& seqs : batch) out.push_back(evaluate(seqs));
  return out;
}

std::vector<CompileOutcome> Evaluator::compile_batch(
    std::span<const SequenceAssignment> batch, bool keep_program) {
  prefetch(batch, /*with_measure=*/false);
  std::vector<CompileOutcome> out;
  out.reserve(batch.size());
  for (const auto& seqs : batch) out.push_back(compile(seqs, keep_program));
  return out;
}

// ---- serialization (persist/codec.hpp) ------------------------------------

void put(persist::Writer& w, const SequenceAssignment& a) {
  w.u64(a.size());
  for (const auto& [module, seq] : a) {
    w.str(module);
    persist::put(w, seq);
  }
}

void get(persist::Reader& r, SequenceAssignment& a) {
  a.clear();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string module = r.str();
    persist::get(r, a[module]);
  }
}

void put(persist::Writer& w, const EvalOutcome& o) {
  w.b(o.valid);
  w.str(o.why_invalid);
  w.u8(static_cast<std::uint8_t>(o.failure));
  w.b(o.transient);
  w.f64(o.cycles);
  w.f64(o.speedup);
  w.b(o.cache_hit);
  w.i32(o.attempts);
  w.u64(o.binary_hash);
  persist::put(w, o.stats.counters());
  w.u64(o.code_size);
}

void get(persist::Reader& r, EvalOutcome& o) {
  o.valid = r.b();
  o.why_invalid = r.str();
  o.failure = static_cast<FailureKind>(r.u8());
  o.transient = r.b();
  o.cycles = r.f64();
  o.speedup = r.f64();
  o.cache_hit = r.b();
  o.attempts = r.i32();
  o.binary_hash = r.u64();
  std::map<std::string, std::int64_t> counters;
  persist::get(r, counters);
  o.stats.clear();
  // set(), not add(): merge() can legitimately leave zero-valued counters
  // and the restored registry must reproduce the original byte-for-byte.
  for (const auto& [k, v] : counters) o.stats.set(k, v);
  o.code_size = static_cast<std::size_t>(r.u64());
}

void ProgramEvaluator::save_runtime_state(persist::Writer& w) const {
  std::vector<std::uint64_t> keys;
  keys.reserve(cache_.size());
  for (const auto& [h, _] : cache_) keys.push_back(h);
  std::sort(keys.begin(), keys.end());
  w.u64(keys.size());
  for (const std::uint64_t h : keys) {
    w.u64(h);
    put(w, cache_.at(h));
  }
  w.f64(compile_seconds_);
  w.f64(measure_seconds_);
  w.i32(num_compiles_);
  w.i32(num_measurements_);
  w.i32(num_cache_hits_);
}

void ProgramEvaluator::load_runtime_state(persist::Reader& r) {
  cache_.clear();
  measure_memo_.clear();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t h = r.u64();
    get(r, cache_[h]);
  }
  compile_seconds_ = r.f64();
  measure_seconds_ = r.f64();
  num_compiles_ = r.i32();
  num_measurements_ = r.i32();
  num_cache_hits_ = r.i32();
}

}  // namespace citroen::sim
