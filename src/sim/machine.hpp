#pragma once
// Named machine-model presets standing in for the paper's two evaluation
// platforms (an ARM Cortex-A57 Jetson TX2 and an AMD x86 server).

#include <string>

#include "ir/interpreter.hpp"

namespace citroen::sim {

/// In-order-ish embedded core: branch misses cheap-ish, loads slow,
/// narrow register file — favours unrolling less, vectorisation more.
ir::CostModel arm_a57_model();

/// Wide out-of-order server core: expensive mispredicts, cheap loads,
/// bigger register file — favours branch removal and inlining.
ir::CostModel amd_zen_model();

/// Resolve a preset by name ("arm" | "x86"); throws on unknown names.
ir::CostModel machine_by_name(const std::string& name);

}  // namespace citroen::sim
