#pragma once
// Hardened evaluation layer: makes the tuning loop survive the fault
// model of sim/faults.hpp the way a production tuning service must
// survive a noisy embedded board (the paper's Jetson TX2 target).
//
// On top of an inner Evaluator (a plain ProgramEvaluator, or a
// sandbox::SandboxedEvaluator that contains real process deaths) it adds:
//   - bounded retry with (simulated) backoff for transient failures,
//   - a quarantine set of assignment signatures that failed
//     deterministically, so the search never re-pays for a known-bad
//     sequence and candidate generators can skip proposing them; the set
//     is LRU-bounded (`RobustConfig::quarantine_cap`) so soak runs cannot
//     grow it without limit,
//   - replicated measurement under injected noise with median /
//     trimmed-mean aggregation, plus adaptive re-measurement when a
//     candidate lands near the incumbent (where a wrong ranking is most
//     costly),
//   - a noisy-rejection guard: measurements whose replicate spread stays
//     too large to trust are rejected rather than recorded,
//   - per-failure-class counters and budget accounting that charges
//     every failed attempt, so experiments can report the true cost.
//
// With no injector attached (or an all-zero plan) every call forwards to
// the base evaluator and outputs are bit-for-bit identical to it.

#include <cstdint>
#include <list>
#include <map>
#include <unordered_map>
#include <utility>

#include "sim/evaluator.hpp"
#include "sim/faults.hpp"

namespace citroen::sim {

struct RobustConfig {
  int max_retries = 2;           ///< extra attempts after a transient failure
  int replicates = 3;            ///< noisy measurements aggregated per eval
  int max_extra_replicates = 4;  ///< adaptive re-measurement cap
  /// 0 = median aggregation; in (0, 0.5) = trimmed mean discarding this
  /// fraction from each tail.
  double trim_fraction = 0.0;
  /// Re-measure adaptively when a candidate's aggregated speedup lands
  /// within this relative margin of the best speedup seen so far.
  double near_incumbent_margin = 0.03;
  /// Reject the measurement entirely (failure class `noisy-rejected`)
  /// when the replicates' median absolute deviation exceeds this fraction
  /// of the median even after adaptive re-measurement.
  double noisy_reject_mad = 0.35;
  bool quarantine = true;        ///< remember deterministic failures
  /// Most signatures the quarantine set remembers before evicting the
  /// least-recently-used one (0 = unbounded). An evicted signature merely
  /// pays its deterministic failure again if re-proposed — correctness is
  /// unaffected, only the budget spent.
  std::size_t quarantine_cap = 8192;
};

/// LRU-bounded map of assignment signature -> failure class. Recency
/// order is deterministic: insertions and evaluate-path hits refresh it,
/// read-only generator queries (`peek`) do not, so results never depend
/// on how often candidates were merely *proposed*.
class QuarantineSet {
 public:
  explicit QuarantineSet(std::size_t cap = 0) : cap_(cap) {}

  void set_cap(std::size_t cap);

  /// Record (or refresh) a signature, evicting the LRU entry past the cap.
  void insert(std::uint64_t sig, FailureKind kind);
  /// Lookup without touching recency (candidate-generator queries).
  const FailureKind* peek(std::uint64_t sig) const;
  /// Lookup and refresh recency (an evaluation answered from quarantine:
  /// a signature the search keeps proposing should stay resident).
  const FailureKind* touch(std::uint64_t sig);

  std::size_t size() const { return index_.size(); }
  std::uint64_t evictions() const { return evictions_; }

  /// Serialized most- to least-recent so a restored set evicts in the
  /// same order the original would have.
  void save(persist::Writer& w) const;
  void load(persist::Reader& r);

 private:
  using Order = std::list<std::pair<std::uint64_t, FailureKind>>;

  std::size_t cap_;
  std::uint64_t evictions_ = 0;
  Order order_;  ///< front = most recently used
  std::unordered_map<std::uint64_t, Order::iterator> index_;
};

/// Observable robustness counters (reported by the fault benches).
struct RobustStats {
  int evaluations = 0;       ///< evaluate() calls that reached the base
  int attempts = 0;          ///< base evaluations incl. retries
  int retries = 0;           ///< attempts beyond the first
  int quarantine_hits = 0;   ///< evaluations skipped via the quarantine set
  int remeasurements = 0;    ///< adaptive extra replicates taken
  int valid = 0;             ///< evaluations that produced a trusted result
  /// Failed evaluations per failure class name ("crash", "hang", ...).
  std::map<std::string, int> failures;
};

class RobustEvaluator : public Evaluator {
 public:
  /// `injector` may be nullptr (no faults); it must outlive this object.
  /// The injector is attached through `base` (decorators forward it to
  /// the ProgramEvaluator at the bottom) for this wrapper's lifetime.
  RobustEvaluator(Evaluator& base, RobustConfig config = {},
                  const FaultInjector* injector = nullptr);
  ~RobustEvaluator() override;

  const ir::Program& base_program() const override {
    return base_.base_program();
  }
  const std::string& program_name() const override {
    return base_.program_name();
  }
  double o3_cycles() const override { return base_.o3_cycles(); }
  double o0_cycles() const override { return base_.o0_cycles(); }
  std::int64_t reference_output() const override {
    return base_.reference_output();
  }
  std::vector<std::pair<std::string, double>> hot_modules() const override {
    return base_.hot_modules();
  }

  CompileOutcome compile(const SequenceAssignment& seqs,
                         bool keep_program = false) const override;
  EvalOutcome evaluate(const SequenceAssignment& seqs) override;

  /// Forward the pure prefetch work to the base evaluator, minus
  /// candidates already quarantined (their serial evaluation short-
  /// circuits before touching the base). Quarantine decisions themselves
  /// stay in the serial replay, so batch results match serial exactly.
  void prefetch(std::span<const SequenceAssignment> batch,
                bool with_measure = true) override;

  bool is_quarantined(const SequenceAssignment& seqs) const override;

  const RobustStats& robust_stats() const { return stats_; }
  std::size_t quarantine_size() const { return quarantine_.size(); }
  std::uint64_t quarantine_evictions() const {
    return quarantine_.evictions();
  }

  /// Checkpoint/restore this wrapper's own order-sensitive state: the
  /// quarantine set (in recency order), per-binary replicate counters,
  /// robustness counters and the incumbent speedup. The wrapped base
  /// evaluator and the fault injector checkpoint themselves separately.
  void save_state(persist::Writer& w) const;
  void load_state(persist::Reader& r);

  double total_compile_seconds() const override {
    return base_.total_compile_seconds();
  }
  double total_measure_seconds() const override {
    return base_.total_measure_seconds();
  }
  int num_compiles() const override { return base_.num_compiles(); }
  int num_measurements() const override { return base_.num_measurements(); }
  int num_cache_hits() const override { return base_.num_cache_hits(); }

 private:
  double aggregate(std::vector<double>& samples) const;
  double dispersion(std::vector<double> samples) const;

  Evaluator& base_;
  RobustConfig config_;
  const FaultInjector* injector_;
  QuarantineSet quarantine_;
  /// Replicate counter per binary: keeps repeated noisy measurements of
  /// the same binary on fresh deterministic noise draws.
  std::unordered_map<std::uint64_t, std::uint64_t> replicate_counter_;
  mutable RobustStats stats_;  ///< compile() retries update it too
  double best_speedup_seen_ = 0.0;
};

}  // namespace citroen::sim
