#pragma once
// Hardened evaluation layer: makes the tuning loop survive the fault
// model of sim/faults.hpp the way a production tuning service must
// survive a noisy embedded board (the paper's Jetson TX2 target).
//
// On top of a plain ProgramEvaluator it adds:
//   - bounded retry with (simulated) backoff for transient failures,
//   - a quarantine set of assignment signatures that failed
//     deterministically, so the search never re-pays for a known-bad
//     sequence and candidate generators can skip proposing them,
//   - replicated measurement under injected noise with median /
//     trimmed-mean aggregation, plus adaptive re-measurement when a
//     candidate lands near the incumbent (where a wrong ranking is most
//     costly),
//   - a noisy-rejection guard: measurements whose replicate spread stays
//     too large to trust are rejected rather than recorded,
//   - per-failure-class counters and budget accounting that charges
//     every failed attempt, so experiments can report the true cost.
//
// With no injector attached (or an all-zero plan) every call forwards to
// the base evaluator and outputs are bit-for-bit identical to it.

#include <cstdint>
#include <map>
#include <unordered_map>

#include "sim/evaluator.hpp"
#include "sim/faults.hpp"

namespace citroen::sim {

struct RobustConfig {
  int max_retries = 2;           ///< extra attempts after a transient failure
  int replicates = 3;            ///< noisy measurements aggregated per eval
  int max_extra_replicates = 4;  ///< adaptive re-measurement cap
  /// 0 = median aggregation; in (0, 0.5) = trimmed mean discarding this
  /// fraction from each tail.
  double trim_fraction = 0.0;
  /// Re-measure adaptively when a candidate's aggregated speedup lands
  /// within this relative margin of the best speedup seen so far.
  double near_incumbent_margin = 0.03;
  /// Reject the measurement entirely (failure class `noisy-rejected`)
  /// when the replicates' median absolute deviation exceeds this fraction
  /// of the median even after adaptive re-measurement.
  double noisy_reject_mad = 0.35;
  bool quarantine = true;        ///< remember deterministic failures
};

/// Observable robustness counters (reported by the fault benches).
struct RobustStats {
  int evaluations = 0;       ///< evaluate() calls that reached the base
  int attempts = 0;          ///< base evaluations incl. retries
  int retries = 0;           ///< attempts beyond the first
  int quarantine_hits = 0;   ///< evaluations skipped via the quarantine set
  int remeasurements = 0;    ///< adaptive extra replicates taken
  int valid = 0;             ///< evaluations that produced a trusted result
  /// Failed evaluations per failure class name ("crash", "hang", ...).
  std::map<std::string, int> failures;
};

class RobustEvaluator : public Evaluator {
 public:
  /// `injector` may be nullptr (no faults); it must outlive this object.
  /// The injector is attached to `base` for the lifetime of this wrapper.
  RobustEvaluator(ProgramEvaluator& base, RobustConfig config = {},
                  const FaultInjector* injector = nullptr);
  ~RobustEvaluator() override;

  const ir::Program& base_program() const override {
    return base_.base_program();
  }
  const std::string& program_name() const override {
    return base_.program_name();
  }
  double o3_cycles() const override { return base_.o3_cycles(); }
  double o0_cycles() const override { return base_.o0_cycles(); }
  std::int64_t reference_output() const override {
    return base_.reference_output();
  }
  std::vector<std::pair<std::string, double>> hot_modules() const override {
    return base_.hot_modules();
  }

  CompileOutcome compile(const SequenceAssignment& seqs,
                         bool keep_program = false) const override;
  EvalOutcome evaluate(const SequenceAssignment& seqs) override;

  /// Forward the pure prefetch work to the base evaluator, minus
  /// candidates already quarantined (their serial evaluation short-
  /// circuits before touching the base). Quarantine decisions themselves
  /// stay in the serial replay, so batch results match serial exactly.
  void prefetch(std::span<const SequenceAssignment> batch,
                bool with_measure = true) override;

  bool is_quarantined(const SequenceAssignment& seqs) const override;

  const RobustStats& robust_stats() const { return stats_; }
  std::size_t quarantine_size() const { return quarantine_.size(); }

  /// Checkpoint/restore this wrapper's own order-sensitive state: the
  /// quarantine set, per-binary replicate counters, robustness counters
  /// and the incumbent speedup. The wrapped base evaluator and the fault
  /// injector checkpoint themselves separately.
  void save_state(persist::Writer& w) const;
  void load_state(persist::Reader& r);

  double total_compile_seconds() const override {
    return base_.total_compile_seconds();
  }
  double total_measure_seconds() const override {
    return base_.total_measure_seconds();
  }
  int num_compiles() const override { return base_.num_compiles(); }
  int num_measurements() const override { return base_.num_measurements(); }
  int num_cache_hits() const override { return base_.num_cache_hits(); }

 private:
  double aggregate(std::vector<double>& samples) const;
  double dispersion(std::vector<double> samples) const;

  ProgramEvaluator& base_;
  RobustConfig config_;
  const FaultInjector* injector_;
  /// Signature -> failure class of deterministically-failing assignments.
  std::unordered_map<std::uint64_t, FailureKind> quarantine_;
  /// Replicate counter per binary: keeps repeated noisy measurements of
  /// the same binary on fresh deterministic noise draws.
  std::unordered_map<std::uint64_t, std::uint64_t> replicate_counter_;
  mutable RobustStats stats_;  ///< compile() retries update it too
  double best_speedup_seen_ = 0.0;
};

}  // namespace citroen::sim
