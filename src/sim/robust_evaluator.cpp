#include "sim/robust_evaluator.hpp"

#include <algorithm>
#include <cmath>

#include "persist/codec.hpp"
#include "support/statistics.hpp"

namespace citroen::sim {

void QuarantineSet::set_cap(std::size_t cap) {
  cap_ = cap;
  while (cap_ > 0 && index_.size() > cap_) {
    index_.erase(order_.back().first);
    order_.pop_back();
    ++evictions_;
  }
}

void QuarantineSet::insert(std::uint64_t sig, FailureKind kind) {
  const auto it = index_.find(sig);
  if (it != index_.end()) {
    it->second->second = kind;
    order_.splice(order_.begin(), order_, it->second);
    return;
  }
  order_.emplace_front(sig, kind);
  index_[sig] = order_.begin();
  while (cap_ > 0 && index_.size() > cap_) {
    index_.erase(order_.back().first);
    order_.pop_back();
    ++evictions_;
  }
}

const FailureKind* QuarantineSet::peek(std::uint64_t sig) const {
  const auto it = index_.find(sig);
  return it == index_.end() ? nullptr : &it->second->second;
}

const FailureKind* QuarantineSet::touch(std::uint64_t sig) {
  const auto it = index_.find(sig);
  if (it == index_.end()) return nullptr;
  order_.splice(order_.begin(), order_, it->second);
  return &it->second->second;
}

void QuarantineSet::save(persist::Writer& w) const {
  w.u64(index_.size());
  for (const auto& [sig, kind] : order_) {
    w.u64(sig);
    w.u8(static_cast<std::uint8_t>(kind));
  }
  w.u64(evictions_);
}

void QuarantineSet::load(persist::Reader& r) {
  order_.clear();
  index_.clear();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t sig = r.u64();
    const auto kind = static_cast<FailureKind>(r.u8());
    // Stored MRU-first; appending at the back reproduces the order.
    order_.emplace_back(sig, kind);
    index_[sig] = std::prev(order_.end());
  }
  evictions_ = r.u64();
  set_cap(cap_);  // a cap lowered since the save applies on restore
}

RobustEvaluator::RobustEvaluator(Evaluator& base, RobustConfig config,
                                 const FaultInjector* injector)
    : base_(base), config_(config), injector_(injector),
      quarantine_(config.quarantine_cap) {
  base_.set_fault_injector(injector_);
}

RobustEvaluator::~RobustEvaluator() { base_.set_fault_injector(nullptr); }

CompileOutcome RobustEvaluator::compile(const SequenceAssignment& seqs,
                                        bool keep_program) const {
  CompileOutcome co = base_.compile(seqs, keep_program);
  for (int r = 0; r < config_.max_retries && !co.valid && co.transient; ++r) {
    ++stats_.retries;
    co = base_.compile(seqs, keep_program);
  }
  return co;
}

bool RobustEvaluator::is_quarantined(const SequenceAssignment& seqs) const {
  return config_.quarantine &&
         quarantine_.peek(assignment_signature(seqs)) != nullptr;
}

void RobustEvaluator::prefetch(std::span<const SequenceAssignment> batch,
                               bool with_measure) {
  // Skip candidates the serial replay will answer from quarantine without
  // touching the base evaluator. A candidate that *becomes* quarantined
  // mid-batch merely wastes its prefetched work — the serial replay still
  // short-circuits it, so results are unaffected.
  std::vector<SequenceAssignment> live;
  live.reserve(batch.size());
  for (const auto& seqs : batch)
    if (!is_quarantined(seqs)) live.push_back(seqs);
  base_.prefetch(live, with_measure);
}

double RobustEvaluator::aggregate(std::vector<double>& samples) const {
  if (samples.size() == 1) return samples[0];
  if (config_.trim_fraction <= 0.0) return median(samples);
  std::sort(samples.begin(), samples.end());
  const std::size_t n = samples.size();
  const std::size_t k = static_cast<std::size_t>(
      std::floor(config_.trim_fraction * static_cast<double>(n)));
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = k; i + k < n; ++i) {
    sum += samples[i];
    ++count;
  }
  return count > 0 ? sum / static_cast<double>(count) : median(samples);
}

double RobustEvaluator::dispersion(std::vector<double> samples) const {
  if (samples.size() < 2) return 0.0;
  const double med = median(samples);
  if (med <= 0.0) return 0.0;
  for (auto& v : samples) v = std::abs(v - med);
  return median(samples) / med;  // relative MAD
}

EvalOutcome RobustEvaluator::evaluate(const SequenceAssignment& seqs) {
  const std::uint64_t sig = assignment_signature(seqs);
  if (config_.quarantine) {
    if (const FailureKind* q = quarantine_.touch(sig)) {
      // Known deterministic failure: answer from the quarantine set for
      // free. `cache_hit` tells callers no budget was spent.
      ++stats_.quarantine_hits;
      EvalOutcome out;
      out.failure = *q;
      out.why_invalid = std::string("quarantined: known deterministic ") +
                        failure_kind_name(*q);
      out.cache_hit = true;
      out.attempts = 0;
      return out;
    }
  }

  ++stats_.evaluations;
  EvalOutcome out;
  int attempt = 0;
  // Bounded retry for transient failures. On real hardware each retry
  // would back off before re-submitting; in the deterministic sim the
  // backoff has no one to yield to, but every attempt is still charged.
  for (;;) {
    out = base_.evaluate(seqs);
    ++stats_.attempts;
    if (out.valid || !out.transient || attempt >= config_.max_retries) break;
    ++attempt;
    ++stats_.retries;
  }
  out.attempts = attempt + 1;

  if (!out.valid) {
    ++stats_.failures[failure_kind_name(out.failure)];
    if (config_.quarantine && !out.transient &&
        out.failure != FailureKind::None) {
      quarantine_.insert(sig, out.failure);
    }
    return out;
  }

  // Replicated measurement under injected noise. The base evaluator's
  // cycles are the noise-free ground truth; each replicate is a fresh
  // deterministic noise draw keyed by a per-binary counter.
  const bool noisy = injector_ && (injector_->plan().noise_sigma > 0.0 ||
                                   injector_->plan().outlier_rate > 0.0);
  if (noisy) {
    auto& ctr = replicate_counter_[out.binary_hash];
    const double truth = out.cycles;
    std::vector<double> samples;
    const int reps = std::max(1, config_.replicates);
    samples.reserve(static_cast<std::size_t>(reps));
    for (int r = 0; r < reps; ++r)
      samples.push_back(injector_->perturb(truth, out.binary_hash, ctr++));
    double agg = aggregate(samples);
    double speedup = agg > 0.0 ? o3_cycles() / agg : 0.0;

    // Adaptive re-measurement: when the aggregate lands near the
    // incumbent, rankings are decided inside the noise band — buy extra
    // replicates exactly there.
    int extra = 0;
    while (extra < config_.max_extra_replicates &&
           best_speedup_seen_ > 0.0 &&
           std::abs(speedup - best_speedup_seen_) <=
               config_.near_incumbent_margin * best_speedup_seen_) {
      samples.push_back(injector_->perturb(truth, out.binary_hash, ctr++));
      ++extra;
      ++stats_.remeasurements;
      agg = aggregate(samples);
      speedup = agg > 0.0 ? o3_cycles() / agg : 0.0;
    }

    if (dispersion(samples) > config_.noisy_reject_mad) {
      // Even the robust aggregate is untrustworthy; reject rather than
      // feed a garbage observation to the cost model. Noise is transient
      // by nature, so the signature is NOT quarantined.
      out.valid = false;
      out.cycles = 0.0;
      out.speedup = 0.0;
      out.transient = true;
      out.failure = FailureKind::NoisyRejected;
      out.why_invalid = "measurement rejected: replicate spread too large";
      ++stats_.failures[failure_kind_name(out.failure)];
      return out;
    }
    out.cycles = agg;
    out.speedup = speedup;
  }

  ++stats_.valid;
  best_speedup_seen_ = std::max(best_speedup_seen_, out.speedup);
  return out;
}

void RobustEvaluator::save_state(persist::Writer& w) const {
  auto sorted_keys = [](const auto& m) {
    std::vector<std::uint64_t> keys;
    keys.reserve(m.size());
    for (const auto& [k, _] : m) keys.push_back(k);
    std::sort(keys.begin(), keys.end());
    return keys;
  };
  quarantine_.save(w);
  const auto rkeys = sorted_keys(replicate_counter_);
  w.u64(rkeys.size());
  for (const std::uint64_t k : rkeys) {
    w.u64(k);
    w.u64(replicate_counter_.at(k));
  }
  w.i32(stats_.evaluations);
  w.i32(stats_.attempts);
  w.i32(stats_.retries);
  w.i32(stats_.quarantine_hits);
  w.i32(stats_.remeasurements);
  w.i32(stats_.valid);
  persist::put(w, stats_.failures);
  w.f64(best_speedup_seen_);
}

void RobustEvaluator::load_state(persist::Reader& r) {
  replicate_counter_.clear();
  quarantine_.load(r);
  const std::uint64_t nr = r.u64();
  for (std::uint64_t i = 0; i < nr; ++i) {
    const std::uint64_t k = r.u64();
    replicate_counter_[k] = r.u64();
  }
  stats_ = RobustStats{};
  stats_.evaluations = r.i32();
  stats_.attempts = r.i32();
  stats_.retries = r.i32();
  stats_.quarantine_hits = r.i32();
  stats_.remeasurements = r.i32();
  stats_.valid = r.i32();
  persist::get(r, stats_.failures);
  best_speedup_seen_ = r.f64();
}

}  // namespace citroen::sim
