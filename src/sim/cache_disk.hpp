#pragma once
// Disk tier for the prefix cache: content-addressed, CRC-guarded spill
// of finalized ModuleBuilds so warm caches survive daemon restarts and
// are shareable across machines.
//
// Entry format (one file per finalized sequence, named by the 64-bit
// prefix-cache key the RAM tier already computes — the key folds the
// module content hash, so the file name is content-addressed):
//
//   [8B magic "CTRNPFX1"][u64 key echo][u64 payload len][u32 crc32(payload)]
//   [payload]
//
// where the payload is the persist-codec encoding of the ModuleBuild
// (flags, error text, ir::Module via ir/serialize, stats counters by
// name, print hash, code size). Writes go through the atomic
// tmp + fsync + rename idiom the checkpoint layer uses, so readers only
// ever observe complete files — concurrent writers of the same key race
// benignly (deterministic builds produce identical bytes).
//
// The load path trusts nothing: a missing file is a miss; a short file,
// bad magic, key mismatch, CRC mismatch, codec overrun, or any decode
// exception quarantines the file (rename to "<name>.bad") and reports a
// miss. The tier never throws and never returns a value that failed its
// checksum, so a torn write or bit rot costs one rebuild, not a crash
// and not a wrong answer.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "sim/prefix_cache.hpp"

namespace citroen::sim {

struct DiskTierStats {
  std::uint64_t hits = 0;         ///< loads that passed every check
  std::uint64_t misses = 0;       ///< absent entries (clean miss)
  std::uint64_t stores = 0;       ///< entries durably written
  std::uint64_t store_errors = 0; ///< failed writes (disk full, perms, ...)
  std::uint64_t quarantined = 0;  ///< corrupt entries renamed aside
};

class DiskCacheTier {
 public:
  /// Creates `dir` (and parents) if needed. A directory that cannot be
  /// created disables the tier (enabled() == false) rather than failing
  /// the run: the cache above degrades to RAM-only.
  explicit DiskCacheTier(std::string dir);

  bool enabled() const { return enabled_; }
  const std::string& dir() const { return dir_; }

  /// Durably store a finalized build under `key`. Best-effort: failures
  /// bump a counter and are otherwise silent. Existing entries are left
  /// untouched (same key => same bytes).
  void store(std::uint64_t key, const ModuleBuild& build) const;

  /// Load the entry for `key`. nullptr means miss — whether the file was
  /// absent, torn, corrupt, or truncated (the latter three quarantine the
  /// file first). Never throws.
  std::shared_ptr<const ModuleBuild> load(std::uint64_t key) const;

  DiskTierStats stats() const;

  /// Path an entry for `key` lives at (exposed for tests that corrupt
  /// entries on purpose).
  std::string entry_path(std::uint64_t key) const;

 private:
  void bump(std::uint64_t DiskTierStats::* field) const;
  void quarantine(const std::string& path) const;

  std::string dir_;
  bool enabled_ = false;
  mutable std::mutex stats_mu_;
  mutable DiskTierStats stats_;
};

/// Payload (en|de)coding, exposed for corruption property tests.
std::string encode_module_build(const ModuleBuild& build);
ModuleBuild decode_module_build(const std::string& payload);  ///< throws

}  // namespace citroen::sim
