#include "sim/machine.hpp"

#include <stdexcept>

namespace citroen::sim {

ir::CostModel arm_a57_model() {
  ir::CostModel cm;
  cm.alu = 1.0;
  cm.imul = 4.0;
  cm.idiv = 20.0;
  cm.falu = 3.0;
  cm.fmul = 4.0;
  cm.fdiv = 18.0;
  cm.load = 5.0;
  cm.store = 2.0;
  cm.vector_factor = 1.4;   // NEON amortises well
  cm.branch = 1.0;
  cm.mispredict = 9.0;
  cm.call_overhead = 12.0;
  cm.num_registers = 14;
  cm.spill_per_instr = 0.25;
  cm.icache_instrs = 256;
  cm.icache_per_call = 30.0;
  return cm;
}

ir::CostModel amd_zen_model() {
  ir::CostModel cm;
  cm.alu = 1.0;
  cm.imul = 3.0;
  cm.idiv = 15.0;
  cm.falu = 2.0;
  cm.fmul = 3.0;
  cm.fdiv = 13.0;
  cm.load = 3.5;
  cm.store = 1.5;
  cm.vector_factor = 1.8;   // wider scalar core narrows the vector win
  cm.branch = 1.0;
  cm.mispredict = 16.0;
  cm.call_overhead = 9.0;
  cm.num_registers = 16;
  cm.spill_per_instr = 0.2;
  cm.icache_instrs = 384;
  cm.icache_per_call = 20.0;
  return cm;
}

ir::CostModel machine_by_name(const std::string& name) {
  if (name == "arm") return arm_a57_model();
  if (name == "x86") return amd_zen_model();
  throw std::runtime_error("unknown machine preset: " + name);
}

}  // namespace citroen::sim
